// Copyright 2026 The QPSeeker Authors
//
// Domain example: the paper's adaptability scenario (§7.2.4). Train
// QPSeeker once on a cheap-to-collect simple workload (Synthetic: 0-2
// joins), then hand it a complex JOB-style workload touching tables it
// never saw filters on — and compare the plans it produces against the
// traditional optimizer. Also saves and reloads the trained model to show
// the deployment flow (train offline once, load in the planner process).
//
// Run: ./build/examples/workload_transfer

#include <cstdio>

#include "core/mcts.h"
#include "core/qpseeker.h"
#include "eval/workloads.h"
#include "exec/executor.h"
#include "optimizer/planner.h"
#include "storage/schemas.h"

using namespace qps;

int main() {
  Rng rng(31);
  auto db = storage::BuildDatabase(storage::ImdbLikeSpec(), 800, &rng).value();
  auto stats = stats::DatabaseStats::Analyze(*db);

  // Train on the simple workload, with sampled plans (the paper's enriched
  // training set is what makes transfer work).
  Rng wrng(32);
  auto simple = eval::SyntheticWorkload(*db, Scale::kSmoke, &wrng);
  sampling::DatasetOptions dopts;
  dopts.source = sampling::PlanSource::kSampled;
  dopts.sampler.max_plans_per_query = 8;
  Rng drng(33);
  auto dataset = sampling::BuildQepDataset(*db, *stats, simple, dopts, &drng).value();
  std::printf("trained workload: %zu simple queries -> %zu QEPs\n",
              dataset.queries.size(), dataset.qeps.size());

  core::QpSeeker trained(*db, *stats, core::QpSeekerConfig::ForScale(Scale::kSmoke), 3);
  core::TrainOptions topts;
  topts.epochs = 40;
  topts.learning_rate = 2e-3f;
  trained.Train(dataset, topts);

  // Deployment flow: persist, then load into a fresh planner instance.
  const std::string model_path = "/tmp/qpseeker_transfer_model.bin";
  if (auto st = trained.Save(model_path); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  core::QpSeeker seeker(*db, *stats, core::QpSeekerConfig::ForScale(Scale::kSmoke), 99);
  if (auto st = seeker.Load(model_path); !st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("model saved to %s and reloaded into a fresh instance\n\n",
              model_path.c_str());

  // The unseen complex workload.
  Rng jrng(34);
  auto job = eval::JobWorkload(*db, Scale::kSmoke, &jrng);
  optimizer::Planner baseline(*db, *stats);
  exec::Executor ex(*db);

  double total_qps = 0.0, total_pg = 0.0;
  int wins = 0, losses = 0;
  core::MctsOptions mopts;
  mopts.time_budget_ms = 200.0;
  std::printf("%-6s %6s %14s %14s\n", "query", "joins", "QPSeeker ms", "baseline ms");
  for (size_t i = 0; i < job.size(); ++i) {
    const auto& q = job[i];
    mopts.seed = 100 + i;
    auto mcts = core::MctsPlan(seeker, q, mopts);
    auto pg = baseline.Plan(q);
    if (!mcts.ok() || !pg.ok()) continue;
    auto run = [&](query::PlanNode* plan) {
      auto card = ex.Execute(q, plan);
      return card.ok() ? plan->actual.runtime_ms : ex.last_counters().RuntimeMs();
    };
    const double t_qps = run(mcts->plan.get());
    const double t_pg = run(pg->get());
    total_qps += t_qps;
    total_pg += t_pg;
    wins += t_qps < t_pg * 0.95;
    losses += t_qps > t_pg * 1.05;
    std::printf("%-6zu %6zu %14.2f %14.2f\n", i, q.joins.size(), t_qps, t_pg);
  }
  std::printf("\ntotals: QPSeeker %.1f ms vs baseline %.1f ms (%d faster, %d "
              "slower of %zu)\n",
              total_qps, total_pg, wins, losses, job.size());
  std::printf("note: queries touch up to %d-way joins; training saw at most "
              "2-way joins.\n",
              5);
  return 0;
}
