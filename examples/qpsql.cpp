// Copyright 2026 The QPSeeker Authors
//
// qpsql: a small interactive/batch SQL shell over the QPSeeker stack.
// Generates (or loads) a database, optionally trains a QPSeeker instance,
// then reads SQL statements from stdin, plans each through the unified
// core::Planner interface, executes it, and prints EXPLAIN ANALYZE output.
//
// Usage:
//   qpsql [--db=imdb|stack|toy] [--rows=N]
//         [--planner=baseline|neural|hybrid|guarded] [--train-queries=N]
//         [--seed=N] [--v=N] [--threads=N] [--cache-mb=N]
//         [--quant=int8] [--deadline-ms=D]
//         [--retry-max=N] [--retry-backoff-ms=D]
//         [--serve --clients=N --requests=M] [--tenants=FILE]
//         [--audit-log=FILE] [--obs-snapshot=FILE] [--obs-interval-ms=D]
//
//   echo "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;" | ./build/examples/qpsql --db=toy
//
// Every backend is constructed by core::MakePlanner and dispatched through
// core::Planner::Plan(query, options) — qpsql never touches a concrete
// planner type. --planner=guarded walks the degradation ladder (validated
// neural -> greedy -> DP with a circuit breaker); \guards prints the
// accumulated GuardStats for any backend.
//
// Serving mode (--serve): generates a workload of --requests queries and
// drives them through serve::PlanService with --clients concurrent client
// threads. Candidate evaluations from different in-flight queries fuse
// into shared batched model forwards (cross-query micro-batching); the
// summary reports throughput, latency percentiles, the fused-batch
// histogram, shed counts, and model-vs-simulated runtime q-error.
// --audit-log=FILE appends one JSON line per served request;
// --obs-snapshot=FILE starts a background obs::SnapshotWriter refreshing
// the combined metrics/window/drift document every --obs-interval-ms
// (point qps_top at the same file to watch the run live).
//
// Observability:
//   EXPLAIN ANALYZE <sql>     per-operator estimated vs. actual rows,
//                             cardinality q-error, simulated + wall time
//   \metrics                  dump the global metrics registry
//   \prom                     the same registry in Prometheus text
//                             exposition (plus the windowed view as gauges)
//   \cache [clear]            plan-prediction cache stats (--cache-mb=N)
//   \trace on [file]          start span recording (default qpsql_trace.json)
//   \trace off                stop and write Chrome-trace JSON
//   \health                   per-tenant/per-shard breaker state, rolling
//                             error rates, quarantines/probes/recoveries
//                             (--tenants mode)
//   --v=N                     QPS_VLOG verbosity (breaker transitions at 1)
//
// Resilience:
//   --retry-max=N             retry transient serving failures (shed,
//                             pool-full, injected I/O faults) up to N times
//                             per request, each attempt budgeted against
//                             the remaining --deadline-ms
//   --retry-backoff-ms=D      base of the exponential retry backoff
//                             (deterministic jitter seeded by the request)
//
// Performance:
//   --threads=N               thread-pool workers for MCTS leaf evaluation;
//                             also scales the batched-forward size
//   --cache-mb=N              enable the LRU plan-prediction cache (N MiB)
//
// Model lifecycle (neural planners):
//   \save <path>              write the model to a crash-safe v2 checkpoint
//   \reload <path>            validated hot reload: load the checkpoint into
//                             a candidate, probe it on a canary workload,
//                             and swap only if its q-error passes the gate;
//                             failures roll back to the serving model and
//                             show up as qps.model.reload_failures in
//                             \metrics
//   --quant=int8              quantize the trained model for int8 inference
//                             at startup (SIMD GEMM, runtime-dispatched;
//                             QPS_FORCE_SCALAR=1 pins the portable kernel)
//   \quantize <path>          write an int8 quantized checkpoint of the
//                             serving model; follow with \reload <path> to
//                             canary-gate the quantized model against the
//                             live one (qps.model.quant_gate.* in \metrics)
//
// Multi-tenant mode (--tenants=FILE): each non-comment line of FILE is
//   <tenant_id> [backend] [max_pending] [shed]
// (backend defaults to --planner, max_pending to 16; a trailing "shed"
// degrades over-quota requests to the inline baseline instead of
// rejecting). Tenants are hosted on a serve::ShardedPlanService sharing
// the session's database/model; SQL statements route through the selected
// tenant's core. \tenant <id> switches tenants, \tenants lists them with
// shard placement and per-tenant serving stats, and \tenants add/rm
// changes the fleet at runtime.
//
// Meta-commands: \tables  \schema <table>  \guards  \metrics  \prom  \cache
//                \trace  \save <path>  \quantize [path]  \reload <path>
//                \tenants [add <id> [backend] [quota] [shed] | rm <id>]
//                \tenant <id>  \health  \quit

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/planner_backends.h"
#include "core/qpseeker.h"
#include "nn/gemm_int8.h"
#include "eval/metrics.h"
#include "eval/workloads.h"
#include "exec/executor.h"
#include "obs/accuracy.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/window.h"
#include "optimizer/planner.h"
#include "query/parser.h"
#include "serve/model_manager.h"
#include "serve/sharded_service.h"
#include "storage/schemas.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/threadpool.h"
#include "util/timer.h"
#include "util/trace.h"

using namespace qps;

namespace {

struct Options {
  std::string db = "toy";
  int64_t rows = 500;
  std::string planner = "baseline";
  int train_queries = 48;
  uint64_t seed = 42;
  int verbosity = 0;
  int threads = 1;
  int64_t cache_mb = 0;
  std::string quant;  ///< "" (f32) or "int8"
  double deadline_ms = 0.0;
  int retry_max = 0;
  double retry_backoff_ms = 2.0;
  bool serve = false;
  int clients = 4;
  int requests = 16;
  std::string tenants_file;
  std::string audit_log;
  std::string obs_snapshot;
  double obs_interval_ms = 1000.0;
};

Options ParseArgs(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) -> std::string {
      return arg.substr(prefix.size());
    };
    if (StartsWith(arg, "--db=")) {
      opts.db = value("--db=");
    } else if (StartsWith(arg, "--rows=")) {
      opts.rows = std::stoll(value("--rows="));
    } else if (StartsWith(arg, "--planner=")) {
      opts.planner = value("--planner=");
    } else if (StartsWith(arg, "--train-queries=")) {
      opts.train_queries = std::stoi(value("--train-queries="));
    } else if (StartsWith(arg, "--seed=")) {
      opts.seed = std::stoull(value("--seed="));
    } else if (StartsWith(arg, "--v=")) {
      opts.verbosity = std::stoi(value("--v="));
    } else if (StartsWith(arg, "--threads=")) {
      opts.threads = std::stoi(value("--threads="));
    } else if (StartsWith(arg, "--cache-mb=")) {
      opts.cache_mb = std::stoll(value("--cache-mb="));
    } else if (StartsWith(arg, "--quant=")) {
      opts.quant = value("--quant=");
      if (opts.quant != "int8") {
        std::fprintf(stderr, "unknown --quant: %s (only int8 is supported)\n",
                     opts.quant.c_str());
        std::exit(2);
      }
    } else if (StartsWith(arg, "--deadline-ms=")) {
      opts.deadline_ms = std::stod(value("--deadline-ms="));
    } else if (StartsWith(arg, "--retry-max=")) {
      opts.retry_max = std::stoi(value("--retry-max="));
    } else if (StartsWith(arg, "--retry-backoff-ms=")) {
      opts.retry_backoff_ms = std::stod(value("--retry-backoff-ms="));
    } else if (arg == "--serve") {
      opts.serve = true;
    } else if (StartsWith(arg, "--clients=")) {
      opts.clients = std::stoi(value("--clients="));
    } else if (StartsWith(arg, "--requests=")) {
      opts.requests = std::stoi(value("--requests="));
    } else if (StartsWith(arg, "--tenants=")) {
      opts.tenants_file = value("--tenants=");
    } else if (StartsWith(arg, "--audit-log=")) {
      opts.audit_log = value("--audit-log=");
    } else if (StartsWith(arg, "--obs-snapshot=")) {
      opts.obs_snapshot = value("--obs-snapshot=");
    } else if (StartsWith(arg, "--obs-interval-ms=")) {
      opts.obs_interval_ms = std::stod(value("--obs-interval-ms="));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return opts;
}

void PrintTables(const storage::Database& db) {
  for (int t = 0; t < db.num_tables(); ++t) {
    std::printf("  %-18s %8lld rows, %d columns\n", db.table(t).name().c_str(),
                static_cast<long long>(db.table(t).num_rows()),
                static_cast<int>(db.table(t).num_columns()));
  }
}

void PrintSchema(const storage::Database& db, const std::string& name) {
  const int t = db.TableIndex(name);
  if (t < 0) {
    std::printf("no such table: %s\n", name.c_str());
    return;
  }
  const storage::Table& table = db.table(t);
  for (int c = 0; c < table.num_columns(); ++c) {
    const auto& meta = table.column_meta(c);
    std::string extra;
    if (meta.is_primary_key) extra = " PRIMARY KEY";
    if (!meta.ref_table.empty()) {
      extra = " REFERENCES " + meta.ref_table + "(" + meta.ref_column + ")";
    }
    std::printf("  %-20s %-8s%s\n", table.column(c).name().c_str(),
                storage::DataTypeName(table.column(c).type()), extra.c_str());
  }
}

/// Strips a case-insensitive keyword prefix ("EXPLAIN ANALYZE ") if present.
bool ConsumePrefixCI(const std::string& s, const std::string& prefix,
                     std::string* rest) {
  if (s.size() < prefix.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  *rest = StrTrim(s.substr(prefix.size()));
  return true;
}

/// Builds the \reload validation workload: a handful of small queries
/// planned by the baseline and executed for ground-truth stats, so the
/// model manager can q-error-probe reload candidates against real labels.
std::vector<serve::CanaryCase> BuildCanaries(const storage::Database& db,
                                             const optimizer::Planner& baseline,
                                             exec::Executor* executor,
                                             uint64_t seed) {
  eval::WorkloadOptions wo;
  wo.num_queries = 4;
  wo.min_joins = 0;
  wo.max_joins = 2;
  wo.num_templates = 4;
  Rng rng(seed);
  auto queries = eval::GenerateWorkload(db, wo, &rng);
  std::vector<serve::CanaryCase> canaries;
  for (auto& q : queries) {
    auto plan = baseline.Plan(q);
    if (!plan.ok() || *plan == nullptr) continue;
    if (!executor->Execute(q, plan->get()).ok()) continue;
    serve::CanaryCase c;
    c.query = std::move(q);
    c.plan = std::move(*plan);
    canaries.push_back(std::move(c));
  }
  return canaries;
}

/// One `--tenants=FILE` line: `<id> [backend] [max_pending] [shed]`.
struct TenantLine {
  std::string id;
  std::string backend;
  size_t max_pending = 16;
  bool shed = false;
};

/// Builds a TenantSpec over the session's model/baseline. Backends other
/// than "baseline" reuse the session model; per-tenant planning is
/// single-threaded (parallelism comes from concurrent requests).
serve::TenantSpec MakeTenantSpec(const TenantLine& line,
                                 const std::shared_ptr<core::QpSeeker>& model,
                                 const optimizer::Planner& baseline) {
  core::GuardedOptions gopts;
  gopts.hybrid.mcts.threads = 1;
  serve::TenantSpec spec;
  spec.tenant_id = line.id;
  spec.deps.planner_name = line.backend;
  spec.deps.model = model;
  spec.deps.baseline = &baseline;
  spec.deps.guard_options = gopts;
  spec.quota.max_pending = line.max_pending;
  spec.quota.shed_to_baseline = line.shed;
  return spec;
}

/// Parses a `--tenants` file; `default_backend` fills omitted backends.
std::vector<TenantLine> ParseTenantsFile(const std::string& path,
                                         const std::string& default_backend) {
  std::vector<TenantLine> lines;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "qpsql: cannot read --tenants file %s\n", path.c_str());
    return lines;
  }
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string trimmed = StrTrim(raw);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream tok(trimmed);
    TenantLine line;
    line.backend = default_backend;
    tok >> line.id;
    std::string word;
    if (tok >> word) line.backend = word;
    if (tok >> word) line.max_pending = static_cast<size_t>(std::stoull(word));
    if (tok >> word) line.shed = (word == "shed");
    lines.push_back(std::move(line));
  }
  return lines;
}

/// `\health`: every key the serving-path HealthMonitor has seen — tenants
/// (breaker-governed) and shard_<i> shadow keys (observed rates only) —
/// with rolling window rates and lifetime transition counts.
void PrintHealth(const serve::ShardedPlanService& sharded) {
  const auto all = sharded.health().AllStats();
  if (all.empty()) {
    std::printf("no health samples yet (serve some queries first)\n");
    return;
  }
  std::printf("%-16s %-10s %10s %10s %8s %7s %7s\n", "key", "state",
              "win att", "win fail", "quarant", "probes", "recov");
  for (const auto& [key, s] : all) {
    std::printf("%-16s %-10s %10lld %10lld %8lld %7lld %7lld\n", key.c_str(),
                serve::HealthStateName(s.state),
                static_cast<long long>(s.window_attempts),
                static_cast<long long>(s.window_failures),
                static_cast<long long>(s.quarantines),
                static_cast<long long>(s.probes),
                static_cast<long long>(s.recoveries));
  }
}

void PrintTenants(const serve::ShardedPlanService& sharded) {
  std::printf("%-20s %5s %-10s %6s %6s %9s %9s %9s\n", "tenant", "shard",
              "backend", "quota", "shed?", "submit", "done", "shed");
  for (const std::string& id : sharded.tenant_ids()) {
    const auto spec = sharded.registry().Get(id);
    const auto stats = sharded.TenantStats(id);
    if (!spec.ok() || !stats.ok()) continue;
    std::printf("%-20s %5d %-10s %6zu %6s %9lld %9lld %9lld\n", id.c_str(),
                sharded.ShardOf(id), spec->deps.planner_name.c_str(),
                spec->quota.max_pending,
                spec->quota.shed_to_baseline ? "degr" : "rej",
                static_cast<long long>(stats->submitted),
                static_cast<long long>(stats->completed),
                static_cast<long long>(stats->shed));
  }
}

/// --serve: drive a generated workload through the plan service with
/// --clients concurrent submitters, then execute the returned plans
/// serially for q-error accounting.
int RunServe(const storage::Database& db, core::QpSeeker* model,
             const optimizer::Planner& baseline, const Options& opts) {
  // All model evaluation in serving goes through the batch rendezvous
  // (the model forward is not concurrently callable), so per-request MCTS
  // runs single-threaded and parallelism comes from concurrent requests.
  core::GuardedOptions gopts;
  gopts.hybrid.mcts.threads = 1;
  if (opts.planner == "guarded") {
    gopts.neural_deadline_ms = gopts.hybrid.mcts.time_budget_ms;
  }

  // Operator surface: per-request audit lines and/or a periodically
  // refreshed obs snapshot (the document qps_top polls).
  std::unique_ptr<obs::AuditLog> audit;
  if (!opts.audit_log.empty()) {
    auto log_or = obs::AuditLog::Open(opts.audit_log);
    if (!log_or.ok()) {
      std::fprintf(stderr, "audit log: %s\n",
                   log_or.status().ToString().c_str());
      return 2;
    }
    audit = std::move(*log_or);
  }
  std::unique_ptr<obs::SnapshotWriter> snapshot;
  if (!opts.obs_snapshot.empty()) {
    snapshot = std::make_unique<obs::SnapshotWriter>(opts.obs_snapshot,
                                                     opts.obs_interval_ms);
    snapshot->Start();
  }

  serve::PlanServiceOptions sopts;
  sopts.workers = std::max(1, opts.clients);
  sopts.default_deadline_ms = opts.deadline_ms;
  sopts.shed_to_baseline = true;
  sopts.audit = audit.get();
  sopts.retry.max_retries = opts.retry_max;
  sopts.retry.backoff_base_ms = opts.retry_backoff_ms;
  serve::PlanServiceDeps deps;
  deps.planner_name = opts.planner;
  deps.model = std::shared_ptr<const core::QpSeeker>(
      std::shared_ptr<const core::QpSeeker>(), model);
  deps.baseline = &baseline;
  deps.guard_options = gopts;
  auto service_or = serve::PlanService::Create(std::move(deps), sopts);
  if (!service_or.ok()) {
    std::fprintf(stderr, "plan service: %s\n",
                 service_or.status().ToString().c_str());
    return 2;
  }
  auto service = std::move(*service_or);

  // Complex-join workload so every backend exercises its neural path.
  eval::WorkloadOptions wo;
  wo.num_queries = opts.requests;
  wo.min_joins = 3;
  wo.max_joins = 3;
  wo.num_templates = std::max(4, opts.requests / 4);
  Rng wrng(opts.seed + 3);
  const auto queries = eval::GenerateWorkload(db, wo, &wrng);

  struct Outcome {
    bool ok = false;
    std::string error;
    core::PlanResult result;
    double latency_ms = 0.0;
  };
  std::vector<Outcome> outcomes(queries.size());

  const int nclients = std::max(1, opts.clients);
  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(nclients));
  for (int c = 0; c < nclients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = static_cast<size_t>(c); i < queries.size();
           i += static_cast<size_t>(nclients)) {
        serve::PlanRequest request;
        request.query = queries[i];
        request.deadline_ms = opts.deadline_ms;
        // Per-request seeds pinned to the request index: the plans are a
        // function of the workload alone, not of scheduling.
        request.seed = opts.seed + 1000 + i;
        Timer t;
        auto result = service->Submit(std::move(request)).get();
        outcomes[i].latency_ms = t.ElapsedMillis();
        if (result.ok()) {
          outcomes[i].ok = true;
          outcomes[i].result = std::move(*result);
        } else {
          outcomes[i].error = result.status().ToString();
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_s = wall.ElapsedSeconds();

  std::vector<double> latencies;
  for (const auto& o : outcomes) latencies.push_back(o.latency_ms);
  const auto lat = eval::ComputePercentiles(std::move(latencies));
  const auto stats = service->stats();

  std::printf("serve: %zu requests, %d clients, planner=%s\n", queries.size(),
              nclients, opts.planner.c_str());
  std::printf("  throughput: %.1f qps   latency p50=%.1f ms p99=%.1f ms\n",
              wall_s > 0 ? static_cast<double>(queries.size()) / wall_s : 0.0,
              lat.p50, lat.p99);
  std::printf(
      "  batching: %lld flushes, mean %.2f queries/flush (max %lld), "
      "%lld plans fused\n",
      static_cast<long long>(stats.batching.flushes), stats.batching.MeanBatch(),
      static_cast<long long>(stats.batching.max_fused),
      static_cast<long long>(stats.batching.fused_plans));
  std::printf("  shed: %lld (degraded to baseline: %lld)   deadline hits: %lld\n",
              static_cast<long long>(stats.shed),
              static_cast<long long>(stats.shed_degraded),
              static_cast<long long>(stats.deadline_hits));
  if (opts.planner == "guarded") {
    std::printf("  guards: %s\n", service->guard_stats().ToString().c_str());
  }

  // Execute the returned plans serially: per-request q-error accounting
  // (model-predicted runtime vs. the executor's simulated runtime).
  // ExplainAnalyze (rather than bare Execute) so each plan also feeds a
  // predicted-vs-actual sample to the accuracy tracker under this
  // backend's name, populating the qps.model.drift.* gauges.
  exec::ExecOptions eopts;
  eopts.accuracy_backend = opts.planner;
  exec::Executor executor(db, eopts);
  std::vector<double> runtime_qerr;
  int executed = 0, failed = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!outcomes[i].ok) {
      std::printf("  request %zu failed: %s\n", i, outcomes[i].error.c_str());
      ++failed;
      continue;
    }
    query::PlanNode* plan = outcomes[i].result.plan.get();
    auto analysis = executor.ExplainAnalyze(queries[i], plan);
    if (!analysis.ok()) {
      std::printf("  request %zu execution failed: %s\n", i,
                  analysis.status().ToString().c_str());
      ++failed;
      continue;
    }
    ++executed;
    if (outcomes[i].result.used_neural) {
      runtime_qerr.push_back(eval::QError(outcomes[i].result.node_stats.runtime_ms,
                                          plan->actual.runtime_ms, 1e-3));
    }
  }
  std::printf("  executed: %d/%zu plans (%d failed)\n", executed, queries.size(),
              failed);
  if (!runtime_qerr.empty()) {
    const size_t n_neural = runtime_qerr.size();
    const auto qe = eval::ComputePercentiles(std::move(runtime_qerr));
    std::printf(
        "  runtime q-error (model vs simulated): p50=%.2f p95=%.2f "
        "(%zu neural plans)\n",
        qe.p50, qe.p95, n_neural);
  }

  // Fold the execution feedback into the drift tracker and report it the
  // way the snapshot/qps_top would see it.
  const auto drift = obs::AccuracyTracker::Global().Update(opts.planner);
  if (drift.samples > 0) {
    std::printf(
        "  drift[%s]: score=%.2f  card q-error p50=%.2f p95=%.2f "
        "(%lld samples)%s\n",
        opts.planner.c_str(), drift.drift_score, drift.qerr_p50, drift.qerr_p95,
        static_cast<long long>(drift.samples),
        drift.drifted ? "  ** DRIFT **" : "");
  }
  if (audit != nullptr) {
    std::printf("  audit: %lld records -> %s\n",
                static_cast<long long>(audit->records_written()),
                audit->path().c_str());
  }
  if (snapshot != nullptr) {
    snapshot->Stop();
    if (Status st = snapshot->WriteOnce(); !st.ok()) {
      std::fprintf(stderr, "obs snapshot: %s\n", st.ToString().c_str());
    } else {
      std::printf("  obs snapshot: %s (%lld writes)\n",
                  snapshot->path().c_str(),
                  static_cast<long long>(snapshot->snapshots_written()));
    }
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = ParseArgs(argc, argv);
  SetVerbosity(opts.verbosity);

  Rng rng(opts.seed);
  storage::DatabaseSpec spec;
  if (opts.db == "imdb") {
    spec = storage::ImdbLikeSpec();
  } else if (opts.db == "stack") {
    spec = storage::StackLikeSpec();
  } else if (opts.db == "toy") {
    spec = storage::ToySpec();
  } else {
    std::fprintf(stderr, "unknown --db: %s (use imdb|stack|toy)\n", opts.db.c_str());
    return 2;
  }
  auto db_or = storage::BuildDatabase(spec, opts.rows, &rng);
  if (!db_or.ok()) {
    std::fprintf(stderr, "database build failed: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).value();
  auto stats = stats::DatabaseStats::Analyze(*db);
  optimizer::Planner baseline(*db, *stats);
  std::fprintf(stderr, "qpsql: %s database, %lld rows, planner=%s\n",
               db->name().c_str(), static_cast<long long>(db->TotalRows()),
               opts.planner.c_str());

  // Train a model when a neural planner is requested. Shared ownership so
  // \reload can hand the previous model off gracefully while a planner
  // mid-query keeps it alive.
  std::shared_ptr<core::QpSeeker> model;
  if (opts.planner != "baseline") {
    eval::WorkloadOptions wo;
    wo.num_queries = opts.train_queries;
    wo.min_joins = 0;
    wo.max_joins = 3;
    wo.num_templates = std::max(4, opts.train_queries / 4);
    Rng wrng(opts.seed + 1);
    auto queries = eval::GenerateWorkload(*db, wo, &wrng);
    sampling::DatasetOptions dopts;
    dopts.source = sampling::PlanSource::kSampled;
    dopts.sampler.max_plans_per_query = 6;
    Rng drng(opts.seed + 2);
    auto ds = sampling::BuildQepDataset(*db, *stats, queries, dopts, &drng);
    if (!ds.ok()) {
      std::fprintf(stderr, "training-set build failed: %s\n",
                   ds.status().ToString().c_str());
      return 1;
    }
    model = std::make_shared<core::QpSeeker>(
        *db, *stats, core::QpSeekerConfig::ForScale(Scale::kSmoke), opts.seed);
    core::TrainOptions topts;
    topts.epochs = 35;
    topts.learning_rate = 2e-3f;
    auto report = model->Train(*ds, topts);
    std::fprintf(stderr, "qpsql: trained %lld params on %zu QEPs in %.1fs\n",
                 static_cast<long long>(report.num_parameters), ds->qeps.size(),
                 report.train_seconds);
    if (opts.cache_mb > 0) {
      model->EnableCache(opts.cache_mb * 1024 * 1024);
      std::fprintf(stderr, "qpsql: plan-prediction cache enabled (%lld MiB)\n",
                   static_cast<long long>(opts.cache_mb));
    }
    if (opts.quant == "int8") {
      const int64_t n = model->QuantizeForInference();
      std::fprintf(stderr, "qpsql: int8 inference enabled (%lld weights, %s kernel)\n",
                   static_cast<long long>(n), nn::ActiveInt8Kernel());
    }
  }

  if (opts.serve) return RunServe(*db, model.get(), baseline, opts);

  // One pool for the whole session; MCTS shards leaf evaluation over it.
  std::unique_ptr<util::ThreadPool> pool;
  if (opts.threads > 1) {
    pool = std::make_unique<util::ThreadPool>(opts.threads - 1);
  }

  exec::Executor executor(*db);
  core::GuardedOptions gopts;
  gopts.hybrid.mcts.threads = opts.threads;
  gopts.hybrid.mcts.pool = pool.get();
  if (opts.planner == "guarded") {
    gopts.neural_deadline_ms = gopts.hybrid.mcts.time_budget_ms;
  }
  auto planner_or = core::MakePlanner(opts.planner, model.get(), &baseline, gopts);
  if (!planner_or.ok()) {
    std::fprintf(stderr, "planner: %s\n", planner_or.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<core::Planner> planner = std::move(*planner_or);

  // Model lifecycle (\save / \reload). `serving` tracks whichever model the
  // planner currently runs on; the manager validates reload candidates on
  // the canary workload and rebuilds the planner only when the gate passes.
  std::shared_ptr<const core::QpSeeker> serving = model;
  std::unique_ptr<serve::ModelManager> manager;
  if (model != nullptr) {
    const storage::Database& dbr = *db;
    const stats::DatabaseStats& statsr = *stats;
    serve::ModelFactory factory =
        [&dbr, &statsr, opts](
            const std::string& path) -> StatusOr<std::shared_ptr<core::QpSeeker>> {
      auto candidate = std::make_shared<core::QpSeeker>(
          dbr, statsr, core::QpSeekerConfig::ForScale(Scale::kSmoke), opts.seed);
      QPS_RETURN_IF_ERROR(candidate->Load(path));
      if (opts.cache_mb > 0) {
        candidate->EnableCache(opts.cache_mb * 1024 * 1024);
      }
      return candidate;
    };
    manager = std::make_unique<serve::ModelManager>(model, std::move(factory));
    manager->SetSwapHook(
        [&planner, &serving, &baseline, &gopts,
         &opts](std::shared_ptr<const core::QpSeeker> m) -> Status {
          QPS_ASSIGN_OR_RETURN(
              auto fresh,
              core::MakePlanner(opts.planner, m.get(), &baseline, gopts));
          planner = std::move(fresh);
          serving = std::move(m);
          return Status::OK();
        });
    if (Status st = manager->SetCanaries(
            BuildCanaries(*db, baseline, &executor, opts.seed + 7));
        !st.ok()) {
      std::fprintf(stderr, "qpsql: canary setup failed: %s\n",
                   st.ToString().c_str());
    }
  }

  // --tenants: host a tenant fleet on a sharded service sharing the
  // session's database/model; SQL routes through the selected tenant.
  std::unique_ptr<serve::ShardedPlanService> sharded;
  std::string current_tenant;
  if (!opts.tenants_file.empty()) {
    serve::ShardedPlanServiceOptions shopts;
    shopts.shards = 2;
    shopts.workers_per_shard = std::max(1, opts.threads);
    shopts.default_deadline_ms = opts.deadline_ms;
    shopts.retry.max_retries = opts.retry_max;
    shopts.retry.backoff_base_ms = opts.retry_backoff_ms;
    auto sharded_or = serve::ShardedPlanService::Create(shopts);
    if (!sharded_or.ok()) {
      std::fprintf(stderr, "sharded service: %s\n",
                   sharded_or.status().ToString().c_str());
      return 2;
    }
    sharded = std::move(*sharded_or);
    for (const TenantLine& tl :
         ParseTenantsFile(opts.tenants_file, opts.planner)) {
      if (Status st = sharded->AddTenant(MakeTenantSpec(tl, model, baseline));
          !st.ok()) {
        std::fprintf(stderr, "qpsql: tenant %s: %s\n", tl.id.c_str(),
                     st.ToString().c_str());
        continue;
      }
      if (current_tenant.empty()) current_tenant = tl.id;
    }
    std::fprintf(stderr,
                 "qpsql: %zu tenants on %d shards, current tenant: %s\n",
                 sharded->tenant_ids().size(), sharded->num_shards(),
                 current_tenant.empty() ? "(none)" : current_tenant.c_str());
  }

  std::string trace_path = "qpsql_trace.json";
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string sql = StrTrim(line);
    if (sql.empty() || sql[0] == '#') continue;
    if (sql == "\\quit" || sql == "\\q") break;
    if (sql == "\\tables") {
      PrintTables(*db);
      continue;
    }
    if (StartsWith(sql, "\\schema")) {
      PrintSchema(*db, StrTrim(sql.substr(7)));
      continue;
    }
    if (sql == "\\guards") {
      std::printf("%s\n", planner->guard_stats().ToString().c_str());
      if (auto* guarded = dynamic_cast<core::GuardedPlanner*>(planner.get())) {
        std::printf("circuit: %s\n", guarded->circuit_open() ? "OPEN" : "closed");
      }
      continue;
    }
    if (StartsWith(sql, "\\cache")) {
      core::PlanPredictionCache* cache =
          serving != nullptr ? serving->cache() : nullptr;
      if (cache == nullptr) {
        std::printf("\\cache requires a neural planner and --cache-mb=N\n");
        continue;
      }
      const std::string rest = StrTrim(sql.substr(6));
      if (rest == "clear") {
        cache->Clear();
        std::printf("cache cleared\n");
        continue;
      }
      const auto cs = cache->GetStats();
      const int64_t lookups = cs.hits + cs.misses;
      std::printf(
          "plan-prediction cache: %lld entries (capacity %lld bytes)\n"
          "  hits %lld  misses %lld  evictions %lld  hit rate %.1f%%\n",
          static_cast<long long>(cs.entries),
          static_cast<long long>(cs.capacity_bytes),
          static_cast<long long>(cs.hits), static_cast<long long>(cs.misses),
          static_cast<long long>(cs.evictions),
          lookups > 0 ? 100.0 * static_cast<double>(cs.hits) /
                            static_cast<double>(lookups)
                      : 0.0);
      continue;
    }
    if (sql == "\\metrics") {
      std::printf("%s",
                  metrics::RenderText(metrics::Registry::Global().TakeSnapshot())
                      .c_str());
      continue;
    }
    if (sql == "\\prom") {
      const obs::WindowSnapshot window =
          obs::WindowRegistry::Global().TakeSnapshot();
      std::printf("%s",
                  obs::RenderPrometheus(
                      metrics::Registry::Global().TakeSnapshot(), &window)
                      .c_str());
      continue;
    }
    if (StartsWith(sql, "\\save")) {
      const std::string path = StrTrim(sql.substr(5));
      if (serving == nullptr || path.empty()) {
        std::printf("usage: \\save <path>  (requires a neural planner)\n");
        continue;
      }
      if (Status st = serving->Save(path); !st.ok()) {
        std::printf("save failed: %s\n", st.ToString().c_str());
      } else {
        std::printf("model checkpoint written to %s\n", path.c_str());
      }
      continue;
    }
    if (StartsWith(sql, "\\quantize")) {
      const std::string path = StrTrim(sql.substr(9));
      if (serving == nullptr) {
        std::printf("usage: \\quantize <path>  (requires a neural planner)\n");
        continue;
      }
      if (path.empty()) {
        std::printf("serving model: %s inference (active kernel %s)\n"
                    "usage: \\quantize <path> writes an int8 checkpoint;"
                    " \\reload <path> canary-gates it\n",
                    serving->quantized() ? "int8" : "f32",
                    nn::ActiveInt8Kernel());
        continue;
      }
      if (Status st = serving->SaveQuantized(path); !st.ok()) {
        std::printf("quantized save failed: %s\n", st.ToString().c_str());
      } else {
        std::printf("int8 checkpoint written to %s; \\reload %s canary-gates it\n",
                    path.c_str(), path.c_str());
      }
      continue;
    }
    if (StartsWith(sql, "\\reload")) {
      const std::string path = StrTrim(sql.substr(7));
      if (manager == nullptr || path.empty()) {
        std::printf("usage: \\reload <path>  (requires a neural planner)\n");
        continue;
      }
      if (Status st = manager->Reload(path); !st.ok()) {
        std::printf("reload rejected, previous model still serving: %s\n",
                    st.ToString().c_str());
      } else {
        const auto mstats = manager->stats();
        std::printf("model reloaded from %s (canary q-error %.3f%s)\n",
                    path.c_str(), mstats.live_qerror,
                    mstats.last_candidate_quantized ? ", int8 inference" : "");
      }
      continue;
    }
    if (sql == "\\health") {
      if (sharded == nullptr) {
        std::printf("\\health requires --tenants=FILE\n");
      } else {
        PrintHealth(*sharded);
      }
      continue;
    }
    if (sql == "\\tenants" || StartsWith(sql, "\\tenants ")) {
      if (sharded == nullptr) {
        std::printf("\\tenants requires --tenants=FILE\n");
        continue;
      }
      const std::string rest = StrTrim(sql.substr(8));
      if (rest.empty()) {
        PrintTenants(*sharded);
        continue;
      }
      std::istringstream tok(rest);
      std::string verb;
      tok >> verb;
      if (verb == "add") {
        TenantLine tl;
        tl.backend = opts.planner;
        std::string word;
        if (!(tok >> tl.id)) {
          std::printf("usage: \\tenants add <id> [backend] [quota] [shed]\n");
          continue;
        }
        if (tok >> word) tl.backend = word;
        if (tok >> word) tl.max_pending = static_cast<size_t>(std::stoull(word));
        if (tok >> word) tl.shed = (word == "shed");
        if (Status st = sharded->AddTenant(MakeTenantSpec(tl, model, baseline));
            !st.ok()) {
          std::printf("add failed: %s\n", st.ToString().c_str());
        } else {
          std::printf("tenant %s added on shard %d\n", tl.id.c_str(),
                      sharded->ShardOf(tl.id));
          if (current_tenant.empty()) current_tenant = tl.id;
        }
      } else if (verb == "rm") {
        std::string id;
        if (!(tok >> id)) {
          std::printf("usage: \\tenants rm <id>\n");
          continue;
        }
        if (Status st = sharded->RemoveTenant(id); !st.ok()) {
          std::printf("rm failed: %s\n", st.ToString().c_str());
        } else {
          std::printf("tenant %s removed (in-flight requests drained)\n",
                      id.c_str());
          if (current_tenant == id) current_tenant.clear();
        }
      } else {
        std::printf(
            "usage: \\tenants [add <id> [backend] [quota] [shed] | rm <id>]\n");
      }
      continue;
    }
    if (StartsWith(sql, "\\tenant ")) {
      const std::string id = StrTrim(sql.substr(7));
      if (sharded == nullptr) {
        std::printf("\\tenant requires --tenants=FILE\n");
      } else if (!sharded->registry().Contains(id)) {
        std::printf("no such tenant: %s (\\tenants lists them)\n", id.c_str());
      } else {
        current_tenant = id;
        std::printf("now planning as tenant %s (shard %d)\n", id.c_str(),
                    sharded->ShardOf(id));
      }
      continue;
    }
    if (StartsWith(sql, "\\trace")) {
      const std::string rest = StrTrim(sql.substr(6));
      if (rest == "on" || StartsWith(rest, "on ")) {
        const std::string path = StrTrim(rest.size() > 2 ? rest.substr(2) : "");
        if (!path.empty()) trace_path = path;
        trace::Start();
        std::printf("tracing on (will write %s)\n", trace_path.c_str());
      } else if (rest == "off") {
        trace::Stop();
        const size_t n = trace::Snapshot().size();
        if (trace::WriteChromeJson(trace_path)) {
          std::printf("tracing off: wrote %zu spans to %s\n", n, trace_path.c_str());
        } else {
          std::printf("tracing off: cannot write %s\n", trace_path.c_str());
        }
      } else {
        std::printf("usage: \\trace on [file] | \\trace off\n");
      }
      continue;
    }

    std::string stmt = sql;
    const bool explain_analyze = ConsumePrefixCI(sql, "explain analyze ", &stmt);

    QPS_TRACE_SPAN_VAR(query_span, "qpsql.query");
    auto q = query::ParseSql(stmt, *db);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.status().ToString().c_str());
      continue;
    }

    // Every backend dispatches through the one unified interface; with a
    // tenant fleet loaded, the request routes through the selected
    // tenant's core instead of the session planner.
    auto p = [&]() -> StatusOr<core::PlanResult> {
      if (sharded != nullptr && !current_tenant.empty()) {
        serve::PlanRequest request;
        request.query = *q;
        request.tenant_id = current_tenant;
        request.deadline_ms = opts.deadline_ms;
        request.seed = opts.seed;
        return sharded->Submit(std::move(request)).get();
      }
      core::PlanRequestOptions ropts;
      ropts.deadline_ms = opts.deadline_ms;
      return planner->Plan(*q, ropts);
    }();
    if (!p.ok()) {
      std::printf("plan error: %s\n", p.status().ToString().c_str());
      continue;
    }
    if (sharded != nullptr && !current_tenant.empty()) {
      std::printf("-- tenant %s: %s stage, %d plans evaluated in %.0f ms\n",
                  current_tenant.c_str(), core::PlanStageName(p->stage),
                  p->plans_evaluated, p->plan_ms);
    } else if (opts.planner != "baseline") {
      std::printf("-- %s planner: %s stage, %d plans evaluated in %.0f ms%s%s%s\n",
                  planner->name(), core::PlanStageName(p->stage),
                  p->plans_evaluated, p->plan_ms,
                  p->deadline_hit ? " (deadline hit)" : "",
                  p->fallback_reason.empty() ? "" : " after ",
                  p->fallback_reason.c_str());
    }
    query::PlanPtr plan = std::move(p->plan);

    if (explain_analyze) {
      auto analysis = executor.ExplainAnalyze(*q, plan.get());
      if (!analysis.ok()) {
        std::printf("execution aborted: %s\n", analysis.status().ToString().c_str());
        continue;
      }
      std::printf("%s\n\n", analysis->ToString().c_str());
      continue;
    }

    auto card = executor.Execute(*q, plan.get());
    if (!card.ok()) {
      std::printf("execution aborted: %s\n", card.status().ToString().c_str());
      continue;
    }
    std::printf("EXPLAIN ANALYZE:\n%s", plan->ToString(*db, *q, true).c_str());
    std::printf("count(*) = %.0f   (%.2f ms simulated)\n\n", *card,
                plan->actual.runtime_ms);
  }
  if (opts.planner == "guarded") {
    std::fprintf(stderr, "qpsql guard stats: %s\n",
                 planner->guard_stats().ToString().c_str());
  }
  return 0;
}
