// Copyright 2026 The QPSeeker Authors
//
// qpsql: a small interactive/batch SQL shell over the QPSeeker stack.
// Generates (or loads) a database, optionally trains a QPSeeker instance,
// then reads SQL statements from stdin, plans each with the selected
// planner, executes it, and prints EXPLAIN ANALYZE output.
//
// Usage:
//   qpsql [--db=imdb|stack|toy] [--rows=N]
//         [--planner=baseline|neural|hybrid|guarded] [--train-queries=N]
//         [--seed=N] [--v=N] [--threads=N] [--cache-mb=N]
//
//   echo "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;" | ./build/examples/qpsql --db=toy
//
// --planner=guarded serves through the GuardedPlanner: every neural plan is
// validated, NaN scores and blown deadlines degrade to greedy then to the
// DP planner, and a circuit breaker sheds neural traffic after repeated
// failures. \guards prints the accumulated GuardStats.
//
// Observability:
//   EXPLAIN ANALYZE <sql>     per-operator estimated vs. actual rows,
//                             cardinality q-error, simulated + wall time
//   \metrics                  dump the global metrics registry
//   \cache [clear]            plan-prediction cache stats (--cache-mb=N)
//   \trace on [file]          start span recording (default qpsql_trace.json)
//   \trace off                stop and write Chrome-trace JSON
//   --v=N                     QPS_VLOG verbosity (breaker transitions at 1)
//
// Performance:
//   --threads=N               thread-pool workers for MCTS leaf evaluation;
//                             also scales the batched-forward size
//   --cache-mb=N              enable the LRU plan-prediction cache (N MiB)
//
// Meta-commands: \tables  \schema <table>  \guards  \metrics  \cache  \trace
//                \quit

#include <cctype>
#include <cstdio>
#include <iostream>
#include <string>

#include "core/guarded_planner.h"
#include "core/hybrid.h"
#include "core/qpseeker.h"
#include "eval/workloads.h"
#include "exec/executor.h"
#include "optimizer/planner.h"
#include "query/parser.h"
#include "storage/schemas.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/threadpool.h"
#include "util/trace.h"

using namespace qps;

namespace {

struct Options {
  std::string db = "toy";
  int64_t rows = 500;
  std::string planner = "baseline";
  int train_queries = 48;
  uint64_t seed = 42;
  int verbosity = 0;
  int threads = 1;
  int64_t cache_mb = 0;
};

Options ParseArgs(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) -> std::string {
      return arg.substr(prefix.size());
    };
    if (StartsWith(arg, "--db=")) {
      opts.db = value("--db=");
    } else if (StartsWith(arg, "--rows=")) {
      opts.rows = std::stoll(value("--rows="));
    } else if (StartsWith(arg, "--planner=")) {
      opts.planner = value("--planner=");
    } else if (StartsWith(arg, "--train-queries=")) {
      opts.train_queries = std::stoi(value("--train-queries="));
    } else if (StartsWith(arg, "--seed=")) {
      opts.seed = std::stoull(value("--seed="));
    } else if (StartsWith(arg, "--v=")) {
      opts.verbosity = std::stoi(value("--v="));
    } else if (StartsWith(arg, "--threads=")) {
      opts.threads = std::stoi(value("--threads="));
    } else if (StartsWith(arg, "--cache-mb=")) {
      opts.cache_mb = std::stoll(value("--cache-mb="));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return opts;
}

void PrintTables(const storage::Database& db) {
  for (int t = 0; t < db.num_tables(); ++t) {
    std::printf("  %-18s %8lld rows, %d columns\n", db.table(t).name().c_str(),
                static_cast<long long>(db.table(t).num_rows()),
                static_cast<int>(db.table(t).num_columns()));
  }
}

void PrintSchema(const storage::Database& db, const std::string& name) {
  const int t = db.TableIndex(name);
  if (t < 0) {
    std::printf("no such table: %s\n", name.c_str());
    return;
  }
  const storage::Table& table = db.table(t);
  for (int c = 0; c < table.num_columns(); ++c) {
    const auto& meta = table.column_meta(c);
    std::string extra;
    if (meta.is_primary_key) extra = " PRIMARY KEY";
    if (!meta.ref_table.empty()) {
      extra = " REFERENCES " + meta.ref_table + "(" + meta.ref_column + ")";
    }
    std::printf("  %-20s %-8s%s\n", table.column(c).name().c_str(),
                storage::DataTypeName(table.column(c).type()), extra.c_str());
  }
}

/// Strips a case-insensitive keyword prefix ("EXPLAIN ANALYZE ") if present.
bool ConsumePrefixCI(const std::string& s, const std::string& prefix,
                     std::string* rest) {
  if (s.size() < prefix.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  *rest = StrTrim(s.substr(prefix.size()));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = ParseArgs(argc, argv);
  SetVerbosity(opts.verbosity);

  Rng rng(opts.seed);
  storage::DatabaseSpec spec;
  if (opts.db == "imdb") {
    spec = storage::ImdbLikeSpec();
  } else if (opts.db == "stack") {
    spec = storage::StackLikeSpec();
  } else if (opts.db == "toy") {
    spec = storage::ToySpec();
  } else {
    std::fprintf(stderr, "unknown --db: %s (use imdb|stack|toy)\n", opts.db.c_str());
    return 2;
  }
  auto db_or = storage::BuildDatabase(spec, opts.rows, &rng);
  if (!db_or.ok()) {
    std::fprintf(stderr, "database build failed: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).value();
  auto stats = stats::DatabaseStats::Analyze(*db);
  optimizer::Planner baseline(*db, *stats);
  std::fprintf(stderr, "qpsql: %s database, %lld rows, planner=%s\n",
               db->name().c_str(), static_cast<long long>(db->TotalRows()),
               opts.planner.c_str());

  // Train a model when a neural planner is requested.
  std::unique_ptr<core::QpSeeker> model;
  if (opts.planner != "baseline") {
    eval::WorkloadOptions wo;
    wo.num_queries = opts.train_queries;
    wo.min_joins = 0;
    wo.max_joins = 3;
    wo.num_templates = std::max(4, opts.train_queries / 4);
    Rng wrng(opts.seed + 1);
    auto queries = eval::GenerateWorkload(*db, wo, &wrng);
    sampling::DatasetOptions dopts;
    dopts.source = sampling::PlanSource::kSampled;
    dopts.sampler.max_plans_per_query = 6;
    Rng drng(opts.seed + 2);
    auto ds = sampling::BuildQepDataset(*db, *stats, queries, dopts, &drng);
    if (!ds.ok()) {
      std::fprintf(stderr, "training-set build failed: %s\n",
                   ds.status().ToString().c_str());
      return 1;
    }
    model = std::make_unique<core::QpSeeker>(
        *db, *stats, core::QpSeekerConfig::ForScale(Scale::kSmoke), opts.seed);
    core::TrainOptions topts;
    topts.epochs = 35;
    topts.learning_rate = 2e-3f;
    auto report = model->Train(*ds, topts);
    std::fprintf(stderr, "qpsql: trained %lld params on %zu QEPs in %.1fs\n",
                 static_cast<long long>(report.num_parameters), ds->qeps.size(),
                 report.train_seconds);
    if (opts.cache_mb > 0) {
      model->EnableCache(opts.cache_mb * 1024 * 1024);
      std::fprintf(stderr, "qpsql: plan-prediction cache enabled (%lld MiB)\n",
                   static_cast<long long>(opts.cache_mb));
    }
  }

  // One pool for the whole session; MCTS shards leaf evaluation over it.
  std::unique_ptr<util::ThreadPool> pool;
  if (opts.threads > 1) {
    pool = std::make_unique<util::ThreadPool>(opts.threads - 1);
  }

  exec::Executor executor(*db);
  core::HybridOptions hopts;
  hopts.mcts.threads = opts.threads;
  hopts.mcts.pool = pool.get();
  std::unique_ptr<core::HybridPlanner> hybrid;
  if (opts.planner == "hybrid") {
    hybrid = std::make_unique<core::HybridPlanner>(model.get(), &baseline, hopts);
  }
  std::unique_ptr<core::GuardedPlanner> guarded;
  if (opts.planner == "guarded") {
    core::GuardedOptions gopts;
    gopts.hybrid = hopts;
    gopts.neural_deadline_ms = hopts.mcts.time_budget_ms;
    guarded = std::make_unique<core::GuardedPlanner>(model.get(), &baseline, gopts);
  }

  std::string trace_path = "qpsql_trace.json";
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string sql = StrTrim(line);
    if (sql.empty() || sql[0] == '#') continue;
    if (sql == "\\quit" || sql == "\\q") break;
    if (sql == "\\tables") {
      PrintTables(*db);
      continue;
    }
    if (StartsWith(sql, "\\schema")) {
      PrintSchema(*db, StrTrim(sql.substr(7)));
      continue;
    }
    if (sql == "\\guards") {
      if (guarded) {
        std::printf("%s\n", guarded->stats().ToString().c_str());
        std::printf("circuit: %s\n", guarded->circuit_open() ? "OPEN" : "closed");
      } else {
        std::printf("\\guards requires --planner=guarded\n");
      }
      continue;
    }
    if (StartsWith(sql, "\\cache")) {
      core::PlanPredictionCache* cache =
          model != nullptr ? model->cache() : nullptr;
      if (cache == nullptr) {
        std::printf("\\cache requires a neural planner and --cache-mb=N\n");
        continue;
      }
      const std::string rest = StrTrim(sql.substr(6));
      if (rest == "clear") {
        cache->Clear();
        std::printf("cache cleared\n");
        continue;
      }
      const auto cs = cache->GetStats();
      const int64_t lookups = cs.hits + cs.misses;
      std::printf(
          "plan-prediction cache: %lld entries (capacity %lld bytes)\n"
          "  hits %lld  misses %lld  evictions %lld  hit rate %.1f%%\n",
          static_cast<long long>(cs.entries),
          static_cast<long long>(cs.capacity_bytes),
          static_cast<long long>(cs.hits), static_cast<long long>(cs.misses),
          static_cast<long long>(cs.evictions),
          lookups > 0 ? 100.0 * static_cast<double>(cs.hits) /
                            static_cast<double>(lookups)
                      : 0.0);
      continue;
    }
    if (sql == "\\metrics") {
      std::printf("%s",
                  metrics::RenderText(metrics::Registry::Global().TakeSnapshot())
                      .c_str());
      continue;
    }
    if (StartsWith(sql, "\\trace")) {
      const std::string rest = StrTrim(sql.substr(6));
      if (rest == "on" || StartsWith(rest, "on ")) {
        const std::string path = StrTrim(rest.size() > 2 ? rest.substr(2) : "");
        if (!path.empty()) trace_path = path;
        trace::Start();
        std::printf("tracing on (will write %s)\n", trace_path.c_str());
      } else if (rest == "off") {
        trace::Stop();
        const size_t n = trace::Snapshot().size();
        if (trace::WriteChromeJson(trace_path)) {
          std::printf("tracing off: wrote %zu spans to %s\n", n, trace_path.c_str());
        } else {
          std::printf("tracing off: cannot write %s\n", trace_path.c_str());
        }
      } else {
        std::printf("usage: \\trace on [file] | \\trace off\n");
      }
      continue;
    }

    std::string stmt = sql;
    const bool explain_analyze = ConsumePrefixCI(sql, "explain analyze ", &stmt);

    QPS_TRACE_SPAN_VAR(query_span, "qpsql.query");
    auto q = query::ParseSql(stmt, *db);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.status().ToString().c_str());
      continue;
    }

    query::PlanPtr plan;
    if (opts.planner == "baseline") {
      auto p = baseline.Plan(*q);
      if (!p.ok()) {
        std::printf("plan error: %s\n", p.status().ToString().c_str());
        continue;
      }
      plan = std::move(*p);
    } else if (opts.planner == "neural") {
      auto p = core::MctsPlan(*model, *q, hopts.mcts);
      if (!p.ok()) {
        std::printf("plan error: %s\n", p.status().ToString().c_str());
        continue;
      }
      std::printf("-- MCTS evaluated %d plans in %.0f ms\n", p->plans_evaluated,
                  p->planning_ms);
      plan = std::move(p->plan);
    } else if (opts.planner == "hybrid") {
      auto p = hybrid->Plan(*q);
      if (!p.ok()) {
        std::printf("plan error: %s\n", p.status().ToString().c_str());
        continue;
      }
      std::printf("-- hybrid took the %s path\n", p->used_neural ? "neural" : "DP");
      plan = std::move(p->plan);
    } else if (opts.planner == "guarded") {
      auto p = guarded->Plan(*q);
      if (!p.ok()) {
        std::printf("plan error: %s\n", p.status().ToString().c_str());
        continue;
      }
      std::printf("-- guarded served from the %s stage%s%s\n",
                  core::PlanStageName(p->stage),
                  p->fallback_reason.empty() ? "" : " after ",
                  p->fallback_reason.c_str());
      plan = std::move(p->plan);
    } else {
      std::fprintf(stderr, "unknown --planner: %s\n", opts.planner.c_str());
      return 2;
    }

    if (explain_analyze) {
      auto analysis = executor.ExplainAnalyze(*q, plan.get());
      if (!analysis.ok()) {
        std::printf("execution aborted: %s\n", analysis.status().ToString().c_str());
        continue;
      }
      std::printf("%s\n\n", analysis->ToString().c_str());
      continue;
    }

    auto card = executor.Execute(*q, plan.get());
    if (!card.ok()) {
      std::printf("execution aborted: %s\n", card.status().ToString().c_str());
      continue;
    }
    std::printf("EXPLAIN ANALYZE:\n%s", plan->ToString(*db, *q, true).c_str());
    std::printf("count(*) = %.0f   (%.2f ms simulated)\n\n", *card,
                plan->actual.runtime_ms);
  }
  if (guarded) {
    std::fprintf(stderr, "qpsql guard stats: %s\n",
                 guarded->stats().ToString().c_str());
  }
  return 0;
}
