// Copyright 2026 The QPSeeker Authors
//
// Domain example: a JOB-style analytical session on the IMDb-like
// database. Trains QPSeeker on a sampled multi-join workload, then plans
// and executes three hand-written analytical queries, printing EXPLAIN
// trees, the QPAttention scores over plan nodes (which operators dominate
// the estimate), and a side-by-side with the baseline optimizer.
//
// Run: ./build/examples/imdb_planner

#include <cstdio>

#include "core/mcts.h"
#include "core/qpseeker.h"
#include "eval/workloads.h"
#include "exec/executor.h"
#include "optimizer/planner.h"
#include "query/parser.h"
#include "storage/schemas.h"

using namespace qps;

int main() {
  Rng rng(11);
  auto db = storage::BuildDatabase(storage::ImdbLikeSpec(), 1200, &rng).value();
  auto stats = stats::DatabaseStats::Analyze(*db);
  std::printf("IMDb-like database: %d tables, %lld rows\n\n", db->num_tables(),
              static_cast<long long>(db->TotalRows()));

  // Train on a sampled multi-join workload.
  eval::WorkloadOptions wo;
  wo.num_queries = 60;
  wo.min_joins = 1;
  wo.max_joins = 4;
  wo.num_templates = 20;
  Rng wrng(12);
  auto queries = eval::GenerateWorkload(*db, wo, &wrng);
  sampling::DatasetOptions dopts;
  dopts.source = sampling::PlanSource::kSampled;
  dopts.sampler.max_plans_per_query = 6;
  Rng drng(13);
  auto dataset = sampling::BuildQepDataset(*db, *stats, queries, dopts, &drng).value();
  std::printf("training on %zu QEPs sampled from %zu queries...\n",
              dataset.qeps.size(), dataset.queries.size());

  core::QpSeekerConfig cfg = core::QpSeekerConfig::ForScale(Scale::kSmoke);
  core::QpSeeker seeker(*db, *stats, cfg, 3);
  core::TrainOptions topts;
  topts.epochs = 35;
  topts.learning_rate = 2e-3f;
  auto report = seeker.Train(dataset, topts);
  std::printf("done (%.1fs, %lld params)\n\n", report.train_seconds,
              static_cast<long long>(report.num_parameters));

  const char* analytics[] = {
      // "Movies by production year with their companies."
      "SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn "
      "WHERE mc.movie_id = t.id AND mc.company_id = cn.id "
      "AND t.production_year > 100;",
      // "Cast of highly-ranked movies with role metadata."
      "SELECT COUNT(*) FROM title t, cast_info ci, role_type rt, name n "
      "WHERE ci.movie_id = t.id AND ci.role_id = rt.id AND ci.person_id = n.id "
      "AND t.season_nr <= 2;",
      // "Keyworded movies with extra info rows."
      "SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k, movie_info mi "
      "WHERE mk.movie_id = t.id AND mk.keyword_id = k.id AND mi.movie_id = t.id "
      "AND k.keyword_hash = 3 AND mi.info_hash <= 50;",
  };

  optimizer::Planner baseline(*db, *stats);
  exec::Executor ex(*db);
  for (const char* sql : analytics) {
    auto q = query::ParseSql(sql, *db);
    if (!q.ok()) {
      std::fprintf(stderr, "parse: %s\n", q.status().ToString().c_str());
      return 1;
    }
    std::printf("----------------------------------------------------------\n");
    std::printf("query: %s\n", q->ToSql(*db).c_str());

    core::MctsOptions mopts;
    mopts.time_budget_ms = 200.0;
    auto mcts = core::MctsPlan(seeker, *q, mopts);
    if (!mcts.ok()) {
      std::fprintf(stderr, "mcts: %s\n", mcts.status().ToString().c_str());
      return 1;
    }
    auto pg = baseline.Plan(*q);

    auto run = [&](query::PlanNode* plan) {
      auto card = ex.Execute(*q, plan);
      return card.ok() ? plan->actual.runtime_ms : -1.0;
    };
    const double t_qps = run(mcts->plan.get());
    const double t_pg = run(pg->get());

    std::printf("\nQPSeeker (MCTS, %d plans):\n%s", mcts->plans_evaluated,
                mcts->plan->ToString(*db, *q, true).c_str());
    // Which plan nodes did QPAttention weight the most?
    seeker.PredictPlan(*q, *mcts->plan);
    const nn::Tensor scores = seeker.LastAttentionScores();
    if (scores.size() > 0) {
      std::printf("QPAttention (head 0) scores over nodes:");
      for (int64_t j = 0; j < scores.cols(); ++j) {
        std::printf(" %.2f", scores(0, j));
      }
      std::printf("\n");
    }
    std::printf("\nBaseline:\n%s", (*pg)->ToString(*db, *q, true).c_str());
    std::printf("\nexecution: QPSeeker %.2f ms vs baseline %.2f ms\n\n", t_qps, t_pg);
  }
  return 0;
}
