// Copyright 2026 The QPSeeker Authors
//
// Quickstart: the paper's running example (§5, Figure 6) end to end on the
// toy a/b/c schema —
//   1. build a database and ANALYZE it,
//   2. generate a small training workload and sample the plan space per
//      query (§5.1) to obtain labeled QEPs,
//   3. train QPSeeker's cost modeler,
//   4. plan a new query with MCTS and compare with the PostgreSQL-like
//      baseline, executing both plans.
//
// Run: ./build/examples/quickstart

#include <cstdio>

#include "core/mcts.h"
#include "core/qpseeker.h"
#include "eval/workloads.h"
#include "exec/executor.h"
#include "optimizer/planner.h"
#include "query/parser.h"
#include "storage/schemas.h"

using namespace qps;

int main() {
  // 1. Build + ANALYZE the running-example database (tables a, b, c).
  Rng rng(42);
  auto db_or = storage::BuildDatabase(storage::ToySpec(), 500, &rng);
  if (!db_or.ok()) {
    std::fprintf(stderr, "build failed: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).value();
  auto stats = stats::DatabaseStats::Analyze(*db);
  std::printf("database '%s': %d tables, %lld rows, %zu join edges\n\n",
              db->name().c_str(), db->num_tables(),
              static_cast<long long>(db->TotalRows()), db->join_edges().size());

  // 2. A small workload; sample the plan space per query for training QEPs.
  eval::WorkloadOptions wo;
  wo.num_queries = 48;
  wo.min_joins = 0;
  wo.max_joins = 2;
  wo.num_templates = 12;
  Rng wrng(7);
  auto queries = eval::GenerateWorkload(*db, wo, &wrng);

  sampling::DatasetOptions dopts;
  dopts.source = sampling::PlanSource::kSampled;
  dopts.sampler.max_plans_per_query = 6;
  Rng drng(8);
  auto dataset_or = sampling::BuildQepDataset(*db, *stats, queries, dopts, &drng);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset_or.status().ToString().c_str());
    return 1;
  }
  auto dataset = std::move(dataset_or).value();
  std::printf("training set: %zu queries -> %zu labeled QEPs (%d aborted)\n\n",
              dataset.queries.size(), dataset.qeps.size(), dataset.aborted);

  // 3. Train the cost modeler.
  core::QpSeekerConfig cfg = core::QpSeekerConfig::ForScale(Scale::kSmoke);
  core::QpSeeker seeker(*db, *stats, cfg, /*seed=*/3);
  core::TrainOptions topts;
  topts.epochs = 40;
  topts.learning_rate = 2e-3f;
  auto report = seeker.Train(dataset, topts);
  std::printf("trained %lld parameters in %.1fs, loss %.4f -> %.4f\n\n",
              static_cast<long long>(report.num_parameters), report.train_seconds,
              report.epoch_losses.front(), report.final_loss);

  // 4. Plan the paper's running-example query with MCTS.
  auto q_or = query::ParseSql(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id AND a.a2 = 1;",
      *db);
  if (!q_or.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", q_or.status().ToString().c_str());
    return 1;
  }
  const query::Query q = std::move(q_or).value();
  std::printf("query: %s\n\n", q.ToSql(*db).c_str());

  core::MctsOptions mopts;
  mopts.time_budget_ms = 200.0;  // the paper's planning cut-off
  auto result_or = core::MctsPlan(seeker, q, mopts);
  if (!result_or.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  auto result = std::move(result_or).value();

  optimizer::Planner baseline(*db, *stats);
  auto pg_plan = baseline.Plan(q);

  exec::Executor ex(*db);
  auto qps_card = ex.Execute(q, result.plan.get());
  auto pg_card = ex.Execute(q, pg_plan->get());

  std::printf("QPSeeker plan (MCTS evaluated %d plans in %.0f ms):\n%s",
              result.plans_evaluated, result.planning_ms,
              result.plan->ToString(*db, q, /*with_actual=*/true).c_str());
  std::printf("  -> executed: %.0f rows, %.2f ms (predicted %.2f ms)\n\n",
              qps_card.ok() ? *qps_card : -1.0, result.plan->actual.runtime_ms,
              result.predicted_runtime_ms);
  std::printf("PostgreSQL-like baseline plan:\n%s",
              (*pg_plan)->ToString(*db, q, true).c_str());
  std::printf("  -> executed: %.0f rows, %.2f ms\n", pg_card.ok() ? *pg_card : -1.0,
              (*pg_plan)->actual.runtime_ms);
  return 0;
}
