// Copyright 2026 The QPSeeker Authors
//
// Domain example: using QPSeeker's cost modeler purely as a cardinality /
// selectivity estimator (the Table 4 task) and comparing it against the
// statistics-based estimator and MSCN on a Stack-like workload — the
// "estimator as a library component" use case.
//
// Run: ./build/examples/cardinality_estimation

#include <cstdio>

#include "baselines/mscn.h"
#include "core/qpseeker.h"
#include "eval/metrics.h"
#include "eval/workloads.h"
#include "optimizer/planner.h"
#include "storage/schemas.h"

using namespace qps;

int main() {
  Rng rng(21);
  auto db = storage::BuildDatabase(storage::StackLikeSpec(), 1200, &rng).value();
  auto stats = stats::DatabaseStats::Analyze(*db);

  eval::WorkloadOptions wo;
  wo.num_queries = 90;
  wo.min_joins = 0;
  wo.max_joins = 3;
  wo.num_templates = 30;
  Rng wrng(22);
  auto queries = eval::GenerateWorkload(*db, wo, &wrng);

  sampling::DatasetOptions dopts;
  dopts.source = sampling::PlanSource::kOptimizer;
  Rng drng(23);
  auto dataset = sampling::BuildQepDataset(*db, *stats, queries, dopts, &drng).value();

  // 80/20 split.
  Rng srng(24);
  std::vector<size_t> train_idx, test_idx;
  eval::SplitIndices(dataset.qeps.size(), 0.8, &srng, &train_idx, &test_idx);

  // Train QPSeeker on the training QEPs.
  sampling::QepDataset train;
  train.queries = dataset.queries;
  for (size_t i : train_idx) {
    sampling::Qep qep;
    qep.query_id = dataset.qeps[i].query_id;
    qep.plan = dataset.qeps[i].plan->Clone();
    train.qeps.push_back(std::move(qep));
  }
  core::QpSeeker seeker(*db, *stats, core::QpSeekerConfig::ForScale(Scale::kSmoke), 3);
  core::TrainOptions topts;
  topts.epochs = 40;
  topts.learning_rate = 2e-3f;
  seeker.Train(train, topts);

  // Train MSCN on (query, cardinality) pairs of the same split.
  baselines::MscnConfig mcfg;
  mcfg.epochs = 50;
  mcfg.learning_rate = 2e-3f;
  baselines::Mscn mscn(*db, mcfg, 25);
  std::vector<baselines::CardinalitySample> samples;
  for (size_t i : train_idx) {
    samples.push_back(
        {&dataset.queries[static_cast<size_t>(dataset.qeps[i].query_id)],
         dataset.qeps[i].plan->actual.cardinality});
  }
  mscn.Train(samples, 26);

  optimizer::Planner planner(*db, *stats);
  std::vector<double> err_qps, err_mscn, err_pg;
  std::printf("%-46s %12s %12s %12s %12s\n", "query (held out)", "truth", "QPSeeker",
              "MSCN", "stats-est");
  int shown = 0;
  for (size_t i : test_idx) {
    const auto& qep = dataset.qeps[i];
    const auto& q = dataset.queries[static_cast<size_t>(qep.query_id)];
    const double truth = qep.plan->actual.cardinality;
    const double p_qps = seeker.PredictPlan(q, *qep.plan).cardinality;
    const double p_mscn = mscn.Predict(q);
    auto plan = qep.plan->Clone();
    planner.cost_model().EstimatePlan(q, plan.get());
    const double p_pg = plan->estimated.cardinality;
    err_qps.push_back(eval::QError(p_qps, truth));
    err_mscn.push_back(eval::QError(p_mscn, truth));
    err_pg.push_back(eval::QError(p_pg, truth));
    if (shown++ < 8) {
      std::string sql = q.ToSql(*db).substr(0, 44);
      std::printf("%-46s %12.0f %12.0f %12.0f %12.0f\n", sql.c_str(), truth, p_qps,
                  p_mscn, p_pg);
    }
  }
  auto print_pct = [](const char* name, std::vector<double> errs) {
    auto p = eval::ComputePercentiles(std::move(errs));
    std::printf("%-12s q-error p50 %8.2f  p90 %10.2f  p99 %10.2f\n", name, p.p50,
                p.p90, p.p99);
  };
  std::printf("\nheld-out cardinality estimation (%zu QEPs):\n", test_idx.size());
  print_pct("QPSeeker", err_qps);
  print_pct("MSCN", err_mscn);
  print_pct("stats-est", err_pg);
  return 0;
}
