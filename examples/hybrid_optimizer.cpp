// Copyright 2026 The QPSeeker Authors
//
// Domain example: the hybrid optimizer from the paper's discussion (§7.3)
// — "a neural planner kicks in for complex queries where traditional
// optimizers have trouble". Routes a mixed OLTP-ish/analytical workload
// between the DP baseline (simple queries) and QPSeeker+MCTS (complex
// queries), and reports where each path was taken and the end-to-end
// execution time against either pure strategy.
//
// Run: ./build/examples/hybrid_optimizer

#include <cstdio>

#include "core/hybrid.h"
#include "core/qpseeker.h"
#include "eval/workloads.h"
#include "exec/executor.h"
#include "storage/schemas.h"

using namespace qps;

int main() {
  Rng rng(51);
  auto db = storage::BuildDatabase(storage::ImdbLikeSpec(), 800, &rng).value();
  auto stats = stats::DatabaseStats::Analyze(*db);

  // Train on a sampled mixed workload.
  eval::WorkloadOptions wo;
  wo.num_queries = 60;
  wo.min_joins = 0;
  wo.max_joins = 4;
  wo.num_templates = 20;
  Rng wrng(52);
  auto train_queries = eval::GenerateWorkload(*db, wo, &wrng);
  sampling::DatasetOptions dopts;
  dopts.source = sampling::PlanSource::kSampled;
  dopts.sampler.max_plans_per_query = 6;
  Rng drng(53);
  auto dataset =
      sampling::BuildQepDataset(*db, *stats, train_queries, dopts, &drng).value();
  core::QpSeeker seeker(*db, *stats, core::QpSeekerConfig::ForScale(Scale::kSmoke), 3);
  core::TrainOptions topts;
  topts.epochs = 35;
  topts.learning_rate = 2e-3f;
  seeker.Train(dataset, topts);
  std::printf("trained on %zu QEPs\n\n", dataset.qeps.size());

  // Evaluation workload mixing simple and complex queries.
  eval::WorkloadOptions eo;
  eo.num_queries = 30;
  eo.min_joins = 0;
  eo.max_joins = 5;
  Rng erng(54);
  auto eval_queries = eval::GenerateWorkload(*db, eo, &erng);

  optimizer::Planner baseline(*db, *stats);
  core::HybridOptions hopts;
  hopts.neural_min_relations = 4;
  hopts.mcts.time_budget_ms = 150.0;
  core::HybridPlanner hybrid(&seeker, &baseline, hopts);

  exec::Executor ex(*db);
  auto execute = [&](const query::Query& q, query::PlanNode* plan) {
    auto card = ex.Execute(q, plan);
    return card.ok() ? plan->actual.runtime_ms : ex.last_counters().RuntimeMs();
  };

  double total_hybrid = 0.0, total_pg = 0.0, total_neural = 0.0;
  int neural_count = 0;
  std::printf("%-6s %6s %8s %12s %12s %12s\n", "query", "joins", "path",
              "hybrid ms", "PG ms", "neural ms");
  for (size_t i = 0; i < eval_queries.size(); ++i) {
    const auto& q = eval_queries[i];
    auto h = hybrid.Plan(q);
    auto p = baseline.Plan(q);
    core::MctsOptions mopts = hopts.mcts;
    mopts.seed = 200 + i;
    auto n = core::MctsPlan(seeker, q, mopts);
    if (!h.ok() || !p.ok() || !n.ok()) continue;
    const double t_h = execute(q, h->plan.get());
    const double t_p = execute(q, p->get());
    const double t_n = execute(q, n->plan.get());
    total_hybrid += t_h;
    total_pg += t_p;
    total_neural += t_n;
    neural_count += h->used_neural;
    std::printf("%-6zu %6zu %8s %12.2f %12.2f %12.2f\n", i, q.joins.size(),
                h->used_neural ? "neural" : "DP", t_h, t_p, t_n);
  }
  std::printf("\nhybrid routed %d/%zu queries to the neural planner\n", neural_count,
              eval_queries.size());
  std::printf("totals: hybrid %.1f ms | pure PostgreSQL %.1f ms | pure neural "
              "%.1f ms\n",
              total_hybrid, total_pg, total_neural);
  return 0;
}
