// Copyright 2026 The QPSeeker Authors

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/cancel.h"
#include "util/clock.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/scale.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace qps {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad width");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad width");
}

TEST(StatusTest, Predicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_FALSE(Status::OK().IsNotFound());
}

TEST(StatusTest, RetryableClassification) {
  // Transient: worth another attempt once the condition clears.
  EXPECT_TRUE(Status::ResourceExhausted("shed").IsRetryable());
  EXPECT_TRUE(Status::Unavailable("quarantined").IsRetryable());
  EXPECT_TRUE(Status::IOError("flaky disk").IsRetryable());
  // Terminal: retrying cannot change the outcome.
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("bad query").IsRetryable());
  EXPECT_FALSE(Status::NotFound("no tenant").IsRetryable());
  EXPECT_FALSE(Status::Internal("defect").IsRetryable());
  EXPECT_FALSE(Status::Aborted("cancelled").IsRetryable());
  EXPECT_FALSE(Status::DeadlineExceeded("late").IsRetryable());
}

TEST(StatusTest, ReasonPayloadIsMachineReadable) {
  Status plain = Status::Unavailable("tenant quarantined");
  EXPECT_EQ(plain.reason(), "");
  Status tagged = Status::Unavailable("tenant quarantined").SetReason("quarantined");
  EXPECT_EQ(tagged.reason(), "quarantined");
  EXPECT_EQ(tagged.code(), StatusCode::kUnavailable);
  // The reason survives copies and shows in ToString for humans.
  Status copy = tagged;
  EXPECT_EQ(copy.reason(), "quarantined");
  EXPECT_NE(tagged.ToString().find("quarantined"), std::string::npos);
  // OK statuses carry no reason.
  EXPECT_EQ(Status::OK().reason(), "");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseParse(int x, int* out) {
  QPS_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(StatusOrTest, ValueAndError) {
  auto good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);

  auto bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseParse(7, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(UseParse(-2, &out).ok());
}

TEST(StatusOrTest, ValueOrSubstitutesFallbackOnError) {
  EXPECT_EQ(ParsePositive(5).value_or(-1), 5);
  EXPECT_EQ(ParsePositive(-3).value_or(-1), -1);
  StatusOr<std::string> missing = Status::NotFound("gone");
  EXPECT_EQ(missing.value_or("default"), "default");
  EXPECT_EQ(std::move(missing).value_or("default"), "default");
}

TEST(StatusOrDeathTest, ValueOnErrorFatalLogsInAllBuildModes) {
  auto bad = ParsePositive(-1);
  EXPECT_DEATH(bad.value(), "StatusOr::value\\(\\) on error");
  EXPECT_DEATH(*ParsePositive(0), "InvalidArgument: not positive");
}

TEST(StatusOrDeathTest, ConstructionFromOkStatusFatalLogs) {
  EXPECT_DEATH(
      {
        StatusOr<int> so{Status::OK()};
        (void)so;
      },
      "OK status");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-3}, int64_t{4});
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 4);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(5);
  std::vector<double> w = {0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIndependent) {
  Rng a(42);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(ZipfTest, RankOneMostFrequent) {
  Rng rng(13);
  ZipfDistribution zipf(100, 1.1);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t r = zipf.Sample(&rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 100u);
    ++counts[r];
  }
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[1], counts[50] * 5);
}

TEST(RngDeathTest, CategoricalOverEmptyWeightsFatalLogs) {
  Rng rng(1);
  std::vector<double> empty;
  EXPECT_DEATH(rng.Categorical(empty), "empty weights");
}

TEST(ZipfDeathTest, ZeroRanksFatalLogs) {
  EXPECT_DEATH(ZipfDistribution(0, 1.1), "at least one rank");
}

class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }
};

TEST_F(FaultInjectorTest, DisarmedCheckReturnsOkWithoutCounting) {
  fault::FaultInjector& fi = fault::FaultInjector::Global();
  EXPECT_FALSE(fi.AnyArmed());
  EXPECT_TRUE(fault::Check("never.armed").ok());
  EXPECT_EQ(fi.Hits("never.armed"), 0);
  EXPECT_EQ(fault::CorruptDouble("never.armed", 1.5), 1.5);
}

TEST_F(FaultInjectorTest, NthHitTriggerFiresExactlyOnce) {
  fault::FaultInjector& fi = fault::FaultInjector::Global();
  fault::FaultSpec spec;
  spec.code = StatusCode::kAborted;
  spec.message = "boom";
  spec.trigger_on_hit = 2;
  fi.Arm("p", spec);
  EXPECT_TRUE(fi.AnyArmed());
  EXPECT_TRUE(fault::Check("p").ok());
  Status st = fault::Check("p");
  EXPECT_TRUE(st.IsAborted());
  EXPECT_EQ(st.message(), "boom");
  EXPECT_TRUE(fault::Check("p").ok()) << "non-sticky: fires on hit 2 only";
  EXPECT_EQ(fi.Hits("p"), 3);
  EXPECT_EQ(fi.Triggers("p"), 1);
}

TEST_F(FaultInjectorTest, StickyTriggerFiresFromNthHitOn) {
  fault::FaultSpec spec;
  spec.trigger_on_hit = 2;
  spec.sticky = true;
  fault::FaultInjector::Global().Arm("p", spec);
  EXPECT_TRUE(fault::Check("p").ok());
  EXPECT_FALSE(fault::Check("p").ok());
  EXPECT_FALSE(fault::Check("p").ok());
  EXPECT_EQ(fault::FaultInjector::Global().Triggers("p"), 2);
}

TEST_F(FaultInjectorTest, ArmedPointsAreIndependent) {
  fault::FaultSpec spec;
  spec.trigger_on_hit = 1;
  spec.sticky = true;
  fault::FaultInjector::Global().Arm("p", spec);
  EXPECT_TRUE(fault::Check("other").ok())
      << "arming one point must not fail others";
  EXPECT_FALSE(fault::Check("p").ok());
}

TEST_F(FaultInjectorTest, ProbabilityZeroNeverFiresOneAlwaysFires) {
  fault::FaultInjector& fi = fault::FaultInjector::Global();
  fault::FaultSpec never;
  never.probability = 0.0;
  fi.Arm("never", never);
  fault::FaultSpec always;
  always.probability = 1.0;
  fi.Arm("always", always);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(fault::Check("never").ok());
    EXPECT_FALSE(fault::Check("always").ok());
  }
  EXPECT_EQ(fi.Triggers("never"), 0);
  EXPECT_EQ(fi.Triggers("always"), 50);
}

TEST_F(FaultInjectorTest, ProbabilisticStreamIsSeedReproducible) {
  fault::FaultInjector& fi = fault::FaultInjector::Global();
  fault::FaultSpec coin;
  coin.probability = 0.5;
  auto run = [&] {
    fi.Arm("coin", coin);
    fi.Seed(77);
    std::string pattern;
    for (int i = 0; i < 32; ++i) pattern += fault::Check("coin").ok() ? '.' : 'X';
    return pattern;
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
}

TEST_F(FaultInjectorTest, NanCorruptionOnlyWhenSpecFires) {
  fault::FaultSpec spec;
  spec.inject_nan = true;
  spec.trigger_on_hit = 2;
  fault::FaultInjector::Global().Arm("nan", spec);
  EXPECT_EQ(fault::CorruptDouble("nan", 3.0), 3.0);
  EXPECT_TRUE(std::isnan(fault::CorruptDouble("nan", 3.0)));
  EXPECT_EQ(fault::CorruptDouble("nan", 3.0), 3.0);
}

TEST_F(FaultInjectorTest, LatencyOnlyOkSpecDelaysButSucceeds) {
  fault::FaultSpec spec;
  spec.code = StatusCode::kOk;
  spec.latency_ms = 1.0;
  spec.trigger_on_hit = 1;
  fault::FaultInjector::Global().Arm("slow", spec);
  EXPECT_TRUE(fault::Check("slow").ok());
  EXPECT_EQ(fault::FaultInjector::Global().Triggers("slow"), 1);
}

TEST_F(FaultInjectorTest, RearmResetsCountersAndDisarmAllClears) {
  fault::FaultInjector& fi = fault::FaultInjector::Global();
  fault::FaultSpec spec;
  spec.trigger_on_hit = 1;
  fi.Arm("p", spec);
  (void)fault::Check("p");
  EXPECT_EQ(fi.Hits("p"), 1);
  fi.Arm("p", spec);  // re-arm resets
  EXPECT_EQ(fi.Hits("p"), 0);
  fi.DisarmAll();
  EXPECT_FALSE(fi.AnyArmed());
  EXPECT_TRUE(fault::Check("p").ok());
}

TEST_F(FaultInjectorTest, InjectedErrorsCarryFaultReason) {
  fault::FaultSpec spec;
  spec.code = StatusCode::kIOError;
  spec.trigger_on_hit = 1;
  fault::FaultInjector::Global().Arm("tagged", spec);
  Status st = fault::Check("tagged");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.reason(), "fault_injected");
  EXPECT_TRUE(st.IsRetryable());
}

TEST_F(FaultInjectorTest, ContextScopedSpecOnlyFiresInMatchingContext) {
  fault::FaultInjector& fi = fault::FaultInjector::Global();
  fault::FaultSpec spec;
  spec.trigger_on_hit = 1;
  spec.sticky = true;
  spec.only_context = "tenant_a";
  fi.Arm("scoped", spec);

  // Wrong (and empty) contexts neither fire nor count hits.
  EXPECT_TRUE(fault::Check("scoped").ok());
  {
    fault::ScopedContext ctx("tenant_b");
    EXPECT_TRUE(fault::Check("scoped").ok());
  }
  EXPECT_EQ(fi.Hits("scoped"), 0);

  {
    fault::ScopedContext ctx("tenant_a");
    EXPECT_EQ(fault::ScopedContext::Current(), "tenant_a");
    EXPECT_FALSE(fault::Check("scoped").ok());
    {
      // Contexts nest and restore.
      fault::ScopedContext inner("tenant_b");
      EXPECT_TRUE(fault::Check("scoped").ok());
    }
    EXPECT_FALSE(fault::Check("scoped").ok());
  }
  EXPECT_EQ(fault::ScopedContext::Current(), "");
  EXPECT_TRUE(fault::Check("scoped").ok());
}

TEST(CancelTokenTest, ExplicitCancelTripsPromptly) {
  util::CancelToken token;
  EXPECT_FALSE(token.Cancelled());
  EXPECT_TRUE(token.Check().ok());
  token.Cancel();
  EXPECT_TRUE(token.Cancelled());
  Status st = token.Check();
  EXPECT_TRUE(st.IsAborted());
  EXPECT_EQ(st.reason(), "cancelled");
}

TEST(CancelTokenTest, ArmedDeadlineTripsOnTheInjectedClock) {
  ManualClock manual;
  util::CancelToken token;
  token.ArmDeadline(50.0, &manual);
  EXPECT_FALSE(token.Cancelled());
  manual.AdvanceMillis(49.0);
  EXPECT_FALSE(token.Cancelled());
  manual.AdvanceMillis(2.0);
  EXPECT_TRUE(token.Cancelled());
  Status st = token.Check();
  EXPECT_TRUE(st.IsDeadlineExceeded());
  EXPECT_EQ(st.reason(), "cancelled");
}

TEST(CancelTokenTest, NullTolerantHelpers) {
  EXPECT_FALSE(util::Cancelled(nullptr));
  EXPECT_TRUE(util::CheckCancel(nullptr).ok());
  util::CancelToken token;
  token.Cancel();
  EXPECT_TRUE(util::Cancelled(&token));
  EXPECT_FALSE(util::CheckCancel(&token).ok());
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.234), "1.23");
}

TEST(StringUtilTest, SplitTrimLowerJoin) {
  auto parts = StrSplit("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(StrTrim(parts[1]), "b");
  EXPECT_EQ(StrLower("AbC"), "abc");
  EXPECT_EQ(StrJoin({"x", "y"}, "|"), "x|y");
  EXPECT_TRUE(StartsWith("select *", "select"));
  EXPECT_FALSE(StartsWith("sel", "select"));
}

TEST(StringUtilTest, SplitKeepsEmptyTokens) {
  auto parts = StrSplit("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(ScaleTest, EnvParsing) {
  setenv("QPS_SCALE", "paper", 1);
  EXPECT_EQ(GetScaleFromEnv(), Scale::kPaper);
  setenv("QPS_SCALE", "smoke", 1);
  EXPECT_EQ(GetScaleFromEnv(), Scale::kSmoke);
  setenv("QPS_SCALE", "garbage", 1);
  EXPECT_EQ(GetScaleFromEnv(Scale::kCi), Scale::kCi);
  unsetenv("QPS_SCALE");
  EXPECT_EQ(GetScaleFromEnv(Scale::kSmoke), Scale::kSmoke);
}

TEST(ClockTest, DefaultClockIsMonotone) {
  const Clock* clock = Clock::Default();
  const int64_t a = clock->NowNanos();
  const int64_t b = clock->NowNanos();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);  // epoch is pinned at process start
}

TEST(ClockTest, ManualClockAdvancesOnDemandOnly) {
  ManualClock manual;
  EXPECT_EQ(manual.NowNanos(), 0);
  manual.AdvanceMillis(1.5);
  EXPECT_DOUBLE_EQ(manual.NowMillis(), 1.5);
  manual.AdvanceNanos(500);
  EXPECT_EQ(manual.NowNanos(), 1'500'500);
  manual.SetMillis(42.0);
  EXPECT_DOUBLE_EQ(manual.NowMillis(), 42.0);
  EXPECT_DOUBLE_EQ(manual.NowSeconds(), 0.042);
}

TEST(ClockTest, TimerReadsTheInjectedClock) {
  ManualClock manual;
  Timer timer(&manual);
  EXPECT_DOUBLE_EQ(timer.ElapsedMillis(), 0.0);
  manual.AdvanceMillis(250.0);
  EXPECT_DOUBLE_EQ(timer.ElapsedMillis(), 250.0);
  EXPECT_DOUBLE_EQ(timer.ElapsedSeconds(), 0.25);
  manual.SetMillis(1000.0);
  EXPECT_DOUBLE_EQ(timer.ElapsedMillis(), 1000.0);
}

TEST(VlogTest, GatedOnRuntimeVerbosity) {
  SetVerbosity(0);
  EXPECT_FALSE(VlogEnabled(1));
  EXPECT_TRUE(VlogEnabled(0));
  SetVerbosity(2);
  EXPECT_TRUE(VlogEnabled(1));
  EXPECT_TRUE(VlogEnabled(2));
  EXPECT_FALSE(VlogEnabled(3));
  SetVerbosity(0);
}

TEST(VlogTest, DisabledVlogDoesNotEvaluateTheStream) {
  SetVerbosity(0);
  int evaluations = 0;
  auto side_effect = [&evaluations] {
    ++evaluations;
    return "x";
  };
  QPS_VLOG(5) << side_effect();
  EXPECT_EQ(evaluations, 0);
  SetVerbosity(5);
  QPS_VLOG(5) << side_effect();
  EXPECT_EQ(evaluations, 1);
  SetVerbosity(0);
}

TEST(VlogTest, ThreadIdsAreDense) {
  const int self = LogThreadId();
  EXPECT_GE(self, 0);
  EXPECT_EQ(self, LogThreadId());  // stable within a thread
}

}  // namespace
}  // namespace qps
