// Copyright 2026 The QPSeeker Authors
//
// Int8 quantization path: round-trip error bounds, pack layout (including
// the VNNI blocked copy), cross-kernel bit-identity across ragged shapes,
// GEMM accuracy vs the f32 reference, batch-composition-independence, the
// quantized checkpoint round trip, and malformed-input rejection.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "nn/gemm_int8.h"
#include "nn/layers.h"
#include "nn/quant.h"
#include "nn/serialize.h"
#include "nn/tensor.h"
#include "util/aligned.h"
#include "util/cpuid.h"
#include "util/rng.h"

namespace qps {
namespace nn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Plain f32 reference: out = x @ W + bias, accumulated in double so the
/// reference itself contributes no meaningful error.
Tensor ReferenceGemm(const Tensor& x, const Tensor& w, const float* bias) {
  Tensor out(x.rows(), w.cols());
  for (int64_t i = 0; i < x.rows(); ++i) {
    for (int64_t j = 0; j < w.cols(); ++j) {
      double sum = bias != nullptr ? bias[j] : 0.0;
      for (int64_t p = 0; p < x.cols(); ++p) {
        sum += static_cast<double>(x(i, p)) * static_cast<double>(w(p, j));
      }
      out(i, j) = static_cast<float>(sum);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Alignment

TEST(QuantAlignmentTest, TensorAndQuantBuffersAre32ByteAligned) {
  Rng rng(1);
  for (const int64_t cols : {1, 7, 33, 256}) {
    Tensor t = Tensor::Randn(3, cols, &rng);
    EXPECT_TRUE(util::IsAligned(t.data())) << "cols=" << cols;

    QuantizedTensor q = QuantizeWeights(t, QuantScheme::kPerTensor);
    EXPECT_TRUE(util::IsAligned(q.data.data()));

    PackedQuantWeights p = PackForGemm(q);
    EXPECT_TRUE(util::IsAligned(p.data.data()));
    EXPECT_TRUE(util::IsAligned(p.vnni_data.data(), 64));

    QuantizedActs acts;
    QuantizeActivationsPerRow(t, &acts);
    EXPECT_TRUE(util::IsAligned(acts.data.data()));
  }
}

// ---------------------------------------------------------------------------
// Weight round trip

TEST(QuantWeightsTest, PerTensorRoundTripWithinHalfScale) {
  Rng rng(2);
  Tensor w = Tensor::Randn(13, 29, &rng, 2.5f);
  QuantizedTensor q = QuantizeWeights(w, QuantScheme::kPerTensor);
  ASSERT_EQ(q.num_scales(), 1);
  ASSERT_TRUE(ValidateQuantizedTensor(q, "test").ok());
  Tensor deq = Dequantize(q);
  const float bound = q.scales[0] / 2.0f + 1e-6f;
  for (int64_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::fabs(deq.at(i) - w.at(i)), bound) << "i=" << i;
    EXPECT_GE(127.0f * q.scales[0], std::fabs(w.at(i)) - bound);
  }
}

TEST(QuantWeightsTest, PerChannelRoundTripWithinHalfChannelScale) {
  Rng rng(3);
  Tensor w = Tensor::Randn(17, 9, &rng);
  // Blow up one channel so per-channel genuinely beats per-tensor.
  for (int64_t i = 0; i < w.rows(); ++i) w(i, 4) *= 100.0f;
  QuantizedTensor q = QuantizeWeights(w, QuantScheme::kPerChannel);
  ASSERT_EQ(q.num_scales(), w.cols());
  ASSERT_TRUE(ValidateQuantizedTensor(q, "test").ok());
  Tensor deq = Dequantize(q);
  for (int64_t i = 0; i < w.rows(); ++i) {
    for (int64_t j = 0; j < w.cols(); ++j) {
      EXPECT_LE(std::fabs(deq(i, j) - w(i, j)),
                q.scales[static_cast<size_t>(j)] / 2.0f + 1e-6f);
    }
  }
}

TEST(QuantWeightsTest, ZeroTensorGetsScaleOneAndZeroCodes) {
  Tensor w = Tensor::Zeros(4, 6);
  for (const QuantScheme scheme :
       {QuantScheme::kPerTensor, QuantScheme::kPerChannel}) {
    QuantizedTensor q = QuantizeWeights(w, scheme);
    ASSERT_TRUE(ValidateQuantizedTensor(q, "zero").ok());
    for (const float s : q.scales) EXPECT_EQ(s, 1.0f);
    for (const int8_t v : q.data) EXPECT_EQ(v, 0);
  }
}

TEST(QuantWeightsTest, CodesNeverReachMinusOneTwentyEight) {
  Rng rng(4);
  Tensor w = Tensor::Randn(31, 15, &rng, 10.0f);
  w(0, 0) = -1234.5f;  // force the most negative value to be the range edge
  QuantizedTensor q = QuantizeWeights(w, QuantScheme::kPerTensor);
  for (const int8_t v : q.data) {
    EXPECT_GE(static_cast<int>(v), -127);
    EXPECT_LE(static_cast<int>(v), 127);
  }
}

// ---------------------------------------------------------------------------
// Validation (the loader routes through the same function)

TEST(QuantValidateTest, RejectsMalformedScalesAndShapes) {
  Rng rng(5);
  Tensor w = Tensor::Randn(6, 8, &rng);
  const QuantizedTensor good = QuantizeWeights(w, QuantScheme::kPerChannel);
  ASSERT_TRUE(ValidateQuantizedTensor(good, "good").ok());

  {
    QuantizedTensor q = good;
    q.scales[2] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_FALSE(ValidateQuantizedTensor(q, "nan").ok());
  }
  {
    QuantizedTensor q = good;
    q.scales[0] = -0.25f;
    EXPECT_FALSE(ValidateQuantizedTensor(q, "negative").ok());
  }
  {
    QuantizedTensor q = good;
    q.scales[1] = 0.0f;
    EXPECT_FALSE(ValidateQuantizedTensor(q, "zero").ok());
  }
  {
    QuantizedTensor q = good;
    q.scales[3] = std::numeric_limits<float>::infinity();
    EXPECT_FALSE(ValidateQuantizedTensor(q, "inf").ok());
  }
  {
    QuantizedTensor q = good;
    q.zero_points[4] = 1;  // weights are symmetric; nonzero zp is malformed
    EXPECT_FALSE(ValidateQuantizedTensor(q, "zp").ok());
  }
  {
    QuantizedTensor q = good;
    q.scales.pop_back();  // count no longer matches the scheme
    q.zero_points.pop_back();
    EXPECT_FALSE(ValidateQuantizedTensor(q, "count").ok());
  }
  {
    QuantizedTensor q = good;
    q.data.pop_back();  // data no longer rows*cols
    EXPECT_FALSE(ValidateQuantizedTensor(q, "size").ok());
  }
  {
    QuantizedTensor q = good;
    q.rows = -1;
    EXPECT_FALSE(ValidateQuantizedTensor(q, "dims").ok());
  }
}

// ---------------------------------------------------------------------------
// Pack layout

TEST(QuantPackTest, TransposesPadsAndSumsCorrectly) {
  Rng rng(6);
  const int64_t in = 37, out = 19;  // deliberately not multiples of 64 / 16
  Tensor w = Tensor::Randn(in, out, &rng);
  QuantizedTensor q = QuantizeWeights(w, QuantScheme::kPerTensor);
  PackedQuantWeights p = PackForGemm(q);

  EXPECT_EQ(p.in, in);
  EXPECT_EQ(p.out, out);
  EXPECT_EQ(p.k_padded % 64, 0);
  EXPECT_GE(p.k_padded, in);
  EXPECT_LT(p.k_padded, in + 64);
  EXPECT_EQ(p.out_padded % 16, 0);
  EXPECT_GE(p.out_padded, out);
  ASSERT_EQ(static_cast<int64_t>(p.data.size()), out * p.k_padded);
  ASSERT_EQ(static_cast<int64_t>(p.vnni_data.size()),
            p.out_padded * p.k_padded);
  ASSERT_EQ(static_cast<int64_t>(p.scales.size()), out);
  ASSERT_EQ(static_cast<int64_t>(p.row_sums.size()), out);

  for (int64_t j = 0; j < out; ++j) {
    int32_t sum = 0;
    for (int64_t i = 0; i < p.k_padded; ++i) {
      const int8_t plain = p.data[static_cast<size_t>(j * p.k_padded + i)];
      // Transposed: packed row j, lane i == stored (i, j); padding is zero.
      const int8_t expect =
          i < in ? q.data[static_cast<size_t>(i * out + j)] : int8_t{0};
      ASSERT_EQ(plain, expect) << "j=" << j << " i=" << i;
      // VNNI blocked copy holds the same weight at
      // [jb*16*kp + kg*64 + c*4 + b] for j = 16*jb + c, i = 4*kg + b.
      const int64_t jb = j / 16, c = j % 16, kg = i / 4, b = i % 4;
      const int8_t blocked = p.vnni_data[static_cast<size_t>(
          jb * 16 * p.k_padded + kg * 64 + c * 4 + b)];
      ASSERT_EQ(blocked, expect) << "j=" << j << " i=" << i;
      sum += expect;
    }
    EXPECT_EQ(p.row_sums[static_cast<size_t>(j)], sum) << "j=" << j;
  }
  // Channels beyond `out` in the blocked copy are zero.
  for (int64_t j = out; j < p.out_padded; ++j) {
    const int64_t jb = j / 16, c = j % 16;
    for (int64_t i = 0; i < p.k_padded; ++i) {
      ASSERT_EQ(p.vnni_data[static_cast<size_t>(jb * 16 * p.k_padded +
                                                (i / 4) * 64 + c * 4 + i % 4)],
                0);
    }
  }
}

// ---------------------------------------------------------------------------
// Activation quantization

TEST(QuantActsTest, PerRowZeroExactAndPaddingIsZeroPoint) {
  Rng rng(7);
  Tensor x = Tensor::Randn(5, 50, &rng);
  // An all-positive row and an all-negative row: the range must still
  // include zero so the zero point is exact.
  for (int64_t j = 0; j < x.cols(); ++j) {
    x(1, j) = 0.5f + std::fabs(x(1, j));
    x(2, j) = -0.5f - std::fabs(x(2, j));
  }
  QuantizedActs acts;
  QuantizeActivationsPerRow(x, &acts);
  ASSERT_EQ(acts.rows, x.rows());
  ASSERT_EQ(acts.cols, x.cols());
  ASSERT_EQ(acts.k_padded % 64, 0);

  for (int64_t i = 0; i < acts.rows; ++i) {
    const float scale = acts.scales[static_cast<size_t>(i)];
    const int32_t zp = acts.zero_points[static_cast<size_t>(i)];
    ASSERT_GT(scale, 0.0f);
    ASSERT_GE(zp, 0);
    ASSERT_LE(zp, 255);
    // Dequantizing the zero point gives exactly zero.
    EXPECT_EQ(scale * static_cast<float>(0), scale * (zp - zp) * 1.0f);
    for (int64_t j = 0; j < acts.cols; ++j) {
      const uint8_t code = acts.data[static_cast<size_t>(i * acts.k_padded + j)];
      const float deq = scale * (static_cast<int32_t>(code) - zp);
      EXPECT_LE(std::fabs(deq - x(i, j)), scale / 2.0f + 1e-6f)
          << "i=" << i << " j=" << j;
    }
    for (int64_t j = acts.cols; j < acts.k_padded; ++j) {
      EXPECT_EQ(acts.data[static_cast<size_t>(i * acts.k_padded + j)],
                static_cast<uint8_t>(zp));
    }
  }
}

// ---------------------------------------------------------------------------
// Kernels

struct Shape {
  int64_t m, k, n;
};

TEST(GemmInt8Test, AllKernelTiersProduceIdenticalIntegers) {
  const Shape shapes[] = {{1, 1, 1},   {1, 64, 16},  {2, 31, 7},
                          {3, 64, 1},  {4, 65, 17},  {5, 127, 33},
                          {8, 128, 48}, {7, 200, 63}, {64, 256, 40}};
  const simd::Isa detected = simd::DetectIsa();
  Rng rng(8);
  for (const Shape& s : shapes) {
    Tensor x = Tensor::Randn(s.m, s.k, &rng);
    Tensor w = Tensor::Randn(s.k, s.n, &rng);
    QuantizedActs acts;
    QuantizeActivationsPerRow(x, &acts);
    PackedQuantWeights packed =
        PackForGemm(QuantizeWeights(w, QuantScheme::kPerTensor));

    std::vector<int32_t> ref(static_cast<size_t>(s.m * s.n));
    Int8AccumulateRows(simd::Isa::kScalar, acts, packed, ref.data());

    // The scalar result must equal the plain i32 dot product.
    for (int64_t i = 0; i < s.m; ++i) {
      for (int64_t j = 0; j < s.n; ++j) {
        int32_t sum = 0;
        for (int64_t p = 0; p < acts.k_padded; ++p) {
          const int32_t av =
              acts.data[static_cast<size_t>(i * acts.k_padded + p)];
          const int32_t wv =
              packed.data[static_cast<size_t>(j * packed.k_padded + p)];
          sum += av * wv;
        }
        ASSERT_EQ(ref[static_cast<size_t>(i * s.n + j)], sum)
            << "m=" << s.m << " k=" << s.k << " n=" << s.n;
      }
    }

    for (const simd::Isa isa : {simd::Isa::kAvx2, simd::Isa::kAvx512Vnni}) {
      if (isa > detected) continue;  // host can't run this tier
      std::vector<int32_t> got(static_cast<size_t>(s.m * s.n), -1);
      Int8AccumulateRows(isa, acts, packed, got.data());
      ASSERT_EQ(got, ref) << "isa=" << static_cast<int>(isa) << " m=" << s.m
                          << " k=" << s.k << " n=" << s.n;
    }
  }
}

TEST(GemmInt8Test, IsaOverrideAboveHostCapabilityIsClamped) {
  simd::SetIsaOverrideForTest(simd::Isa::kAvx512Vnni);
  EXPECT_LE(simd::ActiveIsa(), simd::DetectIsa());
  simd::ClearIsaOverrideForTest();
}

TEST(GemmInt8Test, MatchesF32ReferenceWithinQuantizationBound) {
  Rng rng(9);
  const int64_t m = 6, k = 96, n = 24;
  Tensor x = Tensor::Randn(m, k, &rng);
  Tensor w = Tensor::Randn(k, n, &rng);
  std::vector<float> bias(static_cast<size_t>(n), 0.0f);
  for (auto& b : bias) b = rng.Normal();

  QuantizedActs acts;
  QuantizeActivationsPerRow(x, &acts);
  QuantizedTensor q = QuantizeWeights(w, QuantScheme::kPerChannel);
  PackedQuantWeights packed = PackForGemm(q);
  Tensor out(m, n);
  GemmInt8(acts, packed, bias.data(), &out);

  const Tensor ref = ReferenceGemm(x, w, bias.data());
  for (int64_t i = 0; i < m; ++i) {
    const float sa = acts.scales[static_cast<size_t>(i)];
    for (int64_t j = 0; j < n; ++j) {
      const float sw = packed.scales[static_cast<size_t>(j)];
      // |a~w~ - aw| <= sum_p |a_p| sw/2 + (|w_pj| + sw/2) sa/2, plus slack
      // for f32 epilogue rounding.
      double bound = 1e-4;
      for (int64_t p = 0; p < k; ++p) {
        bound += std::fabs(x(i, p)) * sw / 2.0 +
                 (std::fabs(w(p, j)) + sw / 2.0) * sa / 2.0;
      }
      EXPECT_LE(std::fabs(out(i, j) - ref(i, j)), bound)
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(GemmInt8Test, BatchRowsMatchSingleRowBitwise) {
  // The per-row activation scheme makes row r of a batched quantized
  // forward depend only on row r — the invariant serving determinism
  // relies on (PredictPlansBatch == PredictPlan bitwise).
  Rng rng(10);
  const int64_t m = 9, k = 70, n = 21;
  Tensor x = Tensor::Randn(m, k, &rng);
  Tensor w = Tensor::Randn(k, n, &rng);
  std::vector<float> bias(static_cast<size_t>(n), 0.25f);
  PackedQuantWeights packed =
      PackForGemm(QuantizeWeights(w, QuantScheme::kPerTensor));

  QuantizedActs batch_acts;
  QuantizeActivationsPerRow(x, &batch_acts);
  Tensor batch_out(m, n);
  GemmInt8(batch_acts, packed, bias.data(), &batch_out);

  for (int64_t i = 0; i < m; ++i) {
    Tensor row(1, k);
    std::memcpy(row.data(), x.data() + i * k,
                sizeof(float) * static_cast<size_t>(k));
    QuantizedActs row_acts;
    QuantizeActivationsPerRow(row, &row_acts);
    ASSERT_EQ(row_acts.scales[0], batch_acts.scales[static_cast<size_t>(i)]);
    ASSERT_EQ(row_acts.zero_points[0],
              batch_acts.zero_points[static_cast<size_t>(i)]);
    Tensor row_out(1, n);
    GemmInt8(row_acts, packed, bias.data(), &row_out);
    for (int64_t j = 0; j < n; ++j) {
      ASSERT_EQ(row_out(0, j), batch_out(i, j)) << "i=" << i << " j=" << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Module + checkpoint integration

TEST(QuantCheckpointTest, QuantizedSaveLoadServesBitIdentically) {
  Rng rng(11);
  Mlp saved(12, 32, 4, /*hidden_layers=*/2, &rng);
  ASSERT_GT(QuantizeModule(&saved), 0);
  ASSERT_TRUE(ModuleHasQuantizedWeights(saved));

  const std::string path = TempPath("quant_roundtrip.ckpt");
  std::remove(path.c_str());
  ASSERT_TRUE(SaveModuleQuantized(saved, path).ok());

  Rng rng2(99);  // different init: everything must come from the file
  Mlp loaded(12, 32, 4, 2, &rng2);
  Status st = LoadModule(&loaded, path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(ModuleHasQuantizedWeights(loaded));

  Tensor x = Tensor::Randn(5, 12, &rng);
  Tensor out_saved, out_loaded;
  saved.ForwardTensor(x, &out_saved);
  loaded.ForwardTensor(x, &out_loaded);
  ASSERT_EQ(out_saved.rows(), out_loaded.rows());
  ASSERT_EQ(out_saved.cols(), out_loaded.cols());
  for (int64_t i = 0; i < out_saved.size(); ++i) {
    ASSERT_EQ(out_saved.at(i), out_loaded.at(i)) << "i=" << i;
  }
  std::remove(path.c_str());
}

TEST(QuantCheckpointTest, PlainF32CheckpointClearsAttachedQuantization) {
  Rng rng(12);
  Mlp module(8, 16, 3, 1, &rng);
  ASSERT_GT(QuantizeModule(&module), 0);
  ASSERT_TRUE(ModuleHasQuantizedWeights(module));

  const std::string path = TempPath("quant_f32.ckpt");
  std::remove(path.c_str());
  Rng rng2(13);
  Mlp f32_source(8, 16, 3, 1, &rng2);
  ASSERT_TRUE(SaveModule(f32_source, path).ok());
  ASSERT_TRUE(LoadModule(&module, path).ok());
  EXPECT_FALSE(ModuleHasQuantizedWeights(module));
  std::remove(path.c_str());
}

TEST(QuantCheckpointTest, CorruptedQuantSectionRejectedAtomically) {
  Rng rng(14);
  Mlp saved(10, 24, 2, 1, &rng);
  const std::string path = TempPath("quant_corrupt.ckpt");
  std::remove(path.c_str());
  ASSERT_TRUE(SaveModuleQuantized(saved, path).ok());

  std::string bytes = ReadAll(path);
  // Find the int8 section by its name and damage a byte well inside it.
  const size_t at = bytes.find("model_int8");
  ASSERT_NE(at, std::string::npos);
  ASSERT_LT(at + 64, bytes.size());
  bytes[at + 48] ^= 0x20;
  WriteAll(path, bytes);

  Rng rng2(15);
  Mlp loaded(10, 24, 2, 1, &rng2);
  Tensor x = Tensor::Randn(3, 10, &rng2);
  Tensor before, after;
  loaded.ForwardTensor(x, &before);

  Status st = LoadModule(&loaded, path);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(ModuleHasQuantizedWeights(loaded));
  // All-or-nothing: the failed load left the module untouched.
  loaded.ForwardTensor(x, &after);
  for (int64_t i = 0; i < before.size(); ++i) {
    ASSERT_EQ(before.at(i), after.at(i)) << "i=" << i;
  }
  std::remove(path.c_str());
}

TEST(QuantModuleTest, ClearRestoresF32Inference) {
  Rng rng(16);
  Mlp module(6, 12, 2, 1, &rng);
  Tensor x = Tensor::Randn(4, 6, &rng);
  Tensor f32_out, int8_out, cleared_out;
  module.ForwardTensor(x, &f32_out);

  ASSERT_GT(QuantizeModule(&module), 0);
  module.ForwardTensor(x, &int8_out);
  // Quantized inference is close to, but generally not equal to, f32.
  double max_abs = 0.0;
  for (int64_t i = 0; i < f32_out.size(); ++i) {
    max_abs = std::max(max_abs,
                       static_cast<double>(std::fabs(f32_out.at(i))));
  }
  for (int64_t i = 0; i < f32_out.size(); ++i) {
    EXPECT_NEAR(int8_out.at(i), f32_out.at(i), 0.1 * (1.0 + max_abs));
  }

  ClearModuleQuantization(&module);
  EXPECT_FALSE(ModuleHasQuantizedWeights(module));
  module.ForwardTensor(x, &cleared_out);
  for (int64_t i = 0; i < f32_out.size(); ++i) {
    ASSERT_EQ(cleared_out.at(i), f32_out.at(i)) << "i=" << i;
  }
}

}  // namespace
}  // namespace nn
}  // namespace qps
