// Copyright 2026 The QPSeeker Authors
//
// Tenant isolation tests for sharded multi-tenant serving: registry
// validation (ids, duplicates, unknown lookups), deterministic shard
// routing, kNotFound routing for unknown tenants, quota isolation between
// a hot and a cold tenant, remove-while-inflight quiescence, per-tenant
// model swaps, and bit-identical plans vs. single-tenant serving. Runs in
// the tier-1 TSan set: the control-plane mutations race live Submits.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/planner_backends.h"
#include "core/qpseeker.h"
#include "query/parser.h"
#include "serve/sharded_service.h"
#include "storage/schemas.h"
#include "util/fault.h"

namespace qps {
namespace serve {
namespace {

class TenantTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(1);
    db_ = storage::BuildDatabase(storage::ToySpec(), 300, &rng).value().release();
    stats_ = stats::DatabaseStats::Analyze(*db_).release();
    baseline_ = new optimizer::Planner(*db_, *stats_);

    std::vector<query::Query> queries;
    const char* sqls[] = {
        "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 < 5;",
        "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;",
    };
    for (const char* sql : sqls) {
      queries.push_back(query::ParseSql(sql, *db_).value());
    }
    sampling::DatasetOptions dopts;
    dopts.source = sampling::PlanSource::kSampled;
    dopts.sampler.max_plans_per_query = 4;
    Rng drng(2);
    auto ds =
        sampling::BuildQepDataset(*db_, *stats_, queries, dopts, &drng).value();
    auto* model = new core::QpSeeker(
        *db_, *stats_, core::QpSeekerConfig::ForScale(Scale::kSmoke), 3);
    core::TrainOptions topts;
    topts.epochs = 4;
    model->Train(ds, topts);
    model_ = model;
  }

  static void TearDownTestSuite() {
    delete model_;
    delete baseline_;
    delete stats_;
    delete db_;
  }

  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }

  static query::Query ThreeWay() {
    return query::ParseSql(
               "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;",
               *db_)
        .value();
  }

  /// Rollout-capped MCTS: plans are a pure function of (query, seed).
  static core::GuardedOptions Gopts() {
    core::GuardedOptions gopts;
    gopts.hybrid.neural_min_relations = 3;
    gopts.hybrid.mcts.time_budget_ms = 1e9;
    gopts.hybrid.mcts.max_rollouts = 16;
    gopts.hybrid.mcts.eval_batch = 4;
    gopts.hybrid.mcts.seed = 5;
    return gopts;
  }

  static PlanServiceDeps Deps(const std::string& backend) {
    PlanServiceDeps deps;
    deps.planner_name = backend;
    deps.model = SharedModel();
    deps.baseline = baseline_;
    deps.guard_options = Gopts();
    return deps;
  }

  /// Non-owning alias over the suite-owned model.
  static std::shared_ptr<const core::QpSeeker> SharedModel() {
    return std::shared_ptr<const core::QpSeeker>(
        std::shared_ptr<const core::QpSeeker>(), model_);
  }

  static TenantSpec Spec(const std::string& id,
                         const std::string& backend = "neural",
                         size_t max_pending = 16) {
    TenantSpec spec;
    spec.tenant_id = id;
    spec.deps = Deps(backend);
    spec.quota.max_pending = max_pending;
    return spec;
  }

  static PlanRequest Req(const std::string& tenant, uint64_t seed = 0) {
    PlanRequest request;
    request.query = ThreeWay();
    request.tenant_id = tenant;
    request.seed = seed;
    return request;
  }

  static std::unique_ptr<ShardedPlanService> MakeSharded(
      int shards = 2, int workers_per_shard = 2) {
    ShardedPlanServiceOptions options;
    options.shards = shards;
    options.workers_per_shard = workers_per_shard;
    auto sharded = ShardedPlanService::Create(options);
    EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();
    return std::move(sharded).value();
  }

  static storage::Database* db_;
  static stats::DatabaseStats* stats_;
  static optimizer::Planner* baseline_;
  static const core::QpSeeker* model_;
};

storage::Database* TenantTest::db_ = nullptr;
stats::DatabaseStats* TenantTest::stats_ = nullptr;
optimizer::Planner* TenantTest::baseline_ = nullptr;
const core::QpSeeker* TenantTest::model_ = nullptr;

TEST_F(TenantTest, RegistryValidatesIdsAndRejectsDuplicates) {
  TenantRegistry registry;
  EXPECT_TRUE(registry.Add(Spec("acme")).ok());
  EXPECT_EQ(registry.Add(Spec("acme")).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.Add(Spec("")).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Add(Spec("Mixed-Case!")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Add(Spec(std::string(65, 'a'))).code(),
            StatusCode::kInvalidArgument);

  // Non-baseline backends need a model; shed-to-baseline needs a baseline.
  TenantSpec no_model = Spec("ghost");
  no_model.deps.model = nullptr;
  EXPECT_EQ(registry.Add(std::move(no_model)).code(),
            StatusCode::kInvalidArgument);
  TenantSpec no_baseline = Spec("degrader");
  no_baseline.deps.baseline = nullptr;
  no_baseline.quota.shed_to_baseline = true;
  EXPECT_EQ(registry.Add(std::move(no_baseline)).code(),
            StatusCode::kInvalidArgument);

  EXPECT_TRUE(registry.Contains("acme"));
  EXPECT_FALSE(registry.Contains("ghost"));
  EXPECT_EQ(registry.Get("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Remove("ghost").code(), StatusCode::kNotFound);
  EXPECT_TRUE(registry.Remove("acme").ok());
  EXPECT_EQ(registry.size(), 0u);
}

TEST_F(TenantTest, ShardRoutingIsDeterministic) {
  // Same id -> same shard, for two independently built rings and for
  // repeated lookups (no dependence on process state or lookup order).
  const ShardRing a(4), b(4);
  std::set<int> used;
  for (int t = 0; t < 64; ++t) {
    const std::string id = "tenant_" + std::to_string(t);
    const int shard = a.ShardFor(id);
    EXPECT_EQ(shard, b.ShardFor(id)) << id;
    EXPECT_EQ(shard, a.ShardFor(id)) << id;
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    used.insert(shard);
  }
  // 64 sequential ids over 4 shards must not collapse onto one arc (the
  // regression the avalanche finalizer in TenantHash guards against).
  EXPECT_EQ(used.size(), 4u);

  // The service's routing is the ring's.
  auto sharded = MakeSharded(4);
  ASSERT_TRUE(sharded->AddTenant(Spec("acme")).ok());
  const ShardRing reference(4);
  EXPECT_EQ(sharded->ShardOf("acme"), reference.ShardFor("acme"));
}

TEST_F(TenantTest, UnknownTenantSubmitReturnsNotFound) {
  auto sharded = MakeSharded();
  ASSERT_TRUE(sharded->AddTenant(Spec("acme")).ok());

  auto unknown = sharded->Submit(Req("ghost")).get();
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  auto empty = sharded->Submit(Req("")).get();
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kNotFound);

  EXPECT_EQ(sharded->TenantStats("ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(sharded->RemoveTenant("ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(sharded->SwapTenantModel("ghost", SharedModel()).code(),
            StatusCode::kNotFound);

  auto known = sharded->Submit(Req("acme", 11)).get();
  ASSERT_TRUE(known.ok()) << known.status().ToString();
}

TEST_F(TenantTest, RemoveWhileInflightQuiescesBeforeDestruction) {
  auto sharded = MakeSharded(1, 1);
  ASSERT_TRUE(sharded->AddTenant(Spec("acme")).ok());

  // Stall the first rollout so the request is mid-plan when the tenant is
  // removed; RemoveTenant must wait it out, and the future must resolve.
  fault::FaultSpec stall;
  stall.code = StatusCode::kOk;
  stall.latency_ms = 200.0;
  stall.trigger_on_hit = 1;
  fault::FaultInjector::Global().Arm("mcts.rollout", stall);

  auto inflight = sharded->Submit(Req("acme", 21));
  while (sharded->TenantStats("acme")->submitted == 0) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(sharded->RemoveTenant("acme").ok());

  // Removal quiesced the core: the in-flight future is already resolved.
  auto result = inflight.get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->plan, nullptr);

  // Unrouted: the id is free again.
  EXPECT_EQ(sharded->Submit(Req("acme")).get().status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(sharded->AddTenant(Spec("acme")).ok());
}

TEST_F(TenantTest, HotTenantShedsOnItsOwnQuota) {
  auto sharded = MakeSharded(2, 1);
  // Colocate both tenants by construction-independent routing; the quota
  // must isolate them regardless of shard placement.
  ASSERT_TRUE(sharded->AddTenant(Spec("hot", "neural", 1)).ok());
  ASSERT_TRUE(sharded->AddTenant(Spec("cold", "neural", 16)).ok());

  fault::FaultSpec stall;
  stall.code = StatusCode::kOk;
  stall.latency_ms = 200.0;
  stall.trigger_on_hit = 1;
  fault::FaultInjector::Global().Arm("mcts.rollout", stall);

  // First hot request parks in the stalled rollout; the burst behind it
  // exceeds max_pending=1 and sheds on the hot tenant's own quota.
  auto first = sharded->Submit(Req("hot", 30));
  while (sharded->TenantStats("hot")->submitted == 0) {
    std::this_thread::yield();
  }
  std::vector<std::future<StatusOr<core::PlanResult>>> burst;
  for (int i = 0; i < 8; ++i) {
    burst.push_back(sharded->Submit(Req("hot", 31 + static_cast<uint64_t>(i))));
  }
  int shed = 0;
  for (auto& f : burst) {
    auto r = f.get();
    if (!r.ok() && r.status().code() == StatusCode::kResourceExhausted) ++shed;
  }
  EXPECT_GT(shed, 0);
  EXPECT_TRUE(first.get().ok());
  EXPECT_GE(sharded->TenantStats("hot")->shed, shed);

  // The cold tenant was never affected: no shed, requests complete.
  auto cold = sharded->Submit(Req("cold", 40)).get();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(sharded->TenantStats("cold")->shed, 0);
}

TEST_F(TenantTest, PlansAreBitIdenticalToSingleTenantServing) {
  auto sharded = MakeSharded(4, 2);
  for (const char* id : {"alpha", "beta", "gamma"}) {
    ASSERT_TRUE(sharded->AddTenant(Spec(id)).ok());
  }
  PlanServiceOptions solo_opts;
  solo_opts.workers = 2;
  auto solo_or = PlanService::Create(Deps("neural"), solo_opts);
  ASSERT_TRUE(solo_or.ok());
  auto solo = std::move(solo_or).value();

  for (uint64_t seed : {101u, 102u, 103u}) {
    for (const char* id : {"alpha", "beta", "gamma"}) {
      auto via_shard = sharded->Submit(Req(id, seed)).get();
      PlanRequest solo_req;
      solo_req.query = ThreeWay();
      solo_req.seed = seed;
      auto via_solo = solo->Submit(std::move(solo_req)).get();
      ASSERT_TRUE(via_shard.ok() && via_solo.ok());
      const query::Query q = ThreeWay();
      EXPECT_EQ(via_shard->plan->ToString(*db_, q),
                via_solo->plan->ToString(*db_, q))
          << "tenant " << id << " seed " << seed;
    }
  }
}

TEST_F(TenantTest, SwapTenantModelOnlyTouchesThatTenant) {
  auto sharded = MakeSharded();
  ASSERT_TRUE(sharded->AddTenant(Spec("acme")).ok());
  ASSERT_TRUE(sharded->AddTenant(Spec("globex")).ok());

  auto before = sharded->Submit(Req("acme", 50)).get();
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(sharded->SwapTenantModel("acme", SharedModel()).ok());

  // Same model weights -> same deterministic plan after the swap, and the
  // other tenant keeps serving throughout.
  auto after = sharded->Submit(Req("acme", 50)).get();
  ASSERT_TRUE(after.ok());
  const query::Query q = ThreeWay();
  EXPECT_EQ(before->plan->ToString(*db_, q), after->plan->ToString(*db_, q));
  EXPECT_TRUE(sharded->Submit(Req("globex", 51)).get().ok());
}

TEST_F(TenantTest, ControlPlaneRacesLiveTraffic) {
  // TSan target: AddTenant / RemoveTenant / SwapTenantModel churn while
  // clients submit against stable tenants on the same shards.
  auto sharded = MakeSharded(2, 2);
  ASSERT_TRUE(sharded->AddTenant(Spec("stable_a")).ok());
  ASSERT_TRUE(sharded->AddTenant(Spec("stable_b")).ok());

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    int round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string id = "churn_" + std::to_string(round++ % 2);
      if (sharded->AddTenant(Spec(id)).ok()) {
        (void)sharded->SwapTenantModel(id, SharedModel());
        (void)sharded->RemoveTenant(id);
      }
    }
  });

  constexpr int kPerClient = 8;
  std::vector<std::thread> clients;
  std::atomic<int> completed{0};
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const uint64_t seed = 60 + static_cast<uint64_t>(c) * 100 +
                              static_cast<uint64_t>(i);
        auto r =
            sharded->Submit(Req(c == 0 ? "stable_a" : "stable_b", seed)).get();
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        completed.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  churn.join();
  EXPECT_EQ(completed.load(), 2 * kPerClient);
  EXPECT_EQ(sharded->registry().size(), 2u);
}

}  // namespace
}  // namespace serve
}  // namespace qps
