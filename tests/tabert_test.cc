// Copyright 2026 The QPSeeker Authors

#include <gtest/gtest.h>

#include <cmath>

#include "query/parser.h"
#include "storage/schemas.h"
#include "tabert/tabsketch.h"
#include "util/rng.h"

namespace qps {
namespace tabert {
namespace {

class TabSketchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1);
    auto db = storage::BuildDatabase(storage::ToySpec(), 500, &rng);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    stats_ = stats::DatabaseStats::Analyze(*db_);
  }

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<stats::DatabaseStats> stats_;
};

float Distance(const nn::Tensor& a, const nn::Tensor& b) {
  float d = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    const float diff = a.at(i) - b.at(i);
    d += diff * diff;
  }
  return std::sqrt(d);
}

TEST_F(TabSketchTest, DimensionsFollowConfig) {
  TabSketch base(*db_, *stats_, TabSketchConfig{ModelSize::kBase, 1, 0});
  TabSketch large(*db_, *stats_, TabSketchConfig{ModelSize::kLarge, 1, 0});
  EXPECT_EQ(base.embedding_dim(), 48);
  EXPECT_EQ(large.embedding_dim(), 96);
  EXPECT_EQ(base.TableRepresentation(0).cols(), 48);
  EXPECT_EQ(large.TableRepresentation(0).cols(), 96);
}

TEST_F(TabSketchTest, DeterministicAcrossInstances) {
  TabSketch a(*db_, *stats_, {}, 42);
  TabSketch b(*db_, *stats_, {}, 42);
  const auto ra = a.ColumnRepresentation(0, 1, nullptr);
  const auto rb = b.ColumnRepresentation(0, 1, nullptr);
  EXPECT_NEAR(Distance(ra, rb), 0.0f, 1e-9f);
}

TEST_F(TabSketchTest, DifferentColumnsDiffer) {
  TabSketch ts(*db_, *stats_);
  const auto pk = ts.ColumnRepresentation(0, 0, nullptr);
  const auto attr = ts.ColumnRepresentation(0, 1, nullptr);
  EXPECT_GT(Distance(pk, attr), 0.1f);
}

TEST_F(TabSketchTest, PredicateConditioningChangesRepresentation) {
  TabSketch ts(*db_, *stats_);
  query::FilterPredicate selective;
  selective.rel = 0;
  selective.column = 1;
  selective.op = storage::CompareOp::kEq;
  selective.value = storage::Value::Int(0);
  query::FilterPredicate broad = selective;
  broad.op = storage::CompareOp::kGe;
  broad.value = storage::Value::Int(-1000000);

  const auto uncond = ts.ColumnRepresentation(0, 1, nullptr);
  const auto cond_sel = ts.ColumnRepresentation(0, 1, &selective);
  const auto cond_broad = ts.ColumnRepresentation(0, 1, &broad);
  EXPECT_GT(Distance(uncond, cond_sel), 0.05f);
  EXPECT_GT(Distance(cond_sel, cond_broad), 0.05f);
}

TEST_F(TabSketchTest, ScanDataRepresentationPicksFilteredColumn) {
  TabSketch ts(*db_, *stats_);
  auto q = query::ParseSql("SELECT COUNT(*) FROM a WHERE a.a2 < 3;", *db_);
  ASSERT_TRUE(q.ok());
  auto q_nofilter = query::ParseSql("SELECT COUNT(*) FROM a;", *db_);
  ASSERT_TRUE(q_nofilter.ok());
  const auto filtered = ts.ScanDataRepresentation(*q, 0);
  const auto table_cls = ts.ScanDataRepresentation(*q_nofilter, 0);
  EXPECT_GT(Distance(filtered, table_cls), 0.05f);
  // Unfiltered scan rep == table CLS.
  EXPECT_NEAR(Distance(table_cls, ts.TableRepresentation(0)), 0.0f, 1e-9f);
}

TEST_F(TabSketchTest, TimingScalesWithKAndSize) {
  // Fixed embedding_dim isolates the mixing-rounds cost.
  TabSketch k1(*db_, *stats_, TabSketchConfig{ModelSize::kBase, 1, 64});
  TabSketch k3(*db_, *stats_, TabSketchConfig{ModelSize::kBase, 3, 64});
  TabSketch large(*db_, *stats_, TabSketchConfig{ModelSize::kLarge, 3, 64});
  query::FilterPredicate pred;
  pred.rel = 0;
  pred.column = 1;
  pred.op = storage::CompareOp::kLe;
  pred.value = storage::Value::Int(3);
  constexpr int kReps = 300;
  for (int i = 0; i < kReps; ++i) {
    k1.ColumnRepresentation(0, 1, &pred);
    k3.ColumnRepresentation(0, 1, &pred);
    large.ColumnRepresentation(0, 1, &pred);
  }
  EXPECT_EQ(k1.num_calls(), kReps);
  // K=3 does 3x the mixing rounds; large does 9x. Wall-clock is noisy on CI,
  // so only require a monotone ordering with slack.
  EXPECT_GT(k3.total_time_ms(), k1.total_time_ms() * 0.9);
  EXPECT_GT(large.total_time_ms(), k1.total_time_ms());
}

TEST_F(TabSketchTest, CacheMakesUnconditionedCallsCheap) {
  TabSketch ts(*db_, *stats_);
  ts.TableRepresentation(1);
  const int64_t calls_after_first = ts.num_calls();
  ts.TableRepresentation(1);
  ts.TableRepresentation(1);
  EXPECT_EQ(ts.num_calls(), calls_after_first) << "cached calls must not recompute";
}

TEST_F(TabSketchTest, RepresentationsAreFinite) {
  TabSketch ts(*db_, *stats_);
  for (int t = 0; t < db_->num_tables(); ++t) {
    const auto rep = ts.TableRepresentation(t);
    for (int64_t i = 0; i < rep.size(); ++i) {
      EXPECT_TRUE(std::isfinite(rep.at(i)));
      EXPECT_LE(std::fabs(rep.at(i)), 1.0f) << "tanh-bounded";
    }
  }
}

}  // namespace
}  // namespace tabert
}  // namespace qps
