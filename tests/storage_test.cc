// Copyright 2026 The QPSeeker Authors

#include <gtest/gtest.h>

#include <set>

#include "storage/csv.h"
#include "storage/datagen.h"
#include "storage/schemas.h"
#include "util/rng.h"

namespace qps {
namespace storage {
namespace {

std::unique_ptr<Database> BuildToy(int64_t base_rows = 200, uint64_t seed = 1) {
  Rng rng(seed);
  auto db = BuildDatabase(ToySpec(), base_rows, &rng);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

TEST(TableTest, ColumnsAndRows) {
  auto db = BuildToy();
  const int a = db->TableIndex("a");
  ASSERT_GE(a, 0);
  const Table& t = db->table(a);
  EXPECT_EQ(t.num_rows(), 200);
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_EQ(t.ColumnIndex("id"), 0);
  EXPECT_EQ(t.ColumnIndex("a2"), 1);
  EXPECT_EQ(t.ColumnIndex("nope"), -1);
}

TEST(TableTest, PrimaryKeyIsSequential) {
  auto db = BuildToy();
  const Table& t = db->table(db->TableIndex("a"));
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(t.column(0).GetInt(r), r);
  }
}

TEST(TableTest, ForeignKeyInParentRange) {
  auto db = BuildToy();
  const Table& b = db->table(db->TableIndex("b"));
  const Table& a = db->table(db->TableIndex("a"));
  const int fk = b.ColumnIndex("b1");
  ASSERT_GE(fk, 0);
  for (int64_t r = 0; r < b.num_rows(); ++r) {
    const int64_t v = b.column(fk).GetInt(r);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, a.num_rows());
  }
}

TEST(TableTest, OrderedIndexIsSorted) {
  auto db = BuildToy();
  const Table& b = db->table(db->TableIndex("b"));
  const int col = b.ColumnIndex("b3");
  const auto& perm = b.OrderedIndex(col);
  ASSERT_EQ(perm.size(), static_cast<size_t>(b.num_rows()));
  for (size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(b.column(col).GetDouble(perm[i - 1]), b.column(col).GetDouble(perm[i]));
  }
  // Permutation property.
  std::set<uint32_t> uniq(perm.begin(), perm.end());
  EXPECT_EQ(uniq.size(), perm.size());
}

TEST(TableTest, BlockAndIndexModel) {
  auto db = BuildToy(1000);
  const Table& b = db->table(db->TableIndex("b"));
  EXPECT_EQ(b.num_rows(), 2000);
  EXPECT_EQ(b.num_blocks(), (2000 + kRowsPerBlock - 1) / kRowsPerBlock);
  EXPECT_GE(b.IndexHeight(), 1);
  EXPECT_GE(b.IndexLeafPages(), 1);
}

TEST(DatabaseTest, JoinGraphFromForeignKeys) {
  auto db = BuildToy();
  // b.b1 -> a.id and c.c1 -> b.id.
  ASSERT_EQ(db->join_edges().size(), 2u);
  const int a = db->TableIndex("a"), b = db->TableIndex("b"), c = db->TableIndex("c");
  EXPECT_GE(db->FindJoinEdge(b, db->table(b).ColumnIndex("b1"), a, 0), 0);
  EXPECT_GE(db->FindJoinEdge(a, 0, b, db->table(b).ColumnIndex("b1")), 0)
      << "edge lookup must be orientation-insensitive";
  EXPECT_GE(db->FindJoinEdge(c, db->table(c).ColumnIndex("c1"), b, 0), 0);
  EXPECT_EQ(db->FindJoinEdge(a, 0, c, 0), -1);
}

TEST(DatabaseTest, DeterministicForSeed) {
  auto db1 = BuildToy(100, 7);
  auto db2 = BuildToy(100, 7);
  const Table& t1 = db1->table(db1->TableIndex("b"));
  const Table& t2 = db2->table(db2->TableIndex("b"));
  for (int64_t r = 0; r < t1.num_rows(); ++r) {
    EXPECT_EQ(t1.column(1).GetInt(r), t2.column(1).GetInt(r));
  }
}

TEST(DatabaseTest, DifferentSeedsDiffer) {
  auto db1 = BuildToy(100, 7);
  auto db2 = BuildToy(100, 8);
  const Table& t1 = db1->table(db1->TableIndex("b"));
  const Table& t2 = db2->table(db2->TableIndex("b"));
  int diff = 0;
  for (int64_t r = 0; r < t1.num_rows(); ++r) {
    diff += t1.column(1).GetInt(r) != t2.column(1).GetInt(r);
  }
  EXPECT_GT(diff, 0);
}

TEST(DatagenTest, ZipfColumnIsSkewed) {
  Rng rng(3);
  DatabaseSpec spec;
  spec.name = "z";
  TableSpec t;
  t.name = "t";
  t.rel_rows = 1.0;
  ColumnSpec pk;
  pk.name = "id";
  pk.gen = GenKind::kPrimaryKey;
  ColumnSpec z;
  z.name = "z";
  z.gen = GenKind::kZipfInt;
  z.domain = 50;
  z.zipf_s = 1.3;
  t.columns = {pk, z};
  spec.tables = {t};
  auto db = BuildDatabase(spec, 5000, &rng);
  ASSERT_TRUE(db.ok());
  const Column& col = (*db)->table(0).column(1);
  int64_t zero_count = 0;
  for (int64_t r = 0; r < col.size(); ++r) zero_count += col.GetInt(r) == 0;
  // Rank-1 mass for Zipf(1.3) over 50 values is > 25%.
  EXPECT_GT(zero_count, col.size() / 5);
}

TEST(DatagenTest, CategoricalDictionarySortedAndResolvable) {
  auto db = BuildToy();
  // ToySpec has no string columns; build imdb-like tiny instead.
  Rng rng(5);
  auto imdb = BuildDatabase(ImdbLikeSpec(), 500, &rng);
  ASSERT_TRUE(imdb.ok()) << imdb.status().ToString();
  const Table& kt = (*imdb)->table((*imdb)->TableIndex("kind_type"));
  const Column& kind = kt.column(kt.ColumnIndex("kind"));
  ASSERT_FALSE(kind.dictionary().empty());
  for (size_t i = 1; i < kind.dictionary().size(); ++i) {
    EXPECT_LT(kind.dictionary()[i - 1], kind.dictionary()[i]);
  }
  EXPECT_EQ(kind.LookupDictCode(kind.dictionary()[0]), 0);
  EXPECT_EQ(kind.LookupDictCode("definitely-missing"), -1);
}

TEST(DatagenTest, FkToMissingParentFails) {
  Rng rng(1);
  DatabaseSpec spec;
  spec.name = "bad";
  TableSpec t;
  t.name = "child";
  ColumnSpec fk;
  fk.name = "pid";
  fk.gen = GenKind::kForeignKey;
  fk.ref_table = "ghost";
  t.columns = {fk};
  spec.tables = {t};
  EXPECT_FALSE(BuildDatabase(spec, 10, &rng).ok());
}

TEST(SchemasTest, ImdbHas21TablesAndConnectedGraph) {
  Rng rng(2);
  auto db = BuildDatabase(ImdbLikeSpec(), 300, &rng);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->num_tables(), 21);
  EXPECT_GE((*db)->join_edges().size(), 20u);
  EXPECT_GT((*db)->TotalRows(), 300 * 10);
}

TEST(SchemasTest, StackHas10Tables) {
  Rng rng(2);
  auto db = BuildDatabase(StackLikeSpec(), 300, &rng);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->num_tables(), 10);
  EXPECT_GE((*db)->join_edges().size(), 15u);
}

TEST(CsvTest, RoundTripPreservesDataAndSchema) {
  Rng rng(5);
  auto db = BuildDatabase(ImdbLikeSpec(), 120, &rng);
  ASSERT_TRUE(db.ok());
  const Table& original = (*db)->table((*db)->TableIndex("title"));
  const std::string path = "/tmp/qps_csv_roundtrip.csv";
  ASSERT_TRUE(ExportTableCsv(original, path).ok());
  auto loaded = ImportTableCsv("title", path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Table& copy = **loaded;
  ASSERT_EQ(copy.num_rows(), original.num_rows());
  ASSERT_EQ(copy.num_columns(), original.num_columns());
  for (int c = 0; c < original.num_columns(); ++c) {
    EXPECT_EQ(copy.column(c).name(), original.column(c).name());
    EXPECT_EQ(copy.column(c).type(), original.column(c).type());
    EXPECT_EQ(copy.column_meta(c).is_primary_key, original.column_meta(c).is_primary_key);
    EXPECT_EQ(copy.column_meta(c).ref_table, original.column_meta(c).ref_table);
    for (int64_t r = 0; r < original.num_rows(); ++r) {
      EXPECT_EQ(copy.column(c).GetDouble(r), original.column(c).GetDouble(r))
          << "col " << c << " row " << r;
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, RoundTripStringDictionary) {
  Rng rng(6);
  auto db = BuildDatabase(StackLikeSpec(), 80, &rng);
  ASSERT_TRUE(db.ok());
  const Table& site = (*db)->table((*db)->TableIndex("site"));
  const std::string path = "/tmp/qps_csv_strings.csv";
  ASSERT_TRUE(ExportTableCsv(site, path).ok());
  auto loaded = ImportTableCsv("site", path);
  ASSERT_TRUE(loaded.ok());
  const int c = site.ColumnIndex("site_name");
  const Column& a = site.column(c);
  const Column& b = (*loaded)->column(c);
  for (int64_t r = 0; r < site.num_rows(); ++r) {
    EXPECT_EQ(a.dictionary()[a.GetInt(r)], b.dictionary()[b.GetInt(r)]);
  }
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsMalformedInput) {
  const std::string path = "/tmp/qps_csv_bad.csv";
  auto write = [&](const char* content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs(content, f);
    std::fclose(f);
  };
  write("");
  EXPECT_FALSE(ImportTableCsv("t", path).ok());
  write("x:int64\n1\n2,3\n");
  EXPECT_FALSE(ImportTableCsv("t", path).ok()) << "field count mismatch";
  write("x:int64\nnotanumber\n");
  EXPECT_FALSE(ImportTableCsv("t", path).ok()) << "bad integer";
  write("x:whatever\n1\n");
  EXPECT_FALSE(ImportTableCsv("t", path).ok()) << "unknown type";
  write("x:string\n\"unterminated\n");
  EXPECT_FALSE(ImportTableCsv("t", path).ok()) << "unterminated quote";
  std::remove(path.c_str());
}

TEST(CsvTest, QuotedStringsWithCommasAndQuotes) {
  const std::string path = "/tmp/qps_csv_quotes.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("name:string\n\"a,b\"\n\"say \"\"hi\"\"\"\n", f);
    std::fclose(f);
  }
  auto loaded = ImportTableCsv("t", path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Column& col = (*loaded)->column(0);
  ASSERT_EQ(col.size(), 2);
  EXPECT_EQ(col.dictionary()[col.GetInt(0)], "a,b");
  EXPECT_EQ(col.dictionary()[col.GetInt(1)], "say \"hi\"");
  std::remove(path.c_str());
}

TEST(ValueTest, CompareAndToString) {
  EXPECT_TRUE(CompareDoubles(1.0, CompareOp::kLt, 2.0));
  EXPECT_FALSE(CompareDoubles(2.0, CompareOp::kLt, 2.0));
  EXPECT_TRUE(CompareDoubles(2.0, CompareOp::kLe, 2.0));
  EXPECT_TRUE(CompareDoubles(2.0, CompareOp::kGe, 2.0));
  EXPECT_TRUE(CompareDoubles(3.0, CompareOp::kGt, 2.0));
  EXPECT_TRUE(CompareDoubles(3.0, CompareOp::kNe, 2.0));
  EXPECT_TRUE(CompareDoubles(2.0, CompareOp::kEq, 2.0));
  EXPECT_EQ(Value::Int(3).ToString(), "3");
  EXPECT_EQ(Value::Str("x").ToString(), "'x'");
  EXPECT_EQ(Value::Int(3).AsDouble(), 3.0);
}

}  // namespace
}  // namespace storage
}  // namespace qps
