// Copyright 2026 The QPSeeker Authors
//
// Property-based tests over the planning stack: plan-sampler invariants,
// MCTS plan validity across seeds/budgets, Bao hint-arm properties, and
// hybrid-planner routing laws — each swept over a parameter grid.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/bao.h"
#include "core/hybrid.h"
#include "core/mcts.h"
#include "eval/workloads.h"
#include "query/parser.h"
#include "sampling/plan_sampler.h"
#include "storage/schemas.h"

namespace qps {
namespace {

struct PlannerFixture {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<stats::DatabaseStats> stats;
  std::unique_ptr<optimizer::CardinalityEstimator> cards;
  std::vector<query::Query> queries;
  std::unique_ptr<core::QpSeeker> model;

  static const PlannerFixture& Get() {
    static PlannerFixture* f = [] {
      auto* fx = new PlannerFixture();
      Rng rng(1);
      fx->db = storage::BuildDatabase(storage::ToySpec(), 300, &rng).value();
      fx->stats = stats::DatabaseStats::Analyze(*fx->db);
      fx->cards =
          std::make_unique<optimizer::CardinalityEstimator>(*fx->db, *fx->stats);
      const char* sqls[] = {
          "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 < 5;",
          "SELECT COUNT(*) FROM b, c WHERE c.c1 = b.id;",
          "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id "
          "AND b.b3 > 1;",
      };
      for (const char* sql : sqls) {
        fx->queries.push_back(query::ParseSql(sql, *fx->db).value());
      }
      // A minimally-trained model (enough to fit the normalizer and get
      // stable predictions for planning-validity properties).
      sampling::DatasetOptions dopts;
      dopts.source = sampling::PlanSource::kSampled;
      dopts.sampler.max_plans_per_query = 4;
      Rng drng(2);
      auto ds = sampling::BuildQepDataset(*fx->db, *fx->stats, fx->queries, dopts,
                                          &drng)
                    .value();
      fx->model = std::make_unique<core::QpSeeker>(
          *fx->db, *fx->stats, core::QpSeekerConfig::ForScale(Scale::kSmoke), 3);
      core::TrainOptions topts;
      topts.epochs = 10;
      fx->model->Train(ds, topts);
      return fx;
    }();
    return *f;
  }
};

// ---- Sampler invariants -----------------------------------------------------

class SamplerPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double, uint64_t>> {};

TEST_P(SamplerPropertyTest, InvariantsHold) {
  const auto& fx = PlannerFixture::Get();
  const auto& [query_idx, keep_fraction, seed] = GetParam();
  const query::Query& q = fx.queries[static_cast<size_t>(query_idx)];

  sampling::SamplerOptions opts;
  opts.keep_fraction = keep_fraction;
  opts.candidates_per_order = 4;
  opts.max_plans_per_query = 50;
  sampling::PlanSampler sampler(*fx.db, *fx.cards, opts);
  Rng rng(seed);
  auto plans = sampler.SamplePlans(q, &rng);
  ASSERT_FALSE(plans.empty());
  EXPECT_LE(plans.size(), opts.max_plans_per_query);
  const uint64_t full_mask = (uint64_t{1} << q.num_relations()) - 1;
  double prev_cost = -1.0;
  for (const auto& plan : plans) {
    // Sorted cheapest-first, covers all relations, valid join predicates.
    EXPECT_GE(plan->estimated.cost, prev_cost);
    prev_cost = plan->estimated.cost;
    EXPECT_EQ(plan->RelMask(), full_mask);
    plan->PostOrder([&](const query::PlanNode& n) {
      if (n.is_leaf()) {
        EXPECT_TRUE(query::IsScan(n.op));
        EXPECT_GE(n.rel, 0);
      } else {
        EXPECT_TRUE(query::IsJoin(n.op));
        EXPECT_FALSE(n.join_preds.empty()) << "no cross products";
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SamplerPropertyTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(0.15, 0.5),
                                            ::testing::Values(11u, 77u)));

// ---- MCTS validity across seeds and budgets --------------------------------

class MctsPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, int>> {};

TEST_P(MctsPropertyTest, AlwaysProducesValidExecutablePlan) {
  const auto& fx = PlannerFixture::Get();
  const auto& [query_idx, seed, rollouts] = GetParam();
  const query::Query& q = fx.queries[static_cast<size_t>(query_idx)];
  core::MctsOptions opts;
  opts.seed = seed;
  opts.max_rollouts = rollouts;
  opts.time_budget_ms = 1e9;
  auto result = core::MctsPlan(*fx.model, q, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->plan->RelMask(), (uint64_t{1} << q.num_relations()) - 1);
  EXPECT_LE(result->plans_evaluated, rollouts);
  EXPECT_GT(result->plans_evaluated, 0);
  // Left-deep by construction: every right child is a leaf.
  result->plan->PostOrder([](const query::PlanNode& n) {
    if (!n.is_leaf()) {
      EXPECT_TRUE(n.right->is_leaf());
    }
  });
  exec::Executor ex(*fx.db);
  EXPECT_TRUE(ex.Execute(q, result->plan.get()).ok());
}

INSTANTIATE_TEST_SUITE_P(Grid, MctsPropertyTest,
                         ::testing::Combine(::testing::Values(0, 2),
                                            ::testing::Values(5u, 123u, 999u),
                                            ::testing::Values(10, 50)));

TEST(MctsBudgetTest, MoreRolloutsNeverWorsenPredictedPlan) {
  const auto& fx = PlannerFixture::Get();
  const query::Query& q = fx.queries[2];
  double prev = INFINITY;
  for (int rollouts : {5, 50, 500}) {
    core::MctsOptions opts;
    opts.seed = 7;
    opts.max_rollouts = rollouts;
    opts.time_budget_ms = 1e9;
    auto result = core::MctsPlan(*fx.model, q, opts);
    ASSERT_TRUE(result.ok());
    // The best-so-far predicted runtime is monotone in the rollout budget
    // for a fixed seed (the search only ever improves its incumbent).
    EXPECT_LE(result->predicted_runtime_ms, prev + 1e-9);
    prev = result->predicted_runtime_ms;
  }
}

// ---- Bao arm properties -----------------------------------------------------

TEST(BaoArmsTest, ArmsAreValidDistinctAndComplete) {
  const auto arms = baselines::Bao::AllArms();
  EXPECT_EQ(arms.size(), 49u);
  std::set<std::string> unique;
  bool has_all_enabled = false;
  for (const auto& arm : arms) {
    EXPECT_TRUE(arm.Valid());
    unique.insert(arm.ToString());
    has_all_enabled = has_all_enabled ||
                      (arm.enable_hashjoin && arm.enable_mergejoin &&
                       arm.enable_nestloop && arm.enable_seqscan &&
                       arm.enable_indexscan && arm.enable_bitmapscan);
  }
  EXPECT_EQ(unique.size(), 49u) << "arms must be distinct";
  EXPECT_TRUE(has_all_enabled) << "the no-hint arm must be present";
}

class BaoArmPlanTest : public ::testing::TestWithParam<int> {};

TEST_P(BaoArmPlanTest, EveryArmPlansEveryQueryWithinItsOperatorSet) {
  const auto& fx = PlannerFixture::Get();
  const query::Query& q = fx.queries[static_cast<size_t>(GetParam())];
  optimizer::Planner planner(*fx.db, *fx.stats);
  for (const auto& arm : baselines::Bao::AllArms()) {
    auto plan = planner.Plan(q, arm);
    ASSERT_TRUE(plan.ok()) << arm.ToString();
    const auto scans = arm.AllowedScans();
    const auto joins = arm.AllowedJoins();
    (*plan)->PostOrder([&](const query::PlanNode& n) {
      const auto& allowed = n.is_leaf() ? scans : joins;
      EXPECT_NE(std::find(allowed.begin(), allowed.end(), n.op), allowed.end())
          << query::OpTypeName(n.op) << " not allowed under " << arm.ToString();
    });
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, BaoArmPlanTest, ::testing::Range(0, 3));

// ---- Hybrid routing law -----------------------------------------------------

class HybridThresholdTest : public ::testing::TestWithParam<int> {};

TEST_P(HybridThresholdTest, RoutesExactlyByRelationCount) {
  const auto& fx = PlannerFixture::Get();
  optimizer::Planner baseline(*fx.db, *fx.stats);
  core::HybridOptions hopts;
  hopts.neural_min_relations = GetParam();
  hopts.mcts.max_rollouts = 20;
  hopts.mcts.time_budget_ms = 1e9;
  core::HybridPlanner hybrid(fx.model.get(), &baseline, hopts);
  for (const auto& q : fx.queries) {
    auto result = hybrid.Plan(q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->used_neural, q.num_relations() >= GetParam());
    EXPECT_EQ(result->plan->RelMask(), (uint64_t{1} << q.num_relations()) - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, HybridThresholdTest, ::testing::Values(2, 3, 4));

// ---- Exhaustive result-invariance oracle ------------------------------------
//
// Ground truth for the fuzzer's differential oracle: for every connected
// query of <= 4 relations over the toy schema, *every* connected left-deep
// join order must execute to the same root cardinality, and the DP and
// greedy planners' chosen plans must match that cardinality exactly. A
// planner that reorders joins may change cost, never the answer.

// All connected queries over distinct-table subsets of the toy schema,
// joined by every applicable schema edge, plus self-join variants that
// exercise duplicate relation instances up to 4 relations.
std::vector<query::Query> EnumerateSmallQueries(const storage::Database& db) {
  std::vector<query::Query> out;
  const int n = db.num_tables();
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    query::Query q;
    std::vector<int> rel_of_table(static_cast<size_t>(n), -1);
    for (int t = 0; t < n; ++t) {
      if (mask & (1u << t)) {
        rel_of_table[static_cast<size_t>(t)] = q.num_relations();
        q.relations.push_back({t, db.table(t).name()});
      }
    }
    for (size_t e = 0; e < db.join_edges().size(); ++e) {
      const auto& edge = db.join_edges()[e];
      const int lr = rel_of_table[static_cast<size_t>(edge.left_table)];
      const int rr = rel_of_table[static_cast<size_t>(edge.right_table)];
      if (lr < 0 || rr < 0) continue;
      q.joins.push_back({lr, edge.left_column, rr, edge.right_column,
                         static_cast<int>(e)});
    }
    if (!q.IsConnected()) continue;
    out.push_back(std::move(q));
  }
  // Self-join variants (toy schema: b.b1 -> a.id, c.c1 -> b.id).
  const auto& fx = PlannerFixture::Get();
  const char* self_join_sqls[] = {
      "SELECT COUNT(*) FROM b x, b y, a WHERE x.b1 = a.id AND y.b1 = a.id;",
      "SELECT COUNT(*) FROM a, b, c, c c2 WHERE b.b1 = a.id AND c.c1 = b.id "
      "AND c2.c1 = b.id;",
      "SELECT COUNT(*) FROM b x, b y, a, c WHERE x.b1 = a.id AND y.b1 = a.id "
      "AND c.c1 = x.id;",
  };
  for (const char* sql : self_join_sqls) {
    out.push_back(query::ParseSql(sql, *fx.db).value());
  }
  return out;
}

TEST(ExhaustiveInvarianceTest, AllJoinOrdersAndPlannersAgreeOnCardinality) {
  const auto& fx = PlannerFixture::Get();
  optimizer::Planner baseline(*fx.db, *fx.stats);
  const auto queries = EnumerateSmallQueries(*fx.db);
  ASSERT_GE(queries.size(), 8u);

  for (const auto& q : queries) {
    ASSERT_LE(q.num_relations(), 4);
    ASSERT_TRUE(q.Validate(*fx.db).ok());
    const auto orders = query::EnumerateJoinOrders(q, 10'000);
    ASSERT_FALSE(orders.empty());

    // Every connected left-deep order executes to the same cardinality.
    double reference = -1.0;
    for (const auto& order : orders) {
      std::vector<query::OpType> scans(order.size(), query::OpType::kSeqScan);
      std::vector<query::OpType> joins(
          order.empty() ? 0 : order.size() - 1, query::OpType::kHashJoin);
      auto plan = query::BuildLeftDeepPlan(q, order, scans, joins);
      ASSERT_NE(plan, nullptr);
      ASSERT_TRUE(query::ValidatePlan(q, *plan).ok());
      exec::Executor ex(*fx.db);
      auto rows = ex.Execute(q, plan.get());
      ASSERT_TRUE(rows.ok()) << rows.status().ToString();
      if (reference < 0.0) {
        reference = rows.value();
      } else {
        ASSERT_EQ(rows.value(), reference)
            << "join order changed the answer of " << q.ToSql(*fx.db);
      }
    }

    // The DP planner's choice is valid, finite, and answer-preserving.
    auto dp = baseline.Plan(q);
    ASSERT_TRUE(dp.ok()) << dp.status().ToString();
    ASSERT_TRUE(query::ValidatePlan(q, **dp).ok());
    (*dp)->PostOrder([](const query::PlanNode& n) {
      EXPECT_TRUE(query::StatsAreFinite(n.estimated));
    });
    exec::Executor dp_ex(*fx.db);
    auto dp_rows = dp_ex.Execute(q, dp->get());
    ASSERT_TRUE(dp_rows.ok());
    EXPECT_EQ(dp_rows.value(), reference);

    // So is the greedy (model-guided) planner's.
    auto greedy = core::GreedyPlan(*fx.model, q);
    ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
    ASSERT_TRUE(query::ValidatePlan(q, *greedy->plan).ok());
    exec::Executor g_ex(*fx.db);
    auto g_rows = g_ex.Execute(q, greedy->plan.get());
    ASSERT_TRUE(g_rows.ok());
    EXPECT_EQ(g_rows.value(), reference);
  }
}

}  // namespace
}  // namespace qps
