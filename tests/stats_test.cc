// Copyright 2026 The QPSeeker Authors

#include <gtest/gtest.h>

#include <cmath>

#include "stats/analyze.h"
#include "storage/schemas.h"
#include "util/rng.h"

namespace qps {
namespace stats {
namespace {

using storage::CompareOp;

std::vector<double> Uniform01(int n, Rng* rng) {
  std::vector<double> v;
  for (int i = 0; i < n; ++i) v.push_back(rng->Uniform());
  return v;
}

TEST(HistogramTest, EmptyIsSafe) {
  EquiDepthHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_NEAR(h.Selectivity(CompareOp::kLt, 5.0), 0.33, 1e-9);
}

TEST(HistogramTest, FractionBelowOnUniform) {
  Rng rng(1);
  auto h = EquiDepthHistogram::Build(Uniform01(20000, &rng), 32);
  EXPECT_NEAR(h.FractionBelow(0.25), 0.25, 0.02);
  EXPECT_NEAR(h.FractionBelow(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.FractionBelow(0.9), 0.9, 0.02);
  EXPECT_EQ(h.FractionBelow(-1.0), 0.0);
  EXPECT_EQ(h.FractionBelow(2.0), 1.0);
}

TEST(HistogramTest, RangeSelectivities) {
  Rng rng(2);
  auto h = EquiDepthHistogram::Build(Uniform01(20000, &rng), 32);
  EXPECT_NEAR(h.Selectivity(CompareOp::kLt, 0.3), 0.3, 0.03);
  EXPECT_NEAR(h.Selectivity(CompareOp::kGt, 0.3), 0.7, 0.03);
  const double le = h.Selectivity(CompareOp::kLe, 0.3);
  const double gt = h.Selectivity(CompareOp::kGt, 0.3);
  EXPECT_NEAR(le + gt, 1.0, 1e-6);
}

TEST(HistogramTest, SkewedDataQuantilesFollowSkew) {
  Rng rng(3);
  ZipfDistribution zipf(1000, 1.2);
  std::vector<double> v;
  for (int i = 0; i < 30000; ++i) v.push_back(static_cast<double>(zipf.Sample(&rng)));
  auto h = EquiDepthHistogram::Build(std::move(v), 16);
  // More than half the mass sits at small ranks.
  EXPECT_GT(h.FractionBelow(10.0), 0.5);
}

TEST(HistogramTest, ConditionalEntropyShrinksWithSelectivity) {
  Rng rng(4);
  auto h = EquiDepthHistogram::Build(Uniform01(10000, &rng), 32);
  const double full = h.ConditionalEntropy(CompareOp::kNe, 0.0);
  const double half = h.ConditionalEntropy(CompareOp::kLt, 0.5);
  const double tiny = h.ConditionalEntropy(CompareOp::kLt, 0.05);
  EXPECT_GT(full, half);
  EXPECT_GT(half, tiny);
}

TEST(ColumnStatsTest, MomentsAndDistinct) {
  storage::Column col("x", storage::DataType::kInt64);
  for (int i = 0; i < 100; ++i) col.AppendInt(i % 10);
  auto cs = ComputeColumnStats(col, 8, 4);
  EXPECT_EQ(cs.row_count, 100);
  EXPECT_EQ(cs.distinct_count, 10);
  EXPECT_EQ(cs.min, 0.0);
  EXPECT_EQ(cs.max, 9.0);
  EXPECT_NEAR(cs.mean, 4.5, 1e-9);
}

TEST(ColumnStatsTest, McvCapturesHeavyHitter) {
  storage::Column col("x", storage::DataType::kInt64);
  for (int i = 0; i < 900; ++i) col.AppendInt(7);
  for (int i = 0; i < 100; ++i) col.AppendInt(i);
  auto cs = ComputeColumnStats(col, 8, 4);
  const double f = cs.mcv.FractionFor(7.0);
  EXPECT_NEAR(f, 0.9, 0.01);
  // Equality selectivity uses the MCV for the hitter...
  EXPECT_NEAR(cs.Selectivity(CompareOp::kEq, 7.0), 0.9, 0.01);
  // ...and the uniform remainder otherwise.
  EXPECT_LT(cs.Selectivity(CompareOp::kEq, 3.0), 0.05);
}

TEST(ColumnStatsTest, NeComplementsEq) {
  storage::Column col("x", storage::DataType::kInt64);
  for (int i = 0; i < 100; ++i) col.AppendInt(i % 4);
  auto cs = ComputeColumnStats(col, 8, 4);
  EXPECT_NEAR(cs.Selectivity(CompareOp::kEq, 1.0) + cs.Selectivity(CompareOp::kNe, 1.0),
              1.0, 1e-9);
}

TEST(AnalyzeTest, CoversWholeDatabase) {
  Rng rng(5);
  auto db = storage::BuildDatabase(storage::ToySpec(), 300, &rng);
  ASSERT_TRUE(db.ok());
  auto stats = DatabaseStats::Analyze(**db);
  ASSERT_EQ(stats->num_tables(), 3);
  const int b = (*db)->TableIndex("b");
  EXPECT_EQ(stats->table(b).row_count, (*db)->table(b).num_rows());
  const auto& pk_stats = stats->column(b, 0);
  EXPECT_EQ(pk_stats.distinct_count, (*db)->table(b).num_rows());
}

TEST(AnalyzeTest, SelectivityMatchesTruthOnGeneratedData) {
  Rng rng(6);
  auto db = storage::BuildDatabase(storage::ToySpec(), 2000, &rng);
  ASSERT_TRUE(db.ok());
  auto stats = DatabaseStats::Analyze(**db);
  const int a = (*db)->TableIndex("a");
  const auto& col = (*db)->table(a).column(1);  // zipf a2
  const auto& cs = stats->column(a, 1);
  // Compare estimated vs true selectivity of a2 <= 3.
  int64_t true_count = 0;
  for (int64_t r = 0; r < col.size(); ++r) true_count += col.GetDouble(r) <= 3.0;
  const double truth = static_cast<double>(true_count) / static_cast<double>(col.size());
  EXPECT_NEAR(cs.Selectivity(CompareOp::kLe, 3.0), truth, 0.08);
}

}  // namespace
}  // namespace stats
}  // namespace qps
