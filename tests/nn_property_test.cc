// Copyright 2026 The QPSeeker Authors
//
// Property-based autodiff tests: every differentiable op passes a central
// finite-difference gradient check across a parameterized sweep of shapes
// and seeds, and composite graphs satisfy linearity/accumulation laws.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/autograd.h"
#include "nn/layers.h"

namespace qps {
namespace nn {
namespace {

using BuildFn = std::function<Var(const std::vector<Var>&)>;

struct OpCase {
  const char* name;
  int num_leaves;
  int64_t rows;
  int64_t cols;
  BuildFn build;
};

void CheckGradients(std::vector<Var> leaves, const BuildFn& build,
                    float tol = 3e-2f, float eps = 1e-3f) {
  Var loss = build(leaves);
  for (auto& l : leaves) l->ZeroGrad();
  Backward(loss);
  for (size_t li = 0; li < leaves.size(); ++li) {
    Var& leaf = leaves[li];
    leaf->EnsureGrad();
    for (int64_t i = 0; i < leaf->value.size(); ++i) {
      const float orig = leaf->value.at(i);
      leaf->value.at(i) = orig + eps;
      const float up = build(leaves)->value(0, 0);
      leaf->value.at(i) = orig - eps;
      const float down = build(leaves)->value(0, 0);
      leaf->value.at(i) = orig;
      const float numeric = (up - down) / (2.0f * eps);
      const float analytic = leaf->grad.at(i);
      const float scale = std::max({1.0f, std::fabs(numeric), std::fabs(analytic)});
      ASSERT_NEAR(analytic, numeric, tol * scale)
          << "leaf " << li << " elem " << i;
    }
  }
}

class OpGradientTest
    : public ::testing::TestWithParam<std::tuple<OpCase, uint64_t>> {};

TEST_P(OpGradientTest, MatchesFiniteDifferences) {
  const auto& [op_case, seed] = GetParam();
  Rng rng(seed);
  std::vector<Var> leaves;
  for (int l = 0; l < op_case.num_leaves; ++l) {
    leaves.push_back(Parameter(Tensor::Randn(op_case.rows, op_case.cols, &rng, 0.5f)));
  }
  CheckGradients(leaves, op_case.build);
}

std::vector<OpCase> AllOpCases() {
  return {
      {"sigmoid", 1, 2, 3,
       [](const std::vector<Var>& l) { return SumAll(Sigmoid(l[0])); }},
      {"tanh", 1, 2, 3,
       [](const std::vector<Var>& l) { return SumAll(Tanh(l[0])); }},
      {"leaky_relu", 1, 2, 3,
       [](const std::vector<Var>& l) { return SumAll(LeakyRelu(l[0])); }},
      {"exp", 1, 1, 4, [](const std::vector<Var>& l) { return SumAll(Exp(l[0])); }},
      {"square", 1, 2, 2,
       [](const std::vector<Var>& l) { return SumAll(Square(l[0])); }},
      {"softmax", 1, 2, 4,
       [](const std::vector<Var>& l) {
         return SumAll(Square(SoftmaxRows(l[0])));
       }},
      {"add_mul", 2, 2, 3,
       [](const std::vector<Var>& l) { return SumAll(Mul(Add(l[0], l[1]), l[0])); }},
      {"matmul", 2, 3, 3,
       [](const std::vector<Var>& l) { return SumAll(MatMul(l[0], l[1])); }},
      {"transpose_chain", 1, 2, 4,
       [](const std::vector<Var>& l) {
         return SumAll(MatMul(l[0], Transpose(l[0])));
       }},
      {"concat_slice", 2, 2, 3,
       [](const std::vector<Var>& l) {
         Var cat = ConcatCols({l[0], l[1]});
         return SumAll(Square(SliceCols(cat, 1, 5)));
       }},
      {"row_broadcast", 2, 1, 4,
       [](const std::vector<Var>& l) {
         Var wide = ConcatRows({l[0], l[1]});
         return SumAll(Square(AddRowBroadcast(wide, l[0])));
       }},
      {"mean_rows", 1, 4, 3,
       [](const std::vector<Var>& l) { return SumAll(Square(MeanRows(l[0]))); }},
      {"kl", 2, 1, 4,
       [](const std::vector<Var>& l) { return GaussianKl(l[0], l[1]); }},
  };
}

INSTANTIATE_TEST_SUITE_P(
    OpsBySeeds, OpGradientTest,
    ::testing::Combine(::testing::ValuesIn(AllOpCases()),
                       ::testing::Values(1u, 7u, 1234u)),
    [](const ::testing::TestParamInfo<std::tuple<OpCase, uint64_t>>& info) {
      return std::string(std::get<0>(info.param).name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---- Algebraic laws -------------------------------------------------------

class AutogradLawTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutogradLawTest, GradOfSumIsSumOfGrads) {
  Rng rng(GetParam());
  Tensor init = Tensor::Randn(2, 3, &rng);
  // d(f+g)/dx == df/dx + dg/dx.
  Var x1 = Parameter(init);
  Backward(Add(SumAll(Square(x1)), SumAll(Tanh(x1))));
  Var x2 = Parameter(init);
  Backward(SumAll(Square(x2)));
  Var x3 = Parameter(init);
  Backward(SumAll(Tanh(x3)));
  for (int64_t i = 0; i < init.size(); ++i) {
    EXPECT_NEAR(x1->grad.at(i), x2->grad.at(i) + x3->grad.at(i), 1e-5f);
  }
}

TEST_P(AutogradLawTest, ScaleCommutesWithGradient) {
  Rng rng(GetParam() + 100);
  Tensor init = Tensor::Randn(1, 5, &rng);
  Var a = Parameter(init);
  Backward(Scale(SumAll(Square(a)), 3.0f));
  Var b = Parameter(init);
  Backward(SumAll(Square(b)));
  for (int64_t i = 0; i < init.size(); ++i) {
    EXPECT_NEAR(a->grad.at(i), 3.0f * b->grad.at(i), 1e-4f);
  }
}

TEST_P(AutogradLawTest, ConstantsReceiveNoGradient) {
  Rng rng(GetParam() + 200);
  Var c = Constant(Tensor::Randn(2, 2, &rng));
  Var p = Parameter(Tensor::Randn(2, 2, &rng));
  Backward(SumAll(Mul(c, p)));
  EXPECT_FALSE(c->grad.SameShape(c->value)) << "constant grad must stay unallocated";
  EXPECT_TRUE(p->grad.SameShape(p->value));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradLawTest, ::testing::Values(3u, 17u, 99u));

// ---- Module invariants across widths ---------------------------------------

class MlpShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MlpShapeTest, ForwardShapeAndParamCount) {
  const auto& [in, hidden, layers] = GetParam();
  Rng rng(5);
  Mlp mlp(in, hidden, 7, layers, &rng);
  EXPECT_EQ(mlp.Parameters().size(), static_cast<size_t>(layers + 1) * 2);
  Var out = mlp.Forward(Constant(Tensor::Randn(3, in, &rng)));
  EXPECT_EQ(out->value.rows(), 3);
  EXPECT_EQ(out->value.cols(), 7);
  // Parameter count formula: sum of (in*out + out) per layer.
  int64_t expected = 0;
  int64_t cur = in;
  for (int i = 0; i < layers; ++i) {
    expected += cur * hidden + hidden;
    cur = hidden;
  }
  expected += cur * 7 + 7;
  EXPECT_EQ(mlp.NumParameters(), expected);
}

INSTANTIATE_TEST_SUITE_P(Widths, MlpShapeTest,
                         ::testing::Combine(::testing::Values(4, 16),
                                            ::testing::Values(8, 32),
                                            ::testing::Values(0, 2, 5)));

}  // namespace
}  // namespace nn
}  // namespace qps
