// Copyright 2026 The QPSeeker Authors
//
// Trace spans: parent/depth bookkeeping reconstructs the nesting tree from
// the flat span list, disabled tracing records nothing (and is inert even
// when spans outlive a Stop()), and the Chrome-trace export round-trips
// through a small strict JSON parser.

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "util/trace.h"

namespace qps {
namespace trace {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Stop();
    Clear();
  }
  void TearDown() override {
    Stop();
    Clear();
  }
};

const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans,
                           const std::string& name) {
  for (const auto& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  {
    QPS_TRACE_SPAN("never.recorded");
    QPS_TRACE_SPAN("also.never");
  }
  EXPECT_TRUE(Snapshot().empty());
  EXPECT_FALSE(Enabled());
}

TEST_F(TraceTest, NestedSpansReconstructTheTree) {
  Start();
  {
    QPS_TRACE_SPAN_VAR(root, "root");
    {
      QPS_TRACE_SPAN("child.a");
      { QPS_TRACE_SPAN("grandchild"); }
    }
    { QPS_TRACE_SPAN("child.b"); }
  }
  Stop();

  const auto spans = Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  const SpanRecord* root = FindSpan(spans, "root");
  const SpanRecord* a = FindSpan(spans, "child.a");
  const SpanRecord* grand = FindSpan(spans, "grandchild");
  const SpanRecord* b = FindSpan(spans, "child.b");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(grand, nullptr);
  ASSERT_NE(b, nullptr);

  EXPECT_EQ(root->parent, -1);
  EXPECT_EQ(root->depth, 0);
  EXPECT_EQ(a->parent, root->id);
  EXPECT_EQ(a->depth, 1);
  EXPECT_EQ(grand->parent, a->id);
  EXPECT_EQ(grand->depth, 2);
  EXPECT_EQ(b->parent, root->id);
  EXPECT_EQ(b->depth, 1);

  // Children are contained in the parent's time range.
  EXPECT_GE(a->start_us, root->start_us);
  EXPECT_LE(a->start_us + a->dur_us, root->start_us + root->dur_us);
}

TEST_F(TraceTest, AttributesAreRecorded) {
  Start();
  {
    QPS_TRACE_SPAN_VAR(span, "with.attrs");
    span.AddAttr("stage", "neural");
    span.AddAttr("rollouts", 64);
    span.AddAttr("ms", 1.5);
  }
  Stop();
  const auto spans = Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 3u);
  EXPECT_EQ(spans[0].attrs[0].first, "stage");
  EXPECT_EQ(spans[0].attrs[0].second, "neural");
  EXPECT_EQ(spans[0].attrs[1].second, "64");
}

TEST_F(TraceTest, ThreadsGetIndependentTrees) {
  Start();
  std::thread t1([] {
    QPS_TRACE_SPAN("thread.one");
  });
  std::thread t2([] {
    QPS_TRACE_SPAN("thread.two");
  });
  t1.join();
  t2.join();
  Stop();
  const auto spans = Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord* one = FindSpan(spans, "thread.one");
  const SpanRecord* two = FindSpan(spans, "thread.two");
  ASSERT_NE(one, nullptr);
  ASSERT_NE(two, nullptr);
  // Both are roots on their own threads — neither nests under the other.
  EXPECT_EQ(one->parent, -1);
  EXPECT_EQ(two->parent, -1);
  EXPECT_NE(one->tid, two->tid);
}

TEST_F(TraceTest, StartClearsPreviousCapture) {
  Start();
  { QPS_TRACE_SPAN("first.capture"); }
  Stop();
  EXPECT_EQ(Snapshot().size(), 1u);
  Start();
  { QPS_TRACE_SPAN("second.capture"); }
  Stop();
  const auto spans = Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "second.capture");
}

// --- Minimal strict JSON parser (objects/arrays/strings/numbers/literals),
// just enough to prove the Chrome-trace export is well-formed. ------------

struct JsonParser {
  const std::string& s;
  size_t pos = 0;
  bool ok = true;

  explicit JsonParser(const std::string& text) : s(text) {}

  void SkipWs() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) ++pos;
  }
  bool Consume(char c) {
    SkipWs();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    ok = false;
    return false;
  }
  bool ParseString() {
    SkipWs();
    if (pos >= s.size() || s[pos] != '"') return ok = false;
    ++pos;
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') ++pos;  // skip escaped char
      ++pos;
    }
    if (pos >= s.size()) return ok = false;
    ++pos;
    return true;
  }
  bool ParseNumber() {
    SkipWs();
    const size_t start = pos;
    if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) ++pos;
    while (pos < s.size() && (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                              s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                              s[pos] == '-' || s[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return ok = false;
    return true;
  }
  bool ParseValue() {
    SkipWs();
    if (pos >= s.size()) return ok = false;
    const char c = s[pos];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (s.compare(pos, 4, "true") == 0) {
      pos += 4;
      return true;
    }
    if (s.compare(pos, 5, "false") == 0) {
      pos += 5;
      return true;
    }
    if (s.compare(pos, 4, "null") == 0) {
      pos += 4;
      return true;
    }
    return ParseNumber();
  }
  bool ParseObject() {
    if (!Consume('{')) return false;
    SkipWs();
    if (pos < s.size() && s[pos] == '}') {
      ++pos;
      return true;
    }
    while (ok) {
      if (!ParseString()) return false;
      if (!Consume(':')) return false;
      if (!ParseValue()) return false;
      SkipWs();
      if (pos < s.size() && s[pos] == ',') {
        ++pos;
        continue;
      }
      return Consume('}');
    }
    return false;
  }
  bool ParseArray() {
    if (!Consume('[')) return false;
    SkipWs();
    if (pos < s.size() && s[pos] == ']') {
      ++pos;
      return true;
    }
    while (ok) {
      if (!ParseValue()) return false;
      SkipWs();
      if (pos < s.size() && s[pos] == ',') {
        ++pos;
        continue;
      }
      return Consume(']');
    }
    return false;
  }
  /// Whole-document parse: one value, then end of input.
  bool ParseDocument() {
    if (!ParseValue()) return false;
    SkipWs();
    if (pos != s.size()) return ok = false;
    return true;
  }
};

TEST_F(TraceTest, ChromeJsonRoundTripsThroughAParser) {
  Start();
  {
    QPS_TRACE_SPAN_VAR(outer, "export.outer");
    outer.AddAttr("note", "quoted \"text\" and backslash \\");
    { QPS_TRACE_SPAN("export.inner"); }
  }
  Stop();

  const std::string json = RenderChromeJson();
  JsonParser parser(json);
  EXPECT_TRUE(parser.ParseDocument()) << "invalid JSON near offset " << parser.pos
                                      << ":\n"
                                      << json;

  // Structural spot checks of the Chrome-trace schema.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"export.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"export.inner\""), std::string::npos);
}

TEST_F(TraceTest, SpanBufferCapDropsAndCounts) {
  SetMaxSpans(4);
  Start();
  for (int i = 0; i < 10; ++i) {
    QPS_TRACE_SPAN("cap.span");
  }
  Stop();
  EXPECT_EQ(Snapshot().size(), 4u);
  EXPECT_EQ(DroppedSpans(), 6);
  EXPECT_EQ(MaxSpans(), 4u);

  // Clear resets the drop count; 0 restores the default cap.
  Clear();
  EXPECT_EQ(DroppedSpans(), 0);
  SetMaxSpans(0);
  EXPECT_EQ(MaxSpans(), 65536u);
}

TEST_F(TraceTest, CapOnlyLimitsTheBufferNotTheBookkeeping) {
  SetMaxSpans(1);
  Start();
  {
    QPS_TRACE_SPAN("cap.outer");
    { QPS_TRACE_SPAN("cap.inner"); }  // finishes first, takes the one slot
  }
  Stop();
  const auto spans = Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  // The inner span kept correct depth/parent linkage even though the outer
  // record was dropped.
  EXPECT_EQ(spans[0].name, "cap.inner");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(DroppedSpans(), 1);
  SetMaxSpans(0);
}

TEST_F(TraceTest, EmptyCaptureStillRendersValidJson) {
  const std::string json = RenderChromeJson();
  JsonParser parser(json);
  EXPECT_TRUE(parser.ParseDocument());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace trace
}  // namespace qps
