// Copyright 2026 The QPSeeker Authors
//
// Conformance suite for the unified core::Planner interface: every backend
// reachable through MakePlanner ("baseline", "neural", "hybrid", "guarded")
// must satisfy the same contract — OK results carry a non-null, validated
// plan with finite stats; malformed queries fail with the documented error
// codes; a fixed request seed makes planning reproducible; deadlines
// truncate the search instead of failing unless fail_on_deadline is set.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/guarded_planner.h"
#include "core/planner_backends.h"
#include "core/qpseeker.h"
#include "query/parser.h"
#include "storage/schemas.h"
#include "util/fault.h"

namespace qps {
namespace core {
namespace {

const char* kBackends[] = {"baseline", "neural", "hybrid", "guarded"};

class PlannerConformanceTest : public ::testing::Test {
 protected:
  // One trained model for the whole suite: the contract checks only need a
  // model that scores plans, not a good one.
  static void SetUpTestSuite() {
    Rng rng(1);
    db_ = storage::BuildDatabase(storage::ToySpec(), 300, &rng).value().release();
    stats_ = stats::DatabaseStats::Analyze(*db_).release();
    baseline_ = new optimizer::Planner(*db_, *stats_);

    std::vector<query::Query> queries;
    const char* sqls[] = {
        "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 < 5;",
        "SELECT COUNT(*) FROM b, c WHERE c.c1 = b.id;",
        "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;",
        "SELECT COUNT(*) FROM a WHERE a.a2 >= 2;",
    };
    for (const char* sql : sqls) {
      queries.push_back(query::ParseSql(sql, *db_).value());
    }
    sampling::DatasetOptions dopts;
    dopts.source = sampling::PlanSource::kSampled;
    dopts.sampler.max_plans_per_query = 4;
    Rng drng(2);
    auto ds = sampling::BuildQepDataset(*db_, *stats_, queries, dopts, &drng).value();
    model_ = new QpSeeker(*db_, *stats_, QpSeekerConfig::ForScale(Scale::kSmoke), 3);
    TrainOptions topts;
    topts.epochs = 6;
    model_->Train(ds, topts);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete baseline_;
    delete stats_;
    delete db_;
  }

  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }

  static query::Query Complex() {
    return query::ParseSql(
               "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;",
               *db_)
        .value();
  }
  static query::Query Simple() {
    return query::ParseSql("SELECT COUNT(*) FROM a WHERE a.a2 = 2;", *db_).value();
  }

  /// Deterministic backend configuration: rollout-capped MCTS so planning
  /// time never decides the plan, 3+ relations route neural.
  static GuardedOptions Opts() {
    GuardedOptions opts;
    opts.hybrid.neural_min_relations = 3;
    opts.hybrid.mcts.time_budget_ms = 1e9;
    opts.hybrid.mcts.max_rollouts = 30;
    opts.hybrid.mcts.eval_batch = 4;
    opts.hybrid.mcts.seed = 5;
    return opts;
  }

  static std::unique_ptr<Planner> Make(const std::string& name) {
    auto p = MakePlanner(name, model_, baseline_, Opts());
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return std::move(p).value();
  }

  static storage::Database* db_;
  static stats::DatabaseStats* stats_;
  static optimizer::Planner* baseline_;
  static QpSeeker* model_;
};

storage::Database* PlannerConformanceTest::db_ = nullptr;
stats::DatabaseStats* PlannerConformanceTest::stats_ = nullptr;
optimizer::Planner* PlannerConformanceTest::baseline_ = nullptr;
QpSeeker* PlannerConformanceTest::model_ = nullptr;

TEST_F(PlannerConformanceTest, EveryBackendReturnsAValidatedPlan) {
  for (const char* name : kBackends) {
    auto planner = Make(name);
    EXPECT_STREQ(planner->name(), name);
    for (const auto& q : {Complex(), Simple()}) {
      auto result = planner->Plan(q, {});
      ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
      ASSERT_NE(result->plan, nullptr) << name;
      EXPECT_TRUE(query::ValidatePlan(q, *result->plan).ok()) << name;
      EXPECT_TRUE(query::StatsAreFinite(result->node_stats)) << name;
      EXPECT_GE(result->plan_ms, 0.0) << name;
      // Stage and the neural flag must agree.
      EXPECT_EQ(result->used_neural, result->stage != PlanStage::kTraditional)
          << name;
      if (result->used_neural) {
        EXPECT_GT(result->plans_evaluated, 0) << name;
      } else {
        EXPECT_EQ(result->plans_evaluated, 0) << name;
      }
      EXPECT_FALSE(result->deadline_hit) << name;
    }
  }
}

TEST_F(PlannerConformanceTest, BackendsAgreeOnRouting) {
  // The complex query consults the model everywhere except the baseline;
  // the simple query is traditional everywhere except raw MCTS.
  for (const char* name : kBackends) {
    auto planner = Make(name);
    auto complex_plan = planner->Plan(Complex(), {});
    auto simple_plan = planner->Plan(Simple(), {});
    ASSERT_TRUE(complex_plan.ok() && simple_plan.ok()) << name;
    const bool is_baseline = std::string(name) == "baseline";
    const bool is_neural = std::string(name) == "neural";
    EXPECT_EQ(complex_plan->used_neural, !is_baseline) << name;
    EXPECT_EQ(simple_plan->used_neural, is_neural) << name;
  }
}

TEST_F(PlannerConformanceTest, FixedSeedReproducesTheExactPlan) {
  const query::Query q = Complex();
  for (const char* name : kBackends) {
    PlanRequestOptions ropts;
    ropts.seed = 77;
    auto first = Make(name)->Plan(q, ropts);
    auto second = Make(name)->Plan(q, ropts);
    ASSERT_TRUE(first.ok() && second.ok()) << name;
    EXPECT_EQ(first->plan->ToString(*db_, q), second->plan->ToString(*db_, q))
        << name << ": same request seed must reproduce the same plan";
    EXPECT_EQ(first->plans_evaluated, second->plans_evaluated) << name;
  }
}

TEST_F(PlannerConformanceTest, EmptyQueryIsInvalidArgumentEverywhere) {
  const query::Query empty;
  for (const char* name : kBackends) {
    auto result = Make(name)->Plan(empty, {});
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_TRUE(result.status().code() == StatusCode::kInvalidArgument)
        << name << ": " << result.status().ToString();
  }
}

TEST_F(PlannerConformanceTest, TightDeadlineStillYieldsAValidPlan) {
  // A deadline that expires immediately must truncate the anytime search to
  // its guaranteed first batch, not fail: best-so-far plan + deadline_hit.
  const query::Query q = Complex();
  PlanRequestOptions ropts;
  ropts.deadline_ms = 1e-3;
  for (const char* name : {"neural", "hybrid", "guarded"}) {
    auto result = Make(name)->Plan(q, ropts);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    ASSERT_NE(result->plan, nullptr) << name;
    EXPECT_TRUE(query::ValidatePlan(q, *result->plan).ok()) << name;
    EXPECT_TRUE(result->deadline_hit) << name;
    EXPECT_GT(result->plans_evaluated, 0) << name;
  }
  // The baseline ignores deadlines entirely (DP planning is microseconds).
  auto base = Make("baseline")->Plan(q, ropts);
  ASSERT_TRUE(base.ok());
  EXPECT_FALSE(base->deadline_hit);
}

TEST_F(PlannerConformanceTest, FailOnDeadlineSurfacesDeadlineExceeded) {
  const query::Query q = Complex();
  PlanRequestOptions ropts;
  ropts.deadline_ms = 1e-3;
  ropts.fail_on_deadline = true;
  for (const char* name : {"neural", "hybrid", "guarded"}) {
    auto result = Make(name)->Plan(q, ropts);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_TRUE(result.status().IsDeadlineExceeded())
        << name << ": " << result.status().ToString();
  }
}

TEST_F(PlannerConformanceTest, GuardStatsCountOnlyOnTheGuardedBackend) {
  const query::Query q = Complex();
  for (const char* name : kBackends) {
    auto planner = Make(name);
    ASSERT_TRUE(planner->Plan(q, {}).ok()) << name;
    const GuardStats stats = planner->guard_stats();
    if (std::string(name) == "guarded") {
      EXPECT_EQ(stats.requests, 1) << name;
      EXPECT_EQ(stats.neural_attempts, 1) << name;
    } else {
      EXPECT_EQ(stats.requests, 0) << name;
      EXPECT_EQ(stats.neural_attempts, 0) << name;
    }
  }
}

TEST_F(PlannerConformanceTest, GuardedLadderDegradesThroughTheInterface) {
  // An injected MCTS fault must stay invisible to the caller: the unified
  // entry point still returns OK with a validated greedy-stage plan.
  auto planner = Make("guarded");
  fault::FaultSpec spec;
  spec.code = StatusCode::kInternal;
  spec.message = "injected rollout fault";
  spec.trigger_on_hit = 1;
  spec.sticky = true;
  fault::FaultInjector::Global().Arm("mcts.rollout", spec);

  const query::Query q = Complex();
  auto result = planner->Plan(q, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stage, PlanStage::kGreedy);
  EXPECT_NE(result->fallback_reason.find("injected rollout fault"),
            std::string::npos);
  EXPECT_TRUE(query::ValidatePlan(q, *result->plan).ok());
  EXPECT_EQ(planner->guard_stats().neural_error, 1);
}

TEST_F(PlannerConformanceTest, MakePlannerRejectsUnknownAndMisconfigured) {
  auto unknown = MakePlanner("quantum", model_, baseline_, Opts());
  ASSERT_FALSE(unknown.ok());
  EXPECT_TRUE(unknown.status().code() == StatusCode::kInvalidArgument);

  // Every backend except "baseline" needs a model.
  for (const char* name : {"neural", "hybrid", "guarded"}) {
    auto no_model = MakePlanner(name, nullptr, baseline_, Opts());
    ASSERT_FALSE(no_model.ok()) << name;
    EXPECT_TRUE(no_model.status().code() == StatusCode::kInvalidArgument) << name;
  }
  auto no_baseline = MakePlanner("baseline", model_, nullptr, Opts());
  ASSERT_FALSE(no_baseline.ok());
  EXPECT_TRUE(no_baseline.status().code() == StatusCode::kInvalidArgument);
}

TEST_F(PlannerConformanceTest, GuardStatsAggregateFieldWise) {
  GuardStats a;
  a.requests = 3;
  a.neural_attempts = 2;
  a.neural_nan = 1;
  a.circuit_opens = 1;
  GuardStats b;
  b.requests = 4;
  b.neural_attempts = 1;
  b.greedy_success = 2;
  a += b;
  EXPECT_EQ(a.requests, 7);
  EXPECT_EQ(a.neural_attempts, 3);
  EXPECT_EQ(a.greedy_success, 2);
  EXPECT_EQ(a.NeuralFailures(), 1);
}

}  // namespace
}  // namespace core
}  // namespace qps
