// Copyright 2026 The QPSeeker Authors
//
// Inference hot-path tests: tiled GEMM vs. a naive reference, batched
// model forward vs. the autograd reference path, parallel-MCTS determinism
// across thread counts, and the plan-prediction cache.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/mcts.h"
#include "core/plan_cache.h"
#include "core/qpseeker.h"
#include "nn/tensor.h"
#include "query/parser.h"
#include "storage/schemas.h"
#include "util/threadpool.h"

namespace qps {
namespace core {
namespace {

// ---------------------------------------------------------------------------
// Tiled GEMM vs. naive triple loop
// ---------------------------------------------------------------------------

nn::Tensor NaiveGemm(nn::GemmLayout layout, const nn::Tensor& a,
                     const nn::Tensor& b) {
  const int64_t m = layout == nn::GemmLayout::kTransA ? a.cols() : a.rows();
  const int64_t k = layout == nn::GemmLayout::kTransA ? a.rows() : a.cols();
  const int64_t n = layout == nn::GemmLayout::kTransB ? b.rows() : b.cols();
  nn::Tensor out(m, n);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        const float av = layout == nn::GemmLayout::kTransA ? a(p, i) : a(i, p);
        const float bv = layout == nn::GemmLayout::kTransB ? b(j, p) : b(p, j);
        acc += av * bv;
      }
      out(i, j) = acc;
    }
  }
  return out;
}

void ExpectTensorsNear(const nn::Tensor& want, const nn::Tensor& got,
                       double tol) {
  ASSERT_EQ(want.rows(), got.rows());
  ASSERT_EQ(want.cols(), got.cols());
  for (int64_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(want.at(i), got.at(i), tol + tol * std::abs(want.at(i)))
        << "flat index " << i;
  }
}

TEST(TiledGemmTest, MatchesNaiveAcrossLayoutsAndRaggedShapes) {
  Rng rng(11);
  // Sizes straddle the micro-kernel tile (4x16) and the k-block (256):
  // full tiles, ragged edges, GEMV-shaped m==1, and k spanning two blocks.
  const int64_t sizes[] = {1, 2, 3, 5, 16, 17, 33, 64};
  for (int64_t m : sizes) {
    for (int64_t k : {int64_t{1}, int64_t{7}, int64_t{64}, int64_t{300}}) {
      for (int64_t n : sizes) {
        for (auto layout : {nn::GemmLayout::kNone, nn::GemmLayout::kTransA,
                            nn::GemmLayout::kTransB}) {
          const int64_t ar = layout == nn::GemmLayout::kTransA ? k : m;
          const int64_t ac = layout == nn::GemmLayout::kTransA ? m : k;
          const int64_t br = layout == nn::GemmLayout::kTransB ? n : k;
          const int64_t bc = layout == nn::GemmLayout::kTransB ? k : n;
          const nn::Tensor a = nn::Tensor::Randn(ar, ac, &rng);
          const nn::Tensor b = nn::Tensor::Randn(br, bc, &rng);
          nn::Tensor got(m, n);
          nn::Gemm(layout, a, b, &got, /*accumulate=*/false);
          ExpectTensorsNear(NaiveGemm(layout, a, b), got, 1e-4);
        }
      }
    }
  }
}

TEST(TiledGemmTest, AccumulateAddsIntoExistingOutput) {
  Rng rng(12);
  const nn::Tensor a = nn::Tensor::Randn(9, 37, &rng);
  const nn::Tensor b = nn::Tensor::Randn(37, 21, &rng);
  nn::Tensor got = nn::Tensor::Full(9, 21, 2.5f);
  nn::Gemm(nn::GemmLayout::kNone, a, b, &got, /*accumulate=*/true);
  const nn::Tensor ref = NaiveGemm(nn::GemmLayout::kNone, a, b);
  for (int64_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(ref.at(i) + 2.5f, got.at(i), 1e-3);
  }
}

TEST(TiledGemmTest, LegacyEntryPointsRouteThroughGemm) {
  Rng rng(13);
  const nn::Tensor a = nn::Tensor::Randn(5, 18, &rng);
  const nn::Tensor b = nn::Tensor::Randn(18, 7, &rng);
  nn::Tensor out(5, 7);
  nn::MatMulInto(a, b, &out);
  ExpectTensorsNear(NaiveGemm(nn::GemmLayout::kNone, a, b), out, 1e-4);

  const nn::Tensor bt = nn::Tensor::Randn(7, 18, &rng);
  nn::Tensor out_tb(5, 7);
  nn::MatMulTransBInto(a, bt, &out_tb, /*accumulate=*/false);
  ExpectTensorsNear(NaiveGemm(nn::GemmLayout::kTransB, a, bt), out_tb, 1e-4);

  const nn::Tensor at = nn::Tensor::Randn(18, 5, &rng);
  nn::Tensor out_ta(5, 7);
  nn::MatMulTransAInto(at, b, &out_ta, /*accumulate=*/false);
  ExpectTensorsNear(NaiveGemm(nn::GemmLayout::kTransA, at, b), out_ta, 1e-4);
}

#if GTEST_HAS_DEATH_TEST
TEST(TiledGemmDeathTest, InnerDimensionMismatchReportsShapes) {
  const nn::Tensor a(2, 3);
  const nn::Tensor b(4, 5);
  nn::Tensor out(2, 5);
  EXPECT_DEATH(nn::Gemm(nn::GemmLayout::kNone, a, b, &out, false),
               "Gemm inner-dimension mismatch.*m=2 k=3/4 n=5");
}

TEST(TiledGemmDeathTest, OutputShapeMismatchReportsShapes) {
  const nn::Tensor a(2, 3);
  const nn::Tensor b(3, 5);
  nn::Tensor out(2, 4);
  EXPECT_DEATH(nn::Gemm(nn::GemmLayout::kNone, a, b, &out, false),
               "Gemm output shape mismatch.*m=2 k=3 n=5.*out is 2x4");
}
#endif

// ---------------------------------------------------------------------------
// Batched forward, parallel MCTS, prediction cache
// ---------------------------------------------------------------------------

class HotPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1);
    auto db = storage::BuildDatabase(storage::ToySpec(), 300, &rng);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    stats_ = stats::DatabaseStats::Analyze(*db_);

    const char* templates[] = {
        "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 < %d;",
        "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id AND a.a2 = %d;",
    };
    std::vector<query::Query> queries;
    for (int v = 1; v <= 4; ++v) {
      for (const char* tpl : templates) {
        char sql[256];
        std::snprintf(sql, sizeof(sql), tpl, v * 2);
        auto q = query::ParseSql(sql, *db_);
        ASSERT_TRUE(q.ok()) << q.status().ToString();
        q->template_id = tpl;
        queries.push_back(std::move(q).value());
      }
    }
    sampling::DatasetOptions opts;
    opts.source = sampling::PlanSource::kSampled;
    opts.sampler.candidates_per_order = 4;
    opts.sampler.max_plans_per_query = 6;
    Rng drng(2);
    auto ds = sampling::BuildQepDataset(*db_, *stats_, std::move(queries), opts, &drng);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = std::move(ds).value();
    ASSERT_GT(dataset_.qeps.size(), 10u);
  }

  QpSeeker MakeTrained(int epochs = 12) {
    QpSeekerConfig cfg = QpSeekerConfig::ForScale(Scale::kSmoke);
    QpSeeker seeker(*db_, *stats_, cfg, /*seed=*/3);
    TrainOptions topts;
    topts.epochs = epochs;
    topts.learning_rate = 2e-3f;
    topts.seed = 4;
    seeker.Train(dataset_, topts);
    return seeker;
  }

  /// All sampled plans that belong to the same query as qep[0].
  std::vector<const query::PlanNode*> PlansOfFirstQuery(int* query_id) const {
    *query_id = dataset_.qeps[0].query_id;
    std::vector<const query::PlanNode*> plans;
    for (const auto& qep : dataset_.qeps) {
      if (qep.query_id == *query_id) plans.push_back(qep.plan.get());
    }
    return plans;
  }

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<stats::DatabaseStats> stats_;
  sampling::QepDataset dataset_;
};

TEST_F(HotPathTest, BatchedForwardMatchesAutogradReference) {
  QpSeeker seeker = MakeTrained();
  int qid = 0;
  const auto plans = PlansOfFirstQuery(&qid);
  ASSERT_GE(plans.size(), 2u);
  const auto& q = dataset_.queries[static_cast<size_t>(qid)];

  const auto batched = seeker.PredictPlansBatch(q, plans);
  ASSERT_EQ(batched.size(), plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    const auto ref = seeker.PredictPlanReference(q, *plans[i]);
    const double tol_card = 1e-5 * std::max(1.0, std::abs(ref.cardinality));
    const double tol_cost = 1e-5 * std::max(1.0, std::abs(ref.cost));
    const double tol_rt = 1e-5 * std::max(1.0, std::abs(ref.runtime_ms));
    EXPECT_NEAR(batched[i].cardinality, ref.cardinality, tol_card) << "plan " << i;
    EXPECT_NEAR(batched[i].cost, ref.cost, tol_cost) << "plan " << i;
    EXPECT_NEAR(batched[i].runtime_ms, ref.runtime_ms, tol_rt) << "plan " << i;
  }
}

TEST_F(HotPathTest, BatchOfOneMatchesPredictPlan) {
  QpSeeker seeker = MakeTrained();
  const auto& qep = dataset_.qeps[0];
  const auto& q = dataset_.queries[static_cast<size_t>(qep.query_id)];
  const auto single = seeker.PredictPlan(q, *qep.plan);
  const auto batch = seeker.PredictPlansBatch(q, {qep.plan.get()});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].cardinality, single.cardinality);
  EXPECT_EQ(batch[0].cost, single.cost);
  EXPECT_EQ(batch[0].runtime_ms, single.runtime_ms);
}

TEST_F(HotPathTest, PoolShardedBatchMatchesSerialBatch) {
  QpSeeker seeker = MakeTrained();
  int qid = 0;
  const auto plans = PlansOfFirstQuery(&qid);
  const auto& q = dataset_.queries[static_cast<size_t>(qid)];
  const auto serial = seeker.PredictPlansBatch(q, plans, /*pool=*/nullptr);
  util::ThreadPool pool(3);
  const auto sharded = seeker.PredictPlansBatch(q, plans, &pool);
  ASSERT_EQ(serial.size(), sharded.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].cardinality, sharded[i].cardinality) << "plan " << i;
    EXPECT_EQ(serial[i].cost, sharded[i].cost) << "plan " << i;
    EXPECT_EQ(serial[i].runtime_ms, sharded[i].runtime_ms) << "plan " << i;
  }
}

TEST_F(HotPathTest, MultiQueryFusedForwardMatchesPerQueryBatches) {
  QpSeeker seeker = MakeTrained();

  // Group the sampled plans by owning query and fuse the first few queries
  // into one PredictPlansMulti call — the serving rendezvous path.
  std::vector<int> query_ids;
  std::vector<std::vector<const query::PlanNode*>> plans_by_query;
  for (const auto& qep : dataset_.qeps) {
    size_t slot = 0;
    for (; slot < query_ids.size(); ++slot) {
      if (query_ids[slot] == qep.query_id) break;
    }
    if (slot == query_ids.size()) {
      if (query_ids.size() == 4) continue;
      query_ids.push_back(qep.query_id);
      plans_by_query.emplace_back();
    }
    plans_by_query[slot].push_back(qep.plan.get());
  }
  ASSERT_GE(query_ids.size(), 2u);

  std::vector<PlanEvalRequest> requests;
  for (size_t r = 0; r < query_ids.size(); ++r) {
    requests.push_back(PlanEvalRequest{
        &dataset_.queries[static_cast<size_t>(query_ids[r])], plans_by_query[r]});
  }
  const auto fused = seeker.PredictPlansMulti(requests);
  ASSERT_EQ(fused.size(), requests.size());

  // Bit-identical to evaluating each query's batch on its own: the
  // determinism contract cross-query batching rests on.
  for (size_t r = 0; r < requests.size(); ++r) {
    const auto direct =
        seeker.PredictPlansBatch(*requests[r].query, requests[r].plans);
    ASSERT_EQ(fused[r].size(), direct.size()) << "request " << r;
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(fused[r][i].cardinality, direct[i].cardinality)
          << "request " << r << " plan " << i;
      EXPECT_EQ(fused[r][i].cost, direct[i].cost)
          << "request " << r << " plan " << i;
      EXPECT_EQ(fused[r][i].runtime_ms, direct[i].runtime_ms)
          << "request " << r << " plan " << i;
    }
  }

  // A multi-call of one request degenerates to exactly PredictPlansBatch.
  const auto lone = seeker.PredictPlansMulti({requests[0]});
  const auto lone_direct =
      seeker.PredictPlansBatch(*requests[0].query, requests[0].plans);
  ASSERT_EQ(lone.size(), 1u);
  ASSERT_EQ(lone[0].size(), lone_direct.size());
  for (size_t i = 0; i < lone_direct.size(); ++i) {
    EXPECT_EQ(lone[0][i].runtime_ms, lone_direct[i].runtime_ms) << "plan " << i;
  }
}

TEST_F(HotPathTest, MctsDeterministicAcrossThreadCounts) {
  QpSeeker seeker = MakeTrained();
  auto q = query::ParseSql(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;", *db_);
  ASSERT_TRUE(q.ok());

  auto run = [&](int threads) {
    MctsOptions mopts;
    mopts.time_budget_ms = 1e9;  // rollout-capped for determinism
    mopts.max_rollouts = 40;
    mopts.seed = 5;
    mopts.threads = threads;
    mopts.eval_batch = 8;  // fixed: auto-batch scales with threads
    auto r = MctsPlan(seeker, *q, mopts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  };

  const auto base = run(1);
  ASSERT_NE(base.plan, nullptr);
  const std::string base_str = base.plan->ToString(*db_, *q, false);
  for (int threads = 2; threads <= 4; ++threads) {
    const auto r = run(threads);
    ASSERT_NE(r.plan, nullptr);
    EXPECT_EQ(r.plan->ToString(*db_, *q, false), base_str)
        << "threads=" << threads;
    EXPECT_EQ(r.predicted_runtime_ms, base.predicted_runtime_ms)
        << "threads=" << threads;
    EXPECT_EQ(r.plans_evaluated, base.plans_evaluated) << "threads=" << threads;
  }
}

TEST_F(HotPathTest, MctsCacheDoesNotAlterPlanningResults) {
  QpSeeker seeker = MakeTrained();
  auto q = query::ParseSql(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;", *db_);
  ASSERT_TRUE(q.ok());
  MctsOptions mopts;
  mopts.time_budget_ms = 1e9;
  mopts.max_rollouts = 30;
  mopts.seed = 7;
  mopts.eval_batch = 4;
  const auto cold = MctsPlan(seeker, *q, mopts);
  ASSERT_TRUE(cold.ok());

  seeker.EnableCache(1 << 20);
  const auto warm1 = MctsPlan(seeker, *q, mopts);
  const auto warm2 = MctsPlan(seeker, *q, mopts);  // mostly cache hits
  ASSERT_TRUE(warm1.ok() && warm2.ok());
  EXPECT_EQ(warm1->predicted_runtime_ms, cold->predicted_runtime_ms);
  EXPECT_EQ(warm2->predicted_runtime_ms, cold->predicted_runtime_ms);
  EXPECT_EQ(warm1->plans_evaluated, cold->plans_evaluated);
  EXPECT_EQ(warm2->plans_evaluated, cold->plans_evaluated);
  ASSERT_NE(seeker.cache(), nullptr);
  EXPECT_GT(seeker.cache()->GetStats().hits, 0);
}

TEST_F(HotPathTest, CacheHitReturnsIdenticalPrediction) {
  QpSeeker seeker = MakeTrained();
  seeker.EnableCache(1 << 20);
  const auto& qep = dataset_.qeps[0];
  const auto& q = dataset_.queries[static_cast<size_t>(qep.query_id)];
  const auto miss = seeker.PredictPlan(q, *qep.plan);
  const auto s1 = seeker.cache()->GetStats();
  EXPECT_EQ(s1.misses, 1);
  EXPECT_EQ(s1.entries, 1);
  const auto hit = seeker.PredictPlan(q, *qep.plan);
  const auto s2 = seeker.cache()->GetStats();
  EXPECT_EQ(s2.hits, 1);
  EXPECT_EQ(hit.cardinality, miss.cardinality);
  EXPECT_EQ(hit.cost, miss.cost);
  EXPECT_EQ(hit.runtime_ms, miss.runtime_ms);
}

TEST_F(HotPathTest, TrainingInvalidatesCache) {
  QpSeeker seeker = MakeTrained(4);
  seeker.EnableCache(1 << 20);
  const auto& qep = dataset_.qeps[0];
  const auto& q = dataset_.queries[static_cast<size_t>(qep.query_id)];
  seeker.PredictPlan(q, *qep.plan);
  ASSERT_GT(seeker.cache()->GetStats().entries, 0);
  TrainOptions topts;
  topts.epochs = 1;
  seeker.Train(dataset_, topts);
  EXPECT_EQ(seeker.cache()->GetStats().entries, 0)
      << "stale predictions must not survive a weight change";
}

TEST(PlanPredictionCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  PlanPredictionCache cache(/*capacity_bytes=*/2 * 96);  // two entries
  query::NodeStats s;
  s.cardinality = 1.0;
  cache.Insert(1, 1, s);
  cache.Insert(1, 2, s);
  query::NodeStats out;
  ASSERT_TRUE(cache.Lookup(1, 1, &out));  // refresh (1,1): (1,2) becomes LRU
  cache.Insert(1, 3, s);                  // evicts (1,2)
  EXPECT_TRUE(cache.Lookup(1, 1, &out));
  EXPECT_FALSE(cache.Lookup(1, 2, &out));
  EXPECT_TRUE(cache.Lookup(1, 3, &out));
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.evictions, 1);
}

TEST(PlanPredictionCacheTest, ShapeHashDistinguishesStructure) {
  auto leaf = [](int rel) {
    auto p = std::make_unique<query::PlanNode>();
    p->op = query::OpType::kSeqScan;
    p->rel = rel;
    return p;
  };
  auto join = [](query::PlanPtr l, query::PlanPtr r) {
    auto p = std::make_unique<query::PlanNode>();
    p->op = query::OpType::kHashJoin;
    p->left = std::move(l);
    p->right = std::move(r);
    return p;
  };
  const auto ab = join(leaf(0), leaf(1));
  const auto ba = join(leaf(1), leaf(0));
  const auto ab2 = join(leaf(0), leaf(1));
  EXPECT_NE(PlanShapeHash(*ab), PlanShapeHash(*ba)) << "children are ordered";
  EXPECT_EQ(PlanShapeHash(*ab), PlanShapeHash(*ab2));
  auto ab_merge = join(leaf(0), leaf(1));
  ab_merge->op = query::OpType::kMergeJoin;
  EXPECT_NE(PlanShapeHash(*ab), PlanShapeHash(*ab_merge));
}

}  // namespace
}  // namespace core
}  // namespace qps
