// Copyright 2026 The QPSeeker Authors
//
// Deterministic corruption fuzzing for the checkpoint loader. Starting
// from valid module and training checkpoints, each iteration applies a
// seeded mutation (bit flips, truncation, appended garbage, word
// overwrites, region splices) and feeds the result to LoadModule /
// LoadTrainingCheckpoint. The contract under test: the loader never
// crashes, never hangs, never allocates unboundedly, and returns a clean
// Status for every input — the tier-1 ASan pass runs this binary with
// QPS_FUZZ_ITERS=10000.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace qps {
namespace nn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

int FuzzIters() {
  if (const char* env = std::getenv("QPS_FUZZ_ITERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 1500;  // quick-mode default; tier1.sh ASan pass uses 10000
}

/// Small module with a few oddly named parameters plus a quantizable
/// Linear child, as fuzz substrate (the Linear gives SaveModuleQuantized
/// something to write, so the quant-record parser sees hostile bytes too).
class FuzzModule : public Module {
 public:
  explicit FuzzModule(uint64_t seed) {
    Rng rng(seed);
    w1_ = RegisterParam("enc.w", Tensor::RandUniform(3, 5, &rng, 1.0f));
    b1_ = RegisterParam("enc/bias", Tensor::RandUniform(1, 5, &rng, 1.0f));
    w2_ = RegisterParam("head.0", Tensor::RandUniform(5, 2, &rng, 1.0f));
    lin_ = std::make_unique<Linear>(5, 4, &rng, "lin");
    RegisterChild("lin", lin_.get());
  }

 private:
  Var w1_, b1_, w2_;
  std::unique_ptr<Linear> lin_;
};

/// Applies one seeded mutation to `bytes`. The mutation classes cover the
/// interesting failure surfaces: flipped header/length/CRC words, torn
/// tails, oversized claims via word overwrites, and shuffled sections.
std::string Mutate(const std::string& base, Rng* rng) {
  std::string bytes = base;
  const auto pick = [&](uint64_t n) {
    return static_cast<size_t>(rng->UniformInt(n == 0 ? uint64_t{1} : n));
  };
  switch (rng->UniformInt(uint64_t{6})) {
    case 0: {  // single bit flip
      if (!bytes.empty()) {
        bytes[pick(bytes.size())] ^=
            static_cast<char>(1u << rng->UniformInt(uint64_t{8}));
      }
      break;
    }
    case 1: {  // burst of bit flips
      const int flips = 1 + static_cast<int>(rng->UniformInt(uint64_t{16}));
      for (int i = 0; i < flips && !bytes.empty(); ++i) {
        bytes[pick(bytes.size())] ^=
            static_cast<char>(1u << rng->UniformInt(uint64_t{8}));
      }
      break;
    }
    case 2: {  // truncate anywhere, including mid-header
      bytes.resize(pick(bytes.size() + 1));
      break;
    }
    case 3: {  // append trailing garbage
      const size_t extra = 1 + pick(64);
      for (size_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<char>(rng->UniformInt(uint64_t{256})));
      }
      break;
    }
    case 4: {  // overwrite an aligned 4-byte word: fake counts/lengths
      if (bytes.size() >= 4) {
        const size_t at = pick(bytes.size() - 3);
        const uint32_t v = rng->UniformInt(uint64_t{4}) == 0
                               ? 0xFFFFFFFFu
                               : static_cast<uint32_t>(rng->Next());
        for (int i = 0; i < 4; ++i) {
          bytes[at + static_cast<size_t>(i)] =
              static_cast<char>((v >> (8 * i)) & 0xFF);
        }
      }
      break;
    }
    default: {  // splice: copy one region over another
      if (bytes.size() >= 8) {
        const size_t len = 1 + pick(bytes.size() / 2);
        const size_t src = pick(bytes.size() - len + 1);
        const size_t dst = pick(bytes.size() - len + 1);
        bytes.replace(dst, len, base, src, len);
      }
      break;
    }
  }
  return bytes;
}

class SerializeFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // A module checkpoint, a full training checkpoint, and an int8
    // quantized checkpoint as base corpora.
    module_path_ = new std::string(TempPath("fuzz_module.ckpt"));
    train_path_ = new std::string(TempPath("fuzz_train.ckpt"));
    quant_path_ = new std::string(TempPath("fuzz_quant.ckpt"));

    FuzzModule module(7);
    ScalarEntries extra = {{"normalizer.log_max.0", 3.5}};
    ASSERT_TRUE(SaveModule(module, *module_path_, extra).ok());
    ASSERT_TRUE(SaveModuleQuantized(module, *quant_path_, extra).ok());

    Adam adam(module.Parameters(), 1e-3f);
    for (auto& p : module.Parameters()) {
      p.var->grad =
          Tensor::Full(p.var->value.rows(), p.var->value.cols(), 0.25f);
    }
    adam.Step();
    TrainingState state;
    state.epoch = 3;
    Rng rstate(11);
    rstate.Normal();
    state.rng = rstate.SaveState();
    state.extra = extra;
    ASSERT_TRUE(SaveTrainingCheckpoint(module, adam, state, *train_path_).ok());

    module_bytes_ = new std::string(ReadAll(*module_path_));
    train_bytes_ = new std::string(ReadAll(*train_path_));
    quant_bytes_ = new std::string(ReadAll(*quant_path_));
    ASSERT_FALSE(module_bytes_->empty());
    ASSERT_FALSE(train_bytes_->empty());
    ASSERT_FALSE(quant_bytes_->empty());
  }

  static void TearDownTestSuite() {
    std::remove(module_path_->c_str());
    std::remove(train_path_->c_str());
    std::remove(quant_path_->c_str());
    delete module_path_;
    delete train_path_;
    delete quant_path_;
    delete module_bytes_;
    delete train_bytes_;
    delete quant_bytes_;
  }

  static std::string* module_path_;
  static std::string* train_path_;
  static std::string* quant_path_;
  static std::string* module_bytes_;
  static std::string* train_bytes_;
  static std::string* quant_bytes_;
};

std::string* SerializeFuzzTest::module_path_ = nullptr;
std::string* SerializeFuzzTest::train_path_ = nullptr;
std::string* SerializeFuzzTest::quant_path_ = nullptr;
std::string* SerializeFuzzTest::module_bytes_ = nullptr;
std::string* SerializeFuzzTest::train_bytes_ = nullptr;
std::string* SerializeFuzzTest::quant_bytes_ = nullptr;

TEST_F(SerializeFuzzTest, MutatedCheckpointsNeverCrashTheLoader) {
  const int iters = FuzzIters();
  const std::string path = TempPath("fuzz_input.ckpt");
  int rejected = 0;
  int accepted = 0;

  for (int i = 0; i < iters; ++i) {
    Rng rng(0x51505345ull + static_cast<uint64_t>(i));
    const uint64_t corpus = rng.UniformInt(uint64_t{3});
    const bool use_train = corpus == 0;
    const std::string& base = use_train ? *train_bytes_
                              : corpus == 1 ? *module_bytes_
                                            : *quant_bytes_;
    WriteAll(path, Mutate(base, &rng));

    // Fresh targets per iteration: a load that errors must not have
    // mutated them in a way a later load trips over, and ASan checks
    // every allocation the parser makes on the hostile input.
    FuzzModule scratch(7);
    Status st;
    if (use_train) {
      Adam adam(scratch.Parameters(), 1e-3f);
      TrainingState state;
      st = LoadTrainingCheckpoint(&scratch, &adam, &state, path);
    } else {
      ScalarEntries extra;
      st = LoadModule(&scratch, path, &extra);
    }
    // Either outcome is fine; crashing, hanging, or tripping ASan is not.
    if (st.ok()) {
      ++accepted;
    } else {
      ++rejected;
      EXPECT_FALSE(st.message().empty());
    }
  }
  std::remove(path.c_str());

  // Sanity on the corpus: mutations overwhelmingly produce invalid files.
  // (A few survivors are possible — e.g. a splice that copies a region
  // onto itself — and must load cleanly, which is the point.)
  EXPECT_GT(rejected, iters / 2)
      << "accepted=" << accepted << " rejected=" << rejected;
}

TEST_F(SerializeFuzzTest, PureGarbageAndEmptyFilesRejected) {
  const std::string path = TempPath("fuzz_garbage.ckpt");
  for (int i = 0; i < 200; ++i) {
    Rng rng(0xDEAD0000ull + static_cast<uint64_t>(i));
    std::string bytes(static_cast<size_t>(rng.UniformInt(uint64_t{256})), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.UniformInt(uint64_t{256}));
    WriteAll(path, bytes);
    FuzzModule scratch(7);
    EXPECT_FALSE(LoadModule(&scratch, path).ok()) << "iter " << i;
  }
  std::remove(path.c_str());
}

TEST_F(SerializeFuzzTest, HeaderClaimsDoNotDriveAllocation) {
  // A tiny file claiming a huge section count / tensor count must be
  // rejected by bounds checks before any proportional allocation.
  const std::string path = TempPath("fuzz_claims.ckpt");
  const uint32_t words[] = {0x51505302u, 2u, 0xFFFFFFFFu, 0u,
                            1u,          8u, 0x41414141u, 0x41414141u};
  std::string bytes(reinterpret_cast<const char*>(words), sizeof(words));
  WriteAll(path, bytes);
  FuzzModule scratch(7);
  EXPECT_FALSE(LoadModule(&scratch, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nn
}  // namespace qps
