// Copyright 2026 The QPSeeker Authors
//
// Cross-module integration tests: the full pipeline from data generation
// through training to hybrid planning, plus workload persistence.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/hybrid.h"
#include "core/mcts.h"
#include "core/qpseeker.h"
#include "eval/workload_io.h"
#include "eval/workloads.h"
#include "exec/executor.h"
#include "optimizer/planner.h"
#include "query/parser.h"
#include "storage/schemas.h"

namespace qps {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1);
    auto db = storage::BuildDatabase(storage::ImdbLikeSpec(), 250, &rng);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    stats_ = stats::DatabaseStats::Analyze(*db_);
  }

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<stats::DatabaseStats> stats_;
};

TEST_F(IntegrationTest, FullPipelineTrainPlanExecute) {
  // Workload -> sampled QEPs -> train -> plan unseen query -> execute.
  eval::WorkloadOptions wo;
  wo.num_queries = 24;
  wo.min_joins = 1;
  wo.max_joins = 3;
  wo.num_templates = 8;
  Rng wrng(2);
  auto queries = eval::GenerateWorkload(*db_, wo, &wrng);
  sampling::DatasetOptions dopts;
  dopts.source = sampling::PlanSource::kSampled;
  dopts.sampler.max_plans_per_query = 4;
  Rng drng(3);
  auto ds = sampling::BuildQepDataset(*db_, *stats_, queries, dopts, &drng);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();

  core::QpSeeker seeker(*db_, *stats_,
                        core::QpSeekerConfig::ForScale(Scale::kSmoke), 3);
  core::TrainOptions topts;
  topts.epochs = 15;
  topts.learning_rate = 2e-3f;
  auto report = seeker.Train(*ds, topts);
  EXPECT_LT(report.final_loss, report.epoch_losses.front());

  // Plan a fresh query (not from the workload).
  auto q = query::ParseSql(
      "SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k WHERE "
      "mk.movie_id = t.id AND mk.keyword_id = k.id AND t.production_year < 60;",
      *db_);
  ASSERT_TRUE(q.ok());
  core::MctsOptions mopts;
  mopts.max_rollouts = 60;
  mopts.time_budget_ms = 1e9;
  auto result = core::MctsPlan(seeker, *q, mopts);
  ASSERT_TRUE(result.ok());
  exec::Executor ex(*db_);
  auto card = ex.Execute(*q, result->plan.get());
  ASSERT_TRUE(card.ok());
  EXPECT_GE(*card, 0.0);
  EXPECT_GT(result->plan->actual.runtime_ms, 0.0);
}

TEST_F(IntegrationTest, HybridPlannerRoutesByComplexity) {
  // Minimal trained model (normalizer fitted).
  eval::WorkloadOptions wo;
  wo.num_queries = 8;
  wo.max_joins = 2;
  Rng wrng(4);
  auto queries = eval::GenerateWorkload(*db_, wo, &wrng);
  sampling::DatasetOptions dopts;
  Rng drng(5);
  auto ds = sampling::BuildQepDataset(*db_, *stats_, queries, dopts, &drng);
  ASSERT_TRUE(ds.ok());
  core::QpSeeker seeker(*db_, *stats_,
                        core::QpSeekerConfig::ForScale(Scale::kSmoke), 3);
  core::TrainOptions topts;
  topts.epochs = 5;
  seeker.Train(*ds, topts);

  optimizer::Planner baseline(*db_, *stats_);
  core::HybridOptions hopts;
  hopts.neural_min_relations = 3;
  hopts.mcts.max_rollouts = 40;
  hopts.mcts.time_budget_ms = 1e9;
  core::HybridPlanner hybrid(&seeker, &baseline, hopts);

  auto simple = query::ParseSql(
      "SELECT COUNT(*) FROM title t, aka_title at WHERE at.movie_id = t.id;", *db_);
  ASSERT_TRUE(simple.ok());
  auto r1 = hybrid.Plan(*simple);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->used_neural) << "2-relation query must take the DP path";
  EXPECT_EQ(r1->plans_evaluated, 0);

  auto complex = query::ParseSql(
      "SELECT COUNT(*) FROM title t, cast_info ci, role_type rt, name n WHERE "
      "ci.movie_id = t.id AND ci.role_id = rt.id AND ci.person_id = n.id;",
      *db_);
  ASSERT_TRUE(complex.ok());
  auto r2 = hybrid.Plan(*complex);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->used_neural) << "4-relation query must take the MCTS path";
  EXPECT_GT(r2->plans_evaluated, 0);

  // Both plans execute correctly.
  exec::Executor ex(*db_);
  EXPECT_TRUE(ex.Execute(*simple, r1->plan.get()).ok());
  EXPECT_TRUE(ex.Execute(*complex, r2->plan.get()).ok());
}

TEST_F(IntegrationTest, WorkloadSaveLoadRoundTrip) {
  eval::WorkloadOptions wo;
  wo.num_queries = 12;
  wo.max_joins = 3;
  wo.num_templates = 4;
  Rng wrng(6);
  auto queries = eval::GenerateWorkload(*db_, wo, &wrng);
  const std::string path = "/tmp/qps_workload_roundtrip.sql";
  ASSERT_TRUE(eval::SaveWorkload(queries, *db_, path).ok());
  auto loaded = eval::LoadWorkload(*db_, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ((*loaded)[i].ToSql(*db_), queries[i].ToSql(*db_));
    EXPECT_EQ((*loaded)[i].template_id, queries[i].template_id);
  }
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, WorkloadLoadRejectsBadSql) {
  const std::string path = "/tmp/qps_workload_bad.sql";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("SELECT COUNT(*) FROM ghost_table;\n", f);
    std::fclose(f);
  }
  auto loaded = eval::LoadWorkload(*db_, path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(":1:"), std::string::npos)
      << "error must carry the line number";
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, BushySamplingProducesValidLabeledQeps) {
  eval::WorkloadOptions wo;
  wo.num_queries = 4;
  wo.min_joins = 2;
  wo.max_joins = 3;
  Rng wrng(7);
  auto queries = eval::GenerateWorkload(*db_, wo, &wrng);
  sampling::DatasetOptions dopts;
  dopts.source = sampling::PlanSource::kSampled;
  dopts.sampler.bushy_fraction = 0.5;
  dopts.sampler.keep_fraction = 0.6;
  Rng drng(8);
  auto ds = sampling::BuildQepDataset(*db_, *stats_, queries, dopts, &drng);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  int bushy_seen = 0;
  for (const auto& qep : ds->qeps) {
    // A bushy node has a non-leaf right child.
    qep.plan->PostOrder([&](const query::PlanNode& n) {
      if (n.right != nullptr && !n.right->is_leaf()) ++bushy_seen;
    });
    EXPECT_GT(qep.plan->actual.runtime_ms, 0.0);
  }
  EXPECT_GT(bushy_seen, 0) << "bushy sampling must yield at least one bushy QEP";
}

}  // namespace
}  // namespace qps
