// Copyright 2026 The QPSeeker Authors
//
// Property-based tests for the baseline cost model and cardinality
// estimator: monotonicity in input sizes, consistency across operators,
// and agreement laws between the estimator and ground truth on key shapes.

#include <gtest/gtest.h>

#include <algorithm>

#include "exec/executor.h"
#include "optimizer/planner.h"
#include "query/parser.h"
#include "storage/schemas.h"

namespace qps {
namespace optimizer {
namespace {

struct CostFixture {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<stats::DatabaseStats> stats;
  std::unique_ptr<CardinalityEstimator> cards;
  std::unique_ptr<CostModel> cost;

  static const CostFixture& Get() {
    static CostFixture* f = [] {
      auto* fx = new CostFixture();
      Rng rng(1);
      fx->db = storage::BuildDatabase(storage::ToySpec(), 600, &rng).value();
      fx->stats = stats::DatabaseStats::Analyze(*fx->db);
      fx->cards = std::make_unique<CardinalityEstimator>(*fx->db, *fx->stats);
      fx->cost = std::make_unique<CostModel>(*fx->cards);
      return fx;
    }();
    return *f;
  }

  query::Query Parse(const std::string& sql) const {
    return query::ParseSql(sql, *db).value();
  }
};

// Join cost is monotone in both input cardinalities, for every operator.
class JoinCostMonotoneTest : public ::testing::TestWithParam<query::OpType> {};

TEST_P(JoinCostMonotoneTest, MonotoneInInputs) {
  const auto& fx = CostFixture::Get();
  auto q = fx.Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  query::PlanNode join;
  join.op = GetParam();
  join.join_preds = {0};
  double prev = -1.0;
  for (double rows : {10.0, 100.0, 1000.0, 10000.0}) {
    const double c = fx.cost->NodeCost(q, join, rows, rows, rows);
    EXPECT_GT(c, prev) << query::OpTypeName(GetParam()) << " at " << rows;
    prev = c;
  }
  // And monotone in each side separately.
  EXPECT_LE(fx.cost->NodeCost(q, join, 100, 500, 100),
            fx.cost->NodeCost(q, join, 200, 500, 100));
  EXPECT_LE(fx.cost->NodeCost(q, join, 100, 500, 100),
            fx.cost->NodeCost(q, join, 100, 1000, 100));
}

INSTANTIATE_TEST_SUITE_P(AllJoins, JoinCostMonotoneTest,
                         ::testing::ValuesIn(query::JoinOps()));

TEST(CostModelLawsTest, NestedLoopDominatesHashOnLargeInputs) {
  const auto& fx = CostFixture::Get();
  auto q = fx.Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  query::PlanNode hash, nl;
  hash.op = query::OpType::kHashJoin;
  hash.join_preds = {0};
  nl.op = query::OpType::kNestedLoopJoin;
  nl.join_preds = {0};
  EXPECT_GT(fx.cost->NodeCost(q, nl, 1e4, 1e4, 1e4),
            fx.cost->NodeCost(q, hash, 1e4, 1e4, 1e4) * 10.0)
      << "quadratic beats linear by a wide margin at scale";
}

TEST(CostModelLawsTest, SelectiveIndexScanBeatsSeqScan) {
  const auto& fx = CostFixture::Get();
  auto q = fx.Parse("SELECT COUNT(*) FROM b WHERE b.id = 3;");
  query::PlanNode seq, idx;
  seq.op = query::OpType::kSeqScan;
  seq.rel = 0;
  idx.op = query::OpType::kIndexScan;
  idx.rel = 0;
  const double out_rows = 1.0;
  EXPECT_LT(fx.cost->NodeCost(q, idx, 0, 0, out_rows),
            fx.cost->NodeCost(q, seq, 0, 0, out_rows));
}

TEST(CostModelLawsTest, UnselectiveIndexScanLosesToSeqScan) {
  const auto& fx = CostFixture::Get();
  auto q = fx.Parse("SELECT COUNT(*) FROM b WHERE b.b3 >= 0;");
  const double all_rows =
      static_cast<double>(fx.db->table(fx.db->TableIndex("b")).num_rows());
  query::PlanNode seq, idx;
  seq.op = query::OpType::kSeqScan;
  seq.rel = 0;
  idx.op = query::OpType::kIndexScan;
  idx.rel = 0;
  EXPECT_GT(fx.cost->NodeCost(q, idx, 0, 0, all_rows),
            fx.cost->NodeCost(q, seq, 0, 0, all_rows));
}

// Estimated join cardinality never exceeds the cross product and never
// drops below 1 row.
class JoinCardBoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinCardBoundsTest, WithinBounds) {
  const auto& fx = CostFixture::Get();
  auto q = fx.Parse("SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;");
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 20; ++i) {
    const double l = rng.Uniform(1.0, 1e5);
    const double r = rng.Uniform(1.0, 1e5);
    const double est = fx.cards->JoinRows(q, l, r, {0});
    EXPECT_GE(est, 1.0);
    EXPECT_LE(est, l * r + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinCardBoundsTest, ::testing::Values(1, 2, 3));

TEST(CardinalityLawsTest, FkPkJoinEstimatesChildSize) {
  const auto& fx = CostFixture::Get();
  auto q = fx.Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  const double a_rows =
      static_cast<double>(fx.db->table(fx.db->TableIndex("a")).num_rows());
  const double b_rows =
      static_cast<double>(fx.db->table(fx.db->TableIndex("b")).num_rows());
  const double est = fx.cards->JoinRows(q, a_rows, b_rows, {0});
  // Each b row matches exactly one a row: estimate should be ~|b|.
  EXPECT_NEAR(est, b_rows, b_rows * 0.3);
}

TEST(CardinalityLawsTest, FilterSelectivityMultiplies) {
  const auto& fx = CostFixture::Get();
  auto one = fx.Parse("SELECT COUNT(*) FROM b WHERE b.b3 <= 3;");
  auto two = fx.Parse("SELECT COUNT(*) FROM b WHERE b.b3 <= 3 AND b.b1 < 100;");
  EXPECT_LT(fx.cards->FilterSelectivity(two, 0) - 1e-12,
            fx.cards->FilterSelectivity(one, 0))
      << "adding a filter cannot increase selectivity";
}

TEST(CalibrationLawsTest, CalibrationReducesRuntimeError) {
  const auto& fx = CostFixture::Get();
  Planner planner(*fx.db, *fx.stats);
  std::vector<query::Query> sample = {
      fx.Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;"),
      fx.Parse("SELECT COUNT(*) FROM b, c WHERE c.c1 = b.id AND b.b3 < 4;"),
      fx.Parse("SELECT COUNT(*) FROM a WHERE a.a2 <= 2;"),
  };
  auto mean_err = [&](Planner* p) {
    double total = 0.0;
    for (const auto& q : sample) {
      auto plan = p->Plan(q);
      exec::Executor ex(*fx.db);
      EXPECT_TRUE(ex.Execute(q, plan->get()).ok());
      const double est = (*plan)->estimated.runtime_ms;
      const double truth = (*plan)->actual.runtime_ms;
      total += std::max(est / truth, truth / est);
    }
    return total / static_cast<double>(sample.size());
  };
  const double before = mean_err(&planner);
  exec::Executor ex(*fx.db);
  planner.Calibrate(sample, &ex);
  const double after = mean_err(&planner);
  EXPECT_LE(after, before * 1.05) << "calibration must not hurt the fit";
}

}  // namespace
}  // namespace optimizer
}  // namespace qps
