// Copyright 2026 The QPSeeker Authors
//
// Observability layer: windowed counters/histograms (rotation, expiry,
// rates, the disabled fast path, and concurrency exactness — this test
// binary is in the TSan stage of tier1.sh), the accuracy/drift tracker
// (quantiles, EWMA baseline, drift injection), the Prometheus exposition
// round-trip, the obs JSON document + snapshot writer, the audit log
// schema, and the qps_top board rendering.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/accuracy.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/json_reader.h"
#include "obs/top.h"
#include "obs/window.h"
#include "util/clock.h"
#include "util/io.h"
#include "util/metrics.h"

namespace qps {
namespace obs {
namespace {

std::string TempPath(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/" + name;
}

/// Clock wrapper counting NowNanos calls, to prove the disabled hot path
/// never reads the clock.
class CountingClock final : public Clock {
 public:
  int64_t NowNanos() const override {
    calls.fetch_add(1, std::memory_order_relaxed);
    return inner.NowNanos();
  }
  ManualClock inner;
  mutable std::atomic<int64_t> calls{0};
};

// ---- Windowed metrics ---------------------------------------------------

TEST(WindowedCounterTest, AccumulatesWithinOneSlot) {
  ManualClock clock;
  WindowOptions opts;
  opts.slots = 4;
  opts.slot_width_ms = 1000.0;
  opts.clock = &clock;
  WindowedCounter counter(opts);
  counter.Increment();
  counter.Increment(4);
  EXPECT_EQ(counter.Total(), 5);
}

TEST(WindowedCounterTest, OldSlotsAgeOutOfTheWindow) {
  ManualClock clock;
  WindowOptions opts;
  opts.slots = 3;
  opts.slot_width_ms = 1000.0;
  opts.clock = &clock;
  WindowedCounter counter(opts);

  counter.Increment(10);  // slot epoch 0
  clock.AdvanceMillis(1000.0);
  counter.Increment(20);  // epoch 1
  clock.AdvanceMillis(1000.0);
  counter.Increment(30);  // epoch 2
  EXPECT_EQ(counter.Total(), 60);  // all three slots live

  clock.AdvanceMillis(1000.0);  // epoch 3: epoch-0 slot falls out
  EXPECT_EQ(counter.Total(), 50);
  clock.AdvanceMillis(2000.0);  // epoch 5: only epoch >= 3 would survive
  EXPECT_EQ(counter.Total(), 0);
}

TEST(WindowedCounterTest, RotationReclaimsTheRingSlot) {
  ManualClock clock;
  WindowOptions opts;
  opts.slots = 2;
  opts.slot_width_ms = 1000.0;
  opts.clock = &clock;
  WindowedCounter counter(opts);

  counter.Increment(7);  // epoch 0 -> ring slot 0
  clock.AdvanceMillis(2000.0);
  counter.Increment(1);  // epoch 2 -> ring slot 0 again: must zero first
  EXPECT_EQ(counter.Total(), 1);
}

TEST(WindowedCounterTest, RatePerSecUsesLifetimeUntilWarm) {
  ManualClock clock;
  WindowOptions opts;
  opts.slots = 10;
  opts.slot_width_ms = 1000.0;  // 10 s window
  opts.clock = &clock;
  WindowedCounter counter(opts);

  counter.Increment(100);
  clock.AdvanceMillis(2000.0);
  // 100 events over 2 s of lifetime, not over the 10 s window span.
  EXPECT_NEAR(counter.RatePerSec(), 50.0, 1e-9);

  clock.AdvanceMillis(20000.0);  // past the window: events expired
  EXPECT_NEAR(counter.RatePerSec(), 0.0, 1e-9);
}

TEST(WindowedCounterTest, DisabledPathSkipsTheClockEntirely) {
  CountingClock clock;
  WindowOptions opts;
  opts.clock = &clock;
  WindowedCounter counter(opts);  // constructor reads the clock once
  const int64_t calls_after_ctor = clock.calls.load();

  SetWindowedEnabled(false);
  for (int i = 0; i < 1000; ++i) counter.Increment();
  SetWindowedEnabled(true);

  EXPECT_EQ(clock.calls.load(), calls_after_ctor);
  EXPECT_EQ(counter.Total(), 0);
}

TEST(WindowedCounterTest, ConcurrentIncrementsAtFixedTimeSumExactly) {
  // With a pinned clock no rotation happens, so the relaxed adds must sum
  // exactly — this is the TSan-visible hot path.
  ManualClock clock;
  WindowOptions opts;
  opts.clock = &clock;
  WindowedCounter counter(opts);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.Total(), int64_t{kThreads} * kPerThread);
}

TEST(WindowedCounterTest, ConcurrentIncrementsAcrossRotationStayBounded) {
  // Threads increment while another thread advances the clock through many
  // slot boundaries. Rotation may drop a bounded number of samples (the
  // documented skew) but must never produce *extra* counts, crash, or race.
  ManualClock clock;
  WindowOptions opts;
  opts.slots = 4;
  opts.slot_width_ms = 1.0;
  opts.clock = &clock;
  WindowedCounter counter(opts);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> attempted{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        counter.Increment();
        attempted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 200; ++i) clock.AdvanceMillis(1.0);
  stop.store(true);
  for (auto& th : threads) th.join();

  EXPECT_LE(counter.Total(), attempted.load());
  EXPECT_GE(counter.Total(), 0);
}

TEST(WindowedHistogramTest, WindowPercentilesTrackRecentRecordsOnly) {
  ManualClock clock;
  WindowOptions opts;
  opts.slots = 3;
  opts.slot_width_ms = 1000.0;
  opts.clock = &clock;
  WindowedHistogram hist(opts);

  for (int i = 0; i < 100; ++i) hist.Record(1.0);  // epoch 0
  EXPECT_EQ(hist.Count(), 100);
  const double p50_fast = hist.Percentile(50.0);
  EXPECT_GT(p50_fast, 0.5);
  EXPECT_LE(p50_fast, 2.0);

  // Three slots later the 1 ms population is gone; only the slow tail
  // recorded now remains.
  clock.AdvanceMillis(3000.0);
  for (int i = 0; i < 10; ++i) hist.Record(500.0);
  EXPECT_EQ(hist.Count(), 10);
  EXPECT_GT(hist.Percentile(50.0), 100.0);
}

TEST(WindowedHistogramTest, ConcurrentRecordsAtFixedTimeStayExact) {
  ManualClock clock;
  WindowOptions opts;
  opts.clock = &clock;
  WindowedHistogram hist(opts);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) hist.Record(1.0);
    });
  }
  for (auto& th : threads) th.join();
  const metrics::HistogramSnapshot snap = hist.SnapshotWindow();
  EXPECT_EQ(snap.count, int64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(kThreads) * kPerThread);
}

TEST(WindowRegistryTest, SameNameReturnsSamePointerAndSnapshotsAll) {
  auto& reg = WindowRegistry::Global();
  WindowedCounter* a = reg.GetCounter("qps.test.window_counter");
  WindowedCounter* b = reg.GetCounter("qps.test.window_counter");
  EXPECT_EQ(a, b);
  a->Increment(3);
  reg.GetHistogram("qps.test.window_hist")->Record(1.0);

  const WindowSnapshot snap = reg.TakeSnapshot();
  bool saw_counter = false, saw_hist = false;
  for (const auto& c : snap.counters) {
    if (c.name == "qps.test.window_counter") {
      saw_counter = true;
      EXPECT_GE(c.total, 3);
    }
  }
  for (const auto& h : snap.histograms) {
    if (h.name == "qps.test.window_hist") {
      saw_hist = true;
      EXPECT_GE(h.hist.count, 1);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist);
}

// ---- Accuracy / drift ---------------------------------------------------

AccuracySample MakeSample(double pred_rows, double actual_rows) {
  AccuracySample s;
  s.backend = "guarded";
  s.predicted_rows = pred_rows;
  s.actual_rows = actual_rows;
  s.predicted_ms = 1.0;
  s.actual_ms = 1.0;
  return s;
}

TEST(AccuracyTrackerTest, WindowQuantilesMatchTheSamples) {
  ManualClock clock;
  AccuracyOptions opts;
  opts.clock = &clock;
  AccuracyTracker tracker(opts);

  // q-errors: 1, 2, 4 — median 2.
  tracker.Observe(MakeSample(100, 100));
  tracker.Observe(MakeSample(200, 100));
  tracker.Observe(MakeSample(100, 400));
  const auto report = tracker.Peek("guarded");
  EXPECT_EQ(report.samples, 3);
  EXPECT_NEAR(report.qerr_p50, 2.0, 1e-9);
  EXPECT_GE(report.qerr_p95, 2.0);
}

TEST(AccuracyTrackerTest, SamplesOutsideTheWindowAreIgnored) {
  ManualClock clock;
  AccuracyOptions opts;
  opts.clock = &clock;
  opts.window_ms = 1000.0;
  AccuracyTracker tracker(opts);

  tracker.Observe(MakeSample(100, 100));
  clock.AdvanceMillis(2000.0);
  tracker.Observe(MakeSample(300, 100));
  const auto report = tracker.Peek();
  EXPECT_EQ(report.samples, 1);
  EXPECT_NEAR(report.qerr_p50, 3.0, 1e-9);
}

TEST(AccuracyTrackerTest, SamplingStrideKeepsEveryNth) {
  AccuracyOptions opts;
  opts.sample_every = 3;
  AccuracyTracker tracker(opts);
  int kept = 0;
  for (int i = 0; i < 9; ++i) {
    if (tracker.Observe(MakeSample(100, 100))) ++kept;
  }
  EXPECT_EQ(kept, 3);
}

TEST(AccuracyTrackerTest, DriftInjectionRaisesTheScoreWithinOneWindow) {
  ManualClock clock;
  AccuracyOptions opts;
  opts.clock = &clock;
  opts.window_ms = 1000.0;
  opts.drift_threshold = 2.0;
  AccuracyTracker tracker(opts);

  // Healthy phase: q-error ~1.2. First Update seeds the baseline.
  for (int i = 0; i < 50; ++i) tracker.Observe(MakeSample(120, 100));
  auto healthy = tracker.Update();
  EXPECT_NEAR(healthy.drift_score, 1.2 / 1.2, 0.3);
  EXPECT_FALSE(healthy.drifted);

  // Skew the labels mid-run: the same model now mispredicts by 10x.
  clock.AdvanceMillis(1500.0);  // healthy samples fall out of the window
  for (int i = 0; i < 50; ++i) tracker.Observe(MakeSample(100, 1000));
  auto drifted = tracker.Update();
  EXPECT_GE(drifted.drift_score, opts.drift_threshold);
  EXPECT_TRUE(drifted.drifted);
  EXPECT_NEAR(drifted.qerr_p50, 10.0, 1e-6);
}

TEST(AccuracyTrackerTest, UpdatePublishesTheDriftGauges) {
  ManualClock clock;
  AccuracyOptions opts;
  opts.clock = &clock;
  AccuracyTracker tracker(opts);
  for (int i = 0; i < 10; ++i) tracker.Observe(MakeSample(500, 100));
  tracker.Update();

  auto& reg = metrics::Registry::Global();
  EXPECT_NEAR(reg.GetGauge("qps.model.drift.qerr_p50")->value(), 5.0, 1e-6);
  EXPECT_GT(reg.GetGauge("qps.model.drift.score")->value(), 0.0);
}

TEST(AccuracyTrackerTest, BackendsAreTrackedSeparately) {
  AccuracyTracker tracker;
  AccuracySample a = MakeSample(200, 100);
  a.backend = "mcts";
  AccuracySample b = MakeSample(800, 100);
  b.backend = "greedy";
  tracker.Observe(a);
  tracker.Observe(b);

  EXPECT_NEAR(tracker.Peek("mcts").qerr_p50, 2.0, 1e-9);
  EXPECT_NEAR(tracker.Peek("greedy").qerr_p50, 8.0, 1e-9);
  EXPECT_EQ(tracker.Peek().samples, 2);  // "" merges
  EXPECT_EQ(tracker.Backends().size(), 2u);
}

TEST(AccuracyTrackerTest, ConcurrentObserversNeverLoseSamples) {
  ManualClock clock;
  AccuracyOptions opts;
  opts.clock = &clock;
  opts.capacity = 100'000;
  AccuracyTracker tracker(opts);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracker] {
      for (int i = 0; i < kPerThread; ++i) {
        tracker.Observe(MakeSample(100, 100));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracker.Peek().samples, int64_t{kThreads} * kPerThread);
}

// ---- Prometheus exposition ----------------------------------------------

const PromSample* FindSample(const std::vector<PromSample>& samples,
                             const std::string& key) {
  for (const auto& s : samples) {
    if (s.Key() == key) return &s;
  }
  return nullptr;
}

TEST(PrometheusTest, RoundTripPreservesValuesExactly) {
  auto& reg = metrics::Registry::Global();
  reg.GetCounter("qps.test.prom_counter")->Reset();
  reg.GetCounter("qps.test.prom_counter")->Increment(42);
  reg.GetGauge("qps.test.prom_gauge")->Set(2.718281828459045);
  metrics::Histogram* hist = reg.GetHistogram("qps.test.prom_hist");
  hist->Reset();
  hist->Record(0.0005);  // bucket 0
  hist->Record(0.003);   // bucket 2 (le 0.004)
  hist->Record(1e15);    // overflow

  const std::string text = RenderPrometheus(reg.TakeSnapshot());
  auto parsed = ParsePrometheus(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const PromSample* counter = FindSample(*parsed, "qps_test_prom_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 42.0);

  const PromSample* gauge = FindSample(*parsed, "qps_test_prom_gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->value, 2.718281828459045);  // %.17g round-trips exactly

  // Cumulative le semantics: each bucket counts everything <= its bound,
  // +Inf equals _count.
  // Bucket labels carry %.17g bounds (not all decimals are exact doubles),
  // so match them by parsed value rather than by string.
  auto bucket_at = [&](double bound) -> const PromSample* {
    for (const auto& s : *parsed) {
      if (s.name != "qps_test_prom_hist_bucket" || s.labels.size() != 1) {
        continue;
      }
      const double le = std::strtod(s.labels[0].second.c_str(), nullptr);
      if (std::abs(le - bound) < bound * 1e-9) return &s;
    }
    return nullptr;
  };
  const PromSample* le0 = bucket_at(0.001);
  ASSERT_NE(le0, nullptr);
  EXPECT_EQ(le0->value, 1.0);
  const PromSample* le2 = bucket_at(0.004);
  ASSERT_NE(le2, nullptr);
  EXPECT_EQ(le2->value, 2.0);
  const PromSample* inf =
      FindSample(*parsed, "qps_test_prom_hist_bucket{le=\"+Inf\"}");
  ASSERT_NE(inf, nullptr);
  EXPECT_EQ(inf->value, 3.0);
  const PromSample* count = FindSample(*parsed, "qps_test_prom_hist_count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->value, inf->value);

  // Buckets never decrease along le.
  double prev = -1.0;
  for (const auto& s : *parsed) {
    if (s.name == "qps_test_prom_hist_bucket") {
      EXPECT_GE(s.value, prev);
      prev = s.value;
    }
  }
}

TEST(PrometheusTest, WindowSnapshotExportsRatesAndPercentiles) {
  auto& win = WindowRegistry::Global();
  win.GetCounter("qps.test.prom_window")->Increment(5);
  win.GetHistogram("qps.test.prom_window_hist")->Record(4.0);

  metrics::Snapshot empty;
  const WindowSnapshot wsnap = win.TakeSnapshot();
  const std::string text = RenderPrometheus(empty, &wsnap);
  auto parsed = ParsePrometheus(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const PromSample* total =
      FindSample(*parsed, "qps_test_prom_window_window_total");
  ASSERT_NE(total, nullptr);
  EXPECT_GE(total->value, 5.0);
  EXPECT_NE(FindSample(*parsed, "qps_test_prom_window_hist_window_p99"),
            nullptr);
}

TEST(PrometheusTest, ParserRejectsMalformedLines) {
  EXPECT_FALSE(ParsePrometheus("metric{le=\"0.1\" 3\n").ok());
  EXPECT_FALSE(ParsePrometheus("metric_without_value\n").ok());
  EXPECT_FALSE(ParsePrometheus("metric not_a_number\n").ok());
  EXPECT_TRUE(ParsePrometheus("# just a comment\n\n").ok());
}

// ---- JSON reader --------------------------------------------------------

TEST(JsonReaderTest, ParsesTheBasicShapes) {
  auto doc = ParseJson(
      R"({"a":1.5,"b":"x\n\"y\"","c":[1,2,3],"d":{"e":true,"f":null},"g":-2e3})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->NumberOr("a", 0), 1.5);
  EXPECT_EQ(doc->StringOr("b", ""), "x\n\"y\"");
  ASSERT_NE(doc->Find("c"), nullptr);
  EXPECT_EQ(doc->Find("c")->array().size(), 3u);
  EXPECT_EQ(doc->FindPath("d.e")->boolean(), true);
  EXPECT_EQ(doc->NumberOr("g", 0), -2000.0);
}

TEST(JsonReaderTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,2,]").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
}

// ---- Obs JSON document + snapshot writer --------------------------------

TEST(ObsJsonTest, DocumentParsesAndCarriesEverySection) {
  metrics::Registry::Global().GetCounter("qps.test.obsjson")->Increment();
  WindowRegistry::Global().GetCounter("qps.test.obsjson")->Increment();

  const std::string json = RenderObsJson(7);
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << json;
  EXPECT_EQ(doc->NumberOr("seq", 0), 7.0);
  EXPECT_NE(doc->FindPath("metrics.counters"), nullptr);
  EXPECT_NE(doc->FindPath("window.counters"), nullptr);
  EXPECT_NE(doc->FindPath("drift.score"), nullptr);
  const JsonValue* counter =
      doc->FindPath("metrics.counters")->Find("qps.test.obsjson");
  ASSERT_NE(counter, nullptr);
  EXPECT_GE(counter->number(), 1.0);
}

TEST(SnapshotWriterTest, WriteOnceProducesAParseableFile) {
  const std::string path = TempPath("qps_obs_snapshot_test.json");
  SnapshotWriter writer(path, 50.0);
  ASSERT_TRUE(writer.WriteOnce().ok());
  EXPECT_EQ(writer.snapshots_written(), 1);

  auto contents = io::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  auto doc = ParseJson(*contents);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->NumberOr("seq", 0), 1.0);
  std::remove(path.c_str());
}

TEST(SnapshotWriterTest, BackgroundThreadWritesAndStops) {
  const std::string path = TempPath("qps_obs_snapshot_bg_test.json");
  {
    SnapshotWriter writer(path, 10.0);
    writer.Start();
    while (writer.snapshots_written() < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    writer.Stop();
    EXPECT_GE(writer.snapshots_written(), 2);
  }  // destructor must not hang
  std::remove(path.c_str());
}

// ---- Audit log ----------------------------------------------------------

TEST(AuditTest, RenderedLineMatchesTheSchema) {
  AuditRecord record;
  record.query_hash = 0x9f2c;
  record.backend = "guarded";
  record.stage = "neural";
  record.outcome = "ok";
  record.deadline_hit = true;
  record.queue_ms = 0.25;
  record.plan_ms = 12.5;
  record.plans_evaluated = 64;
  record.fallback_reason = "";

  const std::string line = RenderAuditJson(record, 1000.0);
  auto doc = ParseJson(line);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << line;
  EXPECT_EQ(doc->StringOr("query_hash", ""), "0000000000009f2c");
  EXPECT_EQ(doc->StringOr("backend", ""), "guarded");
  EXPECT_EQ(doc->StringOr("stage", ""), "neural");
  EXPECT_EQ(doc->StringOr("outcome", ""), "ok");
  EXPECT_EQ(doc->Find("deadline_hit")->boolean(), true);
  EXPECT_EQ(doc->NumberOr("plan_ms", 0), 12.5);
  EXPECT_EQ(doc->NumberOr("plans_evaluated", 0), 64.0);
}

TEST(AuditTest, AppendWritesOneParseableLinePerRecord) {
  const std::string path = TempPath("qps_obs_audit_test.jsonl");
  std::remove(path.c_str());
  auto log = AuditLog::Open(path);
  ASSERT_TRUE(log.ok());

  AuditRecord record;
  record.backend = "guarded";
  record.outcome = "ok";
  (*log)->Append(record);
  record.outcome = "shed";
  (*log)->Append(record);
  EXPECT_EQ((*log)->records_written(), 2);

  auto contents = io::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  int lines = 0;
  size_t pos = 0;
  while (pos < contents->size()) {
    size_t eol = contents->find('\n', pos);
    if (eol == std::string::npos) eol = contents->size();
    const std::string line = contents->substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    ++lines;
    auto doc = ParseJson(line);
    ASSERT_TRUE(doc.ok()) << line;
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(AuditTest, OpenFailsOnAnUnwritablePath) {
  EXPECT_FALSE(AuditLog::Open("/nonexistent_dir_zz/audit.jsonl").ok());
}

// ---- qps_top board ------------------------------------------------------

TEST(TopBoardTest, RendersThroughputLatencyLadderAndDrift) {
  const std::string doc_json = R"({"ts_ms":5000,"seq":3,
    "metrics":{"counters":{"qps.serve.requests":900,
                           "qps.serve.shed":4,
                           "qps.serve.deadline_misses":2},
               "gauges":{"qps.serve.inflight":5,
                         "qps.serve.queue_depth":7,
                         "qps.guarded.circuit_open":1},
               "histograms":{}},
    "window":{"counters":{"qps.serve.requests":{"total":120,"rate":40},
                          "qps.guarded.stage.neural":{"total":80,"rate":26},
                          "qps.guarded.stage.greedy":{"total":30,"rate":10},
                          "qps.guarded.stage.traditional":{"total":10,"rate":3.3}},
              "histograms":{"qps.serve.latency_ms":{"count":120,"rate":40,
                            "p50":2.5,"p90":8,"p99":20}}},
    "drift":{"score":2.4,"qerr_p50":3.1,"qerr_p95":9.9,"samples":55,
             "drifted":true}})";
  auto cur = ParseJson(doc_json);
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();

  const std::string prev_json =
      R"({"metrics":{"counters":{"qps.serve.requests":800}}})";
  auto prev = ParseJson(prev_json);
  ASSERT_TRUE(prev.ok());

  const std::string board = FormatTopBoard(*cur, &*prev, 2.0);
  // Throughput from the counter delta: (900 - 800) / 2 s.
  EXPECT_NE(board.find("50.0 req/s (delta)"), std::string::npos);
  EXPECT_NE(board.find("inflight   5"), std::string::npos);
  EXPECT_NE(board.find("p99    20.00 ms"), std::string::npos);
  EXPECT_NE(board.find("neural    80"), std::string::npos);
  EXPECT_NE(board.find("breaker OPEN"), std::string::npos);
  EXPECT_NE(board.find("** DRIFT **"), std::string::npos);

  // First poll: no previous snapshot, fall back to the window rate.
  const std::string first = FormatTopBoard(*cur, nullptr, 0.0);
  EXPECT_NE(first.find("40.0 req/s (window)"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace qps
