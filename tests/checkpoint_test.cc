// Copyright 2026 The QPSeeker Authors
//
// Durable-checkpoint contract tests: v2 save/load round-trips bit for bit
// (property-tested over random shapes and names), v1 files stay readable,
// every corruption class yields a clean error naming the failure, saves
// refuse to clobber non-checkpoint files, a torn write (fault-injected
// crash mid-save) always leaves the previous checkpoint loadable, and a
// resumed training run continues its loss curve exactly.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/qpseeker.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/serialize.h"
#include "query/parser.h"
#include "storage/schemas.h"
#include "util/crc32.h"
#include "util/fault.h"
#include "util/io.h"

namespace qps {
namespace nn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

void WriteAll(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  ASSERT_TRUE(out.good()) << path;
}

void PutU32LE(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64LE(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

/// A module whose parameter shapes and names are driven by a seed, for
/// property-testing the round trip over many layouts.
class RandomModule : public Module {
 public:
  RandomModule(uint64_t seed, bool reinit_values) {
    Rng rng(seed);
    const int n = 1 + static_cast<int>(rng.UniformInt(uint64_t{6}));
    for (int i = 0; i < n; ++i) {
      const int64_t rows = 1 + static_cast<int64_t>(rng.UniformInt(uint64_t{7}));
      const int64_t cols = 1 + static_cast<int64_t>(rng.UniformInt(uint64_t{9}));
      // Names exercise separators the format must treat as opaque bytes.
      std::string name = "p" + std::to_string(i);
      const char* decorations[] = {".w", "/bias", " odd name", "__x", ".0"};
      name += decorations[rng.UniformInt(uint64_t{5})];
      Tensor t = Tensor::Zeros(rows, cols);
      for (int64_t j = 0; j < t.size(); ++j) {
        // Always draw so the layout stream is identical for both modes;
        // reinit_values=false zeroes the target module so a successful
        // load is observable.
        const float v = static_cast<float>(rng.Uniform(-2.0, 2.0));
        t.data()[j] = reinit_values ? v : 0.0f;
      }
      RegisterParam(name, std::move(t));
    }
  }
};

bool ModulesBitIdentical(const Module& a, const Module& b) {
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  if (pa.size() != pb.size()) return false;
  for (size_t i = 0; i < pa.size(); ++i) {
    if (pa[i].name != pb[i].name) return false;
    const Tensor& ta = pa[i].var->value;
    const Tensor& tb = pb[i].var->value;
    if (!ta.SameShape(tb)) return false;
    for (int64_t j = 0; j < ta.size(); ++j) {
      if (ta.data()[j] != tb.data()[j]) return false;
    }
  }
  return true;
}

TEST(CheckpointTest, RoundTripPropertyOverRandomShapesAndNames) {
  const std::string path = TempPath("roundtrip.ckpt");
  for (uint64_t seed = 0; seed < 25; ++seed) {
    std::remove(path.c_str());
    RandomModule saved(seed, /*reinit_values=*/true);
    ScalarEntries extra = {{"alpha", 0.25 + static_cast<double>(seed)},
                          {"steps", 17.0 * static_cast<double>(seed)}};
    ASSERT_TRUE(SaveModule(saved, path, extra).ok()) << "seed " << seed;
    EXPECT_TRUE(LooksLikeCheckpoint(path));

    RandomModule loaded(seed, /*reinit_values=*/false);
    ScalarEntries got;
    Status st = LoadModule(&loaded, path, &got);
    ASSERT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString();
    EXPECT_TRUE(ModulesBitIdentical(saved, loaded)) << "seed " << seed;
    ASSERT_EQ(got.size(), extra.size());
    for (size_t i = 0; i < extra.size(); ++i) {
      EXPECT_EQ(got[i].first, extra[i].first);
      EXPECT_EQ(got[i].second, extra[i].second);
    }
  }
}

TEST(CheckpointTest, V1FilesStillLoad) {
  const std::string path = TempPath("legacy_v1.ckpt");
  std::remove(path.c_str());
  RandomModule saved(7, /*reinit_values=*/true);
  ASSERT_TRUE(SaveModuleV1(saved, path).ok());
  EXPECT_TRUE(LooksLikeCheckpoint(path));

  RandomModule loaded(7, /*reinit_values=*/false);
  Status st = LoadModule(&loaded, path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(ModulesBitIdentical(saved, loaded));
}

TEST(CheckpointTest, CorruptedByteFailsChecksumWithCleanError) {
  const std::string path = TempPath("corrupt.ckpt");
  std::remove(path.c_str());
  RandomModule saved(3, true);
  ASSERT_TRUE(SaveModule(saved, path).ok());
  std::string bytes = ReadAll(path);
  bytes[bytes.size() / 2] ^= 0x40;
  WriteAll(path, bytes);

  RandomModule loaded(3, false);
  Status st = LoadModule(&loaded, path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("checksum"), std::string::npos) << st.ToString();
}

TEST(CheckpointTest, TrailingGarbageRejectedOnBothFormats) {
  for (const bool v1 : {false, true}) {
    const std::string path = TempPath(v1 ? "trail1.ckpt" : "trail2.ckpt");
    std::remove(path.c_str());
    RandomModule saved(9, true);
    ASSERT_TRUE((v1 ? SaveModuleV1(saved, path) : SaveModule(saved, path)).ok());
    std::string bytes = ReadAll(path);
    bytes += "junk";
    WriteAll(path, bytes);

    RandomModule loaded(9, false);
    Status st = LoadModule(&loaded, path);
    ASSERT_FALSE(st.ok()) << (v1 ? "v1" : "v2");
  }
}

TEST(CheckpointTest, TruncationRejected) {
  const std::string path = TempPath("trunc.ckpt");
  std::remove(path.c_str());
  RandomModule saved(11, true);
  ASSERT_TRUE(SaveModule(saved, path).ok());
  const std::string bytes = ReadAll(path);
  for (const size_t keep : {size_t{0}, size_t{3}, size_t{9}, bytes.size() / 2,
                            bytes.size() - 1}) {
    WriteAll(path, bytes.substr(0, keep));
    RandomModule loaded(11, false);
    EXPECT_FALSE(LoadModule(&loaded, path).ok()) << "kept " << keep;
  }
}

TEST(CheckpointTest, ShapeMismatchNamesTheTensor) {
  const std::string path = TempPath("mismatch.ckpt");
  std::remove(path.c_str());
  RandomModule saved(13, true);
  ASSERT_TRUE(SaveModule(saved, path).ok());
  // A structurally different module (different seed -> different layout).
  RandomModule other(14, false);
  Status st = LoadModule(&other, path);
  ASSERT_FALSE(st.ok());
}

TEST(CheckpointTest, HugeShapeProductRejectedWithoutAllocation) {
  // rows * cols = 2^63 + 2^32: the product overflows int64, so a naive
  // `rows * cols > cap` check would wrap negative and pass. The loader must
  // reject this shape via overflow-safe division, before any byte budget or
  // allocation is derived from the product. All CRCs are valid — an
  // attacker can compute them — so the shape check is the only defense.
  const uint32_t rows = 2863311532u;  // 4 * 715827883
  const uint32_t cols = 3221225472u;  // 3 * 2^30
  std::string record;
  PutU32LE(&record, 1);  // name_len
  record += "w";
  PutU32LE(&record, rows);
  PutU32LE(&record, cols);
  // No tensor data: rejection must happen at the shape check.
  std::string payload;
  PutU64LE(&payload, 1);  // tensor count
  payload += record;
  PutU32LE(&payload, crc32::Compute(record.data(), record.size()));

  std::string file;
  PutU32LE(&file, 0x51505302u);  // v2 magic
  PutU32LE(&file, 2);            // format version
  PutU32LE(&file, 1);            // section count
  PutU32LE(&file, 0);            // reserved
  PutU32LE(&file, 1);            // section kind: tensors
  PutU32LE(&file, 5);            // section name length
  file += "model";
  PutU64LE(&file, payload.size());
  file += payload;
  PutU32LE(&file, crc32::Compute(payload.data(), payload.size()));
  PutU32LE(&file, crc32::Compute(file.data(), file.size()));

  const std::string path = TempPath("overflow_shape.ckpt");
  WriteAll(path, file);
  RandomModule loaded(1, false);
  Status st = LoadModule(&loaded, path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("element cap"), std::string::npos)
      << st.ToString();
}

TEST(CheckpointTest, OptimizerMismatchLeavesModuleAndStateUntouched) {
  const std::string path = TempPath("opt_mismatch.ckpt");
  std::remove(path.c_str());
  RandomModule saved(51, true);
  Adam adam(saved.Parameters(), 1e-3f);
  TrainingState state;
  state.epoch = 4;
  ASSERT_TRUE(SaveTrainingCheckpoint(saved, adam, state, path).ok());

  // Same layout (so the model section alone would apply cleanly) but an SGD
  // optimizer: the Adam slot names in the checkpoint don't match, so the
  // load must fail atomically — the target keeps its own weights instead of
  // silently adopting the checkpoint's.
  RandomModule target(51, false);
  Sgd sgd(target.Parameters(), 0.1f);
  TrainingState st2;
  st2.epoch = -1;
  Status st = LoadTrainingCheckpoint(&target, &sgd, &st2, path);
  ASSERT_FALSE(st.ok());
  RandomModule zeros(51, false);
  EXPECT_TRUE(ModulesBitIdentical(target, zeros));
  EXPECT_EQ(st2.epoch, -1);
}

TEST(CheckpointTest, OverlongScalarNameFailsTheSave) {
  // A name past the loader's cap must fail the *save* with a clean error —
  // never report OK and leave behind a checkpoint the loader rejects.
  const std::string path = TempPath("longname.ckpt");
  std::remove(path.c_str());
  RandomModule m(61, true);
  const ScalarEntries extra = {
      {std::string(kMaxCheckpointNameLen + 1, 'x'), 1.0}};
  EXPECT_FALSE(SaveModule(m, path, extra).ok());
  EXPECT_FALSE(LooksLikeCheckpoint(path));  // nothing was written

  Adam adam(m.Parameters(), 1e-3f);
  TrainingState state;
  state.extra = extra;
  EXPECT_FALSE(SaveTrainingCheckpoint(m, adam, state, path).ok());
  EXPECT_FALSE(LooksLikeCheckpoint(path));
}

TEST(CheckpointTest, RefusesToOverwriteForeignFile) {
  const std::string path = TempPath("precious.txt");
  WriteAll(path, "important experiment notes, not a checkpoint");
  RandomModule saved(5, true);
  Status st = SaveModule(saved, path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("refusing"), std::string::npos) << st.ToString();
  EXPECT_EQ(ReadAll(path), "important experiment notes, not a checkpoint");
}

TEST(CheckpointTest, TornWriteLeavesPriorCheckpointLoadable) {
  for (const char* point : {"io.write", "io.fsync", "io.rename"}) {
    const std::string path = TempPath("torn.ckpt");
    std::remove(path.c_str());
    RandomModule first(21, true);
    ASSERT_TRUE(SaveModule(first, path).ok());

    // The second save "crashes" at each durable-write stage in turn; the
    // reader must keep seeing the first checkpoint, complete and valid.
    fault::FaultSpec spec;
    spec.code = StatusCode::kIOError;
    spec.message = std::string("injected crash at ") + point;
    fault::FaultInjector::Global().Arm(point, spec);
    RandomModule second(22, true);
    Status st = SaveModule(second, path);
    fault::FaultInjector::Global().DisarmAll();
    ASSERT_FALSE(st.ok()) << point;

    RandomModule loaded(21, false);
    ASSERT_TRUE(LoadModule(&loaded, path).ok()) << point;
    EXPECT_TRUE(ModulesBitIdentical(first, loaded)) << point;
  }
}

TEST(CheckpointTest, TrainingStateRoundTripsThroughAdam) {
  const std::string path = TempPath("train_state.ckpt");
  std::remove(path.c_str());
  RandomModule module(31, true);
  Adam adam(module.Parameters(), 1e-3f);
  // Drive a few steps so the optimizer slots are non-trivial.
  Rng grad_rng(77);
  for (int step = 0; step < 3; ++step) {
    for (auto& p : module.Parameters()) {
      p.var->grad = Tensor::Zeros(p.var->value.rows(), p.var->value.cols());
      for (int64_t j = 0; j < p.var->grad.size(); ++j) {
        p.var->grad.data()[j] = static_cast<float>(grad_rng.Uniform(-1, 1));
      }
    }
    adam.Step();
  }

  TrainingState state;
  state.epoch = 3;
  Rng stream(123);
  stream.Normal();  // leave a cached Box-Muller value in flight
  state.rng = stream.SaveState();
  state.extra = {{"note", 42.0}};
  ASSERT_TRUE(SaveTrainingCheckpoint(module, adam, state, path).ok());

  RandomModule module2(31, false);
  Adam adam2(module2.Parameters(), 1e-3f);
  TrainingState state2;
  ASSERT_TRUE(
      LoadTrainingCheckpoint(&module2, &adam2, &state2, path).ok());
  EXPECT_TRUE(ModulesBitIdentical(module, module2));
  EXPECT_EQ(state2.epoch, 3);
  ASSERT_EQ(state2.extra.size(), 1u);
  EXPECT_EQ(state2.extra[0].first, "note");

  // The restored stream replays the saved one exactly.
  Rng restored;
  restored.LoadState(state2.rng);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(stream.Next(), restored.Next());
    EXPECT_EQ(stream.Normal(), restored.Normal());
  }

  // Identical future updates: same gradients -> bit-identical weights.
  for (Adam* a : {&adam, &adam2}) {
    Module& m = (a == &adam) ? static_cast<Module&>(module) : module2;
    Rng g(99);
    for (auto& p : m.Parameters()) {
      p.var->grad = Tensor::Zeros(p.var->value.rows(), p.var->value.cols());
      for (int64_t j = 0; j < p.var->grad.size(); ++j) {
        p.var->grad.data()[j] = static_cast<float>(g.Uniform(-1, 1));
      }
    }
    a->Step();
  }
  EXPECT_TRUE(ModulesBitIdentical(module, module2));
}

TEST(CheckpointTest, AdamImportRejectsMismatchedStateWithoutPartialMutation) {
  const std::string path = TempPath("adam_mismatch.ckpt");
  std::remove(path.c_str());
  RandomModule module(41, true);
  Adam adam(module.Parameters(), 1e-3f);
  TrainingState state;
  state.epoch = 1;
  ASSERT_TRUE(SaveTrainingCheckpoint(module, adam, state, path).ok());

  RandomModule other(42, false);  // different layout
  Adam other_adam(other.Parameters(), 1e-3f);
  TrainingState st2;
  EXPECT_FALSE(LoadTrainingCheckpoint(&other, &other_adam, &st2, path).ok());
}

// ---------------------------------------------------------------------------
// End-to-end: resumable QpSeeker training.

class ResumeTrainingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(1);
    db_ = storage::BuildDatabase(storage::ToySpec(), 200, &rng).value().release();
    stats_ = stats::DatabaseStats::Analyze(*db_).release();
    std::vector<query::Query> queries;
    const char* sqls[] = {
        "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;",
        "SELECT COUNT(*) FROM b, c WHERE c.c1 = b.id;",
        "SELECT COUNT(*) FROM a WHERE a.a2 >= 2;",
    };
    for (const char* sql : sqls) {
      queries.push_back(query::ParseSql(sql, *db_).value());
    }
    sampling::DatasetOptions dopts;
    dopts.source = sampling::PlanSource::kSampled;
    dopts.sampler.max_plans_per_query = 3;
    Rng drng(2);
    dataset_ = new sampling::QepDataset(
        sampling::BuildQepDataset(*db_, *stats_, queries, dopts, &drng).value());
  }

  static void TearDownTestSuite() {
    delete dataset_;
    delete stats_;
    delete db_;
  }

  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }

  static core::QpSeeker MakeModel() {
    return core::QpSeeker(*db_, *stats_,
                          core::QpSeekerConfig::ForScale(Scale::kSmoke), 3);
  }

  static storage::Database* db_;
  static stats::DatabaseStats* stats_;
  static sampling::QepDataset* dataset_;
};

storage::Database* ResumeTrainingTest::db_ = nullptr;
stats::DatabaseStats* ResumeTrainingTest::stats_ = nullptr;
sampling::QepDataset* ResumeTrainingTest::dataset_ = nullptr;

TEST_F(ResumeTrainingTest, ResumedRunContinuesLossCurveExactly) {
  const std::string ckpt = TempPath("resume.ckpt");
  std::remove(ckpt.c_str());

  // Reference: one uninterrupted 6-epoch run.
  core::TrainOptions base;
  base.epochs = 6;
  base.batch_size = 4;
  auto uninterrupted = MakeModel();
  const auto ref = uninterrupted.Train(*dataset_, base);
  ASSERT_EQ(ref.epoch_losses.size(), 6u);

  // Interrupted: 3 epochs with checkpointing, then a *fresh* model resumes
  // from the checkpoint for the remaining 3.
  core::TrainOptions part = base;
  part.epochs = 3;
  part.checkpoint_path = ckpt;
  auto first_half = MakeModel();
  const auto r1 = first_half.Train(*dataset_, part);
  ASSERT_EQ(r1.epoch_losses.size(), 3u);
  EXPECT_EQ(r1.resumed_epochs, 0);
  ASSERT_TRUE(LooksLikeCheckpoint(ckpt));

  core::TrainOptions full = base;
  full.checkpoint_path = ckpt;
  auto resumed = MakeModel();
  const auto r2 = resumed.Train(*dataset_, full);
  EXPECT_EQ(r2.resumed_epochs, 3);
  ASSERT_EQ(r2.epoch_losses.size(), 3u);  // epochs 3..5 only

  // Loss-continuity: the resumed epochs reproduce the uninterrupted run
  // bit for bit (weights, Adam slots, and RNG stream all restored).
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(r2.epoch_losses[i], ref.epoch_losses[3 + i]) << i;
  }
  // And the first half matched too.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(r1.epoch_losses[i], ref.epoch_losses[i]) << i;
  }
}

TEST_F(ResumeTrainingTest, KilledSaveKeepsPriorCheckpointResumable) {
  const std::string ckpt = TempPath("killed.ckpt");
  std::remove(ckpt.c_str());

  core::TrainOptions part;
  part.epochs = 2;
  part.batch_size = 4;
  part.checkpoint_path = ckpt;
  auto model = MakeModel();
  ASSERT_EQ(model.Train(*dataset_, part).epoch_losses.size(), 2u);
  const std::string good_bytes = ReadAll(ckpt);

  // Every further save dies mid-rename (the torn-write window). Training
  // itself must keep going and the on-disk checkpoint must stay the epoch-2
  // snapshot, still resumable.
  fault::FaultSpec spec;
  spec.code = StatusCode::kIOError;
  spec.sticky = true;
  spec.trigger_on_hit = 1;
  fault::FaultInjector::Global().Arm("io.rename", spec);
  core::TrainOptions more = part;
  more.epochs = 4;
  auto cont = MakeModel();
  const auto r = cont.Train(*dataset_, more);
  fault::FaultInjector::Global().DisarmAll();
  EXPECT_EQ(r.resumed_epochs, 2);
  EXPECT_EQ(r.epoch_losses.size(), 2u);
  EXPECT_EQ(ReadAll(ckpt), good_bytes);

  // The surviving checkpoint still resumes cleanly.
  auto again = MakeModel();
  const auto r2 = again.Train(*dataset_, more);
  EXPECT_EQ(r2.resumed_epochs, 2);
}

TEST_F(ResumeTrainingTest, SaveEmbedsNormalizerInOneFile) {
  const std::string path = TempPath("model_embed.ckpt");
  std::remove(path.c_str());
  core::TrainOptions topts;
  topts.epochs = 2;
  topts.batch_size = 4;
  auto model = MakeModel();
  model.Train(*dataset_, topts);
  ASSERT_TRUE(model.Save(path).ok());
  // No sidecar required: a fresh instance loads everything from `path`.
  std::remove((path + ".norm").c_str());
  auto loaded = MakeModel();
  ASSERT_TRUE(loaded.Load(path).ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(loaded.normalizer().log_max(i), model.normalizer().log_max(i));
  }
  // Predictions agree bit for bit.
  const auto& q = dataset_->queries[0];
  const auto& plan = *dataset_->qeps[0].plan;
  const auto a = model.PredictPlan(q, plan);
  const auto b = loaded.PredictPlan(q, plan);
  EXPECT_EQ(a.cardinality, b.cardinality);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.runtime_ms, b.runtime_ms);
}

}  // namespace
}  // namespace nn
}  // namespace qps
