// Copyright 2026 The QPSeeker Authors

#include <gtest/gtest.h>

#include "baselines/bao.h"
#include "baselines/mscn.h"
#include "baselines/qppnet.h"
#include "baselines/zeroshot.h"
#include "eval/metrics.h"
#include "eval/workloads.h"
#include "sampling/plan_sampler.h"
#include "storage/schemas.h"

namespace qps {
namespace baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1);
    auto db = storage::BuildDatabase(storage::ToySpec(), 400, &rng);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    stats_ = stats::DatabaseStats::Analyze(*db_);

    eval::WorkloadOptions wo;
    wo.num_queries = 60;
    wo.min_joins = 0;
    wo.max_joins = 2;
    wo.num_templates = 12;
    Rng wrng(2);
    queries_ = eval::GenerateWorkload(*db_, wo, &wrng);

    sampling::DatasetOptions dopts;
    dopts.source = sampling::PlanSource::kOptimizer;
    Rng drng(3);
    auto ds = sampling::BuildQepDataset(*db_, *stats_, queries_, dopts, &drng);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = std::move(ds).value();
    ASSERT_GT(dataset_.qeps.size(), 30u);

    // Annotate estimated stats (input features for plan-based baselines).
    optimizer::Planner planner(*db_, *stats_);
    for (auto& qep : dataset_.qeps) {
      planner.cost_model().EstimatePlan(
          dataset_.queries[static_cast<size_t>(qep.query_id)], qep.plan.get());
    }
  }

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<stats::DatabaseStats> stats_;
  std::vector<query::Query> queries_;
  sampling::QepDataset dataset_;
};

TEST_F(BaselinesTest, MscnLearnsCardinalities) {
  MscnConfig cfg;
  cfg.epochs = 60;
  cfg.learning_rate = 2e-3f;
  Mscn mscn(*db_, cfg, 7);
  std::vector<CardinalitySample> samples;
  for (const auto& qep : dataset_.qeps) {
    samples.push_back({&dataset_.queries[static_cast<size_t>(qep.query_id)],
                       qep.plan->actual.cardinality});
  }
  auto losses = mscn.Train(samples, 8);
  EXPECT_LT(losses.back(), losses.front() * 0.5) << "training must converge";
  std::vector<double> errs;
  for (const auto& s : samples) {
    errs.push_back(eval::QError(mscn.Predict(*s.query), s.cardinality));
  }
  const auto pct = eval::ComputePercentiles(errs);
  EXPECT_LT(pct.p50, 4.0) << "median train q-error";
}

TEST_F(BaselinesTest, MscnPredictionsArePositiveAndFinite) {
  Mscn mscn(*db_, MscnConfig{}, 7);
  for (const auto& q : queries_) {
    const double pred = mscn.Predict(q);
    EXPECT_GE(pred, 0.0);
    EXPECT_TRUE(std::isfinite(pred));
  }
}

TEST_F(BaselinesTest, QppNetLearnsRuntimes) {
  QppNetConfig cfg;
  cfg.epochs = 60;
  cfg.learning_rate = 2e-3f;
  QppNet qpp(*db_, cfg, 9);
  std::vector<RuntimeSample> samples;
  for (const auto& qep : dataset_.qeps) {
    samples.push_back(
        {&dataset_.queries[static_cast<size_t>(qep.query_id)], qep.plan.get()});
  }
  auto losses = qpp.Train(samples, 10);
  EXPECT_LT(losses.back(), losses.front() * 0.7);
  std::vector<double> errs;
  for (const auto& s : samples) {
    errs.push_back(eval::QError(qpp.Predict(*s.query, *s.plan),
                                s.plan->actual.runtime_ms, 0.1));
  }
  EXPECT_LT(eval::ComputePercentiles(errs).p50, 4.0);
}

TEST_F(BaselinesTest, QppNetHasOneUnitPerOperator) {
  QppNet qpp(*db_, QppNetConfig{}, 9);
  // 6 operator units, each a 3-layer MLP with 2 params per layer.
  EXPECT_EQ(qpp.Parameters().size(), 6u * 3u * 2u);
}

TEST_F(BaselinesTest, ZeroShotTransfersAcrossDatabases) {
  // Train on plans from two *other* databases...
  Rng rng(11);
  auto db_a = storage::BuildDatabase(storage::StackLikeSpec(), 120, &rng);
  auto db_b = storage::BuildDatabase(storage::ImdbLikeSpec(), 60, &rng);
  ASSERT_TRUE(db_a.ok() && db_b.ok());
  std::vector<sampling::QepDataset> train_sets;
  std::vector<const storage::Database*> dbs = {db_a->get(), db_b->get()};
  std::vector<std::unique_ptr<stats::DatabaseStats>> all_stats;
  for (const auto* tdb : dbs) {
    auto tstats = stats::DatabaseStats::Analyze(*tdb);
    eval::WorkloadOptions wo;
    wo.num_queries = 25;
    wo.min_joins = 0;
    wo.max_joins = 2;
    Rng wrng(12);
    auto qs = eval::GenerateWorkload(*tdb, wo, &wrng);
    sampling::DatasetOptions dopts;
    dopts.source = sampling::PlanSource::kOptimizer;
    Rng drng(13);
    auto ds = sampling::BuildQepDataset(*tdb, *tstats, qs, dopts, &drng);
    ASSERT_TRUE(ds.ok());
    optimizer::Planner planner(*tdb, *tstats);
    for (auto& qep : ds->qeps) {
      planner.cost_model().EstimatePlan(
          ds->queries[static_cast<size_t>(qep.query_id)], qep.plan.get());
    }
    train_sets.push_back(std::move(ds).value());
    all_stats.push_back(std::move(tstats));
  }
  std::vector<CostSample> samples;
  for (size_t d = 0; d < train_sets.size(); ++d) {
    for (const auto& qep : train_sets[d].qeps) {
      samples.push_back({dbs[d],
                         &train_sets[d].queries[static_cast<size_t>(qep.query_id)],
                         qep.plan.get()});
    }
  }
  ZeroShotConfig zcfg;
  zcfg.epochs = 40;
  ZeroShot zs(zcfg, 14);
  auto losses = zs.Train(samples, 15);
  EXPECT_LT(losses.back(), losses.front());

  // ...then predict on the toy database without fine-tuning.
  std::vector<double> errs;
  for (const auto& qep : dataset_.qeps) {
    const auto& q = dataset_.queries[static_cast<size_t>(qep.query_id)];
    errs.push_back(eval::QError(zs.Predict(*db_, q, *qep.plan),
                                qep.plan->actual.cost, 1.0));
  }
  // Zero-shot: no target-db training, so only demand non-degenerate output.
  const auto pct = eval::ComputePercentiles(errs);
  EXPECT_TRUE(std::isfinite(pct.p50));
  EXPECT_LT(pct.p50, 100.0);
}

TEST_F(BaselinesTest, BaoHas49Arms) {
  const auto arms = Bao::AllArms();
  EXPECT_EQ(arms.size(), 49u);
  for (const auto& arm : arms) EXPECT_TRUE(arm.Valid());
}

TEST_F(BaselinesTest, BaoCollectsExperienceAndPlans) {
  BaoConfig cfg;
  cfg.arms_per_query = 2;
  cfg.rounds = 1;
  cfg.epochs_per_round = 10;
  Bao bao(*db_, *stats_, cfg, 21);
  std::vector<query::Query> train(queries_.begin(), queries_.begin() + 10);
  exec::Executor ex(*db_);
  ASSERT_TRUE(bao.TrainOnWorkload(train, &ex, 22).ok());
  EXPECT_GT(bao.experience_size(), 10);

  auto plan = bao.Plan(queries_[12]);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->RelMask(),
            (uint64_t{1} << queries_[12].num_relations()) - 1);
}

TEST_F(BaselinesTest, BaoValueModelDifferentiatesPlans) {
  BaoConfig cfg;
  cfg.arms_per_query = 3;
  cfg.rounds = 2;
  Bao bao(*db_, *stats_, cfg, 21);
  std::vector<query::Query> train(queries_.begin(), queries_.begin() + 15);
  exec::Executor ex(*db_);
  ASSERT_TRUE(bao.TrainOnWorkload(train, &ex, 22).ok());
  // Predicted runtimes differ between a cheap and an expensive plan shape.
  optimizer::Planner planner(*db_, *stats_);
  auto q = queries_[0];
  optimizer::PlanHints nl_only;
  nl_only.enable_hashjoin = false;
  nl_only.enable_mergejoin = false;
  auto cheap = planner.Plan(q);
  auto expensive = planner.Plan(q, nl_only);
  if (cheap.ok() && expensive.ok() && q.num_relations() > 1) {
    EXPECT_NE(bao.PredictRuntime(**cheap), bao.PredictRuntime(**expensive));
  }
}

}  // namespace
}  // namespace baselines
}  // namespace qps
