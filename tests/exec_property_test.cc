// Copyright 2026 The QPSeeker Authors
//
// Property-based executor tests: for a sweep of queries, *every* physical
// plan — any connected join order, any operator assignment, left-deep or
// bushy — must produce the same cardinality at the root (plan invariance),
// with positive deterministic runtimes and cumulative cost/runtime
// monotone up the tree.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "stats/analyze.h"
#include "query/parser.h"
#include "storage/schemas.h"
#include "util/rng.h"

namespace qps {
namespace exec {
namespace {

struct Fixture {
  std::unique_ptr<storage::Database> db;
  std::vector<query::Query> queries;

  static const Fixture& Get() {
    static Fixture* f = [] {
      auto* fx = new Fixture();
      Rng rng(1);
      fx->db = storage::BuildDatabase(storage::ToySpec(), 250, &rng).value();
      const char* sqls[] = {
          "SELECT COUNT(*) FROM a WHERE a.a2 <= 4;",
          "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;",
          "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 = 0 AND b.b3 > 1;",
          "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;",
          "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id "
          "AND c.c2 < 25 AND a.a2 <> 3;",
      };
      for (const char* sql : sqls) {
        fx->queries.push_back(query::ParseSql(sql, *fx->db).value());
      }
      return fx;
    }();
    return *f;
  }
};

class PlanInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanInvarianceTest, AllPlansAgreeOnCardinality) {
  const auto& fx = Fixture::Get();
  const query::Query& q = fx.queries[static_cast<size_t>(GetParam())];

  // Reference: first order, all-hash, all-seq.
  auto orders = query::EnumerateJoinOrders(q, 24);
  ASSERT_FALSE(orders.empty());
  const size_t n = orders[0].size();
  auto ref_plan = BuildLeftDeepPlan(
      q, orders[0], std::vector<query::OpType>(n, query::OpType::kSeqScan),
      std::vector<query::OpType>(n > 0 ? n - 1 : 0, query::OpType::kHashJoin));
  ASSERT_NE(ref_plan, nullptr);
  Executor ref_ex(*fx.db);
  auto ref_card = ref_ex.Execute(q, ref_plan.get());
  ASSERT_TRUE(ref_card.ok());

  // Sweep: every enumerated order x assorted operator assignments.
  Rng rng(99);
  for (const auto& order : orders) {
    for (int variant = 0; variant < 4; ++variant) {
      std::vector<query::OpType> scans, joins;
      for (size_t i = 0; i < order.size(); ++i) {
        scans.push_back(query::ScanOps()[rng.UniformInt(3)]);
        if (i > 0) joins.push_back(query::JoinOps()[rng.UniformInt(3)]);
      }
      auto plan = BuildLeftDeepPlan(q, order, scans, joins);
      ASSERT_NE(plan, nullptr);
      Executor ex(*fx.db);
      auto card = ex.Execute(q, plan.get());
      ASSERT_TRUE(card.ok()) << card.status().ToString();
      EXPECT_EQ(*card, *ref_card) << "plan:\n" << plan->ToString(*fx.db, q);
    }
  }
}

TEST_P(PlanInvarianceTest, BushyPlansAgreeWithLeftDeep) {
  const auto& fx = Fixture::Get();
  const query::Query& q = fx.queries[static_cast<size_t>(GetParam())];
  auto orders = query::EnumerateJoinOrders(q, 1);
  const size_t n = orders[0].size();
  auto ref_plan = BuildLeftDeepPlan(
      q, orders[0], std::vector<query::OpType>(n, query::OpType::kSeqScan),
      std::vector<query::OpType>(n > 0 ? n - 1 : 0, query::OpType::kHashJoin));
  Executor ref_ex(*fx.db);
  auto ref_card = ref_ex.Execute(q, ref_plan.get());
  ASSERT_TRUE(ref_card.ok());

  Rng rng(7);
  for (int i = 0; i < 6; ++i) {
    auto bushy = query::BuildRandomBushyPlan(q, &rng);
    ASSERT_NE(bushy, nullptr);
    EXPECT_EQ(bushy->RelMask(), (uint64_t{1} << q.num_relations()) - 1);
    Executor ex(*fx.db);
    auto card = ex.Execute(q, bushy.get());
    ASSERT_TRUE(card.ok());
    EXPECT_EQ(*card, *ref_card) << "bushy plan:\n" << bushy->ToString(*fx.db, q);
  }
}

TEST_P(PlanInvarianceTest, CumulativeStatsMonotoneUpTheTree) {
  const auto& fx = Fixture::Get();
  const query::Query& q = fx.queries[static_cast<size_t>(GetParam())];
  Rng rng(11);
  auto plan = query::BuildRandomBushyPlan(q, &rng);
  ASSERT_NE(plan, nullptr);
  Executor ex(*fx.db);
  ASSERT_TRUE(ex.Execute(q, plan.get()).ok());
  plan->PostOrder([](const query::PlanNode& node) {
    EXPECT_GT(node.actual.runtime_ms, 0.0);
    EXPECT_GT(node.actual.cost, 0.0);
    if (node.left != nullptr) {
      EXPECT_GE(node.actual.runtime_ms, node.left->actual.runtime_ms);
      EXPECT_GE(node.actual.cost, node.left->actual.cost);
    }
    if (node.right != nullptr) {
      EXPECT_GE(node.actual.runtime_ms, node.right->actual.runtime_ms);
      EXPECT_GE(node.actual.cost, node.right->actual.cost);
    }
  });
}

TEST_P(PlanInvarianceTest, ExecutionIsDeterministic) {
  const auto& fx = Fixture::Get();
  const query::Query& q = fx.queries[static_cast<size_t>(GetParam())];
  Rng rng(13);
  auto p1 = query::BuildRandomBushyPlan(q, &rng);
  auto p2 = p1->Clone();
  Executor e1(*fx.db), e2(*fx.db);
  ASSERT_TRUE(e1.Execute(q, p1.get()).ok());
  ASSERT_TRUE(e2.Execute(q, p2.get()).ok());
  EXPECT_EQ(p1->actual.cardinality, p2->actual.cardinality);
  EXPECT_EQ(p1->actual.runtime_ms, p2->actual.runtime_ms);
  EXPECT_EQ(p1->actual.cost, p2->actual.cost);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, PlanInvarianceTest,
                         ::testing::Range(0, 5));

// ---- Selectivity-estimation property sweep -------------------------------

struct SelectivityCase {
  const char* column;
  storage::CompareOp op;
  int64_t value;
};

class SelectivityTest : public ::testing::TestWithParam<SelectivityCase> {};

TEST_P(SelectivityTest, EstimateWithinTolerance) {
  const auto& fx = Fixture::Get();
  auto dbstats = qps::stats::DatabaseStats::Analyze(*fx.db);
  const auto& param = GetParam();
  const int table = fx.db->TableIndex("b");
  const int col = fx.db->table(table).ColumnIndex(param.column);
  ASSERT_GE(col, 0);
  const auto& column = fx.db->table(table).column(col);
  int64_t truth = 0;
  for (int64_t r = 0; r < column.size(); ++r) {
    truth += storage::CompareDoubles(column.GetDouble(r), param.op,
                                     static_cast<double>(param.value));
  }
  const double truth_sel =
      static_cast<double>(truth) / static_cast<double>(column.size());
  const double est = dbstats->column(table, col).Selectivity(
      param.op, static_cast<double>(param.value));
  EXPECT_NEAR(est, truth_sel, 0.12)
      << param.column << " " << storage::CompareOpSymbol(param.op) << " "
      << param.value;
}

INSTANTIATE_TEST_SUITE_P(
    RangeSweep, SelectivityTest,
    ::testing::Values(SelectivityCase{"b3", storage::CompareOp::kLe, 2},
                      SelectivityCase{"b3", storage::CompareOp::kGt, 5},
                      SelectivityCase{"b3", storage::CompareOp::kEq, 0},
                      SelectivityCase{"b3", storage::CompareOp::kNe, 1},
                      SelectivityCase{"b1", storage::CompareOp::kLt, 100},
                      SelectivityCase{"b1", storage::CompareOp::kGe, 200},
                      SelectivityCase{"id", storage::CompareOp::kLt, 250},
                      SelectivityCase{"id", storage::CompareOp::kEq, 7}));

}  // namespace
}  // namespace exec
}  // namespace qps
