// Copyright 2026 The QPSeeker Authors

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "exec/executor.h"
#include "query/parser.h"
#include "storage/schemas.h"
#include "util/fault.h"
#include "util/rng.h"

namespace qps {
namespace exec {
namespace {

using query::OpType;

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1);
    auto db = storage::BuildDatabase(storage::ToySpec(), 300, &rng);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }

  query::Query Parse(const std::string& sql) {
    auto q = query::ParseSql(sql, *db_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  // Ground truth by brute force over all row combinations (tiny inputs only).
  int64_t BruteForceCount(const query::Query& q) {
    std::vector<int64_t> sizes;
    for (const auto& r : q.relations) sizes.push_back(db_->table(r.table_id).num_rows());
    std::vector<int64_t> rows(q.relations.size(), 0);
    int64_t count = 0;
    while (true) {
      bool pass = true;
      for (const auto& f : q.filters) {
        const auto& t = db_->table(q.relations[static_cast<size_t>(f.rel)].table_id);
        if (!storage::CompareDoubles(t.column(f.column).GetDouble(rows[static_cast<size_t>(f.rel)]),
                                     f.op, f.value.AsDouble())) {
          pass = false;
          break;
        }
      }
      if (pass) {
        for (const auto& j : q.joins) {
          const auto& lt = db_->table(q.relations[static_cast<size_t>(j.left_rel)].table_id);
          const auto& rt = db_->table(q.relations[static_cast<size_t>(j.right_rel)].table_id);
          if (lt.column(j.left_column).GetDouble(rows[static_cast<size_t>(j.left_rel)]) !=
              rt.column(j.right_column).GetDouble(rows[static_cast<size_t>(j.right_rel)])) {
            pass = false;
            break;
          }
        }
      }
      count += pass;
      // Odometer increment.
      size_t d = 0;
      while (d < rows.size()) {
        if (++rows[d] < sizes[d]) break;
        rows[d] = 0;
        ++d;
      }
      if (d == rows.size()) break;
    }
    return count;
  }

  std::unique_ptr<storage::Database> db_;
};

TEST_F(ExecTest, SingleTableScanCountsMatchBruteForce) {
  auto q = Parse("SELECT COUNT(*) FROM a WHERE a.a2 > 3;");
  for (OpType scan : query::ScanOps()) {
    auto plan = BuildLeftDeepPlan(q, {0}, {scan}, {});
    ASSERT_NE(plan, nullptr);
    Executor ex(*db_);
    auto card = ex.Execute(q, plan.get());
    ASSERT_TRUE(card.ok()) << card.status().ToString();
    EXPECT_EQ(*card, static_cast<double>(BruteForceCount(q)))
        << query::OpTypeName(scan);
  }
}

TEST_F(ExecTest, ScanWithMultipleFilters) {
  auto q = Parse("SELECT COUNT(*) FROM b WHERE b.b3 >= 2 AND b.b1 < 100;");
  for (OpType scan : query::ScanOps()) {
    auto plan = BuildLeftDeepPlan(q, {0}, {scan}, {});
    Executor ex(*db_);
    auto card = ex.Execute(q, plan.get());
    ASSERT_TRUE(card.ok());
    EXPECT_EQ(*card, static_cast<double>(BruteForceCount(q)));
  }
}

TEST_F(ExecTest, EqualityAndInequalityFilters) {
  for (const char* sql :
       {"SELECT COUNT(*) FROM a WHERE a.a2 = 0;", "SELECT COUNT(*) FROM a WHERE a.a2 <> 0;",
        "SELECT COUNT(*) FROM a WHERE a.a2 <= 2;", "SELECT COUNT(*) FROM a WHERE a.a2 >= 9;"}) {
    auto q = Parse(sql);
    for (OpType scan : query::ScanOps()) {
      auto plan = BuildLeftDeepPlan(q, {0}, {scan}, {});
      Executor ex(*db_);
      auto card = ex.Execute(q, plan.get());
      ASSERT_TRUE(card.ok());
      EXPECT_EQ(*card, static_cast<double>(BruteForceCount(q))) << sql;
    }
  }
}

TEST_F(ExecTest, TwoWayJoinMatchesBruteForce) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 < 4;");
  const int64_t truth = BruteForceCount(q);
  for (OpType join : query::JoinOps()) {
    auto plan = BuildLeftDeepPlan(q, {0, 1}, {OpType::kSeqScan, OpType::kSeqScan}, {join});
    Executor ex(*db_);
    auto card = ex.Execute(q, plan.get());
    ASSERT_TRUE(card.ok());
    EXPECT_EQ(*card, static_cast<double>(truth)) << query::OpTypeName(join);
  }
}

TEST_F(ExecTest, ThreeWayJoinAllOrdersAgree) {
  auto q = Parse(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id AND a.a2 < 6;");
  const int64_t truth = BruteForceCount(q);
  for (const auto& order : EnumerateJoinOrders(q, 10)) {
    auto plan = BuildLeftDeepPlan(q, order, std::vector<OpType>(3, OpType::kSeqScan),
                                  std::vector<OpType>(2, OpType::kHashJoin));
    ASSERT_NE(plan, nullptr);
    Executor ex(*db_);
    auto card = ex.Execute(q, plan.get());
    ASSERT_TRUE(card.ok());
    EXPECT_EQ(*card, static_cast<double>(truth));
  }
}

TEST_F(ExecTest, PerNodeActualsAreFilled) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  auto plan = BuildLeftDeepPlan(q, {0, 1}, {OpType::kSeqScan, OpType::kIndexScan},
                                {OpType::kHashJoin});
  Executor ex(*db_);
  ASSERT_TRUE(ex.Execute(q, plan.get()).ok());
  plan->PostOrder([](const query::PlanNode& n) {
    EXPECT_GE(n.actual.cardinality, 0.0);
    EXPECT_GT(n.actual.runtime_ms, 0.0);
    EXPECT_GT(n.actual.cost, 0.0);
  });
  // Root runtime/cost are cumulative: at least each child's.
  EXPECT_GE(plan->actual.runtime_ms, plan->left->actual.runtime_ms);
  EXPECT_GE(plan->actual.cost, plan->left->actual.cost);
  // Leaf card <= table rows; join card is the query cardinality.
  EXPECT_LE(plan->left->actual.cardinality,
            static_cast<double>(db_->table(0).num_rows()));
}

TEST_F(ExecTest, OperatorChoiceChangesRuntimeNotCardinality) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  double cards[3], runtimes[3];
  int i = 0;
  for (OpType join : query::JoinOps()) {
    auto plan = BuildLeftDeepPlan(q, {0, 1}, {OpType::kSeqScan, OpType::kSeqScan}, {join});
    Executor ex(*db_);
    auto card = ex.Execute(q, plan.get());
    ASSERT_TRUE(card.ok());
    cards[i] = *card;
    runtimes[i] = plan->actual.runtime_ms;
    ++i;
  }
  EXPECT_EQ(cards[0], cards[1]);
  EXPECT_EQ(cards[1], cards[2]);
  // Nested loop over unfiltered inputs must be the slowest by far.
  EXPECT_GT(runtimes[2], runtimes[0]);
}

TEST_F(ExecTest, RowLimitAborts) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  auto plan = BuildLeftDeepPlan(q, {0, 1}, {OpType::kSeqScan, OpType::kSeqScan},
                                {OpType::kHashJoin});
  ExecOptions opts;
  opts.max_intermediate_rows = 5;
  Executor ex(*db_, opts);
  auto card = ex.Execute(q, plan.get());
  EXPECT_FALSE(card.ok());
  EXPECT_TRUE(card.status().IsResourceExhausted());
}

TEST_F(ExecTest, RowLimitAbortPreservesPartialLabels) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  auto plan = BuildLeftDeepPlan(q, {0, 1}, {OpType::kSeqScan, OpType::kSeqScan},
                                {OpType::kHashJoin});
  ExecOptions opts;
  opts.max_intermediate_rows = 5;
  Executor ex(*db_, opts);
  auto card = ex.Execute(q, plan.get());
  ASSERT_TRUE(card.status().IsResourceExhausted());
  // Both scans completed before the join aborted: their labels are usable
  // training data (plan_sampler decides whether to keep or drop them).
  EXPECT_GT(plan->left->actual.runtime_ms, 0.0);
  EXPECT_GT(plan->right->actual.runtime_ms, 0.0);
  EXPECT_GT(plan->left->actual.cardinality, 0.0);
  // The aborting join records how far it got (one past the limit), not a
  // stale zero.
  EXPECT_EQ(plan->actual.cardinality,
            static_cast<double>(opts.max_intermediate_rows + 1));
  EXPECT_EQ(plan->actual.runtime_ms, 0.0) << "aborted node must not claim a runtime";
}

TEST_F(ExecTest, RowLimitClampBindsTightlyAtTheBoundary) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  auto count_plan = BuildLeftDeepPlan(
      q, {0, 1}, {OpType::kSeqScan, OpType::kSeqScan}, {OpType::kHashJoin});
  Executor unlimited(*db_);
  auto truth = unlimited.Execute(q, count_plan.get());
  ASSERT_TRUE(truth.ok());

  // A limit exactly at the result size succeeds; one below aborts.
  ExecOptions at;
  at.max_intermediate_rows = static_cast<int64_t>(*truth);
  auto p1 = count_plan->Clone();
  EXPECT_TRUE(Executor(*db_, at).Execute(q, p1.get()).ok());
  ExecOptions below;
  below.max_intermediate_rows = static_cast<int64_t>(*truth) - 1;
  auto p2 = count_plan->Clone();
  EXPECT_TRUE(
      Executor(*db_, below).Execute(q, p2.get()).status().IsResourceExhausted());
}

TEST_F(ExecTest, TimeoutAborts) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  auto plan = BuildLeftDeepPlan(q, {0, 1}, {OpType::kSeqScan, OpType::kSeqScan},
                                {OpType::kNestedLoopJoin});
  ExecOptions opts;
  opts.timeout_ms = 1e-6;
  Executor ex(*db_, opts);
  EXPECT_FALSE(ex.Execute(q, plan.get()).ok());
}

TEST_F(ExecTest, TimeoutPreservesCompletedScanLabels) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  auto plan = BuildLeftDeepPlan(q, {0, 1}, {OpType::kSeqScan, OpType::kSeqScan},
                                {OpType::kHashJoin});
  ExecOptions opts;
  opts.timeout_ms = 1e-6;  // first scan blows the budget
  Executor ex(*db_, opts);
  ASSERT_TRUE(ex.Execute(q, plan.get()).status().IsResourceExhausted());
  EXPECT_GT(plan->left->actual.runtime_ms, 0.0);
  EXPECT_EQ(plan->actual.runtime_ms, 0.0);
}

TEST_F(ExecTest, JoinFaultPointSurfacesInjectedStatus) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  auto plan = BuildLeftDeepPlan(q, {0, 1}, {OpType::kSeqScan, OpType::kSeqScan},
                                {OpType::kHashJoin});
  fault::FaultSpec spec;
  spec.code = StatusCode::kIOError;
  spec.message = "disk on fire";
  spec.trigger_on_hit = 1;
  spec.sticky = true;
  fault::FaultInjector::Global().Arm("exec.join", spec);
  Executor ex(*db_);
  auto card = ex.Execute(q, plan.get());
  fault::FaultInjector::Global().DisarmAll();
  ASSERT_FALSE(card.ok());
  EXPECT_EQ(card.status().code(), StatusCode::kIOError);
  EXPECT_EQ(card.status().message(), "disk on fire");
  // Like a genuine abort, completed children keep their labels.
  EXPECT_GT(plan->left->actual.runtime_ms, 0.0);
  EXPECT_GT(plan->right->actual.runtime_ms, 0.0);
}

TEST_F(ExecTest, DeterministicRuntimes) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 > 2;");
  auto p1 = BuildLeftDeepPlan(q, {0, 1}, {OpType::kIndexScan, OpType::kSeqScan},
                              {OpType::kMergeJoin});
  auto p2 = p1->Clone();
  Executor e1(*db_), e2(*db_);
  ASSERT_TRUE(e1.Execute(q, p1.get()).ok());
  ASSERT_TRUE(e2.Execute(q, p2.get()).ok());
  EXPECT_EQ(p1->actual.runtime_ms, p2->actual.runtime_ms);
  EXPECT_EQ(p1->actual.cost, p2->actual.cost);
}

TEST_F(ExecTest, EmptyResultJoin) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 > 100000;");
  auto plan = BuildLeftDeepPlan(q, {0, 1}, {OpType::kSeqScan, OpType::kSeqScan},
                                {OpType::kHashJoin});
  Executor ex(*db_);
  auto card = ex.Execute(q, plan.get());
  ASSERT_TRUE(card.ok());
  EXPECT_EQ(*card, 0.0);
}

TEST_F(ExecTest, IndexScanCheaperThanSeqScanForSelectiveFilter) {
  auto q = Parse("SELECT COUNT(*) FROM b WHERE b.id = 5;");
  auto seq = BuildLeftDeepPlan(q, {0}, {OpType::kSeqScan}, {});
  auto idx = BuildLeftDeepPlan(q, {0}, {OpType::kIndexScan}, {});
  Executor e1(*db_), e2(*db_);
  ASSERT_TRUE(e1.Execute(q, seq.get()).ok());
  ASSERT_TRUE(e2.Execute(q, idx.get()).ok());
  EXPECT_LT(idx->actual.runtime_ms, seq->actual.runtime_ms);
}

TEST_F(ExecTest, ExplainAnalyzeReportsEveryOperatorInPreOrder) {
  auto q = Parse("SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;");
  auto plan = BuildLeftDeepPlan(
      q, {0, 1, 2}, {OpType::kSeqScan, OpType::kSeqScan, OpType::kSeqScan},
      {OpType::kHashJoin, OpType::kHashJoin});
  // Planner-style estimate annotation (deliberately off by 2x to give the
  // q-error column something to report).
  plan->PostOrderMutable([](query::PlanNode& n) {
    n.estimated.cardinality = 40.0;
  });

  Executor ex(*db_);
  auto analysis = ex.ExplainAnalyze(q, plan.get());
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();

  // 5 operators: join(join(scan, scan), scan), root first.
  ASSERT_EQ(analysis->rows.size(), 5u);
  EXPECT_EQ(analysis->rows[0].node, plan.get());
  EXPECT_EQ(analysis->rows[0].depth, 0);
  EXPECT_EQ(analysis->rows[1].depth, 1);
  EXPECT_NE(analysis->rows[0].label.find("HashJoin"), std::string::npos);
  // Leaf labels carry table and alias.
  EXPECT_NE(analysis->rows[2].label.find(" on "), std::string::npos);

  EXPECT_EQ(analysis->root_rows, plan->actual.cardinality);
  EXPECT_GT(analysis->total_wall_ms, 0.0);
  for (const auto& row : analysis->rows) {
    EXPECT_GE(row.wall_ms, 0.0);
    EXPECT_EQ(row.actual_rows, row.node->actual.cardinality);
    EXPECT_EQ(row.sim_ms, row.node->actual.runtime_ms);
  }

  const std::string text = analysis->ToString();
  EXPECT_NE(text.find("q-err="), std::string::npos);
  EXPECT_NE(text.find("Execution:"), std::string::npos);
}

TEST_F(ExecTest, ExplainAnalyzeQErrorMatchesEvalQError) {
  // Regression guard: EXPLAIN ANALYZE must report the evaluation pipeline's
  // q-error definition (eval::QError, floor 1), not a private variant.
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 < 5;");
  auto plan = BuildLeftDeepPlan(q, {0, 1}, {OpType::kSeqScan, OpType::kSeqScan},
                                {OpType::kHashJoin});
  double fake_est = 3.0;
  plan->PostOrderMutable([&fake_est](query::PlanNode& n) {
    n.estimated.cardinality = fake_est;
    fake_est *= 10.0;  // distinct per node, both over- and under-estimates
  });

  Executor ex(*db_);
  auto analysis = ex.ExplainAnalyze(q, plan.get());
  ASSERT_TRUE(analysis.ok());
  for (const auto& row : analysis->rows) {
    EXPECT_DOUBLE_EQ(row.q_error,
                     eval::QError(row.node->estimated.cardinality,
                                  row.node->actual.cardinality));
    EXPECT_GE(row.q_error, 1.0);
  }
}

TEST_F(ExecTest, ExplainAnalyzePropagatesExecutionAborts) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  auto plan = BuildLeftDeepPlan(q, {0, 1}, {OpType::kSeqScan, OpType::kSeqScan},
                                {OpType::kHashJoin});
  ExecOptions opts;
  opts.max_intermediate_rows = 1;
  Executor ex(*db_, opts);
  auto analysis = ex.ExplainAnalyze(q, plan.get());
  ASSERT_FALSE(analysis.ok());
  EXPECT_TRUE(analysis.status().IsResourceExhausted());
}

TEST(WorkCountersTest, RuntimeIsMonotoneInWork) {
  WorkCounters a;
  a.blocks_read = 10;
  WorkCounters b = a;
  b.hash_probe = 1000;
  EXPECT_GT(b.RuntimeMs(), a.RuntimeMs());
  WorkCounters sum;
  sum.Add(a);
  sum.Add(b);
  EXPECT_NEAR(sum.RuntimeMs(), a.RuntimeMs() + b.RuntimeMs(), 1e-9);
}

}  // namespace
}  // namespace exec
}  // namespace qps
