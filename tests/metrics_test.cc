// Copyright 2026 The QPSeeker Authors
//
// Metrics registry: exactness under concurrency (relaxed increments must
// still sum exactly), histogram bucket placement against the documented
// boundaries, and snapshot isolation (a snapshot is a copy, not a view).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "util/metrics.h"

namespace qps {
namespace metrics {
namespace {

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), int64_t{kThreads} * kPerThread);
}

TEST(CounterTest, DeltaAndReset) {
  Counter counter;
  counter.Increment(5);
  counter.Increment(-2);
  EXPECT_EQ(counter.value(), 3);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(GaugeTest, LastWriteWinsAndRoundTripsDoubles) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(3.25);
  EXPECT_EQ(gauge.value(), 3.25);
  gauge.Set(-1e-9);
  EXPECT_EQ(gauge.value(), -1e-9);
}

TEST(HistogramTest, BucketBoundariesMatchTheDocumentedGrid) {
  // Bucket 0 is [0, 1 µs); each subsequent bucket doubles the upper bound.
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(0), 0.001);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(1), 0.002);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(10), 0.001 * 1024.0);

  Histogram hist;
  hist.Record(0.0);        // bucket 0
  hist.Record(0.0009);     // bucket 0 (just below 1 µs)
  hist.Record(0.001);      // bucket 1 (at the boundary -> next bucket)
  hist.Record(0.0015);     // bucket 1
  hist.Record(1e12);       // overflow
  EXPECT_EQ(hist.bucket_count(0), 2);
  EXPECT_EQ(hist.bucket_count(1), 2);
  EXPECT_EQ(hist.bucket_count(Histogram::kNumBuckets), 1);
  EXPECT_EQ(hist.count(), 5);
}

TEST(HistogramTest, ConcurrentRecordsKeepCountAndSumExact) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) hist.Record(1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hist.count(), int64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(hist.sum(), static_cast<double>(kThreads) * kPerThread);
}

TEST(HistogramTest, SnapshotPercentilesAreMonotone) {
  Registry& reg = Registry::Global();
  Histogram* hist = reg.GetHistogram("qps.test.percentiles");
  hist->Reset();
  for (int i = 0; i < 1000; ++i) hist->Record(0.1 * static_cast<double>(i % 64));
  const Snapshot snap = reg.TakeSnapshot();
  const HistogramSnapshot* hs = nullptr;
  for (const auto& h : snap.histograms) {
    if (h.name == "qps.test.percentiles") hs = &h;
  }
  ASSERT_NE(hs, nullptr);
  const double p50 = hs->Percentile(50.0);
  const double p90 = hs->Percentile(90.0);
  const double p99 = hs->Percentile(99.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GT(hs->mean(), 0.0);
}

TEST(HistogramTest, PercentileOfEmptySnapshotIsZero) {
  HistogramSnapshot hs;
  hs.buckets.assign(Histogram::kNumBuckets + 1, 0);
  hs.count = 0;
  EXPECT_EQ(hs.Percentile(0.0), 0.0);
  EXPECT_EQ(hs.Percentile(50.0), 0.0);
  EXPECT_EQ(hs.Percentile(100.0), 0.0);
}

TEST(HistogramTest, PercentileSingleSampleStaysInItsBucket) {
  Histogram hist;
  hist.Record(0.5);  // bucket [0.256, 0.512) ms
  HistogramSnapshot hs;
  hs.count = hist.count();
  for (int i = 0; i <= Histogram::kNumBuckets; ++i) {
    hs.buckets.push_back(hist.bucket_count(i));
  }
  // Every percentile of a single sample interpolates within its bucket.
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    const double v = hs.Percentile(p);
    EXPECT_GE(v, 0.256);
    EXPECT_LE(v, 0.512);
  }
}

TEST(HistogramTest, PercentileAllOverflowReturnsLastFiniteBound) {
  Histogram hist;
  for (int i = 0; i < 10; ++i) hist.Record(1e15);
  HistogramSnapshot hs;
  hs.count = hist.count();
  for (int i = 0; i <= Histogram::kNumBuckets; ++i) {
    hs.buckets.push_back(hist.bucket_count(i));
  }
  // The overflow bucket has no upper bound; its percentile clamps to the
  // bucket's lower bound (the last finite boundary) rather than inventing
  // a value.
  const double last_finite =
      Histogram::BucketUpperBound(Histogram::kNumBuckets - 1);
  EXPECT_DOUBLE_EQ(hs.Percentile(50.0), last_finite);
  EXPECT_DOUBLE_EQ(hs.Percentile(100.0), last_finite);
}

TEST(HistogramTest, PercentileExtremesBracketTheDistribution) {
  Histogram hist;
  hist.Record(0.0005);  // bucket 0
  hist.Record(10.0);    // a much higher bucket
  HistogramSnapshot hs;
  hs.count = hist.count();
  for (int i = 0; i <= Histogram::kNumBuckets; ++i) {
    hs.buckets.push_back(hist.bucket_count(i));
  }
  // p=0 resolves inside the lowest occupied bucket, p=100 inside the
  // highest; neither walks off the bucket array.
  EXPECT_LE(hs.Percentile(0.0), Histogram::BucketUpperBound(0));
  EXPECT_GT(hs.Percentile(100.0), 8.0);
  EXPECT_LE(hs.Percentile(100.0), 16.384);
  EXPECT_LE(hs.Percentile(0.0), hs.Percentile(100.0));
}

TEST(RegistryTest, SameNameReturnsSamePointer) {
  Registry& reg = Registry::Global();
  Counter* a = reg.GetCounter("qps.test.same");
  Counter* b = reg.GetCounter("qps.test.same");
  EXPECT_EQ(a, b);
  // Distinct kinds under the same name are distinct metrics.
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(reg.GetGauge("qps.test.same")));
}

TEST(RegistryTest, SnapshotIsIsolatedFromLaterUpdates) {
  Registry& reg = Registry::Global();
  Counter* counter = reg.GetCounter("qps.test.isolation");
  counter->Reset();
  counter->Increment(7);
  const Snapshot snap = reg.TakeSnapshot();
  counter->Increment(100);  // must not appear in the earlier snapshot

  int64_t seen = -1;
  for (const auto& [name, value] : snap.counters) {
    if (name == "qps.test.isolation") seen = value;
  }
  EXPECT_EQ(seen, 7);
  EXPECT_EQ(counter->value(), 107);
}

TEST(RenderTest, TextAndJsonContainEveryMetric) {
  Registry& reg = Registry::Global();
  reg.GetCounter("qps.test.render_counter")->Increment(3);
  reg.GetGauge("qps.test.render_gauge")->Set(1.5);
  reg.GetHistogram("qps.test.render_hist")->Record(2.0);
  const Snapshot snap = reg.TakeSnapshot();

  const std::string text = RenderText(snap);
  EXPECT_NE(text.find("qps.test.render_counter"), std::string::npos);
  EXPECT_NE(text.find("qps.test.render_gauge"), std::string::npos);
  EXPECT_NE(text.find("qps.test.render_hist"), std::string::npos);

  const std::string json = RenderJson(snap);
  EXPECT_NE(json.find("\"qps.test.render_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(RenderTest, JsonCarriesRawBucketArrays) {
  Registry& reg = Registry::Global();
  Histogram* hist = reg.GetHistogram("qps.test.render_buckets");
  hist->Reset();
  hist->Record(0.0005);  // bucket 0
  hist->Record(0.0015);  // bucket 1
  hist->Record(1e15);    // overflow
  const std::string json = RenderJson(reg.TakeSnapshot());

  const size_t at = json.find("\"qps.test.render_buckets\"");
  ASSERT_NE(at, std::string::npos);
  const std::string obj = json.substr(at, 2048);
  // 28 finite bounds starting at 1 µs, then kNumBuckets+1 counts whose
  // first two and last entries reflect the records above.
  EXPECT_NE(obj.find("\"le\":[0.001,0.002,0.004"), std::string::npos);
  const size_t buckets_at = obj.find("\"buckets\":[1,1,0");
  ASSERT_NE(buckets_at, std::string::npos);
  const size_t close = obj.find(']', buckets_at);
  ASSERT_NE(close, std::string::npos);
  EXPECT_NE(obj.rfind(",1]", close), std::string::npos);  // overflow count
  // Exactly kNumBuckets le entries: count commas inside the le array.
  const size_t le_at = obj.find("\"le\":[");
  const size_t le_close = obj.find(']', le_at);
  const std::string le = obj.substr(le_at, le_close - le_at);
  EXPECT_EQ(std::count(le.begin(), le.end(), ','), Histogram::kNumBuckets - 1);
}

TEST(RenderTest, JsonStaysValidOnNonFiniteGauges) {
  Registry& reg = Registry::Global();
  reg.GetGauge("qps.test.diverged_gauge")->Set(std::nan(""));
  reg.GetGauge("qps.test.overflowed_gauge")->Set(1.0 / 0.0);
  const std::string json = RenderJson(reg.TakeSnapshot());
  // Bare nan/inf literals are invalid JSON; the renderer must clamp them.
  EXPECT_EQ(json.find(":nan"), std::string::npos);
  EXPECT_EQ(json.find(":inf"), std::string::npos);
  EXPECT_EQ(json.find(":-nan"), std::string::npos);
  EXPECT_EQ(json.find(":-inf"), std::string::npos);
}

}  // namespace
}  // namespace metrics
}  // namespace qps
