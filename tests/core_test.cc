// Copyright 2026 The QPSeeker Authors
//
// End-to-end tests of the QPSeeker system: training convergence, prediction
// quality on a toy workload, MCTS planning, and model persistence.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/mcts.h"
#include "core/qpseeker.h"
#include "query/parser.h"
#include "storage/schemas.h"

namespace qps {
namespace core {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1);
    auto db = storage::BuildDatabase(storage::ToySpec(), 400, &rng);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    stats_ = stats::DatabaseStats::Analyze(*db_);

    // A small training workload with variations.
    const char* templates[] = {
        "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 < %d;",
        "SELECT COUNT(*) FROM b, c WHERE c.c1 = b.id AND b.b3 <= %d;",
        "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id AND a.a2 = %d;",
        "SELECT COUNT(*) FROM a WHERE a.a2 >= %d;",
    };
    std::vector<query::Query> queries;
    for (int v = 1; v <= 4; ++v) {
      for (const char* tpl : templates) {
        char sql[256];
        std::snprintf(sql, sizeof(sql), tpl, v * 2);
        auto q = query::ParseSql(sql, *db_);
        ASSERT_TRUE(q.ok()) << q.status().ToString();
        q->template_id = tpl;
        queries.push_back(std::move(q).value());
      }
    }
    sampling::DatasetOptions opts;
    opts.source = sampling::PlanSource::kSampled;
    opts.sampler.candidates_per_order = 4;
    opts.sampler.max_plans_per_query = 6;
    Rng drng(2);
    auto ds = sampling::BuildQepDataset(*db_, *stats_, std::move(queries), opts, &drng);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = std::move(ds).value();
    ASSERT_GT(dataset_.qeps.size(), 20u);
  }

  QpSeeker MakeTrained(double beta = 100.0, int epochs = 60) {
    QpSeekerConfig cfg = QpSeekerConfig::ForScale(Scale::kSmoke);
    cfg.beta = beta;
    QpSeeker seeker(*db_, *stats_, cfg, /*seed=*/3);
    TrainOptions topts;
    topts.epochs = epochs;
    topts.learning_rate = 2e-3f;
    topts.seed = 4;
    seeker.Train(dataset_, topts);
    return seeker;
  }

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<stats::DatabaseStats> stats_;
  sampling::QepDataset dataset_;
};

TEST_F(CoreTest, TrainingLossDecreases) {
  QpSeekerConfig cfg = QpSeekerConfig::ForScale(Scale::kSmoke);
  QpSeeker seeker(*db_, *stats_, cfg, 3);
  TrainOptions topts;
  topts.epochs = 10;
  topts.seed = 4;
  auto report = seeker.Train(dataset_, topts);
  ASSERT_EQ(report.epoch_losses.size(), 10u);
  EXPECT_LT(report.final_loss, report.epoch_losses.front() * 0.8);
  EXPECT_GT(report.num_parameters, 1000);
}

TEST_F(CoreTest, PredictionsAreInSaneRanges) {
  QpSeeker seeker = MakeTrained();
  for (size_t i = 0; i < 5 && i < dataset_.qeps.size(); ++i) {
    const auto& qep = dataset_.qeps[i];
    const auto& q = dataset_.queries[static_cast<size_t>(qep.query_id)];
    const auto pred = seeker.PredictPlan(q, *qep.plan);
    EXPECT_GE(pred.cardinality, 0.0);
    EXPECT_GE(pred.runtime_ms, 0.0);
    EXPECT_TRUE(std::isfinite(pred.cost));
  }
}

TEST_F(CoreTest, TrainedModelBeatsUntrainedOnRuntime) {
  QpSeekerConfig cfg = QpSeekerConfig::ForScale(Scale::kSmoke);
  QpSeeker untrained(*db_, *stats_, cfg, 3);
  // Fit only the normalizer so Denormalize works.
  sampling::QepDataset empty_train;
  empty_train.queries = {};  // (cannot train on empty; emulate via 0 epochs)
  TrainOptions zero;
  zero.epochs = 0;
  untrained.Train(dataset_, zero);

  QpSeeker trained = MakeTrained();
  auto qerr = [](double pred, double truth) {
    const double p = std::max(pred, 0.1);
    const double t = std::max(truth, 0.1);
    return std::max(p / t, t / p);
  };
  std::vector<double> errs_untrained, errs_trained;
  for (const auto& qep : dataset_.qeps) {
    const auto& q = dataset_.queries[static_cast<size_t>(qep.query_id)];
    errs_untrained.push_back(qerr(untrained.PredictPlan(q, *qep.plan).runtime_ms,
                                  qep.plan->actual.runtime_ms));
    errs_trained.push_back(qerr(trained.PredictPlan(q, *qep.plan).runtime_ms,
                                qep.plan->actual.runtime_ms));
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  double sum_untrained = 0.0, sum_trained = 0.0;
  for (double e : errs_untrained) sum_untrained += e;
  for (double e : errs_trained) sum_trained += e;
  EXPECT_LT(sum_trained, sum_untrained) << "training must improve fit";
  EXPECT_LT(median(errs_trained), 3.0) << "median q-error on train set";
}

TEST_F(CoreTest, PredictNodesReturnsPostOrderTriples) {
  QpSeeker seeker = MakeTrained();
  const auto& qep = dataset_.qeps[0];
  const auto& q = dataset_.queries[static_cast<size_t>(qep.query_id)];
  auto nodes = seeker.PredictNodes(q, *qep.plan);
  EXPECT_EQ(static_cast<int>(nodes.size()), qep.plan->NumNodes());
}

TEST_F(CoreTest, LatentVectorsHaveConfiguredDim) {
  QpSeeker seeker = MakeTrained();
  const auto& qep = dataset_.qeps[0];
  const auto& q = dataset_.queries[static_cast<size_t>(qep.query_id)];
  auto z = seeker.LatentVector(q, *qep.plan);
  EXPECT_EQ(z.size(), static_cast<size_t>(seeker.config().latent_dim));
  // Deterministic at inference (z == mu, no sampling).
  auto z2 = seeker.LatentVector(q, *qep.plan);
  EXPECT_EQ(z, z2);
}

TEST_F(CoreTest, SimilarQepsLandCloserInLatentSpaceThanDissimilar) {
  QpSeeker seeker = MakeTrained(100.0, 15);
  // Two plans of the same query vs plans of different queries.
  int qid0 = dataset_.qeps[0].query_id;
  std::vector<size_t> same, other;
  for (size_t i = 0; i < dataset_.qeps.size(); ++i) {
    (dataset_.qeps[i].query_id == qid0 ? same : other).push_back(i);
  }
  ASSERT_GE(same.size(), 2u);
  ASSERT_GE(other.size(), 1u);
  auto latent = [&](size_t i) {
    const auto& qep = dataset_.qeps[i];
    return seeker.LatentVector(dataset_.queries[static_cast<size_t>(qep.query_id)],
                               *qep.plan);
  };
  auto dist = [](const std::vector<float>& a, const std::vector<float>& b) {
    double d = 0;
    for (size_t i = 0; i < a.size(); ++i) d += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(d);
  };
  const auto z0 = latent(same[0]);
  double avg_same = 0.0, avg_other = 0.0;
  int cs = 0, co = 0;
  for (size_t i = 1; i < same.size() && cs < 5; ++i, ++cs) {
    avg_same += dist(z0, latent(same[i]));
  }
  for (size_t i = 0; i < other.size() && co < 5; ++i, ++co) {
    avg_other += dist(z0, latent(other[i]));
  }
  avg_same /= std::max(1, cs);
  avg_other /= std::max(1, co);
  EXPECT_LT(avg_same, avg_other * 1.5)
      << "same-query QEPs should not be far outliers";
}

TEST_F(CoreTest, MctsProducesValidPlanWithinBudget) {
  QpSeeker seeker = MakeTrained();
  auto q = query::ParseSql(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id AND a.a2 < 9;",
      *db_);
  ASSERT_TRUE(q.ok());
  MctsOptions mopts;
  mopts.time_budget_ms = 100.0;
  auto result = MctsPlan(seeker, *q, mopts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->plan, nullptr);
  EXPECT_EQ(result->plan->RelMask(), 0b111u);
  EXPECT_GT(result->plans_evaluated, 3);
  EXPECT_LT(result->planning_ms, 1000.0);
  EXPECT_GT(result->predicted_runtime_ms, 0.0);
}

TEST_F(CoreTest, MctsDeterministicForSeedAndRolloutCap) {
  QpSeeker seeker = MakeTrained();
  auto q = query::ParseSql(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;", *db_);
  ASSERT_TRUE(q.ok());
  MctsOptions mopts;
  mopts.time_budget_ms = 1e9;  // rollout-capped
  mopts.max_rollouts = 40;
  mopts.seed = 5;
  auto r1 = MctsPlan(seeker, *q, mopts);
  auto r2 = MctsPlan(seeker, *q, mopts);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->predicted_runtime_ms, r2->predicted_runtime_ms);
  EXPECT_EQ(r1->plans_evaluated, r2->plans_evaluated);
}

TEST_F(CoreTest, MctsSingleRelationQuery) {
  QpSeeker seeker = MakeTrained();
  auto q = query::ParseSql("SELECT COUNT(*) FROM a WHERE a.a2 = 2;", *db_);
  ASSERT_TRUE(q.ok());
  MctsOptions mopts;
  mopts.max_rollouts = 20;
  auto result = MctsPlan(seeker, *q, mopts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->plan->is_leaf());
}

TEST_F(CoreTest, GreedyPlannerProducesValidPlan) {
  QpSeeker seeker = MakeTrained();
  auto q = query::ParseSql(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;", *db_);
  ASSERT_TRUE(q.ok());
  auto result = GreedyPlan(seeker, *q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->plan->RelMask(), 0b111u);
}

TEST_F(CoreTest, SaveLoadRoundTripsPredictions) {
  QpSeeker seeker = MakeTrained();
  const auto& qep = dataset_.qeps[0];
  const auto& q = dataset_.queries[static_cast<size_t>(qep.query_id)];
  const auto before = seeker.PredictPlan(q, *qep.plan);
  const std::string path = "/tmp/qps_core_model.bin";
  ASSERT_TRUE(seeker.Save(path).ok());

  QpSeekerConfig cfg = QpSeekerConfig::ForScale(Scale::kSmoke);
  QpSeeker fresh(*db_, *stats_, cfg, /*seed=*/777);  // different init
  ASSERT_TRUE(fresh.Load(path).ok());
  const auto after = fresh.PredictPlan(q, *qep.plan);
  EXPECT_NEAR(after.runtime_ms, before.runtime_ms,
              std::max(1e-3, before.runtime_ms * 0.01));
  EXPECT_NEAR(after.cardinality, before.cardinality,
              std::max(1e-3, before.cardinality * 0.01));
  std::remove(path.c_str());
  std::remove((path + ".norm").c_str());
}

TEST_F(CoreTest, BetaAffectsLatentSpread) {
  QpSeeker tight = MakeTrained(/*beta=*/1000.0, 10);
  QpSeeker loose = MakeTrained(/*beta=*/10.0, 10);
  // Higher beta pushes the posterior toward N(0,1): latent norms shrink.
  auto mean_norm = [&](QpSeeker& s) {
    double total = 0.0;
    int n = 0;
    for (size_t i = 0; i < dataset_.qeps.size() && n < 10; ++i, ++n) {
      const auto& qep = dataset_.qeps[i];
      auto z = s.LatentVector(dataset_.queries[static_cast<size_t>(qep.query_id)],
                              *qep.plan);
      double norm = 0.0;
      for (float v : z) norm += v * v;
      total += std::sqrt(norm);
    }
    return total / n;
  };
  EXPECT_LT(mean_norm(tight), mean_norm(loose) + 1.0);
}

}  // namespace
}  // namespace core
}  // namespace qps
