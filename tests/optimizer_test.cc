// Copyright 2026 The QPSeeker Authors

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "optimizer/planner.h"
#include "query/parser.h"
#include "storage/schemas.h"
#include "util/rng.h"

namespace qps {
namespace optimizer {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1);
    auto db = storage::BuildDatabase(storage::ToySpec(), 400, &rng);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    stats_ = stats::DatabaseStats::Analyze(*db_);
    planner_ = std::make_unique<Planner>(*db_, *stats_);
  }

  query::Query Parse(const std::string& sql) {
    auto q = query::ParseSql(sql, *db_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<stats::DatabaseStats> stats_;
  std::unique_ptr<Planner> planner_;
};

TEST_F(OptimizerTest, ScanCardinalityCloseToTruth) {
  auto q = Parse("SELECT COUNT(*) FROM a WHERE a.a2 <= 2;");
  const auto& cards = planner_->cards();
  const double est = cards.ScanRows(q, 0);
  auto plan = query::BuildLeftDeepPlan(q, {0}, {query::OpType::kSeqScan}, {});
  exec::Executor ex(*db_);
  auto truth = ex.Execute(q, plan.get());
  ASSERT_TRUE(truth.ok());
  const double qerr = std::max(est / std::max(*truth, 1.0),
                               std::max(*truth, 1.0) / std::max(est, 1.0));
  EXPECT_LT(qerr, 1.5) << "est=" << est << " truth=" << *truth;
}

TEST_F(OptimizerTest, FkJoinCardinalityReasonable) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  auto plan = planner_->Plan(q);
  ASSERT_TRUE(plan.ok());
  exec::Executor ex(*db_);
  auto truth = ex.Execute(q, plan->get());
  ASSERT_TRUE(truth.ok());
  // FK join to PK: estimate = |b| (each b row matches exactly one a).
  const double est = (*plan)->estimated.cardinality;
  const double qerr = std::max(est / *truth, *truth / est);
  EXPECT_LT(qerr, 2.0) << "est=" << est << " truth=" << *truth;
}

TEST_F(OptimizerTest, PlanCoversAllRelationsOnce) {
  auto q = Parse(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id AND a.a2 < 5;");
  auto plan = planner_->Plan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->RelMask(), 0b111u);
  EXPECT_EQ((*plan)->NumNodes(), 5);
  int leaves = 0;
  (*plan)->PostOrder([&](const query::PlanNode& n) { leaves += n.is_leaf(); });
  EXPECT_EQ(leaves, 3);
}

TEST_F(OptimizerTest, DpBeatsOrMatchesAllSampledOrders) {
  auto q = Parse(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id AND c.c2 = 7;");
  auto chosen = planner_->Plan(q);
  ASSERT_TRUE(chosen.ok());
  // DP plan cost must be <= any single-order plan cost with uniform ops.
  for (const auto& order : query::EnumerateJoinOrders(q, 16)) {
    for (query::OpType join : query::JoinOps()) {
      auto candidate = BuildLeftDeepPlan(
          q, order, std::vector<query::OpType>(3, query::OpType::kSeqScan),
          std::vector<query::OpType>(2, join));
      if (!candidate) continue;
      planner_->cost_model().EstimatePlan(q, candidate.get());
      EXPECT_LE((*chosen)->estimated.cost, candidate->estimated.cost * 1.0001);
    }
  }
}

TEST_F(OptimizerTest, HintsRestrictOperators) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  PlanHints hints;
  hints.enable_hashjoin = false;
  hints.enable_mergejoin = false;
  auto plan = planner_->Plan(q, hints);
  ASSERT_TRUE(plan.ok());
  (*plan)->PostOrder([](const query::PlanNode& n) {
    if (!n.is_leaf()) {
      EXPECT_EQ(n.op, query::OpType::kNestedLoopJoin);
    }
  });
}

TEST_F(OptimizerTest, InvalidHintsRejected) {
  auto q = Parse("SELECT COUNT(*) FROM a;");
  PlanHints hints;
  hints.enable_seqscan = false;
  hints.enable_indexscan = false;
  hints.enable_bitmapscan = false;
  EXPECT_FALSE(planner_->Plan(q, hints).ok());
}

TEST_F(OptimizerTest, HintsValidityAndToString) {
  PlanHints h;
  EXPECT_TRUE(h.Valid());
  EXPECT_EQ(h.AllowedScans().size(), 3u);
  EXPECT_EQ(h.AllowedJoins().size(), 3u);
  h.enable_hashjoin = h.enable_mergejoin = h.enable_nestloop = false;
  EXPECT_FALSE(h.Valid());
  PlanHints h2;
  h2.enable_mergejoin = false;
  h2.enable_bitmapscan = false;
  EXPECT_EQ(h2.ToString(), "hash,nl|seq,index");
}

TEST_F(OptimizerTest, CrossProductRejected) {
  auto q = Parse("SELECT COUNT(*) FROM a, c;");
  EXPECT_FALSE(planner_->Plan(q).ok());
}

TEST_F(OptimizerTest, SingleTablePlan) {
  auto q = Parse("SELECT COUNT(*) FROM b WHERE b.id = 10;");
  auto plan = planner_->Plan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE((*plan)->is_leaf());
  // Selective equality on the PK: an index-driven scan should win.
  EXPECT_NE((*plan)->op, query::OpType::kSeqScan);
}

TEST_F(OptimizerTest, UnfilteredSmallTablePrefersSeqScan) {
  auto q = Parse("SELECT COUNT(*) FROM a;");
  auto plan = planner_->Plan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->op, query::OpType::kSeqScan);
}

TEST_F(OptimizerTest, CalibrationTightensRuntimeEstimates) {
  std::vector<query::Query> sample = {
      Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;"),
      Parse("SELECT COUNT(*) FROM b, c WHERE c.c1 = b.id;"),
      Parse("SELECT COUNT(*) FROM a WHERE a.a2 < 5;"),
  };
  exec::Executor ex(*db_);
  const double k = planner_->Calibrate(sample, &ex);
  EXPECT_GT(k, 0.0);
  // After calibration, runtime estimates should be within ~5x of truth on
  // the calibration sample itself.
  for (const auto& q : sample) {
    auto plan = planner_->Plan(q);
    ASSERT_TRUE(plan.ok());
    exec::Executor ex2(*db_);
    ASSERT_TRUE(ex2.Execute(q, plan->get()).ok());
    const double est = (*plan)->estimated.runtime_ms;
    const double truth = (*plan)->actual.runtime_ms;
    EXPECT_LT(std::max(est / truth, truth / est), 5.0)
        << "est=" << est << " truth=" << truth;
  }
}

TEST_F(OptimizerTest, ExplainMentionsOperatorsAndTables) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  auto plan = planner_->Plan(q);
  ASSERT_TRUE(plan.ok());
  const std::string text = planner_->Explain(q, **plan);
  EXPECT_NE(text.find("rows="), std::string::npos);
  EXPECT_NE(text.find(" a"), std::string::npos);
  EXPECT_NE(text.find(" b"), std::string::npos);
}

TEST_F(OptimizerTest, GreedyHandlesManyRelations) {
  // Build a 14-relation chain query over imdb-like schema to exceed the DP
  // limit. Use the toy db chain instead: a-b-c is only 3; so parse against a
  // larger imdb database.
  Rng rng(9);
  auto imdb = storage::BuildDatabase(storage::ImdbLikeSpec(), 200, &rng);
  ASSERT_TRUE(imdb.ok());
  auto istats = stats::DatabaseStats::Analyze(**imdb);
  Planner planner(**imdb, *istats);
  // Star join around title with 13 repeated fact tables (aliases).
  std::string sql = "SELECT COUNT(*) FROM title t";
  const char* facts[] = {"cast_info", "movie_companies", "movie_info",
                         "movie_keyword", "movie_info_idx", "aka_title",
                         "complete_cast"};
  int alias_id = 0;
  std::string where;
  for (int copy = 0; copy < 2; ++copy) {
    for (const char* f : facts) {
      const std::string alias = "f" + std::to_string(alias_id++);
      sql += ", " + std::string(f) + " " + alias;
      where += (where.empty() ? "" : " AND ") + alias + ".movie_id = t.id";
    }
  }
  sql += " WHERE " + where + ";";
  auto q = query::ParseSql(sql, **imdb);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_GT(q->num_relations(), Planner::kDpRelationLimit);
  auto plan = planner.Plan(*q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->RelMask(), (uint64_t{1} << q->num_relations()) - 1);
}

}  // namespace
}  // namespace optimizer
}  // namespace qps
