// Copyright 2026 The QPSeeker Authors
//
// Validated hot-reload tests: a good checkpoint passes the canary gate and
// swaps atomically; corrupt checkpoints, q-error regressions, and failing
// swap hooks are rejected with the live model untouched and the failure
// counted; and (the TSan target) reloads racing concurrent PlanService
// traffic never produce a torn model or a failed request.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/planner_backends.h"
#include "core/qpseeker.h"
#include "query/parser.h"
#include "serve/model_manager.h"
#include "serve/plan_service.h"
#include "storage/schemas.h"
#include "util/metrics.h"

namespace qps {
namespace serve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class ModelManagerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(1);
    db_ = storage::BuildDatabase(storage::ToySpec(), 300, &rng).value().release();
    stats_ = stats::DatabaseStats::Analyze(*db_).release();
    baseline_ = new optimizer::Planner(*db_, *stats_);

    std::vector<query::Query> queries;
    const char* sqls[] = {
        "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 < 5;",
        "SELECT COUNT(*) FROM b, c WHERE c.c1 = b.id;",
        "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;",
    };
    for (const char* sql : sqls) {
      queries.push_back(query::ParseSql(sql, *db_).value());
    }
    sampling::DatasetOptions dopts;
    dopts.source = sampling::PlanSource::kSampled;
    dopts.sampler.max_plans_per_query = 4;
    Rng drng(2);
    dataset_ = new sampling::QepDataset(
        sampling::BuildQepDataset(*db_, *stats_, queries, dopts, &drng).value());

    model_ = NewModel().release();
    core::TrainOptions topts;
    topts.epochs = 6;
    model_->Train(*dataset_, topts);

    checkpoint_ = TempPath("live_model.ckpt");
    std::remove(checkpoint_.c_str());
    ASSERT_TRUE(model_->Save(checkpoint_).ok());
  }

  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    delete baseline_;
    delete stats_;
    delete db_;
  }

  static std::unique_ptr<core::QpSeeker> NewModel() {
    return std::make_unique<core::QpSeeker>(
        *db_, *stats_, core::QpSeekerConfig::ForScale(Scale::kSmoke), 3);
  }

  /// The standard factory: fresh instance + hardened load.
  static ModelFactory Factory() {
    return [](const std::string& path) -> StatusOr<std::shared_ptr<core::QpSeeker>> {
      auto candidate = std::shared_ptr<core::QpSeeker>(NewModel().release());
      QPS_RETURN_IF_ERROR(candidate->Load(path));
      return candidate;
    };
  }

  /// Canary cases from the labeled training set (plans carry actuals).
  static std::vector<CanaryCase> Canaries(size_t n = 3) {
    std::vector<CanaryCase> out;
    for (size_t i = 0; i < n && i < dataset_->qeps.size(); ++i) {
      CanaryCase c;
      c.query = dataset_->queries[static_cast<size_t>(dataset_->qeps[i].query_id)];
      c.plan = dataset_->qeps[i].plan->Clone();
      out.push_back(std::move(c));
    }
    return out;
  }

  static std::shared_ptr<core::QpSeeker> SharedLive() {
    // A separate serving copy so tests can hand ownership to a manager
    // without disturbing the suite-wide model_.
    auto copy = std::shared_ptr<core::QpSeeker>(NewModel().release());
    EXPECT_TRUE(copy->Load(checkpoint_).ok());
    return copy;
  }

  static storage::Database* db_;
  static stats::DatabaseStats* stats_;
  static optimizer::Planner* baseline_;
  static sampling::QepDataset* dataset_;
  static core::QpSeeker* model_;
  static std::string checkpoint_;
};

storage::Database* ModelManagerTest::db_ = nullptr;
stats::DatabaseStats* ModelManagerTest::stats_ = nullptr;
optimizer::Planner* ModelManagerTest::baseline_ = nullptr;
sampling::QepDataset* ModelManagerTest::dataset_ = nullptr;
core::QpSeeker* ModelManagerTest::model_ = nullptr;
std::string ModelManagerTest::checkpoint_;

TEST_F(ModelManagerTest, GoodCheckpointPassesGateAndSwaps) {
  ModelManager manager(SharedLive(), Factory());
  ASSERT_TRUE(manager.SetCanaries(Canaries()).ok());
  const auto before = manager.live();

  std::atomic<int> hook_calls{0};
  manager.SetSwapHook([&](std::shared_ptr<const core::QpSeeker> m) -> Status {
    EXPECT_NE(m, nullptr);
    hook_calls.fetch_add(1);
    return Status::OK();
  });

  Status st = manager.Reload(checkpoint_);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(hook_calls.load(), 1);
  EXPECT_NE(manager.live(), before);  // new instance serving
  const auto ms = manager.stats();
  EXPECT_EQ(ms.reloads, 1);
  EXPECT_EQ(ms.reload_failures, 0);
  EXPECT_GT(ms.live_qerror, 0.0);
}

TEST_F(ModelManagerTest, CorruptCheckpointRejectedLiveUntouched) {
  const std::string bad = TempPath("corrupt_reload.ckpt");
  {
    std::ifstream in(checkpoint_, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[bytes.size() / 3] ^= 0x10;
    std::ofstream out(bad, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  ModelManager manager(SharedLive(), Factory());
  ASSERT_TRUE(manager.SetCanaries(Canaries()).ok());
  const auto before = manager.live();
  bool hook_called = false;
  manager.SetSwapHook([&](std::shared_ptr<const core::QpSeeker>) -> Status {
    hook_called = true;
    return Status::OK();
  });

  EXPECT_FALSE(manager.Reload(bad).ok());
  EXPECT_FALSE(hook_called);
  EXPECT_EQ(manager.live(), before);
  EXPECT_EQ(manager.stats().reload_failures, 1);
  EXPECT_EQ(manager.stats().reloads, 0);
}

TEST_F(ModelManagerTest, QErrorGateRejectsRegressedCandidate) {
  // An impossible gate: any candidate's q-error (>= 1 by construction)
  // exceeds ratio * baseline, standing in for a genuinely regressed model.
  ModelManagerOptions opts;
  opts.max_qerror_ratio = 1e-9;
  ModelManager manager(SharedLive(), Factory(), opts);
  ASSERT_TRUE(manager.SetCanaries(Canaries()).ok());
  const auto before = manager.live();

  Status st = manager.Reload(checkpoint_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("q-error"), std::string::npos) << st.ToString();
  EXPECT_EQ(manager.live(), before);
  EXPECT_EQ(manager.stats().reload_failures, 1);
  EXPECT_GT(manager.stats().last_candidate_qerror, 0.0);
}

TEST_F(ModelManagerTest, QuantizedCandidatePassesGateAndSwaps) {
  // An int8 checkpoint hot-loads as a canary candidate: the probe runs
  // through the quantized forward path, and with the default gate the
  // (near-identical) plan quality passes and the candidate swaps in.
  const std::string qpath = TempPath("quant_candidate.ckpt");
  std::remove(qpath.c_str());
  ASSERT_TRUE(model_->SaveQuantized(qpath).ok());

  auto* pass =
      metrics::Registry::Global().GetCounter("qps.model.quant_gate.pass");
  const int64_t pass_before = pass->value();

  ModelManager manager(SharedLive(), Factory());
  ASSERT_TRUE(manager.SetCanaries(Canaries()).ok());
  const auto before = manager.live();

  Status st = manager.Reload(qpath);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(manager.live(), before);
  EXPECT_TRUE(manager.live()->quantized());
  const auto ms = manager.stats();
  EXPECT_EQ(ms.reloads, 1);
  EXPECT_EQ(ms.reload_failures, 0);
  EXPECT_TRUE(ms.last_candidate_quantized);
  EXPECT_EQ(pass->value(), pass_before + 1);
  std::remove(qpath.c_str());
}

TEST_F(ModelManagerTest, DegradedQuantizedCandidateRolledBack) {
  // Same impossible gate as QErrorGateRejectsRegressedCandidate, but with
  // a quantized candidate: the quant gate records the failure and the f32
  // live model keeps serving.
  const std::string qpath = TempPath("quant_degraded.ckpt");
  std::remove(qpath.c_str());
  ASSERT_TRUE(model_->SaveQuantized(qpath).ok());

  auto* fail =
      metrics::Registry::Global().GetCounter("qps.model.quant_gate.fail");
  const int64_t fail_before = fail->value();

  ModelManagerOptions opts;
  opts.max_qerror_ratio = 1e-9;
  ModelManager manager(SharedLive(), Factory(), opts);
  ASSERT_TRUE(manager.SetCanaries(Canaries()).ok());
  const auto before = manager.live();

  Status st = manager.Reload(qpath);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("q-error"), std::string::npos) << st.ToString();
  EXPECT_EQ(manager.live(), before);     // rollback: f32 model still serving
  EXPECT_FALSE(manager.live()->quantized());
  const auto ms = manager.stats();
  EXPECT_EQ(ms.reload_failures, 1);
  EXPECT_TRUE(ms.last_candidate_quantized);
  EXPECT_EQ(fail->value(), fail_before + 1);
  std::remove(qpath.c_str());
}

TEST_F(ModelManagerTest, FailingSwapHookCountsAsFailedReload) {
  ModelManager manager(SharedLive(), Factory());
  ASSERT_TRUE(manager.SetCanaries(Canaries()).ok());
  const auto before = manager.live();
  manager.SetSwapHook([](std::shared_ptr<const core::QpSeeker>) -> Status {
    return Status::Internal("service refused the swap");
  });

  EXPECT_FALSE(manager.Reload(checkpoint_).ok());
  EXPECT_EQ(manager.live(), before);
  EXPECT_EQ(manager.stats().reload_failures, 1);
}

TEST_F(ModelManagerTest, MissingFileRejected) {
  ModelManager manager(SharedLive(), Factory());
  EXPECT_FALSE(manager.Reload(TempPath("does_not_exist.ckpt")).ok());
  EXPECT_EQ(manager.stats().reload_failures, 1);
}

TEST_F(ModelManagerTest, ReloadFailureVisibleInMetricsRegistry) {
  auto* counter =
      metrics::Registry::Global().GetCounter("qps.model.reload_failures");
  const int64_t before = counter->value();
  ModelManager manager(SharedLive(), Factory());
  EXPECT_FALSE(manager.Reload(TempPath("nope.ckpt")).ok());
  EXPECT_EQ(counter->value(), before + 1);
}

TEST_F(ModelManagerTest, SetCanariesRacingReloadKeepsProbesSafe) {
  // Reload's validation probe snapshots the canary set; a concurrent
  // SetCanaries replacing that set (destroying the old cases) must not pull
  // the probe's data out from under it. TSan/ASan guard the old raw-pointer
  // failure mode here. The gate is opened wide: baseline and probe may see
  // different canary subsets, and this test is about memory safety only.
  ModelManagerOptions opts;
  opts.max_qerror_ratio = 1e12;
  ModelManager manager(SharedLive(), Factory(), opts);
  ASSERT_TRUE(manager.SetCanaries(Canaries()).ok());

  std::atomic<bool> stop{false};
  std::thread canary_thread([&] {
    size_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Status st = manager.SetCanaries(Canaries(1 + (n++ % 3)));
      EXPECT_TRUE(st.ok()) << st.ToString();
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 8; ++i) {
    Status st = manager.Reload(checkpoint_);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  stop.store(true);
  canary_thread.join();
  EXPECT_EQ(manager.stats().reloads, 8);
  EXPECT_EQ(manager.stats().reload_failures, 0);
}

/// Rollout-capped MCTS so planning terminates deterministically fast.
core::GuardedOptions Gopts() {
  core::GuardedOptions gopts;
  gopts.hybrid.neural_min_relations = 3;
  gopts.hybrid.mcts.time_budget_ms = 1e9;
  gopts.hybrid.mcts.max_rollouts = 16;
  gopts.hybrid.mcts.eval_batch = 4;
  gopts.hybrid.mcts.seed = 5;
  return gopts;
}

TEST_F(ModelManagerTest, HotReloadUnderConcurrentTraffic) {
  PlanServiceOptions sopts;
  sopts.workers = 4;
  sopts.max_queue = 256;
  PlanServiceDeps deps;
  deps.planner_name = "hybrid";
  deps.model = std::shared_ptr<const core::QpSeeker>(
      std::shared_ptr<const core::QpSeeker>(), model_);
  deps.baseline = baseline_;
  deps.guard_options = Gopts();
  auto service_or = PlanService::Create(std::move(deps), sopts);
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  auto service = std::move(*service_or);

  ModelManager manager(SharedLive(), Factory());
  ASSERT_TRUE(manager.SetCanaries(Canaries()).ok());
  manager.SetSwapHook([&](std::shared_ptr<const core::QpSeeker> m) {
    return service->SwapModel(std::move(m));
  });

  const char* sqls[] = {
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;",
      "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 < 7;",
  };
  constexpr int kClients = 4;
  constexpr int kPerClient = 12;

  std::atomic<bool> stop{false};
  std::thread reloader([&] {
    // Keep swapping validated models in while clients hammer the service.
    while (!stop.load(std::memory_order_relaxed)) {
      Status st = manager.Reload(checkpoint_);
      EXPECT_TRUE(st.ok()) << st.ToString();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        PlanRequest request;
        request.query = query::ParseSql(sqls[(c + i) % 2], *db_).value();
        request.seed = static_cast<uint64_t>(c * kPerClient + i);
        auto fut = service->Submit(std::move(request));
        auto result = fut.get();
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_NE(result->plan, nullptr);
        ok_count.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true);
  reloader.join();

  EXPECT_EQ(ok_count.load(), kClients * kPerClient);
  EXPECT_GE(manager.stats().reloads, 1);
  EXPECT_EQ(manager.stats().reload_failures, 0);
  const auto stats = service->stats();
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  EXPECT_EQ(stats.errors, 0);
}

}  // namespace
}  // namespace serve
}  // namespace qps
