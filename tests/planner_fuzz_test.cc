// Copyright 2026 The QPSeeker Authors
//
// The planner fuzzing subsystem under test, plus the regression-corpus
// replay that keeps every minimized oracle violation fixed forever:
//   - mutator invariants: every mutant is valid, connected, and SQL
//     round-trippable (the corpus format),
//   - behavior signatures: deterministic, alias-insensitive plan shape
//     hashing, sane q-error deciles,
//   - the differential oracle accepts the healthy planner stack,
//   - minimizer shrinks to a still-failing smaller query,
//   - a mini fixed-seed campaign finds signatures and zero violations,
//   - two same-seed campaigns write byte-identical corpora,
//   - every checked-in corpus entry replays clean (tier-1 gate).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/planner_backends.h"
#include "core/qpseeker.h"
#include "eval/workloads.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "fuzz/minimizer.h"
#include "fuzz/mutator.h"
#include "fuzz/oracle.h"
#include "fuzz/seed_queue.h"
#include "fuzz/signature.h"
#include "query/parser.h"
#include "storage/schemas.h"
#include "util/io.h"

#ifndef QPS_CORPUS_DIR
#define QPS_CORPUS_DIR ""
#endif

namespace qps {
namespace {

// Iteration budget: quick in the default ctest run, deeper when tier1.sh
// exports QPS_FUZZ_ITERS (same convention as serialize_fuzz_test).
int64_t FuzzIters(int64_t quick_default) {
  const char* env = std::getenv("QPS_FUZZ_ITERS");
  if (env != nullptr && *env != '\0') return std::atoll(env);
  return quick_default;
}

struct FuzzFixture {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<stats::DatabaseStats> stats;
  std::unique_ptr<optimizer::Planner> baseline;
  std::unique_ptr<core::QpSeeker> model;
  std::vector<query::Query> seeds;

  static const FuzzFixture& Get() {
    static FuzzFixture* f = [] {
      auto* fx = new FuzzFixture();
      Rng rng(1);
      fx->db = storage::BuildDatabase(storage::ToySpec(), 300, &rng).value();
      fx->stats = stats::DatabaseStats::Analyze(*fx->db);
      fx->baseline =
          std::make_unique<optimizer::Planner>(*fx->db, *fx->stats);

      eval::WorkloadOptions wopts;
      wopts.num_queries = 10;
      wopts.max_joins = 2;
      Rng wrng(3);
      fx->seeds = eval::GenerateWorkload(*fx->db, wopts, &wrng);

      sampling::DatasetOptions dopts;
      dopts.source = sampling::PlanSource::kSampled;
      dopts.sampler.max_plans_per_query = 4;
      Rng drng(2);
      auto ds = sampling::BuildQepDataset(*fx->db, *fx->stats, fx->seeds,
                                          dopts, &drng)
                    .value();
      fx->model = std::make_unique<core::QpSeeker>(
          *fx->db, *fx->stats, core::QpSeekerConfig::ForScale(Scale::kSmoke),
          3);
      core::TrainOptions topts;
      topts.epochs = 6;
      fx->model->Train(ds, topts);
      return fx;
    }();
    return *f;
  }

  fuzz::FuzzOptions CampaignOptions(uint64_t seed, int64_t iters) const {
    fuzz::FuzzOptions fopts;
    fopts.seed = seed;
    fopts.iters = iters;
    fopts.oracle.guarded.hybrid.mcts.max_rollouts = 6;
    return fopts;
  }
};

// ---- mutator invariants -----------------------------------------------------

TEST(QueryMutatorTest, MutantsAreValidConnectedAndRoundTrip) {
  const auto& fx = FuzzFixture::Get();
  fuzz::QueryMutator mutator(*fx.db, *fx.stats);
  Rng rng(11);
  std::map<fuzz::MutationKind, int> kinds;
  int produced = 0;
  for (int iter = 0; iter < 300; ++iter) {
    const query::Query& seed =
        fx.seeds[static_cast<size_t>(iter) % fx.seeds.size()];
    fuzz::MutationKind kind;
    auto mutant = mutator.Mutate(seed, &rng, &kind);
    if (!mutant.has_value()) continue;
    ++produced;
    ++kinds[kind];
    ASSERT_TRUE(mutant->Validate(*fx.db).ok())
        << fuzz::MutationKindName(kind) << ": " << mutant->ToSql(*fx.db);
    ASSERT_TRUE(mutant->IsConnected());
    // The corpus persists SQL, so every mutant must round-trip through the
    // parser to an equally valid query.
    auto reparsed = query::ParseSql(mutant->ToSql(*fx.db), *fx.db);
    ASSERT_TRUE(reparsed.ok())
        << fuzz::MutationKindName(kind) << ": " << mutant->ToSql(*fx.db)
        << " -> " << reparsed.status().ToString();
    EXPECT_EQ(reparsed->num_relations(), mutant->num_relations());
    EXPECT_EQ(reparsed->joins.size(), mutant->joins.size());
    EXPECT_EQ(reparsed->filters.size(), mutant->filters.size());
  }
  EXPECT_GT(produced, 250);
  // The campaign should exercise a healthy spread of mutation classes.
  EXPECT_GE(kinds.size(), 6u);
}

TEST(QueryMutatorTest, RespectsGrowthLimits) {
  const auto& fx = FuzzFixture::Get();
  fuzz::MutatorOptions mopts;
  mopts.max_relations = 3;
  mopts.max_filters = 2;
  fuzz::QueryMutator mutator(*fx.db, *fx.stats, mopts);
  Rng rng(13);
  query::Query q = fx.seeds[0];
  // The caps stop *growth*: a seed already above a cap may keep its size,
  // but a mutation chain must never push past max(seed size, cap).
  const int max_relations = std::max(q.num_relations(), mopts.max_relations);
  const size_t max_filters =
      std::max(q.filters.size(), static_cast<size_t>(mopts.max_filters));
  for (int iter = 0; iter < 200; ++iter) {
    auto mutant = mutator.Mutate(q, &rng);
    if (!mutant.has_value()) continue;
    EXPECT_LE(mutant->num_relations(), max_relations);
    EXPECT_LE(mutant->filters.size(), max_filters);
    q = std::move(*mutant);  // walk a mutation chain, not just one step
  }
}

// ---- signatures -------------------------------------------------------------

TEST(SignatureTest, QErrorDeciles) {
  EXPECT_EQ(fuzz::QErrorDecile(100.0, 100.0), 0);
  EXPECT_EQ(fuzz::QErrorDecile(100.0, 150.0), 1);
  EXPECT_EQ(fuzz::QErrorDecile(10.0, 10000.0), 9);
  EXPECT_EQ(fuzz::QErrorDecile(0.0, 0.0), 0);  // +1 smoothing
  EXPECT_EQ(fuzz::QErrorDecile(std::nan(""), 10.0), 9);
}

TEST(SignatureTest, PlanShapeHashIsAliasInsensitive) {
  const auto& fx = FuzzFixture::Get();
  auto q1 = query::ParseSql(
      "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;", *fx.db);
  auto q2 = query::ParseSql(
      "SELECT COUNT(*) FROM b bb, a aa WHERE bb.b1 = aa.id;", *fx.db);
  ASSERT_TRUE(q1.ok() && q2.ok());
  auto plan_for = [](const query::Query& q, const std::vector<int>& order) {
    std::vector<query::OpType> scans(order.size(), query::OpType::kSeqScan);
    std::vector<query::OpType> joins(order.size() - 1,
                                     query::OpType::kHashJoin);
    return query::BuildLeftDeepPlan(q, order, scans, joins);
  };
  // q1: a is relation 0; q2: a is relation 1. Same physical shape.
  auto p1 = plan_for(*q1, {0, 1});
  auto p2 = plan_for(*q2, {1, 0});
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(fuzz::PlanShapeHash(*q1, *p1), fuzz::PlanShapeHash(*q2, *p2));
  // A different operator changes the shape.
  auto p3 = plan_for(*q1, {0, 1});
  p3->op = query::OpType::kMergeJoin;
  EXPECT_NE(fuzz::PlanShapeHash(*q1, *p1), fuzz::PlanShapeHash(*q1, *p3));
}

TEST(SignatureTest, CoverageMapDeduplicates) {
  fuzz::CoverageMap map;
  EXPECT_TRUE(map.Add(42));
  EXPECT_FALSE(map.Add(42));
  EXPECT_TRUE(map.Add(43));
  EXPECT_EQ(map.size(), 2u);
}

// ---- seed queue / searchers -------------------------------------------------

TEST(SeedQueueTest, SearchersPickAllSeedsEventually) {
  for (const char* name : {"roundrobin", "novelty"}) {
    auto searcher = fuzz::MakeSearcher(name);
    ASSERT_TRUE(searcher.ok());
    fuzz::SeedQueue queue;
    query::Query q;
    q.relations = {{0, "a"}};
    for (int i = 0; i < 5; ++i) {
      queue.Add(fuzz::Seed{q, static_cast<uint64_t>(i), 0, 0, 0, 0});
    }
    Rng rng(1);
    for (int i = 0; i < 200; ++i) queue.Pick(searcher->get(), &rng);
    for (size_t i = 0; i < queue.size(); ++i) {
      EXPECT_GT(queue.at(i).executions, 0) << name << " starved seed " << i;
    }
  }
}

TEST(SeedQueueTest, NoveltySearcherFavorsProductiveSeeds) {
  auto searcher = fuzz::MakeSearcher("novelty");
  ASSERT_TRUE(searcher.ok());
  fuzz::SeedQueue queue;
  query::Query q;
  q.relations = {{0, "a"}};
  queue.Add(fuzz::Seed{q, 1, 0, 9, 2, 0});  // high yield
  queue.Add(fuzz::Seed{q, 2, 0, 0, 0, 0});  // no yield
  Rng rng(7);
  int first = 0;
  const int kPicks = 400;
  for (int i = 0; i < kPicks; ++i) {
    fuzz::Seed& s = queue.Pick(searcher->get(), &rng);
    if (s.signature == 1) ++first;
    // Freeze the counters so the preference under test stays fixed.
    queue.at(0).executions = 0;
    queue.at(1).executions = 0;
  }
  EXPECT_GT(first, kPicks / 2);
}

TEST(SeedQueueTest, UnknownSearcherRejected) {
  EXPECT_FALSE(fuzz::MakeSearcher("dfs").ok());
}

// ---- differential oracle ----------------------------------------------------

TEST(DifferentialOracleTest, HealthyStackProducesNoViolations) {
  const auto& fx = FuzzFixture::Get();
  fuzz::OracleOptions oopts;
  oopts.guarded.hybrid.mcts.max_rollouts = 6;
  fuzz::DifferentialOracle oracle(*fx.db, fx.model.get(), fx.baseline.get(),
                                  oopts);
  for (const auto& q : fx.seeds) {
    fuzz::OracleReport report = oracle.Check(q, /*seed=*/99);
    EXPECT_TRUE(report.ok()) << report.violations.front().ToString();
    EXPECT_EQ(report.probes.size(), 4u);
    EXPECT_NE(report.signature, 0u);
    for (const auto& probe : report.probes) {
      EXPECT_NE(probe.plan_shape_hash, 0u);
      EXPECT_GE(probe.actual_rows, 0.0) << probe.backend;
    }
  }
}

TEST(DifferentialOracleTest, DeterministicForFixedSeed) {
  const auto& fx = FuzzFixture::Get();
  fuzz::OracleOptions oopts;
  oopts.guarded.hybrid.mcts.max_rollouts = 6;
  fuzz::DifferentialOracle oracle(*fx.db, fx.model.get(), fx.baseline.get(),
                                  oopts);
  const query::Query& q = fx.seeds[0];
  EXPECT_EQ(oracle.Check(q, 5).signature, oracle.Check(q, 5).signature);
}

// ---- minimizer --------------------------------------------------------------

TEST(MinimizerTest, ShrinksToSmallestStillFailingQuery) {
  const auto& fx = FuzzFixture::Get();
  auto q = query::ParseSql(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id AND "
      "a.a2 > 3 AND b.b3 < 9 AND c.c2 = 7;",
      *fx.db);
  ASSERT_TRUE(q.ok());
  // Synthetic violation: "fails whenever table b is present".
  auto touches_b = [&](const query::Query& candidate) {
    for (const auto& rel : candidate.relations) {
      if (fx.db->table(rel.table_id).name() == "b") return true;
    }
    return false;
  };
  fuzz::Minimizer minimizer(*fx.db);
  query::Query small = minimizer.Minimize(*q, touches_b);
  EXPECT_TRUE(touches_b(small));
  EXPECT_EQ(small.num_relations(), 1);
  EXPECT_TRUE(small.filters.empty());
  EXPECT_TRUE(small.Validate(*fx.db).ok());
}

// ---- corpus I/O -------------------------------------------------------------

TEST(CorpusTest, WriteLoadRoundTrip) {
  const auto& fx = FuzzFixture::Get();
  const std::string dir = testing::TempDir() + "qps_corpus_roundtrip";
  std::filesystem::remove_all(dir);
  auto q = query::ParseSql(
      "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 > 3;", *fx.db);
  ASSERT_TRUE(q.ok());
  auto path = fuzz::WriteCorpusEntry(dir, *q, *fx.db, "result-mismatch", 42);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  // Idempotent: same query, same file.
  auto path2 = fuzz::WriteCorpusEntry(dir, *q, *fx.db, "result-mismatch", 42);
  ASSERT_TRUE(path2.ok());
  EXPECT_EQ(path.value(), path2.value());

  auto entries = fuzz::LoadCorpus(dir, *fx.db);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ(entries->front().violation, "result-mismatch");
  EXPECT_EQ(entries->front().query.num_relations(), 2);
}

TEST(CorpusTest, CorruptEntryFailsLoudly) {
  const auto& fx = FuzzFixture::Get();
  const std::string dir = testing::TempDir() + "qps_corpus_corrupt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/v-bad.sql") << "# violation: junk\nSELECT nope;\n";
  EXPECT_FALSE(fuzz::LoadCorpus(dir, *fx.db).ok());
}

// ---- campaigns --------------------------------------------------------------

TEST(FuzzCampaignTest, MiniCampaignFindsSignaturesAndNoViolations) {
  const auto& fx = FuzzFixture::Get();
  fuzz::Fuzzer fuzzer(*fx.db, *fx.stats, fx.model.get(), fx.baseline.get(),
                      fx.CampaignOptions(/*seed=*/42, FuzzIters(300)));
  auto report = fuzzer.Run(fx.seeds);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->oracle_violations, 0) << report->ToString();
  EXPECT_GE(report->distinct_signatures, 50u);
  EXPECT_GT(report->seeds_admitted, 0);
  EXPECT_GT(report->execs, 0);
}

TEST(FuzzCampaignTest, SameSeedWritesByteIdenticalCorpora) {
  const auto& fx = FuzzFixture::Get();
  // Two full campaigns with one seed: the reports must match line for line
  // and the corpus directories must hold byte-identical file sets (both
  // stay empty while the stack is healthy — equality covers either case).
  auto run = [&](const std::string& dir) {
    std::filesystem::remove_all(dir);
    fuzz::FuzzOptions fopts = fx.CampaignOptions(/*seed=*/7, FuzzIters(200));
    fopts.corpus_dir = dir;
    fuzz::Fuzzer fuzzer(*fx.db, *fx.stats, fx.model.get(), fx.baseline.get(),
                        fopts);
    auto report = fuzzer.Run(fx.seeds);
    EXPECT_TRUE(report.ok());
    return report.ok() ? report->ToString() : std::string();
  };
  const std::string dir_a = testing::TempDir() + "qps_fuzz_corpus_a";
  const std::string dir_b = testing::TempDir() + "qps_fuzz_corpus_b";
  const std::string report_a = run(dir_a);
  const std::string report_b = run(dir_b);
  EXPECT_EQ(report_a, report_b) << "campaigns must be seed-deterministic";

  auto dir_contents = [](const std::string& dir) {
    std::map<std::string, std::string> contents;
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec)) return contents;
    for (const auto& de : std::filesystem::directory_iterator(dir)) {
      contents[de.path().filename().string()] =
          io::ReadFileToString(de.path().string()).value_or("");
    }
    return contents;
  };
  EXPECT_EQ(dir_contents(dir_a), dir_contents(dir_b));
}

// ---- checked-in corpus replay (the tier-1 regression gate) ------------------

TEST(CorpusReplayTest, EveryCheckedInEntryReplaysClean) {
  const std::string dir = QPS_CORPUS_DIR;
  ASSERT_FALSE(dir.empty()) << "QPS_CORPUS_DIR not compiled in";
  const auto& fx = FuzzFixture::Get();
  auto entries = fuzz::LoadCorpus(dir, *fx.db);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();

  fuzz::OracleOptions oopts;
  oopts.guarded.hybrid.mcts.max_rollouts = 6;
  fuzz::DifferentialOracle oracle(*fx.db, fx.model.get(), fx.baseline.get(),
                                  oopts);
  for (const auto& entry : entries.value()) {
    ASSERT_TRUE(entry.query.Validate(*fx.db).ok()) << entry.path;
    fuzz::OracleReport report = oracle.Check(entry.query, /*seed=*/101);
    EXPECT_TRUE(report.ok())
        << entry.path << " (" << entry.violation
        << ") regressed: " << report.violations.front().ToString();
  }
}

}  // namespace
}  // namespace qps
