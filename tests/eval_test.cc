// Copyright 2026 The QPSeeker Authors

#include <gtest/gtest.h>

#include <set>

#include "eval/metrics.h"
#include "eval/tsne.h"
#include "eval/workloads.h"
#include "storage/schemas.h"

namespace qps {
namespace eval {
namespace {

TEST(MetricsTest, QErrorBasics) {
  EXPECT_DOUBLE_EQ(QError(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(100.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(QError(10.0, 100.0), 10.0);
  // Floors avoid division blow-ups on empty results.
  EXPECT_DOUBLE_EQ(QError(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(5.0, 0.0), 5.0);
}

TEST(MetricsTest, PercentilesOnKnownData) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const auto p = ComputePercentiles(v);
  EXPECT_NEAR(p.p50, 50.5, 0.01);
  EXPECT_NEAR(p.p90, 90.1, 0.2);
  EXPECT_NEAR(p.p99, 99.01, 0.2);
  EXPECT_NEAR(p.mean, 50.5, 1e-9);
  EXPECT_EQ(p.count, 100u);
  EXPECT_GT(p.stddev, 25.0);
}

TEST(MetricsTest, PercentilesDegenerateCases) {
  EXPECT_EQ(ComputePercentiles({}).count, 0u);
  const auto one = ComputePercentiles({3.0});
  EXPECT_DOUBLE_EQ(one.p50, 3.0);
  EXPECT_DOUBLE_EQ(one.p99, 3.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
}

TEST(MetricsTest, FormatRowAligned) {
  const std::string row = FormatRow("50%", {1.5, 22.25}, 10);
  EXPECT_NE(row.find("1.5"), std::string::npos);
  EXPECT_NE(row.find("22.25"), std::string::npos);
  const std::string hdr = FormatHeader("Perc", {"A", "B"}, 10);
  EXPECT_NE(hdr.find("Perc"), std::string::npos);
}

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1);
    auto imdb = storage::BuildDatabase(storage::ImdbLikeSpec(), 200, &rng);
    ASSERT_TRUE(imdb.ok());
    imdb_ = std::move(imdb).value();
    auto stack = storage::BuildDatabase(storage::StackLikeSpec(), 200, &rng);
    ASSERT_TRUE(stack.ok());
    stack_ = std::move(stack).value();
  }
  std::unique_ptr<storage::Database> imdb_;
  std::unique_ptr<storage::Database> stack_;
};

TEST_F(WorkloadTest, GeneratedQueriesAreConnectedAndBound) {
  WorkloadOptions o;
  o.num_queries = 50;
  o.min_joins = 1;
  o.max_joins = 5;
  Rng rng(2);
  auto queries = GenerateWorkload(*imdb_, o, &rng);
  ASSERT_EQ(queries.size(), 50u);
  for (const auto& q : queries) {
    EXPECT_TRUE(q.IsConnected());
    EXPECT_GE(q.joins.size(), 1u);
    EXPECT_LE(q.joins.size(), 5u + 2u);  // walk may add parallel edges
    EXPECT_EQ(q.num_relations(), static_cast<int>(q.joins.size()) + 1);
    for (const auto& f : q.filters) {
      EXPECT_GE(f.rel, 0);
      EXPECT_LT(f.rel, q.num_relations());
    }
  }
}

TEST_F(WorkloadTest, TemplatesShareStructure) {
  WorkloadOptions o;
  o.num_queries = 30;
  o.num_templates = 5;
  o.min_joins = 1;
  o.max_joins = 3;
  Rng rng(3);
  auto queries = GenerateWorkload(*imdb_, o, &rng);
  std::set<std::string> templates;
  for (const auto& q : queries) templates.insert(q.template_id);
  EXPECT_EQ(templates.size(), 5u);
  // Queries of the same template share relations and joins.
  for (size_t i = 5; i < queries.size(); ++i) {
    const auto& a = queries[i - 5];
    const auto& b = queries[i];
    ASSERT_EQ(a.template_id, b.template_id);
    EXPECT_EQ(a.num_relations(), b.num_relations());
    EXPECT_EQ(a.joins.size(), b.joins.size());
  }
}

TEST_F(WorkloadTest, NamedWorkloadsMatchTable1Shapes) {
  Rng rng(4);
  auto synthetic = SyntheticWorkload(*imdb_, Scale::kSmoke, &rng);
  EXPECT_EQ(synthetic.size(), 40u);
  for (const auto& q : synthetic) EXPECT_LE(q.joins.size(), 2u);

  auto job = JobWorkload(*imdb_, Scale::kSmoke, &rng);
  EXPECT_EQ(job.size(), 24u);
  for (const auto& q : job) EXPECT_GE(q.joins.size(), 2u);

  auto job_ci = JobWorkload(*imdb_, Scale::kCi, &rng);
  EXPECT_EQ(job_ci.size(), 113u) << "JOB has 113 queries";

  auto stack = StackWorkload(*stack_, Scale::kSmoke, &rng);
  EXPECT_EQ(stack.size(), 30u);

  auto light = JobLightWorkload(*imdb_, Scale::kCi, &rng);
  EXPECT_EQ(light.size(), 70u);
  for (const auto& q : light) EXPECT_LE(q.joins.size(), 3u);

  auto ext = JobExtendedWorkload(*imdb_, Scale::kCi, &rng);
  EXPECT_EQ(ext.size(), 24u);
  for (const auto& q : ext) EXPECT_GE(q.joins.size(), 5u);
}

TEST_F(WorkloadTest, GenerationIsDeterministic) {
  Rng r1(7), r2(7);
  WorkloadOptions o;
  o.num_queries = 10;
  o.max_joins = 3;
  auto q1 = GenerateWorkload(*imdb_, o, &r1);
  auto q2 = GenerateWorkload(*imdb_, o, &r2);
  for (size_t i = 0; i < q1.size(); ++i) {
    EXPECT_EQ(q1[i].ToSql(*imdb_), q2[i].ToSql(*imdb_));
  }
}

TEST(SplitTest, SplitProportionsAndDisjointness) {
  Rng rng(5);
  std::vector<size_t> train, test;
  SplitIndices(100, 0.8, &rng, &train, &test);
  EXPECT_EQ(train.size(), 80u);
  EXPECT_EQ(test.size(), 20u);
  std::set<size_t> all(train.begin(), train.end());
  for (size_t t : test) EXPECT_EQ(all.count(t), 0u);
  all.insert(test.begin(), test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(TsneTest, SeparatesTwoBlobs) {
  Rng rng(6);
  std::vector<std::vector<float>> points;
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) {
    std::vector<float> p(8);
    const int label = i < 15 ? 0 : 1;
    for (auto& v : p) {
      v = static_cast<float>(rng.Normal()) * 0.3f + (label == 0 ? -2.0f : 2.0f);
    }
    points.push_back(std::move(p));
    labels.push_back(label);
  }
  TsneOptions opts;
  opts.iterations = 200;
  auto embedded = RunTsne(points, opts);
  ASSERT_EQ(embedded.size(), 30u);
  // The 2-d embedding must keep the blobs separable: silhouette > 0.
  std::vector<std::vector<float>> emb2;
  for (const auto& e : embedded) {
    emb2.push_back({static_cast<float>(e[0]), static_cast<float>(e[1])});
  }
  EXPECT_GT(SilhouetteScore(emb2, labels), 0.3);
}

TEST(TsneTest, SilhouetteOnPerfectAndRandomClusters) {
  // Perfectly separated clusters -> near 1; one point per cluster -> 0.
  std::vector<std::vector<float>> points = {{0, 0}, {0.1f, 0}, {10, 10}, {10.1f, 10}};
  EXPECT_GT(SilhouetteScore(points, {0, 0, 1, 1}), 0.9);
  Rng rng(8);
  std::vector<std::vector<float>> random;
  std::vector<int> rnd_labels;
  for (int i = 0; i < 40; ++i) {
    random.push_back({static_cast<float>(rng.Normal()), static_cast<float>(rng.Normal())});
    rnd_labels.push_back(i % 2);
  }
  EXPECT_LT(std::abs(SilhouetteScore(random, rnd_labels)), 0.25);
}

TEST(TsneTest, KnnPurityDiscriminates) {
  // Tight label-pure clusters -> purity ~1; shuffled labels -> ~0.5.
  Rng rng(10);
  std::vector<std::vector<float>> points;
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) {
    const int label = i % 2;
    points.push_back({static_cast<float>(rng.Normal()) * 0.1f + label * 10.0f,
                      static_cast<float>(rng.Normal()) * 0.1f});
    labels.push_back(label);
  }
  EXPECT_GT(KnnLabelPurity(points, labels, 5), 0.95);
  std::vector<int> shuffled = labels;
  rng.Shuffle(&shuffled);
  EXPECT_NEAR(KnnLabelPurity(points, shuffled, 5), 0.5, 0.15);
  EXPECT_EQ(KnnLabelPurity({}, {}, 5), 0.0);
}

TEST(TsneTest, EmptyAndTinyInputs) {
  EXPECT_TRUE(RunTsne({}, {}).empty());
  std::vector<std::vector<float>> two = {{0.0f, 1.0f}, {1.0f, 0.0f}};
  EXPECT_EQ(RunTsne(two, {}).size(), 2u);
}

}  // namespace
}  // namespace eval
}  // namespace qps
