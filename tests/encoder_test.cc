// Copyright 2026 The QPSeeker Authors

#include <gtest/gtest.h>

#include "encoder/qp_attention.h"
#include "query/parser.h"
#include "storage/schemas.h"
#include "util/rng.h"

namespace qps {
namespace encoder {
namespace {

class EncoderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1);
    auto db = storage::BuildDatabase(storage::ToySpec(), 300, &rng);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    stats_ = stats::DatabaseStats::Analyze(*db_);
    tabert_ = std::make_unique<tabert::TabSketch>(*db_, *stats_);
    Rng wrng(2);
    config_ = EncoderConfig::Smoke();
    query_encoder_ = std::make_unique<QueryEncoder>(*db_, config_, &wrng);
    plan_encoder_ = std::make_unique<PlanEncoder>(*db_, *tabert_, config_, &wrng);
    attention_ = std::make_unique<QpAttention>(query_encoder_->out_dim(),
                                               plan_encoder_->node_out_dim(),
                                               config_, &wrng);
    norm_.Finalize();  // identity-ish normalizer for encoding tests
  }

  query::Query Parse(const std::string& sql) {
    auto q = query::ParseSql(sql, *db_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  query::PlanPtr MakePlan(const query::Query& q) {
    std::vector<query::OpType> scans(static_cast<size_t>(q.num_relations()),
                                     query::OpType::kSeqScan);
    std::vector<query::OpType> joins(
        q.num_relations() > 0 ? static_cast<size_t>(q.num_relations() - 1) : 0,
        query::OpType::kHashJoin);
    std::vector<int> order;
    for (const auto& o : query::EnumerateJoinOrders(q, 1)) order = o;
    return BuildLeftDeepPlan(q, order, scans, joins);
  }

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<stats::DatabaseStats> stats_;
  std::unique_ptr<tabert::TabSketch> tabert_;
  EncoderConfig config_;
  std::unique_ptr<QueryEncoder> query_encoder_;
  std::unique_ptr<PlanEncoder> plan_encoder_;
  std::unique_ptr<QpAttention> attention_;
  LabelNormalizer norm_;
};

TEST_F(EncoderTest, QueryEmbeddingDimensions) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  nn::Var emb = query_encoder_->Encode(q);
  EXPECT_EQ(emb->value.rows(), 1);
  EXPECT_EQ(emb->value.cols(), query_encoder_->out_dim());
}

TEST_F(EncoderTest, JoinFreeQueryHasZeroJoinHalf) {
  auto q = Parse("SELECT COUNT(*) FROM a WHERE a.a2 = 1;");
  nn::Var emb = query_encoder_->Encode(q);
  // Second half (join set pooled through an all-zero mask) must be zero.
  for (int j = config_.set_out; j < 2 * config_.set_out; ++j) {
    EXPECT_FLOAT_EQ(emb->value(0, j), 0.0f);
  }
}

TEST_F(EncoderTest, DifferentRelationSetsGiveDifferentEmbeddings) {
  auto q1 = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  auto q2 = Parse("SELECT COUNT(*) FROM b, c WHERE c.c1 = b.id;");
  nn::Var e1 = query_encoder_->Encode(q1);
  nn::Var e2 = query_encoder_->Encode(q2);
  float dist = 0.0f;
  for (int64_t i = 0; i < e1->value.size(); ++i) {
    dist += std::fabs(e1->value.at(i) - e2->value.at(i));
  }
  EXPECT_GT(dist, 0.01f);
}

TEST_F(EncoderTest, SameSetsSameEmbedding) {
  // Set semantics: join order in the WHERE clause must not matter.
  auto q1 = Parse("SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;");
  auto q2 = Parse("SELECT COUNT(*) FROM a, b, c WHERE c.c1 = b.id AND b.b1 = a.id;");
  nn::Var e1 = query_encoder_->Encode(q1);
  nn::Var e2 = query_encoder_->Encode(q2);
  for (int64_t i = 0; i < e1->value.size(); ++i) {
    EXPECT_NEAR(e1->value.at(i), e2->value.at(i), 1e-6f);
  }
}

TEST_F(EncoderTest, PlanEncoderProducesPerNodeOutputs) {
  auto q = Parse("SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;");
  auto plan = MakePlan(q);
  ASSERT_NE(plan, nullptr);
  auto out = plan_encoder_->Encode(q, *plan, norm_);
  EXPECT_EQ(out.node_outputs.size(), 5u);
  EXPECT_EQ(out.nodes.size(), 5u);
  EXPECT_EQ(out.node_matrix->value.rows(), 5);
  EXPECT_EQ(out.node_matrix->value.cols(), config_.node_out);
  EXPECT_EQ(out.root->value.cols(), config_.node_out);
  // Post-order: root is last.
  EXPECT_EQ(out.nodes.back(), plan.get());
}

TEST_F(EncoderTest, PlanEncoderSensitiveToOperators) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  auto p1 = MakePlan(q);
  auto p2 = p1->Clone();
  p2->op = query::OpType::kNestedLoopJoin;
  auto o1 = plan_encoder_->Encode(q, *p1, norm_);
  auto o2 = plan_encoder_->Encode(q, *p2, norm_);
  float dist = 0.0f;
  for (int64_t i = 0; i < o1.root->value.size(); ++i) {
    dist += std::fabs(o1.root->value.at(i) - o2.root->value.at(i));
  }
  EXPECT_GT(dist, 1e-4f);
}

TEST_F(EncoderTest, GradientsReachEncoderParameters) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 < 5;");
  auto plan = MakePlan(q);
  nn::Var qe = query_encoder_->Encode(q);
  auto po = plan_encoder_->Encode(q, *plan, norm_);
  nn::Var combined = attention_->Combine(qe, po);
  query_encoder_->ZeroGrad();
  plan_encoder_->ZeroGrad();
  attention_->ZeroGrad();
  nn::Backward(nn::SumAll(nn::Square(combined)));
  int nonzero = 0, total = 0;
  for (const auto& mod :
       std::vector<const nn::Module*>{query_encoder_.get(), plan_encoder_.get(),
                                      attention_.get()}) {
    for (const auto& p : mod->Parameters()) {
      ++total;
      nonzero += p.var->grad.SameShape(p.var->value) &&
                 p.var->grad.FrobeniusNorm() > 0.0f;
    }
  }
  // All parameters receive gradient (bias of unused ad-hoc join bucket may
  // not, via relu dead zones; demand the vast majority).
  EXPECT_GT(nonzero, total * 7 / 10) << nonzero << "/" << total;
}

TEST_F(EncoderTest, AttentionOutputDimIsSumOfEmbeddings) {
  auto q = Parse("SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;");
  auto plan = MakePlan(q);
  nn::Var qe = query_encoder_->Encode(q);
  auto po = plan_encoder_->Encode(q, *plan, norm_);
  nn::Var combined = attention_->Combine(qe, po);
  EXPECT_EQ(combined->value.cols(),
            query_encoder_->out_dim() + plan_encoder_->node_out_dim());
  // Multi-node: real attention scores exist, one row per head.
  EXPECT_EQ(attention_->last_scores().rows(), config_.attn_heads);
  EXPECT_EQ(attention_->last_scores().cols(), 5);
}

TEST_F(EncoderTest, SingleNodePlanFallsBackToConcat) {
  auto q = Parse("SELECT COUNT(*) FROM a WHERE a.a2 = 1;");
  auto plan = MakePlan(q);
  ASSERT_TRUE(plan->is_leaf());
  nn::Var qe = query_encoder_->Encode(q);
  auto po = plan_encoder_->Encode(q, *plan, norm_);
  nn::Var combined = attention_->Combine(qe, po);
  // Concatenation: first part equals the query embedding exactly.
  for (int j = 0; j < query_encoder_->out_dim(); ++j) {
    EXPECT_FLOAT_EQ(combined->value(0, j), qe->value(0, j));
  }
}

TEST(NormalizerTest, RoundTrip) {
  LabelNormalizer norm;
  query::PlanNode node;
  node.actual.cardinality = 1e6;
  node.actual.cost = 5e4;
  node.actual.runtime_ms = 1.5e3;
  norm.Observe(node);
  norm.Finalize();
  const auto n3 = norm.Normalize(node.actual);
  for (float v : n3) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
  const auto back = norm.Denormalize(n3[0], n3[1], n3[2]);
  EXPECT_NEAR(back.cardinality, 1e6, 1e6 * 0.01);
  EXPECT_NEAR(back.cost, 5e4, 5e4 * 0.01);
  EXPECT_NEAR(back.runtime_ms, 1.5e3, 1.5e3 * 0.01);
}

TEST(NormalizerTest, MaxMapsToOne) {
  LabelNormalizer norm;
  query::PlanNode node;
  node.actual.cardinality = 100.0;
  node.actual.cost = 10.0;
  node.actual.runtime_ms = 7.0;
  norm.Observe(node);
  norm.Finalize();
  const auto n3 = norm.Normalize(node.actual);
  EXPECT_NEAR(n3[0], 1.0f, 1e-6f);
  EXPECT_NEAR(n3[1], 1.0f, 1e-6f);
  EXPECT_NEAR(n3[2], 1.0f, 1e-6f);
}

TEST(NormalizerTest, ZeroIsZero) {
  LabelNormalizer norm;
  query::PlanNode node;
  node.actual.cardinality = 50.0;
  norm.Observe(node);
  norm.Finalize();
  query::NodeStats zero;
  const auto n3 = norm.Normalize(zero);
  EXPECT_FLOAT_EQ(n3[0], 0.0f);
  const auto back = norm.Denormalize(0.0f, 0.0f, 0.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(back.cardinality), 0.0f);
}

}  // namespace
}  // namespace encoder
}  // namespace qps
