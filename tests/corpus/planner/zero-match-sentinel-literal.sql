# violation: result-mismatch (candidate): equality on a value below the
# column's domain (the kMutateLiteral "min-1" sentinel) drives estimated
# cardinality to the floor while the true result is zero rows — the regime
# where backends are likeliest to diverge. Pins zero-row agreement across
# all four backends on a joined query.
# found-by: qps_fuzz seed=42 (development run)
SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 = 0;
