# violation: plan-failure (parser): large negative int literals shared the
# std::stoll path that threw (and could terminate a replay process) one past
# the int64 range; conversion now goes through strtoll with errno checks.
# This entry pins the extreme in-range literal through plan + execute.
# found-by: qps_fuzz seed=42 (development run, pre-fix)
SELECT COUNT(*) FROM b WHERE b.b3 >= -9223372036854775807;
