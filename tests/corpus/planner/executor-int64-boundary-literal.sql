# violation: plan-failure (parser): int literals at the int64 boundary went
# through std::stoll, which throws std::out_of_range one past the boundary —
# a hostile corpus file could terminate the replay process. Fixed by moving
# literal conversion to strtoll/strtod with errno checks (InvalidArgument).
# found-by: qps_fuzz seed=42 (development run, pre-fix)
SELECT COUNT(*) FROM a WHERE a.a2 = 9223372036854775807;
