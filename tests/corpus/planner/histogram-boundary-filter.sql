# violation: non-finite-stats (candidate): equality on a histogram bucket
# boundary value with a Zipf-skewed column is the selectivity edge case the
# kMutateLiteral boundary bias targets; pins finite estimates and agreeing
# cardinalities on the full 3-relation chain with boundary filters.
# found-by: qps_fuzz seed=42 (development run)
SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id AND a.a2 = 1 AND c.c2 <= 0;
