# violation: result-mismatch (candidate): duplicate relation instances of the
# same table (the kDuplicateRelation mutation) are where alias-insensitive
# planners can mis-bind join predicates; this shape pins the differential
# cardinality agreement across all four backends for a toy self-join fan-out.
# found-by: qps_fuzz seed=42 (development run)
SELECT COUNT(*) FROM b x, b y, a WHERE x.b1 = a.id AND y.b1 = a.id AND x.b3 = 5;
