// Copyright 2026 The QPSeeker Authors
//
// Fault-injection suite for the guarded planning pipeline. Every rung of
// the degradation ladder (neural MCTS -> greedy -> traditional DP) is
// triggered deterministically through armed fault points, and the circuit
// breaker's open/short-circuit/close cycle runs against an injected fake
// clock. With everything disarmed, GuardedPlanner must be byte-identical
// to HybridPlanner.

#include <gtest/gtest.h>

#include <cmath>

#include "core/guarded_planner.h"
#include "core/qpseeker.h"
#include "query/parser.h"
#include "storage/schemas.h"
#include "util/clock.h"
#include "util/fault.h"

namespace qps {
namespace core {
namespace {

class GuardedPlannerTest : public ::testing::Test {
 protected:
  // One trained model for the whole suite: training dominates runtime and
  // the guards only need a model that scores plans, not a good one.
  static void SetUpTestSuite() {
    Rng rng(1);
    db_ = storage::BuildDatabase(storage::ToySpec(), 300, &rng).value().release();
    stats_ = stats::DatabaseStats::Analyze(*db_).release();
    baseline_ = new optimizer::Planner(*db_, *stats_);

    std::vector<query::Query> queries;
    const char* sqls[] = {
        "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 < 5;",
        "SELECT COUNT(*) FROM b, c WHERE c.c1 = b.id;",
        "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;",
        "SELECT COUNT(*) FROM a WHERE a.a2 >= 2;",
    };
    for (const char* sql : sqls) {
      queries.push_back(query::ParseSql(sql, *db_).value());
    }
    sampling::DatasetOptions dopts;
    dopts.source = sampling::PlanSource::kSampled;
    dopts.sampler.max_plans_per_query = 4;
    Rng drng(2);
    auto ds = sampling::BuildQepDataset(*db_, *stats_, queries, dopts, &drng).value();
    model_ = new QpSeeker(*db_, *stats_, QpSeekerConfig::ForScale(Scale::kSmoke), 3);
    TrainOptions topts;
    topts.epochs = 6;
    model_->Train(ds, topts);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete baseline_;
    delete stats_;
    delete db_;
  }

  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }

  static query::Query Complex() {
    return query::ParseSql(
               "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;",
               *db_)
        .value();
  }
  static query::Query Simple() {
    return query::ParseSql("SELECT COUNT(*) FROM a WHERE a.a2 = 2;", *db_).value();
  }

  /// Deterministic options: rollout-capped MCTS, 3+ relations go neural.
  static GuardedOptions Opts() {
    GuardedOptions opts;
    opts.hybrid.neural_min_relations = 3;
    opts.hybrid.mcts.time_budget_ms = 1e9;
    opts.hybrid.mcts.max_rollouts = 40;
    opts.hybrid.mcts.seed = 5;
    return opts;
  }

  static void ArmSticky(const std::string& point, StatusCode code,
                        const std::string& msg = "injected fault") {
    fault::FaultSpec spec;
    spec.code = code;
    spec.message = msg;
    spec.trigger_on_hit = 1;
    spec.sticky = true;
    fault::FaultInjector::Global().Arm(point, spec);
  }

  static storage::Database* db_;
  static stats::DatabaseStats* stats_;
  static optimizer::Planner* baseline_;
  static QpSeeker* model_;
};

storage::Database* GuardedPlannerTest::db_ = nullptr;
stats::DatabaseStats* GuardedPlannerTest::stats_ = nullptr;
optimizer::Planner* GuardedPlannerTest::baseline_ = nullptr;
QpSeeker* GuardedPlannerTest::model_ = nullptr;

TEST_F(GuardedPlannerTest, DisarmedIsByteIdenticalToHybridPlanner) {
  GuardedOptions gopts = Opts();
  GuardedPlanner guarded(model_, baseline_, gopts);
  HybridPlanner hybrid(model_, baseline_, gopts.hybrid);

  for (const auto& q : {Complex(), Simple()}) {
    auto g = guarded.Plan(q);
    auto h = hybrid.Plan(q);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    EXPECT_EQ(g->used_neural, h->used_neural);
    EXPECT_EQ(g->plans_evaluated, h->plans_evaluated);
    EXPECT_EQ(g->plan->ToString(*db_, q), h->plan->ToString(*db_, q))
        << "guarded and hybrid plans must be byte-identical when disarmed";
  }
  EXPECT_EQ(guarded.stats().requests, 2);
  EXPECT_EQ(guarded.stats().neural_attempts, 1);
  EXPECT_EQ(guarded.stats().neural_success, 1);
  EXPECT_EQ(guarded.stats().NeuralFailures(), 0);
  EXPECT_EQ(guarded.stats().traditional_success, 1);
  EXPECT_FALSE(guarded.circuit_open());
}

TEST_F(GuardedPlannerTest, MctsFaultDegradesToGreedy) {
  GuardedPlanner planner(model_, baseline_, Opts());
  ArmSticky("mcts.rollout", StatusCode::kInternal, "rollout blew up");

  const query::Query q = Complex();
  auto result = planner.Plan(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stage, PlanStage::kGreedy);
  EXPECT_TRUE(result->used_neural);
  EXPECT_NE(result->fallback_reason.find("rollout blew up"), std::string::npos);
  EXPECT_TRUE(query::ValidatePlan(q, *result->plan).ok());

  EXPECT_EQ(planner.stats().neural_error, 1);
  EXPECT_EQ(planner.stats().greedy_success, 1);
  EXPECT_EQ(planner.stats().traditional_attempts, 0);
  EXPECT_GE(fault::FaultInjector::Global().Triggers("mcts.rollout"), 1);
}

TEST_F(GuardedPlannerTest, NanScoreDegradesPastGreedyToTraditional) {
  GuardedPlanner planner(model_, baseline_, Opts());
  // Corrupt every model prediction: MCTS and greedy both score NaN.
  fault::FaultSpec nan_spec;
  nan_spec.inject_nan = true;
  nan_spec.trigger_on_hit = 1;
  nan_spec.sticky = true;
  fault::FaultInjector::Global().Arm("vae.forward", nan_spec);

  const query::Query q = Complex();
  auto result = planner.Plan(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stage, PlanStage::kTraditional);
  EXPECT_FALSE(result->used_neural);
  EXPECT_TRUE(query::ValidatePlan(q, *result->plan).ok());

  EXPECT_EQ(planner.stats().neural_nan, 1);
  EXPECT_EQ(planner.stats().greedy_failures, 1);
  EXPECT_EQ(planner.stats().traditional_success, 1);
}

TEST_F(GuardedPlannerTest, BlownDeadlineDegradesToGreedy) {
  GuardedOptions gopts = Opts();
  gopts.neural_deadline_ms = 5.0;
  gopts.deadline_slack = 1.0;
  GuardedPlanner planner(model_, baseline_, gopts);

  // Latency-only fault: the first rollout stalls far past the deadline.
  fault::FaultSpec stall;
  stall.code = StatusCode::kOk;
  stall.latency_ms = 40.0;
  stall.trigger_on_hit = 1;
  fault::FaultInjector::Global().Arm("mcts.rollout", stall);

  auto result = planner.Plan(Complex());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stage, PlanStage::kGreedy);
  EXPECT_EQ(planner.stats().neural_deadline, 1);
  EXPECT_EQ(planner.stats().greedy_success, 1);
}

TEST_F(GuardedPlannerTest, InvalidPlanVerdictDegradesToGreedy) {
  GuardedPlanner planner(model_, baseline_, Opts());
  // Fire validation exactly once: the neural plan is rejected, the greedy
  // plan re-validates cleanly.
  fault::FaultSpec reject;
  reject.code = StatusCode::kInvalidArgument;
  reject.message = "synthetic validation failure";
  reject.trigger_on_hit = 1;
  fault::FaultInjector::Global().Arm("plan.validate", reject);

  auto result = planner.Plan(Complex());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stage, PlanStage::kGreedy);
  EXPECT_EQ(planner.stats().neural_invalid_plan, 1);
  EXPECT_EQ(planner.stats().greedy_success, 1);
}

TEST_F(GuardedPlannerTest, AllRungsFailingSurfacesTheLastError) {
  GuardedPlanner planner(model_, baseline_, Opts());
  ArmSticky("mcts.rollout", StatusCode::kInternal);
  ArmSticky("greedy.plan", StatusCode::kInternal);
  ArmSticky("planner.dp", StatusCode::kAborted, "dp down");

  auto result = planner.Plan(Complex());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsAborted());
  EXPECT_EQ(planner.stats().neural_error, 1);
  EXPECT_EQ(planner.stats().greedy_failures, 1);
  EXPECT_EQ(planner.stats().traditional_failures, 1);
}

TEST_F(GuardedPlannerTest, SimpleQueriesBypassTheNeuralPath) {
  GuardedPlanner planner(model_, baseline_, Opts());
  ArmSticky("mcts.rollout", StatusCode::kInternal);  // must never be reached

  auto result = planner.Plan(Simple());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stage, PlanStage::kTraditional);
  EXPECT_EQ(planner.stats().neural_attempts, 0);
  EXPECT_EQ(fault::FaultInjector::Global().Hits("mcts.rollout"), 0);
}

TEST_F(GuardedPlannerTest, CircuitOpensShedsTrafficAndClosesAfterCooldown) {
  ManualClock manual_clock;
  GuardedOptions gopts = Opts();
  gopts.breaker_window = 8;
  gopts.breaker_threshold = 3;
  gopts.breaker_cooldown_ms = 100.0;
  gopts.clock = &manual_clock;
  GuardedPlanner planner(model_, baseline_, gopts);

  ArmSticky("mcts.rollout", StatusCode::kInternal);
  const query::Query q = Complex();

  // Three MCTS failures (each saved by greedy) trip the breaker.
  for (int i = 0; i < 3; ++i) {
    auto r = planner.Plan(q);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->stage, PlanStage::kGreedy);
    EXPECT_EQ(planner.circuit_open(), i == 2);
  }
  EXPECT_EQ(planner.stats().circuit_opens, 1);
  EXPECT_EQ(planner.stats().neural_attempts, 3);

  // While open, complex queries short-circuit to the DP planner: no MCTS
  // attempt, no greedy attempt.
  auto shed = planner.Plan(q);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->stage, PlanStage::kTraditional);
  EXPECT_EQ(shed->fallback_reason, "circuit open");
  EXPECT_EQ(planner.stats().circuit_short_circuits, 1);
  EXPECT_EQ(planner.stats().neural_attempts, 3);
  EXPECT_EQ(planner.stats().greedy_attempts, 3);

  // Cool-down not yet elapsed: still shedding.
  manual_clock.SetMillis(99.0);
  ASSERT_TRUE(planner.Plan(q).ok());
  EXPECT_EQ(planner.stats().circuit_short_circuits, 2);
  EXPECT_TRUE(planner.circuit_open());

  // After the cool-down the circuit closes and, with the fault disarmed,
  // neural planning serves again.
  manual_clock.SetMillis(101.0);
  fault::FaultInjector::Global().DisarmAll();
  auto healed = planner.Plan(q);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->stage, PlanStage::kNeural);
  EXPECT_FALSE(planner.circuit_open());
  EXPECT_EQ(planner.stats().circuit_closes, 1);
  EXPECT_EQ(planner.stats().neural_success, 1);
}

TEST_F(GuardedPlannerTest, BreakerWindowSlidesOldFailuresOut) {
  ManualClock manual_clock;
  GuardedOptions gopts = Opts();
  gopts.breaker_window = 4;
  gopts.breaker_threshold = 3;
  gopts.clock = &manual_clock;
  GuardedPlanner planner(model_, baseline_, gopts);
  const query::Query q = Complex();

  // Failure pattern F S S S S F F: the two late failures land in a window
  // of successes, so the circuit must stay closed.
  fault::FaultInjector& fi = fault::FaultInjector::Global();
  fault::FaultSpec fail_once;
  fail_once.trigger_on_hit = 1;
  fi.Arm("mcts.rollout", fail_once);
  ASSERT_TRUE(planner.Plan(q).ok());
  fi.DisarmAll();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(planner.Plan(q).ok());
  fi.Arm("mcts.rollout", fail_once);
  ASSERT_TRUE(planner.Plan(q).ok());
  fi.Arm("mcts.rollout", fail_once);
  ASSERT_TRUE(planner.Plan(q).ok());
  EXPECT_FALSE(planner.circuit_open());
  EXPECT_EQ(planner.stats().circuit_opens, 0);
  EXPECT_EQ(planner.stats().NeuralFailures(), 3);
}

TEST_F(GuardedPlannerTest, GuardStatsRenderAllCounters) {
  GuardStats stats;
  stats.requests = 7;
  stats.neural_attempts = 5;
  stats.circuit_opens = 1;
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("requests=7"), std::string::npos);
  EXPECT_NE(s.find("opens=1"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace qps
