// Copyright 2026 The QPSeeker Authors
//
// Stress and contract tests for the concurrent planning service: N
// simultaneous submits all complete, concurrent plans are bit-identical to
// serial planning for fixed seeds (the cross-query batching determinism
// contract), blown deadlines return best-so-far plans, a full admission
// queue sheds (or degrades to the inline baseline), and the rendezvous
// actually fuses evaluations from different in-flight queries.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/planner_backends.h"
#include "core/qpseeker.h"
#include "query/parser.h"
#include "serve/plan_service.h"
#include "storage/schemas.h"
#include "util/fault.h"

namespace qps {
namespace serve {
namespace {

class PlanServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(1);
    db_ = storage::BuildDatabase(storage::ToySpec(), 300, &rng).value().release();
    stats_ = stats::DatabaseStats::Analyze(*db_).release();
    baseline_ = new optimizer::Planner(*db_, *stats_);

    std::vector<query::Query> queries;
    const char* sqls[] = {
        "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 < 5;",
        "SELECT COUNT(*) FROM b, c WHERE c.c1 = b.id;",
        "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;",
        "SELECT COUNT(*) FROM a WHERE a.a2 >= 2;",
    };
    for (const char* sql : sqls) {
      queries.push_back(query::ParseSql(sql, *db_).value());
    }
    sampling::DatasetOptions dopts;
    dopts.source = sampling::PlanSource::kSampled;
    dopts.sampler.max_plans_per_query = 4;
    Rng drng(2);
    auto ds = sampling::BuildQepDataset(*db_, *stats_, queries, dopts, &drng).value();
    model_ = new core::QpSeeker(*db_, *stats_,
                                core::QpSeekerConfig::ForScale(Scale::kSmoke), 3);
    core::TrainOptions topts;
    topts.epochs = 6;
    model_->Train(ds, topts);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete baseline_;
    delete stats_;
    delete db_;
  }

  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }

  static query::Query ThreeWay() {
    return query::ParseSql(
               "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;",
               *db_)
        .value();
  }
  static query::Query TwoWay() {
    return query::ParseSql(
               "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 < 7;", *db_)
        .value();
  }

  /// Rollout-capped MCTS: planning is decided by (seed, eval_batch), never
  /// by wall time, so serial and concurrent runs are comparable bit for bit.
  static core::GuardedOptions Gopts() {
    core::GuardedOptions gopts;
    gopts.hybrid.neural_min_relations = 3;
    gopts.hybrid.mcts.time_budget_ms = 1e9;
    gopts.hybrid.mcts.max_rollouts = 24;
    gopts.hybrid.mcts.eval_batch = 4;
    gopts.hybrid.mcts.seed = 5;
    return gopts;
  }

  /// Deps over the suite fixtures; the model is a non-owning alias (the
  /// suite owns it), exactly how embedding callers adapt raw pointers.
  static PlanServiceDeps Deps(const std::string& backend) {
    PlanServiceDeps deps;
    deps.planner_name = backend;
    deps.model = std::shared_ptr<const core::QpSeeker>(
        std::shared_ptr<const core::QpSeeker>(), model_);
    deps.baseline = baseline_;
    deps.guard_options = Gopts();
    return deps;
  }

  static std::unique_ptr<PlanService> MakeService(const std::string& backend,
                                                  PlanServiceOptions opts) {
    auto service = PlanService::Create(Deps(backend), opts);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return std::move(service).value();
  }

  /// PlanRequest shorthand for the common (query, seed) submissions.
  static PlanRequest Req(query::Query q, uint64_t seed = 0) {
    PlanRequest request;
    request.query = std::move(q);
    request.seed = seed;
    return request;
  }

  static storage::Database* db_;
  static stats::DatabaseStats* stats_;
  static optimizer::Planner* baseline_;
  static core::QpSeeker* model_;
};

storage::Database* PlanServiceTest::db_ = nullptr;
stats::DatabaseStats* PlanServiceTest::stats_ = nullptr;
optimizer::Planner* PlanServiceTest::baseline_ = nullptr;
core::QpSeeker* PlanServiceTest::model_ = nullptr;

TEST_F(PlanServiceTest, ConcurrentSubmitsAllCompleteWithValidPlans) {
  PlanServiceOptions opts;
  opts.workers = 4;
  auto service = MakeService("neural", opts);

  constexpr int kRequests = 16;
  std::vector<query::Query> queries;
  std::vector<std::future<StatusOr<core::PlanResult>>> futures;
  for (int i = 0; i < kRequests; ++i) {
    queries.push_back(i % 2 == 0 ? ThreeWay() : TwoWay());
    futures.push_back(service->Submit(
        Req(queries[static_cast<size_t>(i)], 100 + static_cast<uint64_t>(i))));
  }
  for (int i = 0; i < kRequests; ++i) {
    auto result = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(result.ok()) << "request " << i << ": "
                             << result.status().ToString();
    ASSERT_NE(result->plan, nullptr);
    EXPECT_TRUE(
        query::ValidatePlan(queries[static_cast<size_t>(i)], *result->plan).ok())
        << "request " << i;
    EXPECT_TRUE(result->used_neural);
    EXPECT_GT(result->plans_evaluated, 0);
  }

  const auto stats = service->stats();
  EXPECT_EQ(stats.submitted, kRequests);
  EXPECT_EQ(stats.completed, kRequests);
  EXPECT_EQ(stats.errors, 0);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(service->inflight(), 0);
  EXPECT_EQ(service->queue_depth(), 0u);
}

TEST_F(PlanServiceTest, ConcurrentPlansAreBitIdenticalToSerialPlanning) {
  // Serial reference: one planner instance, requests planned one at a time
  // with the model called directly (no rendezvous, no batching).
  constexpr int kRequests = 12;
  std::vector<query::Query> queries;
  std::vector<std::string> serial_plans;
  std::vector<double> serial_runtimes;
  std::vector<int> serial_evals;
  auto reference =
      core::MakePlanner("neural", model_, baseline_, Gopts()).value();
  for (int i = 0; i < kRequests; ++i) {
    queries.push_back(i % 2 == 0 ? ThreeWay() : TwoWay());
    core::PlanRequestOptions ropts;
    ropts.seed = 500 + static_cast<uint64_t>(i);
    auto result = reference->Plan(queries[static_cast<size_t>(i)], ropts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    serial_plans.push_back(
        result->plan->ToString(*db_, queries[static_cast<size_t>(i)]));
    serial_runtimes.push_back(result->node_stats.runtime_ms);
    serial_evals.push_back(result->plans_evaluated);
  }

  // Concurrent run: same (query, seed) pairs submitted at once on 4
  // workers; their model evaluations fuse in the rendezvous with whatever
  // else is in flight. The plans must not change in any bit.
  PlanServiceOptions opts;
  opts.workers = 4;
  auto service = MakeService("neural", opts);
  std::vector<std::future<StatusOr<core::PlanResult>>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(service->Submit(
        Req(queries[static_cast<size_t>(i)], 500 + static_cast<uint64_t>(i))));
  }
  for (int i = 0; i < kRequests; ++i) {
    auto result = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->plan->ToString(*db_, queries[static_cast<size_t>(i)]),
              serial_plans[static_cast<size_t>(i)])
        << "request " << i
        << ": concurrent plan differs from serial planning";
    EXPECT_EQ(result->node_stats.runtime_ms,
              serial_runtimes[static_cast<size_t>(i)])
        << "request " << i;
    EXPECT_EQ(result->plans_evaluated, serial_evals[static_cast<size_t>(i)])
        << "request " << i;
  }
}

TEST_F(PlanServiceTest, ExpiredDeadlineReturnsBestSoFarPlan) {
  PlanServiceOptions opts;
  opts.workers = 2;
  auto service = MakeService("neural", opts);

  constexpr int kRequests = 6;
  std::vector<query::Query> queries;
  std::vector<std::future<StatusOr<core::PlanResult>>> futures;
  for (int i = 0; i < kRequests; ++i) {
    queries.push_back(ThreeWay());
    PlanRequest request =
        Req(queries[static_cast<size_t>(i)], 40 + static_cast<uint64_t>(i));
    request.deadline_ms = 1e-3;  // expires before the first batch finishes
    futures.push_back(service->Submit(std::move(request)));
  }
  for (int i = 0; i < kRequests; ++i) {
    auto result = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_NE(result->plan, nullptr);
    EXPECT_TRUE(
        query::ValidatePlan(queries[static_cast<size_t>(i)], *result->plan).ok());
    EXPECT_TRUE(result->deadline_hit) << "request " << i;
    EXPECT_GT(result->plans_evaluated, 0) << "request " << i;
  }
  EXPECT_EQ(service->stats().deadline_hits, kRequests);
}

TEST_F(PlanServiceTest, DefaultDeadlineFromOptionsApplies) {
  PlanServiceOptions opts;
  opts.workers = 1;
  opts.default_deadline_ms = 1e-3;
  auto service = MakeService("neural", opts);
  auto result = service->Submit(Req(ThreeWay())).get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->deadline_hit);
}

TEST_F(PlanServiceTest, FailOnDeadlinePropagatesDeadlineExceeded) {
  PlanServiceOptions opts;
  opts.workers = 1;
  auto service = MakeService("neural", opts);
  PlanRequest request = Req(ThreeWay());
  request.deadline_ms = 1e-3;
  request.fail_on_deadline = true;
  auto result = service->Submit(std::move(request)).get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_EQ(service->stats().errors, 1);
}

TEST_F(PlanServiceTest, FullQueueShedsWithResourceExhausted) {
  PlanServiceOptions opts;
  opts.workers = 1;
  opts.max_queue = 1;  // one request may wait behind the running one
  auto service = MakeService("neural", opts);

  // Stall the first request's opening rollout so it occupies the worker
  // while the rest arrive.
  fault::FaultSpec stall;
  stall.code = StatusCode::kOk;
  stall.latency_ms = 300.0;
  stall.trigger_on_hit = 1;
  fault::FaultInjector::Global().Arm("mcts.rollout", stall);

  auto first = service->Submit(Req(ThreeWay()));
  // Wait until the worker claims it (and parks in the stalled rollout), so
  // the next submit deterministically fills the queue slot.
  while (service->queue_depth() != 0) std::this_thread::yield();
  auto second = service->Submit(Req(ThreeWay()));
  ASSERT_EQ(service->queue_depth(), 1u);

  std::vector<std::future<StatusOr<core::PlanResult>>> rejected;
  for (int i = 0; i < 4; ++i) {
    rejected.push_back(service->Submit(Req(ThreeWay())));
  }

  for (auto& f : rejected) {
    auto result = f.get();
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsResourceExhausted())
        << result.status().ToString();
  }
  ASSERT_TRUE(first.get().ok());
  ASSERT_TRUE(second.get().ok());
  const auto stats = service->stats();
  EXPECT_EQ(stats.shed, 4);
  EXPECT_EQ(stats.shed_degraded, 0);
  EXPECT_EQ(stats.completed, 2);
}

TEST_F(PlanServiceTest, ShedToBaselineDegradesInsteadOfRejecting) {
  PlanServiceOptions opts;
  opts.workers = 1;
  opts.max_queue = 1;
  opts.shed_to_baseline = true;
  auto service = MakeService("neural", opts);

  fault::FaultSpec stall;
  stall.code = StatusCode::kOk;
  stall.latency_ms = 300.0;
  stall.trigger_on_hit = 1;
  fault::FaultInjector::Global().Arm("mcts.rollout", stall);

  const query::Query q = ThreeWay();
  auto first = service->Submit(Req(q));
  while (service->queue_depth() != 0) std::this_thread::yield();
  auto second = service->Submit(Req(q));
  std::vector<std::future<StatusOr<core::PlanResult>>> degraded;
  for (int i = 0; i < 4; ++i) degraded.push_back(service->Submit(Req(q)));

  for (auto& f : degraded) {
    auto result = f.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->stage, core::PlanStage::kTraditional);
    EXPECT_FALSE(result->used_neural);
    EXPECT_NE(result->fallback_reason.find("shed"), std::string::npos);
    EXPECT_TRUE(query::ValidatePlan(q, *result->plan).ok());
  }
  ASSERT_TRUE(first.get().ok());
  ASSERT_TRUE(second.get().ok());
  const auto stats = service->stats();
  EXPECT_EQ(stats.shed, 4);
  EXPECT_EQ(stats.shed_degraded, 4);
}

TEST_F(PlanServiceTest, GuardStatsAggregateAcrossWorkerPlanners) {
  PlanServiceOptions opts;
  opts.workers = 4;
  auto service = MakeService("guarded", opts);

  constexpr int kRequests = 8;
  std::vector<std::future<StatusOr<core::PlanResult>>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(
        service->Submit(Req(ThreeWay(), 10 + static_cast<uint64_t>(i))));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());

  // The per-worker guarded planners each saw a share; the sum is exact.
  const core::GuardStats stats = service->guard_stats();
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_EQ(stats.neural_attempts, kRequests);
  EXPECT_EQ(stats.neural_success, kRequests);
}

TEST_F(PlanServiceTest, CreateRejectsUnknownBackendAndBadShedConfig) {
  auto unknown = PlanService::Create(Deps("quantum"), {});
  ASSERT_FALSE(unknown.ok());
  EXPECT_TRUE(unknown.status().code() == StatusCode::kInvalidArgument);

  PlanServiceOptions opts;
  opts.shed_to_baseline = true;
  PlanServiceDeps no_baseline_deps = Deps("neural");
  no_baseline_deps.baseline = nullptr;
  auto no_baseline = PlanService::Create(std::move(no_baseline_deps), opts);
  ASSERT_FALSE(no_baseline.ok());
  EXPECT_TRUE(no_baseline.status().code() == StatusCode::kInvalidArgument);
}

TEST_F(PlanServiceTest, RendezvousFusesConcurrentEvaluations) {
  // Four threads evaluate four different candidate sets; with the expected
  // in-flight count at 4 and a generous flush timeout, all of them must
  // ride one fused flush — and receive exactly what a direct
  // PredictPlansBatch call would have produced.
  BatchRendezvousOptions opts;
  opts.max_batch = 8;
  opts.flush_timeout_ms = 2000.0;
  BatchRendezvous rendezvous(model_, opts);
  rendezvous.SetExpected(4);

  std::vector<query::Query> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back(i % 2 == 0 ? ThreeWay() : TwoWay());
  }
  std::vector<query::PlanPtr> plans;
  std::vector<std::vector<const query::PlanNode*>> candidates(4);
  for (int i = 0; i < 4; ++i) {
    auto plan = baseline_->Plan(queries[static_cast<size_t>(i)]);
    ASSERT_TRUE(plan.ok());
    plans.push_back(std::move(plan).value());
    candidates[static_cast<size_t>(i)].push_back(plans.back().get());
  }

  std::vector<std::vector<query::NodeStats>> fused(4);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      fused[static_cast<size_t>(i)] = rendezvous.Evaluate(
          queries[static_cast<size_t>(i)], candidates[static_cast<size_t>(i)]);
    });
  }
  for (auto& t : threads) t.join();

  const auto stats = rendezvous.stats();
  EXPECT_EQ(stats.flushes, 1);
  EXPECT_EQ(stats.fused_queries, 4);
  EXPECT_EQ(stats.max_fused, 4);
  EXPECT_EQ(stats.fused_plans, 4);

  for (int i = 0; i < 4; ++i) {
    const auto direct = model_->PredictPlansBatch(
        queries[static_cast<size_t>(i)], candidates[static_cast<size_t>(i)]);
    ASSERT_EQ(fused[static_cast<size_t>(i)].size(), direct.size());
    for (size_t p = 0; p < direct.size(); ++p) {
      EXPECT_EQ(fused[static_cast<size_t>(i)][p].runtime_ms, direct[p].runtime_ms);
      EXPECT_EQ(fused[static_cast<size_t>(i)][p].cardinality, direct[p].cardinality);
      EXPECT_EQ(fused[static_cast<size_t>(i)][p].cost, direct[p].cost);
    }
  }
}

TEST_F(PlanServiceTest, ZeroWorkersPlansInlineOnTheCaller) {
  PlanServiceOptions opts;
  opts.workers = 0;
  auto service = MakeService("neural", opts);
  auto result = service->Submit(Req(ThreeWay())).get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->used_neural);
  EXPECT_EQ(service->stats().completed, 1);
}

// stats() must hand back one coherent snapshot while SwapModel retires
// rendezvous: the request counters (stats_mu_) and the batching
// accumulator (model_mu_) are read under both locks at once. Under TSan
// this also shakes out any unlocked access on the swap path itself.
TEST_F(PlanServiceTest, StatsSnapshotStaysCoherentAcrossSwapModel) {
  PlanServiceOptions opts;
  opts.workers = 2;
  opts.max_batch = 4;
  auto service = MakeService("neural", opts);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto stats = service->stats();
        // Deliveries never outrun admissions in a coherent snapshot.
        EXPECT_LE(stats.completed + stats.errors + stats.deadline_hits,
                  stats.submitted);
        EXPECT_GE(stats.batching.fused_queries, 0);
        std::this_thread::yield();
      }
    });
  }

  auto model = std::shared_ptr<const core::QpSeeker>(
      std::shared_ptr<const core::QpSeeker>(), model_);
  constexpr int kRounds = 6;
  constexpr int kPerRound = 4;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::future<StatusOr<core::PlanResult>>> futures;
    for (int i = 0; i < kPerRound; ++i) {
      futures.push_back(service->Submit(
          Req(ThreeWay(), 70 + static_cast<uint64_t>(round * kPerRound + i))));
    }
    ASSERT_TRUE(service->SwapModel(model).ok());
    for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  const auto stats = service->stats();
  EXPECT_EQ(stats.submitted, kRounds * kPerRound);
  EXPECT_EQ(stats.completed, kRounds * kPerRound);
  // Every rendezvous flush survived retirement into the merged view.
  EXPECT_GE(stats.batching.fused_queries, 0);
}

}  // namespace
}  // namespace serve
}  // namespace qps
