// Copyright 2026 The QPSeeker Authors
//
// Self-healing serving tests: the HealthMonitor breaker state machine
// under a ManualClock (trip, quarantine, half-open probing, recovery,
// re-quarantine), deterministic deadline-budgeted retries (a fixed seed
// yields a byte-identical plan even when the first attempt was faulted),
// quarantine fast-fail vs inline degrade, and cooperative cancellation
// through the serving stack.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/planner_backends.h"
#include "core/qpseeker.h"
#include "query/parser.h"
#include "serve/health.h"
#include "serve/retry.h"
#include "serve/sharded_service.h"
#include "storage/schemas.h"
#include "util/cancel.h"
#include "util/clock.h"
#include "util/fault.h"

namespace qps {
namespace serve {
namespace {

// ---------------------------------------------------------------------------
// HealthMonitor state machine (ManualClock, no serving stack).

HealthOptions SmallWindow(const Clock* clock) {
  HealthOptions opts;
  opts.window_ms = 1000.0;
  opts.min_samples = 4;
  opts.open_error_rate = 0.5;
  opts.open_ms = 500.0;
  opts.probe_concurrency = 1;
  opts.probe_recoveries = 2;
  opts.clock = clock;
  return opts;
}

TEST(HealthMonitorTest, TripsOnErrorRateAfterMinSamples) {
  ManualClock clock;
  HealthMonitor monitor(SmallWindow(&clock));
  const Status boom = Status::Internal("boom");

  // Three failures: below min_samples, still closed.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(monitor.Admit("t"), AdmitDecision::kAdmit);
    monitor.Record("t", boom, /*probe=*/false);
  }
  EXPECT_EQ(monitor.state("t"), HealthState::kClosed);

  // Fourth failure reaches min_samples at 100% error rate: quarantined.
  monitor.Record("t", boom, /*probe=*/false);
  EXPECT_EQ(monitor.state("t"), HealthState::kOpen);
  EXPECT_EQ(monitor.Admit("t"), AdmitDecision::kReject);
  EXPECT_EQ(monitor.stats("t").quarantines, 1);
}

TEST(HealthMonitorTest, HealthyTrafficKeepsBreakerClosed) {
  ManualClock clock;
  HealthMonitor monitor(SmallWindow(&clock));
  // 49% errors over plenty of samples stays under the 50% trip rate.
  for (int i = 0; i < 100; ++i) {
    monitor.Record("t", i % 2 == 0 ? Status::OK() : Status::OK(),
                   /*probe=*/false);
    monitor.Record("t", Status::OK(), /*probe=*/false);
  }
  for (int i = 0; i < 40; ++i) {
    monitor.Record("t", Status::Internal("x"), /*probe=*/false);
  }
  EXPECT_EQ(monitor.state("t"), HealthState::kClosed);
}

TEST(HealthMonitorTest, OldSamplesFallOutOfTheWindow) {
  ManualClock clock;
  HealthMonitor monitor(SmallWindow(&clock));
  const Status boom = Status::Internal("boom");
  for (int i = 0; i < 3; ++i) monitor.Record("t", boom, /*probe=*/false);
  // The window slides past those failures; fresh mixed traffic never sees
  // the error rate again.
  clock.AdvanceMillis(2000.0);
  monitor.Record("t", boom, /*probe=*/false);
  EXPECT_EQ(monitor.state("t"), HealthState::kClosed);
  EXPECT_EQ(monitor.stats("t").window_attempts, 1);
  EXPECT_EQ(monitor.stats("t").window_failures, 1);
}

TEST(HealthMonitorTest, HalfOpenProbesRecoverTheTenant) {
  ManualClock clock;
  HealthMonitor monitor(SmallWindow(&clock));
  const Status boom = Status::Internal("boom");
  for (int i = 0; i < 4; ++i) monitor.Record("t", boom, /*probe=*/false);
  ASSERT_EQ(monitor.state("t"), HealthState::kOpen);

  // Still cooling down: rejected.
  clock.AdvanceMillis(499.0);
  EXPECT_EQ(monitor.Admit("t"), AdmitDecision::kReject);

  // Cool-down over: half-open, one probe slot (probe_concurrency=1).
  clock.AdvanceMillis(2.0);
  EXPECT_EQ(monitor.Admit("t"), AdmitDecision::kProbe);
  EXPECT_EQ(monitor.state("t"), HealthState::kHalfOpen);
  EXPECT_EQ(monitor.Admit("t"), AdmitDecision::kReject);  // slot taken

  // Two successful probes (probe_recoveries=2) close the breaker.
  monitor.Record("t", Status::OK(), /*probe=*/true);
  EXPECT_EQ(monitor.state("t"), HealthState::kHalfOpen);
  EXPECT_EQ(monitor.Admit("t"), AdmitDecision::kProbe);
  monitor.Record("t", Status::OK(), /*probe=*/true);
  EXPECT_EQ(monitor.state("t"), HealthState::kClosed);
  EXPECT_EQ(monitor.Admit("t"), AdmitDecision::kAdmit);
  const auto stats = monitor.stats("t");
  EXPECT_EQ(stats.recoveries, 1);
  EXPECT_EQ(stats.probes, 2);
}

TEST(HealthMonitorTest, ProbeFailureRequarantines) {
  ManualClock clock;
  HealthMonitor monitor(SmallWindow(&clock));
  const Status boom = Status::Internal("boom");
  for (int i = 0; i < 4; ++i) monitor.Record("t", boom, /*probe=*/false);
  clock.AdvanceMillis(600.0);
  ASSERT_EQ(monitor.Admit("t"), AdmitDecision::kProbe);

  // The tenant is still sick: back to open, with a fresh cool-down.
  monitor.Record("t", boom, /*probe=*/true);
  EXPECT_EQ(monitor.state("t"), HealthState::kOpen);
  EXPECT_EQ(monitor.stats("t").quarantines, 2);
  EXPECT_EQ(monitor.Admit("t"), AdmitDecision::kReject);
  clock.AdvanceMillis(600.0);
  EXPECT_EQ(monitor.Admit("t"), AdmitDecision::kProbe);
}

TEST(HealthMonitorTest, AbandonedProbeReleasesTheSlot) {
  ManualClock clock;
  HealthMonitor monitor(SmallWindow(&clock));
  const Status boom = Status::Internal("boom");
  for (int i = 0; i < 4; ++i) monitor.Record("t", boom, /*probe=*/false);
  clock.AdvanceMillis(600.0);
  ASSERT_EQ(monitor.Admit("t"), AdmitDecision::kProbe);
  ASSERT_EQ(monitor.Admit("t"), AdmitDecision::kReject);

  // A probe that never planned (shed / cancelled) says nothing about
  // health: the slot comes back, no sample is recorded.
  const auto before = monitor.stats("t");
  monitor.AbandonProbe("t");
  EXPECT_EQ(monitor.stats("t").window_attempts, before.window_attempts);
  EXPECT_EQ(monitor.Admit("t"), AdmitDecision::kProbe);
  EXPECT_EQ(monitor.state("t"), HealthState::kHalfOpen);
}

TEST(HealthMonitorTest, TimeoutClassificationIsConfigurable) {
  ManualClock clock;
  HealthOptions lenient = SmallWindow(&clock);
  lenient.timeouts_are_failures = false;
  HealthMonitor monitor(lenient);
  for (int i = 0; i < 8; ++i) {
    monitor.Record("t", Status::DeadlineExceeded("late"), /*probe=*/false);
  }
  EXPECT_EQ(monitor.state("t"), HealthState::kClosed);

  HealthMonitor strict(SmallWindow(&clock));
  for (int i = 0; i < 4; ++i) {
    strict.Record("t", Status::DeadlineExceeded("late"), /*probe=*/false);
  }
  EXPECT_EQ(strict.state("t"), HealthState::kOpen);
}

TEST(HealthMonitorTest, ObservedKeysNeverTransition) {
  ManualClock clock;
  HealthMonitor monitor(SmallWindow(&clock));
  for (int i = 0; i < 32; ++i) {
    monitor.RecordObserved("shard_0", Status::Internal("boom"));
  }
  EXPECT_EQ(monitor.state("shard_0"), HealthState::kClosed);
  EXPECT_EQ(monitor.stats("shard_0").window_failures, 32);
  EXPECT_EQ(monitor.stats("shard_0").quarantines, 0);
}

// ---------------------------------------------------------------------------
// RetryPolicy.

TEST(RetryPolicyTest, BackoffIsDeterministicInSeedAndAttempt) {
  RetryPolicy policy;
  policy.max_retries = 3;
  const double a1 = policy.BackoffMs(1, 42);
  EXPECT_DOUBLE_EQ(a1, policy.BackoffMs(1, 42));
  EXPECT_DOUBLE_EQ(policy.BackoffMs(2, 42), policy.BackoffMs(2, 42));
  EXPECT_NE(a1, policy.BackoffMs(1, 43));  // different seed, different jitter

  // Jitter stays inside +-jitter_frac of the exponential base, which is
  // capped at max_backoff_ms.
  for (int attempt = 1; attempt <= 8; ++attempt) {
    double base = policy.backoff_base_ms;
    for (int i = 1; i < attempt; ++i) base *= policy.backoff_multiplier;
    base = std::min(base, policy.max_backoff_ms);
    const double b = policy.BackoffMs(attempt, 7);
    EXPECT_GE(b, base * (1.0 - policy.jitter_frac));
    EXPECT_LE(b, base * (1.0 + policy.jitter_frac));
  }
}

TEST(RetryPolicyTest, ClassifiesRetryableFailuresAndCapsAttempts) {
  RetryPolicy off;
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.ShouldRetry(Status::Unavailable("x"), 1));

  RetryPolicy policy;
  policy.max_retries = 2;
  EXPECT_TRUE(policy.ShouldRetry(Status::Unavailable("x"), 1));
  EXPECT_TRUE(policy.ShouldRetry(Status::ResourceExhausted("x"), 2));
  EXPECT_FALSE(policy.ShouldRetry(Status::ResourceExhausted("x"), 3));
  EXPECT_FALSE(policy.ShouldRetry(Status::InvalidArgument("x"), 1));
  EXPECT_FALSE(policy.ShouldRetry(Status::Aborted("cancelled"), 1));
  EXPECT_FALSE(policy.ShouldRetry(Status::OK(), 1));
}

TEST(RetryPolicyTest, BudgetGateRespectsTheDeadline) {
  EXPECT_TRUE(RetryPolicy::FitsBudget(10.0, 5.0, 0.0));  // no deadline
  EXPECT_TRUE(RetryPolicy::FitsBudget(10.0, 5.0, 50.0));
  EXPECT_FALSE(RetryPolicy::FitsBudget(10.0, 45.0, 50.0));
  EXPECT_FALSE(RetryPolicy::FitsBudget(60.0, 0.0, 50.0));
}

// ---------------------------------------------------------------------------
// Serving stack: retries, quarantine, cancellation.

class ResilienceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(1);
    db_ = storage::BuildDatabase(storage::ToySpec(), 300, &rng).value().release();
    stats_ = stats::DatabaseStats::Analyze(*db_).release();
    baseline_ = new optimizer::Planner(*db_, *stats_);

    std::vector<query::Query> queries;
    const char* sqls[] = {
        "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 < 5;",
        "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;",
    };
    for (const char* sql : sqls) {
      queries.push_back(query::ParseSql(sql, *db_).value());
    }
    sampling::DatasetOptions dopts;
    dopts.source = sampling::PlanSource::kSampled;
    dopts.sampler.max_plans_per_query = 4;
    Rng drng(2);
    auto ds = sampling::BuildQepDataset(*db_, *stats_, queries, dopts, &drng).value();
    model_ = new core::QpSeeker(*db_, *stats_,
                                core::QpSeekerConfig::ForScale(Scale::kSmoke), 3);
    core::TrainOptions topts;
    topts.epochs = 4;
    model_->Train(ds, topts);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete baseline_;
    delete stats_;
    delete db_;
  }

  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }

  static query::Query ThreeWay() {
    return query::ParseSql(
               "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;",
               *db_)
        .value();
  }

  /// Rollout-capped MCTS, never wall-clock bound: retries replay the same
  /// search for the same seed.
  static core::GuardedOptions Gopts() {
    core::GuardedOptions gopts;
    gopts.hybrid.neural_min_relations = 3;
    gopts.hybrid.mcts.time_budget_ms = 1e9;
    gopts.hybrid.mcts.max_rollouts = 24;
    gopts.hybrid.mcts.eval_batch = 4;
    gopts.hybrid.mcts.seed = 5;
    return gopts;
  }

  static PlanServiceDeps Deps(const std::string& backend) {
    PlanServiceDeps deps;
    deps.planner_name = backend;
    deps.model = std::shared_ptr<const core::QpSeeker>(
        std::shared_ptr<const core::QpSeeker>(), model_);
    deps.baseline = baseline_;
    deps.guard_options = Gopts();
    return deps;
  }

  static PlanRequest Req(query::Query q, uint64_t seed = 0) {
    PlanRequest request;
    request.query = std::move(q);
    request.seed = seed;
    return request;
  }

  static TenantSpec Spec(const std::string& id,
                         const std::string& backend = "baseline") {
    TenantSpec spec;
    spec.tenant_id = id;
    spec.deps = Deps(backend);
    return spec;
  }

  static storage::Database* db_;
  static stats::DatabaseStats* stats_;
  static optimizer::Planner* baseline_;
  static core::QpSeeker* model_;
};

storage::Database* ResilienceTest::db_ = nullptr;
stats::DatabaseStats* ResilienceTest::stats_ = nullptr;
optimizer::Planner* ResilienceTest::baseline_ = nullptr;
core::QpSeeker* ResilienceTest::model_ = nullptr;

TEST_F(ResilienceTest, RetriedPlanIsByteIdenticalToUnfaultedPlan) {
  const query::Query query = ThreeWay();
  constexpr uint64_t kSeed = 777;

  // Reference: no faults, one shot.
  std::string reference;
  {
    PlanServiceOptions opts;
    opts.workers = 1;
    auto service = PlanService::Create(Deps("neural"), opts).value();
    auto result = service->Submit(Req(query, kSeed)).get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    reference = result->plan->ToString(*db_, query);
  }

  // Chaos run: the first planning attempt dies on an injected transient;
  // the worker-side retry replans with the same seed and must reproduce
  // the reference plan bit for bit.
  fault::FaultSpec spec;
  spec.code = StatusCode::kIOError;
  spec.message = "injected transient";
  spec.trigger_on_hit = 1;
  fault::FaultInjector::Global().Arm("mcts.rollout", spec);

  PlanServiceOptions opts;
  opts.workers = 1;
  opts.retry.max_retries = 2;
  opts.retry.backoff_base_ms = 0.1;  // keep the test fast
  auto service = PlanService::Create(Deps("neural"), opts).value();
  auto result = service->Submit(Req(query, kSeed)).get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->plan->ToString(*db_, query), reference);
  EXPECT_GE(fault::FaultInjector::Global().Triggers("mcts.rollout"), 1);

  const auto stats = service->stats();
  EXPECT_EQ(stats.retry_attempts, 1);
  EXPECT_EQ(stats.retry_successes, 1);
  EXPECT_EQ(stats.retry_exhausted, 0);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.errors, 0);
}

TEST_F(ResilienceTest, RetriesExhaustOnStickyFaults) {
  fault::FaultSpec spec;
  spec.code = StatusCode::kIOError;
  spec.trigger_on_hit = 1;
  spec.sticky = true;
  fault::FaultInjector::Global().Arm("mcts.rollout", spec);

  PlanServiceOptions opts;
  opts.workers = 1;
  opts.retry.max_retries = 1;
  opts.retry.backoff_base_ms = 0.1;
  auto service = PlanService::Create(Deps("neural"), opts).value();
  auto result = service->Submit(Req(ThreeWay(), 9)).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_EQ(result.status().reason(), "fault_injected");

  const auto stats = service->stats();
  EXPECT_EQ(stats.retry_attempts, 1);
  EXPECT_EQ(stats.retry_exhausted, 1);
  EXPECT_EQ(stats.retry_successes, 0);
  EXPECT_EQ(stats.errors, 1);
}

TEST_F(ResilienceTest, TerminalFailuresAreNotRetried) {
  fault::FaultSpec spec;
  spec.code = StatusCode::kInvalidArgument;  // terminal
  spec.trigger_on_hit = 1;
  spec.sticky = true;
  fault::FaultInjector::Global().Arm("serve.submit", spec);

  PlanServiceOptions opts;
  opts.workers = 1;
  opts.retry.max_retries = 3;
  auto service = PlanService::Create(Deps("baseline"), opts).value();
  auto result = service->Submit(Req(ThreeWay(), 1)).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service->stats().retry_attempts, 0);
}

TEST_F(ResilienceTest, CancelledRequestResolvesPromptlyWithAborted) {
  PlanServiceOptions opts;
  opts.workers = 1;
  auto service = PlanService::Create(Deps("neural"), opts).value();

  // Pre-cancelled: the planner observes the token at its first boundary
  // and the future resolves kAborted without planning.
  PlanRequest request = Req(ThreeWay(), 3);
  request.cancel = std::make_shared<util::CancelToken>();
  request.cancel->Cancel();
  auto result = service->Submit(std::move(request)).get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsAborted());
  EXPECT_EQ(result.status().reason(), "cancelled");
}

TEST_F(ResilienceTest, MidFlightCancellationNeverHangs) {
  PlanServiceOptions opts;
  opts.workers = 2;
  auto service = PlanService::Create(Deps("neural"), opts).value();

  // Race cancellation against planning: every future must resolve, each
  // to a plan (cancel lost the race) or kAborted (cancel won) — never a
  // hang, never another error.
  std::vector<std::shared_ptr<util::CancelToken>> tokens;
  std::vector<std::future<StatusOr<core::PlanResult>>> futures;
  for (int i = 0; i < 8; ++i) {
    PlanRequest request = Req(ThreeWay(), 100 + static_cast<uint64_t>(i));
    request.cancel = std::make_shared<util::CancelToken>();
    tokens.push_back(request.cancel);
    futures.push_back(service->Submit(std::move(request)));
    if (i % 2 == 1) tokens.back()->Cancel();
  }
  for (auto& token : tokens) token->Cancel();
  for (auto& future : futures) {
    auto result = future.get();
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsAborted()) << result.status().ToString();
      EXPECT_EQ(result.status().reason(), "cancelled");
    }
  }
}

TEST_F(ResilienceTest, QuarantineTripsAndRecoversThroughProbes) {
  ManualClock health_clock;
  ShardedPlanServiceOptions opts;
  opts.shards = 1;
  opts.workers_per_shard = 2;
  opts.health = SmallWindow(&health_clock);
  auto service = ShardedPlanService::Create(opts).value();
  ASSERT_TRUE(service->AddTenant(Spec("sick")).ok());

  // Chaos: every submission from this tenant dies at serve.submit.
  fault::FaultSpec spec;
  spec.code = StatusCode::kInternal;
  spec.trigger_on_hit = 1;
  spec.sticky = true;
  spec.only_context = "sick";
  fault::FaultInjector::Global().Arm("serve.submit", spec);

  PlanRequest request = Req(ThreeWay(), 1);
  request.tenant_id = "sick";
  for (int i = 0; i < 4; ++i) {
    auto result = service->Submit(request).get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().reason(), "fault_injected");
  }
  ASSERT_EQ(service->TenantHealth("sick")->state, HealthState::kOpen);
  EXPECT_EQ(service->TenantHealth("sick")->quarantines, 1);

  // While quarantined (no degrade quota): fast-fail kUnavailable with the
  // machine-readable cause, without consuming the fault point.
  auto rejected = service->Submit(request).get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsUnavailable());
  EXPECT_EQ(rejected.status().reason(), "quarantined");

  // Disarm the chaos and let the cool-down pass: probe traffic flows and
  // recovers the tenant (probe_recoveries = 2).
  fault::FaultInjector::Global().DisarmAll();
  health_clock.AdvanceMillis(600.0);
  for (int i = 0; i < 2; ++i) {
    auto probe = service->Submit(request).get();
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  }
  EXPECT_EQ(service->TenantHealth("sick")->state, HealthState::kClosed);
  EXPECT_EQ(service->TenantHealth("sick")->recoveries, 1);

  // Recovered: normal traffic again.
  auto after = service->Submit(request).get();
  EXPECT_TRUE(after.ok());
}

TEST_F(ResilienceTest, QuarantinedTenantDegradesWhenQuotaAllows) {
  ManualClock health_clock;
  ShardedPlanServiceOptions opts;
  opts.shards = 1;
  opts.workers_per_shard = 2;
  opts.health = SmallWindow(&health_clock);
  auto service = ShardedPlanService::Create(opts).value();
  TenantSpec spec = Spec("degrader");
  spec.quota.shed_to_baseline = true;
  ASSERT_TRUE(service->AddTenant(std::move(spec)).ok());

  fault::FaultSpec fspec;
  fspec.code = StatusCode::kInternal;
  fspec.trigger_on_hit = 1;
  fspec.sticky = true;
  fspec.only_context = "degrader";
  fault::FaultInjector::Global().Arm("serve.submit", fspec);

  PlanRequest request = Req(ThreeWay(), 1);
  request.tenant_id = "degrader";
  for (int i = 0; i < 4; ++i) (void)service->Submit(request).get();
  ASSERT_EQ(service->TenantHealth("degrader")->state, HealthState::kOpen);

  // Quarantined but degradable: served inline by the DP baseline, off the
  // shard pool, with the cause recorded on the plan.
  auto degraded = service->Submit(request).get();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->stage, core::PlanStage::kTraditional);
  EXPECT_NE(degraded->fallback_reason.find("quarantined"), std::string::npos);
}

TEST_F(ResilienceTest, CallerSideRetryAbsorbsTransientSubmitFaults) {
  ShardedPlanServiceOptions opts;
  opts.shards = 1;
  opts.workers_per_shard = 2;
  opts.retry.max_retries = 2;
  opts.retry.backoff_base_ms = 0.1;
  auto service = ShardedPlanService::Create(opts).value();
  ASSERT_TRUE(service->AddTenant(Spec("flaky")).ok());

  // One transient failure at serve.submit; the caller-side loop resubmits.
  fault::FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.trigger_on_hit = 1;
  spec.only_context = "flaky";
  fault::FaultInjector::Global().Arm("serve.submit", spec);

  PlanRequest request = Req(ThreeWay(), 4);
  request.tenant_id = "flaky";
  auto result = service->Submit(request).get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(fault::FaultInjector::Global().Triggers("serve.submit"), 1);
}

TEST_F(ResilienceTest, CancelledOutcomesDoNotPolluteTheBreaker) {
  ShardedPlanServiceOptions opts;
  opts.shards = 1;
  opts.workers_per_shard = 2;
  auto service = ShardedPlanService::Create(opts).value();
  ASSERT_TRUE(service->AddTenant(Spec("calm")).ok());

  for (int i = 0; i < 8; ++i) {
    PlanRequest request = Req(ThreeWay(), 1);
    request.tenant_id = "calm";
    request.cancel = std::make_shared<util::CancelToken>();
    request.cancel->Cancel();
    auto result = service->Submit(std::move(request)).get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().reason(), "cancelled");
  }
  // Cancellation is caller-driven, not model health: no samples, no trip.
  const auto health = service->TenantHealth("calm").value();
  EXPECT_EQ(health.state, HealthState::kClosed);
  EXPECT_EQ(health.window_attempts, 0);
  EXPECT_EQ(health.quarantines, 0);
}

}  // namespace
}  // namespace serve
}  // namespace qps
