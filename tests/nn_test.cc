// Copyright 2026 The QPSeeker Authors
//
// Tests for the autodiff engine and layers, including finite-difference
// gradient checks on every differentiable operation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>

#include "nn/autograd.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/serialize.h"

namespace qps {
namespace nn {
namespace {

// Checks d(loss)/d(leaf) for `build` (a scalar-valued graph of the leaves)
// against central finite differences.
void CheckGradients(std::vector<Var> leaves,
                    const std::function<Var(const std::vector<Var>&)>& build,
                    float tol = 2e-2f, float eps = 1e-3f) {
  Var loss = build(leaves);
  for (auto& l : leaves) l->ZeroGrad();
  Backward(loss);
  for (size_t li = 0; li < leaves.size(); ++li) {
    Var& leaf = leaves[li];
    leaf->EnsureGrad();
    for (int64_t i = 0; i < leaf->value.size(); ++i) {
      const float orig = leaf->value.at(i);
      leaf->value.at(i) = orig + eps;
      const float up = build(leaves)->value(0, 0);
      leaf->value.at(i) = orig - eps;
      const float down = build(leaves)->value(0, 0);
      leaf->value.at(i) = orig;
      const float numeric = (up - down) / (2.0f * eps);
      const float analytic = leaf->grad.at(i);
      const float scale = std::max({1.0f, std::fabs(numeric), std::fabs(analytic)});
      EXPECT_NEAR(analytic, numeric, tol * scale)
          << "leaf " << li << " element " << i;
    }
  }
}

TEST(AutogradTest, AddAndScaleForward) {
  Var a = Constant(Tensor::Row({1.0f, 2.0f}));
  Var b = Constant(Tensor::Row({3.0f, 4.0f}));
  Var c = Scale(Add(a, b), 2.0f);
  EXPECT_FLOAT_EQ(c->value(0, 0), 8.0f);
  EXPECT_FLOAT_EQ(c->value(0, 1), 12.0f);
}

TEST(AutogradTest, MatMulForward) {
  Tensor a(2, 3);
  for (int64_t i = 0; i < 6; ++i) a.at(i) = static_cast<float>(i + 1);
  Tensor b(3, 2);
  for (int64_t i = 0; i < 6; ++i) b.at(i) = static_cast<float>(i);
  Var c = MatMul(Constant(a), Constant(b));
  // [[1,2,3],[4,5,6]] @ [[0,1],[2,3],[4,5]] = [[16,22],[34,49]]
  EXPECT_FLOAT_EQ(c->value(0, 0), 16.0f);
  EXPECT_FLOAT_EQ(c->value(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c->value(1, 0), 34.0f);
  EXPECT_FLOAT_EQ(c->value(1, 1), 49.0f);
}

TEST(AutogradTest, MatMulGradient) {
  Rng rng(1);
  std::vector<Var> leaves = {Parameter(Tensor::Randn(2, 3, &rng)),
                             Parameter(Tensor::Randn(3, 2, &rng))};
  CheckGradients(leaves, [](const std::vector<Var>& l) {
    return SumAll(MatMul(l[0], l[1]));
  });
}

TEST(AutogradTest, ElementwiseGradients) {
  Rng rng(2);
  std::vector<Var> leaves = {Parameter(Tensor::Randn(2, 4, &rng)),
                             Parameter(Tensor::Randn(2, 4, &rng))};
  CheckGradients(leaves, [](const std::vector<Var>& l) {
    Var x = Mul(l[0], l[1]);
    x = Add(x, Scale(l[0], 0.5f));
    x = Sub(x, l[1]);
    return SumAll(Square(x));
  });
}

TEST(AutogradTest, NonlinearityGradients) {
  Rng rng(3);
  std::vector<Var> leaves = {Parameter(Tensor::Randn(1, 6, &rng))};
  CheckGradients(leaves, [](const std::vector<Var>& l) {
    Var x = Sigmoid(l[0]);
    x = Add(x, Tanh(l[0]));
    x = Add(x, LeakyRelu(l[0]));
    return SumAll(x);
  });
}

TEST(AutogradTest, ExpLogGradients) {
  Rng rng(4);
  Tensor init = Tensor::Randn(1, 5, &rng, 0.3f);
  for (int64_t i = 0; i < init.size(); ++i) init.at(i) = std::fabs(init.at(i)) + 0.5f;
  std::vector<Var> leaves = {Parameter(init)};
  CheckGradients(leaves, [](const std::vector<Var>& l) {
    return SumAll(Add(Exp(Scale(l[0], 0.3f)), Log(l[0])));
  });
}

TEST(AutogradTest, SoftmaxRowsSumsToOne) {
  Rng rng(5);
  Var x = Constant(Tensor::Randn(3, 7, &rng));
  Var s = SoftmaxRows(x);
  for (int64_t i = 0; i < 3; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 7; ++j) sum += s->value(i, j);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(AutogradTest, SoftmaxGradient) {
  Rng rng(6);
  std::vector<Var> leaves = {Parameter(Tensor::Randn(2, 5, &rng))};
  Tensor w = Tensor::Randn(2, 5, &rng);
  CheckGradients(leaves, [w](const std::vector<Var>& l) {
    return SumAll(Mul(SoftmaxRows(l[0]), Constant(w)));
  });
}

TEST(AutogradTest, ConcatSliceGradients) {
  Rng rng(7);
  std::vector<Var> leaves = {Parameter(Tensor::Randn(2, 3, &rng)),
                             Parameter(Tensor::Randn(2, 2, &rng))};
  CheckGradients(leaves, [](const std::vector<Var>& l) {
    Var cat = ConcatCols({l[0], l[1]});
    Var left = SliceCols(cat, 0, 2);
    Var right = SliceCols(cat, 3, 5);
    return SumAll(Mul(left, right));
  });
}

TEST(AutogradTest, ConcatRowsSliceRowsGradients) {
  Rng rng(8);
  std::vector<Var> leaves = {Parameter(Tensor::Randn(2, 3, &rng)),
                             Parameter(Tensor::Randn(1, 3, &rng))};
  CheckGradients(leaves, [](const std::vector<Var>& l) {
    Var cat = ConcatRows({l[0], l[1]});
    return SumAll(Square(SliceRows(cat, 1, 3)));
  });
}

TEST(AutogradTest, TransposeGradient) {
  Rng rng(9);
  std::vector<Var> leaves = {Parameter(Tensor::Randn(2, 4, &rng))};
  Tensor w = Tensor::Randn(4, 2, &rng);
  CheckGradients(leaves, [w](const std::vector<Var>& l) {
    return SumAll(Mul(Transpose(l[0]), Constant(w)));
  });
}

TEST(AutogradTest, MaskedMeanRowsGradient) {
  Rng rng(10);
  std::vector<Var> leaves = {Parameter(Tensor::Randn(4, 3, &rng))};
  Tensor mask(4, 1);
  mask(0, 0) = 1.0f;
  mask(2, 0) = 1.0f;
  CheckGradients(leaves, [mask](const std::vector<Var>& l) {
    return SumAll(Square(MaskedMeanRows(l[0], mask)));
  });
}

TEST(AutogradTest, MaskedMeanRowsIgnoresMaskedRows) {
  Tensor x(2, 2);
  x(0, 0) = 1.0f;
  x(0, 1) = 2.0f;
  x(1, 0) = 100.0f;
  x(1, 1) = 200.0f;
  Tensor mask(2, 1);
  mask(0, 0) = 1.0f;
  Var m = MaskedMeanRows(Constant(x), mask);
  EXPECT_FLOAT_EQ(m->value(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m->value(0, 1), 2.0f);
}

TEST(AutogradTest, AllZeroMaskYieldsZeros) {
  Tensor x = Tensor::Ones(3, 2);
  Tensor mask = Tensor::Zeros(3, 1);
  Var m = MaskedMeanRows(Constant(x), mask);
  EXPECT_FLOAT_EQ(m->value(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m->value(0, 1), 0.0f);
}

TEST(AutogradTest, MseLossGradient) {
  Rng rng(11);
  std::vector<Var> leaves = {Parameter(Tensor::Randn(1, 4, &rng))};
  Tensor target = Tensor::Randn(1, 4, &rng);
  CheckGradients(leaves, [target](const std::vector<Var>& l) {
    return MseLoss(l[0], target);
  });
}

TEST(AutogradTest, KlGradientAndValue) {
  Rng rng(12);
  // KL(N(0,1) || N(0,1)) == 0.
  Var mu0 = Parameter(Tensor::Zeros(1, 3));
  Var lv0 = Parameter(Tensor::Zeros(1, 3));
  EXPECT_NEAR(GaussianKl(mu0, lv0)->value(0, 0), 0.0f, 1e-6f);

  std::vector<Var> leaves = {Parameter(Tensor::Randn(1, 3, &rng, 0.5f)),
                             Parameter(Tensor::Randn(1, 3, &rng, 0.5f))};
  CheckGradients(leaves, [](const std::vector<Var>& l) {
    return GaussianKl(l[0], l[1]);
  });
}

TEST(AutogradTest, ReparameterizeGradient) {
  Rng rng(13);
  Tensor eps = Tensor::Randn(1, 3, &rng);
  std::vector<Var> leaves = {Parameter(Tensor::Randn(1, 3, &rng, 0.3f)),
                             Parameter(Tensor::Randn(1, 3, &rng, 0.3f))};
  CheckGradients(leaves, [eps](const std::vector<Var>& l) {
    return SumAll(Square(Reparameterize(l[0], l[1], eps)));
  });
}

TEST(AutogradTest, GradAccumulatesAcrossBackwardCalls) {
  Var x = Parameter(Tensor::Row({2.0f}));
  Var loss1 = SumAll(Square(x));
  Backward(loss1);
  EXPECT_FLOAT_EQ(x->grad(0, 0), 4.0f);
  Var loss2 = SumAll(Square(x));
  Backward(loss2);
  EXPECT_FLOAT_EQ(x->grad(0, 0), 8.0f);
  x->ZeroGrad();
  EXPECT_FLOAT_EQ(x->grad(0, 0), 0.0f);
}

TEST(AutogradTest, DiamondGraphGradient) {
  // y = a*a + a (a used twice) => dy/da = 2a + 1.
  Var a = Parameter(Tensor::Row({3.0f}));
  Var loss = SumAll(Add(Mul(a, a), a));
  Backward(loss);
  EXPECT_FLOAT_EQ(a->grad(0, 0), 7.0f);
}

TEST(LayersTest, LinearShapesAndGradient) {
  Rng rng(20);
  Linear lin(4, 3, &rng);
  EXPECT_EQ(lin.Parameters().size(), 2u);
  Var x = Constant(Tensor::Randn(2, 4, &rng));
  Var y = lin.Forward(x);
  EXPECT_EQ(y->value.rows(), 2);
  EXPECT_EQ(y->value.cols(), 3);
  lin.ZeroGrad();
  Backward(SumAll(Square(y)));
  for (const auto& p : lin.Parameters()) {
    EXPECT_GT(p.var->grad.FrobeniusNorm(), 0.0f) << p.name;
  }
}

TEST(LayersTest, MlpDepthAndWidth) {
  Rng rng(21);
  Mlp mlp(8, 16, 4, /*hidden_layers=*/5, &rng);
  // 5 hidden + 1 output layer, 2 params each.
  EXPECT_EQ(mlp.Parameters().size(), 12u);
  Var y = mlp.Forward(Constant(Tensor::Randn(1, 8, &rng)));
  EXPECT_EQ(y->value.cols(), 4);
}

TEST(LayersTest, MlpLearnsXor) {
  Rng rng(22);
  Mlp mlp(2, 8, 1, 2, &rng, Activation::kTanh);
  Adam adam(mlp.Parameters(), 0.05f);
  const float xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const float ys[4] = {0, 1, 1, 0};
  float loss_val = 1.0f;
  for (int epoch = 0; epoch < 400; ++epoch) {
    loss_val = 0.0f;
    mlp.ZeroGrad();
    for (int i = 0; i < 4; ++i) {
      Var pred = mlp.Forward(Constant(Tensor::Row({xs[i][0], xs[i][1]})));
      Var loss = MseLoss(pred, Tensor::Row({ys[i]}));
      loss_val += loss->value(0, 0);
      Backward(loss);
    }
    adam.Step();
  }
  EXPECT_LT(loss_val / 4.0f, 0.02f);
}

TEST(LayersTest, LstmCellShapesAndGradient) {
  Rng rng(23);
  LstmCell cell(6, 5, &rng);
  auto st = cell.InitialState();
  Var x = Constant(Tensor::Randn(1, 6, &rng));
  auto next = cell.Forward(x, st);
  EXPECT_EQ(next.h->value.cols(), 5);
  EXPECT_EQ(next.c->value.cols(), 5);
  // Two chained steps backprop into the shared weights.
  auto next2 = cell.Forward(x, next);
  cell.ZeroGrad();
  Backward(SumAll(Square(next2.h)));
  for (const auto& p : cell.Parameters()) {
    EXPECT_GT(p.var->grad.FrobeniusNorm(), 0.0f) << p.name;
  }
}

TEST(LayersTest, LstmNumericGradient) {
  Rng rng(24);
  LstmCell cell(3, 2, &rng);
  auto params = cell.Parameters();
  std::vector<Var> leaves;
  for (auto& p : params) leaves.push_back(p.var);
  Tensor xval = Tensor::Randn(1, 3, &rng);
  CheckGradients(leaves, [&cell, xval](const std::vector<Var>&) {
    auto st = cell.InitialState();
    auto s1 = cell.Forward(Constant(xval), st);
    auto s2 = cell.Forward(Constant(xval), s1);
    return SumAll(Square(s2.h));
  });
}

TEST(LayersTest, CrossAttentionShapesAndScores) {
  Rng rng(25);
  MultiHeadCrossAttention attn(10, 8, /*heads=*/4, /*head_dim=*/6, /*out=*/12, &rng);
  Var q = Constant(Tensor::Randn(1, 10, &rng));
  Var ctx = Constant(Tensor::Randn(5, 8, &rng));
  Var out = attn.Forward(q, ctx);
  EXPECT_EQ(out->value.rows(), 1);
  EXPECT_EQ(out->value.cols(), 12);
  const Tensor& scores = attn.last_scores();
  EXPECT_EQ(scores.rows(), 4);
  EXPECT_EQ(scores.cols(), 5);
  for (int64_t h = 0; h < 4; ++h) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_GE(scores(h, j), 0.0f);
      sum += scores(h, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST(LayersTest, CrossAttentionGradientFlowsToAllParams) {
  Rng rng(26);
  MultiHeadCrossAttention attn(4, 5, 2, 3, 6, &rng);
  Var q = Constant(Tensor::Randn(1, 4, &rng));
  Var ctx = Constant(Tensor::Randn(3, 5, &rng));
  attn.ZeroGrad();
  Backward(SumAll(Square(attn.Forward(q, ctx))));
  for (const auto& p : attn.Parameters()) {
    EXPECT_GT(p.var->grad.FrobeniusNorm(), 0.0f) << p.name;
  }
}

TEST(LayersTest, VaeShapesAndDeterministicInference) {
  Rng rng(27);
  Vae vae(32, 8, /*hidden_layers=*/3, &rng);
  Var x = Constant(Tensor::Randn(1, 32, &rng));
  auto out1 = vae.Forward(x, nullptr);
  auto out2 = vae.Forward(x, nullptr);
  EXPECT_EQ(out1.mu->value.cols(), 8);
  EXPECT_EQ(out1.recon->value.cols(), 32);
  // Inference (no rng) is deterministic: z == mu.
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(out1.z->value(0, i), out1.mu->value(0, i));
    EXPECT_FLOAT_EQ(out1.recon->value(0, i % 32), out2.recon->value(0, i % 32));
  }
}

TEST(LayersTest, VaeTrainingReducesLoss) {
  Rng rng(28);
  Vae vae(16, 4, 2, &rng);
  Adam adam(vae.Parameters(), 1e-2f);
  // Data on a 2-d manifold: x = a*u + b*v, so a 4-d latent suffices.
  Tensor u = Tensor::Randn(1, 16, &rng), v = Tensor::Randn(1, 16, &rng);
  std::vector<Tensor> data;
  for (int i = 0; i < 16; ++i) {
    const float a = static_cast<float>(rng.Normal()), b = static_cast<float>(rng.Normal());
    Tensor d(1, 16);
    for (int64_t j = 0; j < 16; ++j) d(0, j) = a * u(0, j) + b * v(0, j);
    data.push_back(std::move(d));
  }
  float first = 0.0f, last = 0.0f;
  for (int epoch = 0; epoch < 120; ++epoch) {
    float total = 0.0f;
    vae.ZeroGrad();
    for (const auto& d : data) {
      auto out = vae.Forward(Constant(d), &rng);
      Var loss = Add(MseLoss(out.recon, d), Scale(GaussianKl(out.mu, out.logvar), 1e-3f));
      total += loss->value(0, 0);
      Backward(loss);
    }
    adam.Step();
    if (epoch == 0) first = total;
    last = total;
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(OptimTest, SgdDescendsQuadratic) {
  Var x = Parameter(Tensor::Row({5.0f}));
  Sgd sgd({{"x", x}}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    x->ZeroGrad();
    Backward(SumAll(Square(x)));
    sgd.Step();
  }
  EXPECT_NEAR(x->value(0, 0), 0.0f, 1e-4f);
}

TEST(OptimTest, AdamDescendsRosenbrockish) {
  Rng rng(30);
  Var x = Parameter(Tensor::Row({-1.0f, 2.0f}));
  Adam adam({{"x", x}}, 0.05f);
  float last = 0.0f;
  for (int i = 0; i < 300; ++i) {
    x->ZeroGrad();
    Var a = SliceCols(x, 0, 1);
    Var b = SliceCols(x, 1, 2);
    Var loss = Add(SumAll(Square(AddScalar(a, -1.0f))),
                   Scale(SumAll(Square(Sub(b, Square(a)))), 10.0f));
    last = loss->value(0, 0);
    Backward(loss);
    adam.Step();
  }
  EXPECT_LT(last, 0.05f);
}

TEST(OptimTest, GradClipBoundsNorm) {
  Var x = Parameter(Tensor::Row({100.0f, 100.0f}));
  Adam adam({{"x", x}}, 0.1f);
  x->ZeroGrad();
  Backward(SumAll(Square(x)));
  const float pre = adam.ClipGradNorm(1.0f);
  EXPECT_GT(pre, 100.0f);
  EXPECT_NEAR(x->grad.FrobeniusNorm(), 1.0f, 1e-4f);
}

TEST(SerializeTest, RoundTripRestoresWeights) {
  Rng rng(31);
  Mlp a(4, 8, 2, 2, &rng);
  Mlp b(4, 8, 2, 2, &rng);  // different init
  const std::string path = "/tmp/qps_nn_serialize_test.bin";
  ASSERT_TRUE(SaveModule(a, path).ok());
  ASSERT_TRUE(LoadModule(&b, path).ok());
  Tensor in = Tensor::Randn(1, 4, &rng);
  Var ya = a.Forward(Constant(in));
  Var yb = b.Forward(Constant(in));
  for (int64_t i = 0; i < 2; ++i) EXPECT_FLOAT_EQ(ya->value(0, i), yb->value(0, i));
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchFails) {
  Rng rng(32);
  Mlp a(4, 8, 2, 2, &rng);
  Mlp c(4, 16, 2, 2, &rng);
  const std::string path = "/tmp/qps_nn_serialize_test2.bin";
  ASSERT_TRUE(SaveModule(a, path).ok());
  EXPECT_FALSE(LoadModule(&c, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  Rng rng(33);
  Mlp a(2, 4, 1, 1, &rng);
  EXPECT_FALSE(LoadModule(&a, "/tmp/definitely_missing_qps_model.bin").ok());
}

}  // namespace
}  // namespace nn
}  // namespace qps
