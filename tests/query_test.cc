// Copyright 2026 The QPSeeker Authors

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "query/parser.h"
#include "query/plan.h"
#include "storage/schemas.h"
#include "util/rng.h"

namespace qps {
namespace query {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1);
    auto db = storage::BuildDatabase(storage::ToySpec(), 100, &rng);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }
  std::unique_ptr<storage::Database> db_;
};

TEST_F(QueryTest, ParseSimpleJoinQuery) {
  auto q = ParseSql(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id AND a.a2 > 3;",
      *db_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_relations(), 3);
  EXPECT_EQ(q->joins.size(), 2u);
  EXPECT_EQ(q->filters.size(), 1u);
  EXPECT_TRUE(q->IsConnected());
  // Joins matching schema FKs get a schema edge id.
  EXPECT_GE(q->joins[0].schema_edge, 0);
}

TEST_F(QueryTest, ParseWithAliasesAndSelfJoin) {
  auto q = ParseSql(
      "SELECT COUNT(*) FROM b b1x, b b2x, a WHERE b1x.b1 = a.id AND b2x.b1 = a.id;",
      *db_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_relations(), 3);
  EXPECT_EQ(q->relations[0].table_id, q->relations[1].table_id);
  EXPECT_TRUE(q->IsConnected());
}

TEST_F(QueryTest, ParserRejectsBadInput) {
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM ghost;", *db_).ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM a WHERE a.nope = 1;", *db_).ok());
  EXPECT_FALSE(ParseSql("FROM a;", *db_).ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM a, a;", *db_).ok())
      << "duplicate alias must be rejected";
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM a WHERE a.a2 <", *db_).ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM a WHERE a.a2 = 'oops", *db_).ok());
  // Non-equi join predicates are unsupported.
  EXPECT_FALSE(
      ParseSql("SELECT COUNT(*) FROM a, b WHERE a.id < b.b1;", *db_).ok());
}

TEST_F(QueryTest, ToSqlRoundTripsThroughParser) {
  auto q = ParseSql(
      "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 <= 5;", *db_);
  ASSERT_TRUE(q.ok());
  const std::string sql = q->ToSql(*db_);
  auto q2 = ParseSql(sql, *db_);
  ASSERT_TRUE(q2.ok()) << sql << " -> " << q2.status().ToString();
  EXPECT_EQ(q2->num_relations(), q->num_relations());
  EXPECT_EQ(q2->joins.size(), q->joins.size());
  EXPECT_EQ(q2->filters.size(), q->filters.size());
}

TEST_F(QueryTest, FiltersForSelectsByRelation) {
  auto q = ParseSql(
      "SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id AND a.a2 > 1 AND b.b3 = 2;", *db_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->FiltersFor(0).size(), 1u);
  EXPECT_EQ(q->FiltersFor(1).size(), 1u);
  EXPECT_EQ(q->FiltersFor(2).size(), 0u);
}

TEST_F(QueryTest, DisconnectedQueryDetected) {
  auto q = ParseSql("SELECT COUNT(*) FROM a, c;", *db_);
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->IsConnected());
}

TEST_F(QueryTest, BuildLeftDeepPlanStructure) {
  auto q = ParseSql(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;", *db_);
  ASSERT_TRUE(q.ok());
  auto plan = BuildLeftDeepPlan(*q, {0, 1, 2},
                                {OpType::kSeqScan, OpType::kIndexScan, OpType::kSeqScan},
                                {OpType::kHashJoin, OpType::kMergeJoin});
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->NumNodes(), 5);
  EXPECT_EQ(plan->op, OpType::kMergeJoin);
  EXPECT_EQ(plan->left->op, OpType::kHashJoin);
  EXPECT_TRUE(plan->right->is_leaf());
  EXPECT_EQ(plan->RelMask(), 0b111u);
  EXPECT_EQ(plan->left->RelMask(), 0b011u);
}

TEST_F(QueryTest, BuildLeftDeepPlanRejectsCrossProduct) {
  auto q = ParseSql(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;", *db_);
  ASSERT_TRUE(q.ok());
  // Order (a, c, b): a-c have no join predicate.
  auto plan = BuildLeftDeepPlan(*q, {0, 2, 1},
                                {OpType::kSeqScan, OpType::kSeqScan, OpType::kSeqScan},
                                {OpType::kHashJoin, OpType::kHashJoin});
  EXPECT_EQ(plan, nullptr);
}

TEST_F(QueryTest, PlanCloneIsDeep) {
  auto q = ParseSql("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;", *db_);
  ASSERT_TRUE(q.ok());
  auto plan = BuildLeftDeepPlan(*q, {0, 1}, {OpType::kSeqScan, OpType::kSeqScan},
                                {OpType::kHashJoin});
  ASSERT_NE(plan, nullptr);
  plan->estimated.cardinality = 42.0;
  auto copy = plan->Clone();
  copy->estimated.cardinality = 7.0;
  copy->left->op = OpType::kIndexScan;
  EXPECT_EQ(plan->estimated.cardinality, 42.0);
  EXPECT_EQ(plan->left->op, OpType::kSeqScan);
}

TEST_F(QueryTest, PostOrderVisitsChildrenFirst) {
  auto q = ParseSql(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;", *db_);
  ASSERT_TRUE(q.ok());
  auto plan = BuildLeftDeepPlan(*q, {0, 1, 2},
                                {OpType::kSeqScan, OpType::kSeqScan, OpType::kSeqScan},
                                {OpType::kHashJoin, OpType::kHashJoin});
  std::vector<bool> leaf_flags;
  plan->PostOrder([&](const PlanNode& n) { leaf_flags.push_back(n.is_leaf()); });
  ASSERT_EQ(leaf_flags.size(), 5u);
  // Left-deep: leaf, leaf, join, leaf, join.
  EXPECT_TRUE(leaf_flags[0]);
  EXPECT_TRUE(leaf_flags[1]);
  EXPECT_FALSE(leaf_flags[2]);
  EXPECT_TRUE(leaf_flags[3]);
  EXPECT_FALSE(leaf_flags[4]);
}

TEST_F(QueryTest, EnumerateJoinOrdersConnectedOnly) {
  auto q = ParseSql(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;", *db_);
  ASSERT_TRUE(q.ok());
  auto orders = EnumerateJoinOrders(*q, 100);
  // Chain a-b-c: connected permutations are abc, bac, bca, cba (and b first
  // both directions): {a,b,c},{b,a,c},{b,c,a},{c,b,a}.
  EXPECT_EQ(orders.size(), 4u);
  for (const auto& order : orders) {
    auto plan = BuildLeftDeepPlan(
        *q, order, std::vector<OpType>(3, OpType::kSeqScan),
        std::vector<OpType>(2, OpType::kHashJoin));
    EXPECT_NE(plan, nullptr) << "every enumerated order must be plannable";
  }
}

TEST_F(QueryTest, EnumerateJoinOrdersHonorsLimit) {
  auto q = ParseSql(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;", *db_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(EnumerateJoinOrders(*q, 2).size(), 2u);
}

TEST_F(QueryTest, SingleRelationOrder) {
  auto q = ParseSql("SELECT COUNT(*) FROM a WHERE a.a2 = 1;", *db_);
  ASSERT_TRUE(q.ok());
  auto orders = EnumerateJoinOrders(*q, 10);
  ASSERT_EQ(orders.size(), 1u);
  auto plan = BuildLeftDeepPlan(*q, orders[0], {OpType::kIndexScan}, {});
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->is_leaf());
}

class ValidatePlanTest : public QueryTest {
 protected:
  Query ChainQuery() {
    auto q = ParseSql(
        "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;", *db_);
    EXPECT_TRUE(q.ok());
    return std::move(q).value();
  }
  PlanPtr ChainPlan(const Query& q) {
    return BuildLeftDeepPlan(q, {0, 1, 2},
                             {OpType::kSeqScan, OpType::kSeqScan, OpType::kSeqScan},
                             {OpType::kHashJoin, OpType::kMergeJoin});
  }
};

TEST_F(ValidatePlanTest, AcceptsWellFormedPlans) {
  const Query q = ChainQuery();
  EXPECT_TRUE(ValidatePlan(q, *ChainPlan(q)).ok());
  // Every enumerated order and every bushy sample must validate.
  for (const auto& order : EnumerateJoinOrders(q, 100)) {
    auto plan = BuildLeftDeepPlan(q, order, std::vector<OpType>(3, OpType::kSeqScan),
                                  std::vector<OpType>(2, OpType::kHashJoin));
    ASSERT_NE(plan, nullptr);
    EXPECT_TRUE(ValidatePlan(q, *plan).ok());
  }
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    auto bushy = BuildRandomBushyPlan(q, &rng);
    ASSERT_NE(bushy, nullptr);
    Status st = ValidatePlan(q, *bushy);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
}

TEST_F(ValidatePlanTest, AcceptsSingleRelationLeaf) {
  auto q = ParseSql("SELECT COUNT(*) FROM a WHERE a.a2 = 1;", *db_);
  ASSERT_TRUE(q.ok());
  auto plan = BuildLeftDeepPlan(*q, {0}, {OpType::kIndexScan}, {});
  EXPECT_TRUE(ValidatePlan(*q, *plan).ok());
}

TEST_F(ValidatePlanTest, RejectsMissingRelation) {
  const Query q = ChainQuery();
  // A plan for only the a-b prefix: relation c is never scanned.
  auto partial = BuildLeftDeepPlan(q, {0, 1}, {OpType::kSeqScan, OpType::kSeqScan},
                                   {OpType::kHashJoin});
  ASSERT_NE(partial, nullptr);
  Status st = ValidatePlan(q, *partial);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("does not cover all query relations"),
            std::string::npos);
}

TEST_F(ValidatePlanTest, RejectsDuplicateRelation) {
  const Query q = ChainQuery();
  auto plan = ChainPlan(q);
  plan->right->rel = 0;  // scans relation a twice, c never
  Status st = ValidatePlan(q, *plan);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("overlap in relations"), std::string::npos);
}

TEST_F(ValidatePlanTest, RejectsWrongOperatorKinds) {
  const Query q = ChainQuery();
  auto leaf_join = ChainPlan(q);
  leaf_join->right->op = OpType::kHashJoin;
  EXPECT_NE(ValidatePlan(q, *leaf_join).message().find("leaf with join operator"),
            std::string::npos);
  auto join_scan = ChainPlan(q);
  join_scan->op = OpType::kSeqScan;
  EXPECT_NE(ValidatePlan(q, *join_scan).message().find("join node with scan operator"),
            std::string::npos);
}

TEST_F(ValidatePlanTest, RejectsOneChildNode) {
  const Query q = ChainQuery();
  auto plan = ChainPlan(q);
  plan->right = nullptr;
  EXPECT_NE(ValidatePlan(q, *plan).message().find("exactly one child"),
            std::string::npos);
}

TEST_F(ValidatePlanTest, RejectsCrossProductAndBadPredicates) {
  const Query q = ChainQuery();
  auto no_pred = ChainPlan(q);
  no_pred->join_preds.clear();
  EXPECT_NE(ValidatePlan(q, *no_pred).message().find("cross product"),
            std::string::npos);

  auto bad_index = ChainPlan(q);
  bad_index->join_preds = {42};
  EXPECT_NE(ValidatePlan(q, *bad_index).message().find("out of range"),
            std::string::npos);

  // Predicate 0 joins a-b, both already in the left subtree: it cannot
  // connect the top join, and it would also be applied twice.
  auto disconnected = ChainPlan(q);
  disconnected->join_preds = {0};
  EXPECT_NE(
      ValidatePlan(q, *disconnected).message().find("does not connect"),
      std::string::npos);
}

TEST_F(ValidatePlanTest, RejectsPredicateAppliedTwice) {
  const Query q = ChainQuery();
  auto plan = ChainPlan(q);
  plan->join_preds.push_back(plan->left->join_preds[0]);
  Status st = ValidatePlan(q, *plan);
  ASSERT_FALSE(st.ok());
  // The duplicated a-b predicate fails the connectivity check at the top
  // join (both sides live in the left subtree).
  EXPECT_NE(st.message().find("does not connect"), std::string::npos);
}

TEST(StatsAreFiniteTest, FlagsNanAndInf) {
  NodeStats ok;
  EXPECT_TRUE(StatsAreFinite(ok));
  NodeStats nan_card;
  nan_card.cardinality = std::nan("");
  EXPECT_FALSE(StatsAreFinite(nan_card));
  NodeStats inf_cost;
  inf_cost.cost = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(StatsAreFinite(inf_cost));
  NodeStats neg_inf_rt;
  neg_inf_rt.runtime_ms = -std::numeric_limits<double>::infinity();
  EXPECT_FALSE(StatsAreFinite(neg_inf_rt));
}

// --- Query::ValidateStructure / Validate (the fuzzing boundary) ---------

TEST_F(QueryTest, ValidateAcceptsParsedQueries) {
  auto q = ParseSql(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id AND "
      "a.a2 > 3;",
      *db_);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->ValidateStructure().ok());
  EXPECT_TRUE(q->Validate(*db_).ok());
}

TEST_F(QueryTest, ValidateStructureRejectsDuplicateAliases) {
  Query q;
  q.relations = {{0, "a"}, {1, "a"}};
  q.joins = {{0, 1, 1, 1, -1}};
  Status st = q.ValidateStructure();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryTest, ValidateStructureRejectsEmptyAlias) {
  Query q;
  q.relations = {{0, ""}};
  EXPECT_FALSE(q.ValidateStructure().ok());
}

TEST_F(QueryTest, ValidateStructureRejectsOutOfRangeJoinIndices) {
  Query q;
  q.relations = {{0, "a"}, {1, "b"}};
  q.joins = {{0, 1, 7, 1, -1}};  // right_rel out of range
  EXPECT_FALSE(q.ValidateStructure().ok());
  q.joins = {{-1, 1, 1, 1, -1}};
  EXPECT_FALSE(q.ValidateStructure().ok());
}

TEST_F(QueryTest, ValidateStructureRejectsSelfReferencingJoin) {
  Query q;
  q.relations = {{0, "a"}, {1, "b"}};
  q.joins = {{0, 1, 0, 1, -1}};  // a.x = a.y relates a relation to itself
  EXPECT_FALSE(q.ValidateStructure().ok());
}

TEST_F(QueryTest, ValidateStructureRejectsBadFilterIndices) {
  Query q;
  q.relations = {{0, "a"}};
  FilterPredicate f;
  f.rel = 3;
  f.column = 0;
  q.filters = {f};
  EXPECT_FALSE(q.ValidateStructure().ok());
  q.filters[0].rel = 0;
  q.filters[0].column = -2;
  EXPECT_FALSE(q.ValidateStructure().ok());
}

TEST_F(QueryTest, ValidateRejectsOutOfRangeTableId) {
  Query q;
  q.relations = {{db_->num_tables(), "x"}};
  EXPECT_FALSE(q.Validate(*db_).ok());
  q.relations = {{-1, "x"}};
  EXPECT_FALSE(q.Validate(*db_).ok());
}

TEST_F(QueryTest, ValidateRejectsOutOfRangeColumn) {
  Query q;
  q.relations = {{0, "a"}};
  FilterPredicate f;
  f.rel = 0;
  f.column = db_->table(0).num_columns();
  f.value = storage::Value::Int(1);
  q.filters = {f};
  EXPECT_FALSE(q.Validate(*db_).ok());
}

TEST_F(QueryTest, ValidateRejectsTypeMismatchedLiteral) {
  // a.a2 is an int column in ToySpec; a string literal must be rejected.
  Query q;
  q.relations = {{0, "a"}};
  FilterPredicate f;
  f.rel = 0;
  f.column = 1;
  f.value = storage::Value::Str("oops");
  q.filters = {f};
  Status st = q.Validate(*db_);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryTest, ValidateRejectsNonFiniteLiteral) {
  Query q;
  q.relations = {{0, "a"}};
  FilterPredicate f;
  f.rel = 0;
  f.column = 1;
  f.value = storage::Value::Float(std::nan(""));
  q.filters = {f};
  EXPECT_FALSE(q.Validate(*db_).ok());
  q.filters[0].value =
      storage::Value::Float(std::numeric_limits<double>::infinity());
  EXPECT_FALSE(q.Validate(*db_).ok());
}

// --- join-graph hardening against degenerate inputs ---------------------

TEST_F(QueryTest, EmptyQueryIsNotConnected) {
  Query q;
  EXPECT_FALSE(q.IsConnected());
  EXPECT_TRUE(q.JoinAdjacency().empty());
}

TEST_F(QueryTest, SingleRelationIsConnected) {
  Query q;
  q.relations = {{0, "a"}};
  EXPECT_TRUE(q.IsConnected());
}

TEST_F(QueryTest, DegenerateJoinsContributeNoEdges) {
  Query q;
  q.relations = {{0, "a"}, {1, "b"}};
  // Self-referencing and out-of-range predicates must not corrupt the
  // adjacency walk — and must not connect anything either.
  q.joins = {{0, 1, 0, 1, -1}, {5, 0, 1, 0, -1}, {0, 0, -3, 0, -1}};
  auto adj = q.JoinAdjacency();
  ASSERT_EQ(adj.size(), 2u);
  EXPECT_TRUE(adj[0].empty());
  EXPECT_TRUE(adj[1].empty());
  EXPECT_FALSE(q.IsConnected());
}

TEST(OpTypeTest, Classification) {
  EXPECT_TRUE(IsScan(OpType::kSeqScan));
  EXPECT_TRUE(IsScan(OpType::kIndexScan));
  EXPECT_TRUE(IsScan(OpType::kBitmapIndexScan));
  EXPECT_TRUE(IsJoin(OpType::kHashJoin));
  EXPECT_TRUE(IsJoin(OpType::kMergeJoin));
  EXPECT_TRUE(IsJoin(OpType::kNestedLoopJoin));
  EXPECT_EQ(ScanOps().size(), 3u);
  EXPECT_EQ(JoinOps().size(), 3u);
  EXPECT_STREQ(OpTypeName(OpType::kHashJoin), "HashJoin");
}

}  // namespace
}  // namespace query
}  // namespace qps
