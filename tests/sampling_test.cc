// Copyright 2026 The QPSeeker Authors

#include <gtest/gtest.h>

#include "sampling/plan_sampler.h"
#include "query/parser.h"
#include "storage/schemas.h"
#include "util/rng.h"

namespace qps {
namespace sampling {
namespace {

class SamplingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1);
    auto db = storage::BuildDatabase(storage::ToySpec(), 300, &rng);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    stats_ = stats::DatabaseStats::Analyze(*db_);
    cards_ = std::make_unique<optimizer::CardinalityEstimator>(*db_, *stats_);
  }

  query::Query Parse(const std::string& sql) {
    auto q = query::ParseSql(sql, *db_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<stats::DatabaseStats> stats_;
  std::unique_ptr<optimizer::CardinalityEstimator> cards_;
};

TEST_F(SamplingTest, SamplesAreSortedByCostAndCapped) {
  auto q = Parse(
      "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id AND a.a2 < 8;");
  SamplerOptions opts;
  opts.candidates_per_order = 5;
  opts.max_plans_per_query = 6;
  PlanSampler sampler(*db_, *cards_, opts);
  Rng rng(2);
  auto plans = sampler.SamplePlans(q, &rng);
  ASSERT_FALSE(plans.empty());
  EXPECT_LE(plans.size(), 6u);
  for (size_t i = 1; i < plans.size(); ++i) {
    EXPECT_LE(plans[i - 1]->estimated.cost, plans[i]->estimated.cost);
  }
  for (const auto& p : plans) {
    EXPECT_EQ(p->RelMask(), 0b111u);
  }
}

TEST_F(SamplingTest, KeepFractionRoughlyRespected) {
  auto q = Parse("SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;");
  SamplerOptions opts;
  opts.candidates_per_order = 10;
  opts.keep_fraction = 0.15;
  opts.max_plans_per_query = 1000;
  PlanSampler sampler(*db_, *cards_, opts);
  Rng rng(3);
  auto plans = sampler.SamplePlans(q, &rng);
  // 4 connected orders x 10 candidates = 40 (minus cross-product rejects,
  // which cannot happen for connected orders); 15% of 40 = 6.
  EXPECT_NEAR(static_cast<double>(plans.size()), 6.0, 2.0);
}

TEST_F(SamplingTest, SamplingIsDeterministicPerSeed) {
  auto q = Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;");
  PlanSampler sampler(*db_, *cards_);
  Rng rng1(7), rng2(7);
  auto p1 = sampler.SamplePlans(q, &rng1);
  auto p2 = sampler.SamplePlans(q, &rng2);
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i]->estimated.cost, p2[i]->estimated.cost);
    EXPECT_EQ(p1[i]->op, p2[i]->op);
  }
}

TEST_F(SamplingTest, DatasetFromOptimizerHasOneQepPerQuery) {
  std::vector<query::Query> queries = {
      Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;"),
      Parse("SELECT COUNT(*) FROM b, c WHERE c.c1 = b.id AND b.b3 > 2;"),
  };
  DatasetOptions opts;
  opts.source = PlanSource::kOptimizer;
  Rng rng(4);
  auto ds = BuildQepDataset(*db_, *stats_, std::move(queries), opts, &rng);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->qeps.size(), 2u);
  EXPECT_EQ(ds->aborted, 0);
  for (const auto& qep : ds->qeps) {
    qep.plan->PostOrder([](const query::PlanNode& n) {
      EXPECT_GT(n.actual.runtime_ms, 0.0) << "labels must be filled";
    });
  }
}

TEST_F(SamplingTest, DatasetFromSamplingHasManyQepsPerQuery) {
  std::vector<query::Query> queries = {
      Parse("SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;"),
  };
  DatasetOptions opts;
  opts.source = PlanSource::kSampled;
  opts.sampler.candidates_per_order = 6;
  Rng rng(5);
  auto ds = BuildQepDataset(*db_, *stats_, std::move(queries), opts, &rng);
  ASSERT_TRUE(ds.ok());
  EXPECT_GT(ds->qeps.size(), 1u);
  for (const auto& qep : ds->qeps) EXPECT_EQ(qep.query_id, 0);
}

TEST_F(SamplingTest, LabelsVaryAcrossPlansOfSameQuery) {
  std::vector<query::Query> queries = {
      Parse("SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;"),
  };
  DatasetOptions opts;
  opts.source = PlanSource::kSampled;
  opts.sampler.candidates_per_order = 8;
  opts.sampler.keep_fraction = 0.5;
  Rng rng(6);
  auto ds = BuildQepDataset(*db_, *stats_, std::move(queries), opts, &rng);
  ASSERT_TRUE(ds.ok());
  ASSERT_GT(ds->qeps.size(), 2u);
  // Root cardinality is plan-invariant; runtimes differ across plans.
  double card0 = ds->qeps[0].plan->actual.cardinality;
  bool runtime_varies = false;
  for (const auto& qep : ds->qeps) {
    EXPECT_EQ(qep.plan->actual.cardinality, card0);
    if (qep.plan->actual.runtime_ms != ds->qeps[0].plan->actual.runtime_ms) {
      runtime_varies = true;
    }
  }
  EXPECT_TRUE(runtime_varies);
}

TEST_F(SamplingTest, AbortedPlansAreDroppedAndCounted) {
  std::vector<query::Query> queries = {
      Parse("SELECT COUNT(*) FROM a, b WHERE b.b1 = a.id;"),
  };
  DatasetOptions opts;
  opts.source = PlanSource::kSampled;
  opts.exec.max_intermediate_rows = 3;  // everything aborts
  Rng rng(7);
  auto ds = BuildQepDataset(*db_, *stats_, std::move(queries), opts, &rng);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->qeps.size(), 0u);
  EXPECT_GT(ds->aborted, 0);
}

TEST_F(SamplingTest, TimeoutClampDropsEveryPlanButBuildSucceeds) {
  std::vector<query::Query> queries = {
      Parse("SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND c.c1 = b.id;"),
      Parse("SELECT COUNT(*) FROM a WHERE a.a2 > 2;"),
  };
  DatasetOptions opts;
  opts.source = PlanSource::kSampled;
  opts.exec.timeout_ms = 1e-9;  // no plan can finish
  Rng rng(8);
  auto ds = BuildQepDataset(*db_, *stats_, std::move(queries), opts, &rng);
  ASSERT_TRUE(ds.ok()) << "aborts are clamped per plan, not fatal to the build";
  EXPECT_EQ(ds->qeps.size(), 0u);
  EXPECT_GT(ds->aborted, 0);
}

}  // namespace
}  // namespace sampling
}  // namespace qps
