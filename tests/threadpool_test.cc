// Copyright 2026 The QPSeeker Authors

#include "util/threadpool.h"

#include <atomic>
#include <memory>
#include <vector>

#include "gtest/gtest.h"

namespace qps {
namespace util {
namespace {

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  for (auto& c : counts) c.store(0);
  pool.ParallelFor(kN, [&](int64_t i) { counts[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForExactOnceUnderRepeatedContention) {
  ThreadPool pool(4);
  // Many small loops back to back stress the chunk cursor and the
  // completion wait; every index must still run exactly once per call.
  for (int round = 0; round < 50; ++round) {
    constexpr int64_t kN = 257;  // not a multiple of any chunk size
    std::vector<std::atomic<int>> counts(kN);
    for (auto& c : counts) c.store(0);
    pool.ParallelFor(kN, [&](int64_t i) { counts[i].fetch_add(1); });
    for (int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(counts[i].load(), 1) << "round " << round << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForWritesDisjointSlotsDeterministically) {
  ThreadPool pool(4);
  constexpr int64_t kN = 4096;
  std::vector<int64_t> out(kN, -1);
  pool.ParallelFor(kN, [&](int64_t i) { out[i] = i * i; });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  constexpr int64_t kN = 100;
  std::vector<int> counts(kN, 0);  // plain ints: inline mode is single-threaded
  pool.ParallelFor(kN, [&](int64_t i) { counts[i] += 1; });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i], 1);
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingleton) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.ParallelFor(0, [&](int64_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
  pool.ParallelFor(1, [&](int64_t i) {
    EXPECT_EQ(i, 0);
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, ScheduleRunsTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Schedule([&done] { done.fetch_add(1); });
    }
    // Destructor joins after draining the queue.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, TryScheduleShedsWhenQueueFull) {
  ThreadPool pool(1);
  // Park the single worker so queued tasks pile up deterministically.
  std::mutex gate;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};
  pool.Schedule([&] {
    std::unique_lock<std::mutex> lk(gate);
    cv.wait(lk, [&] { return release; });
    ran.fetch_add(1);
  });
  // Wait until the blocker has been claimed (queue drained to 0).
  while (pool.queue_depth() != 0) std::this_thread::yield();

  // Admission bound of 2: two tasks enter the queue, the third is shed.
  EXPECT_TRUE(pool.TrySchedule([&] { ran.fetch_add(1); }, 2));
  EXPECT_TRUE(pool.TrySchedule([&] { ran.fetch_add(1); }, 2));
  EXPECT_EQ(pool.queue_depth(), 2u);
  EXPECT_FALSE(pool.TrySchedule([&] { ran.fetch_add(1); }, 2));

  {
    std::lock_guard<std::mutex> lk(gate);
    release = true;
  }
  cv.notify_all();
  while (ran.load() != 3) std::this_thread::yield();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, TryScheduleInlineWithoutWorkersNeverSheds) {
  ThreadPool pool(0);
  int ran = 0;
  // max_queued of 0 would shed any queued task, but inline execution never
  // queues, so the call must run the task and report success.
  EXPECT_TRUE(pool.TrySchedule([&] { ran += 1; }, 0));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, DestructionJoinsIdlePool) {
  auto pool = std::make_unique<ThreadPool>(3);
  EXPECT_EQ(pool->num_threads(), 3);
  pool.reset();  // must not hang or crash with an empty queue
}

TEST(ThreadPoolTest, NestedUseFromScheduledTask) {
  // A scheduled task may itself issue a ParallelFor on the same pool via
  // caller participation; the calling worker must make progress even if
  // all other workers are busy.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::atomic<bool> finished{false};
  pool.Schedule([&] {
    pool.ParallelFor(100, [&](int64_t) { total.fetch_add(1); });
    finished.store(true);
  });
  while (!finished.load()) std::this_thread::yield();
  EXPECT_EQ(total.load(), 100);
}

}  // namespace
}  // namespace util
}  // namespace qps
