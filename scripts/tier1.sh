#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the concurrency tests
# again under ThreadSanitizer (-DQPS_SANITIZE=THREAD). ASan and TSan cannot
# be combined, so the TSan pass uses its own build tree and only re-runs the
# tests that exercise the thread pool and the parallel MCTS/batched-forward
# hot path.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: metric-name lint =="
./scripts/check_metric_names.sh

echo "== tier-1: release build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== tier-1: forced-scalar int8 kernel leg (QPS_FORCE_SCALAR=1) =="
# The int8 GEMM dispatches to SIMD kernels at runtime; this leg pins the
# portable scalar kernel and re-runs the tests that exercise quantized
# inference, so a host without AVX2 is covered from an AVX-512 CI box.
(cd build && QPS_FORCE_SCALAR=1 ctest --output-on-failure \
  -R "quant_test|nn_test|model_manager_test|checkpoint_test")

echo "== tier-1: TSan build (threadpool + hot-path + serving + obs + fuzz-replay tests) =="
cmake -B build-tsan -S . -DQPS_SANITIZE=THREAD >/dev/null
cmake --build build-tsan -j --target threadpool_test hotpath_test \
  planner_conformance_test plan_service_test model_manager_test \
  tenant_test resilience_test planner_fuzz_test obs_test
(cd build-tsan && ctest --output-on-failure \
  -R "threadpool_test|hotpath_test|planner_conformance_test|plan_service_test|model_manager_test|tenant_test|resilience_test|planner_fuzz_test|obs_test")

echo "== tier-1: ASan checkpoint-loader fuzz (10k fixed-seed inputs) =="
cmake -B build-asan -S . -DQPS_SANITIZE=ON >/dev/null
cmake --build build-asan -j --target serialize_fuzz_test
(cd build-asan && QPS_FUZZ_ITERS=10000 ctest --output-on-failure \
  -R "serialize_fuzz_test")

echo "== tier-1: ASan chaos smoke (serve tests with fault points armed) =="
# The resilience/serving tests arm util/fault points (injected errors,
# stalls, NaN corruption) on the serve path; this leg re-runs them under
# ASan so cancellation and retry paths leak nothing when attempts die
# mid-plan.
cmake --build build-asan -j --target resilience_test plan_service_test
(cd build-asan && ctest --output-on-failure \
  -R "resilience_test|plan_service_test")

echo "== tier-1: ASan planner fuzz smoke (fixed-seed differential campaign) =="
cmake --build build-asan -j --target qps_fuzz
./build-asan/src/fuzz/qps_fuzz --iters=2000 --seed=42 --log-every=1000

echo "tier-1 OK"
