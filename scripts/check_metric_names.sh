#!/usr/bin/env bash
# Lints every metric-name string literal in the tree against the naming
# convention the export surface depends on:
#
#   qps.<namespace>.<name>[.<subname>...]   — lowercase [a-z0-9_] segments,
#                                             at least two after "qps"
#
# The Prometheus renderer translates dots to underscores, so an uppercase
# letter or a stray character here would silently produce an invalid or
# colliding exposition series. Run by scripts/tier1.sh; exits non-zero
# listing every offending literal.
set -euo pipefail
cd "$(dirname "$0")/.."

# Pull every string literal starting with "qps." out of the sources.
# A literal embedded in a JSON assertion appears as \"qps.foo\" — the
# trailing backslash is stripped before validation.
literals=$(grep -rhoE '"qps\.[^"]*' \
    --include='*.cc' --include='*.h' --include='*.cpp' \
    src bench examples tests tools \
  | sed -e 's/^"//' -e 's/\\$//' \
  | sort -u)

bad=0
while IFS= read -r name; do
  [ -z "$name" ] && continue
  # Dynamic-label prefixes end in "." (code appends a runtime label, e.g.
  # "qps.tenant.requests." + tenant_id). The prefix itself must still be a
  # valid name, and tenant ids are validated to [a-z0-9_] at registration.
  if printf '%s\n' "$name" | grep -qE '^qps(\.[a-z0-9_]+){2,}\.$'; then
    name="${name%.}"
  fi
  if ! printf '%s\n' "$name" | grep -qE '^qps(\.[a-z0-9_]+){2,}$'; then
    echo "bad metric name: $name" >&2
    bad=1
  fi
  # The per-tenant family is a closed set: a typo'd member would fork a
  # new series per tenant and escape every dashboard.
  case "$name" in
    qps.tenant.*)
      member="${name#qps.tenant.}"
      member="${member%%.*}"
      case "$member" in
        requests|shed|latency_ms|qerr|count) ;;
        *)
          echo "unknown qps.tenant.* member: $name (allowed:" \
               "requests shed latency_ms qerr count)" >&2
          bad=1
          ;;
      esac
      ;;
    # Health-breaker and retry families are closed sets too: the chaos
    # dashboards alert on exactly these members.
    qps.health.*)
      member="${name#qps.health.}"
      member="${member%%.*}"
      case "$member" in
        state|quarantines|probes|recoveries) ;;
        *)
          echo "unknown qps.health.* member: $name (allowed:" \
               "state quarantines probes recoveries)" >&2
          bad=1
          ;;
      esac
      ;;
    qps.serve.retries.*)
      member="${name#qps.serve.retries.}"
      member="${member%%.*}"
      case "$member" in
        attempts|exhausted|success_after_retry) ;;
        *)
          echo "unknown qps.serve.retries.* member: $name (allowed:" \
               "attempts exhausted success_after_retry)" >&2
          bad=1
          ;;
      esac
      ;;
  esac
done <<< "$literals"

if [ "$bad" -ne 0 ]; then
  echo "metric-name lint FAILED: names must match qps(\\.[a-z0-9_]+){2,}" >&2
  exit 1
fi
echo "metric-name lint OK ($(printf '%s\n' "$literals" | wc -l) names)"
