// Copyright 2026 The QPSeeker Authors
//
// Reproduces Table 1: the evaluation workload inventory (queries, QEPs,
// plan source, database) plus the §6 distribution characterization
// (runtime / cost / cardinality ranges per workload).

#include <cstdio>

#include "bench/harness.h"

namespace qps {
namespace bench {
namespace {

void DescribeBundle(const WorkloadBundle& bundle) {
  size_t queries = bundle.dataset.queries.size();
  std::vector<double> runtimes, cards, costs, joins;
  for (const auto& qep : bundle.dataset.qeps) {
    runtimes.push_back(qep.plan->actual.runtime_ms);
    cards.push_back(qep.plan->actual.cardinality);
    costs.push_back(qep.plan->actual.cost);
  }
  for (const auto& q : bundle.dataset.queries) {
    joins.push_back(static_cast<double>(q.joins.size()));
  }
  const auto rt = eval::ComputePercentiles(runtimes);
  const auto cd = eval::ComputePercentiles(cards);
  const auto cs = eval::ComputePercentiles(costs);
  const auto jn = eval::ComputePercentiles(joins);
  std::printf(
      "%-10s %8zu %8zu  %-12s %-6s  joins[p50=%.0f max~%.0f]  "
      "runtime ms[p50=%.2f p99=%.1f]  card[p50=%.0f p99=%.0f]  "
      "cost[p50=%.0f p99=%.0f]\n",
      bundle.name.c_str(), queries, bundle.dataset.qeps.size(),
      bundle.source == sampling::PlanSource::kOptimizer ? "DB optimizer" : "sampling",
      bundle.db->name().c_str(), jn.p50, jn.p99, rt.p50, rt.p99, cd.p50, cd.p99,
      cs.p50, cs.p99);
}

int Run() {
  Env env = MakeEnvFromEnvVar();
  std::printf("=== Table 1: evaluation workloads (scale=%s) ===\n",
              ScaleName(env.scale));
  std::printf("IMDb-like database: %d tables, %lld rows total\n", env.imdb->num_tables(),
              static_cast<long long>(env.imdb->TotalRows()));
  std::printf("Stack-like database: %d tables, %lld rows total\n\n",
              env.stack->num_tables(), static_cast<long long>(env.stack->TotalRows()));
  std::printf("%-10s %8s %8s  %-12s %-6s\n", "Workload", "Queries", "QEPs",
              "Plan Source", "DB");

  DescribeBundle(MakeSyntheticBundle(env));
  DescribeBundle(MakeJobBundle(env));
  DescribeBundle(MakeStackBundle(env));

  // JOB-Light / JOB-Extended are evaluation-only (Table 1 bottom rows).
  Rng rng(3);
  auto light = eval::JobLightWorkload(*env.imdb, env.scale, &rng);
  auto ext = eval::JobExtendedWorkload(*env.imdb, env.scale, &rng);
  std::printf("%-10s %8zu %8zu  %-12s %-6s  (evaluation only)\n", "JOB-Light",
              light.size(), light.size(), "-", "imdb");
  std::printf("%-10s %8zu %8zu  %-12s %-6s  (evaluation only)\n", "JOB-Ext.",
              ext.size(), ext.size(), "-", "imdb");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qps

int main() {
  const int rc = qps::bench::Run();
  qps::bench::EmitMetricsSnapshot("table1_workloads");
  return rc;
}
