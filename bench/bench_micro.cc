// Copyright 2026 The QPSeeker Authors
//
// google-benchmark micro-benchmarks for the performance-critical pieces:
// the autodiff engine (matmul / LSTM / attention forward+backward), the
// executor's operators, the baseline DP planner, TabSketch encoding, and
// MCTS rollout throughput.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#include "core/mcts.h"
#include "core/plan_cache.h"
#include "core/qpseeker.h"
#include "exec/executor.h"
#include "nn/gemm_int8.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/quant.h"
#include "obs/window.h"
#include "optimizer/planner.h"
#include "query/parser.h"
#include "sampling/plan_sampler.h"
#include "storage/schemas.h"
#include "serve/retry.h"
#include "tabert/tabsketch.h"
#include "util/cancel.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace qps {
namespace {

// ---- nn ---------------------------------------------------------------

void BM_MatMulForward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  nn::Tensor a = nn::Tensor::Randn(n, n, &rng);
  nn::Tensor b = nn::Tensor::Randn(n, n, &rng);
  nn::Tensor out(n, n);
  for (auto _ : state) {
    nn::MatMulInto(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulForward)->Arg(32)->Arg(64)->Arg(128);

// ---- tiled GEMM vs. the pre-tiling scalar kernel ------------------------
//
// ScalarBaselineMatMul is the seed tree's MatMulInto verbatim (i-p-j loops
// with a zero-skip), compiled at the default -O2 like the seed. The tiled
// kernel behind today's MatMulInto runs the (batch x d) @ (d x d) shapes
// the batched model forward produces: batch = plans per MCTS evaluation,
// d = hidden width.

void ScalarBaselineMatMul(const nn::Tensor& a, const nn::Tensor& b,
                          nn::Tensor* out) {
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  out->Fill(0.0f);
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* orow = out->data() + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.data() + p * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void GemmArgs(benchmark::internal::Benchmark* bench) {
  for (int64_t batch : {1, 8, 64}) {
    for (int64_t d : {64, 128, 256}) bench->Args({batch, d});
  }
}

/// TSC ticks per nanosecond, calibrated once against steady_clock over a
/// ~50 ms busy window. Returns 0 when no invariant TSC is available, in
/// which case the bytes/cycle counter is skipped (GB/s still reports).
double TscTicksPerNs() {
#if defined(__x86_64__) || defined(__i386__)
  static const double ticks_per_ns = [] {
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t c0 = __rdtsc();
    // Busy-wait ~50 ms: long enough to swamp clock-read jitter, short
    // enough to not matter at benchmark startup.
    while (std::chrono::steady_clock::now() - t0 <
           std::chrono::milliseconds(50)) {
    }
    const uint64_t c1 = __rdtsc();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    return ns > 0 ? static_cast<double>(c1 - c0) / ns : 0.0;
  }();
  return ticks_per_ns;
#else
  return 0.0;
#endif
}

/// GFLOPS plus memory-traffic counters for an (m x k) @ (k x n) GEMM.
/// `bytes_per_call` is the minimal streamed traffic — A + B + C once each —
/// so bytes/cycle compares kernels by how much useful data they move per
/// core clock: f32 moves 4 bytes/element everywhere, int8 moves 1 byte for
/// A and B and 4 for the f32 output.
void SetGemmCounters(benchmark::State& state, int64_t m, int64_t k, int64_t n,
                     int64_t bytes_per_call) {
  const double iters = static_cast<double>(state.iterations());
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(m * k * n) * iters * 1e-9,
      benchmark::Counter::kIsRate);
  const double bytes = static_cast<double>(bytes_per_call) * iters;
  state.counters["GB/s"] =
      benchmark::Counter(bytes * 1e-9, benchmark::Counter::kIsRate);
  const double ticks_per_ns = TscTicksPerNs();
  if (ticks_per_ns > 0) {
    // benchmark reports rates per second of wall time; dividing the per-
    // second byte rate by ticks/sec yields bytes per TSC cycle.
    state.counters["bytes/cycle"] =
        benchmark::Counter(bytes / ticks_per_ns * 1e-9,
                           benchmark::Counter::kIsRate);
  }
}

int64_t F32GemmBytes(int64_t m, int64_t k, int64_t n) {
  return (m * k + k * n + m * n) * static_cast<int64_t>(sizeof(float));
}

int64_t Int8GemmBytes(int64_t m, int64_t k, int64_t n) {
  return m * k + k * n + m * n * static_cast<int64_t>(sizeof(float));
}

void BM_GemmScalarBaseline(benchmark::State& state) {
  const int64_t batch = state.range(0), d = state.range(1);
  Rng rng(21);
  nn::Tensor a = nn::Tensor::Randn(batch, d, &rng);
  nn::Tensor b = nn::Tensor::Randn(d, d, &rng);
  nn::Tensor out(batch, d);
  for (auto _ : state) {
    ScalarBaselineMatMul(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  SetGemmCounters(state, batch, d, d, F32GemmBytes(batch, d, d));
}
BENCHMARK(BM_GemmScalarBaseline)->Apply(GemmArgs);

void BM_GemmTiled(benchmark::State& state) {
  const int64_t batch = state.range(0), d = state.range(1);
  Rng rng(21);
  nn::Tensor a = nn::Tensor::Randn(batch, d, &rng);
  nn::Tensor b = nn::Tensor::Randn(d, d, &rng);
  nn::Tensor out(batch, d);
  for (auto _ : state) {
    nn::Gemm(nn::GemmLayout::kNone, a, b, &out, /*accumulate=*/false);
    benchmark::DoNotOptimize(out.data());
  }
  SetGemmCounters(state, batch, d, d, F32GemmBytes(batch, d, d));
}
BENCHMARK(BM_GemmTiled)->Apply(GemmArgs);

// Int8 serving path at the widths the model forward actually runs
// (d = hidden width 128/256, batch = plans per MCTS evaluation). Each
// iteration includes per-row activation quantization — the full cost a
// Linear layer pays per call — so the ratio against BM_GemmTiled is the
// honest end-to-end speedup, not just the inner kernel. Run once with
// QPS_FORCE_SCALAR=1 to measure the portable fallback.

void Int8GemmArgs(benchmark::internal::Benchmark* bench) {
  for (int64_t batch : {1, 8, 64}) {
    for (int64_t d : {128, 256}) bench->Args({batch, d});
  }
}

void BM_GemmInt8(benchmark::State& state) {
  const int64_t batch = state.range(0), d = state.range(1);
  Rng rng(21);
  nn::Tensor a = nn::Tensor::Randn(batch, d, &rng);
  nn::Tensor w = nn::Tensor::Randn(d, d, &rng);
  const nn::QuantizedTensor q =
      nn::QuantizeWeights(w, nn::QuantScheme::kPerTensor);
  const nn::PackedQuantWeights packed = nn::PackForGemm(q);
  std::vector<float> bias(static_cast<size_t>(d), 0.125f);
  nn::Tensor out(batch, d);
  nn::QuantizedActs acts;
  for (auto _ : state) {
    nn::QuantizeActivationsPerRow(a, &acts);
    nn::GemmInt8(acts, packed, bias.data(), &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(nn::ActiveInt8Kernel());
  SetGemmCounters(state, batch, d, d, Int8GemmBytes(batch, d, d));
}
BENCHMARK(BM_GemmInt8)->Apply(Int8GemmArgs);

void BM_MlpForwardBackward(benchmark::State& state) {
  Rng rng(2);
  nn::Mlp mlp(64, 128, 32, 3, &rng);
  nn::Tensor in = nn::Tensor::Randn(1, 64, &rng);
  for (auto _ : state) {
    mlp.ZeroGrad();
    nn::Var loss = nn::SumAll(nn::Square(mlp.Forward(nn::Constant(in))));
    nn::Backward(loss);
    benchmark::DoNotOptimize(loss->value(0, 0));
  }
}
BENCHMARK(BM_MlpForwardBackward);

void BM_LstmCellStep(benchmark::State& state) {
  Rng rng(3);
  nn::LstmCell cell(139, 64, &rng);
  nn::Tensor in = nn::Tensor::Randn(1, 139, &rng);
  auto st = cell.InitialState();
  for (auto _ : state) {
    auto next = cell.Forward(nn::Constant(in), st);
    benchmark::DoNotOptimize(next.h->value(0, 0));
  }
}
BENCHMARK(BM_LstmCellStep);

void BM_CrossAttention(benchmark::State& state) {
  Rng rng(4);
  const int64_t nodes = state.range(0);
  nn::MultiHeadCrossAttention attn(64, 64, 4, 16, 128, &rng);
  nn::Var q = nn::Constant(nn::Tensor::Randn(1, 64, &rng));
  nn::Var ctx = nn::Constant(nn::Tensor::Randn(nodes, 64, &rng));
  for (auto _ : state) {
    nn::Var out = attn.Forward(q, ctx);
    benchmark::DoNotOptimize(out->value(0, 0));
  }
}
BENCHMARK(BM_CrossAttention)->Arg(5)->Arg(15)->Arg(31);

void BM_AdamStep(benchmark::State& state) {
  Rng rng(5);
  nn::Mlp mlp(64, 128, 32, 3, &rng);
  nn::Adam adam(mlp.Parameters(), 1e-3f);
  nn::Tensor in = nn::Tensor::Randn(1, 64, &rng);
  nn::Var loss = nn::SumAll(nn::Square(mlp.Forward(nn::Constant(in))));
  nn::Backward(loss);
  for (auto _ : state) {
    adam.Step();
  }
}
BENCHMARK(BM_AdamStep);

// ---- storage / exec / optimizer ----------------------------------------

struct ExecFixture {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<stats::DatabaseStats> stats;
  query::Query two_join;
  query::Query filter_only;

  static ExecFixture& Get() {
    static ExecFixture* f = [] {
      auto* fx = new ExecFixture();
      Rng rng(1);
      fx->db = storage::BuildDatabase(storage::ToySpec(), 2000, &rng).value();
      fx->stats = stats::DatabaseStats::Analyze(*fx->db);
      fx->two_join = query::ParseSql(
                         "SELECT COUNT(*) FROM a, b, c WHERE b.b1 = a.id AND "
                         "c.c1 = b.id AND a.a2 < 6;",
                         *fx->db)
                         .value();
      fx->filter_only =
          query::ParseSql("SELECT COUNT(*) FROM b WHERE b.b3 >= 3;", *fx->db).value();
      return fx;
    }();
    return *f;
  }
};

void BM_SeqScanExecution(benchmark::State& state) {
  auto& fx = ExecFixture::Get();
  auto plan = BuildLeftDeepPlan(fx.filter_only, {0}, {query::OpType::kSeqScan}, {});
  exec::Executor ex(*fx.db);
  for (auto _ : state) {
    auto card = ex.Execute(fx.filter_only, plan.get());
    benchmark::DoNotOptimize(card.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          fx.db->table(fx.db->TableIndex("b")).num_rows());
}
BENCHMARK(BM_SeqScanExecution);

void BM_HashJoinExecution(benchmark::State& state) {
  auto& fx = ExecFixture::Get();
  auto plan = BuildLeftDeepPlan(
      fx.two_join, {0, 1, 2},
      {query::OpType::kSeqScan, query::OpType::kSeqScan, query::OpType::kSeqScan},
      {query::OpType::kHashJoin, query::OpType::kHashJoin});
  exec::Executor ex(*fx.db);
  for (auto _ : state) {
    auto card = ex.Execute(fx.two_join, plan.get());
    benchmark::DoNotOptimize(card.ok());
  }
}
BENCHMARK(BM_HashJoinExecution);

void BM_AnalyzeDatabase(benchmark::State& state) {
  auto& fx = ExecFixture::Get();
  for (auto _ : state) {
    auto stats = stats::DatabaseStats::Analyze(*fx.db);
    benchmark::DoNotOptimize(stats->num_tables());
  }
}
BENCHMARK(BM_AnalyzeDatabase);

void BM_PlannerDp(benchmark::State& state) {
  auto& fx = ExecFixture::Get();
  optimizer::Planner planner(*fx.db, *fx.stats);
  for (auto _ : state) {
    auto plan = planner.Plan(fx.two_join);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_PlannerDp);

void BM_PlanSampling(benchmark::State& state) {
  auto& fx = ExecFixture::Get();
  optimizer::CardinalityEstimator cards(*fx.db, *fx.stats);
  sampling::PlanSampler sampler(*fx.db, cards);
  Rng rng(7);
  for (auto _ : state) {
    auto plans = sampler.SamplePlans(fx.two_join, &rng);
    benchmark::DoNotOptimize(plans.size());
  }
}
BENCHMARK(BM_PlanSampling);

// ---- tabert -------------------------------------------------------------

void BM_TabSketchColumn(benchmark::State& state) {
  auto& fx = ExecFixture::Get();
  tabert::TabSketchConfig cfg;
  cfg.k = static_cast<int>(state.range(0));
  tabert::TabSketch ts(*fx.db, *fx.stats, cfg);
  query::FilterPredicate pred;
  pred.rel = 0;
  pred.column = 1;
  pred.op = storage::CompareOp::kLe;
  pred.value = storage::Value::Int(4);
  for (auto _ : state) {
    auto rep = ts.ColumnRepresentation(0, 1, &pred);
    benchmark::DoNotOptimize(rep.data());
  }
}
BENCHMARK(BM_TabSketchColumn)->Arg(1)->Arg(3);

// ---- core ----------------------------------------------------------------

struct ModelFixture {
  std::unique_ptr<core::QpSeeker> model;

  static ModelFixture& Get() {
    static ModelFixture* f = [] {
      auto* fx = new ModelFixture();
      auto& efx = ExecFixture::Get();
      core::QpSeekerConfig cfg = core::QpSeekerConfig::ForScale(Scale::kSmoke);
      fx->model = std::make_unique<core::QpSeeker>(*efx.db, *efx.stats, cfg, 3);
      // Minimal training pass to fit the normalizer.
      sampling::DatasetOptions dopts;
      dopts.source = sampling::PlanSource::kOptimizer;
      Rng rng(8);
      auto ds = sampling::BuildQepDataset(*efx.db, *efx.stats,
                                          {efx.two_join, efx.filter_only}, dopts,
                                          &rng)
                    .value();
      core::TrainOptions topts;
      topts.epochs = 2;
      fx->model->Train(ds, topts);
      return fx;
    }();
    return *f;
  }
};

void BM_QpSeekerPredictPlan(benchmark::State& state) {
  auto& fx = ExecFixture::Get();
  auto& mfx = ModelFixture::Get();
  auto plan = BuildLeftDeepPlan(
      fx.two_join, {0, 1, 2},
      {query::OpType::kSeqScan, query::OpType::kSeqScan, query::OpType::kSeqScan},
      {query::OpType::kHashJoin, query::OpType::kHashJoin});
  for (auto _ : state) {
    auto pred = mfx.model->PredictPlan(fx.two_join, *plan);
    benchmark::DoNotOptimize(pred.runtime_ms);
  }
}
BENCHMARK(BM_QpSeekerPredictPlan);

// ---- fault injection ----------------------------------------------------
//
// PredictPlan carries the "vae.forward" fault point on its hot path; the
// pair below demonstrates the disarmed registry costs ≤1% (one relaxed
// atomic load per call — compare against BM_QpSeekerPredictPlan).

void BM_FaultPointDisarmed(benchmark::State& state) {
  fault::FaultInjector::Global().DisarmAll();
  for (auto _ : state) {
    Status st = fault::Check("bench.disarmed");
    benchmark::DoNotOptimize(st.ok());
    benchmark::DoNotOptimize(fault::CorruptDouble("bench.disarmed", 1.0));
  }
}
BENCHMARK(BM_FaultPointDisarmed);

void BM_QpSeekerPredictPlanFaultArmed(benchmark::State& state) {
  auto& fx = ExecFixture::Get();
  auto& mfx = ModelFixture::Get();
  auto plan = BuildLeftDeepPlan(
      fx.two_join, {0, 1, 2},
      {query::OpType::kSeqScan, query::OpType::kSeqScan, query::OpType::kSeqScan},
      {query::OpType::kHashJoin, query::OpType::kHashJoin});
  // An armed-but-never-firing spec on an unrelated point: the worst case for
  // the hot path, which must now take the registry lock on every check.
  fault::FaultSpec spec;
  spec.probability = 0.0;
  fault::FaultInjector::Global().Arm("bench.unrelated", spec);
  for (auto _ : state) {
    auto pred = mfx.model->PredictPlan(fx.two_join, *plan);
    benchmark::DoNotOptimize(pred.runtime_ms);
  }
  fault::FaultInjector::Global().DisarmAll();
}
BENCHMARK(BM_QpSeekerPredictPlanFaultArmed);

void BM_MctsRollouts(benchmark::State& state) {
  auto& fx = ExecFixture::Get();
  auto& mfx = ModelFixture::Get();
  core::MctsOptions mopts;
  mopts.time_budget_ms = 1e9;
  mopts.max_rollouts = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = core::MctsPlan(*mfx.model, fx.two_join, mopts);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MctsRollouts)->Arg(16)->Arg(64);

// Leaf-parallel MCTS: rollouts/sec at 1/2/4 threads. Batched evaluation
// (eval_batch auto-scales to 8 * threads) amortizes GEMM weight traffic
// even on one core; the pool adds real parallelism on multi-core hosts.
void BM_MctsRolloutsParallel(benchmark::State& state) {
  auto& fx = ExecFixture::Get();
  auto& mfx = ModelFixture::Get();
  core::MctsOptions mopts;
  mopts.time_budget_ms = 1e9;
  mopts.max_rollouts = 256;
  mopts.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = core::MctsPlan(*mfx.model, fx.two_join, mopts);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() * mopts.max_rollouts);
}
BENCHMARK(BM_MctsRolloutsParallel)->Arg(1)->Arg(2)->Arg(4);

// ---- plan-prediction cache ----------------------------------------------

void BM_PlanCacheHit(benchmark::State& state) {
  core::PlanPredictionCache cache(1 << 20);
  query::NodeStats s;
  s.runtime_ms = 1.0;
  cache.Insert(42, 7, s);
  query::NodeStats out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup(42, 7, &out));
  }
}
BENCHMARK(BM_PlanCacheHit);

void BM_PlanCacheMiss(benchmark::State& state) {
  core::PlanPredictionCache cache(1 << 20);
  query::NodeStats out;
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup(42, ++key, &out));
  }
}
BENCHMARK(BM_PlanCacheMiss);

// End-to-end cached prediction: the full PredictPlan path when every call
// hits the cache (fingerprint + shape hash + LRU refresh, no forward).
void BM_QpSeekerPredictPlanCached(benchmark::State& state) {
  auto& fx = ExecFixture::Get();
  auto& mfx = ModelFixture::Get();
  auto plan = BuildLeftDeepPlan(
      fx.two_join, {0, 1, 2},
      {query::OpType::kSeqScan, query::OpType::kSeqScan, query::OpType::kSeqScan},
      {query::OpType::kHashJoin, query::OpType::kHashJoin});
  mfx.model->EnableCache(1 << 20);
  mfx.model->PredictPlan(fx.two_join, *plan);  // warm the entry
  for (auto _ : state) {
    auto pred = mfx.model->PredictPlan(fx.two_join, *plan);
    benchmark::DoNotOptimize(pred.runtime_ms);
  }
  mfx.model->EnableCache(0);
}
BENCHMARK(BM_QpSeekerPredictPlanCached);

// ---------------------------------------------------------------------------
// Checkpoint save/load throughput (DESIGN.md §11). The v2 format CRCs every
// tensor and the whole file, serializes in memory, and lands via
// write-temp + fsync + rename; these measure that durability tax in
// bytes/sec over the full smoke-scale model bundle.

void BM_CheckpointSave(benchmark::State& state) {
  auto& mfx = ModelFixture::Get();
  const std::string path = "/tmp/qps_bench_ckpt.bin";
  std::remove(path.c_str());
  int64_t bytes = 0;
  for (auto _ : state) {
    Status st = mfx.model->Save(path);
    benchmark::DoNotOptimize(st.ok());
  }
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    bytes = static_cast<int64_t>(in.tellg());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
  std::remove(path.c_str());
}
BENCHMARK(BM_CheckpointSave);

void BM_CheckpointLoad(benchmark::State& state) {
  auto& efx = ExecFixture::Get();
  auto& mfx = ModelFixture::Get();
  const std::string path = "/tmp/qps_bench_ckpt.bin";
  std::remove(path.c_str());
  Status saved = mfx.model->Save(path);
  if (!saved.ok()) state.SkipWithError(saved.message().c_str());
  core::QpSeeker target(*efx.db, *efx.stats,
                        core::QpSeekerConfig::ForScale(Scale::kSmoke), 3);
  int64_t bytes = 0;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    bytes = static_cast<int64_t>(in.tellg());
  }
  for (auto _ : state) {
    Status st = target.Load(path);
    benchmark::DoNotOptimize(st.ok());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
  std::remove(path.c_str());
}
BENCHMARK(BM_CheckpointLoad);

// ---------------------------------------------------------------------------
// Observability overhead (DESIGN.md §8). Spans and counters sit on the
// per-rollout and per-operator hot paths, so the disarmed/hot costs must be
// negligible: BM_TraceSpanDisabled is one relaxed atomic load, and
// BM_CounterIncrement one relaxed fetch_add — both ≤10 ns (EXPERIMENTS.md).

void BM_TraceSpanDisabled(benchmark::State& state) {
  trace::Stop();
  trace::Clear();
  for (auto _ : state) {
    QPS_TRACE_SPAN("bench.disabled");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  trace::Start();
  for (auto _ : state) {
    QPS_TRACE_SPAN("bench.enabled");
    benchmark::ClobberMemory();
  }
  trace::Stop();
  trace::Clear();
}
BENCHMARK(BM_TraceSpanEnabled);

void BM_CounterIncrement(benchmark::State& state) {
  metrics::Counter* counter =
      metrics::Registry::Global().GetCounter("qps.bench.counter");
  for (auto _ : state) {
    counter->Increment();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramRecord(benchmark::State& state) {
  metrics::Histogram* hist =
      metrics::Registry::Global().GetHistogram("qps.bench.histogram");
  double v = 0.001;
  for (auto _ : state) {
    hist->Record(v);
    v = v < 100.0 ? v * 1.7 : 0.001;
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_HistogramRecord);

// Windowed metrics (obs/window.h): the enabled path adds a clock read and
// the slot CAS check on top of the cumulative counter; the disabled path
// must be one relaxed load + branch — strictly cheaper than a cumulative
// Counter::Increment, enforced by the assertion in main() below.

void BM_WindowedCounterIncrement(benchmark::State& state) {
  obs::SetWindowedEnabled(true);
  obs::WindowedCounter* counter =
      obs::WindowRegistry::Global().GetCounter("qps.bench.window_counter");
  for (auto _ : state) {
    counter->Increment();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_WindowedCounterIncrement);

void BM_WindowedCounterDisabled(benchmark::State& state) {
  obs::SetWindowedEnabled(false);
  obs::WindowedCounter* counter =
      obs::WindowRegistry::Global().GetCounter("qps.bench.window_counter");
  for (auto _ : state) {
    counter->Increment();
    benchmark::ClobberMemory();
  }
  obs::SetWindowedEnabled(true);
}
BENCHMARK(BM_WindowedCounterDisabled);

void BM_WindowedHistogramRecord(benchmark::State& state) {
  obs::SetWindowedEnabled(true);
  obs::WindowedHistogram* hist =
      obs::WindowRegistry::Global().GetHistogram("qps.bench.window_hist");
  double v = 0.001;
  for (auto _ : state) {
    hist->Record(v);
    v = v < 100.0 ? v * 1.7 : 0.001;
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_WindowedHistogramRecord);

/// Best-of-trials ns/op for a timing loop, outside google-benchmark so the
/// overhead bound below is a hard pass/fail rather than a report line.
template <typename Fn>
double BestNsPerOp(Fn&& op) {
  constexpr int kTrials = 5;
  constexpr int64_t kIters = 2'000'000;
  double best_ns = 1e300;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto start = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < kIters; ++i) {
      op();
      benchmark::ClobberMemory();
    }
    const auto end = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    best_ns = std::min(best_ns, ns / static_cast<double>(kIters));
  }
  return best_ns;
}

/// Acceptance bound (ISSUE: observability): the *disabled* windowed
/// increment must cost <= 2x a cumulative Counter::Increment, so windowed
/// instrumentation can stay compiled into hot paths. Returns 0 on pass.
int CheckWindowedOverheadBound() {
  metrics::Counter* counter =
      metrics::Registry::Global().GetCounter("qps.bench.overhead_counter");
  obs::WindowedCounter* windowed =
      obs::WindowRegistry::Global().GetCounter("qps.bench.overhead_window");

  const double counter_ns = BestNsPerOp([&] { counter->Increment(); });
  obs::SetWindowedEnabled(false);
  const double disabled_ns = BestNsPerOp([&] { windowed->Increment(); });
  obs::SetWindowedEnabled(true);

  // Half a nanosecond of absolute slack absorbs timer granularity when
  // both loops are ~1 ns/op.
  const double bound_ns = 2.0 * counter_ns + 0.5;
  std::printf(
      "windowed-overhead check: counter %.3f ns/op, windowed(disabled) "
      "%.3f ns/op, bound %.3f ns/op -> %s\n",
      counter_ns, disabled_ns, bound_ns,
      disabled_ns <= bound_ns ? "OK" : "FAIL");
  if (disabled_ns <= bound_ns) return 0;
  std::fprintf(stderr,
               "FAIL: disabled windowed Increment (%.3f ns) exceeds 2x "
               "Counter::Increment (%.3f ns)\n",
               disabled_ns, counter_ns);
  return 1;
}

/// Acceptance bound (ISSUE: robustness): the two operations the self-healing
/// layer adds to every request's hot path — polling a live CancelToken at
/// rollout boundaries and classifying a Status as retryable — must each cost
/// <= 2x a disarmed fault-point check, the price the serving path already
/// pays per request. Returns 0 on pass.
int CheckResilienceOverheadBound() {
  fault::FaultInjector::Global().DisarmAll();
  const double disarmed_ns =
      BestNsPerOp([] { benchmark::DoNotOptimize(fault::Check("bench.disarmed")); });

  util::CancelToken token;
  const double cancel_ns =
      BestNsPerOp([&] { benchmark::DoNotOptimize(token.Cancelled()); });

  serve::RetryPolicy policy;
  policy.max_retries = 2;
  const Status failure = Status::Unavailable("transient");
  const double classify_ns = BestNsPerOp(
      [&] { benchmark::DoNotOptimize(policy.ShouldRetry(failure, 1)); });

  const double bound_ns = 2.0 * disarmed_ns + 0.5;
  const bool ok = cancel_ns <= bound_ns && classify_ns <= bound_ns;
  std::printf(
      "resilience-overhead check: disarmed fault %.3f ns/op, cancel poll "
      "%.3f ns/op, retry classify %.3f ns/op, bound %.3f ns/op -> %s\n",
      disarmed_ns, cancel_ns, classify_ns, bound_ns, ok ? "OK" : "FAIL");
  if (ok) return 0;
  std::fprintf(stderr,
               "FAIL: resilience hot-path ops (cancel %.3f ns, classify "
               "%.3f ns) exceed 2x disarmed fault check (%.3f ns)\n",
               cancel_ns, classify_ns, disarmed_ns);
  return 1;
}

}  // namespace
}  // namespace qps

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  int rc = qps::CheckWindowedOverheadBound();
  rc |= qps::CheckResilienceOverheadBound();
  return rc;
}
