// Copyright 2026 The QPSeeker Authors
//
// Ablations of the design choices DESIGN.md calls out (all on the JOB
// bundle, runtime-prediction Q-error on held-out queries + plan quality):
//
//   1. QPAttention vs plain concatenation of query/plan embeddings (§4.3).
//   2. VAE cost modeler vs a deterministic MLP regressor (the paper's
//      central variational-inference claim).
//   3. Plan-space sampling vs optimizer-best-plan-only training (§5.1).
//   4. TabSketch data representations vs zeroed (data+queries vs
//      queries-only, §4.2).
//   5. MCTS vs greedy planning at inference (§5.2).

#include <cstdio>

#include "bench/harness.h"
#include "core/mcts.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace qps {
namespace bench {
namespace {

struct Variant {
  std::string name;
  core::QpSeekerConfig config;
};

void Report(const std::string& name, const TaskErrors& errors) {
  const auto rt = eval::ComputePercentiles(errors.runtime);
  const auto cd = eval::ComputePercentiles(errors.cardinality);
  std::printf("%-24s runtime q-err p50 %7.3f p90 %8.2f | card q-err p50 %7.2f\n",
              name.c_str(), rt.p50, rt.p90, cd.p50);
}

int Run() {
  Env env = MakeEnvFromEnvVar();
  std::printf("=== Ablations on JOB (scale=%s) ===\n\n", ScaleName(env.scale));
  auto bundle = MakeJobBundle(env);

  core::QpSeekerConfig base = core::QpSeekerConfig::ForScale(env.scale);
  base.beta = 100.0;

  std::vector<Variant> variants;
  variants.push_back({"full model", base});
  {
    auto cfg = base;
    cfg.use_attention = false;
    variants.push_back({"concat (no QPAttention)", cfg});
  }
  {
    auto cfg = base;
    cfg.use_vae = false;
    variants.push_back({"MLP head (no VAE)", cfg});
  }
  {
    auto cfg = base;
    cfg.encoder.use_data_repr = false;
    variants.push_back({"no TabSketch (queries)", cfg});
  }

  std::printf("-- model ablations: held-out prediction quality --\n");
  std::vector<core::QpSeeker> models;
  for (auto& v : variants) {
    auto model = TrainQpSeeker(bundle, v.config.beta,
                               "abl_" + StrSplit(v.name, ' ')[0], env.scale,
                               /*cache=*/true, &v.config);
    Report(v.name, EvalQpSeeker(model, bundle, bundle.TestQeps()));
    models.push_back(std::move(model));
  }

  // --- sampling ablation: retrain on optimizer-only JOB plans, reusing the
  // bundle's query-level split. ---------------------------------------------
  std::printf("\n-- training-set ablation (plan source) --\n");
  {
    Rng rng(881);
    sampling::DatasetOptions opts;
    opts.source = sampling::PlanSource::kOptimizer;
    auto ds = sampling::BuildQepDataset(*bundle.db, *bundle.stats,
                                        bundle.dataset.queries, opts, &rng);
    QPS_CHECK(ds.ok());
    core::QpSeekerConfig cfg = base;
    core::QpSeeker model(*bundle.db, *bundle.stats, cfg, 1234);
    // Train on the optimizer-plan QEPs of the training queries only.
    sampling::QepDataset train;
    train.queries = ds->queries;
    std::vector<bool> in_train(ds->queries.size(), false);
    for (const auto* qep : bundle.TrainQeps()) {
      in_train[static_cast<size_t>(qep->query_id)] = true;
    }
    for (auto& qep : ds->qeps) {
      if (!in_train[static_cast<size_t>(qep.query_id)]) continue;
      sampling::Qep copy;
      copy.query_id = qep.query_id;
      copy.plan = qep.plan->Clone();
      train.qeps.push_back(std::move(copy));
    }
    model.Train(train, DefaultTrainOptions(env.scale));
    Report("optimizer-plans-only", EvalQpSeeker(model, bundle, bundle.TestQeps()));
    Report("sampled-plans (=full)",
           EvalQpSeeker(models[0], bundle, bundle.TestQeps()));
  }

  // --- inference ablation: MCTS vs greedy. ---------------------------------
  std::printf("\n-- inference ablation (planner quality on held-out queries) --\n");
  {
    std::vector<query::Query> test_queries;
    std::vector<bool> seen(bundle.dataset.queries.size(), false);
    for (const auto* qep : bundle.TestQeps()) {
      if (seen[static_cast<size_t>(qep->query_id)]) continue;
      seen[static_cast<size_t>(qep->query_id)] = true;
      test_queries.push_back(
          bundle.dataset.queries[static_cast<size_t>(qep->query_id)]);
    }
    auto mcts_run = RunWithQpSeeker(models[0], *bundle.db, test_queries);
    // Greedy.
    PlannedRun greedy_run;
    {
      exec::Executor ex(*bundle.db);
      for (const auto& q : test_queries) {
        auto result = core::GreedyPlan(models[0], q);
        if (!result.ok()) {
          ++greedy_run.failures;
          continue;
        }
        greedy_run.total_plans_evaluated += result->plans_evaluated;
        auto plan = result->plan->Clone();
        auto card = ex.Execute(q, plan.get());
        const double ms = card.ok() ? plan->actual.runtime_ms
                                    : ex.last_counters().RuntimeMs();
        greedy_run.failures += card.ok() ? 0 : 1;
        greedy_run.total_ms += ms;
      }
    }
    std::printf("%-24s total %10.1f ms  plans evaluated %6d  failures %d\n", "MCTS",
                mcts_run.total_ms, mcts_run.total_plans_evaluated,
                mcts_run.failures);
    std::printf("%-24s total %10.1f ms  plans evaluated %6d  failures %d\n",
                "greedy", greedy_run.total_ms, greedy_run.total_plans_evaluated,
                greedy_run.failures);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qps

int main() {
  const int rc = qps::bench::Run();
  qps::bench::EmitMetricsSnapshot("ablations");
  return rc;
}
