// Copyright 2026 The QPSeeker Authors
//
// Shared experiment harness for the paper-reproduction benchmarks. Builds
// the evaluation databases/workloads at the requested QPS_SCALE, produces
// labeled QEP datasets (Table 1), trains QPSeeker instances (with a disk
// cache so later tables reuse Table 2's best models), and provides the
// evaluation protocol shared by Tables 2-5: Q-error of root-level
// (cardinality, cost, runtime) predictions on held-out QEPs.

#ifndef QPS_BENCH_HARNESS_H_
#define QPS_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/qpseeker.h"
#include "eval/metrics.h"
#include "eval/workloads.h"
#include "optimizer/planner.h"
#include "sampling/plan_sampler.h"

namespace qps {
namespace bench {

/// The simulated lab: both databases, analyzed.
struct Env {
  Scale scale;
  std::unique_ptr<storage::Database> imdb;
  std::unique_ptr<storage::Database> stack;
  std::unique_ptr<stats::DatabaseStats> imdb_stats;
  std::unique_ptr<stats::DatabaseStats> stack_stats;
};

Env MakeEnv(Scale scale);
Env MakeEnvFromEnvVar();  ///< scale from QPS_SCALE (default ci)

/// One evaluation workload: labeled QEPs + the paper's train/test split
/// (80/20; JOB splits at query level so test queries are never seen).
struct WorkloadBundle {
  std::string name;
  const storage::Database* db = nullptr;
  const stats::DatabaseStats* stats = nullptr;
  sampling::QepDataset dataset;
  std::vector<size_t> train_idx;
  std::vector<size_t> test_idx;
  sampling::PlanSource source = sampling::PlanSource::kOptimizer;

  std::vector<const sampling::Qep*> TrainQeps() const;
  std::vector<const sampling::Qep*> TestQeps() const;
  /// A dataset view containing only the training QEPs (plans cloned).
  sampling::QepDataset TrainDataset() const;
};

WorkloadBundle MakeSyntheticBundle(const Env& env);
/// Synthetic with plan-space sampling instead of optimizer plans — the
/// paper's §5.1 enriched training set (exposes the model to bad plans,
/// which the transfer experiments of Figures 9/10 rely on).
WorkloadBundle MakeSyntheticSampledBundle(const Env& env);
WorkloadBundle MakeJobBundle(const Env& env);
WorkloadBundle MakeStackBundle(const Env& env);
/// Stack with sampled plans (used when a model must *plan*, not just
/// predict: training on optimizer-best plans only leaves the cost model
/// blind to bad plans, which MCTS then walks into).
WorkloadBundle MakeStackSampledBundle(const Env& env);

/// Trains (or loads from the on-disk cache) a QPSeeker instance on the
/// bundle's training split. `variant` distinguishes configurations in the
/// cache key (e.g. "beta100"). Pass cache=false to force retraining.
core::QpSeeker TrainQpSeeker(const WorkloadBundle& bundle, double beta,
                             const std::string& variant, Scale scale,
                             bool cache = true,
                             core::QpSeekerConfig* config_override = nullptr);

/// Per-scale default training options.
core::TrainOptions DefaultTrainOptions(Scale scale);

/// Q-errors of the root triple for a set of QEPs.
struct TaskErrors {
  std::vector<double> cardinality;
  std::vector<double> cost;
  std::vector<double> runtime;
};

TaskErrors EvalQpSeeker(const core::QpSeeker& model, const WorkloadBundle& bundle,
                        const std::vector<const sampling::Qep*>& qeps);

/// The PostgreSQL baseline's estimates on the same plans (its cost model
/// re-annotates each plan; runtime = cost * calibrated factor).
TaskErrors EvalPostgres(optimizer::Planner* planner, const WorkloadBundle& bundle,
                        const std::vector<const sampling::Qep*>& qeps);

/// Calibrates the planner's cost->ms factor on the bundle's training split.
void CalibratePostgres(optimizer::Planner* planner, const WorkloadBundle& bundle);

/// End-to-end planner comparison (Figures 8-10): plan every query with a
/// system, execute the plan, record per-query runtimes.
struct PlannedRun {
  std::vector<double> per_query_ms;  ///< simulated execution time per query
  double total_ms = 0.0;
  int failures = 0;                  ///< aborted executions (clamped)
  int total_plans_evaluated = 0;     ///< MCTS only (paper §7.2 counts)
};

PlannedRun RunWithQpSeeker(const core::QpSeeker& model,
                           const storage::Database& db,
                           const std::vector<query::Query>& queries,
                           double time_budget_ms = 200.0);
PlannedRun RunWithPostgres(optimizer::Planner* planner,
                           const storage::Database& db,
                           const std::vector<query::Query>& queries);
/// Executes externally supplied plans (e.g. Bao's choices).
PlannedRun RunWithPlans(const storage::Database& db,
                        const std::vector<query::Query>& queries,
                        const std::vector<query::PlanPtr>& plans);

/// Prints a paper-style percentile block (50/90/95/99/std) for one metric
/// across systems: one column per entry of `named_errors`.
void PrintPercentileTable(const std::string& title,
                          const std::vector<std::pair<std::string, std::vector<double>>>&
                              named_errors);

/// Emits the global metrics registry as JSON at the end of a benchmark run:
/// to $QPS_METRICS_JSON_DIR/<name>.json when that env var is set, else as a
/// single `metrics: {...}` line on stderr (stdout stays a clean table).
void EmitMetricsSnapshot(const std::string& name);

}  // namespace bench
}  // namespace qps

#endif  // QPS_BENCH_HARNESS_H_
