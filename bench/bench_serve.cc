// Copyright 2026 The QPSeeker Authors
//
// Serving bench: closed-loop clients against the concurrent PlanService.
// Each client submits neural planning requests back to back; the service
// coalesces candidate evaluations from concurrently planning queries into
// fused model forwards. Reports throughput, client-observed latency
// percentiles, and the cross-query batching profile for 1/2/4/8 clients.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "exec/executor.h"
#include "obs/accuracy.h"
#include "obs/window.h"
#include "serve/plan_service.h"
#include "util/logging.h"
#include "util/timer.h"

namespace qps {
namespace bench {
namespace {

struct RunResult {
  int clients = 0;
  int requests = 0;
  int failures = 0;
  double wall_ms = 0.0;
  eval::Percentiles latency;
  serve::BatchRendezvous::Stats batching;
  int64_t deadline_hits = 0;
};

RunResult RunClients(const core::QpSeeker& model, optimizer::Planner* baseline,
                     const std::vector<query::Query>& queries, int clients,
                     int requests_per_client, double budget_ms) {
  core::GuardedOptions gopts;
  gopts.hybrid.mcts.time_budget_ms = budget_ms;
  gopts.hybrid.mcts.threads = 1;

  serve::PlanServiceOptions sopts;
  sopts.workers = clients;
  sopts.max_queue = static_cast<size_t>(4 * clients);
  auto service_or =
      serve::PlanService::Create("neural", &model, baseline, gopts, sopts);
  QPS_CHECK(service_or.ok());
  auto service = std::move(service_or).value();

  std::vector<std::vector<double>> latencies(static_cast<size_t>(clients));
  std::vector<int> failures(static_cast<size_t>(clients), 0);

  Timer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < requests_per_client; ++r) {
        const size_t qi = static_cast<size_t>(c * requests_per_client + r) %
                          queries.size();
        core::PlanRequestOptions ropts;
        ropts.seed = 7000 + static_cast<uint64_t>(c * 1000 + r);
        Timer timer;
        auto result = service->Submit(queries[qi], ropts).get();
        latencies[static_cast<size_t>(c)].push_back(timer.ElapsedMillis());
        if (!result.ok()) failures[static_cast<size_t>(c)] += 1;
      }
    });
  }
  for (auto& t : threads) t.join();

  RunResult out;
  out.clients = clients;
  out.requests = clients * requests_per_client;
  out.wall_ms = wall.ElapsedMillis();
  std::vector<double> all;
  for (int c = 0; c < clients; ++c) {
    const auto& lat = latencies[static_cast<size_t>(c)];
    all.insert(all.end(), lat.begin(), lat.end());
    out.failures += failures[static_cast<size_t>(c)];
  }
  out.latency = eval::ComputePercentiles(all);
  const auto stats = service->stats();
  out.batching = stats.batching;
  out.deadline_hits = stats.deadline_hits;
  return out;
}

/// Sustained-load observation phase (ISSUE: observability): serve rounds of
/// requests, execute every served plan so the accuracy tracker receives
/// predicted-vs-actual feedback, and print the sliding-window latency
/// percentiles and q-error after each round. Both columns converge as the
/// window fills — the acceptance signal for the windowed instrumentation.
void RunWindowedObservation(const core::QpSeeker& model,
                            optimizer::Planner* baseline,
                            const storage::Database& db,
                            const std::vector<query::Query>& queries,
                            double budget_ms, int rounds) {
  std::printf(
      "\n--- Windowed observability: rolling p99 / q-error under sustained "
      "load ---\n");
  core::GuardedOptions gopts;
  gopts.hybrid.mcts.time_budget_ms = budget_ms;
  gopts.hybrid.mcts.threads = 1;
  serve::PlanServiceOptions sopts;
  sopts.workers = 4;
  sopts.max_queue = 16;
  auto service_or =
      serve::PlanService::Create("neural", &model, baseline, gopts, sopts);
  QPS_CHECK(service_or.ok());
  auto service = std::move(service_or).value();

  exec::ExecOptions eopts;
  eopts.accuracy_backend = "neural";  // feed obs::AccuracyTracker::Global()
  exec::Executor executor(db, eopts);

  obs::WindowedHistogram* latency =
      obs::WindowRegistry::Global().GetHistogram("qps.serve.latency_ms");
  std::printf("%6s %8s %10s %10s %12s %10s\n", "round", "win n", "p50 ms",
              "p99 ms", "qerr p50", "drift");
  for (int round = 0; round < rounds; ++round) {
    for (size_t i = 0; i < queries.size(); ++i) {
      core::PlanRequestOptions ropts;
      ropts.seed = 9000 + static_cast<uint64_t>(round) * 100 + i;
      auto result = service->Submit(queries[i], ropts).get();
      if (result.ok()) {
        auto analyzed = executor.ExplainAnalyze(queries[i], result->plan.get());
        (void)analyzed;  // feedback is the side effect; errors just skip it
      }
    }
    const auto drift = obs::AccuracyTracker::Global().Update("neural");
    const metrics::HistogramSnapshot window = latency->SnapshotWindow();
    std::printf("%6d %8lld %10.2f %10.2f %12.2f %10.2f\n", round + 1,
                static_cast<long long>(window.count), window.Percentile(50),
                window.Percentile(99), drift.qerr_p50, drift.drift_score);
  }
}

int Run() {
  Env env = MakeEnvFromEnvVar();
  std::printf("=== Serving: concurrent planning with cross-query batching (scale=%s) ===\n\n",
              ScaleName(env.scale));

  // Neural-complexity workload (3-way joins) so every request exercises
  // the MCTS + model-forward path the rendezvous batches.
  eval::WorkloadOptions wo;
  wo.num_queries = 16;
  wo.min_joins = 3;
  wo.max_joins = 3;
  wo.num_templates = 4;
  Rng wrng(771);
  auto queries = eval::GenerateWorkload(*env.imdb, wo, &wrng);

  sampling::DatasetOptions dopts;
  dopts.source = sampling::PlanSource::kSampled;
  dopts.sampler.max_plans_per_query = env.scale == Scale::kSmoke ? 5 : 8;
  Rng drng(772);
  auto ds = sampling::BuildQepDataset(*env.imdb, *env.imdb_stats, queries, dopts,
                                      &drng);
  QPS_CHECK(ds.ok());
  core::QpSeekerConfig cfg = core::QpSeekerConfig::ForScale(env.scale);
  core::QpSeeker seeker(*env.imdb, *env.imdb_stats, cfg, 4321);
  seeker.Train(*ds, DefaultTrainOptions(env.scale));
  optimizer::Planner baseline(*env.imdb, *env.imdb_stats);

  const double budget_ms = env.scale == Scale::kSmoke ? 25.0 : 50.0;
  const int requests_per_client = env.scale == Scale::kSmoke ? 6 : 12;
  std::printf("MCTS budget %.0f ms, %d requests per client, closed loop\n\n",
              budget_ms, requests_per_client);

  std::printf("%8s %9s %10s %10s %10s %9s %9s %7s %6s\n", "clients", "req",
              "qps", "p50 ms", "p99 ms", "flushes", "mean b", "max b", "fail");
  for (int clients : {1, 2, 4, 8}) {
    const RunResult r = RunClients(seeker, &baseline, queries, clients,
                                   requests_per_client, budget_ms);
    std::printf("%8d %9d %10.1f %10.1f %10.1f %9lld %9.2f %7lld %6d\n",
                r.clients, r.requests, 1000.0 * r.requests / r.wall_ms,
                r.latency.p50, r.latency.p99,
                static_cast<long long>(r.batching.flushes),
                r.batching.MeanBatch(),
                static_cast<long long>(r.batching.max_fused), r.failures);
  }

  RunWindowedObservation(seeker, &baseline, *env.imdb, queries, budget_ms,
                         env.scale == Scale::kSmoke ? 3 : 5);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qps

int main() {
  const int rc = qps::bench::Run();
  qps::bench::EmitMetricsSnapshot("serve");
  return rc;
}
