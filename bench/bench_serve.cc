// Copyright 2026 The QPSeeker Authors
//
// Serving bench: closed-loop clients against the concurrent PlanService.
// Each client submits neural planning requests back to back; the service
// coalesces candidate evaluations from concurrently planning queries into
// fused model forwards. Reports throughput, client-observed latency
// percentiles, and the cross-query batching profile for 1/2/4/8 clients.
// A multi-tenant phase runs 16 tenants behind the ShardedPlanService under
// Zipfian-skewed traffic and checks the isolation contract: the hot tenant
// sheds on its own quota while cold-tenant p99 stays flat, and sharded
// plans are bit-identical to single-tenant serving. A final chaos phase
// poisons one tenant's model (NaN faults + injected stalls) and checks the
// self-healing contract: prompt quarantine, degraded-but-available serving,
// recovery after disarm, and no latency leakage into colocated tenants.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "exec/executor.h"
#include "obs/accuracy.h"
#include "obs/window.h"
#include "serve/sharded_service.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/timer.h"

namespace qps {
namespace bench {
namespace {

struct RunResult {
  int clients = 0;
  int requests = 0;
  int failures = 0;
  double wall_ms = 0.0;
  eval::Percentiles latency;
  serve::BatchRendezvous::Stats batching;
  int64_t deadline_hits = 0;
};

RunResult RunClients(const core::QpSeeker& model, optimizer::Planner* baseline,
                     const std::vector<query::Query>& queries, int clients,
                     int requests_per_client, double budget_ms) {
  core::GuardedOptions gopts;
  gopts.hybrid.mcts.time_budget_ms = budget_ms;
  gopts.hybrid.mcts.threads = 1;

  serve::PlanServiceOptions sopts;
  sopts.workers = clients;
  sopts.max_queue = static_cast<size_t>(4 * clients);
  serve::PlanServiceDeps deps;
  deps.planner_name = "neural";
  deps.model = std::shared_ptr<const core::QpSeeker>(
      std::shared_ptr<const core::QpSeeker>(), &model);
  deps.baseline = baseline;
  deps.guard_options = gopts;
  auto service_or = serve::PlanService::Create(std::move(deps), sopts);
  QPS_CHECK(service_or.ok());
  auto service = std::move(service_or).value();

  std::vector<std::vector<double>> latencies(static_cast<size_t>(clients));
  std::vector<int> failures(static_cast<size_t>(clients), 0);

  Timer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < requests_per_client; ++r) {
        const size_t qi = static_cast<size_t>(c * requests_per_client + r) %
                          queries.size();
        serve::PlanRequest request;
        request.query = queries[qi];
        request.seed = 7000 + static_cast<uint64_t>(c * 1000 + r);
        Timer timer;
        auto result = service->Submit(std::move(request)).get();
        latencies[static_cast<size_t>(c)].push_back(timer.ElapsedMillis());
        if (!result.ok()) failures[static_cast<size_t>(c)] += 1;
      }
    });
  }
  for (auto& t : threads) t.join();

  RunResult out;
  out.clients = clients;
  out.requests = clients * requests_per_client;
  out.wall_ms = wall.ElapsedMillis();
  std::vector<double> all;
  for (int c = 0; c < clients; ++c) {
    const auto& lat = latencies[static_cast<size_t>(c)];
    all.insert(all.end(), lat.begin(), lat.end());
    out.failures += failures[static_cast<size_t>(c)];
  }
  out.latency = eval::ComputePercentiles(all);
  const auto stats = service->stats();
  out.batching = stats.batching;
  out.deadline_hits = stats.deadline_hits;
  return out;
}

/// Sustained-load observation phase (ISSUE: observability): serve rounds of
/// requests, execute every served plan so the accuracy tracker receives
/// predicted-vs-actual feedback, and print the sliding-window latency
/// percentiles and q-error after each round. Both columns converge as the
/// window fills — the acceptance signal for the windowed instrumentation.
void RunWindowedObservation(const core::QpSeeker& model,
                            optimizer::Planner* baseline,
                            const storage::Database& db,
                            const std::vector<query::Query>& queries,
                            double budget_ms, int rounds) {
  std::printf(
      "\n--- Windowed observability: rolling p99 / q-error under sustained "
      "load ---\n");
  core::GuardedOptions gopts;
  gopts.hybrid.mcts.time_budget_ms = budget_ms;
  gopts.hybrid.mcts.threads = 1;
  serve::PlanServiceOptions sopts;
  sopts.workers = 4;
  sopts.max_queue = 16;
  serve::PlanServiceDeps deps;
  deps.planner_name = "neural";
  deps.model = std::shared_ptr<const core::QpSeeker>(
      std::shared_ptr<const core::QpSeeker>(), &model);
  deps.baseline = baseline;
  deps.guard_options = gopts;
  auto service_or = serve::PlanService::Create(std::move(deps), sopts);
  QPS_CHECK(service_or.ok());
  auto service = std::move(service_or).value();

  exec::ExecOptions eopts;
  eopts.accuracy_backend = "neural";  // feed obs::AccuracyTracker::Global()
  exec::Executor executor(db, eopts);

  obs::WindowedHistogram* latency =
      obs::WindowRegistry::Global().GetHistogram("qps.serve.latency_ms");
  std::printf("%6s %8s %10s %10s %12s %10s\n", "round", "win n", "p50 ms",
              "p99 ms", "qerr p50", "drift");
  for (int round = 0; round < rounds; ++round) {
    for (size_t i = 0; i < queries.size(); ++i) {
      serve::PlanRequest request;
      request.query = queries[i];
      request.seed = 9000 + static_cast<uint64_t>(round) * 100 + i;
      auto result = service->Submit(std::move(request)).get();
      if (result.ok()) {
        auto analyzed = executor.ExplainAnalyze(queries[i], result->plan.get());
        (void)analyzed;  // feedback is the side effect; errors just skip it
      }
    }
    const auto drift = obs::AccuracyTracker::Global().Update("neural");
    const metrics::HistogramSnapshot window = latency->SnapshotWindow();
    std::printf("%6d %8lld %10.2f %10.2f %12.2f %10.2f\n", round + 1,
                static_cast<long long>(window.count), window.Percentile(50),
                window.Percentile(99), drift.qerr_p50, drift.drift_score);
  }
}

/// Zipfian rank sampler: P(rank r) ∝ 1/(r+1)^skew over ranks [0, n).
/// Rank 0 is the traffic head — the "hot" tenant in the isolation phase.
class ZipfSampler {
 public:
  ZipfSampler(int n, double skew) : cdf_(static_cast<size_t>(n)) {
    double total = 0.0;
    for (int r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), skew);
      cdf_[static_cast<size_t>(r)] = total;
    }
    for (double& c : cdf_) c /= total;
  }
  int Sample(Rng* rng) const {
    const double u = rng->Uniform();
    return static_cast<int>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// Rollout-capped MCTS so every plan is a pure function of (query, seed):
/// the bit-identity check against single-tenant serving needs determinism,
/// and fixed work per request makes the latency comparison fair.
core::GuardedOptions TenantGopts() {
  core::GuardedOptions gopts;
  gopts.hybrid.mcts.time_budget_ms = 1e9;
  gopts.hybrid.mcts.max_rollouts = 48;
  gopts.hybrid.mcts.eval_batch = 4;
  gopts.hybrid.mcts.seed = 5;
  gopts.hybrid.mcts.threads = 1;
  return gopts;
}

serve::PlanServiceDeps TenantDeps(const core::QpSeeker& model,
                                  optimizer::Planner* baseline) {
  serve::PlanServiceDeps deps;
  deps.planner_name = "neural";
  deps.model = std::shared_ptr<const core::QpSeeker>(
      std::shared_ptr<const core::QpSeeker>(), &model);
  deps.baseline = baseline;
  deps.guard_options = TenantGopts();
  return deps;
}

/// Isolation phase: 16 tenants on a ShardedPlanService, Zipfian-skewed
/// closed-loop traffic. Measures cold-tenant (everyone but the Zipf head)
/// latency unloaded, then again while a flooder drives the head far past
/// its admission quota, and asserts the isolation contract: the head sheds
/// on its own quota, cold p99 stays ≤ 1.3x its unloaded baseline, and
/// sharded plans are bit-identical to a standalone single-tenant service.
void RunMultiTenantPhase(const core::QpSeeker& model,
                         optimizer::Planner* baseline,
                         const storage::Database& db,
                         const std::vector<query::Query>& queries,
                         Scale scale) {
  std::printf(
      "\n--- Multi-tenant isolation: 16 tenants, Zipfian skew, hot-tenant "
      "overload ---\n");
  constexpr int kTenants = 16;
  serve::ShardedPlanServiceOptions shopts;
  // Modest per-shard pools: the phase measures queueing isolation, not
  // throughput, and CI boxes are often 1-2 cores — oversubscribing them
  // with 16 workers turns client-observed p99 into scheduler noise.
  shopts.shards = 4;
  shopts.workers_per_shard = 2;
  shopts.shard_max_queue = 256;
  auto sharded_or = serve::ShardedPlanService::Create(shopts);
  QPS_CHECK(sharded_or.ok());
  auto sharded = std::move(sharded_or).value();

  std::vector<std::string> ids;
  for (int t = 0; t < kTenants; ++t) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "tenant_%02d", t);
    serve::TenantSpec spec;
    spec.tenant_id = buf;
    spec.deps = TenantDeps(model, baseline);
    // Tight quota on the Zipf head (the knob the flooder is driven
    // past); roomy everywhere else so cold tenants never shed.
    spec.quota.max_pending = t == 0 ? 1 : 16;
    QPS_CHECK(sharded->AddTenant(std::move(spec)).ok());
    ids.push_back(buf);
  }
  const std::string hot = ids[0];

  const int per_client = scale == Scale::kSmoke ? 32 : 48;
  constexpr int kClients = 4;

  // One closed-loop trial. Clients offer Zipf-shaped traffic over the
  // *cold* tenants (ranks 1..15) in both phases, so the offered cold load
  // is identical with and without the flood and the only delta is the hot
  // tenant's overload; returns client-observed cold p99.
  auto run_trial = [&](bool overload, uint64_t salt) {
    std::atomic<bool> stop{false};
    std::thread flooder;
    if (overload) {
      flooder = std::thread([&] {
        uint64_t seed = 100000;
        while (!stop.load(std::memory_order_relaxed)) {
          // Burst far past max_pending; all but one shed instantly.
          std::vector<std::future<StatusOr<core::PlanResult>>> burst;
          for (int i = 0; i < 16; ++i) {
            serve::PlanRequest request;
            request.tenant_id = hot;
            request.query = queries[seed % queries.size()];
            request.seed = seed++;
            burst.push_back(sharded->Submit(std::move(request)));
          }
          for (auto& f : burst) (void)f.get();
          // Brief gap between bursts: overload pressure (each burst is 16x
          // the quota) without the flooder thread itself monopolizing a
          // 1-core CI box, which would measure CPU famine, not isolation.
          std::this_thread::sleep_for(std::chrono::milliseconds(3));
        }
      });
    }
    std::mutex cold_mu;
    std::vector<double> cold;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c, salt] {
        Rng rng(static_cast<uint64_t>(900 + c) + salt * 131);
        ZipfSampler zipf(kTenants - 1, 1.1);  // ranks 1..15: cold tenants
        std::vector<double> local;
        for (int r = 0; r < per_client; ++r) {
          const int t = 1 + zipf.Sample(&rng);
          serve::PlanRequest request;
          request.tenant_id = ids[static_cast<size_t>(t)];
          request.query = queries[static_cast<size_t>(
              (c * per_client + r) % static_cast<int>(queries.size()))];
          request.seed = 20000 + static_cast<uint64_t>(c * per_client + r);
          Timer timer;
          auto result = sharded->Submit(std::move(request)).get();
          if (result.ok()) local.push_back(timer.ElapsedMillis());
        }
        std::lock_guard<std::mutex> lock(cold_mu);
        cold.insert(cold.end(), local.begin(), local.end());
      });
    }
    for (auto& t : clients) t.join();
    stop.store(true, std::memory_order_relaxed);
    if (flooder.joinable()) flooder.join();
    return eval::ComputePercentiles(cold).p99;
  };

  // Paired rounds: each round measures unloaded then loaded back to back,
  // so slow drift on a shared CI box (frequency scaling, noisy neighbours)
  // hits both phases of a round equally and cancels in the comparison.
  // Client-observed p99 on an oversubscribed box carries multi-ms
  // scheduler noise per trial, so the contract is judged per round and
  // must hold in a majority of rounds.
  constexpr int kRounds = 5;
  int rounds_ok = 0;
  double unloaded_p99 = 0.0;
  double loaded_p99 = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    const double u = run_trial(false, static_cast<uint64_t>(round));
    const double l = run_trial(true, static_cast<uint64_t>(round));
    // Absolute slack of ~one planning service time: on a 1-core box the
    // hot tenant's single admitted request adds up to one service time of
    // CPU queueing to any cold request — a physical fair-share delay, not
    // an isolation failure the multiplicative bound should flag.
    const bool ok = l <= 1.3 * u + 5.0;
    std::printf("round %d: cold p99 unloaded %.2f ms -> loaded %.2f ms "
                "(%.2fx)%s\n",
                round, u, l, u > 0 ? l / u : 0.0, ok ? "" : "  [over bound]");
    rounds_ok += ok ? 1 : 0;
    unloaded_p99 += u / kRounds;
    loaded_p99 += l / kRounds;
  }

  const auto hot_stats = sharded->TenantStats(hot);
  QPS_CHECK(hot_stats.ok());
  std::printf("%-14s %8s %8s %8s %8s\n", "tenant", "shard", "submit", "done",
              "shed");
  for (int t = 0; t < 4; ++t) {
    const auto ts = sharded->TenantStats(ids[static_cast<size_t>(t)]);
    QPS_CHECK(ts.ok());
    std::printf("%-14s %8d %8lld %8lld %8lld\n",
                ids[static_cast<size_t>(t)].c_str(),
                sharded->ShardOf(ids[static_cast<size_t>(t)]),
                static_cast<long long>(ts->submitted),
                static_cast<long long>(ts->completed),
                static_cast<long long>(ts->shed));
  }
  std::printf("cold p99 (mean over %d rounds) unloaded %.2f ms -> loaded "
              "%.2f ms (%.2fx), %d/%d rounds within 1.3x\n",
              kRounds, unloaded_p99, loaded_p99,
              unloaded_p99 > 0 ? loaded_p99 / unloaded_p99 : 0.0, rounds_ok,
              kRounds);

  // Isolation contract. The hot tenant must have shed on its own quota;
  // cold tenants must not have absorbed its overload (per-round bound with
  // a small absolute slack, majority of rounds, so millisecond-scale
  // scheduler noise on a 1-2 core CI box cannot fail a run).
  QPS_CHECK(hot_stats->shed > 0);
  QPS_CHECK(2 * rounds_ok > kRounds);

  // Bit-identity: the same (tenant, query, seed) through the sharded
  // service and through a standalone single-tenant PlanService must give
  // byte-for-byte the same plan.
  serve::PlanServiceOptions solo_opts;
  solo_opts.workers = 2;
  auto solo_or =
      serve::PlanService::Create(TenantDeps(model, baseline), solo_opts);
  QPS_CHECK(solo_or.ok());
  auto solo = std::move(solo_or).value();
  for (int i = 0; i < 4; ++i) {
    const query::Query& q = queries[static_cast<size_t>(i) % queries.size()];
    serve::PlanRequest via_shard;
    via_shard.tenant_id = ids[static_cast<size_t>(7 + i) % ids.size()];
    via_shard.query = q;
    via_shard.seed = 31000 + static_cast<uint64_t>(i);
    serve::PlanRequest via_solo;
    via_solo.query = q;
    via_solo.seed = 31000 + static_cast<uint64_t>(i);
    auto sharded_result = sharded->Submit(std::move(via_shard)).get();
    auto solo_result = solo->Submit(std::move(via_solo)).get();
    QPS_CHECK(sharded_result.ok() && solo_result.ok());
    QPS_CHECK(sharded_result->plan->ToString(db, q) ==
              solo_result->plan->ToString(db, q));
  }
  std::printf("isolation OK: hot shed %lld, plans bit-identical to "
              "single-tenant serving\n",
              static_cast<long long>(hot_stats->shed));
}

/// Chaos phase (ISSUE: robustness): 16 tenants under Zipfian load while one
/// tenant's model is poisoned — 5% of its vae.forward results corrupted to
/// NaN (every poisoned request fails kInternal in MCTS) and 25% of its
/// batch flushes stalled 10 ms — and a canary client hammers it closed
/// loop. Asserts the self-healing contract: the faulty tenant quarantines
/// within one health window of arming, serves degraded DP plans while
/// quarantined (so overall availability stays >= 99%), recovers within two
/// windows of disarm, and colocated cold-tenant p99 holds the 1.3x bound
/// from the isolation phase throughout the chaos.
void RunChaosPhase(const core::QpSeeker& model, optimizer::Planner* baseline,
                   const std::vector<query::Query>& queries, Scale scale) {
  std::printf(
      "\n--- Chaos: 5%% vae.forward NaN faults + shard stall on one tenant "
      "---\n");
  constexpr int kTenants = 16;
  serve::ShardedPlanServiceOptions shopts;
  shopts.shards = 4;
  shopts.workers_per_shard = 2;
  shopts.shard_max_queue = 256;
  // One health window is the quarantine-latency budget the phase asserts;
  // generous enough that a loaded 1-core CI box can push min_samples
  // failing requests through well inside it.
  shopts.health.window_ms = 2000.0;
  shopts.health.min_samples = 4;
  // 5% per-forward poison compounds to a ~20-25% per-request failure rate
  // on these 4-relation queries (a handful of unique plan evals each), so
  // the breaker is tuned to quarantine anything failing >15% of requests.
  shopts.health.open_error_rate = 0.15;
  shopts.health.open_ms = 1500.0;
  shopts.health.probe_concurrency = 1;
  shopts.health.probe_recoveries = 2;
  shopts.retry.max_retries = 1;
  shopts.retry.backoff_base_ms = 1.0;
  shopts.retry.max_backoff_ms = 4.0;
  auto sharded_or = serve::ShardedPlanService::Create(shopts);
  QPS_CHECK(sharded_or.ok());
  auto sharded = std::move(sharded_or).value();

  std::vector<std::string> ids;
  for (int t = 0; t < kTenants; ++t) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "chaos_%02d", t);
    serve::TenantSpec spec;
    spec.tenant_id = buf;
    spec.deps = TenantDeps(model, baseline);
    spec.quota.max_pending = 16;
    // The faulty tenant degrades to the inline DP baseline while
    // quarantined: its canary keeps getting plans through the chaos, which
    // is what the availability bound measures.
    spec.quota.shed_to_baseline = t == 0;
    QPS_CHECK(sharded->AddTenant(std::move(spec)).ok());
    ids.push_back(buf);
  }
  const std::string faulty = ids[0];
  const double window_ms = shopts.health.window_ms;

  std::atomic<int64_t> ok_total{0};
  std::atomic<int64_t> all_total{0};
  auto tally = [&](const StatusOr<core::PlanResult>& result) {
    all_total.fetch_add(1, std::memory_order_relaxed);
    if (result.ok()) ok_total.fetch_add(1, std::memory_order_relaxed);
  };

  // One trial: a canary hammers the faulty tenant closed loop while cold
  // clients offer the same Zipf-shaped load as the isolation phase; returns
  // client-observed cold p99. Under chaos the canary also stamps the time
  // at which it first observed the breaker leave kClosed.
  const int per_client = scale == Scale::kSmoke ? 24 : 32;
  constexpr int kClients = 4;
  auto run_trial = [&](bool chaos, uint64_t salt, double* quarantine_ms) {
    Timer armed;
    if (chaos) {
      fault::FaultSpec poison;
      poison.inject_nan = true;
      poison.probability = 0.05;
      poison.only_context = faulty;
      fault::FaultInjector::Global().Arm("vae.forward", poison);
      fault::FaultSpec stall;
      stall.code = StatusCode::kOk;  // latency-only: a slow flush, no error
      stall.latency_ms = 10.0;
      stall.probability = 0.25;
      stall.only_context = faulty;
      fault::FaultInjector::Global().Arm("serve.batch", stall);
    }
    std::atomic<bool> stop{false};
    std::thread canary([&, salt] {
      uint64_t seed = 500000 + salt * 100000;
      bool seen = false;
      while (!stop.load(std::memory_order_relaxed)) {
        serve::PlanRequest request;
        request.tenant_id = faulty;
        request.query = queries[seed % queries.size()];
        request.seed = seed++;
        tally(sharded->Submit(std::move(request)).get());
        const auto health = sharded->TenantHealth(faulty);
        const bool quarantined =
            health.ok() && health->state != serve::HealthState::kClosed;
        if (chaos && !seen && quarantined) {
          seen = true;
          *quarantine_ms = armed.ElapsedMillis();
        }
        // While quarantined the tenant serves degraded DP plans inline on
        // this thread (sub-millisecond, off the shard pool), so the canary
        // free-runs; otherwise it is paced at 1 ms so it pressures the
        // tenant without monopolizing a small CI box against the timed
        // cold clients.
        if (!quarantined) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    });
    std::mutex cold_mu;
    std::vector<double> cold;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c, salt] {
        Rng rng(static_cast<uint64_t>(700 + c) + salt * 131);
        ZipfSampler zipf(kTenants - 1, 1.1);  // ranks 1..15: cold tenants
        std::vector<double> local;
        for (int r = 0; r < per_client; ++r) {
          const int t = 1 + zipf.Sample(&rng);
          serve::PlanRequest request;
          request.tenant_id = ids[static_cast<size_t>(t)];
          request.query = queries[static_cast<size_t>(
              (c * per_client + r) % static_cast<int>(queries.size()))];
          request.seed = 40000 + static_cast<uint64_t>(c * per_client + r);
          Timer timer;
          auto result = sharded->Submit(std::move(request)).get();
          tally(result);
          if (result.ok()) local.push_back(timer.ElapsedMillis());
        }
        std::lock_guard<std::mutex> lock(cold_mu);
        cold.insert(cold.end(), local.begin(), local.end());
      });
    }
    for (auto& t : clients) t.join();
    stop.store(true, std::memory_order_relaxed);
    canary.join();
    return eval::ComputePercentiles(cold).p99;
  };

  const int kRounds = scale == Scale::kSmoke ? 2 : 3;
  int rounds_ok = 0;
  for (int round = 0; round < kRounds; ++round) {
    const uint64_t salt = static_cast<uint64_t>(round);
    const double calm_p99 = run_trial(false, 2 * salt, nullptr);
    QPS_CHECK(sharded->TenantHealth(faulty)->state ==
              serve::HealthState::kClosed);

    double quarantine_ms = -1.0;
    const double chaos_p99 = run_trial(true, 2 * salt + 1, &quarantine_ms);

    // Quarantine must have landed within one health window of arming.
    QPS_CHECK(quarantine_ms >= 0.0);
    QPS_CHECK(quarantine_ms <= window_ms);

    // Disarm and drive probe traffic: the breaker must close again within
    // two windows (open_ms cool-down + probe_recoveries real successes).
    fault::FaultInjector::Global().DisarmAll();
    Timer disarm;
    double recovery_ms = -1.0;
    uint64_t seed = 900000 + salt * 1000;
    while (disarm.ElapsedMillis() < 3.0 * window_ms) {
      serve::PlanRequest request;
      request.tenant_id = faulty;
      request.query = queries[seed % queries.size()];
      request.seed = seed++;
      tally(sharded->Submit(std::move(request)).get());
      const auto health = sharded->TenantHealth(faulty);
      if (health.ok() && health->state == serve::HealthState::kClosed) {
        recovery_ms = disarm.ElapsedMillis();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    QPS_CHECK(recovery_ms >= 0.0);
    QPS_CHECK(recovery_ms <= 2.0 * window_ms);

    // Same per-round bound + absolute slack as the isolation phase: the
    // faulty tenant's chaos must not leak into colocated cold latency.
    const bool ok = chaos_p99 <= 1.3 * calm_p99 + 5.0;
    rounds_ok += ok ? 1 : 0;
    std::printf(
        "round %d: cold p99 calm %.2f ms -> chaos %.2f ms (%.2fx)%s, "
        "quarantined in %.0f ms, recovered in %.0f ms\n",
        round, calm_p99, chaos_p99, calm_p99 > 0 ? chaos_p99 / calm_p99 : 0.0,
        ok ? "" : "  [over bound]", quarantine_ms, recovery_ms);
  }

  const auto health = sharded->TenantHealth(faulty);
  QPS_CHECK(health.ok());
  const double availability =
      static_cast<double>(ok_total.load()) /
      static_cast<double>(std::max<int64_t>(1, all_total.load()));
  std::printf(
      "availability %.4f over %lld requests (faulty tenant: %lld "
      "quarantines, %lld probes, %lld recoveries)\n",
      availability, static_cast<long long>(all_total.load()),
      static_cast<long long>(health->quarantines),
      static_cast<long long>(health->probes),
      static_cast<long long>(health->recoveries));

  QPS_CHECK(availability >= 0.99);
  QPS_CHECK(health->quarantines >= kRounds);
  QPS_CHECK(health->recoveries >= kRounds);
  QPS_CHECK(2 * rounds_ok > kRounds);
  std::printf(
      "chaos OK: availability >= 99%%, quarantine <= 1 window, recovery <= "
      "2 windows, cold p99 within 1.3x\n");
}

int Run() {
  Env env = MakeEnvFromEnvVar();
  std::printf("=== Serving: concurrent planning with cross-query batching (scale=%s) ===\n\n",
              ScaleName(env.scale));

  // Neural-complexity workload (3-way joins) so every request exercises
  // the MCTS + model-forward path the rendezvous batches.
  eval::WorkloadOptions wo;
  wo.num_queries = 16;
  wo.min_joins = 3;
  wo.max_joins = 3;
  wo.num_templates = 4;
  Rng wrng(771);
  auto queries = eval::GenerateWorkload(*env.imdb, wo, &wrng);

  sampling::DatasetOptions dopts;
  dopts.source = sampling::PlanSource::kSampled;
  dopts.sampler.max_plans_per_query = env.scale == Scale::kSmoke ? 5 : 8;
  Rng drng(772);
  auto ds = sampling::BuildQepDataset(*env.imdb, *env.imdb_stats, queries, dopts,
                                      &drng);
  QPS_CHECK(ds.ok());
  core::QpSeekerConfig cfg = core::QpSeekerConfig::ForScale(env.scale);
  core::QpSeeker seeker(*env.imdb, *env.imdb_stats, cfg, 4321);
  seeker.Train(*ds, DefaultTrainOptions(env.scale));
  optimizer::Planner baseline(*env.imdb, *env.imdb_stats);

  const double budget_ms = env.scale == Scale::kSmoke ? 25.0 : 50.0;
  const int requests_per_client = env.scale == Scale::kSmoke ? 6 : 12;
  std::printf("MCTS budget %.0f ms, %d requests per client, closed loop\n\n",
              budget_ms, requests_per_client);

  std::printf("%8s %9s %10s %10s %10s %9s %9s %7s %6s\n", "clients", "req",
              "qps", "p50 ms", "p99 ms", "flushes", "mean b", "max b", "fail");
  for (int clients : {1, 2, 4, 8}) {
    const RunResult r = RunClients(seeker, &baseline, queries, clients,
                                   requests_per_client, budget_ms);
    std::printf("%8d %9d %10.1f %10.1f %10.1f %9lld %9.2f %7lld %6d\n",
                r.clients, r.requests, 1000.0 * r.requests / r.wall_ms,
                r.latency.p50, r.latency.p99,
                static_cast<long long>(r.batching.flushes),
                r.batching.MeanBatch(),
                static_cast<long long>(r.batching.max_fused), r.failures);
  }

  RunWindowedObservation(seeker, &baseline, *env.imdb, queries, budget_ms,
                         env.scale == Scale::kSmoke ? 3 : 5);
  RunMultiTenantPhase(seeker, &baseline, *env.imdb, queries, env.scale);
  RunChaosPhase(seeker, &baseline, queries, env.scale);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qps

int main() {
  const int rc = qps::bench::Run();
  qps::bench::EmitMetricsSnapshot("serve");
  return rc;
}
