// Copyright 2026 The QPSeeker Authors
//
// Reproduces Figure 5: the organization of QPSeeker's latent space. QEPs
// sampled from the JOB workload are embedded (VAE posterior mean), t-SNE
// projects them to 2-D, and we verify quantitatively what the paper shows
// visually: QEPs of the same query template cluster together (silhouette
// score vs a random-label baseline), and renders an ASCII scatter plot.

#include <cstdio>
#include <map>
#include <sys/stat.h>

#include "bench/harness.h"
#include "eval/tsne.h"

namespace qps {
namespace bench {
namespace {

void AsciiScatter(const std::vector<std::array<double, 2>>& points,
                  const std::vector<int>& labels) {
  constexpr int kW = 78, kH = 24;
  double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
  for (const auto& p : points) {
    min_x = std::min(min_x, p[0]);
    max_x = std::max(max_x, p[0]);
    min_y = std::min(min_y, p[1]);
    max_y = std::max(max_y, p[1]);
  }
  std::vector<std::string> grid(kH, std::string(kW, ' '));
  const char* glyphs = "0123456789abcdefghijklmnopqrstuvwxyz";
  for (size_t i = 0; i < points.size(); ++i) {
    const int x = static_cast<int>((points[i][0] - min_x) / std::max(1e-9, max_x - min_x) * (kW - 1));
    const int y = static_cast<int>((points[i][1] - min_y) / std::max(1e-9, max_y - min_y) * (kH - 1));
    grid[static_cast<size_t>(y)][static_cast<size_t>(x)] =
        glyphs[static_cast<size_t>(labels[i]) % 36];
  }
  for (const auto& row : grid) std::printf("|%s|\n", row.c_str());
}

int Run() {
  Env env = MakeEnvFromEnvVar();
  std::printf("=== Figure 5: t-SNE of QPSeeker's latent space on JOB QEPs "
              "(scale=%s) ===\n",
              ScaleName(env.scale));
  auto bundle = MakeJobBundle(env);
  // A dedicated longer-trained instance: latent organization keeps
  // improving past the point where prediction q-errors plateau.
  core::QpSeekerConfig cfg = core::QpSeekerConfig::ForScale(env.scale);
  cfg.beta = 100.0;
  core::QpSeeker model(*bundle.db, *bundle.stats, cfg, 1234);
  {
    auto topts = DefaultTrainOptions(env.scale);
    topts.epochs *= 3;
    const std::string path = std::string(".qps_cache/JOB_fig5_") +
                             ScaleName(env.scale) + ".bin";
    if (!model.Load(path).ok()) {
      model.Train(bundle.TrainDataset(), topts);
      ::mkdir(".qps_cache", 0755);
      (void)model.Save(path);
    }
  }

  // Latent vectors for up to 400 QEPs, labeled by query template.
  std::vector<std::vector<float>> latents;
  std::vector<int> labels;
  std::map<std::string, int> template_ids;
  const size_t cap = env.scale == Scale::kPaper ? 2000 : 400;
  for (const auto& qep : bundle.dataset.qeps) {
    if (latents.size() >= cap) break;
    const auto& q = bundle.dataset.queries[static_cast<size_t>(qep.query_id)];
    latents.push_back(model.LatentVector(q, *qep.plan));
    auto [it, inserted] =
        template_ids.emplace(q.template_id, static_cast<int>(template_ids.size()));
    labels.push_back(it->second);
  }
  std::printf("embedded %zu QEPs from %zu templates (latent dim %d)\n",
              latents.size(), template_ids.size(), model.config().latent_dim);

  const double sil_latent = eval::SilhouetteScore(latents, labels);
  const double purity = eval::KnnLabelPurity(latents, labels, 10);
  // Random-label baseline for calibration.
  Rng rng(9);
  std::vector<int> random_labels = labels;
  rng.Shuffle(&random_labels);
  const double sil_random = eval::SilhouetteScore(latents, random_labels);
  const double purity_random = eval::KnnLabelPurity(latents, random_labels, 10);

  eval::TsneOptions topts;
  topts.iterations = env.scale == Scale::kSmoke ? 150 : 300;
  auto embedded = eval::RunTsne(latents, topts);
  std::vector<std::vector<float>> emb2;
  for (const auto& e : embedded) {
    emb2.push_back({static_cast<float>(e[0]), static_cast<float>(e[1])});
  }
  const double sil_tsne = eval::SilhouetteScore(emb2, labels);

  std::printf("\nsilhouette by template: latent space %.3f | t-SNE plane %.3f | "
              "random labels %.3f\n",
              sil_latent, sil_tsne, sil_random);
  std::printf("10-NN template purity: latent space %.3f vs random labels %.3f "
              "(higher = same-template QEPs are neighbours)\n",
              purity, purity_random);
  std::printf("(paper claim: same-template QEPs land close together; local "
              "neighbourhood purity is the quantitative form — silhouette is "
              "pessimistic when tight clusters interleave globally)\n\n");
  AsciiScatter(embedded, labels);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qps

int main() {
  const int rc = qps::bench::Run();
  qps::bench::EmitMetricsSnapshot("fig5_latent");
  return rc;
}
