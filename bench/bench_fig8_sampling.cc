// Copyright 2026 The QPSeeker Authors
//
// Reproduces Figure 8.
//   Left:  (a) plan quality of cost models trained on 10% / 25% / 50% /
//          100% of the Stack queries (QEPs resampled to keep the total QEP
//          budget, §7.2.1); (b) plan quality across TabSketch (TaBERT)
//          configurations K=1/K=3, base/large.
//   Right: average time spent inside TabSketch per representation call for
//          each configuration.
//
// Plan quality metric: total simulated execution time of the plans QPSeeker
// produces for the held-out Stack queries (lower = better).

#include <cstdio>

#include "bench/harness.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace qps {
namespace bench {
namespace {

std::vector<query::Query> TestQueries(const WorkloadBundle& bundle) {
  std::vector<bool> seen(bundle.dataset.queries.size(), false);
  std::vector<query::Query> out;
  for (const auto* qep : bundle.TestQeps()) {
    if (seen[static_cast<size_t>(qep->query_id)]) continue;
    seen[static_cast<size_t>(qep->query_id)] = true;
    out.push_back(bundle.dataset.queries[static_cast<size_t>(qep->query_id)]);
  }
  return out;
}

/// Builds a training dataset from a fraction of the training queries,
/// re-sampling extra plans per query to keep the QEP count (paper: "we
/// sample query plans until we reach the initial number of available QEPs").
sampling::QepDataset SubsetDataset(const WorkloadBundle& bundle, double fraction,
                                   size_t target_qeps, Rng* rng) {
  // Which training queries are available at this fraction (nested subsets:
  // the 10% is inside the 25% is inside the 50%).
  std::vector<int> train_queries;
  std::vector<bool> seen(bundle.dataset.queries.size(), false);
  for (const auto* qep : bundle.TrainQeps()) {
    if (!seen[static_cast<size_t>(qep->query_id)]) {
      seen[static_cast<size_t>(qep->query_id)] = true;
      train_queries.push_back(qep->query_id);
    }
  }
  const size_t keep = std::max<size_t>(
      2, static_cast<size_t>(fraction * static_cast<double>(train_queries.size())));
  train_queries.resize(std::min(train_queries.size(), keep));

  std::vector<query::Query> queries;
  for (int qid : train_queries) {
    queries.push_back(bundle.dataset.queries[static_cast<size_t>(qid)]);
  }
  sampling::DatasetOptions opts;
  opts.source = sampling::PlanSource::kSampled;
  opts.sampler.candidates_per_order = 4;
  opts.sampler.max_plans_per_query =
      std::max<size_t>(2, target_qeps / std::max<size_t>(1, queries.size()) + 1);
  opts.sampler.keep_fraction = 0.5;
  auto ds = sampling::BuildQepDataset(*bundle.db, *bundle.stats, std::move(queries),
                                      opts, rng);
  QPS_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

int Run() {
  Env env = MakeEnvFromEnvVar();
  std::printf("=== Figure 8: sample-size and TaBERT-config impact (scale=%s) ===\n",
              ScaleName(env.scale));
  auto bundle = MakeStackBundle(env);
  const auto eval_queries = TestQueries(bundle);
  const size_t target_qeps = bundle.train_idx.size();
  std::printf("eval queries: %zu, training QEP budget: %zu\n\n", eval_queries.size(),
              target_qeps);

  // ---- Left (a): query-sample-size impact --------------------------------
  std::printf("-- sample-size impact (total workload runtime of produced plans) --\n");
  std::printf("%-10s %14s %14s %12s %10s\n", "sample", "workload ms", "vs 100%",
              "p50 ms", "fails");
  const double fractions[] = {0.10, 0.25, 0.50, 1.0};
  std::vector<PlannedRun> runs;
  for (double f : fractions) {
    Rng rng(880 + static_cast<uint64_t>(f * 100));
    auto subset = SubsetDataset(bundle, f, target_qeps, &rng);
    core::QpSeekerConfig cfg = core::QpSeekerConfig::ForScale(env.scale);
    cfg.beta = 100.0;
    core::QpSeeker model(*bundle.db, *bundle.stats, cfg, 1234);
    model.Train(subset, DefaultTrainOptions(env.scale));
    runs.push_back(RunWithQpSeeker(model, *bundle.db, eval_queries));
  }
  const double full_ms = runs.back().total_ms;
  for (size_t i = 0; i < runs.size(); ++i) {
    const double p50 = eval::ComputePercentiles(runs[i].per_query_ms).p50;
    std::printf("%9.0f%% %14.1f %13.2fx %12.2f %10d\n", fractions[i] * 100.0,
                runs[i].total_ms, full_ms > 0.0 ? runs[i].total_ms / full_ms : 0.0,
                p50, runs[i].failures);
  }
  std::printf("(paper: 10%% is not competitive; 25%% and 50%% are close to 100%%)\n\n");

  // ---- Left (b) + Right: TabSketch (TaBERT) configurations ---------------
  std::printf("-- TabSketch (TaBERT) config impact --\n");
  std::printf("%-14s %14s %12s %16s %14s\n", "config", "workload ms", "p50 ms",
              "avg tabert us/call", "calls");
  struct Config {
    const char* name;
    tabert::ModelSize size;
    int k;
  };
  const Config configs[] = {{"K=1 base", tabert::ModelSize::kBase, 1},
                            {"K=3 base", tabert::ModelSize::kBase, 3},
                            {"K=1 large", tabert::ModelSize::kLarge, 1},
                            {"K=3 large", tabert::ModelSize::kLarge, 3}};
  for (const auto& c : configs) {
    core::QpSeekerConfig cfg = core::QpSeekerConfig::ForScale(env.scale);
    cfg.beta = 100.0;
    cfg.tabert.size = c.size;
    cfg.tabert.k = c.k;
    core::QpSeeker model(*bundle.db, *bundle.stats, cfg, 1234);
    // Same sampled training set as the 100% row above, for comparability.
    Rng trng(884);
    auto train_set = SubsetDataset(bundle, 1.0, target_qeps, &trng);
    model.Train(train_set, DefaultTrainOptions(env.scale));
    model.tabert().ResetTiming();
    auto run = RunWithQpSeeker(model, *bundle.db, eval_queries);
    const auto& ts = model.tabert();
    const double us_per_call =
        ts.num_calls() > 0 ? ts.total_time_ms() * 1000.0 /
                                 static_cast<double>(ts.num_calls())
                           : 0.0;
    std::printf("%-14s %14.1f %12.2f %16.3f %14lld\n", c.name, run.total_ms,
                eval::ComputePercentiles(run.per_query_ms).p50, us_per_call,
                static_cast<long long>(ts.num_calls()));
  }
  std::printf("(paper: accuracy is flat across configs; K=3 and the large "
              "instance cost noticeably more time in TaBERT)\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qps

int main() {
  const int rc = qps::bench::Run();
  qps::bench::EmitMetricsSnapshot("fig8_sampling");
  return rc;
}
