// Copyright 2026 The QPSeeker Authors
//
// Extension bench (paper §7.3 future work): the hybrid optimizer. Compares
// total workload execution time of pure-PostgreSQL, pure-neural
// (QPSeeker+MCTS for every query), and the hybrid router across complexity
// thresholds, on a mixed IMDb workload spanning 0-5 joins. Also reports
// the bushy-sampling extension's effect on prediction quality.

#include <cstdio>

#include "bench/harness.h"
#include "core/hybrid.h"
#include "util/logging.h"

namespace qps {
namespace bench {
namespace {

int Run() {
  Env env = MakeEnvFromEnvVar();
  std::printf("=== Extension: hybrid optimizer + bushy sampling (scale=%s) ===\n\n",
              ScaleName(env.scale));

  // Mixed-complexity workload over IMDb.
  eval::WorkloadOptions wo;
  wo.num_queries = env.scale == Scale::kSmoke ? 30 : 90;
  wo.min_joins = 0;
  wo.max_joins = 5;
  wo.num_templates = wo.num_queries / 3;
  Rng wrng(661);
  auto queries = eval::GenerateWorkload(*env.imdb, wo, &wrng);

  // Train QPSeeker on a sampled dataset over the same distribution.
  sampling::DatasetOptions dopts;
  dopts.source = sampling::PlanSource::kSampled;
  dopts.sampler.max_plans_per_query = env.scale == Scale::kSmoke ? 5 : 8;
  Rng drng(662);
  auto ds = sampling::BuildQepDataset(*env.imdb, *env.imdb_stats, queries, dopts,
                                      &drng);
  QPS_CHECK(ds.ok());
  core::QpSeekerConfig cfg = core::QpSeekerConfig::ForScale(env.scale);
  core::QpSeeker seeker(*env.imdb, *env.imdb_stats, cfg, 1234);
  seeker.Train(*ds, DefaultTrainOptions(env.scale));

  // Fresh evaluation workload (same distribution, different seed).
  Rng erng(663);
  auto eval_queries = eval::GenerateWorkload(*env.imdb, wo, &erng);

  optimizer::Planner pg(*env.imdb, *env.imdb_stats);
  auto pg_run = RunWithPostgres(&pg, *env.imdb, eval_queries);
  auto neural_run = RunWithQpSeeker(seeker, *env.imdb, eval_queries);

  std::printf("%-28s %14s %10s\n", "strategy", "workload ms", "fails");
  std::printf("%-28s %14.1f %10d\n", "pure PostgreSQL", pg_run.total_ms,
              pg_run.failures);
  std::printf("%-28s %14.1f %10d\n", "pure neural (MCTS all)", neural_run.total_ms,
              neural_run.failures);

  for (int threshold : {3, 4, 5}) {
    core::HybridOptions hopts;
    hopts.neural_min_relations = threshold;
    hopts.mcts.time_budget_ms = 200.0;
    core::HybridPlanner hybrid(&seeker, &pg, hopts);
    exec::Executor ex(*env.imdb);
    double total = 0.0;
    int fails = 0, routed = 0;
    for (size_t i = 0; i < eval_queries.size(); ++i) {
      const auto& q = eval_queries[i];
      auto result = hybrid.Plan(q);
      if (!result.ok()) {
        ++fails;
        continue;
      }
      routed += result->used_neural;
      auto card = ex.Execute(q, result->plan.get());
      total += card.ok() ? result->plan->actual.runtime_ms
                         : ex.last_counters().RuntimeMs();
      fails += card.ok() ? 0 : 1;
    }
    std::printf("%-19s (>=%d rel) %14.1f %10d   (%d routed neural)\n", "hybrid",
                threshold, total, fails, routed);
  }

  // --- bushy-sampling extension: prediction quality. -----------------------
  std::printf("\n-- bushy sampling extension (training-set diversity) --\n");
  for (double bushy : {0.0, 0.3}) {
    sampling::DatasetOptions bopts = dopts;
    bopts.sampler.bushy_fraction = bushy;
    Rng brng(664);
    auto bds = sampling::BuildQepDataset(*env.imdb, *env.imdb_stats, queries, bopts,
                                         &brng);
    QPS_CHECK(bds.ok());
    core::QpSeeker model(*env.imdb, *env.imdb_stats, cfg, 1234);
    model.Train(*bds, DefaultTrainOptions(env.scale));
    // Evaluate runtime q-error on the *other* dataset's QEPs (cross-set).
    std::vector<double> errs;
    for (const auto& qep : ds->qeps) {
      const auto& q = ds->queries[static_cast<size_t>(qep.query_id)];
      errs.push_back(eval::QError(model.PredictPlan(q, *qep.plan).runtime_ms,
                                  qep.plan->actual.runtime_ms, 0.1));
    }
    const auto p = eval::ComputePercentiles(errs);
    std::printf("bushy_fraction %.1f: %zu QEPs, runtime q-err p50 %.3f p90 %.2f\n",
                bushy, bds->qeps.size(), p.p50, p.p90);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qps

int main() {
  const int rc = qps::bench::Run();
  qps::bench::EmitMetricsSnapshot("extension_hybrid");
  return rc;
}
