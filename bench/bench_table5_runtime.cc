// Copyright 2026 The QPSeeker Authors
//
// Reproduces Table 5: execution-time prediction Q-error percentiles of
// QPSeeker vs QPPNet vs PostgreSQL. QPPNet is trained per workload on the
// same training QEPs (plan-structured per-operator units).

#include <cstdio>

#include "baselines/qppnet.h"
#include "bench/harness.h"
#include "util/string_util.h"

namespace qps {
namespace bench {
namespace {

void RunWorkload(const WorkloadBundle& bundle, double best_beta, Scale scale) {
  auto model = TrainQpSeeker(bundle, best_beta,
                             StrFormat("beta%d", static_cast<int>(best_beta)), scale);
  auto qps_errors = EvalQpSeeker(model, bundle, bundle.TestQeps());

  optimizer::Planner planner(*bundle.db, *bundle.stats);
  CalibratePostgres(&planner, bundle);
  auto pg_errors = EvalPostgres(&planner, bundle, bundle.TestQeps());

  // QPPNet consumes plans annotated with the optimizer's estimates; Clone
  // preserves the ground-truth labels.
  auto annotate = [&](const sampling::Qep* qep) {
    auto plan = qep->plan->Clone();
    planner.cost_model().EstimatePlan(
        bundle.dataset.queries[static_cast<size_t>(qep->query_id)], plan.get());
    return plan;
  };
  std::vector<query::PlanPtr> train_plans, test_plans;
  std::vector<baselines::RuntimeSample> train_samples;
  for (const auto* qep : bundle.TrainQeps()) {
    train_plans.push_back(annotate(qep));
    // Copy actuals from the source QEP (Clone preserves them).
    train_samples.push_back(
        {&bundle.dataset.queries[static_cast<size_t>(qep->query_id)],
         train_plans.back().get()});
  }
  baselines::QppNetConfig qcfg;
  qcfg.epochs = scale == Scale::kSmoke ? 40 : 50;
  qcfg.learning_rate = 2e-3f;
  baselines::QppNet qpp(*bundle.db, qcfg, 771);
  auto losses = qpp.Train(train_samples, 772);
  std::printf("[qppnet] %s: %zu training QEPs, loss %.4f -> %.4f\n",
              bundle.name.c_str(), train_samples.size(), losses.front(),
              losses.back());

  std::vector<double> qpp_errors;
  for (const auto* qep : bundle.TestQeps()) {
    auto plan = annotate(qep);
    const auto& q = bundle.dataset.queries[static_cast<size_t>(qep->query_id)];
    qpp_errors.push_back(eval::QError(qpp.Predict(q, *plan),
                                      qep->plan->actual.runtime_ms, 0.1));
  }

  PrintPercentileTable(StrFormat("-- %s / Execution time Q-error --",
                                 bundle.name.c_str()),
                       {{"QPSeeker", qps_errors.runtime},
                        {"QPPNet", qpp_errors},
                        {"PostgreSQL", pg_errors.runtime}});
}

int Run() {
  Env env = MakeEnvFromEnvVar();
  std::printf("=== Table 5: runtime prediction, QPSeeker vs QPPNet vs PostgreSQL "
              "(scale=%s) ===\n",
              ScaleName(env.scale));
  RunWorkload(MakeSyntheticBundle(env), 200.0, env.scale);
  RunWorkload(MakeJobBundle(env), 100.0, env.scale);
  RunWorkload(MakeStackBundle(env), 100.0, env.scale);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qps

int main() {
  const int rc = qps::bench::Run();
  qps::bench::EmitMetricsSnapshot("table5_runtime");
  return rc;
}
