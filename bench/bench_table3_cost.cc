// Copyright 2026 The QPSeeker Authors
//
// Reproduces Table 3: cost-estimation Q-error percentiles of QPSeeker (best
// beta instance per workload from Table 2) vs the Zero-Shot cost estimator
// vs PostgreSQL, on all three workloads.
//
// Zero-Shot follows its published protocol: trained on *other* databases
// and workloads (we generate 4 auxiliary random databases), then evaluated
// on the target workloads with no fine-tuning.

#include <cstdio>

#include "baselines/zeroshot.h"
#include "bench/harness.h"
#include "storage/schemas.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace qps {
namespace bench {
namespace {

/// Trains Zero-Shot on auxiliary databases (never the evaluation ones).
baselines::ZeroShot TrainZeroShot(Scale scale) {
  struct AuxDb {
    std::unique_ptr<storage::Database> db;
    std::unique_ptr<stats::DatabaseStats> stats;
    sampling::QepDataset dataset;
  };
  std::vector<AuxDb> aux;
  const int num_aux = scale == Scale::kSmoke ? 2 : 4;
  Rng rng(555);
  for (int d = 0; d < num_aux; ++d) {
    AuxDb a;
    // Alternate schema families; vary sizes so block counts differ.
    auto spec = d % 2 == 0 ? storage::StackLikeSpec() : storage::ImdbLikeSpec();
    spec.name = StrFormat("aux%d", d);
    auto db = storage::BuildDatabase(spec, 400 + 350 * d, &rng);
    QPS_CHECK(db.ok());
    a.db = std::move(db).value();
    a.stats = stats::DatabaseStats::Analyze(*a.db);
    eval::WorkloadOptions wo;
    wo.num_queries = scale == Scale::kSmoke ? 20 : 60;
    wo.min_joins = 0;
    wo.max_joins = 4;
    Rng wrng(556 + static_cast<uint64_t>(d));
    auto queries = eval::GenerateWorkload(*a.db, wo, &wrng);
    sampling::DatasetOptions dopts;
    dopts.source = sampling::PlanSource::kSampled;
    dopts.sampler.max_plans_per_query = 4;
    Rng drng(557);
    auto ds = sampling::BuildQepDataset(*a.db, *a.stats, queries, dopts, &drng);
    QPS_CHECK(ds.ok()) << ds.status().ToString();
    a.dataset = std::move(ds).value();
    optimizer::Planner planner(*a.db, *a.stats);
    for (auto& qep : a.dataset.qeps) {
      planner.cost_model().EstimatePlan(
          a.dataset.queries[static_cast<size_t>(qep.query_id)], qep.plan.get());
    }
    aux.push_back(std::move(a));
  }
  std::vector<baselines::CostSample> samples;
  for (const auto& a : aux) {
    for (const auto& qep : a.dataset.qeps) {
      samples.push_back({a.db.get(),
                         &a.dataset.queries[static_cast<size_t>(qep.query_id)],
                         qep.plan.get()});
    }
  }
  baselines::ZeroShotConfig cfg;
  cfg.epochs = scale == Scale::kSmoke ? 30 : 40;
  baselines::ZeroShot zs(cfg, 558);
  auto losses = zs.Train(samples, 559);
  std::printf("[zeroshot] trained on %d aux dbs, %zu plans, loss %.4f -> %.4f\n",
              num_aux, samples.size(), losses.front(), losses.back());
  return zs;
}

void RunWorkload(const WorkloadBundle& bundle, const baselines::ZeroShot& zs,
                 double best_beta, Scale scale) {
  auto model = TrainQpSeeker(bundle, best_beta,
                             StrFormat("beta%d", static_cast<int>(best_beta)), scale);
  auto qps_errors = EvalQpSeeker(model, bundle, bundle.TestQeps());

  optimizer::Planner planner(*bundle.db, *bundle.stats);
  CalibratePostgres(&planner, bundle);
  auto pg_errors = EvalPostgres(&planner, bundle, bundle.TestQeps());

  std::vector<double> zs_errors;
  for (const auto* qep : bundle.TestQeps()) {
    const auto& q = bundle.dataset.queries[static_cast<size_t>(qep->query_id)];
    auto plan = qep->plan->Clone();
    planner.cost_model().EstimatePlan(q, plan.get());  // input features
    zs_errors.push_back(
        eval::QError(zs.Predict(*bundle.db, q, *plan), qep->plan->actual.cost));
  }

  PrintPercentileTable(StrFormat("-- %s / Cost estimation Q-error --",
                                 bundle.name.c_str()),
                       {{"QPSeeker", qps_errors.cost},
                        {"Zero-Shot", zs_errors},
                        {"PostgreSQL", pg_errors.cost}});
}

int Run() {
  Env env = MakeEnvFromEnvVar();
  std::printf("=== Table 3: cost estimation, QPSeeker vs Zero-Shot vs PostgreSQL "
              "(scale=%s) ===\n",
              ScaleName(env.scale));
  auto zs = TrainZeroShot(env.scale);
  // Best beta per workload from Table 2 (paper: lowest beta wins on the
  // complex workloads; Synthetic's best is close between 100 and 200).
  RunWorkload(MakeSyntheticBundle(env), zs, 200.0, env.scale);
  RunWorkload(MakeJobBundle(env), zs, 100.0, env.scale);
  RunWorkload(MakeStackBundle(env), zs, 100.0, env.scale);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qps

int main() {
  const int rc = qps::bench::Run();
  qps::bench::EmitMetricsSnapshot("table3_cost");
  return rc;
}
