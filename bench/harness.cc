// Copyright 2026 The QPSeeker Authors

#include "bench/harness.h"

#include "core/mcts.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sys/stat.h>

#include "storage/schemas.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace qps {
namespace bench {

namespace {

int64_t BaseRows(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return 600;
    case Scale::kCi:
      return 3000;
    case Scale::kPaper:
      return 100000;
  }
  return 3000;
}

constexpr uint64_t kDbSeed = 20240301;
constexpr uint64_t kWorkloadSeed = 777;
constexpr uint64_t kDatasetSeed = 4242;
constexpr uint64_t kSplitSeed = 31;
constexpr uint64_t kModelSeed = 1234;

exec::ExecOptions ExecOptionsForScale(Scale scale) {
  exec::ExecOptions opts;
  opts.max_intermediate_rows = scale == Scale::kPaper ? 20'000'000 : 2'000'000;
  return opts;
}

}  // namespace

Env MakeEnv(Scale scale) {
  Env env;
  env.scale = scale;
  Rng rng(kDbSeed);
  auto imdb = storage::BuildDatabase(storage::ImdbLikeSpec(), BaseRows(scale), &rng);
  QPS_CHECK(imdb.ok()) << imdb.status().ToString();
  env.imdb = std::move(imdb).value();
  auto stack = storage::BuildDatabase(storage::StackLikeSpec(), BaseRows(scale), &rng);
  QPS_CHECK(stack.ok()) << stack.status().ToString();
  env.stack = std::move(stack).value();
  env.imdb_stats = stats::DatabaseStats::Analyze(*env.imdb);
  env.stack_stats = stats::DatabaseStats::Analyze(*env.stack);
  return env;
}

Env MakeEnvFromEnvVar() { return MakeEnv(GetScaleFromEnv(Scale::kCi)); }

std::vector<const sampling::Qep*> WorkloadBundle::TrainQeps() const {
  std::vector<const sampling::Qep*> out;
  for (size_t i : train_idx) out.push_back(&dataset.qeps[i]);
  return out;
}

std::vector<const sampling::Qep*> WorkloadBundle::TestQeps() const {
  std::vector<const sampling::Qep*> out;
  for (size_t i : test_idx) out.push_back(&dataset.qeps[i]);
  return out;
}

sampling::QepDataset WorkloadBundle::TrainDataset() const {
  sampling::QepDataset out;
  out.queries = dataset.queries;
  for (size_t i : train_idx) {
    sampling::Qep qep;
    qep.query_id = dataset.qeps[i].query_id;
    qep.plan = dataset.qeps[i].plan->Clone();
    out.qeps.push_back(std::move(qep));
  }
  return out;
}

namespace {

WorkloadBundle MakeBundle(const Env& env, const std::string& name,
                          const storage::Database& db,
                          const stats::DatabaseStats& stats,
                          std::vector<query::Query> queries,
                          sampling::PlanSource source, bool query_level_split) {
  WorkloadBundle bundle;
  bundle.name = name;
  bundle.db = &db;
  bundle.stats = &stats;
  bundle.source = source;

  sampling::DatasetOptions opts;
  opts.source = source;
  opts.exec = ExecOptionsForScale(env.scale);
  // Per-query sampling volume (paper: JOB 113 queries -> 50K QEPs; we keep
  // the one-to-many shape at reduced volume).
  opts.sampler.candidates_per_order = 3;
  opts.sampler.max_plans_per_query = env.scale == Scale::kPaper ? 100 : 8;
  opts.sampler.max_join_orders = env.scale == Scale::kPaper ? 400 : 60;
  Rng rng(kDatasetSeed);
  auto ds = sampling::BuildQepDataset(db, stats, std::move(queries), opts, &rng);
  QPS_CHECK(ds.ok()) << name << ": " << ds.status().ToString();
  bundle.dataset = std::move(ds).value();
  QPS_CHECK(!bundle.dataset.qeps.empty()) << name << ": no labeled QEPs";

  Rng split_rng(kSplitSeed);
  if (query_level_split) {
    // JOB setting: hold out whole queries.
    std::vector<int> train_q, test_q;
    eval::SplitQueries(bundle.dataset.queries.size(), 0.8, &split_rng, &train_q,
                       &test_q);
    std::vector<bool> is_train(bundle.dataset.queries.size(), false);
    for (int qid : train_q) is_train[static_cast<size_t>(qid)] = true;
    for (size_t i = 0; i < bundle.dataset.qeps.size(); ++i) {
      (is_train[static_cast<size_t>(bundle.dataset.qeps[i].query_id)]
           ? bundle.train_idx
           : bundle.test_idx)
          .push_back(i);
    }
  } else {
    eval::SplitIndices(bundle.dataset.qeps.size(), 0.8, &split_rng,
                       &bundle.train_idx, &bundle.test_idx);
  }
  QPS_CHECK(!bundle.train_idx.empty() && !bundle.test_idx.empty());
  return bundle;
}

}  // namespace

WorkloadBundle MakeSyntheticBundle(const Env& env) {
  Rng rng(kWorkloadSeed);
  auto queries = eval::SyntheticWorkload(*env.imdb, env.scale, &rng);
  return MakeBundle(env, "Synthetic", *env.imdb, *env.imdb_stats, std::move(queries),
                    sampling::PlanSource::kOptimizer, /*query_level_split=*/false);
}

WorkloadBundle MakeSyntheticSampledBundle(const Env& env) {
  Rng rng(kWorkloadSeed);
  auto queries = eval::SyntheticWorkload(*env.imdb, env.scale, &rng);
  return MakeBundle(env, "SyntheticSampled", *env.imdb, *env.imdb_stats,
                    std::move(queries), sampling::PlanSource::kSampled,
                    /*query_level_split=*/false);
}

WorkloadBundle MakeJobBundle(const Env& env) {
  Rng rng(kWorkloadSeed + 1);
  auto queries = eval::JobWorkload(*env.imdb, env.scale, &rng);
  return MakeBundle(env, "JOB", *env.imdb, *env.imdb_stats, std::move(queries),
                    sampling::PlanSource::kSampled, /*query_level_split=*/true);
}

WorkloadBundle MakeStackBundle(const Env& env) {
  Rng rng(kWorkloadSeed + 2);
  auto queries = eval::StackWorkload(*env.stack, env.scale, &rng);
  return MakeBundle(env, "Stack", *env.stack, *env.stack_stats, std::move(queries),
                    sampling::PlanSource::kOptimizer, /*query_level_split=*/false);
}

WorkloadBundle MakeStackSampledBundle(const Env& env) {
  Rng rng(kWorkloadSeed + 2);
  auto queries = eval::StackWorkload(*env.stack, env.scale, &rng);
  return MakeBundle(env, "StackSampled", *env.stack, *env.stack_stats,
                    std::move(queries), sampling::PlanSource::kSampled,
                    /*query_level_split=*/false);
}

core::TrainOptions DefaultTrainOptions(Scale scale) {
  core::TrainOptions opts;
  opts.learning_rate = 2e-3f;
  opts.seed = 97;
  switch (scale) {
    case Scale::kSmoke:
      opts.epochs = 30;
      break;
    case Scale::kCi:
      opts.epochs = 25;
      break;
    case Scale::kPaper:
      opts.epochs = 100;
      break;
  }
  return opts;
}

core::QpSeeker TrainQpSeeker(const WorkloadBundle& bundle, double beta,
                             const std::string& variant, Scale scale, bool cache,
                             core::QpSeekerConfig* config_override) {
  core::QpSeekerConfig cfg = config_override != nullptr
                                 ? *config_override
                                 : core::QpSeekerConfig::ForScale(scale);
  cfg.beta = beta;
  core::QpSeeker model(*bundle.db, *bundle.stats, cfg, kModelSeed);

  const std::string dir = ".qps_cache";
  const std::string path = StrFormat("%s/%s_%s_%s.bin", dir.c_str(),
                                     bundle.name.c_str(), variant.c_str(),
                                     ScaleName(scale));
  if (cache && model.Load(path).ok()) {
    std::printf("[harness] loaded cached model %s\n", path.c_str());
    return model;
  }
  auto train = bundle.TrainDataset();
  auto report = model.Train(train, DefaultTrainOptions(scale));
  std::printf("[harness] trained %s (%s): %lld params, %.1fs, final loss %.4f\n",
              bundle.name.c_str(), variant.c_str(),
              static_cast<long long>(report.num_parameters), report.train_seconds,
              report.final_loss);
  if (cache) {
    ::mkdir(dir.c_str(), 0755);
    Status st = model.Save(path);
    if (!st.ok()) QPS_LOG(Warning) << "model cache write failed: " << st.ToString();
  }
  return model;
}

TaskErrors EvalQpSeeker(const core::QpSeeker& model, const WorkloadBundle& bundle,
                        const std::vector<const sampling::Qep*>& qeps) {
  TaskErrors errors;
  for (const auto* qep : qeps) {
    const auto& q = bundle.dataset.queries[static_cast<size_t>(qep->query_id)];
    const auto pred = model.PredictPlan(q, *qep->plan);
    errors.cardinality.push_back(eval::QError(pred.cardinality,
                                              qep->plan->actual.cardinality));
    errors.cost.push_back(eval::QError(pred.cost, qep->plan->actual.cost));
    errors.runtime.push_back(
        eval::QError(pred.runtime_ms, qep->plan->actual.runtime_ms, 0.1));
  }
  return errors;
}

void CalibratePostgres(optimizer::Planner* planner, const WorkloadBundle& bundle) {
  // Least-squares fit of ms_per_cost over the training QEPs (the baseline
  // gets the same training data access as the learned systems).
  double num = 0.0, den = 0.0;
  for (const auto* qep : bundle.TrainQeps()) {
    const auto& q = bundle.dataset.queries[static_cast<size_t>(qep->query_id)];
    auto plan = qep->plan->Clone();
    planner->cost_model().EstimatePlan(q, plan.get());
    num += plan->estimated.cost * qep->plan->actual.runtime_ms;
    den += plan->estimated.cost * plan->estimated.cost;
  }
  if (den > 0.0) planner->mutable_cost_model()->set_ms_per_cost(num / den);
}

TaskErrors EvalPostgres(optimizer::Planner* planner, const WorkloadBundle& bundle,
                        const std::vector<const sampling::Qep*>& qeps) {
  TaskErrors errors;
  for (const auto* qep : qeps) {
    const auto& q = bundle.dataset.queries[static_cast<size_t>(qep->query_id)];
    auto plan = qep->plan->Clone();
    planner->cost_model().EstimatePlan(q, plan.get());
    errors.cardinality.push_back(eval::QError(plan->estimated.cardinality,
                                              qep->plan->actual.cardinality));
    errors.cost.push_back(eval::QError(plan->estimated.cost, qep->plan->actual.cost));
    errors.runtime.push_back(
        eval::QError(plan->estimated.runtime_ms, qep->plan->actual.runtime_ms, 0.1));
  }
  return errors;
}

namespace {

double ExecuteOrClamp(exec::Executor* ex, const query::Query& q,
                      query::PlanNode* plan, int* failures) {
  auto card = ex->Execute(q, plan);
  if (card.ok()) return plan->actual.runtime_ms;
  ++*failures;
  // Statement-timeout clamp: charge the elapsed simulated work.
  return std::max(plan->actual.runtime_ms, ex->last_counters().RuntimeMs());
}

}  // namespace

PlannedRun RunWithQpSeeker(const core::QpSeeker& model,
                           const storage::Database& db,
                           const std::vector<query::Query>& queries,
                           double time_budget_ms) {
  PlannedRun run;
  exec::Executor ex(db, ExecOptionsForScale(Scale::kCi));
  core::MctsOptions mopts;
  mopts.time_budget_ms = time_budget_ms;
  uint64_t seed = 1000;
  for (const auto& q : queries) {
    mopts.seed = seed++;
    auto result = core::MctsPlan(model, q, mopts);
    if (!result.ok()) {
      ++run.failures;
      run.per_query_ms.push_back(0.0);
      continue;
    }
    run.total_plans_evaluated += result->plans_evaluated;
    const double ms = ExecuteOrClamp(&ex, q, result->plan.get(), &run.failures);
    run.per_query_ms.push_back(ms);
    run.total_ms += ms;
  }
  return run;
}

PlannedRun RunWithPostgres(optimizer::Planner* planner,
                           const storage::Database& db,
                           const std::vector<query::Query>& queries) {
  PlannedRun run;
  exec::Executor ex(db, ExecOptionsForScale(Scale::kCi));
  for (const auto& q : queries) {
    auto plan = planner->Plan(q);
    if (!plan.ok()) {
      ++run.failures;
      run.per_query_ms.push_back(0.0);
      continue;
    }
    const double ms = ExecuteOrClamp(&ex, q, plan->get(), &run.failures);
    run.per_query_ms.push_back(ms);
    run.total_ms += ms;
  }
  return run;
}

PlannedRun RunWithPlans(const storage::Database& db,
                        const std::vector<query::Query>& queries,
                        const std::vector<query::PlanPtr>& plans) {
  PlannedRun run;
  exec::Executor ex(db, ExecOptionsForScale(Scale::kCi));
  for (size_t i = 0; i < queries.size(); ++i) {
    if (plans[i] == nullptr) {
      ++run.failures;
      run.per_query_ms.push_back(0.0);
      continue;
    }
    auto plan = plans[i]->Clone();
    const double ms = ExecuteOrClamp(&ex, queries[i], plan.get(), &run.failures);
    run.per_query_ms.push_back(ms);
    run.total_ms += ms;
  }
  return run;
}

void PrintPercentileTable(
    const std::string& title,
    const std::vector<std::pair<std::string, std::vector<double>>>& named_errors) {
  std::printf("\n%s\n", title.c_str());
  std::vector<std::string> headers;
  std::vector<eval::Percentiles> pct;
  for (const auto& [name, errs] : named_errors) {
    headers.push_back(name);
    pct.push_back(eval::ComputePercentiles(errs));
  }
  std::printf("%s\n", eval::FormatHeader("Perc", headers).c_str());
  const char* row_names[] = {"50%", "90%", "95%", "99%", "std"};
  for (int r = 0; r < 5; ++r) {
    std::vector<double> cells;
    for (const auto& p : pct) {
      switch (r) {
        case 0:
          cells.push_back(p.p50);
          break;
        case 1:
          cells.push_back(p.p90);
          break;
        case 2:
          cells.push_back(p.p95);
          break;
        case 3:
          cells.push_back(p.p99);
          break;
        case 4:
          cells.push_back(p.stddev);
          break;
      }
    }
    std::printf("%s\n", eval::FormatRow(row_names[r], cells).c_str());
  }
}

void EmitMetricsSnapshot(const std::string& name) {
  const std::string json = metrics::RenderJson(metrics::Registry::Global().TakeSnapshot());
  const char* dir = std::getenv("QPS_METRICS_JSON_DIR");
  if (dir != nullptr && *dir != '\0') {
    const std::string path = std::string(dir) + "/" + name + ".json";
    std::ofstream out(path);
    if (out) {
      out << json << "\n";
      std::fprintf(stderr, "metrics snapshot: %s\n", path.c_str());
      return;
    }
    std::fprintf(stderr, "metrics snapshot: cannot write %s\n", path.c_str());
  }
  std::fprintf(stderr, "metrics: %s\n", json.c_str());
}

}  // namespace bench
}  // namespace qps
