// Copyright 2026 The QPSeeker Authors
//
// Reproduces Figure 9 (and the §7.2 adaptability claim): QPSeeker and Bao
// are both trained on the *Synthetic* workload, then used to plan the 113
// JOB queries — a workload with completely different distributions whose
// tables largely never appeared in training. Reports the per-query runtime
// margin against PostgreSQL, win/loss counts, total workload deltas, and
// the number of plans MCTS evaluated within its 200 ms budget (§7.2).

#include <cstdio>

#include "baselines/bao.h"
#include "bench/harness.h"
#include "util/logging.h"

namespace qps {
namespace bench {
namespace {

int Run() {
  Env env = MakeEnvFromEnvVar();
  std::printf("=== Figure 9: JOB runtime margins, trained on Synthetic "
              "(scale=%s) ===\n",
              ScaleName(env.scale));

  auto synthetic = MakeSyntheticSampledBundle(env);
  auto model = TrainQpSeeker(synthetic, 200.0, "beta200", env.scale);

  // Bao: trained by executing hinted plans of the same Synthetic queries.
  baselines::BaoConfig bao_cfg;
  bao_cfg.arms_per_query = env.scale == Scale::kSmoke ? 2 : 3;
  bao_cfg.rounds = 2;
  baselines::Bao bao(*env.imdb, *env.imdb_stats, bao_cfg, 991);
  {
    std::vector<query::Query> train_queries;
    std::vector<bool> seen(synthetic.dataset.queries.size(), false);
    for (const auto* qep : synthetic.TrainQeps()) {
      if (seen[static_cast<size_t>(qep->query_id)]) continue;
      seen[static_cast<size_t>(qep->query_id)] = true;
      train_queries.push_back(
          synthetic.dataset.queries[static_cast<size_t>(qep->query_id)]);
    }
    const size_t cap = env.scale == Scale::kSmoke ? 20 : 120;
    if (train_queries.size() > cap) train_queries.resize(cap);
    exec::Executor ex(*env.imdb);
    QPS_CHECK(bao.TrainOnWorkload(train_queries, &ex, 992).ok());
    std::printf("[bao] experience size: %lld\n",
                static_cast<long long>(bao.experience_size()));
  }

  Rng rng(993);
  auto job = eval::JobWorkload(*env.imdb, env.scale, &rng);

  optimizer::Planner pg(*env.imdb, *env.imdb_stats);
  auto pg_run = RunWithPostgres(&pg, *env.imdb, job);
  auto qps_run = RunWithQpSeeker(model, *env.imdb, job);

  std::vector<query::PlanPtr> bao_plans;
  for (const auto& q : job) {
    auto plan = bao.Plan(q);
    bao_plans.push_back(plan.ok() ? std::move(*plan) : nullptr);
  }
  auto bao_run = RunWithPlans(*env.imdb, job, bao_plans);

  // Per-query margins vs PostgreSQL (positive = our plan is faster).
  int qps_wins = 0, qps_losses = 0, bao_wins = 0, bao_losses = 0;
  std::printf("\n%-8s %12s %12s %12s %14s %14s\n", "query", "PG ms", "QPSeeker ms",
              "Bao ms", "QPS margin", "Bao margin");
  for (size_t i = 0; i < job.size(); ++i) {
    const double pg = pg_run.per_query_ms[i];
    const double qp = qps_run.per_query_ms[i];
    const double ba = bao_run.per_query_ms[i];
    const double qps_margin = pg - qp;
    const double bao_margin = pg - ba;
    // Count wins/losses outside a 5% noise band.
    if (qp < pg * 0.95) ++qps_wins;
    if (qp > pg * 1.05) ++qps_losses;
    if (ba < pg * 0.95) ++bao_wins;
    if (ba > pg * 1.05) ++bao_losses;
    if (i % std::max<size_t>(1, job.size() / 24) == 0) {
      std::printf("%-8zu %12.2f %12.2f %12.2f %14.2f %14.2f\n", i, pg, qp, ba,
                  qps_margin, bao_margin);
    }
  }
  std::printf("... (%zu queries total; every k-th shown)\n\n", job.size());
  std::printf("totals: PostgreSQL %.1f ms | QPSeeker %.1f ms | Bao %.1f ms\n",
              pg_run.total_ms, qps_run.total_ms, bao_run.total_ms);
  std::printf("QPSeeker vs PG: %d faster, %d slower (of %zu) | total delta %+.1f ms\n",
              qps_wins, qps_losses, job.size(), pg_run.total_ms - qps_run.total_ms);
  std::printf("Bao      vs PG: %d faster, %d slower (of %zu) | total delta %+.1f ms\n",
              bao_wins, bao_losses, job.size(), pg_run.total_ms - bao_run.total_ms);
  std::printf("MCTS plans evaluated: %d total, %.0f avg/query (budget 200 ms)\n",
              qps_run.total_plans_evaluated,
              static_cast<double>(qps_run.total_plans_evaluated) /
                  static_cast<double>(job.size()));
  std::printf("(paper: QPSeeker on par with PG, worse on only a few queries; Bao "
              "fails to adapt and loses the majority)\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qps

int main() {
  const int rc = qps::bench::Run();
  qps::bench::EmitMetricsSnapshot("fig9_job_margin");
  return rc;
}
