// Copyright 2026 The QPSeeker Authors
//
// Reproduces Figure 10: queries completed over time per workload, for
// QPSeeker / Bao / PostgreSQL. Stack uses in-workload training; JOB and
// its Light/Extended variants use the Synthetic-trained instances (§7.2).
// Prints the cumulative-time curve at fixed completion percentages.

#include <cstdio>

#include "baselines/bao.h"
#include "bench/harness.h"
#include "util/logging.h"

namespace qps {
namespace bench {
namespace {

void PrintCurve(const std::string& name, const PlannedRun& run) {
  // Cumulative time when 25/50/75/100% of queries have finished, executing
  // in workload order.
  std::vector<double> cum;
  double total = 0.0;
  for (double ms : run.per_query_ms) {
    total += ms;
    cum.push_back(total);
  }
  const size_t n = cum.size();
  auto at = [&](double frac) {
    return n == 0 ? 0.0 : cum[std::min(n - 1, static_cast<size_t>(frac * n))];
  };
  std::printf("  %-12s 25%%: %10.1f ms  50%%: %10.1f ms  75%%: %10.1f ms  "
              "100%%: %10.1f ms  (failures %d)\n",
              name.c_str(), at(0.25), at(0.50), at(0.75), total, run.failures);
}

void RunWorkload(const std::string& name, const std::vector<query::Query>& queries,
                 const storage::Database& db, const core::QpSeeker& model,
                 baselines::Bao* bao, optimizer::Planner* pg) {
  std::printf("-- %s (%zu queries) --\n", name.c_str(), queries.size());
  PrintCurve("PostgreSQL", RunWithPostgres(pg, db, queries));
  PrintCurve("QPSeeker", RunWithQpSeeker(model, db, queries));
  std::vector<query::PlanPtr> plans;
  for (const auto& q : queries) {
    auto plan = bao->Plan(q);
    plans.push_back(plan.ok() ? std::move(*plan) : nullptr);
  }
  PrintCurve("Bao", RunWithPlans(db, queries, plans));
  std::printf("\n");
}

int Run() {
  Env env = MakeEnvFromEnvVar();
  std::printf("=== Figure 10: queries completed through time (scale=%s) ===\n\n",
              ScaleName(env.scale));

  // --- Stack: all systems trained on Stack itself. -------------------------
  {
    auto stack = MakeStackSampledBundle(env);
    auto model = TrainQpSeeker(stack, 100.0, "beta100", env.scale);
    baselines::BaoConfig cfg;
    cfg.arms_per_query = 2;
    baselines::Bao bao(*env.stack, *env.stack_stats, cfg, 1001);
    std::vector<query::Query> train_queries;
    std::vector<bool> seen(stack.dataset.queries.size(), false);
    for (const auto* qep : stack.TrainQeps()) {
      if (seen[static_cast<size_t>(qep->query_id)]) continue;
      seen[static_cast<size_t>(qep->query_id)] = true;
      train_queries.push_back(
          stack.dataset.queries[static_cast<size_t>(qep->query_id)]);
      if (train_queries.size() >= 60) break;
    }
    exec::Executor ex(*env.stack);
    QPS_CHECK(bao.TrainOnWorkload(train_queries, &ex, 1002).ok());
    std::vector<query::Query> test_queries;
    std::vector<bool> tseen(stack.dataset.queries.size(), false);
    for (const auto* qep : stack.TestQeps()) {
      if (tseen[static_cast<size_t>(qep->query_id)]) continue;
      tseen[static_cast<size_t>(qep->query_id)] = true;
      test_queries.push_back(
          stack.dataset.queries[static_cast<size_t>(qep->query_id)]);
    }
    optimizer::Planner pg(*env.stack, *env.stack_stats);
    RunWorkload("Stack", test_queries, *env.stack, model, &bao, &pg);
  }

  // --- JOB family: transfer setting (trained on Synthetic, §7.2). ---------
  {
    auto synthetic = MakeSyntheticSampledBundle(env);
    auto model = TrainQpSeeker(synthetic, 200.0, "beta200", env.scale);
    baselines::BaoConfig cfg;
    cfg.arms_per_query = 2;
    baselines::Bao bao(*env.imdb, *env.imdb_stats, cfg, 1003);
    std::vector<query::Query> train_queries;
    std::vector<bool> seen(synthetic.dataset.queries.size(), false);
    for (const auto* qep : synthetic.TrainQeps()) {
      if (seen[static_cast<size_t>(qep->query_id)]) continue;
      seen[static_cast<size_t>(qep->query_id)] = true;
      train_queries.push_back(
          synthetic.dataset.queries[static_cast<size_t>(qep->query_id)]);
      if (train_queries.size() >= 80) break;
    }
    exec::Executor ex(*env.imdb);
    QPS_CHECK(bao.TrainOnWorkload(train_queries, &ex, 1004).ok());
    optimizer::Planner pg(*env.imdb, *env.imdb_stats);

    Rng rng(1005);
    RunWorkload("JOB", eval::JobWorkload(*env.imdb, env.scale, &rng), *env.imdb,
                model, &bao, &pg);
    RunWorkload("JOB-Light", eval::JobLightWorkload(*env.imdb, env.scale, &rng),
                *env.imdb, model, &bao, &pg);
    RunWorkload("JOB-Extended", eval::JobExtendedWorkload(*env.imdb, env.scale, &rng),
                *env.imdb, model, &bao, &pg);
  }
  std::printf("(paper: QPSeeker tracks PostgreSQL on Stack/JOB, wins on "
              "JOB-Extended, regresses on JOB-Light; Bao trails everywhere "
              "except JOB-Light)\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qps

int main() {
  const int rc = qps::bench::Run();
  qps::bench::EmitMetricsSnapshot("fig10_time");
  return rc;
}
