// Copyright 2026 The QPSeeker Authors
//
// Reproduces Table 4: cardinality-estimation Q-error percentiles of
// QPSeeker vs MSCN vs PostgreSQL. MSCN is trained per workload on the same
// training split (query, true cardinality) pairs, following its published
// setup.

#include <cstdio>

#include "baselines/mscn.h"
#include "bench/harness.h"
#include "util/string_util.h"

namespace qps {
namespace bench {
namespace {

void RunWorkload(const WorkloadBundle& bundle, double best_beta, Scale scale) {
  auto model = TrainQpSeeker(bundle, best_beta,
                             StrFormat("beta%d", static_cast<int>(best_beta)), scale);
  auto qps_errors = EvalQpSeeker(model, bundle, bundle.TestQeps());

  // MSCN: (query, cardinality) pairs from the training split. Duplicate
  // QEPs of one query collapse to the same pair (cardinality is
  // plan-invariant), mirroring its query-driven setup.
  baselines::MscnConfig mcfg;
  mcfg.epochs = scale == Scale::kSmoke ? 40 : 50;
  mcfg.learning_rate = 2e-3f;
  baselines::Mscn mscn(*bundle.db, mcfg, 661);
  std::vector<baselines::CardinalitySample> samples;
  std::vector<bool> seen(bundle.dataset.queries.size(), false);
  for (const auto* qep : bundle.TrainQeps()) {
    if (seen[static_cast<size_t>(qep->query_id)]) continue;
    seen[static_cast<size_t>(qep->query_id)] = true;
    samples.push_back({&bundle.dataset.queries[static_cast<size_t>(qep->query_id)],
                       qep->plan->actual.cardinality});
  }
  auto losses = mscn.Train(samples, 662);
  std::printf("[mscn] %s: %zu training queries, loss %.4f -> %.4f\n",
              bundle.name.c_str(), samples.size(), losses.front(), losses.back());

  std::vector<double> mscn_errors;
  std::vector<bool> eval_seen(bundle.dataset.queries.size(), false);
  for (const auto* qep : bundle.TestQeps()) {
    if (eval_seen[static_cast<size_t>(qep->query_id)]) continue;
    eval_seen[static_cast<size_t>(qep->query_id)] = true;
    const auto& q = bundle.dataset.queries[static_cast<size_t>(qep->query_id)];
    mscn_errors.push_back(
        eval::QError(mscn.Predict(q), qep->plan->actual.cardinality));
  }

  optimizer::Planner planner(*bundle.db, *bundle.stats);
  auto pg_errors = EvalPostgres(&planner, bundle, bundle.TestQeps());

  PrintPercentileTable(StrFormat("-- %s / Cardinality estimation Q-error --",
                                 bundle.name.c_str()),
                       {{"QPSeeker", qps_errors.cardinality},
                        {"MSCN", mscn_errors},
                        {"PostgreSQL", pg_errors.cardinality}});
}

int Run() {
  Env env = MakeEnvFromEnvVar();
  std::printf("=== Table 4: cardinality estimation, QPSeeker vs MSCN vs PostgreSQL "
              "(scale=%s) ===\n",
              ScaleName(env.scale));
  RunWorkload(MakeSyntheticBundle(env), 200.0, env.scale);
  RunWorkload(MakeJobBundle(env), 100.0, env.scale);
  RunWorkload(MakeStackBundle(env), 100.0, env.scale);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qps

int main() {
  const int rc = qps::bench::Run();
  qps::bench::EmitMetricsSnapshot("table4_cardinality");
  return rc;
}
