// Copyright 2026 The QPSeeker Authors
//
// Reproduces Table 2: effect of the KL weight beta ∈ {100, 200, 300} on
// QPSeeker's cardinality / cost / runtime Q-error percentiles, per
// workload, evaluated on the held-out QEP split (JOB: held-out queries).
// The beta with the best runtime p50 is highlighted — that instance is the
// scoring model MCTS uses (paper §7.1.1).

#include <cstdio>

#include "bench/harness.h"
#include "util/string_util.h"

namespace qps {
namespace bench {
namespace {

void RunWorkload(const WorkloadBundle& bundle, Scale scale) {
  const double betas[] = {100.0, 200.0, 300.0};
  std::vector<TaskErrors> per_beta;
  for (double beta : betas) {
    auto model = TrainQpSeeker(bundle, beta,
                               StrFormat("beta%d", static_cast<int>(beta)), scale);
    per_beta.push_back(EvalQpSeeker(model, bundle, bundle.TestQeps()));
  }

  auto column = [&](int b, const std::vector<double> TaskErrors::*field) {
    return std::make_pair(StrFormat("b=%d", static_cast<int>(betas[b])),
                          per_beta[static_cast<size_t>(b)].*field);
  };
  PrintPercentileTable(
      StrFormat("-- %s / Cardinality Q-error --", bundle.name.c_str()),
      {column(0, &TaskErrors::cardinality), column(1, &TaskErrors::cardinality),
       column(2, &TaskErrors::cardinality)});
  PrintPercentileTable(
      StrFormat("-- %s / Cost Q-error --", bundle.name.c_str()),
      {column(0, &TaskErrors::cost), column(1, &TaskErrors::cost),
       column(2, &TaskErrors::cost)});
  PrintPercentileTable(
      StrFormat("-- %s / Runtime Q-error --", bundle.name.c_str()),
      {column(0, &TaskErrors::runtime), column(1, &TaskErrors::runtime),
       column(2, &TaskErrors::runtime)});

  int best = 0;
  double best_p50 = 1e300;
  for (int b = 0; b < 3; ++b) {
    const double p50 =
        eval::ComputePercentiles(per_beta[static_cast<size_t>(b)].runtime).p50;
    if (p50 < best_p50) {
      best_p50 = p50;
      best = b;
    }
  }
  std::printf("\n>> best instance for %s by runtime p50: beta=%d (p50=%.3f)\n\n",
              bundle.name.c_str(), static_cast<int>(betas[best]), best_p50);
}

int Run() {
  Env env = MakeEnvFromEnvVar();
  std::printf("=== Table 2: beta effect on QPSeeker Q-errors (scale=%s) ===\n",
              ScaleName(env.scale));
  RunWorkload(MakeSyntheticBundle(env), env.scale);
  RunWorkload(MakeJobBundle(env), env.scale);
  RunWorkload(MakeStackBundle(env), env.scale);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qps

int main() {
  const int rc = qps::bench::Run();
  qps::bench::EmitMetricsSnapshot("table2_beta");
  return rc;
}
