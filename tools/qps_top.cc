// Copyright 2026 The QPSeeker Authors
//
// qps_top: live terminal status board for a serving QPSeeker process.
//
//   qps_top --snapshot=/tmp/qps_obs.json [--interval-ms=1000] [--once]
//           [--no-clear]
//
// The serving process writes the snapshot file via obs::SnapshotWriter
// (qpsql --serve --obs-snapshot=PATH, or any embedder); qps_top polls it,
// computes inter-poll throughput deltas, and renders throughput, inflight,
// queue depth, windowed latency percentiles, q-error/drift, and
// breaker/ladder state. --once prints a single frame and exits (used by
// scripts and the README walkthrough); polling stops with Ctrl-C.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "obs/json_reader.h"
#include "obs/top.h"
#include "util/io.h"
#include "util/string_util.h"

namespace qps {
namespace {

struct TopOptions {
  std::string snapshot_path;
  double interval_ms = 1000.0;
  bool once = false;
  bool clear_screen = true;
};

int Usage() {
  std::fprintf(stderr,
               "usage: qps_top --snapshot=PATH [--interval-ms=N] [--once] "
               "[--no-clear]\n");
  return 2;
}

int RunTop(const TopOptions& opts) {
  obs::JsonValue prev;
  bool have_prev = false;
  double prev_ts_ms = 0.0;
  int64_t prev_seq = -1;
  int consecutive_failures = 0;

  while (true) {
    auto contents = io::ReadFileToString(opts.snapshot_path);
    if (!contents.ok()) {
      if (opts.once || ++consecutive_failures > 30) {
        std::fprintf(stderr, "qps_top: %s\n",
                     contents.status().ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "qps_top: waiting for %s\n",
                   opts.snapshot_path.c_str());
    } else {
      auto doc = obs::ParseJson(*contents);
      if (!doc.ok()) {
        // An atomic writer never tears a file, but a foreign/partial file
        // is still reported rather than crashing the board.
        std::fprintf(stderr, "qps_top: %s\n", doc.status().ToString().c_str());
        if (opts.once) return 1;
      } else {
        consecutive_failures = 0;
        const double ts_ms = doc->NumberOr("ts_ms", 0.0);
        const int64_t seq = static_cast<int64_t>(doc->NumberOr("seq", 0.0));
        const double poll_s =
            have_prev && ts_ms > prev_ts_ms ? (ts_ms - prev_ts_ms) / 1000.0
                                            : 0.0;
        if (opts.clear_screen && !opts.once) {
          std::printf("\x1b[2J\x1b[H");  // clear + home
        }
        // Re-reading an unchanged file (writer slower than the poll) keeps
        // the previous frame's deltas instead of reporting zero traffic.
        if (!have_prev || seq != prev_seq) {
          std::printf("%s",
                      obs::FormatTopBoard(*doc, have_prev ? &prev : nullptr,
                                          poll_s)
                          .c_str());
          std::fflush(stdout);
          prev = std::move(*doc);
          prev_ts_ms = ts_ms;
          prev_seq = seq;
          have_prev = true;
        }
      }
    }
    if (opts.once) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<int64_t>(opts.interval_ms)));
  }
}

}  // namespace
}  // namespace qps

int main(int argc, char** argv) {
  qps::TopOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (qps::StartsWith(arg, "--snapshot=")) {
      opts.snapshot_path = arg.substr(std::string("--snapshot=").size());
    } else if (qps::StartsWith(arg, "--interval-ms=")) {
      opts.interval_ms = std::stod(arg.substr(std::string("--interval-ms=").size()));
    } else if (arg == "--once") {
      opts.once = true;
    } else if (arg == "--no-clear") {
      opts.clear_screen = false;
    } else {
      return qps::Usage();
    }
  }
  if (opts.snapshot_path.empty()) return qps::Usage();
  return qps::RunTop(opts);
}
