// Copyright 2026 The QPSeeker Authors
//
// The differential oracle: one query in, every planning backend out. For a
// valid, connected query the unified planner contract (planner_api.h) says
// all four backends must produce a ValidatePlan-clean plan with finite
// stats — and because every valid plan of the same query computes the same
// COUNT(*), executing the neural-chosen and DP-chosen plans must agree on
// the root cardinality. Each backend run is condensed into a BackendProbe
// (signature.h); contract breaches become OracleViolations the fuzzer
// minimizes and checks into the regression corpus.

#ifndef QPS_FUZZ_ORACLE_H_
#define QPS_FUZZ_ORACLE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/guarded_planner.h"
#include "core/planner_backends.h"
#include "exec/executor.h"
#include "fuzz/signature.h"
#include "query/query.h"
#include "util/status.h"

namespace qps {
namespace fuzz {

enum class ViolationKind {
  kPlanFailure,     ///< a backend failed on a valid, connected query
  kInvalidPlan,     ///< OK status but ValidatePlan rejected the plan
  kNonFiniteStats,  ///< NaN/inf escaped in plan or result stats
  kExecFailure,     ///< a returned plan failed to execute (beyond row caps)
  kResultMismatch,  ///< backends disagree on the result cardinality
};

const char* ViolationKindName(ViolationKind kind);

struct OracleViolation {
  ViolationKind kind;
  std::string backend;
  std::string detail;

  std::string ToString() const;
};

/// Everything one differential run observed.
struct OracleReport {
  std::vector<BackendProbe> probes;
  std::vector<OracleViolation> violations;
  uint64_t signature = 0;  ///< CombinedSignature(probes)

  bool ok() const { return violations.empty(); }
  bool Has(ViolationKind kind) const;
};

struct OracleOptions {
  /// Backends to differentiate, in fixed order (signature stability).
  std::vector<std::string> backends = {"baseline", "neural", "hybrid",
                                       "guarded"};
  /// Planner configuration shared by the neural/hybrid/guarded backends.
  /// Defaults pin determinism: rollout-capped MCTS with an effectively
  /// unlimited time budget, so wall-clock never decides a plan.
  core::GuardedOptions guarded;
  /// Row/time caps for the differential executions; exceeding them is an
  /// accepted outcome (kResourceExhausted), not a violation.
  exec::ExecOptions exec;
  /// Execute returned plans and compare root cardinalities.
  bool execute = true;

  OracleOptions() {
    guarded.hybrid.neural_min_relations = 3;
    guarded.hybrid.mcts.time_budget_ms = 1e9;
    guarded.hybrid.mcts.max_rollouts = 12;
    guarded.hybrid.mcts.eval_batch = 4;
    exec.max_intermediate_rows = 200'000;
  }
};

/// Runs queries through all configured backends and checks the contract.
/// Fresh planner instances are created per Check() call so every run is
/// independent and deterministic for a fixed (query, seed).
class DifferentialOracle {
 public:
  DifferentialOracle(const storage::Database& db,
                     const core::QpSeeker* model,
                     const optimizer::Planner* baseline,
                     OracleOptions options = {});

  /// One differential run. `seed` pins the per-request MCTS randomness
  /// (must be non-zero to override backend defaults deterministically).
  OracleReport Check(const query::Query& q, uint64_t seed);

  const OracleOptions& options() const { return options_; }

 private:
  const storage::Database& db_;
  const core::QpSeeker* model_;
  const optimizer::Planner* baseline_;
  OracleOptions options_;
};

}  // namespace fuzz
}  // namespace qps

#endif  // QPS_FUZZ_ORACLE_H_
