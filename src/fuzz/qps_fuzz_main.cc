// Copyright 2026 The QPSeeker Authors
//
// qps_fuzz: the coverage-guided planner fuzzing driver.
//
//   qps_fuzz --iters=10000 --seed=42 --corpus=tests/corpus/planner
//
// Builds a deterministic database + smoke-scale model, seeds the campaign
// from a generated workload plus the existing corpus, and runs the
// mutate -> differential-oracle -> minimize loop. Exit code 0 means zero
// oracle violations; 1 means violations were found (and, with --corpus,
// minimized repros were written); 2 means setup failed.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/qpseeker.h"
#include "eval/workloads.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "optimizer/planner.h"
#include "sampling/plan_sampler.h"
#include "storage/schemas.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/scale.h"

namespace {

struct Flags {
  int64_t iters = 5000;
  uint64_t seed = 42;
  std::string db = "toy";
  int rows = 300;
  std::string searcher = "novelty";
  std::string corpus;
  int64_t log_every = 1000;
  int rollouts = 12;
  int train_epochs = 6;
  int num_seeds = 24;
  bool minimize = true;
  bool print_metrics = false;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--iters=N] [--seed=N] [--db=toy|imdb|stack] [--rows=N]\n"
      "          [--searcher=novelty|roundrobin] [--corpus=DIR]\n"
      "          [--log-every=N] [--rollouts=N] [--train-epochs=N]\n"
      "          [--num-seeds=N] [--minimize=0|1] [--print-metrics]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qps;  // NOLINT

  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "iters", &v)) {
      flags.iters = std::atoll(v.c_str());
    } else if (ParseFlag(arg, "seed", &v)) {
      flags.seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(arg, "db", &v)) {
      flags.db = v;
    } else if (ParseFlag(arg, "rows", &v)) {
      flags.rows = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "searcher", &v)) {
      flags.searcher = v;
    } else if (ParseFlag(arg, "corpus", &v)) {
      flags.corpus = v;
    } else if (ParseFlag(arg, "log-every", &v)) {
      flags.log_every = std::atoll(v.c_str());
    } else if (ParseFlag(arg, "rollouts", &v)) {
      flags.rollouts = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "train-epochs", &v)) {
      flags.train_epochs = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "num-seeds", &v)) {
      flags.num_seeds = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "minimize", &v)) {
      flags.minimize = v != "0";
    } else if (arg == "--print-metrics") {
      flags.print_metrics = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  // Everything below hangs off one deterministic seed chain: database
  // content, model training, workload seeds, and the campaign itself.
  storage::DatabaseSpec spec;
  if (flags.db == "toy") {
    spec = storage::ToySpec();
  } else if (flags.db == "imdb") {
    spec = storage::ImdbLikeSpec();
  } else if (flags.db == "stack") {
    spec = storage::StackLikeSpec();
  } else {
    std::fprintf(stderr, "unknown --db=%s\n", flags.db.c_str());
    return 2;
  }

  Rng db_rng(flags.seed);
  auto db_or = storage::BuildDatabase(spec, flags.rows, &db_rng);
  if (!db_or.ok()) {
    std::fprintf(stderr, "BuildDatabase: %s\n",
                 db_or.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<storage::Database> db = std::move(db_or).value();
  std::unique_ptr<stats::DatabaseStats> stats =
      stats::DatabaseStats::Analyze(*db);
  optimizer::Planner baseline(*db, *stats);

  // Train a smoke-scale model on a sampled QEP dataset — the oracle needs
  // a model that scores plans deterministically, not a good one.
  eval::WorkloadOptions train_wopts;
  train_wopts.num_queries = 12;
  train_wopts.max_joins = 2;
  Rng train_rng(flags.seed ^ 0x7261696e);  // "rain"
  std::vector<query::Query> train_queries =
      eval::GenerateWorkload(*db, train_wopts, &train_rng);
  sampling::DatasetOptions dopts;
  dopts.source = sampling::PlanSource::kSampled;
  dopts.sampler.max_plans_per_query = 4;
  auto ds_or = sampling::BuildQepDataset(*db, *stats, train_queries, dopts,
                                         &train_rng);
  if (!ds_or.ok()) {
    std::fprintf(stderr, "BuildQepDataset: %s\n",
                 ds_or.status().ToString().c_str());
    return 2;
  }
  core::QpSeeker model(*db, *stats,
                       core::QpSeekerConfig::ForScale(Scale::kSmoke), 3);
  core::TrainOptions topts;
  topts.epochs = flags.train_epochs;
  model.Train(ds_or.value(), topts);

  // Campaign seeds: a generated workload plus every checked-in corpus
  // entry, so past violations get re-fuzzed from day one.
  eval::WorkloadOptions wopts;
  wopts.num_queries = flags.num_seeds;
  wopts.max_joins = 3;
  Rng seed_rng(flags.seed ^ 0x73656564);  // "seed"
  std::vector<query::Query> seeds =
      eval::GenerateWorkload(*db, wopts, &seed_rng);
  if (!flags.corpus.empty()) {
    auto corpus_or = fuzz::LoadCorpus(flags.corpus, *db);
    if (!corpus_or.ok()) {
      std::fprintf(stderr, "LoadCorpus: %s\n",
                   corpus_or.status().ToString().c_str());
      return 2;
    }
    for (auto& entry : corpus_or.value()) {
      seeds.push_back(std::move(entry.query));
    }
  }

  fuzz::FuzzOptions fopts;
  fopts.seed = flags.seed;
  fopts.iters = flags.iters;
  fopts.searcher = flags.searcher;
  fopts.corpus_dir = flags.corpus;
  fopts.minimize = flags.minimize;
  fopts.log_every = flags.log_every;
  fopts.oracle.guarded.hybrid.mcts.max_rollouts = flags.rollouts;

  fuzz::Fuzzer fuzzer(*db, *stats, &model, &baseline, fopts);
  auto report_or = fuzzer.Run(seeds);
  if (!report_or.ok()) {
    std::fprintf(stderr, "fuzz run failed: %s\n",
                 report_or.status().ToString().c_str());
    return 2;
  }
  const fuzz::FuzzReport& report = report_or.value();
  std::printf("%s", report.ToString().c_str());

  if (flags.print_metrics) {
    std::printf("%s",
                metrics::RenderText(metrics::Registry::Global().TakeSnapshot())
                    .c_str());
  }

  return report.oracle_violations > 0 ? 1 : 0;
}
