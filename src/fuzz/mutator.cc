// Copyright 2026 The QPSeeker Authors

#include "fuzz/mutator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/string_util.h"

namespace qps {
namespace fuzz {

using query::FilterPredicate;
using query::JoinPredicate;
using query::Query;
using query::RelationRef;
using storage::CompareOp;
using storage::DataType;
using storage::Value;

const char* MutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::kSwapRelations:
      return "swap-relations";
    case MutationKind::kRotateRelations:
      return "rotate-relations";
    case MutationKind::kAddJoin:
      return "add-join";
    case MutationKind::kRemoveJoin:
      return "remove-join";
    case MutationKind::kPerturbFilterOp:
      return "perturb-filter-op";
    case MutationKind::kMutateLiteral:
      return "mutate-literal";
    case MutationKind::kAddFilter:
      return "add-filter";
    case MutationKind::kRemoveFilter:
      return "remove-filter";
    case MutationKind::kDuplicateRelation:
      return "duplicate-relation";
  }
  return "?";
}

namespace {

/// Double-to-int64 without UB on out-of-range inputs (UBSan-clean).
int64_t SaturatingToInt64(double v) {
  constexpr double kMax = 9.2233720368547748e18;  // just below 2^63
  if (!(v > -kMax)) return std::numeric_limits<int64_t>::min() + 1;
  if (!(v < kMax)) return std::numeric_limits<int64_t>::max();
  return static_cast<int64_t>(std::llround(v));
}

CompareOp RandomOpOtherThan(CompareOp old, Rng* rng) {
  static const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe,
                                   CompareOp::kLt, CompareOp::kLe,
                                   CompareOp::kGt, CompareOp::kGe};
  CompareOp pick = old;
  while (pick == old) {
    pick = kOps[rng->UniformInt(uint64_t{6})];
  }
  return pick;
}

bool SameJoin(const JoinPredicate& a, const JoinPredicate& b) {
  const auto norm = [](const JoinPredicate& j) {
    if (j.left_rel < j.right_rel ||
        (j.left_rel == j.right_rel && j.left_column <= j.right_column)) {
      return std::tuple(j.left_rel, j.left_column, j.right_rel, j.right_column);
    }
    return std::tuple(j.right_rel, j.right_column, j.left_rel, j.left_column);
  };
  return norm(a) == norm(b);
}

}  // namespace

QueryMutator::QueryMutator(const storage::Database& db,
                           const stats::DatabaseStats& stats, Options options)
    : db_(db), stats_(stats), options_(options) {}

std::optional<Query> QueryMutator::Mutate(const Query& seed, Rng* rng,
                                          MutationKind* kind_out) const {
  std::vector<MutationKind> kinds = {
      MutationKind::kSwapRelations,   MutationKind::kRotateRelations,
      MutationKind::kAddJoin,         MutationKind::kRemoveJoin,
      MutationKind::kPerturbFilterOp, MutationKind::kMutateLiteral,
      MutationKind::kAddFilter,       MutationKind::kRemoveFilter,
      MutationKind::kDuplicateRelation};
  rng->Shuffle(&kinds);
  for (MutationKind kind : kinds) {
    Query mutant = seed;
    if (!Apply(kind, &mutant, rng)) continue;
    // A mutation that broke an invariant is a bug in the mutator itself;
    // skipping it keeps the campaign running while the validator (which is
    // also under test) rejects the mutant everywhere else.
    if (!mutant.Validate(db_).ok() || !mutant.IsConnected()) continue;
    if (kind_out != nullptr) *kind_out = kind;
    return mutant;
  }
  return std::nullopt;
}

bool QueryMutator::Apply(MutationKind kind, Query* q, Rng* rng) const {
  switch (kind) {
    case MutationKind::kSwapRelations:
      return SwapRelations(q, rng);
    case MutationKind::kRotateRelations:
      return RotateRelations(q, rng);
    case MutationKind::kAddJoin:
      return AddJoin(q, rng);
    case MutationKind::kRemoveJoin:
      return RemoveJoin(q, rng);
    case MutationKind::kPerturbFilterOp:
      return PerturbFilterOp(q, rng);
    case MutationKind::kMutateLiteral:
      return MutateLiteral(q, rng);
    case MutationKind::kAddFilter:
      return AddFilter(q, rng);
    case MutationKind::kRemoveFilter:
      return RemoveFilter(q, rng);
    case MutationKind::kDuplicateRelation:
      return DuplicateRelation(q, rng);
  }
  return false;
}

void QueryMutator::RemapRelations(Query* q, const std::vector<int>& perm) {
  std::vector<RelationRef> relations(q->relations.size());
  for (size_t i = 0; i < q->relations.size(); ++i) {
    relations[static_cast<size_t>(perm[i])] = q->relations[i];
  }
  q->relations = std::move(relations);
  for (auto& j : q->joins) {
    j.left_rel = perm[static_cast<size_t>(j.left_rel)];
    j.right_rel = perm[static_cast<size_t>(j.right_rel)];
  }
  for (auto& f : q->filters) {
    f.rel = perm[static_cast<size_t>(f.rel)];
  }
}

bool QueryMutator::SwapRelations(Query* q, Rng* rng) const {
  const int n = q->num_relations();
  if (n < 2) return false;
  const int i = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
  int j = i;
  while (j == i) j = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
  std::vector<int> perm(static_cast<size_t>(n));
  for (int k = 0; k < n; ++k) perm[static_cast<size_t>(k)] = k;
  std::swap(perm[static_cast<size_t>(i)], perm[static_cast<size_t>(j)]);
  RemapRelations(q, perm);
  return true;
}

bool QueryMutator::RotateRelations(Query* q, Rng* rng) const {
  const int n = q->num_relations();
  if (n < 2) return false;
  const int shift = 1 + static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n - 1)));
  std::vector<int> perm(static_cast<size_t>(n));
  for (int k = 0; k < n; ++k) perm[static_cast<size_t>(k)] = (k + shift) % n;
  RemapRelations(q, perm);
  return true;
}

bool QueryMutator::AddJoin(Query* q, Rng* rng) const {
  const int n = q->num_relations();
  if (n < 2) return false;
  if (static_cast<int>(q->joins.size()) >= 3 * options_.max_relations) return false;
  std::vector<JoinPredicate> candidates;
  const auto try_add = [&](JoinPredicate jp) {
    for (const auto& existing : q->joins) {
      if (SameJoin(existing, jp)) return;
    }
    candidates.push_back(jp);
  };
  // Schema edges between any two matching relation instances.
  const auto& edges = db_.join_edges();
  for (size_t e = 0; e < edges.size(); ++e) {
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        if (a == b) continue;
        if (q->relations[static_cast<size_t>(a)].table_id != edges[e].left_table ||
            q->relations[static_cast<size_t>(b)].table_id != edges[e].right_table) {
          continue;
        }
        JoinPredicate jp;
        jp.left_rel = a;
        jp.left_column = edges[e].left_column;
        jp.right_rel = b;
        jp.right_column = edges[e].right_column;
        jp.schema_edge = static_cast<int>(e);
        try_add(jp);
      }
    }
  }
  // Same-column self-joins between alias-duplicated instances of one table.
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const int ta = q->relations[static_cast<size_t>(a)].table_id;
      if (ta != q->relations[static_cast<size_t>(b)].table_id) continue;
      const auto& table = db_.table(ta);
      if (table.num_columns() == 0) continue;
      JoinPredicate jp;
      jp.left_rel = a;
      jp.right_rel = b;
      jp.left_column = jp.right_column = static_cast<int>(
          rng->UniformInt(static_cast<uint64_t>(table.num_columns())));
      jp.schema_edge = -1;
      try_add(jp);
    }
  }
  if (candidates.empty()) return false;
  q->joins.push_back(candidates[rng->UniformInt(candidates.size())]);
  return true;
}

bool QueryMutator::RemoveJoin(Query* q, Rng* rng) const {
  if (q->joins.empty()) return false;
  std::vector<size_t> removable;
  for (size_t i = 0; i < q->joins.size(); ++i) {
    Query trial = *q;
    trial.joins.erase(trial.joins.begin() + static_cast<ptrdiff_t>(i));
    if (trial.IsConnected()) removable.push_back(i);
  }
  if (removable.empty()) return false;
  const size_t at = removable[rng->UniformInt(removable.size())];
  q->joins.erase(q->joins.begin() + static_cast<ptrdiff_t>(at));
  return true;
}

bool QueryMutator::PerturbFilterOp(Query* q, Rng* rng) const {
  if (q->filters.empty()) return false;
  FilterPredicate& f = q->filters[rng->UniformInt(q->filters.size())];
  f.op = RandomOpOtherThan(f.op, rng);
  return true;
}

bool QueryMutator::MutateLiteral(Query* q, Rng* rng) const {
  if (q->filters.empty()) return false;
  FilterPredicate& f = q->filters[rng->UniformInt(q->filters.size())];
  const int table_id = q->relations[static_cast<size_t>(f.rel)].table_id;
  f.value = SampleLiteral(table_id, f.column, rng);
  return true;
}

bool QueryMutator::AddFilter(Query* q, Rng* rng) const {
  const int n = q->num_relations();
  if (n == 0) return false;
  if (static_cast<int>(q->filters.size()) >= options_.max_filters) return false;
  FilterPredicate f;
  f.rel = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
  const int table_id = q->relations[static_cast<size_t>(f.rel)].table_id;
  const auto& table = db_.table(table_id);
  if (table.num_columns() == 0) return false;
  f.column = static_cast<int>(
      rng->UniformInt(static_cast<uint64_t>(table.num_columns())));
  f.op = RandomOpOtherThan(CompareOp::kEq, rng);
  if (rng->Bernoulli(0.3)) f.op = CompareOp::kEq;
  f.value = SampleLiteral(table_id, f.column, rng);
  q->filters.push_back(f);
  return true;
}

bool QueryMutator::RemoveFilter(Query* q, Rng* rng) const {
  if (q->filters.empty()) return false;
  const size_t at = rng->UniformInt(q->filters.size());
  q->filters.erase(q->filters.begin() + static_cast<ptrdiff_t>(at));
  return true;
}

bool QueryMutator::DuplicateRelation(Query* q, Rng* rng) const {
  const int n = q->num_relations();
  if (n == 0 || n >= options_.max_relations) return false;
  const int src = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
  const RelationRef& base = q->relations[static_cast<size_t>(src)];
  RelationRef dup;
  dup.table_id = base.table_id;
  for (int suffix = 2; suffix < 2 + 2 * n; ++suffix) {
    dup.alias = base.alias + "_d" + std::to_string(suffix);
    bool taken = false;
    for (const auto& r : q->relations) taken = taken || r.alias == dup.alias;
    if (!taken) break;
    dup.alias.clear();
  }
  if (dup.alias.empty()) return false;
  const auto& table = db_.table(dup.table_id);
  if (table.num_columns() == 0) return false;
  const int new_rel = n;
  q->relations.push_back(dup);
  // Connect the duplicate to its source on one shared column — the
  // canonical JOB-style self-join shape (t.id = t2.id).
  JoinPredicate jp;
  jp.left_rel = src;
  jp.right_rel = new_rel;
  jp.left_column = jp.right_column = static_cast<int>(
      rng->UniformInt(static_cast<uint64_t>(table.num_columns())));
  jp.schema_edge = db_.FindJoinEdge(dup.table_id, jp.left_column, dup.table_id,
                                    jp.right_column);
  q->joins.push_back(jp);
  return true;
}

storage::Value QueryMutator::SampleLiteral(int table_id, int column,
                                           Rng* rng) const {
  const stats::ColumnStats& cs = stats_.column(table_id, column);
  const storage::Column& col = db_.table(table_id).column(column);
  double v = 0.0;
  if (rng->Bernoulli(options_.boundary_bias) && !cs.histogram.empty()) {
    // Histogram bucket boundaries, sometimes nudged one step off — the
    // exact points where equi-depth selectivity interpolation changes.
    const auto& bounds = cs.histogram.bounds();
    v = bounds[rng->UniformInt(bounds.size())];
    if (rng->Bernoulli(0.5)) v += rng->Bernoulli(0.5) ? 1.0 : -1.0;
  } else {
    switch (rng->UniformInt(uint64_t{6})) {
      case 0:
        v = cs.min - 1.0;
        break;
      case 1:
        v = cs.max + 1.0;
        break;
      case 2:
        v = 0.0;
        break;
      case 3:
        v = -1.0;
        break;
      case 4:
        v = cs.mcv.values.empty()
                ? cs.mean
                : cs.mcv.values[rng->UniformInt(cs.mcv.values.size())];
        break;
      default:
        // Type extremes: the far end of what the literal syntax can carry.
        if (col.type() == DataType::kFloat64) {
          v = rng->Bernoulli(0.5) ? 1e300 : -1e300;
        } else {
          v = rng->Bernoulli(0.5)
                  ? static_cast<double>(std::numeric_limits<int64_t>::max())
                  : static_cast<double>(std::numeric_limits<int64_t>::min() + 2);
        }
        break;
    }
  }
  switch (col.type()) {
    case DataType::kInt64:
      return Value::Int(SaturatingToInt64(v));
    case DataType::kFloat64:
      return Value::Float(v);
    case DataType::kString: {
      const auto& dict = col.dictionary();
      const int64_t code = SaturatingToInt64(v);
      if (!dict.empty() && code >= 0 &&
          code < static_cast<int64_t>(dict.size())) {
        Value out = Value::Str(dict[static_cast<size_t>(code)]);
        out.i = code;
        return out;
      }
      // Sentinel: a string absent from the dictionary (code -1), the
      // "matches nothing on =" edge the parser also produces.
      Value out = Value::Str("zzz_missing");
      out.i = col.LookupDictCode("zzz_missing");
      return out;
    }
  }
  return Value::Int(0);
}

}  // namespace fuzz
}  // namespace qps
