// Copyright 2026 The QPSeeker Authors
//
// Greedy shrink for oracle-violating queries, in the spirit of C-Reduce /
// libFuzzer's -minimize_crash: repeatedly try structure-removing edits
// (drop a relation, drop a join, drop a filter, zero a literal) and keep
// any edit after which the violation still reproduces, until a fixpoint.
// The result is the smallest query the minimizer can reach that still
// breaks the oracle — what gets checked into tests/corpus/planner/.

#ifndef QPS_FUZZ_MINIMIZER_H_
#define QPS_FUZZ_MINIMIZER_H_

#include <functional>

#include "query/query.h"
#include "storage/database.h"

namespace qps {
namespace fuzz {

class Minimizer {
 public:
  /// Predicate: does this candidate still reproduce the violation? Must be
  /// deterministic (the fuzzer closes over the oracle with a fixed seed).
  using StillFails = std::function<bool(const query::Query&)>;

  explicit Minimizer(const storage::Database& db) : db_(db) {}

  /// Shrinks `q` while `still_fails` holds. Every intermediate candidate
  /// is valid (Query::Validate) and connected, so the result is always a
  /// replayable corpus entry. `max_checks` bounds total predicate calls.
  query::Query Minimize(const query::Query& q, const StillFails& still_fails,
                        int max_checks = 256) const;

 private:
  const storage::Database& db_;
};

}  // namespace fuzz
}  // namespace qps

#endif  // QPS_FUZZ_MINIMIZER_H_
