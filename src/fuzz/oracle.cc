// Copyright 2026 The QPSeeker Authors

#include "fuzz/oracle.h"

#include <string>
#include <unordered_map>
#include <utility>

#include "query/plan.h"
#include "util/logging.h"

namespace qps {
namespace fuzz {

namespace {

// Canonical structural serialization of a plan, including operator choices
// and predicate assignment. Used as the execution-cache key: backends that
// chose the same physical plan are executed once.
void PlanKeyNode(const query::PlanNode& node, std::string* out) {
  out->push_back('(');
  out->append(std::to_string(static_cast<int>(node.op)));
  if (node.is_leaf()) {
    out->push_back('r');
    out->append(std::to_string(node.rel));
  } else {
    out->push_back('[');
    for (int p : node.join_preds) {
      out->append(std::to_string(p));
      out->push_back(',');
    }
    out->push_back(']');
    if (node.left != nullptr) PlanKeyNode(*node.left, out);
    if (node.right != nullptr) PlanKeyNode(*node.right, out);
  }
  out->push_back(')');
}

std::string PlanKey(const query::PlanNode& plan) {
  std::string key;
  key.reserve(64);
  PlanKeyNode(plan, &key);
  return key;
}

}  // namespace

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kPlanFailure:
      return "plan-failure";
    case ViolationKind::kInvalidPlan:
      return "invalid-plan";
    case ViolationKind::kNonFiniteStats:
      return "non-finite-stats";
    case ViolationKind::kExecFailure:
      return "exec-failure";
    case ViolationKind::kResultMismatch:
      return "result-mismatch";
  }
  return "unknown";
}

std::string OracleViolation::ToString() const {
  std::string s = ViolationKindName(kind);
  s += " [";
  s += backend;
  s += "]: ";
  s += detail;
  return s;
}

bool OracleReport::Has(ViolationKind kind) const {
  for (const auto& v : violations) {
    if (v.kind == kind) return true;
  }
  return false;
}

DifferentialOracle::DifferentialOracle(const storage::Database& db,
                                       const core::QpSeeker* model,
                                       const optimizer::Planner* baseline,
                                       OracleOptions options)
    : db_(db), model_(model), baseline_(baseline),
      options_(std::move(options)) {}

OracleReport DifferentialOracle::Check(const query::Query& q, uint64_t seed) {
  OracleReport report;
  report.probes.reserve(options_.backends.size());

  struct ExecOutcome {
    StatusCode status = StatusCode::kOk;
    double rows = -1.0;
  };
  std::unordered_map<std::string, ExecOutcome> exec_cache;

  for (const std::string& name : options_.backends) {
    BackendProbe probe;
    probe.backend = name;

    // Fresh planner per run: no breaker or guard state leaks between
    // mutants, so a report is a pure function of (query, seed).
    auto planner_or =
        core::MakePlanner(name, model_, baseline_, options_.guarded);
    if (!planner_or.ok()) {
      probe.plan_status = planner_or.status().code();
      report.violations.push_back(
          {ViolationKind::kPlanFailure, name,
           "backend construction failed: " + planner_or.status().ToString()});
      report.probes.push_back(std::move(probe));
      continue;
    }
    std::unique_ptr<core::Planner> planner = std::move(planner_or).value();

    core::PlanRequestOptions ropts;
    ropts.seed = seed;
    auto result_or = planner->Plan(q, ropts);

    const core::GuardStats gs = planner->guard_stats();
    probe.guard_trips =
        gs.NeuralFailures() + gs.circuit_opens + gs.circuit_short_circuits;

    if (!result_or.ok()) {
      // The fuzzer only feeds valid, connected queries, so any backend
      // failure here breaches the unified planner contract.
      probe.plan_status = result_or.status().code();
      report.violations.push_back({ViolationKind::kPlanFailure, name,
                                   result_or.status().ToString()});
      report.probes.push_back(std::move(probe));
      continue;
    }
    core::PlanResult result = std::move(result_or).value();
    probe.stage = result.stage;
    probe.used_neural = result.used_neural;
    probe.deadline_hit = result.deadline_hit;
    probe.fallback_reason = result.fallback_reason;
    probe.estimated_rows = result.node_stats.cardinality;

    if (result.plan == nullptr) {
      report.violations.push_back({ViolationKind::kInvalidPlan, name,
                                   "OK status with a null plan"});
      report.probes.push_back(std::move(probe));
      continue;
    }
    query::PlanNode* plan = result.plan.get();

    const Status valid = query::ValidatePlan(q, *plan);
    if (!valid.ok()) {
      report.violations.push_back(
          {ViolationKind::kInvalidPlan, name, valid.ToString()});
    }

    probe.plan_shape_hash = PlanShapeHash(q, *plan);
    plan->PostOrder([&probe](const query::PlanNode& n) {
      const int op = static_cast<int>(n.op);
      if (op >= 0 && op < query::kNumOpTypes) ++probe.op_counts[op];
    });

    if (!query::StatsAreFinite(result.node_stats)) {
      report.violations.push_back({ViolationKind::kNonFiniteStats, name,
                                   "non-finite root stats triple"});
    }
    bool nodes_finite = true;
    plan->PostOrder([&nodes_finite](const query::PlanNode& n) {
      if (!query::StatsAreFinite(n.estimated)) nodes_finite = false;
    });
    if (!nodes_finite) {
      report.violations.push_back({ViolationKind::kNonFiniteStats, name,
                                   "non-finite per-node estimate"});
    }

    if (options_.execute && valid.ok()) {
      const std::string key = PlanKey(*plan);
      auto it = exec_cache.find(key);
      ExecOutcome outcome;
      if (it != exec_cache.end()) {
        outcome = it->second;
      } else {
        exec::Executor executor(db_, options_.exec);
        auto rows_or = executor.Execute(q, plan);
        if (rows_or.ok()) {
          outcome.status = StatusCode::kOk;
          outcome.rows = rows_or.value();
        } else {
          outcome.status = rows_or.status().code();
        }
        exec_cache.emplace(key, outcome);
      }
      probe.exec_status = outcome.status;
      if (outcome.status == StatusCode::kOk) {
        probe.actual_rows = outcome.rows;
        probe.qerror_decile =
            QErrorDecile(probe.estimated_rows, outcome.rows);
      } else if (outcome.status != StatusCode::kResourceExhausted) {
        // Blowing the row/time caps is an accepted outcome for expensive
        // mutants; anything else means a validated plan failed to run.
        report.violations.push_back({ViolationKind::kExecFailure, name,
                                     "execution failed with status " +
                                         std::string(StatusCodeName(
                                             outcome.status))});
      }
    }

    report.probes.push_back(std::move(probe));
  }

  // Differential check: every backend that executed its plan to completion
  // must report the same root cardinality (the query has one answer).
  const BackendProbe* reference = nullptr;
  for (const auto& p : report.probes) {
    if (p.actual_rows < 0.0) continue;
    if (reference == nullptr) {
      reference = &p;
      continue;
    }
    if (p.actual_rows != reference->actual_rows) {
      report.violations.push_back(
          {ViolationKind::kResultMismatch, p.backend,
           p.backend + " returned " + std::to_string(p.actual_rows) +
               " rows but " + reference->backend + " returned " +
               std::to_string(reference->actual_rows)});
    }
  }

  report.signature = CombinedSignature(report.probes);
  return report;
}

}  // namespace fuzz
}  // namespace qps
