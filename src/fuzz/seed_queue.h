// Copyright 2026 The QPSeeker Authors
//
// The fuzzing seed queue, in the AFL mold: a growing pool of queries that
// each produced a novel behavior signature when first executed, plus a
// pluggable Searcher that decides which seed to mutate next. AFL's
// searchers pick by coverage-distance and energy; ours weigh a seed's
// yield (how many novel signatures its mutants produced) against how often
// it has already been fuzzed, so productive regions of the query space get
// more attention without starving the rest.

#ifndef QPS_FUZZ_SEED_QUEUE_H_
#define QPS_FUZZ_SEED_QUEUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "query/query.h"
#include "util/rng.h"
#include "util/status.h"

namespace qps {
namespace fuzz {

/// One queue entry with its fuzzing bookkeeping.
struct Seed {
  query::Query query;
  uint64_t signature = 0;     ///< behavior signature that admitted it
  int executions = 0;         ///< times this seed was picked for mutation
  int novel_children = 0;     ///< mutants of this seed with new signatures
  int violations_found = 0;   ///< mutants of this seed that broke an oracle
  int depth = 0;              ///< mutation chain length from a workload seed
};

/// Strategy for picking the next seed to mutate. Implementations must be
/// deterministic given the queue state and the Rng stream.
class Searcher {
 public:
  virtual ~Searcher() = default;
  virtual const char* name() const = 0;
  /// Index into `seeds` (non-empty) of the next seed to mutate.
  virtual size_t PickNext(const std::vector<Seed>& seeds, Rng* rng) = 0;
};

/// Cycles through the queue in admission order (AFL's baseline sweep).
class RoundRobinSearcher : public Searcher {
 public:
  const char* name() const override { return "roundrobin"; }
  size_t PickNext(const std::vector<Seed>& seeds, Rng* rng) override;

 private:
  size_t next_ = 0;
};

/// Samples seeds with weight (1 + novel_children + 4 * violations_found)
/// / (1 + executions): high-yield seeds get fuzzed more, over-fuzzed seeds
/// decay, and fresh seeds start with the benefit of the doubt.
class NoveltySearcher : public Searcher {
 public:
  const char* name() const override { return "novelty"; }
  size_t PickNext(const std::vector<Seed>& seeds, Rng* rng) override;
};

/// Constructs a searcher by name ("roundrobin" | "novelty").
StatusOr<std::unique_ptr<Searcher>> MakeSearcher(const std::string& name);

/// The seed pool. Admission is novelty-gated by the caller (the fuzzer
/// checks the coverage map before offering).
class SeedQueue {
 public:
  explicit SeedQueue(size_t max_seeds = 4096) : max_seeds_(max_seeds) {}

  /// Adds a seed; drops it silently once the queue is at capacity.
  void Add(Seed seed);

  bool empty() const { return seeds_.empty(); }
  size_t size() const { return seeds_.size(); }

  Seed& at(size_t i) { return seeds_[i]; }
  const std::vector<Seed>& seeds() const { return seeds_; }

  /// Picks the next seed via `searcher` and counts the execution.
  Seed& Pick(Searcher* searcher, Rng* rng);

 private:
  std::vector<Seed> seeds_;
  size_t max_seeds_;
};

}  // namespace fuzz
}  // namespace qps

#endif  // QPS_FUZZ_SEED_QUEUE_H_
