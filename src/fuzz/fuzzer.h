// Copyright 2026 The QPSeeker Authors
//
// The coverage-guided fuzzing campaign: seed queries enter the queue, a
// searcher picks one, the mutator produces a semantic variant, the
// differential oracle runs it through every planner backend, and the
// behavior signature decides whether the mutant joins the queue. Oracle
// violations are minimized on the spot and persisted to the SQL corpus.
// With a fixed seed the whole campaign is deterministic: same queue
// decisions, same mutants, same signatures, byte-identical corpus.

#ifndef QPS_FUZZ_FUZZER_H_
#define QPS_FUZZ_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/mutator.h"
#include "fuzz/oracle.h"
#include "fuzz/seed_queue.h"
#include "query/query.h"
#include "util/status.h"

namespace qps {
namespace fuzz {

struct FuzzOptions {
  uint64_t seed = 42;       ///< campaign seed; fixes the entire run
  int64_t iters = 5000;     ///< mutation attempts after seed admission
  std::string searcher = "novelty";  ///< "novelty" | "roundrobin"
  std::string corpus_dir;   ///< empty: violations are reported, not written
  bool minimize = true;     ///< greedy-shrink violations before persisting
  int minimize_checks = 128;
  size_t max_seeds = 4096;
  int64_t log_every = 0;    ///< progress log cadence in iterations (0: off)
  QueryMutator::Options mutator;
  OracleOptions oracle;
};

/// Campaign results; also exported as qps.fuzz.* metrics.
struct FuzzReport {
  int64_t execs = 0;            ///< oracle runs (seeds + mutants)
  int64_t sterile_mutants = 0;  ///< picks where no mutation applied
  int64_t novel_signatures = 0;
  int64_t oracle_violations = 0;  ///< runs with >= 1 violation
  int64_t corpus_writes = 0;
  int64_t seeds_admitted = 0;   ///< workload seeds accepted into the queue
  size_t queue_depth = 0;
  size_t distinct_signatures = 0;
  int64_t violations_by_kind[5] = {0};
  int64_t mutation_counts[kNumMutationKinds] = {0};
  std::vector<std::string> corpus_files;      ///< paths written this run
  std::vector<std::string> violation_samples; ///< first few, for the log

  std::string ToString() const;
};

class Fuzzer {
 public:
  /// `model` may be null only when every oracle backend is "baseline".
  Fuzzer(const storage::Database& db, const stats::DatabaseStats& stats,
         const core::QpSeeker* model, const optimizer::Planner* baseline,
         FuzzOptions options = {});

  /// Runs one campaign from `seeds` (typically eval::GenerateWorkload
  /// output plus the checked-in corpus). Invalid or disconnected seeds are
  /// skipped; fails kInvalidArgument when none survive.
  StatusOr<FuzzReport> Run(const std::vector<query::Query>& seeds);

  const FuzzOptions& options() const { return options_; }

 private:
  const storage::Database& db_;
  QueryMutator mutator_;
  DifferentialOracle oracle_;
  FuzzOptions options_;
};

}  // namespace fuzz
}  // namespace qps

#endif  // QPS_FUZZ_FUZZER_H_
