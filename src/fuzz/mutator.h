// Copyright 2026 The QPSeeker Authors
//
// Semantic query mutation for the planner fuzzer. Unlike byte-level
// fuzzing, every mutation stays inside the IR's meaning: it permutes the
// FROM order (planners must be invariant to it), grows or shrinks the join
// graph while keeping it connected, perturbs predicate operators, pushes
// literals toward histogram bucket boundaries and extreme/sentinel values
// (where selectivity math is most fragile), and duplicates relations under
// fresh aliases to manufacture self-joins. Mutants always satisfy
// Query::Validate + IsConnected and round-trip through ToSql/ParseSql, so
// every interesting one can be checked into the SQL regression corpus.

#ifndef QPS_FUZZ_MUTATOR_H_
#define QPS_FUZZ_MUTATOR_H_

#include <optional>
#include <string>

#include "query/query.h"
#include "stats/analyze.h"
#include "storage/database.h"
#include "util/rng.h"

namespace qps {
namespace fuzz {

/// The mutation classes QueryMutator applies.
enum class MutationKind {
  kSwapRelations,      ///< swap two FROM entries (planner order invariance)
  kRotateRelations,    ///< rotate the whole FROM list
  kAddJoin,            ///< add a schema-edge or self-column join predicate
  kRemoveJoin,         ///< drop a join predicate, keeping connectivity
  kPerturbFilterOp,    ///< rewrite a filter's comparison operator
  kMutateLiteral,      ///< push a literal to a boundary / extreme value
  kAddFilter,          ///< attach a new filter predicate
  kRemoveFilter,       ///< drop a filter predicate
  kDuplicateRelation,  ///< alias-duplicate a relation (self-join)
};

constexpr int kNumMutationKinds = 9;

const char* MutationKindName(MutationKind kind);

struct MutatorOptions {
  int max_relations = 6;  ///< kAddJoin/kDuplicateRelation stop growing here
  int max_filters = 8;    ///< kAddFilter stops growing here
  /// Probability that kMutateLiteral / kAddFilter pick a histogram bucket
  /// boundary rather than an extreme/sentinel value.
  double boundary_bias = 0.6;
};

/// Applies one semantic mutation per call. Stateless besides configuration;
/// all randomness comes from the caller's Rng, so campaigns are replayable.
class QueryMutator {
 public:
  using Options = MutatorOptions;

  QueryMutator(const storage::Database& db, const stats::DatabaseStats& stats,
               MutatorOptions options = {});

  /// Produces one mutant of `seed`, or nullopt when no mutation class is
  /// applicable (e.g. a maximal query with no filters or removable joins).
  /// The returned query passes Query::Validate(db) and IsConnected().
  /// `kind_out`, when non-null, reports the mutation class applied.
  std::optional<query::Query> Mutate(const query::Query& seed, Rng* rng,
                                     MutationKind* kind_out = nullptr) const;

  const Options& options() const { return options_; }

 private:
  bool Apply(MutationKind kind, query::Query* q, Rng* rng) const;

  bool SwapRelations(query::Query* q, Rng* rng) const;
  bool RotateRelations(query::Query* q, Rng* rng) const;
  bool AddJoin(query::Query* q, Rng* rng) const;
  bool RemoveJoin(query::Query* q, Rng* rng) const;
  bool PerturbFilterOp(query::Query* q, Rng* rng) const;
  bool MutateLiteral(query::Query* q, Rng* rng) const;
  bool AddFilter(query::Query* q, Rng* rng) const;
  bool RemoveFilter(query::Query* q, Rng* rng) const;
  bool DuplicateRelation(query::Query* q, Rng* rng) const;

  /// A literal for (table_id, column): histogram boundary (possibly nudged
  /// off by one), extreme (min-1 / max+1 / int64 sentinels), or a value
  /// sampled from the column's most-common values.
  storage::Value SampleLiteral(int table_id, int column, Rng* rng) const;

  /// Remaps relation indices in joins/filters after a permutation of the
  /// relations vector; perm[i] is the new index of old relation i.
  static void RemapRelations(query::Query* q, const std::vector<int>& perm);

  const storage::Database& db_;
  const stats::DatabaseStats& stats_;
  Options options_;
};

}  // namespace fuzz
}  // namespace qps

#endif  // QPS_FUZZ_MUTATOR_H_
