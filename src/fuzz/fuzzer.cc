// Copyright 2026 The QPSeeker Authors

#include "fuzz/fuzzer.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "fuzz/corpus.h"
#include "fuzz/minimizer.h"
#include "fuzz/signature.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace qps {
namespace fuzz {

namespace {

struct FuzzMetrics {
  metrics::Counter* execs;
  metrics::Counter* novel;
  metrics::Counter* violations;
  metrics::Counter* corpus_writes;
  metrics::Counter* sterile;
  metrics::Gauge* queue_depth;

  static FuzzMetrics Get() {
    auto& reg = metrics::Registry::Global();
    return FuzzMetrics{
        reg.GetCounter("qps.fuzz.execs"),
        reg.GetCounter("qps.fuzz.novel_signatures"),
        reg.GetCounter("qps.fuzz.oracle_failures"),
        reg.GetCounter("qps.fuzz.corpus_writes"),
        reg.GetCounter("qps.fuzz.sterile_mutants"),
        reg.GetGauge("qps.fuzz.queue_depth"),
    };
  }
};

constexpr size_t kMaxViolationSamples = 8;

}  // namespace

std::string FuzzReport::ToString() const {
  std::ostringstream out;
  out << "fuzz campaign: " << execs << " oracle runs, "
      << distinct_signatures << " distinct signatures, "
      << oracle_violations << " violating runs, " << corpus_writes
      << " corpus writes\n";
  out << "  queue depth " << queue_depth << ", seeds admitted "
      << seeds_admitted << ", sterile mutants " << sterile_mutants << "\n";
  static const char* kKinds[] = {"plan-failure", "invalid-plan",
                                 "non-finite-stats", "exec-failure",
                                 "result-mismatch"};
  out << "  violations by kind:";
  for (int i = 0; i < 5; ++i) out << " " << kKinds[i] << "=" << violations_by_kind[i];
  out << "\n  mutations applied:";
  for (int i = 0; i < kNumMutationKinds; ++i) {
    out << " " << MutationKindName(static_cast<MutationKind>(i)) << "="
        << mutation_counts[i];
  }
  out << "\n";
  for (const auto& s : violation_samples) out << "  violation: " << s << "\n";
  for (const auto& f : corpus_files) out << "  corpus: " << f << "\n";
  return out.str();
}

Fuzzer::Fuzzer(const storage::Database& db, const stats::DatabaseStats& stats,
               const core::QpSeeker* model, const optimizer::Planner* baseline,
               FuzzOptions options)
    : db_(db),
      mutator_(db, stats, options.mutator),
      oracle_(db, model, baseline, options.oracle),
      options_(std::move(options)) {}

StatusOr<FuzzReport> Fuzzer::Run(const std::vector<query::Query>& seeds) {
  FuzzMetrics m = FuzzMetrics::Get();
  FuzzReport report;
  Rng rng(options_.seed);

  QPS_ASSIGN_OR_RETURN(std::unique_ptr<Searcher> searcher,
                       MakeSearcher(options_.searcher));
  SeedQueue queue(options_.max_seeds);
  CoverageMap coverage;

  auto record_violations = [&](const OracleReport& oracle_report,
                               const query::Query& q, uint64_t mutant_seed) {
    if (oracle_report.ok()) return;
    ++report.oracle_violations;
    m.violations->Increment();
    for (const auto& v : oracle_report.violations) {
      ++report.violations_by_kind[static_cast<int>(v.kind)];
      if (report.violation_samples.size() < kMaxViolationSamples) {
        report.violation_samples.push_back(v.ToString() + " -- " +
                                           q.ToSql(db_));
      }
    }
    if (options_.corpus_dir.empty()) return;

    // Minimize against the *first* violation kind: the shrink target must
    // be a single stable property or greedy removal chases a moving goal.
    const ViolationKind kind0 = oracle_report.violations.front().kind;
    query::Query repro = q;
    if (options_.minimize) {
      Minimizer minimizer(db_);
      repro = minimizer.Minimize(
          q,
          [&](const query::Query& candidate) {
            return oracle_.Check(candidate, mutant_seed).Has(kind0);
          },
          options_.minimize_checks);
    }
    auto path_or = WriteCorpusEntry(
        options_.corpus_dir, repro, db_,
        std::string(ViolationKindName(kind0)) + " (" +
            oracle_report.violations.front().backend + ")",
        options_.seed);
    if (!path_or.ok()) {
      QPS_LOG(Warning) << "corpus write failed: "
                       << path_or.status().ToString();
      return;
    }
    if (std::find(report.corpus_files.begin(), report.corpus_files.end(),
                  path_or.value()) == report.corpus_files.end()) {
      report.corpus_files.push_back(path_or.value());
      ++report.corpus_writes;
      m.corpus_writes->Increment();
    }
  };

  // Admit the workload seeds: one oracle run each, novelty-gated exactly
  // like mutants so duplicate seeds collapse.
  for (const query::Query& q : seeds) {
    if (!q.Validate(db_).ok() || !q.IsConnected()) continue;
    const uint64_t run_seed = rng.Next() | 1;
    OracleReport oracle_report = oracle_.Check(q, run_seed);
    ++report.execs;
    m.execs->Increment();
    record_violations(oracle_report, q, run_seed);
    if (coverage.Add(oracle_report.signature)) {
      ++report.novel_signatures;
      ++report.seeds_admitted;
      m.novel->Increment();
      queue.Add(Seed{q, oracle_report.signature, 0, 0, 0, 0});
    }
  }
  if (queue.empty()) {
    return Status::InvalidArgument(
        "no usable fuzzing seeds (all invalid, disconnected, or duplicate)");
  }
  m.queue_depth->Set(static_cast<double>(queue.size()));

  for (int64_t iter = 0; iter < options_.iters; ++iter) {
    Seed& seed = queue.Pick(searcher.get(), &rng);
    MutationKind kind;
    std::optional<query::Query> mutant = mutator_.Mutate(seed.query, &rng, &kind);
    if (!mutant.has_value()) {
      ++report.sterile_mutants;
      m.sterile->Increment();
      continue;
    }
    ++report.mutation_counts[static_cast<int>(kind)];

    const uint64_t run_seed = rng.Next() | 1;  // non-zero: pins MCTS
    OracleReport oracle_report = oracle_.Check(*mutant, run_seed);
    ++report.execs;
    m.execs->Increment();

    if (!oracle_report.ok()) {
      ++seed.violations_found;
      record_violations(oracle_report, *mutant, run_seed);
    }
    if (coverage.Add(oracle_report.signature)) {
      ++report.novel_signatures;
      ++seed.novel_children;
      m.novel->Increment();
      const int depth = seed.depth + 1;
      queue.Add(
          Seed{std::move(*mutant), oracle_report.signature, 0, 0, 0, depth});
      m.queue_depth->Set(static_cast<double>(queue.size()));
    }

    if (options_.log_every > 0 && (iter + 1) % options_.log_every == 0) {
      QPS_LOG(Info) << "fuzz iter " << (iter + 1) << "/" << options_.iters
                    << ": " << coverage.size() << " signatures, "
                    << report.oracle_violations << " violating runs, queue "
                    << queue.size();
    }
  }

  report.queue_depth = queue.size();
  report.distinct_signatures = coverage.size();
  m.queue_depth->Set(static_cast<double>(queue.size()));
  return report;
}

}  // namespace fuzz
}  // namespace qps
