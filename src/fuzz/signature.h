// Copyright 2026 The QPSeeker Authors
//
// Behavior signatures: the fuzzer's coverage metric. AFL counts branch
// edges; a planner's interesting state space is not its branches but its
// *decisions*, so we hash what the planning ladder did — plan shape,
// operator mix, which rung served, guard/fallback trips, result status,
// and the cardinality q-error magnitude — into one 64-bit signature per
// (query, backend-set) execution. A mutant that produces a signature the
// campaign has not seen before is novel and enters the seed queue.

#ifndef QPS_FUZZ_SIGNATURE_H_
#define QPS_FUZZ_SIGNATURE_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/planner_api.h"
#include "query/plan.h"
#include "query/query.h"

namespace qps {
namespace fuzz {

/// What one backend did with one query. Collected by the differential
/// oracle; hashed (ProbeSignature) into the campaign coverage map.
struct BackendProbe {
  std::string backend;
  StatusCode plan_status = StatusCode::kOk;
  core::PlanStage stage = core::PlanStage::kTraditional;
  bool used_neural = false;
  bool deadline_hit = false;
  std::string fallback_reason;
  uint64_t plan_shape_hash = 0;  ///< 0 when planning failed
  int op_counts[query::kNumOpTypes] = {0};
  int64_t guard_trips = 0;  ///< neural-failure + circuit-transition delta
  StatusCode exec_status = StatusCode::kOk;
  double actual_rows = -1.0;    ///< root cardinality; -1 = not executed
  double estimated_rows = 0.0;  ///< root cardinality estimate
  int qerror_decile = -1;       ///< QErrorDecile(est, actual); -1 = unknown
};

/// Order-insensitive structural hash of a plan tree: operator kinds, tree
/// parenthesization, and the *tables* (not aliases) at the leaves, so the
/// same shape found from a permuted FROM list hashes identically.
uint64_t PlanShapeHash(const query::Query& q, const query::PlanNode& plan);

/// Buckets the root-cardinality q-error into 10 log-scale deciles:
/// 0 = essentially exact, 9 = off by >= 2^9. Zero-row results use +1
/// smoothing so the bucket stays defined.
int QErrorDecile(double estimated, double actual);

/// Deterministic 64-bit digest of one probe.
uint64_t ProbeSignature(const BackendProbe& probe);

/// Digest of a whole differential run (all backends, order-sensitive in
/// the fixed backend order the oracle uses).
uint64_t CombinedSignature(const std::vector<BackendProbe>& probes);

/// The set of signatures a campaign has observed.
class CoverageMap {
 public:
  /// Inserts; returns true when the signature was new.
  bool Add(uint64_t signature) { return seen_.insert(signature).second; }
  bool Contains(uint64_t signature) const { return seen_.count(signature) > 0; }
  size_t size() const { return seen_.size(); }

 private:
  std::unordered_set<uint64_t> seen_;
};

}  // namespace fuzz
}  // namespace qps

#endif  // QPS_FUZZ_SIGNATURE_H_
