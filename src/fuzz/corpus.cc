// Copyright 2026 The QPSeeker Authors

#include "fuzz/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <utility>

#include "query/parser.h"
#include "util/hash.h"
#include "util/io.h"

namespace qps {
namespace fuzz {

namespace {

std::string Hash16(const std::string& s) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(util::HashString(s)));
  return std::string(buf);
}

}  // namespace

std::string RenderCorpusEntry(const query::Query& q,
                              const storage::Database& db,
                              const std::string& violation,
                              uint64_t campaign_seed) {
  std::ostringstream out;
  out << "# violation: " << violation << "\n";
  out << "# found-by: qps_fuzz seed=" << campaign_seed << "\n";
  out << q.ToSql(db) << "\n";
  return out.str();
}

StatusOr<std::string> WriteCorpusEntry(const std::string& dir,
                                       const query::Query& q,
                                       const storage::Database& db,
                                       const std::string& violation,
                                       uint64_t campaign_seed) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create corpus dir " + dir + ": " +
                           ec.message());
  }
  // Name by the hash of the SQL alone (not the header), so the same
  // minimized query found via different violations maps to one file.
  const std::string sql = q.ToSql(db);
  const std::string path = dir + "/v-" + Hash16(sql) + ".sql";
  QPS_RETURN_IF_ERROR(io::AtomicWriteFile(
      path, RenderCorpusEntry(q, db, violation, campaign_seed)));
  return path;
}

StatusOr<std::vector<CorpusEntry>> LoadCorpus(const std::string& dir,
                                              const storage::Database& db) {
  std::vector<CorpusEntry> entries;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return entries;  // empty ok

  std::vector<std::string> paths;
  for (const auto& de : std::filesystem::directory_iterator(dir, ec)) {
    if (!de.is_regular_file()) continue;
    if (de.path().extension() != ".sql") continue;
    paths.push_back(de.path().string());
  }
  if (ec) {
    return Status::IOError("cannot list corpus dir " + dir + ": " +
                           ec.message());
  }
  std::sort(paths.begin(), paths.end());

  for (const std::string& path : paths) {
    QPS_ASSIGN_OR_RETURN(std::string contents, io::ReadFileToString(path));
    CorpusEntry entry;
    entry.path = path;
    std::istringstream in(contents);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] == '#') {
        const std::string kViolation = "# violation: ";
        if (entry.violation.empty() && line.rfind(kViolation, 0) == 0) {
          entry.violation = line.substr(kViolation.size());
        }
        continue;
      }
      if (!entry.sql.empty()) entry.sql += "\n";
      entry.sql += line;
    }
    auto query_or = query::ParseSql(entry.sql, db);
    if (!query_or.ok()) {
      return Status::InvalidArgument("corpus entry " + path +
                                     " does not parse: " +
                                     query_or.status().ToString());
    }
    entry.query = std::move(query_or).value();
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace fuzz
}  // namespace qps
