// Copyright 2026 The QPSeeker Authors

#include "fuzz/minimizer.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "storage/value.h"

namespace qps {
namespace fuzz {

namespace {

// Removes relation `rel` from `in`: drops its joins and filters, erases the
// relation and remaps all indices above it. Returns false when the result
// would be empty, structurally invalid, or disconnected.
bool RemoveRelation(const query::Query& in, int rel, query::Query* out) {
  if (in.num_relations() <= 1) return false;
  query::Query q;
  q.template_id = in.template_id;
  q.relations.reserve(in.relations.size() - 1);
  for (int i = 0; i < in.num_relations(); ++i) {
    if (i != rel) q.relations.push_back(in.relations[static_cast<size_t>(i)]);
  }
  auto remap = [rel](int r) { return r > rel ? r - 1 : r; };
  for (const auto& j : in.joins) {
    if (j.left_rel == rel || j.right_rel == rel) continue;
    query::JoinPredicate nj = j;
    nj.left_rel = remap(nj.left_rel);
    nj.right_rel = remap(nj.right_rel);
    q.joins.push_back(nj);
  }
  for (const auto& f : in.filters) {
    if (f.rel == rel) continue;
    query::FilterPredicate nf = f;
    nf.rel = remap(nf.rel);
    q.filters.push_back(nf);
  }
  if (!q.ValidateStructure().ok() || !q.IsConnected()) return false;
  *out = std::move(q);
  return true;
}

bool RemoveJoin(const query::Query& in, size_t join, query::Query* out) {
  query::Query q = in;
  q.joins.erase(q.joins.begin() + static_cast<ptrdiff_t>(join));
  if (!q.IsConnected()) return false;
  *out = std::move(q);
  return true;
}

}  // namespace

query::Query Minimizer::Minimize(const query::Query& q,
                                 const StillFails& still_fails,
                                 int max_checks) const {
  query::Query best = q;
  int checks = 0;
  auto budget = [&checks, max_checks]() { return checks < max_checks; };
  auto accept = [&](query::Query* candidate) {
    if (!candidate->Validate(db_).ok()) return false;
    ++checks;
    if (!still_fails(*candidate)) return false;
    best = std::move(*candidate);
    return true;
  };

  bool changed = true;
  while (changed && budget()) {
    changed = false;

    // Pass 1: drop whole relations (the biggest shrink first).
    for (int rel = best.num_relations() - 1; rel >= 0 && budget(); --rel) {
      query::Query candidate;
      if (!RemoveRelation(best, rel, &candidate)) continue;
      if (accept(&candidate)) {
        changed = true;
        break;  // indices shifted; restart the pass over the new query
      }
    }
    if (changed) continue;

    // Pass 2: drop redundant join predicates (connectivity-preserving).
    for (size_t j = best.joins.size(); j-- > 0 && budget();) {
      query::Query candidate;
      if (!RemoveJoin(best, j, &candidate)) continue;
      if (accept(&candidate)) {
        changed = true;
        break;
      }
    }
    if (changed) continue;

    // Pass 3: drop filters.
    for (size_t f = best.filters.size(); f-- > 0 && budget();) {
      query::Query candidate = best;
      candidate.filters.erase(candidate.filters.begin() +
                              static_cast<ptrdiff_t>(f));
      if (accept(&candidate)) {
        changed = true;
        break;
      }
    }
    if (changed) continue;

    // Pass 4: simplify surviving filter literals toward zero / the empty
    // string — extreme constants obscure what a repro actually needs.
    for (size_t f = 0; f < best.filters.size() && budget(); ++f) {
      const storage::Value& v = best.filters[f].value;
      storage::Value simple;
      switch (v.type) {
        case storage::DataType::kInt64:
          if (v.i == 0) continue;
          simple = storage::Value::Int(0);
          break;
        case storage::DataType::kFloat64:
          if (v.d == 0.0) continue;
          simple = storage::Value::Float(0.0);
          break;
        default:
          continue;  // strings stay as-is (dictionary codes are db-specific)
      }
      query::Query candidate = best;
      candidate.filters[f].value = simple;
      if (accept(&candidate)) changed = true;
    }
  }
  return best;
}

}  // namespace fuzz
}  // namespace qps
