// Copyright 2026 The QPSeeker Authors

#include "fuzz/signature.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"

namespace qps {
namespace fuzz {

namespace {

uint64_t ShapeHashNode(const query::Query& q, const query::PlanNode& node) {
  uint64_t h = util::Mix64(static_cast<uint64_t>(node.op) + 1);
  if (node.is_leaf()) {
    const int table_id =
        (node.rel >= 0 && node.rel < q.num_relations())
            ? q.relations[static_cast<size_t>(node.rel)].table_id
            : -1;
    h = util::HashCombine(h, static_cast<uint64_t>(table_id + 2));
    return h;
  }
  const uint64_t left =
      node.left != nullptr ? ShapeHashNode(q, *node.left) : 0;
  const uint64_t right =
      node.right != nullptr ? ShapeHashNode(q, *node.right) : 0;
  h = util::HashCombine(h, left);
  h = util::HashCombine(h, right);
  return h;
}

}  // namespace

uint64_t PlanShapeHash(const query::Query& q, const query::PlanNode& plan) {
  const uint64_t h = ShapeHashNode(q, plan);
  return h == 0 ? 1 : h;  // 0 is reserved for "no plan"
}

int QErrorDecile(double estimated, double actual) {
  if (!std::isfinite(estimated) || !std::isfinite(actual)) return 9;
  const double est = std::max(0.0, estimated) + 1.0;
  const double act = std::max(0.0, actual) + 1.0;
  const double qerr = std::max(est / act, act / est);
  if (qerr <= 1.0) return 0;
  const int bucket = static_cast<int>(std::floor(std::log2(qerr))) + 1;
  return std::clamp(bucket, 0, 9);
}

uint64_t ProbeSignature(const BackendProbe& probe) {
  uint64_t h = util::HashString(probe.backend);
  h = util::HashCombine(h, static_cast<uint64_t>(probe.plan_status));
  h = util::HashCombine(h, static_cast<uint64_t>(probe.stage));
  h = util::HashCombine(h, (probe.used_neural ? 2u : 0u) |
                               (probe.deadline_hit ? 1u : 0u));
  h = util::HashCombine(h, probe.plan_shape_hash);
  for (int c : probe.op_counts) {
    // Cap operator counts so very wide plans don't make every signature
    // unique on count alone; the shape hash already separates structures.
    h = util::HashCombine(h, static_cast<uint64_t>(std::min(c, 4)));
  }
  h = util::HashCombine(h, static_cast<uint64_t>(std::min<int64_t>(
                               probe.guard_trips, 4)));
  h = util::HashCombine(h, static_cast<uint64_t>(probe.exec_status));
  h = util::HashCombine(h, static_cast<uint64_t>(probe.qerror_decile + 1));
  return h;
}

uint64_t CombinedSignature(const std::vector<BackendProbe>& probes) {
  uint64_t h = 0x5150534655ULL;  // "QPSFU"
  for (const auto& p : probes) h = util::HashCombine(h, ProbeSignature(p));
  return h;
}

}  // namespace fuzz
}  // namespace qps
