// Copyright 2026 The QPSeeker Authors
//
// The self-growing regression corpus. Every minimized oracle violation is
// persisted as one SQL file under tests/corpus/planner/ — human-readable,
// reviewable in diffs, replayed by planner_fuzz_test on every tier-1 run.
// File names are derived from the content hash of the SQL, so re-finding
// the same minimized repro (or re-running a campaign with the same seed)
// is idempotent and byte-identical.

#ifndef QPS_FUZZ_CORPUS_H_
#define QPS_FUZZ_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query.h"
#include "storage/database.h"
#include "util/status.h"

namespace qps {
namespace fuzz {

/// One corpus file: `# ` comment header lines plus the query SQL.
struct CorpusEntry {
  std::string path;      ///< full path of the file
  std::string violation; ///< first "# violation:" header line, if any
  std::string sql;       ///< the query text (comments stripped)
  query::Query query;    ///< parsed against the replay database
};

/// Renders a corpus file body for a minimized violation.
std::string RenderCorpusEntry(const query::Query& q,
                              const storage::Database& db,
                              const std::string& violation,
                              uint64_t campaign_seed);

/// Atomically writes `q` to `<dir>/v-<hash16>.sql` and returns the path.
/// Writing the same query twice is a no-op rewrite of the same file.
StatusOr<std::string> WriteCorpusEntry(const std::string& dir,
                                       const query::Query& q,
                                       const storage::Database& db,
                                       const std::string& violation,
                                       uint64_t campaign_seed);

/// Loads every `*.sql` entry under `dir` (sorted by file name, so replay
/// order is stable), parsing each against `db`. A file that fails to parse
/// makes the whole load fail: a corrupt corpus should fail loudly in CI,
/// not silently shrink coverage.
StatusOr<std::vector<CorpusEntry>> LoadCorpus(const std::string& dir,
                                              const storage::Database& db);

}  // namespace fuzz
}  // namespace qps

#endif  // QPS_FUZZ_CORPUS_H_
