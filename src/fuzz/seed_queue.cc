// Copyright 2026 The QPSeeker Authors

#include "fuzz/seed_queue.h"

#include "util/logging.h"

namespace qps {
namespace fuzz {

size_t RoundRobinSearcher::PickNext(const std::vector<Seed>& seeds, Rng* rng) {
  (void)rng;
  QPS_CHECK(!seeds.empty());
  if (next_ >= seeds.size()) next_ = 0;
  return next_++;
}

size_t NoveltySearcher::PickNext(const std::vector<Seed>& seeds, Rng* rng) {
  QPS_CHECK(!seeds.empty());
  std::vector<double> weights;
  weights.reserve(seeds.size());
  for (const auto& s : seeds) {
    weights.push_back(
        (1.0 + s.novel_children + 4.0 * s.violations_found) /
        (1.0 + s.executions));
  }
  return rng->Categorical(weights);
}

StatusOr<std::unique_ptr<Searcher>> MakeSearcher(const std::string& name) {
  if (name == "roundrobin") {
    return std::unique_ptr<Searcher>(new RoundRobinSearcher());
  }
  if (name == "novelty") {
    return std::unique_ptr<Searcher>(new NoveltySearcher());
  }
  return Status::InvalidArgument("unknown searcher: " + name +
                                 " (expected roundrobin|novelty)");
}

void SeedQueue::Add(Seed seed) {
  if (seeds_.size() >= max_seeds_) return;
  seeds_.push_back(std::move(seed));
}

Seed& SeedQueue::Pick(Searcher* searcher, Rng* rng) {
  QPS_CHECK(!seeds_.empty()) << "Pick on an empty seed queue";
  Seed& s = seeds_[searcher->PickNext(seeds_, rng)];
  ++s.executions;
  return s;
}

}  // namespace fuzz
}  // namespace qps
