// Copyright 2026 The QPSeeker Authors
//
// ANALYZE-style statistics: equi-depth histograms, most-common values, and
// distinct counts. These drive (a) the PostgreSQL-like baseline optimizer's
// selectivity estimation and (b) the TabSketch data representations that
// substitute for TaBERT.

#ifndef QPS_STATS_HISTOGRAM_H_
#define QPS_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/value.h"

namespace qps {
namespace stats {

/// Equi-depth histogram over a column's numeric representation.
class EquiDepthHistogram {
 public:
  EquiDepthHistogram() = default;

  /// Builds from (a copy of) the values with `buckets` equal-count buckets.
  static EquiDepthHistogram Build(std::vector<double> values, int buckets);

  /// Fraction of rows satisfying (x op v), in [0, 1].
  double Selectivity(storage::CompareOp op, double v) const;

  /// Fraction of rows strictly below v.
  double FractionBelow(double v) const;

  double min() const { return bounds_.empty() ? 0.0 : bounds_.front(); }
  double max() const { return bounds_.empty() ? 0.0 : bounds_.back(); }
  int num_buckets() const { return static_cast<int>(bounds_.size()) - 1; }
  int64_t row_count() const { return row_count_; }
  bool empty() const { return bounds_.size() < 2; }

  /// Bucket boundaries (num_buckets + 1 values). The *shape* of these
  /// quantiles is the distribution fingerprint TabSketch embeds.
  const std::vector<double>& bounds() const { return bounds_; }

  /// Shannon entropy (nats) of the bucket mass distribution after clipping
  /// the histogram to rows satisfying (x op v); measures residual spread.
  double ConditionalEntropy(storage::CompareOp op, double v) const;

  std::string DebugString() const;

 private:
  std::vector<double> bounds_;  ///< quantile boundaries, size buckets+1
  int64_t row_count_ = 0;
};

/// Most-common values with frequencies (fractions of the table).
struct MostCommonValues {
  std::vector<double> values;
  std::vector<double> fractions;

  /// Fraction for an exact value if tracked; -1 if not an MCV.
  double FractionFor(double v) const;
  /// Total mass covered by the MCV list.
  double TotalFraction() const;
};

/// Per-column statistics produced by Analyze().
struct ColumnStats {
  storage::DataType type = storage::DataType::kInt64;
  int64_t row_count = 0;
  int64_t distinct_count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  EquiDepthHistogram histogram;
  MostCommonValues mcv;

  /// Estimated selectivity of (col op v) combining MCVs and the histogram —
  /// the same approach PostgreSQL's eqsel/scalarltsel take.
  double Selectivity(storage::CompareOp op, double v) const;
};

}  // namespace stats
}  // namespace qps

#endif  // QPS_STATS_HISTOGRAM_H_
