// Copyright 2026 The QPSeeker Authors
//
// ANALYZE: computes per-table / per-column statistics for a database, the
// equivalent of the paper's "we have updated the internal statistics using
// the ANALYZE command" (§7.1.4).

#ifndef QPS_STATS_ANALYZE_H_
#define QPS_STATS_ANALYZE_H_

#include <memory>
#include <vector>

#include "stats/histogram.h"
#include "storage/database.h"

namespace qps {
namespace stats {

/// Statistics for one table.
struct TableStats {
  int64_t row_count = 0;
  std::vector<ColumnStats> columns;
};

/// Statistics for all tables in a database.
class DatabaseStats {
 public:
  /// Scans every table; `histogram_buckets` and `mcv_count` mirror
  /// PostgreSQL's default_statistics_target knobs.
  static std::unique_ptr<DatabaseStats> Analyze(const storage::Database& db,
                                                int histogram_buckets = 32,
                                                int mcv_count = 8);

  const TableStats& table(int idx) const { return tables_[static_cast<size_t>(idx)]; }
  const ColumnStats& column(int table, int col) const {
    return tables_[static_cast<size_t>(table)].columns[static_cast<size_t>(col)];
  }
  int num_tables() const { return static_cast<int>(tables_.size()); }

 private:
  std::vector<TableStats> tables_;
};

/// Builds ColumnStats from raw values (exposed for tests and TabSketch).
ColumnStats ComputeColumnStats(const storage::Column& column, int histogram_buckets,
                               int mcv_count);

}  // namespace stats
}  // namespace qps

#endif  // QPS_STATS_ANALYZE_H_
