// Copyright 2026 The QPSeeker Authors

#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace qps {
namespace stats {

using storage::CompareOp;

EquiDepthHistogram EquiDepthHistogram::Build(std::vector<double> values,
                                             int buckets) {
  EquiDepthHistogram h;
  h.row_count_ = static_cast<int64_t>(values.size());
  if (values.empty() || buckets <= 0) return h;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  h.bounds_.reserve(static_cast<size_t>(buckets) + 1);
  h.bounds_.push_back(values.front());
  for (int b = 1; b < buckets; ++b) {
    const size_t idx = std::min(n - 1, (n * static_cast<size_t>(b)) / static_cast<size_t>(buckets));
    h.bounds_.push_back(values[idx]);
  }
  h.bounds_.push_back(values.back());
  return h;
}

double EquiDepthHistogram::FractionBelow(double v) const {
  if (empty()) return 0.5;
  if (v <= bounds_.front()) return 0.0;
  if (v > bounds_.back()) return 1.0;
  const int nb = num_buckets();
  const double per_bucket = 1.0 / static_cast<double>(nb);
  double frac = 0.0;
  for (int b = 0; b < nb; ++b) {
    const double lo = bounds_[static_cast<size_t>(b)];
    const double hi = bounds_[static_cast<size_t>(b) + 1];
    if (v > hi) {
      frac += per_bucket;
      continue;
    }
    if (hi > lo) frac += per_bucket * (v - lo) / (hi - lo);
    break;
  }
  return std::clamp(frac, 0.0, 1.0);
}

double EquiDepthHistogram::Selectivity(CompareOp op, double v) const {
  if (empty()) return 0.33;
  const double below = FractionBelow(v);
  // Equality mass: approximate with local bucket density over one "value".
  double eq = 0.0;
  if (v >= bounds_.front() && v <= bounds_.back()) {
    const int nb = num_buckets();
    const double per_bucket = 1.0 / static_cast<double>(nb);
    for (int b = 0; b < nb; ++b) {
      const double lo = bounds_[static_cast<size_t>(b)];
      const double hi = bounds_[static_cast<size_t>(b) + 1];
      if (v >= lo && v <= hi) {
        const double width = std::max(hi - lo, 1.0);
        eq = std::max(eq, per_bucket / width);
      }
    }
  }
  eq = std::clamp(eq, 0.0, 1.0);
  // `below` interpolates through the boundary value's own mass; splitting the
  // estimated equality mass symmetrically keeps kLe + kGt == 1 and stays
  // accurate for both continuous and discrete domains.
  switch (op) {
    case CompareOp::kEq:
      return eq;
    case CompareOp::kNe:
      return std::clamp(1.0 - eq, 0.0, 1.0);
    case CompareOp::kLt:
      return std::clamp(below - eq / 2.0, 0.0, 1.0);
    case CompareOp::kLe:
      return std::clamp(below + eq / 2.0, 0.0, 1.0);
    case CompareOp::kGt:
      return std::clamp(1.0 - below - eq / 2.0, 0.0, 1.0);
    case CompareOp::kGe:
      return std::clamp(1.0 - below + eq / 2.0, 0.0, 1.0);
  }
  return 0.33;
}

double EquiDepthHistogram::ConditionalEntropy(CompareOp op, double v) const {
  if (empty()) return 0.0;
  const int nb = num_buckets();
  std::vector<double> mass(static_cast<size_t>(nb), 0.0);
  double total = 0.0;
  for (int b = 0; b < nb; ++b) {
    const double lo = bounds_[static_cast<size_t>(b)];
    const double hi = bounds_[static_cast<size_t>(b) + 1];
    double keep = 0.0;
    switch (op) {
      case CompareOp::kLt:
      case CompareOp::kLe:
        keep = v >= hi ? 1.0 : (v <= lo ? 0.0 : (v - lo) / std::max(hi - lo, 1e-12));
        break;
      case CompareOp::kGt:
      case CompareOp::kGe:
        keep = v <= lo ? 1.0 : (v >= hi ? 0.0 : (hi - v) / std::max(hi - lo, 1e-12));
        break;
      case CompareOp::kEq:
        keep = (v >= lo && v <= hi) ? 1.0 : 0.0;
        break;
      case CompareOp::kNe:
        keep = 1.0;
        break;
    }
    mass[static_cast<size_t>(b)] = keep;
    total += keep;
  }
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (double m : mass) {
    if (m <= 0.0) continue;
    const double p = m / total;
    entropy -= p * std::log(p);
  }
  return entropy;
}

std::string EquiDepthHistogram::DebugString() const {
  std::ostringstream os;
  os << "hist[" << num_buckets() << " buckets, " << row_count_ << " rows]";
  return os.str();
}

double MostCommonValues::FractionFor(double v) const {
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] == v) return fractions[i];
  }
  return -1.0;
}

double MostCommonValues::TotalFraction() const {
  double total = 0.0;
  for (double f : fractions) total += f;
  return total;
}

double ColumnStats::Selectivity(CompareOp op, double v) const {
  if (row_count == 0) return 0.0;
  if (op == CompareOp::kEq) {
    const double mcv_frac = mcv.FractionFor(v);
    if (mcv_frac >= 0.0) return mcv_frac;
    // Non-MCV equality: remaining mass spread over remaining distinct values.
    const double rest_mass = std::max(0.0, 1.0 - mcv.TotalFraction());
    const double rest_distinct =
        std::max(1.0, static_cast<double>(distinct_count) -
                          static_cast<double>(mcv.values.size()));
    return std::clamp(rest_mass / rest_distinct, 0.0, 1.0);
  }
  if (op == CompareOp::kNe) {
    return std::clamp(1.0 - Selectivity(CompareOp::kEq, v), 0.0, 1.0);
  }
  return histogram.Selectivity(op, v);
}

}  // namespace stats
}  // namespace qps
