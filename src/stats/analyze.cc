// Copyright 2026 The QPSeeker Authors

#include "stats/analyze.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace qps {
namespace stats {

ColumnStats ComputeColumnStats(const storage::Column& column, int histogram_buckets,
                               int mcv_count) {
  ColumnStats cs;
  cs.type = column.type();
  cs.row_count = column.size();
  if (cs.row_count == 0) return cs;

  std::vector<double> values;
  values.reserve(static_cast<size_t>(cs.row_count));
  for (int64_t r = 0; r < cs.row_count; ++r) values.push_back(column.GetDouble(r));

  double sum = 0.0, sum_sq = 0.0;
  cs.min = values[0];
  cs.max = values[0];
  std::unordered_map<double, int64_t> freq;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
    cs.min = std::min(cs.min, v);
    cs.max = std::max(cs.max, v);
    ++freq[v];
  }
  const double n = static_cast<double>(cs.row_count);
  cs.mean = sum / n;
  cs.stddev = std::sqrt(std::max(0.0, sum_sq / n - cs.mean * cs.mean));
  cs.distinct_count = static_cast<int64_t>(freq.size());

  // MCVs: top-k by frequency.
  std::vector<std::pair<double, int64_t>> pairs(freq.begin(), freq.end());
  const size_t k = std::min<size_t>(static_cast<size_t>(mcv_count), pairs.size());
  std::partial_sort(pairs.begin(), pairs.begin() + static_cast<ptrdiff_t>(k), pairs.end(),
                    [](const auto& a, const auto& b) { return a.second > b.second; });
  for (size_t i = 0; i < k; ++i) {
    cs.mcv.values.push_back(pairs[i].first);
    cs.mcv.fractions.push_back(static_cast<double>(pairs[i].second) / n);
  }

  cs.histogram = EquiDepthHistogram::Build(std::move(values), histogram_buckets);
  return cs;
}

std::unique_ptr<DatabaseStats> DatabaseStats::Analyze(const storage::Database& db,
                                                      int histogram_buckets,
                                                      int mcv_count) {
  auto stats = std::make_unique<DatabaseStats>();
  stats->tables_.resize(static_cast<size_t>(db.num_tables()));
  for (int t = 0; t < db.num_tables(); ++t) {
    const storage::Table& table = db.table(t);
    TableStats& ts = stats->tables_[static_cast<size_t>(t)];
    ts.row_count = table.num_rows();
    ts.columns.reserve(static_cast<size_t>(table.num_columns()));
    for (int c = 0; c < table.num_columns(); ++c) {
      ts.columns.push_back(
          ComputeColumnStats(table.column(c), histogram_buckets, mcv_count));
    }
  }
  return stats;
}

}  // namespace stats
}  // namespace qps
