// Copyright 2026 The QPSeeker Authors
//
// Int8 affine quantization of model weights and activations (DESIGN.md §14).
//
// Weights are quantized symmetrically (zero point 0) either per tensor or
// per output channel (per column of a y = x @ W weight), at checkpoint save
// or in memory; the persisted form (QuantizedTensor) keeps the weight's
// natural row-major orientation so the checkpoint format stays layout-
// agnostic, and PackForGemm produces the kernel form: transposed to
// (out x k), k padded to a multiple of 64, rows 32-byte aligned, with
// per-output-channel int32 weight row sums precomputed for the activation
// zero-point correction.
//
// Activations are quantized dynamically to uint8, **per row** of the batch
// (each row's own min/max, always including zero so the zero point is
// exact and in range). Per-row — not per-batch — is deliberate: row r of a
// quantized forward depends only on row r of the input, which preserves
// the batch-composition-independence invariant the batched encoder, the
// cross-query fusion, and the serving determinism tests all rely on
// (PredictPlansBatch == PredictPlan, bitwise, at any batch size).

#ifndef QPS_NN_QUANT_H_
#define QPS_NN_QUANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "util/aligned.h"
#include "util/status.h"

namespace qps {
namespace nn {

/// How a weight matrix's scales are shared. kPerChannel means one scale
/// per output channel, i.e. per column of a (in x out) Linear weight —
/// used for output layers where per-channel ranges differ most.
enum class QuantScheme : uint32_t {
  kPerTensor = 0,
  kPerChannel = 1,
};

const char* QuantSchemeName(QuantScheme scheme);

/// Persisted quantized weight: int8 values in the tensor's natural
/// (rows x cols) row-major orientation, plus affine parameters. Weight
/// quantization is symmetric, so every zero point is 0 (the field exists
/// so the format can carry asymmetric tensors later; the loader rejects
/// nonzero values today).
struct QuantizedTensor {
  int64_t rows = 0;
  int64_t cols = 0;
  QuantScheme scheme = QuantScheme::kPerTensor;
  std::vector<float> scales;        ///< 1 (per tensor) or cols (per channel)
  std::vector<int32_t> zero_points; ///< same count as scales, all 0
  util::AlignedVector<int8_t> data; ///< rows * cols values

  int64_t num_scales() const {
    return scheme == QuantScheme::kPerTensor ? 1 : cols;
  }
};

/// Symmetric int8 quantization of `w` (values clamped to [-127, 127], so
/// -128 never appears and |dequantized - original| <= scale / 2 per entry).
/// An all-zero tensor (or channel) gets scale 1.
QuantizedTensor QuantizeWeights(const Tensor& w, QuantScheme scheme);

/// Reconstructs the f32 tensor (scale * q per entry).
Tensor Dequantize(const QuantizedTensor& q);

/// Structural validation shared by the checkpoint loader and tests: sane
/// dims, scale count matching the scheme, every scale finite and positive,
/// every zero point 0, data sized rows*cols. `context` prefixes messages.
Status ValidateQuantizedTensor(const QuantizedTensor& q,
                               const std::string& context);

/// Kernel-ready weights for out = x(m x in) @ W(in x out): W transposed to
/// (out x k_padded) so each output channel's weights are contiguous along
/// k, rows zero-padded to a multiple of 64 and 32-byte aligned.
///
/// `vnni_data` is a second copy of the same weights in the blocked layout
/// the AVX512-VNNI kernel consumes: output channels grouped 16 at a time
/// (one zmm of i32 accumulators), k grouped 4 at a time (one vpdpbusd
/// step), i.e. byte [jb*16*k_padded + kg*64 + c*4 + b] holds
/// weight(k = 4*kg + b, channel = 16*jb + c), zero beyond `out`/`in`.
/// 64-byte aligned so every weight block is one aligned zmm load.
struct PackedQuantWeights {
  int64_t in = 0;          ///< logical k
  int64_t out = 0;         ///< output channels
  int64_t k_padded = 0;    ///< in rounded up to a multiple of 64
  int64_t out_padded = 0;  ///< out rounded up to a multiple of 16
  util::AlignedVector<int8_t> data;  ///< out rows x k_padded
  std::vector<int8_t, util::AlignedAllocator<int8_t, 64>>
      vnni_data;                     ///< out_padded x k_padded, blocked
  std::vector<float> scales;         ///< out entries (broadcast if per-tensor)
  std::vector<int32_t> row_sums;     ///< per-channel sum of int8 weights

  bool ready() const { return out > 0; }
};

PackedQuantWeights PackForGemm(const QuantizedTensor& q);

/// Dynamically quantized activations: uint8 affine, one (scale, zero
/// point) pair per row, rows padded with the row's zero point to k_padded
/// (padded weight lanes are 0, so padding contributes nothing).
struct QuantizedActs {
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t k_padded = 0;
  util::AlignedVector<uint8_t> data;  ///< rows x k_padded
  std::vector<float> scales;          ///< per row
  std::vector<int32_t> zero_points;   ///< per row, in [0, 255]
};

/// Per-row dynamic quantization of `x`. The row range always includes 0,
/// so zero is exactly representable and the zero point lands in [0, 255].
/// Records `qps.nn.int8.dequant_ms` above a small work threshold.
void QuantizeActivationsPerRow(const Tensor& x, QuantizedActs* out);

/// Dequantization epilogue of the int8 GEMM: converts the i32 accumulator
/// block `acc` (a.rows x w.out, row-major) to f32,
///   out(i,j) = sa[i] * sw[j] * (acc(i,j) - zp[i] * row_sum[j]) + bias[j],
/// where the zp*row_sum term removes the activation zero-point offset.
/// `bias` may be null. Lives here (not gemm_int8.cc) so the build can
/// host-tune it: it is elementwise float math with identical results at
/// any vector width, unlike the kernels behind the ISA dispatch.
void DequantizeGemmOutput(const QuantizedActs& a, const PackedQuantWeights& w,
                          const int32_t* acc, const float* bias, Tensor* out);

/// One layer weight's attached int8 state: the persisted form (for
/// re-saving exactly what is being served) plus the packed kernel form.
struct QuantSlot {
  QuantizedTensor stored;
  PackedQuantWeights packed;

  bool ready() const { return packed.ready(); }
  void Clear() {
    stored = QuantizedTensor();
    packed = PackedQuantWeights();
  }
};

}  // namespace nn
}  // namespace qps

#endif  // QPS_NN_QUANT_H_
