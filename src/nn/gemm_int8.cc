// Copyright 2026 The QPSeeker Authors
//
// This file is deliberately compiled WITHOUT -march=native (see
// src/nn/CMakeLists.txt): the scalar kernel must stay an honest portable
// baseline, so only the functions tagged __attribute__((target(...)))
// may use wide ops. The AVX2 kernel widens u8/s8 lanes to i16
// (vpmovzxbw / vpmovsxbw) and multiply-accumulates with vpmaddwd into i32
// lanes. We do NOT use vpmaddubsw: it saturates its i16 pair sums (u8*s8
// pairs can reach 255*127*2 > 32767), which would silently clip large
// activations and break the scalar/AVX2 bit-identity contract. vpmaddwd
// products fit i32 exactly, so both kernels compute the same integers.
//
// The AVX512-VNNI kernel uses vpdpbusd, which is also exact for our
// operands: each u8*s8 product fits i16 (255*127 = 32385 <= 32767 — the
// non-saturating vpdpbusd, not vpdpbusds), and the 4-way product sum is
// sign-extended into the i32 accumulator without saturation. All three
// kernels therefore compute bit-identical i32 accumulates (integer
// addition is associative), which the quant tests assert directly.

#include "nn/gemm_int8.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include <vector>

#include "util/aligned.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace qps {
namespace nn {

namespace {

constexpr int64_t kGemmMetricMinWork = 4096;  // mirrors tensor.cc

metrics::Histogram* Int8GemmHistogram() {
  static metrics::Histogram* const h =
      metrics::Registry::Global().GetHistogram("qps.nn.int8.gemm_ms");
  return h;
}

// Portable scalar kernel. k_padded is a multiple of 32 and the padded
// activation lanes line up with zero weights, so no tail handling is
// needed. The multiply goes through i16 casts (exact: u8 and s8 both fit
// i16, and every i16*i16 product fits i32) so the compiler's dot-product
// pattern matcher can turn the loop into whatever the *baseline* target
// offers (pmaddwd on plain x86-64 SSE2) — still portable C++, no
// intrinsics, same integers on any host.
void AccumulateScalar(const uint8_t* __restrict a, const int8_t* __restrict w,
                      int64_t m, int64_t n, int64_t kp,
                      int32_t* __restrict acc) {
  for (int64_t i = 0; i < m; ++i) {
    const uint8_t* arow = a + i * kp;
    for (int64_t j = 0; j < n; ++j) {
      const int8_t* wrow = w + j * kp;
      int32_t sum = 0;
      for (int64_t p = 0; p < kp; ++p) {
        const int16_t av = static_cast<int16_t>(arow[p]);
        const int16_t wv = static_cast<int16_t>(wrow[p]);
        sum += static_cast<int32_t>(av) * static_cast<int32_t>(wv);
      }
      acc[i * n + j] = sum;
    }
  }
}

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define QPS_HAVE_AVX2_KERNEL 1

// One 16-lane step: widen 16 u8 activations and 16 s8 weights to i16,
// vpmaddwd pairs them into 8 i32 partial sums. Exact: |product| <=
// 255 * 127 and pair sums fit i32 with room to spare.
__attribute__((target("avx2"))) inline __m256i MaddStep(const uint8_t* ap,
                                                        const int8_t* wp) {
  const __m256i av =
      _mm256_cvtepu8_epi16(_mm_load_si128(reinterpret_cast<const __m128i*>(ap)));
  const __m256i wv =
      _mm256_cvtepi8_epi16(_mm_load_si128(reinterpret_cast<const __m128i*>(wp)));
  return _mm256_madd_epi16(av, wv);
}

__attribute__((target("avx2"))) inline int32_t ReduceI32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

// Four output channels at a time share each activation load: the GEMV case
// (m == 1) is weight-bandwidth-bound, so amortizing the activation widen
// across 4 weight rows keeps the port pressure on loads + vpmaddwd.
__attribute__((target("avx2"))) void AccumulateAvx2(const uint8_t* a,
                                                    const int8_t* w, int64_t m,
                                                    int64_t n, int64_t kp,
                                                    int32_t* acc) {
  for (int64_t i = 0; i < m; ++i) {
    const uint8_t* arow = a + i * kp;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const int8_t* w0 = w + (j + 0) * kp;
      const int8_t* w1 = w + (j + 1) * kp;
      const int8_t* w2 = w + (j + 2) * kp;
      const int8_t* w3 = w + (j + 3) * kp;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (int64_t p = 0; p < kp; p += 16) {
        const __m256i av = _mm256_cvtepu8_epi16(
            _mm_load_si128(reinterpret_cast<const __m128i*>(arow + p)));
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(
                      av, _mm256_cvtepi8_epi16(_mm_load_si128(
                              reinterpret_cast<const __m128i*>(w0 + p)))));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(
                      av, _mm256_cvtepi8_epi16(_mm_load_si128(
                              reinterpret_cast<const __m128i*>(w1 + p)))));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(
                      av, _mm256_cvtepi8_epi16(_mm_load_si128(
                              reinterpret_cast<const __m128i*>(w2 + p)))));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_madd_epi16(
                      av, _mm256_cvtepi8_epi16(_mm_load_si128(
                              reinterpret_cast<const __m128i*>(w3 + p)))));
      }
      int32_t* out = acc + i * n + j;
      out[0] = ReduceI32(acc0);
      out[1] = ReduceI32(acc1);
      out[2] = ReduceI32(acc2);
      out[3] = ReduceI32(acc3);
    }
    for (; j < n; ++j) {
      const int8_t* wrow = w + j * kp;
      __m256i accv = _mm256_setzero_si256();
      for (int64_t p = 0; p < kp; p += 16) {
        accv = _mm256_add_epi32(accv, MaddStep(arow + p, wrow + p));
      }
      acc[i * n + j] = ReduceI32(accv);
    }
  }
}

// The VNNI kernel consumes the NK4-blocked copy of the weights
// (PackedQuantWeights::vnni_data): 16 output channels per zmm of i32
// accumulators, 4 k-lanes per vpdpbusd step. Broadcasting 4 activation
// bytes to all 16 lanes turns every step into one load + one broadcast +
// one vpdpbusd with NO horizontal reduction anywhere — the reduce chain
// is what capped the row-major layout at k=256, where each output got
// only k/64 vector ops before paying a ~6-uop reduce. Blocking 2 rows x
// 32 channels amortizes the broadcasts and keeps vpdpbusd ports busy.

__attribute__((target("avx512f,avx512vnni"))) inline __m512i Bcast4(
    const uint8_t* p) {
  int32_t v;
  __builtin_memcpy(&v, p, 4);
  return _mm512_set1_epi32(v);
}

// Stores min(lanes, 16) i32 lanes; `lanes` < 16 only for the final ragged
// channel block.
__attribute__((target("avx512f"))) inline void Store16(int32_t* dst,
                                                       __m512i v,
                                                       int64_t lanes) {
  if (lanes >= 16) {
    _mm512_storeu_si512(dst, v);
  } else {
    const __mmask16 mask = static_cast<__mmask16>((1u << lanes) - 1u);
    _mm512_mask_storeu_epi32(dst, mask, v);
  }
}

// One block of R (<= 4) activation rows against every channel block. R is
// a compile-time constant so the r-loops fully unroll and the 2R
// accumulators live in registers. Deeper row blocking halves weight
// re-reads from L2 per extra row — at m = 64, d = 256 the weight panel
// (64 KiB) no longer fits L1, so this is what moves the needle.
template <int R>
__attribute__((target("avx512f,avx512vnni"))) void VnniRows(
    const uint8_t* a, const int8_t* wblk, int64_t n, int64_t kp,
    int32_t* out) {
  const int64_t nb = (n + 15) / 16;
  const int64_t steps = kp / 4;
  const int64_t block_stride = 16 * kp;
  int64_t jb = 0;
  for (; jb + 2 <= nb; jb += 2) {
    const int8_t* b0 = wblk + jb * block_stride;
    const int8_t* b1 = b0 + block_stride;
    __m512i acc0[R];
    __m512i acc1[R];
    for (int r = 0; r < R; ++r) {
      acc0[r] = _mm512_setzero_si512();
      acc1[r] = _mm512_setzero_si512();
    }
    for (int64_t s = 0; s < steps; ++s) {
      const __m512i w0 = _mm512_load_si512(b0 + 64 * s);
      const __m512i w1 = _mm512_load_si512(b1 + 64 * s);
      for (int r = 0; r < R; ++r) {
        const __m512i av = Bcast4(a + r * kp + 4 * s);
        acc0[r] = _mm512_dpbusd_epi32(acc0[r], av, w0);
        acc1[r] = _mm512_dpbusd_epi32(acc1[r], av, w1);
      }
    }
    for (int r = 0; r < R; ++r) {
      Store16(out + r * n + jb * 16, acc0[r], n - jb * 16);
      Store16(out + r * n + (jb + 1) * 16, acc1[r], n - (jb + 1) * 16);
    }
  }
  for (; jb < nb; ++jb) {
    const int8_t* b0 = wblk + jb * block_stride;
    __m512i accv[R];
    for (int r = 0; r < R; ++r) accv[r] = _mm512_setzero_si512();
    for (int64_t s = 0; s < steps; ++s) {
      const __m512i w0 = _mm512_load_si512(b0 + 64 * s);
      for (int r = 0; r < R; ++r) {
        accv[r] = _mm512_dpbusd_epi32(accv[r], Bcast4(a + r * kp + 4 * s), w0);
      }
    }
    for (int r = 0; r < R; ++r) {
      Store16(out + r * n + jb * 16, accv[r], n - jb * 16);
    }
  }
}

__attribute__((target("avx512f,avx512vnni"))) void AccumulateAvx512Vnni(
    const uint8_t* a, const int8_t* wblk, int64_t m, int64_t n, int64_t kp,
    int32_t* acc) {
  int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    VnniRows<4>(a + i * kp, wblk, n, kp, acc + i * n);
  }
  switch (m - i) {
    case 3:
      VnniRows<3>(a + i * kp, wblk, n, kp, acc + i * n);
      break;
    case 2:
      VnniRows<2>(a + i * kp, wblk, n, kp, acc + i * n);
      break;
    case 1:
      VnniRows<1>(a + i * kp, wblk, n, kp, acc + i * n);
      break;
    default:
      break;
  }
}
#define QPS_HAVE_AVX512VNNI_KERNEL 1
#endif  // x86 + GNU/clang

}  // namespace

void Int8AccumulateRows(simd::Isa isa, const QuantizedActs& a,
                        const PackedQuantWeights& w, int32_t* acc) {
  const int64_t m = a.rows;
  const int64_t n = w.out;
  const int64_t kp = a.k_padded;
  QPS_CHECK(kp == w.k_padded) << "Int8AccumulateRows padded-k mismatch: "
                              << kp << " vs " << w.k_padded;
  QPS_CHECK(kp % 32 == 0) << "Int8AccumulateRows: k_padded " << kp
                          << " is not a multiple of 32";
  if (m == 0 || n == 0) return;
  QPS_DCHECK(util::IsAligned(a.data.data()))
      << "int8 GEMM activations not 32-byte aligned";
  QPS_DCHECK(util::IsAligned(w.data.data()))
      << "int8 GEMM weights not 32-byte aligned";
#if defined(QPS_HAVE_AVX512VNNI_KERNEL)
  // The VNNI path needs the blocked weight copy (hand-built test packs may
  // omit it) and 64-byte-aligned blocks, which PackForGemm guarantees.
  if (isa == simd::Isa::kAvx512Vnni &&
      static_cast<int64_t>(w.vnni_data.size()) == w.out_padded * kp &&
      w.out_padded >= n) {
    AccumulateAvx512Vnni(a.data.data(), w.vnni_data.data(), m, n, kp, acc);
    return;
  }
#endif
#if defined(QPS_HAVE_AVX2_KERNEL)
  if (isa != simd::Isa::kScalar) {
    AccumulateAvx2(a.data.data(), w.data.data(), m, n, kp, acc);
    return;
  }
#endif
  (void)isa;
  AccumulateScalar(a.data.data(), w.data.data(), m, n, kp, acc);
}

void GemmInt8(const QuantizedActs& a, const PackedQuantWeights& w,
              const float* bias, Tensor* out) {
  QPS_CHECK(a.cols == w.in) << "GemmInt8 inner-dimension mismatch: activations are "
                            << a.rows << "x" << a.cols << " but weights expect k="
                            << w.in;
  QPS_CHECK(a.k_padded == w.k_padded)
      << "GemmInt8 padded-k mismatch: activations " << a.k_padded << " vs weights "
      << w.k_padded;
  QPS_CHECK(out->rows() == a.rows && out->cols() == w.out)
      << "GemmInt8 output shape mismatch: expected " << a.rows << "x" << w.out
      << " but out is " << out->rows() << "x" << out->cols();
  if (a.rows == 0 || w.out == 0) return;

  const int64_t m = a.rows;
  const int64_t n = w.out;
  const bool record_metric = m * a.cols * n >= kGemmMetricMinWork;
  Timer timer;

  thread_local std::vector<int32_t> acc;
  acc.resize(static_cast<size_t>(m * n));
  Int8AccumulateRows(simd::ActiveIsa(), a, w, acc.data());
  DequantizeGemmOutput(a, w, acc.data(), bias, out);

  if (record_metric) Int8GemmHistogram()->Record(timer.ElapsedMillis());
}

const char* ActiveInt8Kernel() { return simd::IsaName(simd::ActiveIsa()); }

}  // namespace nn
}  // namespace qps
