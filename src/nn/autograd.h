// Copyright 2026 The QPSeeker Authors
//
// Reverse-mode automatic differentiation over Tensor. A computation builds a
// dynamic DAG of shared_ptr Nodes; Backward() runs the chain rule in reverse
// topological order, accumulating into each node's grad tensor.
//
// This is QPSeeker's substitute for PyTorch's autograd: the exact operation
// set the paper's architecture needs (matmul, elementwise nonlinearities,
// softmax, concat/slice, pooling, MSE, Gaussian KL, reparameterization).

#ifndef QPS_NN_AUTOGRAD_H_
#define QPS_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace qps {
namespace nn {

class Node;
/// Handle to a node in the autodiff graph.
using Var = std::shared_ptr<Node>;

/// One vertex of the autodiff DAG.
class Node {
 public:
  Node(Tensor value, bool requires_grad)
      : value(std::move(value)), requires_grad(requires_grad) {}

  Tensor value;
  Tensor grad;  ///< allocated lazily on first backward pass
  bool requires_grad;
  std::vector<Var> parents;
  /// Propagates this->grad into parents' grads.
  std::function<void()> backward_fn;

  /// Ensures `grad` is allocated (zero-filled) with `value`'s shape.
  void EnsureGrad();
  /// Zero-fills the gradient if allocated.
  void ZeroGrad();
};

/// Creates a leaf. Parameters are leaves with requires_grad = true that the
/// caller keeps alive across steps; constants use requires_grad = false.
Var MakeLeaf(Tensor value, bool requires_grad = false);
Var Constant(Tensor value);
Var Parameter(Tensor value);

/// Runs reverse-mode differentiation from `root` (must be 1x1) with seed
/// gradient 1. Gradients accumulate; call ZeroGrad on parameters between
/// steps.
void Backward(const Var& root);

// ---- Operations -----------------------------------------------------------
// Each returns a fresh node; shapes are checked with QPS_CHECK.

Var MatMul(const Var& a, const Var& b);           ///< (m,k)@(k,n)
Var Add(const Var& a, const Var& b);              ///< same shape
Var AddRowBroadcast(const Var& x, const Var& b);  ///< (m,n) + (1,n) per row
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);              ///< elementwise
Var Scale(const Var& a, float s);
Var AddScalar(const Var& a, float s);
Var Neg(const Var& a);

Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Relu(const Var& a);
Var LeakyRelu(const Var& a, float slope = 0.01f);
Var Exp(const Var& a);
Var Log(const Var& a);   ///< input clamped at 1e-12 for stability
Var Square(const Var& a);

/// Row-wise softmax.
Var SoftmaxRows(const Var& a);

/// Concatenation along columns; all inputs must share the row count.
Var ConcatCols(const std::vector<Var>& xs);
/// Concatenation along rows; all inputs must share the column count.
Var ConcatRows(const std::vector<Var>& xs);
/// Column slice [from, to).
Var SliceCols(const Var& a, int64_t from, int64_t to);
/// Row slice [from, to).
Var SliceRows(const Var& a, int64_t from, int64_t to);
Var Transpose(const Var& a);

/// Mean over rows weighted by a constant 0/1 mask (m x 1): output 1 x n.
/// Rows with mask 0 are ignored; if the mask is all-zero the output is zero.
Var MaskedMeanRows(const Var& x, const Tensor& mask);
/// Unmasked mean over rows: output 1 x n.
Var MeanRows(const Var& x);

Var SumAll(const Var& a);   ///< 1x1
Var MeanAll(const Var& a);  ///< 1x1

/// Mean squared error against a constant target (1x1 output).
Var MseLoss(const Var& pred, const Tensor& target);
/// Elementwise-weighted MSE; weight must match pred's shape.
Var WeightedMseLoss(const Var& pred, const Tensor& target, const Tensor& weight);

/// KL( N(mu, exp(logvar)) || N(0,1) ) summed over dims (1x1 output):
/// 0.5 * sum(exp(logvar) + mu^2 - 1 - logvar).
Var GaussianKl(const Var& mu, const Var& logvar);

/// z = mu + exp(0.5 * logvar) * eps, with eps a constant noise tensor.
Var Reparameterize(const Var& mu, const Var& logvar, const Tensor& eps);

}  // namespace nn
}  // namespace qps

#endif  // QPS_NN_AUTOGRAD_H_
