// Copyright 2026 The QPSeeker Authors

#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace qps {
namespace nn {

Tensor Tensor::Row(const std::vector<float>& values) {
  Tensor t(1, static_cast<int64_t>(values.size()));
  t.data_.assign(values.begin(), values.end());
  return t;
}

Tensor Tensor::Randn(int64_t rows, int64_t cols, Rng* rng, float stddev) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) v = static_cast<float>(rng->Normal()) * stddev;
  return t;
}

Tensor Tensor::RandUniform(int64_t rows, int64_t cols, Rng* rng, float limit) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) v = static_cast<float>(rng->Uniform(-limit, limit));
  return t;
}

void Tensor::Fill(float v) {
  for (auto& x : data_) x = v;
}

void Tensor::AddInPlace(const Tensor& other) {
  QPS_DCHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0; i < size(); ++i) dst[i] += src[i];
}

void Tensor::AddScaledInPlace(const Tensor& other, float a) {
  QPS_DCHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0; i < size(); ++i) dst[i] += a * src[i];
}

void Tensor::ScaleInPlace(float a) {
  for (auto& x : data_) x *= a;
}

bool Tensor::AllFinite() const {
  for (float x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

float Tensor::FrobeniusNorm() const {
  double acc = 0.0;
  for (float x : data_) acc += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(acc));
}

float Tensor::Sum() const {
  double acc = 0.0;
  for (float x : data_) acc += x;
  return static_cast<float>(acc);
}

float Tensor::Max() const {
  float m = -INFINITY;
  for (float x : data_) m = std::max(m, x);
  return m;
}

std::string Tensor::DebugString(int64_t max_entries) const {
  std::ostringstream os;
  os << "Tensor(" << rows_ << "x" << cols_ << ") [";
  for (int64_t i = 0; i < std::min<int64_t>(size(), max_entries); ++i) {
    if (i > 0) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (size() > max_entries) os << ", ...";
  os << "]";
  return os.str();
}

#if defined(__GNUC__) || defined(__clang__)
#define QPS_RESTRICT __restrict__
#else
#define QPS_RESTRICT
#endif

namespace {

// Register-tile sizes for the GEMM micro-kernel: each full tile keeps a
// kMr x kNr accumulator block in registers and streams a kc-deep panel of
// A and B through it, so every loaded element of B is reused kMr times and
// every element of A kNr times. kKc bounds the packed k-panel so A/B panels
// stay L1/L2-resident.
constexpr int64_t kMr = 4;
constexpr int64_t kNr = 16;
constexpr int64_t kKc = 256;

// Below this many multiply-adds the Timer + histogram overhead would be
// comparable to the GEMM itself, so tiny calls skip the metric.
constexpr int64_t kGemmMetricMinWork = 4096;

struct GemmMetrics {
  metrics::Histogram* gemm_ms;

  static const GemmMetrics& Get() {
    static const GemmMetrics m = [] {
      return GemmMetrics{metrics::Registry::Global().GetHistogram("qps.nn.gemm_ms")};
    }();
    return m;
  }
};

// Full kMr x kNr tile: C += A_panel @ B_panel, with A rows at stride lda
// (element stride 1 along p) and B rows at stride ldb. The accumulators
// live in registers for the whole k loop; stores happen once per tile.
inline void MicroKernelFull(int64_t kc, const float* QPS_RESTRICT a, int64_t lda,
                            const float* QPS_RESTRICT b, int64_t ldb,
                            float* QPS_RESTRICT c, int64_t ldc) {
  float acc[kMr][kNr] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* brow = b + p * ldb;
    const float a0 = a[0 * lda + p];
    const float a1 = a[1 * lda + p];
    const float a2 = a[2 * lda + p];
    const float a3 = a[3 * lda + p];
    for (int64_t j = 0; j < kNr; ++j) {
      const float bv = brow[j];
      acc[0][j] += a0 * bv;
      acc[1][j] += a1 * bv;
      acc[2][j] += a2 * bv;
      acc[3][j] += a3 * bv;
    }
  }
  for (int64_t i = 0; i < kMr; ++i) {
    for (int64_t j = 0; j < kNr; ++j) c[i * ldc + j] += acc[i][j];
  }
}

// Ragged edge tile (mr <= kMr, nr <= kNr). Same register-accumulator shape
// as the full kernel, just with runtime bounds; also serves the m == 1
// GEMV case of single-plan inference.
inline void MicroKernelRagged(int64_t mr, int64_t nr, int64_t kc,
                              const float* QPS_RESTRICT a, int64_t lda,
                              const float* QPS_RESTRICT b, int64_t ldb,
                              float* QPS_RESTRICT c, int64_t ldc) {
  float acc[kMr][kNr] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* brow = b + p * ldb;
    for (int64_t i = 0; i < mr; ++i) {
      const float av = a[i * lda + p];
      for (int64_t j = 0; j < nr; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (int64_t i = 0; i < mr; ++i) {
    for (int64_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
  }
}

// Dedicated m == 1 GEMV for row-major operands: c(1 x n) += a(1 x k) @
// b(k x n). The tile kernels carry only kNr accumulator lanes per row,
// which for a single row is too few independent FMA chains to hide
// latency; here each 64-wide column strip keeps 64 lanes live across the
// whole k loop. Accumulation order over p matches the tile kernels, so
// results are identical to the blocked path.
constexpr int64_t kNv = 64;

inline void GemvRowMajor(int64_t k, int64_t n, const float* QPS_RESTRICT a,
                         const float* QPS_RESTRICT b, float* QPS_RESTRICT c) {
  int64_t j0 = 0;
  for (; j0 + kNv <= n; j0 += kNv) {
    float acc[kNv] = {};
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[p];
      const float* QPS_RESTRICT brow = b + p * n + j0;
      for (int64_t j = 0; j < kNv; ++j) acc[j] += av * brow[j];
    }
    for (int64_t j = 0; j < kNv; ++j) c[j0 + j] += acc[j];
  }
  if (j0 < n) {
    const int64_t nv = n - j0;
    float acc[kNv] = {};
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[p];
      const float* QPS_RESTRICT brow = b + p * n + j0;
      for (int64_t j = 0; j < nv; ++j) acc[j] += av * brow[j];
    }
    for (int64_t j = 0; j < nv; ++j) c[j0 + j] += acc[j];
  }
}

}  // namespace

void Gemm(GemmLayout layout, const Tensor& a, const Tensor& b, Tensor* out,
          bool accumulate) {
  // Logical shapes: out (m x n) (+)= op(a) (m x k) @ op(b) (k x n).
  const int64_t m = layout == GemmLayout::kTransA ? a.cols() : a.rows();
  const int64_t ka = layout == GemmLayout::kTransA ? a.rows() : a.cols();
  const int64_t kb = layout == GemmLayout::kTransB ? b.cols() : b.rows();
  const int64_t n = layout == GemmLayout::kTransB ? b.rows() : b.cols();
  QPS_CHECK(ka == kb) << "Gemm inner-dimension mismatch: op(a) is " << m << "x" << ka
                      << " but op(b) is " << kb << "x" << n << " (k must agree; m=" << m
                      << " k=" << ka << "/" << kb << " n=" << n << ")";
  QPS_CHECK(out->rows() == m && out->cols() == n)
      << "Gemm output shape mismatch: expected " << m << "x" << n << " for m=" << m
      << " k=" << ka << " n=" << n << " but out is " << out->rows() << "x" << out->cols();
  // Tensor storage is 32-byte aligned (util::AlignedVector); SIMD kernels
  // rely on it, so catch any unaligned operand at the one shared entry point.
  QPS_DCHECK(util::IsAligned(a.data()) && util::IsAligned(b.data()) &&
             util::IsAligned(out->data()))
      << "Gemm operand base pointer not 32-byte aligned";
  const int64_t k = ka;

  const bool record_metric = m * k * n >= kGemmMetricMinWork;
  Timer timer;

  if (!accumulate) out->Fill(0.0f);
  if (m == 0 || n == 0 || k == 0) return;

  // Single-row row-major product: skip blocking/packing and use the wide
  // GEMV kernel (single-plan inference is exactly this shape).
  if (m == 1 && layout == GemmLayout::kNone) {
    GemvRowMajor(k, n, a.data(), b.data(), out->data());
    if (record_metric) GemmMetrics::Get().gemm_ms->Record(timer.ElapsedMillis());
    return;
  }

  // Packing scratch. thread_local so concurrent GEMMs (pool-sharded plan
  // evaluation) never share buffers, and repeated calls reuse the capacity.
  thread_local std::vector<float> a_pack;
  thread_local std::vector<float> b_pack;

  for (int64_t p0 = 0; p0 < k; p0 += kKc) {
    const int64_t kc = std::min(kKc, k - p0);

    // Resolve the A panel: rows of op(a) restricted to k in [p0, p0 + kc),
    // with element stride 1 along p. Row-major a already has that; a
    // transposed a (k x m) is packed into contiguous m x kc rows.
    const float* ap;
    int64_t lda;
    if (layout == GemmLayout::kTransA) {
      a_pack.resize(static_cast<size_t>(m * kc));
      for (int64_t p = 0; p < kc; ++p) {
        const float* src = a.data() + (p0 + p) * m;
        for (int64_t i = 0; i < m; ++i) a_pack[static_cast<size_t>(i * kc + p)] = src[i];
      }
      ap = a_pack.data();
      lda = kc;
    } else {
      ap = a.data() + p0;
      lda = k;
    }

    // Resolve the B panel as kc x n row-major. A transposed b (n x k) is
    // packed once per k-block and then read sequentially by every tile.
    const float* bp;
    int64_t ldb;
    if (layout == GemmLayout::kTransB) {
      b_pack.resize(static_cast<size_t>(kc * n));
      for (int64_t j = 0; j < n; ++j) {
        const float* src = b.data() + j * k + p0;
        for (int64_t p = 0; p < kc; ++p) b_pack[static_cast<size_t>(p * n + j)] = src[p];
      }
      bp = b_pack.data();
      ldb = n;
    } else {
      bp = b.data() + p0 * n;
      ldb = n;
    }

    for (int64_t i0 = 0; i0 < m; i0 += kMr) {
      const int64_t mr = std::min(kMr, m - i0);
      for (int64_t j0 = 0; j0 < n; j0 += kNr) {
        const int64_t nr = std::min(kNr, n - j0);
        float* c = out->data() + i0 * out->cols() + j0;
        if (mr == kMr && nr == kNr) {
          MicroKernelFull(kc, ap + i0 * lda, lda, bp + j0, ldb, c, n);
        } else {
          MicroKernelRagged(mr, nr, kc, ap + i0 * lda, lda, bp + j0, ldb, c, n);
        }
      }
    }
  }

  if (record_metric) GemmMetrics::Get().gemm_ms->Record(timer.ElapsedMillis());
}

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out) {
  Gemm(GemmLayout::kNone, a, b, out, /*accumulate=*/false);
}

void MatMulTransBInto(const Tensor& a, const Tensor& b, Tensor* out, bool accumulate) {
  // out (m x n) (+)= a (m x k) @ b^T (k x n) where b is (n x k).
  Gemm(GemmLayout::kTransB, a, b, out, accumulate);
}

void MatMulTransAInto(const Tensor& a, const Tensor& b, Tensor* out, bool accumulate) {
  // out (k x n) (+)= a^T (k x m) @ b (m x n) where a is (m x k).
  Gemm(GemmLayout::kTransA, a, b, out, accumulate);
}

void AddRowBroadcastInPlace(Tensor* x, const Tensor& row) {
  QPS_CHECK(row.rows() == 1 && row.cols() == x->cols())
      << "AddRowBroadcastInPlace: row is " << row.rows() << "x" << row.cols()
      << " but x is " << x->rows() << "x" << x->cols();
  const float* r = row.data();
  const int64_t n = x->cols();
  for (int64_t i = 0; i < x->rows(); ++i) {
    float* dst = x->data() + i * n;
    for (int64_t j = 0; j < n; ++j) dst[j] += r[j];
  }
}

void ReluInPlace(Tensor* x) {
  float* d = x->data();
  for (int64_t i = 0; i < x->size(); ++i) d[i] = d[i] > 0.0f ? d[i] : 0.0f;
}

void TanhInPlace(Tensor* x) {
  float* d = x->data();
  for (int64_t i = 0; i < x->size(); ++i) d[i] = std::tanh(d[i]);
}

void SigmoidInPlace(Tensor* x) {
  float* d = x->data();
  for (int64_t i = 0; i < x->size(); ++i) d[i] = 1.0f / (1.0f + std::exp(-d[i]));
}

void SoftmaxRowsInPlace(Tensor* x) {
  const int64_t n = x->cols();
  for (int64_t i = 0; i < x->rows(); ++i) {
    float* row = x->data() + i * n;
    float mx = -INFINITY;
    for (int64_t j = 0; j < n; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    const float inv = sum > 0.0f ? 1.0f / sum : 0.0f;
    for (int64_t j = 0; j < n; ++j) row[j] *= inv;
  }
}

}  // namespace nn
}  // namespace qps
