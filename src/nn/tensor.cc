// Copyright 2026 The QPSeeker Authors

#include "nn/tensor.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace qps {
namespace nn {

Tensor Tensor::Row(const std::vector<float>& values) {
  Tensor t(1, static_cast<int64_t>(values.size()));
  t.data_ = values;
  return t;
}

Tensor Tensor::Randn(int64_t rows, int64_t cols, Rng* rng, float stddev) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) v = static_cast<float>(rng->Normal()) * stddev;
  return t;
}

Tensor Tensor::RandUniform(int64_t rows, int64_t cols, Rng* rng, float limit) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) v = static_cast<float>(rng->Uniform(-limit, limit));
  return t;
}

void Tensor::Fill(float v) {
  for (auto& x : data_) x = v;
}

void Tensor::AddInPlace(const Tensor& other) {
  QPS_DCHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0; i < size(); ++i) dst[i] += src[i];
}

void Tensor::AddScaledInPlace(const Tensor& other, float a) {
  QPS_DCHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0; i < size(); ++i) dst[i] += a * src[i];
}

void Tensor::ScaleInPlace(float a) {
  for (auto& x : data_) x *= a;
}

bool Tensor::AllFinite() const {
  for (float x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

float Tensor::FrobeniusNorm() const {
  double acc = 0.0;
  for (float x : data_) acc += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(acc));
}

float Tensor::Sum() const {
  double acc = 0.0;
  for (float x : data_) acc += x;
  return static_cast<float>(acc);
}

float Tensor::Max() const {
  float m = -INFINITY;
  for (float x : data_) m = std::max(m, x);
  return m;
}

std::string Tensor::DebugString(int64_t max_entries) const {
  std::ostringstream os;
  os << "Tensor(" << rows_ << "x" << cols_ << ") [";
  for (int64_t i = 0; i < std::min<int64_t>(size(), max_entries); ++i) {
    if (i > 0) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (size() > max_entries) os << ", ...";
  os << "]";
  return os.str();
}

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out) {
  QPS_DCHECK(a.cols() == b.rows());
  QPS_DCHECK(out->rows() == a.rows() && out->cols() == b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  out->Fill(0.0f);
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* orow = out->data() + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.data() + p * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulTransBInto(const Tensor& a, const Tensor& b, Tensor* out, bool accumulate) {
  // out (m x n) = a (m x k) @ b^T (k x n) where b is (n x k).
  QPS_DCHECK(a.cols() == b.cols());
  QPS_DCHECK(out->rows() == a.rows() && out->cols() == b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  if (!accumulate) out->Fill(0.0f);
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* orow = out->data() + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b.data() + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] += acc;
    }
  }
}

void MatMulTransAInto(const Tensor& a, const Tensor& b, Tensor* out, bool accumulate) {
  // out (k x n) = a^T (k x m) @ b (m x n) where a is (m x k).
  QPS_DCHECK(a.rows() == b.rows());
  QPS_DCHECK(out->rows() == a.cols() && out->cols() == b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  if (!accumulate) out->Fill(0.0f);
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    const float* brow = b.data() + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      float* orow = out->data() + p * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

}  // namespace nn
}  // namespace qps
