// Copyright 2026 The QPSeeker Authors
//
// Neural building blocks used by QPSeeker and the baselines: Linear / MLP,
// an LSTM cell (plan-tree encoder node), multi-head cross-attention
// (QPAttention), and a VAE (the Cost Modeler).

#ifndef QPS_NN_LAYERS_H_
#define QPS_NN_LAYERS_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nn/autograd.h"
#include "nn/quant.h"
#include "util/rng.h"

namespace qps {
namespace nn {

/// A named trainable tensor (leaf Var kept alive across steps).
struct NamedParam {
  std::string name;
  Var var;
};

/// One weight a layer volunteered for int8 inference: the f32 source Var,
/// the layer's scheme choice, and the slot the quantized form lives in.
/// `name` matches the weight's Parameters() name exactly, so the
/// checkpoint quant section and the f32 tensor section key identically.
struct QuantTarget {
  std::string name;
  Var weight;
  QuantScheme* scheme;
  QuantSlot* slot;
};

/// Base class for trainable components. Subclasses register parameters and
/// child modules; Parameters() flattens the tree for optimizers/serializers.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters, depth-first, with hierarchical names.
  std::vector<NamedParam> Parameters() const;

  /// All int8-capable weights, depth-first, names prefixed like
  /// Parameters(). Slots may or may not be populated.
  std::vector<QuantTarget> QuantTargets() const;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Total scalar parameter count.
  int64_t NumParameters() const;

 protected:
  Var RegisterParam(const std::string& name, Tensor init);
  void RegisterChild(const std::string& name, Module* child);

  /// Declares `weight` (already registered under `param_name`) as eligible
  /// for int8 inference. The layer owns scheme + slot; the pointers must
  /// outlive the module tree (they are members of the registering layer).
  void RegisterQuantizable(const std::string& param_name, Var weight,
                           QuantScheme* scheme, QuantSlot* slot);

 private:
  std::vector<NamedParam> params_;
  std::vector<QuantTarget> quant_targets_;
  std::vector<std::pair<std::string, Module*>> children_;
};

/// Quantizes every registered target in place (symmetric int8 weights,
/// packed for the GEMM kernel) and flips the `qps.nn.int8.enabled` gauge.
/// Returns the number of weights quantized. Inference-only: autograd
/// Forward paths keep using the f32 weights; Train must clear this.
int64_t QuantizeModule(Module* module);

/// True when any target currently holds a ready quantized slot.
bool ModuleHasQuantizedWeights(const Module& module);

/// Drops all quantized slots (back to pure f32 inference) and clears the
/// `qps.nn.int8.enabled` gauge.
void ClearModuleQuantization(Module* module);

/// Nonlinearity selector for MLP hidden layers.
enum class Activation { kRelu, kTanh, kSigmoid, kLeakyRelu, kNone };

Var ApplyActivation(const Var& x, Activation act);

/// y = x @ W + b with Xavier-uniform init.
class Linear : public Module {
 public:
  Linear(int64_t in, int64_t out, Rng* rng, const std::string& name = "linear");

  /// x: (m, in) -> (m, out).
  Var Forward(const Var& x) const;

  /// Autograd-free inference path: *out = x @ W + b. `out` is resized.
  void ForwardTensor(const Tensor& x, Tensor* out) const;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }

  /// Direct parameter access (e.g. for custom bias initialization).
  const Var& weight() const { return w_; }
  const Var& bias() const { return b_; }

  /// Scheme used when this layer's weight is next quantized (default
  /// per-tensor; output layers opt into per-channel). Must be set before
  /// QuantizeModule / SaveModuleQuantized.
  void set_quant_scheme(QuantScheme scheme) { quant_scheme_ = scheme; }
  QuantScheme quant_scheme() const { return quant_scheme_; }

 private:
  int64_t in_, out_;
  Var w_, b_;
  QuantScheme quant_scheme_ = QuantScheme::kPerTensor;
  QuantSlot quant_slot_;
};

/// Feed-forward stack: `hidden_layers` hidden Linear+activation layers of
/// width `hidden`, then a Linear to `out` (optionally activated).
class Mlp : public Module {
 public:
  Mlp(int64_t in, int64_t hidden, int64_t out, int hidden_layers, Rng* rng,
      Activation act = Activation::kRelu, Activation out_act = Activation::kNone,
      const std::string& name = "mlp");

  Var Forward(const Var& x) const;

  /// Autograd-free inference path; rows of x are independent samples.
  void ForwardTensor(const Tensor& x, Tensor* out) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation act_;
  Activation out_act_;
};

/// In-place activation used by the tensor inference paths.
void ApplyActivationInPlace(Tensor* x, Activation act);

/// A single LSTM cell; the plan encoder instantiates one shared cell and
/// applies it at every plan node (bottom-up over the plan tree).
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng,
           const std::string& name = "lstm");

  struct State {
    Var h;  ///< (1, hidden)
    Var c;  ///< (1, hidden)
  };

  /// Zero initial state (used for leaf nodes, which have no children).
  State InitialState() const;

  /// One step: x (1, input), prev state -> next state.
  State Forward(const Var& x, const State& prev) const;

  /// Autograd-free batched step: x (batch, input) with h/c (batch, hidden)
  /// updated in place — row i is an independent LSTM instance. This is how
  /// the batched plan encoder advances a whole tree level in one GEMM.
  void ForwardTensor(const Tensor& x, Tensor* h, Tensor* c) const;

  int64_t hidden_size() const { return hidden_; }
  int64_t input_size() const { return input_; }

 private:
  int64_t input_, hidden_;
  Var w_;  ///< (input+hidden, 4*hidden), gate order [i, f, g, o]
  Var b_;  ///< (1, 4*hidden); forget gate bias initialized to 1
  QuantScheme quant_scheme_ = QuantScheme::kPerTensor;
  QuantSlot quant_slot_;
};

/// Multi-head cross-attention between one query vector and n context rows
/// (QPSeeker's QPAttention, Perceiver-style). Output: (1, out_dim).
class MultiHeadCrossAttention : public Module {
 public:
  MultiHeadCrossAttention(int64_t query_dim, int64_t context_dim, int heads,
                          int64_t head_dim, int64_t out_dim, Rng* rng,
                          const std::string& name = "xattn");

  /// query: (1, query_dim); context: (n, context_dim).
  Var Forward(const Var& query, const Var& context) const;

  /// Autograd-free inference path; same semantics as Forward (including
  /// updating last_scores()), writing the (1, out_dim) result into *out.
  void ForwardTensor(const Tensor& query, const Tensor& context, Tensor* out) const;

  /// Attention weights of the last Forward call, one row per head (heads, n).
  /// Useful for inspecting which plan nodes dominate the estimate. Returned
  /// by value: forwards may run concurrently on a shared model (one serving
  /// core per tenant over the same weights), so each forward computes its
  /// scores locally and publishes them under a lock — a reference into the
  /// buffer would race with the next publication.
  Tensor last_scores() const {
    std::lock_guard<std::mutex> lock(scores_mu_);
    return last_scores_;
  }

 private:
  int heads_;
  int64_t head_dim_;
  std::vector<Var> wq_, wk_, wv_;  ///< per head
  std::unique_ptr<Linear> out_proj_;
  mutable std::mutex scores_mu_;
  mutable Tensor last_scores_;  ///< guarded by scores_mu_
};

/// Variational autoencoder over QEP embeddings (the Cost Modeler, §4.4).
/// Encoder/decoder are MLPs whose hidden widths halve/double per layer, as
/// described in §6.2 of the paper.
class Vae : public Module {
 public:
  Vae(int64_t input_dim, int64_t latent_dim, int hidden_layers, Rng* rng,
      const std::string& name = "vae");

  struct Output {
    Var mu;       ///< (1, latent)
    Var logvar;   ///< (1, latent)
    Var z;        ///< (1, latent) sampled (training) or = mu (inference)
    Var recon;    ///< (1, input_dim)
  };

  /// Full pass. If `rng` is null the latent is deterministic (z = mu).
  Output Forward(const Var& x, Rng* rng) const;

  /// Autograd-free inference pass with z = mu for a row batch: fills
  /// mu (batch, latent) and recon (batch, input_dim).
  void ForwardTensor(const Tensor& x, Tensor* mu, Tensor* recon) const;

  /// Encoder only: returns (mu, logvar).
  std::pair<Var, Var> Encode(const Var& x) const;
  Var Decode(const Var& z) const;

  int64_t latent_dim() const { return latent_; }

 private:
  int64_t input_, latent_;
  std::vector<std::unique_ptr<Linear>> enc_;
  std::unique_ptr<Linear> enc_head_;  ///< to 2*latent (mu | logvar)
  std::vector<std::unique_ptr<Linear>> dec_;
};

}  // namespace nn
}  // namespace qps

#endif  // QPS_NN_LAYERS_H_
