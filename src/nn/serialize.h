// Copyright 2026 The QPSeeker Authors
//
// Binary (de)serialization of module parameters so trained QPSeeker models
// can be saved and reloaded (e.g. train once, benchmark many times).

#ifndef QPS_NN_SERIALIZE_H_
#define QPS_NN_SERIALIZE_H_

#include <string>

#include "nn/layers.h"
#include "util/status.h"

namespace qps {
namespace nn {

/// Writes all parameters (name, shape, float32 data) to `path`.
Status SaveModule(const Module& module, const std::string& path);

/// Loads parameters by name into an already-constructed module. Fails if a
/// stored name is missing or a shape differs.
Status LoadModule(Module* module, const std::string& path);

}  // namespace nn
}  // namespace qps

#endif  // QPS_NN_SERIALIZE_H_
