// Copyright 2026 The QPSeeker Authors
//
// Durable (de)serialization of module parameters and training state.
//
// Checkpoint format v2 (DESIGN.md §11 has the byte-level diagram):
//
//   header:   magic "QPS\2" | version | section_count | reserved
//   section*: kind | name | payload_len | payload | payload CRC32
//   trailer:  CRC32 of every preceding byte
//
// Sections carry tensors (name + rows x cols + f32 data + per-tensor
// CRC32), named f64 scalars, or raw bytes. Writers serialize to memory and
// persist through io::AtomicWriteFile, so a crash mid-save leaves the
// previous checkpoint intact; readers verify the whole-file CRC, then every
// length, count, and per-record CRC against the actual byte budget — a
// corrupt, truncated, or adversarial file yields a clean Status naming the
// failing section/tensor, never a crash, hang, or unbounded allocation.
//
// Format v1 (magic "QPS\1", no version field, no checksums) is still
// readable through the same hardened bounds-checked path.

#ifndef QPS_NN_SERIALIZE_H_
#define QPS_NN_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nn/layers.h"
#include "nn/optim.h"
#include "util/rng.h"
#include "util/status.h"

namespace qps {
namespace nn {

/// Hard limits enforced by the loader (and respected by the writer).
constexpr size_t kMaxCheckpointNameLen = 4096;
constexpr int64_t kMaxCheckpointTensorElems = int64_t{1} << 27;  // 512 MiB f32
constexpr uint64_t kMaxCheckpointTensors = 1 << 20;

/// Named f64 sidecar values stored alongside module weights (e.g. the
/// label normalizer's fitted ranges).
using ScalarEntries = std::vector<std::pair<std::string, double>>;

/// Writes all parameters (name, shape, float32 data) plus optional scalar
/// entries to `path` in format v2, atomically and durably. Refuses to
/// overwrite an existing non-empty file that is not a QPSeeker checkpoint
/// (magic check), so a typo'd path cannot clobber foreign data.
Status SaveModule(const Module& module, const std::string& path,
                  const ScalarEntries& extra = {});

/// Like SaveModule, but every RegisterQuantizable weight is written as an
/// int8 quant record (dtype tag + scheme + scales + zero points + int8
/// data, CRC-covered) in a dedicated `model_int8` section; all remaining
/// parameters stay f32 in the normal `model` section. Weights whose slots
/// are already populated (QuantizeModule) are persisted exactly as served;
/// unpopulated ones are quantized on the fly without touching the module.
/// Fails if the module registers no quantizable weights.
Status SaveModuleQuantized(const Module& module, const std::string& path,
                           const ScalarEntries& extra = {});

/// Loads parameters by name into an already-constructed module, accepting
/// v1 and v2 files. Fails — naming the offending tensor — if a stored name
/// is missing from the module, a shape differs, any checksum or bound is
/// violated, or (v2) a module parameter is absent from the file. When
/// `extra` is non-null it receives the stored scalar entries (empty for v1).
///
/// A `model_int8` section, when present, is validated (dims, scheme,
/// finite positive scales, zero weight zero-points, CRCs), dequantized
/// into the f32 parameters, and attached to the module's quant slots so
/// inference runs int8 immediately; loading a plain f32 checkpoint clears
/// any previously attached quantization. Either the whole file applies or
/// the module is left untouched.
Status LoadModule(Module* module, const std::string& path,
                  ScalarEntries* extra = nullptr);

/// Legacy v1 writer, kept so compatibility tests can produce real v1 files.
Status SaveModuleV1(const Module& module, const std::string& path);

/// Everything beyond weights that a resumable training run needs.
struct TrainingState {
  int64_t epoch = 0;   ///< last completed epoch
  RngState rng;        ///< training stream position (shuffle + sampling)
  ScalarEntries extra; ///< caller state (normalizer, schedules, ...)
};

/// Serializes model + optimizer slots + RNG + epoch into one v2 file, so a
/// killed run resumes loss-continuous from its last good snapshot. Same
/// atomicity and overwrite-safety guarantees as SaveModule.
Status SaveTrainingCheckpoint(const Module& module, const Optimizer& optimizer,
                              const TrainingState& state,
                              const std::string& path);

/// Restores a checkpoint written by SaveTrainingCheckpoint. The module and
/// optimizer must be structurally identical to the saved ones.
Status LoadTrainingCheckpoint(Module* module, Optimizer* optimizer,
                              TrainingState* state, const std::string& path);

/// True when `path` starts with a v1 or v2 checkpoint magic (existence and
/// readability included) — a cheap pre-check, not a validation.
bool LooksLikeCheckpoint(const std::string& path);

}  // namespace nn
}  // namespace qps

#endif  // QPS_NN_SERIALIZE_H_
