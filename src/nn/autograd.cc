// Copyright 2026 The QPSeeker Authors

#include "nn/autograd.h"

#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace qps {
namespace nn {

void Node::EnsureGrad() {
  if (!grad.SameShape(value)) grad = Tensor::Zeros(value.rows(), value.cols());
}

void Node::ZeroGrad() {
  if (grad.SameShape(value)) grad.Fill(0.0f);
}

Var MakeLeaf(Tensor value, bool requires_grad) {
  return std::make_shared<Node>(std::move(value), requires_grad);
}
Var Constant(Tensor value) { return MakeLeaf(std::move(value), false); }
Var Parameter(Tensor value) { return MakeLeaf(std::move(value), true); }

namespace {

/// Creates an interior node; requires_grad is inherited from parents.
Var MakeOp(Tensor value, std::vector<Var> parents) {
  bool rg = false;
  for (const auto& p : parents) rg = rg || p->requires_grad;
  auto node = std::make_shared<Node>(std::move(value), rg);
  node->parents = std::move(parents);
  return node;
}

/// Elementwise unary op: value = f(a), da += dvalue * f'(a) (expressed via
/// the output value y where convenient).
template <typename FwdFn, typename BwdFn>
Var UnaryOp(const Var& a, FwdFn fwd, BwdFn grad_from) {
  Tensor out(a->value.rows(), a->value.cols());
  const float* in = a->value.data();
  float* o = out.data();
  for (int64_t i = 0; i < out.size(); ++i) o[i] = fwd(in[i]);
  Var node = MakeOp(std::move(out), {a});
  Node* self = node.get();
  Var pa = a;
  node->backward_fn = [self, pa, grad_from]() {
    if (!pa->requires_grad) return;
    pa->EnsureGrad();
    const float* g = self->grad.data();
    const float* y = self->value.data();
    const float* x = pa->value.data();
    float* pg = pa->grad.data();
    for (int64_t i = 0; i < self->value.size(); ++i) {
      pg[i] += g[i] * grad_from(x[i], y[i]);
    }
  };
  return node;
}

}  // namespace

void Backward(const Var& root) {
  QPS_CHECK(root->value.rows() == 1 && root->value.cols() == 1)
      << "Backward root must be scalar";
  // Iterative post-order DFS to get a reverse-topological order.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      Node* parent = node->parents[idx].get();
      ++idx;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  root->EnsureGrad();
  root->grad.Fill(1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn();
  }
}

Var MatMul(const Var& a, const Var& b) {
  QPS_CHECK(a->value.cols() == b->value.rows()) << "MatMul shape mismatch";
  Tensor out(a->value.rows(), b->value.cols());
  MatMulInto(a->value, b->value, &out);
  Var node = MakeOp(std::move(out), {a, b});
  Node* self = node.get();
  Var pa = a, pb = b;
  node->backward_fn = [self, pa, pb]() {
    if (pa->requires_grad) {
      pa->EnsureGrad();
      MatMulTransBInto(self->grad, pb->value, &pa->grad, /*accumulate=*/true);
    }
    if (pb->requires_grad) {
      pb->EnsureGrad();
      MatMulTransAInto(pa->value, self->grad, &pb->grad, /*accumulate=*/true);
    }
  };
  return node;
}

Var Add(const Var& a, const Var& b) {
  QPS_CHECK(a->value.SameShape(b->value)) << "Add shape mismatch";
  Tensor out = a->value;
  out.AddInPlace(b->value);
  Var node = MakeOp(std::move(out), {a, b});
  Node* self = node.get();
  Var pa = a, pb = b;
  node->backward_fn = [self, pa, pb]() {
    if (pa->requires_grad) {
      pa->EnsureGrad();
      pa->grad.AddInPlace(self->grad);
    }
    if (pb->requires_grad) {
      pb->EnsureGrad();
      pb->grad.AddInPlace(self->grad);
    }
  };
  return node;
}

Var AddRowBroadcast(const Var& x, const Var& b) {
  QPS_CHECK(b->value.rows() == 1 && b->value.cols() == x->value.cols())
      << "AddRowBroadcast shape mismatch";
  Tensor out = x->value;
  for (int64_t i = 0; i < out.rows(); ++i) {
    float* row = out.data() + i * out.cols();
    const float* bias = b->value.data();
    for (int64_t j = 0; j < out.cols(); ++j) row[j] += bias[j];
  }
  Var node = MakeOp(std::move(out), {x, b});
  Node* self = node.get();
  Var px = x, pb = b;
  node->backward_fn = [self, px, pb]() {
    if (px->requires_grad) {
      px->EnsureGrad();
      px->grad.AddInPlace(self->grad);
    }
    if (pb->requires_grad) {
      pb->EnsureGrad();
      const int64_t n = self->grad.cols();
      for (int64_t i = 0; i < self->grad.rows(); ++i) {
        const float* grow = self->grad.data() + i * n;
        float* bg = pb->grad.data();
        for (int64_t j = 0; j < n; ++j) bg[j] += grow[j];
      }
    }
  };
  return node;
}

Var Sub(const Var& a, const Var& b) { return Add(a, Scale(b, -1.0f)); }

Var Mul(const Var& a, const Var& b) {
  QPS_CHECK(a->value.SameShape(b->value)) << "Mul shape mismatch";
  Tensor out(a->value.rows(), a->value.cols());
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) = a->value.at(i) * b->value.at(i);
  Var node = MakeOp(std::move(out), {a, b});
  Node* self = node.get();
  Var pa = a, pb = b;
  node->backward_fn = [self, pa, pb]() {
    if (pa->requires_grad) {
      pa->EnsureGrad();
      for (int64_t i = 0; i < self->grad.size(); ++i) {
        pa->grad.at(i) += self->grad.at(i) * pb->value.at(i);
      }
    }
    if (pb->requires_grad) {
      pb->EnsureGrad();
      for (int64_t i = 0; i < self->grad.size(); ++i) {
        pb->grad.at(i) += self->grad.at(i) * pa->value.at(i);
      }
    }
  };
  return node;
}

Var Scale(const Var& a, float s) {
  return UnaryOp(
      a, [s](float x) { return s * x; },
      [s](float, float) { return s; });
}

Var AddScalar(const Var& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x + s; }, [](float, float) { return 1.0f; });
}

Var Neg(const Var& a) { return Scale(a, -1.0f); }

Var Sigmoid(const Var& a) {
  return UnaryOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Var Tanh(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Var Relu(const Var& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Var LeakyRelu(const Var& a, float slope) {
  return UnaryOp(
      a, [slope](float x) { return x > 0.0f ? x : slope * x; },
      [slope](float x, float) { return x > 0.0f ? 1.0f : slope; });
}

Var Exp(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Var Log(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::log(std::max(x, 1e-12f)); },
      [](float x, float) { return 1.0f / std::max(x, 1e-12f); });
}

Var Square(const Var& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Var SoftmaxRows(const Var& a) {
  Tensor out(a->value.rows(), a->value.cols());
  const int64_t n = a->value.cols();
  for (int64_t i = 0; i < a->value.rows(); ++i) {
    const float* in = a->value.data() + i * n;
    float* o = out.data() + i * n;
    float mx = -INFINITY;
    for (int64_t j = 0; j < n; ++j) mx = std::max(mx, in[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      o[j] = std::exp(in[j] - mx);
      sum += o[j];
    }
    const float inv = 1.0f / sum;
    for (int64_t j = 0; j < n; ++j) o[j] *= inv;
  }
  Var node = MakeOp(std::move(out), {a});
  Node* self = node.get();
  Var pa = a;
  node->backward_fn = [self, pa]() {
    if (!pa->requires_grad) return;
    pa->EnsureGrad();
    const int64_t n = self->value.cols();
    for (int64_t i = 0; i < self->value.rows(); ++i) {
      const float* y = self->value.data() + i * n;
      const float* g = self->grad.data() + i * n;
      float* pg = pa->grad.data() + i * n;
      float dot = 0.0f;
      for (int64_t j = 0; j < n; ++j) dot += y[j] * g[j];
      for (int64_t j = 0; j < n; ++j) pg[j] += y[j] * (g[j] - dot);
    }
  };
  return node;
}

Var ConcatCols(const std::vector<Var>& xs) {
  QPS_CHECK(!xs.empty());
  const int64_t rows = xs[0]->value.rows();
  int64_t total = 0;
  for (const auto& x : xs) {
    QPS_CHECK(x->value.rows() == rows) << "ConcatCols row mismatch";
    total += x->value.cols();
  }
  Tensor out(rows, total);
  int64_t off = 0;
  for (const auto& x : xs) {
    const int64_t c = x->value.cols();
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < c; ++j) out(i, off + j) = x->value(i, j);
    }
    off += c;
  }
  Var node = MakeOp(std::move(out), xs);
  Node* self = node.get();
  std::vector<Var> parents = xs;
  node->backward_fn = [self, parents]() {
    int64_t off = 0;
    for (const auto& p : parents) {
      const int64_t c = p->value.cols();
      if (p->requires_grad) {
        p->EnsureGrad();
        for (int64_t i = 0; i < p->value.rows(); ++i) {
          for (int64_t j = 0; j < c; ++j) p->grad(i, j) += self->grad(i, off + j);
        }
      }
      off += c;
    }
  };
  return node;
}

Var ConcatRows(const std::vector<Var>& xs) {
  QPS_CHECK(!xs.empty());
  const int64_t cols = xs[0]->value.cols();
  int64_t total = 0;
  for (const auto& x : xs) {
    QPS_CHECK(x->value.cols() == cols) << "ConcatRows col mismatch";
    total += x->value.rows();
  }
  Tensor out(total, cols);
  int64_t off = 0;
  for (const auto& x : xs) {
    for (int64_t i = 0; i < x->value.rows(); ++i) {
      for (int64_t j = 0; j < cols; ++j) out(off + i, j) = x->value(i, j);
    }
    off += x->value.rows();
  }
  Var node = MakeOp(std::move(out), xs);
  Node* self = node.get();
  std::vector<Var> parents = xs;
  node->backward_fn = [self, parents]() {
    int64_t off = 0;
    for (const auto& p : parents) {
      if (p->requires_grad) {
        p->EnsureGrad();
        for (int64_t i = 0; i < p->value.rows(); ++i) {
          for (int64_t j = 0; j < p->value.cols(); ++j) {
            p->grad(i, j) += self->grad(off + i, j);
          }
        }
      }
      off += p->value.rows();
    }
  };
  return node;
}

Var SliceCols(const Var& a, int64_t from, int64_t to) {
  QPS_CHECK(0 <= from && from < to && to <= a->value.cols()) << "SliceCols range";
  Tensor out(a->value.rows(), to - from);
  for (int64_t i = 0; i < out.rows(); ++i) {
    for (int64_t j = 0; j < out.cols(); ++j) out(i, j) = a->value(i, from + j);
  }
  Var node = MakeOp(std::move(out), {a});
  Node* self = node.get();
  Var pa = a;
  node->backward_fn = [self, pa, from]() {
    if (!pa->requires_grad) return;
    pa->EnsureGrad();
    for (int64_t i = 0; i < self->grad.rows(); ++i) {
      for (int64_t j = 0; j < self->grad.cols(); ++j) {
        pa->grad(i, from + j) += self->grad(i, j);
      }
    }
  };
  return node;
}

Var SliceRows(const Var& a, int64_t from, int64_t to) {
  QPS_CHECK(0 <= from && from < to && to <= a->value.rows()) << "SliceRows range";
  Tensor out(to - from, a->value.cols());
  for (int64_t i = 0; i < out.rows(); ++i) {
    for (int64_t j = 0; j < out.cols(); ++j) out(i, j) = a->value(from + i, j);
  }
  Var node = MakeOp(std::move(out), {a});
  Node* self = node.get();
  Var pa = a;
  node->backward_fn = [self, pa, from]() {
    if (!pa->requires_grad) return;
    pa->EnsureGrad();
    for (int64_t i = 0; i < self->grad.rows(); ++i) {
      for (int64_t j = 0; j < self->grad.cols(); ++j) {
        pa->grad(from + i, j) += self->grad(i, j);
      }
    }
  };
  return node;
}

Var Transpose(const Var& a) {
  Tensor out(a->value.cols(), a->value.rows());
  for (int64_t i = 0; i < a->value.rows(); ++i) {
    for (int64_t j = 0; j < a->value.cols(); ++j) out(j, i) = a->value(i, j);
  }
  Var node = MakeOp(std::move(out), {a});
  Node* self = node.get();
  Var pa = a;
  node->backward_fn = [self, pa]() {
    if (!pa->requires_grad) return;
    pa->EnsureGrad();
    for (int64_t i = 0; i < self->grad.rows(); ++i) {
      for (int64_t j = 0; j < self->grad.cols(); ++j) {
        pa->grad(j, i) += self->grad(i, j);
      }
    }
  };
  return node;
}

Var MaskedMeanRows(const Var& x, const Tensor& mask) {
  QPS_CHECK(mask.rows() == x->value.rows() && mask.cols() == 1)
      << "MaskedMeanRows mask shape";
  float count = 0.0f;
  for (int64_t i = 0; i < mask.rows(); ++i) count += mask(i, 0);
  const float inv = count > 0.0f ? 1.0f / count : 0.0f;
  Tensor out(1, x->value.cols());
  for (int64_t i = 0; i < x->value.rows(); ++i) {
    if (mask(i, 0) == 0.0f) continue;
    for (int64_t j = 0; j < x->value.cols(); ++j) out(0, j) += x->value(i, j) * inv;
  }
  Var node = MakeOp(std::move(out), {x});
  Node* self = node.get();
  Var px = x;
  Tensor mask_copy = mask;
  node->backward_fn = [self, px, mask_copy, inv]() {
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (int64_t i = 0; i < px->value.rows(); ++i) {
      if (mask_copy(i, 0) == 0.0f) continue;
      for (int64_t j = 0; j < px->value.cols(); ++j) {
        px->grad(i, j) += self->grad(0, j) * inv;
      }
    }
  };
  return node;
}

Var MeanRows(const Var& x) {
  Tensor mask = Tensor::Ones(x->value.rows(), 1);
  return MaskedMeanRows(x, mask);
}

Var SumAll(const Var& a) {
  Tensor out(1, 1);
  out(0, 0) = a->value.Sum();
  Var node = MakeOp(std::move(out), {a});
  Node* self = node.get();
  Var pa = a;
  node->backward_fn = [self, pa]() {
    if (!pa->requires_grad) return;
    pa->EnsureGrad();
    const float g = self->grad(0, 0);
    for (int64_t i = 0; i < pa->grad.size(); ++i) pa->grad.at(i) += g;
  };
  return node;
}

Var MeanAll(const Var& a) {
  const float inv = a->value.size() > 0 ? 1.0f / static_cast<float>(a->value.size()) : 0.0f;
  return Scale(SumAll(a), inv);
}

Var MseLoss(const Var& pred, const Tensor& target) {
  QPS_CHECK(pred->value.SameShape(target)) << "MseLoss shape mismatch";
  return MeanAll(Square(Sub(pred, Constant(target))));
}

Var WeightedMseLoss(const Var& pred, const Tensor& target, const Tensor& weight) {
  QPS_CHECK(pred->value.SameShape(target) && pred->value.SameShape(weight))
      << "WeightedMseLoss shape mismatch";
  return MeanAll(Mul(Square(Sub(pred, Constant(target))), Constant(weight)));
}

Var GaussianKl(const Var& mu, const Var& logvar) {
  QPS_CHECK(mu->value.SameShape(logvar->value)) << "GaussianKl shape mismatch";
  // 0.5 * sum(exp(logvar) + mu^2 - 1 - logvar)
  Var term = Sub(Add(Exp(logvar), Square(mu)), AddScalar(logvar, 1.0f));
  return Scale(SumAll(term), 0.5f);
}

Var Reparameterize(const Var& mu, const Var& logvar, const Tensor& eps) {
  QPS_CHECK(mu->value.SameShape(logvar->value) && mu->value.SameShape(eps))
      << "Reparameterize shape mismatch";
  Var sigma = Exp(Scale(logvar, 0.5f));
  return Add(mu, Mul(sigma, Constant(eps)));
}

}  // namespace nn
}  // namespace qps
