// Copyright 2026 The QPSeeker Authors

#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <unordered_map>

namespace qps {
namespace nn {

namespace {
constexpr uint32_t kMagic = 0x51505301;  // "QPS\1"
}

Status SaveModule(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for write: " + path);
  const auto params = module.Parameters();
  const uint32_t magic = kMagic;
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    const uint64_t name_len = p.name.size();
    const int64_t rows = p.var->value.rows();
    const int64_t cols = p.var->value.cols();
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p.name.data(), static_cast<std::streamsize>(name_len));
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p.var->value.data()),
              static_cast<std::streamsize>(sizeof(float) * rows * cols));
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status LoadModule(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  uint32_t magic = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (magic != kMagic) return Status::InvalidArgument("bad magic in " + path);
  in.read(reinterpret_cast<char*>(&count), sizeof(count));

  auto params = module->Parameters();
  std::unordered_map<std::string, Var> by_name;
  for (auto& p : params) by_name[p.name] = p.var;

  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    int64_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound("parameter not in module: " + name);
    }
    Tensor& dst = it->second->value;
    if (dst.rows() != rows || dst.cols() != cols) {
      return Status::InvalidArgument("shape mismatch for " + name);
    }
    in.read(reinterpret_cast<char*>(dst.data()),
            static_cast<std::streamsize>(sizeof(float) * rows * cols));
    if (!in) return Status::IOError("truncated file: " + path);
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace qps
