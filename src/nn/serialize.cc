// Copyright 2026 The QPSeeker Authors

#include "nn/serialize.h"

#include <cstring>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "util/crc32.h"
#include "util/io.h"
#include "util/metrics.h"

namespace qps {
namespace nn {

namespace {

constexpr uint32_t kMagicV1 = 0x51505301;  // "QPS\1"
constexpr uint32_t kMagicV2 = 0x51505302;  // "QPS\2"
constexpr uint32_t kFormatVersion = 2;
constexpr uint32_t kMaxSections = 64;

/// Section payload kinds.
enum SectionKind : uint32_t {
  kSectionTensors = 1,
  kSectionScalars = 2,
  kSectionRaw = 3,
  kSectionQuantTensors = 4,
};

/// Dtype tags inside a quant-tensor record (only int8 exists today; the
/// tag keeps the record self-describing for future widths).
constexpr uint32_t kQuantDtypeInt8 = 1;

// Well-known section names.
constexpr char kSecModel[] = "model";
constexpr char kSecModelInt8[] = "model_int8";
constexpr char kSecExtra[] = "extra";
constexpr char kSecOptimizer[] = "optimizer";
constexpr char kSecOptimizerScalars[] = "optimizer_scalars";
constexpr char kSecTrain[] = "train";
constexpr char kSecRng[] = "rng";

// ---------------------------------------------------------------------------
// Writing. Everything is serialized little-endian into a memory buffer and
// persisted in one io::AtomicWriteFile call.

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

void PutF64(std::string* out, double v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

struct Section {
  uint32_t kind = kSectionRaw;
  std::string name;
  std::string payload;
};

std::string TensorSectionPayload(
    const std::vector<std::pair<std::string, const Tensor*>>& tensors) {
  std::string out;
  PutU64(&out, tensors.size());
  for (const auto& [name, t] : tensors) {
    const size_t record_start = out.size();
    PutU32(&out, static_cast<uint32_t>(name.size()));
    out.append(name);
    PutU32(&out, static_cast<uint32_t>(t->rows()));
    PutU32(&out, static_cast<uint32_t>(t->cols()));
    out.append(reinterpret_cast<const char*>(t->data()),
               sizeof(float) * static_cast<size_t>(t->size()));
    PutU32(&out, crc32::Compute(out.data() + record_start,
                                out.size() - record_start));
  }
  return out;
}

/// Quant record framing, mirroring the f32 tensor records (name + shape +
/// payload + per-record CRC) with the quantization parameters in between:
///   name_len u32 | name | rows u32 | cols u32 | dtype u32 | scheme u32 |
///   num_scales u64 | scales f32* | zero_points i32* | data s8* | crc u32
std::string QuantSectionPayload(
    const std::vector<std::pair<std::string, const QuantizedTensor*>>& tensors) {
  std::string out;
  PutU64(&out, tensors.size());
  for (const auto& [name, q] : tensors) {
    const size_t record_start = out.size();
    PutU32(&out, static_cast<uint32_t>(name.size()));
    out.append(name);
    PutU32(&out, static_cast<uint32_t>(q->rows));
    PutU32(&out, static_cast<uint32_t>(q->cols));
    PutU32(&out, kQuantDtypeInt8);
    PutU32(&out, static_cast<uint32_t>(q->scheme));
    PutU64(&out, q->scales.size());
    out.append(reinterpret_cast<const char*>(q->scales.data()),
               sizeof(float) * q->scales.size());
    out.append(reinterpret_cast<const char*>(q->zero_points.data()),
               sizeof(int32_t) * q->zero_points.size());
    out.append(reinterpret_cast<const char*>(q->data.data()), q->data.size());
    PutU32(&out, crc32::Compute(out.data() + record_start,
                                out.size() - record_start));
  }
  return out;
}

std::string ScalarSectionPayload(const ScalarEntries& scalars) {
  std::string out;
  PutU64(&out, scalars.size());
  for (const auto& [name, value] : scalars) {
    PutU32(&out, static_cast<uint32_t>(name.size()));
    out.append(name);
    PutF64(&out, value);
  }
  return out;
}

std::string RngSectionPayload(const RngState& st) {
  std::string out;
  for (uint64_t word : st.s) PutU64(&out, word);
  PutU64(&out, st.have_cached_normal);
  PutF64(&out, st.cached_normal);
  return out;
}

Status ValidateWritableTensors(
    const std::vector<std::pair<std::string, const Tensor*>>& tensors) {
  for (const auto& [name, t] : tensors) {
    if (name.size() > kMaxCheckpointNameLen) {
      return Status::InvalidArgument("tensor name too long: " + name);
    }
    if (t->rows() < 0 || t->cols() < 0 || t->size() > kMaxCheckpointTensorElems) {
      return Status::InvalidArgument("tensor too large to checkpoint: " + name);
    }
  }
  return Status::OK();
}

/// The loader caps scalar names at kMaxCheckpointNameLen, so the writer must
/// refuse them too — a save that reports OK must never yield an unloadable
/// file.
Status ValidateWritableScalars(const ScalarEntries& scalars) {
  for (const auto& [name, value] : scalars) {
    (void)value;
    if (name.size() > kMaxCheckpointNameLen) {
      return Status::InvalidArgument("scalar name too long: " +
                                     name.substr(0, 64) + "...");
    }
  }
  return Status::OK();
}

/// Refuses to clobber an existing non-empty file that does not carry a
/// checkpoint magic — the guard against `Save("my_queries.sql")` typos.
Status CheckOverwriteSafe(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::OK();  // nothing there (or unreadable: surfaced later)
  uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (in.gcount() == 0) return Status::OK();  // empty placeholder is fine
  if (in.gcount() != sizeof(magic) || (magic != kMagicV1 && magic != kMagicV2)) {
    return Status::InvalidArgument(
        "refusing to overwrite non-checkpoint file: " + path);
  }
  return Status::OK();
}

Status WriteCheckpoint(const std::string& path, std::vector<Section> sections) {
  for (const Section& sec : sections) {
    if (sec.name.size() > kMaxCheckpointNameLen) {
      return Status::InvalidArgument("section name too long: " +
                                     sec.name.substr(0, 64) + "...");
    }
  }
  QPS_RETURN_IF_ERROR(CheckOverwriteSafe(path));
  std::string out;
  PutU32(&out, kMagicV2);
  PutU32(&out, kFormatVersion);
  PutU32(&out, static_cast<uint32_t>(sections.size()));
  PutU32(&out, 0);  // reserved
  for (const Section& sec : sections) {
    PutU32(&out, sec.kind);
    PutU32(&out, static_cast<uint32_t>(sec.name.size()));
    out.append(sec.name);
    PutU64(&out, sec.payload.size());
    out.append(sec.payload);
    PutU32(&out, crc32::Compute(sec.payload.data(), sec.payload.size()));
  }
  PutU32(&out, crc32::Compute(out.data(), out.size()));
  QPS_RETURN_IF_ERROR(io::AtomicWriteFile(path, out));
  static metrics::Gauge* const checkpoint_bytes =
      metrics::Registry::Global().GetGauge("qps.model.checkpoint_bytes");
  checkpoint_bytes->Set(static_cast<double>(out.size()));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reading. A Reader is a bounds-checked cursor over the full file contents;
// every length and count is validated against the bytes actually present
// before any allocation sized from it.

class Reader {
 public:
  Reader(const std::string& buf, std::string context)
      : data_(buf.data()), size_(buf.size()), context_(std::move(context)) {}

  size_t remaining() const { return size_ - off_; }
  size_t offset() const { return off_; }

  Status ReadU32(uint32_t* v, const char* what) {
    return ReadRaw(v, sizeof(*v), what);
  }
  Status ReadU64(uint64_t* v, const char* what) {
    return ReadRaw(v, sizeof(*v), what);
  }
  Status ReadF64(double* v, const char* what) {
    return ReadRaw(v, sizeof(*v), what);
  }
  Status ReadI64(int64_t* v, const char* what) {
    return ReadRaw(v, sizeof(*v), what);
  }
  Status ReadF32(float* v, const char* what) {
    return ReadRaw(v, sizeof(*v), what);
  }
  Status ReadI32(int32_t* v, const char* what) {
    return ReadRaw(v, sizeof(*v), what);
  }

  Status ReadBytes(void* dst, size_t n, const char* what) {
    return ReadRaw(dst, n, what);
  }

  Status ReadString(size_t len, std::string* out, const char* what) {
    if (len > remaining()) return Truncated(what);
    out->assign(data_ + off_, len);
    off_ += len;
    return Status::OK();
  }

  /// Reads `rows*cols` float32s into a (rows x cols) tensor. Re-checks the
  /// shape with overflow-safe division so neither the byte budget nor the
  /// Tensor allocation is ever computed from an unvalidated product.
  Status ReadTensorData(int64_t rows, int64_t cols, Tensor* out,
                        const char* what) {
    if (rows < 0 || cols < 0 ||
        (rows > 0 && cols > kMaxCheckpointTensorElems / rows)) {
      return Malformed(std::string(what) + ": shape " + std::to_string(rows) +
                       "x" + std::to_string(cols) + " exceeds element cap");
    }
    const size_t bytes = sizeof(float) * static_cast<size_t>(rows) *
                         static_cast<size_t>(cols);
    if (bytes > remaining()) return Truncated(what);
    *out = Tensor(rows, cols);
    std::memcpy(out->data(), data_ + off_, bytes);
    off_ += bytes;
    return Status::OK();
  }

  /// CRC32 of [from, offset()) — used to verify a just-parsed record.
  uint32_t CrcSince(size_t from) const {
    return crc32::Compute(data_ + from, off_ - from);
  }

  Status Malformed(const std::string& what) const {
    return Status::InvalidArgument(context_ + ": " + what);
  }
  Status Truncated(const std::string& what) const {
    return Malformed("truncated at " + what + " (offset " +
                     std::to_string(off_) + " of " + std::to_string(size_) + ")");
  }

 private:
  Status ReadRaw(void* v, size_t n, const char* what) {
    if (n > remaining()) return Truncated(what);
    std::memcpy(v, data_ + off_, n);
    off_ += n;
    return Status::OK();
  }

  const char* data_;
  size_t size_;
  size_t off_ = 0;
  std::string context_;
};

using NamedTensors = std::vector<std::pair<std::string, Tensor>>;

/// Parses a v2 tensors-section payload, verifying every per-tensor CRC.
Status ParseTensorSection(const std::string& payload, const std::string& context,
                          NamedTensors* out) {
  Reader r(payload, context);
  uint64_t count = 0;
  QPS_RETURN_IF_ERROR(r.ReadU64(&count, "tensor count"));
  if (count > kMaxCheckpointTensors) {
    return r.Malformed("tensor count " + std::to_string(count) + " exceeds cap");
  }
  // Each record needs >= 16 bytes of framing; reject impossible counts
  // before reserving anything.
  if (count > payload.size() / 16) {
    return r.Malformed("tensor count " + std::to_string(count) +
                       " impossible for payload of " +
                       std::to_string(payload.size()) + " bytes");
  }
  out->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    const std::string which = "tensor #" + std::to_string(i);
    const size_t record_start = r.offset();
    uint32_t name_len = 0;
    QPS_RETURN_IF_ERROR(r.ReadU32(&name_len, "tensor name length"));
    if (name_len > kMaxCheckpointNameLen) {
      return r.Malformed(which + ": name length " + std::to_string(name_len) +
                         " exceeds cap");
    }
    std::string name;
    QPS_RETURN_IF_ERROR(r.ReadString(name_len, &name, "tensor name"));
    const std::string label = which + " ('" + name + "')";
    uint32_t rows = 0, cols = 0;
    QPS_RETURN_IF_ERROR(r.ReadU32(&rows, "tensor rows"));
    QPS_RETURN_IF_ERROR(r.ReadU32(&cols, "tensor cols"));
    // Overflow-safe cap check: u32 products can exceed INT64_MAX, so never
    // compute rows*cols on unvalidated shapes — divide instead.
    if (rows > 0 && static_cast<int64_t>(cols) >
                        kMaxCheckpointTensorElems / static_cast<int64_t>(rows)) {
      return r.Malformed(label + ": " + std::to_string(rows) + "x" +
                         std::to_string(cols) + " exceeds element cap");
    }
    Tensor t;
    QPS_RETURN_IF_ERROR(r.ReadTensorData(static_cast<int64_t>(rows),
                                         static_cast<int64_t>(cols), &t,
                                         label.c_str()));
    const uint32_t computed = r.CrcSince(record_start);
    uint32_t stored = 0;
    QPS_RETURN_IF_ERROR(r.ReadU32(&stored, "tensor checksum"));
    if (stored != computed) {
      return r.Malformed(label + ": checksum mismatch");
    }
    out->emplace_back(std::move(name), std::move(t));
  }
  if (r.remaining() != 0) {
    return r.Malformed("trailing garbage after last tensor");
  }
  return Status::OK();
}

using NamedQuantTensors = std::vector<std::pair<std::string, QuantizedTensor>>;

/// Parses a v2 quant-tensors payload, verifying framing, caps, the dtype
/// tag, scheme/scale-count coherence, per-record CRCs, and the semantic
/// scale/zero-point constraints (ValidateQuantizedTensor) — a malformed
/// scale is a load error, never a silently wrong model.
Status ParseQuantSection(const std::string& payload, const std::string& context,
                         NamedQuantTensors* out) {
  Reader r(payload, context);
  uint64_t count = 0;
  QPS_RETURN_IF_ERROR(r.ReadU64(&count, "quant tensor count"));
  if (count > kMaxCheckpointTensors || count > payload.size() / 28) {
    return r.Malformed("quant tensor count " + std::to_string(count) +
                       " impossible for payload of " +
                       std::to_string(payload.size()) + " bytes");
  }
  out->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    const std::string which = "quant tensor #" + std::to_string(i);
    const size_t record_start = r.offset();
    uint32_t name_len = 0;
    QPS_RETURN_IF_ERROR(r.ReadU32(&name_len, "quant tensor name length"));
    if (name_len > kMaxCheckpointNameLen) {
      return r.Malformed(which + ": name length " + std::to_string(name_len) +
                         " exceeds cap");
    }
    std::string name;
    QPS_RETURN_IF_ERROR(r.ReadString(name_len, &name, "quant tensor name"));
    const std::string label = which + " ('" + name + "')";
    uint32_t rows = 0, cols = 0, dtype = 0, scheme = 0;
    QPS_RETURN_IF_ERROR(r.ReadU32(&rows, "quant tensor rows"));
    QPS_RETURN_IF_ERROR(r.ReadU32(&cols, "quant tensor cols"));
    QPS_RETURN_IF_ERROR(r.ReadU32(&dtype, "quant tensor dtype"));
    QPS_RETURN_IF_ERROR(r.ReadU32(&scheme, "quant tensor scheme"));
    if (dtype != kQuantDtypeInt8) {
      return r.Malformed(label + ": unsupported quant dtype tag " +
                         std::to_string(dtype));
    }
    if (scheme != static_cast<uint32_t>(QuantScheme::kPerTensor) &&
        scheme != static_cast<uint32_t>(QuantScheme::kPerChannel)) {
      return r.Malformed(label + ": unknown quant scheme tag " +
                         std::to_string(scheme));
    }
    if (rows == 0 || cols == 0 ||
        static_cast<int64_t>(cols) >
            kMaxCheckpointTensorElems / static_cast<int64_t>(rows)) {
      return r.Malformed(label + ": invalid quant shape " +
                         std::to_string(rows) + "x" + std::to_string(cols));
    }
    uint64_t num_scales = 0;
    QPS_RETURN_IF_ERROR(r.ReadU64(&num_scales, "quant scale count"));
    const uint64_t want_scales =
        scheme == static_cast<uint32_t>(QuantScheme::kPerTensor)
            ? 1
            : static_cast<uint64_t>(cols);
    if (num_scales != want_scales) {
      return r.Malformed(label + ": scale count " + std::to_string(num_scales) +
                         " does not match scheme (expected " +
                         std::to_string(want_scales) + ")");
    }
    QuantizedTensor q;
    q.rows = static_cast<int64_t>(rows);
    q.cols = static_cast<int64_t>(cols);
    q.scheme = static_cast<QuantScheme>(scheme);
    q.scales.resize(static_cast<size_t>(num_scales));
    q.zero_points.resize(static_cast<size_t>(num_scales));
    QPS_RETURN_IF_ERROR(r.ReadBytes(q.scales.data(),
                                    sizeof(float) * q.scales.size(),
                                    "quant scales"));
    QPS_RETURN_IF_ERROR(r.ReadBytes(q.zero_points.data(),
                                    sizeof(int32_t) * q.zero_points.size(),
                                    "quant zero points"));
    q.data.resize(static_cast<size_t>(q.rows * q.cols));
    QPS_RETURN_IF_ERROR(r.ReadBytes(q.data.data(), q.data.size(),
                                    "quant int8 data"));
    const uint32_t computed = r.CrcSince(record_start);
    uint32_t stored = 0;
    QPS_RETURN_IF_ERROR(r.ReadU32(&stored, "quant tensor checksum"));
    if (stored != computed) {
      return r.Malformed(label + ": checksum mismatch");
    }
    QPS_RETURN_IF_ERROR(ValidateQuantizedTensor(q, context + ": " + label));
    out->emplace_back(std::move(name), std::move(q));
  }
  if (r.remaining() != 0) {
    return r.Malformed("trailing garbage after last quant tensor");
  }
  return Status::OK();
}

Status ParseScalarSection(const std::string& payload, const std::string& context,
                          ScalarEntries* out) {
  Reader r(payload, context);
  uint64_t count = 0;
  QPS_RETURN_IF_ERROR(r.ReadU64(&count, "scalar count"));
  if (count > payload.size() / 12) {  // >= 12 bytes of framing per entry
    return r.Malformed("scalar count " + std::to_string(count) +
                       " impossible for payload of " +
                       std::to_string(payload.size()) + " bytes");
  }
  out->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    QPS_RETURN_IF_ERROR(r.ReadU32(&name_len, "scalar name length"));
    if (name_len > kMaxCheckpointNameLen) {
      return r.Malformed("scalar #" + std::to_string(i) + ": name length cap");
    }
    std::string name;
    QPS_RETURN_IF_ERROR(r.ReadString(name_len, &name, "scalar name"));
    double value = 0.0;
    QPS_RETURN_IF_ERROR(r.ReadF64(&value, "scalar value"));
    out->emplace_back(std::move(name), value);
  }
  if (r.remaining() != 0) {
    return r.Malformed("trailing garbage after last scalar");
  }
  return Status::OK();
}

Status ParseRngSection(const std::string& payload, const std::string& context,
                       RngState* out) {
  Reader r(payload, context);
  for (uint64_t& word : out->s) QPS_RETURN_IF_ERROR(r.ReadU64(&word, "rng state"));
  QPS_RETURN_IF_ERROR(r.ReadU64(&out->have_cached_normal, "rng cache flag"));
  QPS_RETURN_IF_ERROR(r.ReadF64(&out->cached_normal, "rng cached normal"));
  if (r.remaining() != 0) return r.Malformed("trailing garbage in rng state");
  return Status::OK();
}

/// A fully parsed and checksum-verified v2 file.
struct ParsedCheckpoint {
  std::vector<Section> sections;

  const Section* Find(const std::string& name, uint32_t kind) const {
    for (const Section& s : sections) {
      if (s.name == name && s.kind == kind) return &s;
    }
    return nullptr;
  }
};

Status ParseV2(const std::string& buf, const std::string& context,
               ParsedCheckpoint* out) {
  if (buf.size() < 20) {
    return Status::InvalidArgument(context + ": too short for a v2 header");
  }
  // Whole-file CRC first: everything except the last 4 bytes.
  uint32_t stored_file_crc = 0;
  std::memcpy(&stored_file_crc, buf.data() + buf.size() - 4, 4);
  if (crc32::Compute(buf.data(), buf.size() - 4) != stored_file_crc) {
    return Status::InvalidArgument(context + ": file checksum mismatch");
  }

  Reader r(buf, context);
  uint32_t magic = 0, version = 0, section_count = 0, reserved = 0;
  QPS_RETURN_IF_ERROR(r.ReadU32(&magic, "magic"));
  QPS_RETURN_IF_ERROR(r.ReadU32(&version, "version"));
  QPS_RETURN_IF_ERROR(r.ReadU32(&section_count, "section count"));
  QPS_RETURN_IF_ERROR(r.ReadU32(&reserved, "reserved"));
  if (magic != kMagicV2) return r.Malformed("bad magic");
  if (version != kFormatVersion) {
    return r.Malformed("unsupported version " + std::to_string(version));
  }
  if (section_count > kMaxSections) {
    return r.Malformed("section count " + std::to_string(section_count) +
                       " exceeds cap");
  }
  for (uint32_t i = 0; i < section_count; ++i) {
    Section sec;
    QPS_RETURN_IF_ERROR(r.ReadU32(&sec.kind, "section kind"));
    uint32_t name_len = 0;
    QPS_RETURN_IF_ERROR(r.ReadU32(&name_len, "section name length"));
    if (name_len > kMaxCheckpointNameLen) {
      return r.Malformed("section #" + std::to_string(i) + ": name length cap");
    }
    QPS_RETURN_IF_ERROR(r.ReadString(name_len, &sec.name, "section name"));
    uint64_t payload_len = 0;
    QPS_RETURN_IF_ERROR(r.ReadU64(&payload_len, "section payload length"));
    if (payload_len > r.remaining()) {
      return r.Truncated("section '" + sec.name + "' payload");
    }
    QPS_RETURN_IF_ERROR(
        r.ReadString(static_cast<size_t>(payload_len), &sec.payload,
                     "section payload"));
    uint32_t stored = 0;
    QPS_RETURN_IF_ERROR(r.ReadU32(&stored, "section checksum"));
    if (stored != crc32::Compute(sec.payload.data(), sec.payload.size())) {
      return r.Malformed("section '" + sec.name + "': checksum mismatch");
    }
    out->sections.push_back(std::move(sec));
  }
  if (r.remaining() != 4) {
    return r.Malformed("trailing garbage after last section");
  }
  return Status::OK();
}

/// Copies parsed tensors into module parameters by name. `strict` (v2)
/// additionally requires every module parameter to be present exactly once.
Status ApplyTensorsToModule(const NamedTensors& stored, Module* module,
                            const std::string& context, bool strict) {
  auto params = module->Parameters();
  std::unordered_map<std::string, Var> by_name;
  for (auto& p : params) by_name[p.name] = p.var;

  std::unordered_set<std::string> seen;
  // Validate everything before mutating any parameter.
  for (const auto& [name, t] : stored) {
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound(context + ": parameter not in module: " + name);
    }
    const Tensor& dst = it->second->value;
    if (dst.rows() != t.rows() || dst.cols() != t.cols()) {
      return Status::InvalidArgument(
          context + ": shape mismatch for " + name + ": module " +
          std::to_string(dst.rows()) + "x" + std::to_string(dst.cols()) +
          " vs file " + std::to_string(t.rows()) + "x" +
          std::to_string(t.cols()));
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument(context + ": duplicate tensor: " + name);
    }
  }
  if (strict && seen.size() != by_name.size()) {
    for (const auto& p : params) {
      if (seen.count(p.name) == 0) {
        return Status::NotFound(context +
                                ": parameter missing from checkpoint: " + p.name);
      }
    }
  }
  for (const auto& [name, t] : stored) by_name[name]->value = t;
  return Status::OK();
}

/// Hardened v1 loader: the legacy framing, but every read checked against
/// the actual byte budget, every size capped, and trailing bytes rejected.
Status LoadV1(const std::string& buf, const std::string& context,
              Module* module) {
  Reader r(buf, context);
  uint32_t magic = 0;
  QPS_RETURN_IF_ERROR(r.ReadU32(&magic, "magic"));
  uint64_t count = 0;
  QPS_RETURN_IF_ERROR(r.ReadU64(&count, "tensor count"));
  if (count > kMaxCheckpointTensors || count > buf.size() / 24) {
    return r.Malformed("tensor count " + std::to_string(count) +
                       " impossible for file of " + std::to_string(buf.size()) +
                       " bytes");
  }

  NamedTensors stored;
  stored.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    const std::string which = "tensor #" + std::to_string(i);
    uint64_t name_len = 0;
    QPS_RETURN_IF_ERROR(r.ReadU64(&name_len, "tensor name length"));
    if (name_len > kMaxCheckpointNameLen) {
      return r.Malformed(which + ": name length " + std::to_string(name_len) +
                         " exceeds cap");
    }
    std::string name;
    QPS_RETURN_IF_ERROR(
        r.ReadString(static_cast<size_t>(name_len), &name, "tensor name"));
    const std::string label = which + " ('" + name + "')";
    int64_t rows = 0, cols = 0;
    QPS_RETURN_IF_ERROR(r.ReadI64(&rows, "tensor rows"));
    QPS_RETURN_IF_ERROR(r.ReadI64(&cols, "tensor cols"));
    if (rows < 0 || cols < 0 ||
        (rows > 0 && cols > kMaxCheckpointTensorElems / rows)) {
      return r.Malformed(label + ": invalid shape " + std::to_string(rows) +
                         "x" + std::to_string(cols));
    }
    Tensor t;
    QPS_RETURN_IF_ERROR(r.ReadTensorData(rows, cols, &t, label.c_str()));
    stored.emplace_back(std::move(name), std::move(t));
  }
  if (r.remaining() != 0) {
    return r.Malformed("trailing garbage after last tensor");
  }
  // v1 files predate strict coverage: stored tensors must match the module,
  // but module parameters absent from the file keep their initialization.
  return ApplyTensorsToModule(stored, module, context, /*strict=*/false);
}

std::vector<std::pair<std::string, const Tensor*>> ModuleTensors(
    const Module& module, const std::vector<NamedParam>& params) {
  (void)module;
  std::vector<std::pair<std::string, const Tensor*>> tensors;
  tensors.reserve(params.size());
  for (const auto& p : params) tensors.emplace_back(p.name, &p.var->value);
  return tensors;
}

}  // namespace

Status SaveModule(const Module& module, const std::string& path,
                  const ScalarEntries& extra) {
  const auto params = module.Parameters();
  const auto tensors = ModuleTensors(module, params);
  QPS_RETURN_IF_ERROR(ValidateWritableTensors(tensors));
  QPS_RETURN_IF_ERROR(ValidateWritableScalars(extra));
  std::vector<Section> sections;
  sections.push_back({kSectionTensors, kSecModel, TensorSectionPayload(tensors)});
  if (!extra.empty()) {
    sections.push_back({kSectionScalars, kSecExtra, ScalarSectionPayload(extra)});
  }
  return WriteCheckpoint(path, std::move(sections));
}

Status SaveModuleQuantized(const Module& module, const std::string& path,
                           const ScalarEntries& extra) {
  const auto targets = module.QuantTargets();
  if (targets.empty()) {
    return Status::InvalidArgument(
        "SaveModuleQuantized: module registers no quantizable weights");
  }

  // Quantized weights: reuse an attached slot (persist exactly what is
  // being served), else quantize on the fly without touching the module.
  NamedQuantTensors qtensors;
  std::unordered_set<std::string> quantized_names;
  qtensors.reserve(targets.size());
  for (const auto& t : targets) {
    if (t.name.size() > kMaxCheckpointNameLen) {
      return Status::InvalidArgument("quant tensor name too long: " + t.name);
    }
    const Tensor& w = t.weight->value;
    if (w.size() == 0 || w.size() > kMaxCheckpointTensorElems) {
      return Status::InvalidArgument("tensor too large to checkpoint: " + t.name);
    }
    QuantizedTensor q = t.slot->ready()
                            ? t.slot->stored
                            : QuantizeWeights(w, *t.scheme);
    QPS_RETURN_IF_ERROR(ValidateQuantizedTensor(q, "saving " + t.name));
    if (!quantized_names.insert(t.name).second) {
      return Status::InvalidArgument("duplicate quantizable weight: " + t.name);
    }
    qtensors.emplace_back(t.name, std::move(q));
  }

  // Everything not quantized stays f32 in the normal model section, so the
  // strict loader's full-coverage check keeps working.
  const auto params = module.Parameters();
  std::vector<std::pair<std::string, const Tensor*>> f32_tensors;
  f32_tensors.reserve(params.size());
  for (const auto& p : params) {
    if (quantized_names.count(p.name) == 0) {
      f32_tensors.emplace_back(p.name, &p.var->value);
    }
  }
  QPS_RETURN_IF_ERROR(ValidateWritableTensors(f32_tensors));
  QPS_RETURN_IF_ERROR(ValidateWritableScalars(extra));

  std::vector<std::pair<std::string, const QuantizedTensor*>> qrefs;
  qrefs.reserve(qtensors.size());
  for (const auto& [name, q] : qtensors) qrefs.emplace_back(name, &q);

  std::vector<Section> sections;
  sections.push_back(
      {kSectionTensors, kSecModel, TensorSectionPayload(f32_tensors)});
  sections.push_back(
      {kSectionQuantTensors, kSecModelInt8, QuantSectionPayload(qrefs)});
  if (!extra.empty()) {
    sections.push_back({kSectionScalars, kSecExtra, ScalarSectionPayload(extra)});
  }
  return WriteCheckpoint(path, std::move(sections));
}

Status LoadModule(Module* module, const std::string& path, ScalarEntries* extra) {
  QPS_ASSIGN_OR_RETURN(const std::string buf, io::ReadFileToString(path));
  const std::string context = "checkpoint " + path;
  if (buf.size() < 4) {
    return Status::InvalidArgument(context + ": too short for a magic");
  }
  uint32_t magic = 0;
  std::memcpy(&magic, buf.data(), 4);
  if (magic == kMagicV1) {
    if (extra != nullptr) extra->clear();
    QPS_RETURN_IF_ERROR(LoadV1(buf, context, module));
    // v1 predates quantization; stale slots must not serve old weights.
    ClearModuleQuantization(module);
    return Status::OK();
  }
  if (magic != kMagicV2) {
    return Status::InvalidArgument(context + ": bad magic");
  }
  ParsedCheckpoint parsed;
  QPS_RETURN_IF_ERROR(ParseV2(buf, context, &parsed));
  const Section* model = parsed.Find(kSecModel, kSectionTensors);
  if (model == nullptr) {
    return Status::InvalidArgument(context + ": no model section");
  }
  NamedTensors stored;
  QPS_RETURN_IF_ERROR(
      ParseTensorSection(model->payload, context + ": model", &stored));

  // Quant section: validate every record against a module target BEFORE
  // ApplyTensorsToModule mutates anything, so a bad quant checkpoint leaves
  // the module untouched. Dequantized copies join the f32 list to satisfy
  // the strict full-coverage check.
  NamedQuantTensors qstored;
  if (const Section* qsec = parsed.Find(kSecModelInt8, kSectionQuantTensors)) {
    QPS_RETURN_IF_ERROR(
        ParseQuantSection(qsec->payload, context + ": model_int8", &qstored));
  }
  std::unordered_map<std::string, const QuantTarget*> target_by_name;
  const auto targets = module->QuantTargets();
  for (const auto& t : targets) target_by_name[t.name] = &t;
  for (const auto& [name, q] : qstored) {
    auto it = target_by_name.find(name);
    if (it == target_by_name.end()) {
      return Status::NotFound(context +
                              ": quantized weight not quantizable in module: " +
                              name);
    }
    const Tensor& dst = it->second->weight->value;
    if (dst.rows() != q.rows || dst.cols() != q.cols) {
      return Status::InvalidArgument(
          context + ": shape mismatch for quantized " + name + ": module " +
          std::to_string(dst.rows()) + "x" + std::to_string(dst.cols()) +
          " vs file " + std::to_string(q.rows) + "x" + std::to_string(q.cols));
    }
    stored.emplace_back(name, Dequantize(q));
  }

  QPS_RETURN_IF_ERROR(ApplyTensorsToModule(stored, module, context,
                                           /*strict=*/true));

  // Weights changed: any previously attached quantization is stale. A plain
  // f32 checkpoint leaves the module fully dequantized; a quant checkpoint
  // re-attaches exactly what the file carries.
  ClearModuleQuantization(module);
  for (auto& [name, q] : qstored) {
    const QuantTarget* t = target_by_name[name];
    *t->scheme = q.scheme;
    t->slot->stored = std::move(q);
    t->slot->packed = PackForGemm(t->slot->stored);
  }
  if (!qstored.empty()) {
    metrics::Registry::Global().GetGauge("qps.nn.int8.enabled")->Set(1.0);
  }

  if (extra != nullptr) {
    extra->clear();
    if (const Section* s = parsed.Find(kSecExtra, kSectionScalars)) {
      QPS_RETURN_IF_ERROR(
          ParseScalarSection(s->payload, context + ": extra", extra));
    }
  }
  return Status::OK();
}

Status SaveModuleV1(const Module& module, const std::string& path) {
  QPS_RETURN_IF_ERROR(CheckOverwriteSafe(path));
  const auto params = module.Parameters();
  QPS_RETURN_IF_ERROR(ValidateWritableTensors(ModuleTensors(module, params)));
  std::string out;
  PutU32(&out, kMagicV1);
  PutU64(&out, params.size());
  for (const auto& p : params) {
    PutU64(&out, p.name.size());
    out.append(p.name);
    PutU64(&out, static_cast<uint64_t>(p.var->value.rows()));
    PutU64(&out, static_cast<uint64_t>(p.var->value.cols()));
    out.append(reinterpret_cast<const char*>(p.var->value.data()),
               sizeof(float) * static_cast<size_t>(p.var->value.size()));
  }
  return io::AtomicWriteFile(path, out);
}

Status SaveTrainingCheckpoint(const Module& module, const Optimizer& optimizer,
                              const TrainingState& state,
                              const std::string& path) {
  const auto params = module.Parameters();
  const auto model_tensors = ModuleTensors(module, params);
  QPS_RETURN_IF_ERROR(ValidateWritableTensors(model_tensors));

  std::vector<std::pair<std::string, const Tensor*>> opt_tensors;
  ScalarEntries opt_scalars;
  optimizer.ExportState(&opt_tensors, &opt_scalars);
  QPS_RETURN_IF_ERROR(ValidateWritableTensors(opt_tensors));
  QPS_RETURN_IF_ERROR(ValidateWritableScalars(opt_scalars));

  ScalarEntries train = state.extra;
  train.emplace_back("epoch", static_cast<double>(state.epoch));
  QPS_RETURN_IF_ERROR(ValidateWritableScalars(train));

  std::vector<Section> sections;
  sections.push_back(
      {kSectionTensors, kSecModel, TensorSectionPayload(model_tensors)});
  sections.push_back(
      {kSectionTensors, kSecOptimizer, TensorSectionPayload(opt_tensors)});
  sections.push_back({kSectionScalars, kSecOptimizerScalars,
                      ScalarSectionPayload(opt_scalars)});
  sections.push_back({kSectionScalars, kSecTrain, ScalarSectionPayload(train)});
  sections.push_back({kSectionRaw, kSecRng, RngSectionPayload(state.rng)});
  return WriteCheckpoint(path, std::move(sections));
}

Status LoadTrainingCheckpoint(Module* module, Optimizer* optimizer,
                              TrainingState* state, const std::string& path) {
  QPS_ASSIGN_OR_RETURN(const std::string buf, io::ReadFileToString(path));
  const std::string context = "training checkpoint " + path;
  if (buf.size() < 4) {
    return Status::InvalidArgument(context + ": too short for a magic");
  }
  uint32_t magic = 0;
  std::memcpy(&magic, buf.data(), 4);
  if (magic != kMagicV2) {
    return Status::InvalidArgument(
        context + ": not a v2 training checkpoint (bad magic)");
  }
  ParsedCheckpoint parsed;
  QPS_RETURN_IF_ERROR(ParseV2(buf, context, &parsed));

  const Section* model = parsed.Find(kSecModel, kSectionTensors);
  const Section* opt = parsed.Find(kSecOptimizer, kSectionTensors);
  const Section* opt_scalars = parsed.Find(kSecOptimizerScalars, kSectionScalars);
  const Section* train = parsed.Find(kSecTrain, kSectionScalars);
  const Section* rng = parsed.Find(kSecRng, kSectionRaw);
  if (model == nullptr || opt == nullptr || opt_scalars == nullptr ||
      train == nullptr || rng == nullptr) {
    return Status::InvalidArgument(context +
                                   ": missing training-state section");
  }

  NamedTensors model_tensors, opt_tensors;
  QPS_RETURN_IF_ERROR(
      ParseTensorSection(model->payload, context + ": model", &model_tensors));
  QPS_RETURN_IF_ERROR(
      ParseTensorSection(opt->payload, context + ": optimizer", &opt_tensors));
  ScalarEntries opt_scalar_entries, train_entries;
  QPS_RETURN_IF_ERROR(ParseScalarSection(
      opt_scalars->payload, context + ": optimizer_scalars", &opt_scalar_entries));
  QPS_RETURN_IF_ERROR(
      ParseScalarSection(train->payload, context + ": train", &train_entries));
  RngState rng_state;
  QPS_RETURN_IF_ERROR(ParseRngSection(rng->payload, context + ": rng", &rng_state));

  // All sections parsed and verified. Extract the train payload before any
  // mutation so a malformed train section cannot leave a half-applied load.
  ScalarEntries extra_entries;
  int64_t epoch = 0;
  bool have_epoch = false;
  for (const auto& [name, value] : train_entries) {
    if (name == "epoch") {
      epoch = static_cast<int64_t>(value);
      have_epoch = true;
    } else {
      extra_entries.emplace_back(name, value);
    }
  }
  if (!have_epoch) {
    return Status::InvalidArgument(context + ": train section has no epoch");
  }

  // Validate against the live module and optimizer. ApplyTensorsToModule
  // validates fully before touching a parameter, but ImportState can still
  // reject afterwards (e.g. a checkpoint saved with a different optimizer
  // type over the same weights), so snapshot the weights and roll them back
  // on failure — the load either applies completely or leaves both the
  // module and the optimizer untouched.
  const auto params = module->Parameters();
  std::vector<Tensor> weight_snapshot;
  weight_snapshot.reserve(params.size());
  for (const auto& p : params) weight_snapshot.push_back(p.var->value);

  QPS_RETURN_IF_ERROR(ApplyTensorsToModule(model_tensors, module, context,
                                           /*strict=*/true));
  std::unordered_map<std::string, const Tensor*> opt_map;
  for (const auto& [name, t] : opt_tensors) opt_map[name] = &t;
  std::unordered_map<std::string, double> opt_scalar_map(
      opt_scalar_entries.begin(), opt_scalar_entries.end());
  if (Status st = optimizer->ImportState(opt_map, opt_scalar_map); !st.ok()) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].var->value = std::move(weight_snapshot[i]);
    }
    return st;
  }

  // Training resumes on fresh f32 weights; any attached inference
  // quantization is stale now.
  ClearModuleQuantization(module);

  state->epoch = epoch;
  state->extra = std::move(extra_entries);
  state->rng = rng_state;
  return Status::OK();
}

bool LooksLikeCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         (magic == kMagicV1 || magic == kMagicV2);
}

}  // namespace nn
}  // namespace qps
