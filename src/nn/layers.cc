// Copyright 2026 The QPSeeker Authors

#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "nn/gemm_int8.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace qps {
namespace nn {

std::vector<NamedParam> Module::Parameters() const {
  std::vector<NamedParam> out = params_;
  for (const auto& [name, child] : children_) {
    for (const auto& p : child->Parameters()) {
      out.push_back({name + "." + p.name, p.var});
    }
  }
  return out;
}

std::vector<QuantTarget> Module::QuantTargets() const {
  std::vector<QuantTarget> out = quant_targets_;
  for (const auto& [name, child] : children_) {
    for (const auto& t : child->QuantTargets()) {
      out.push_back({name + "." + t.name, t.weight, t.scheme, t.slot});
    }
  }
  return out;
}

void Module::RegisterQuantizable(const std::string& param_name, Var weight,
                                 QuantScheme* scheme, QuantSlot* slot) {
  quant_targets_.push_back({param_name, std::move(weight), scheme, slot});
}

namespace {

metrics::Gauge* Int8EnabledGauge() {
  static metrics::Gauge* const g =
      metrics::Registry::Global().GetGauge("qps.nn.int8.enabled");
  return g;
}

}  // namespace

int64_t QuantizeModule(Module* module) {
  int64_t count = 0;
  for (auto& t : module->QuantTargets()) {
    t.slot->stored = QuantizeWeights(t.weight->value, *t.scheme);
    t.slot->packed = PackForGemm(t.slot->stored);
    ++count;
  }
  if (count > 0) Int8EnabledGauge()->Set(1.0);
  return count;
}

bool ModuleHasQuantizedWeights(const Module& module) {
  for (const auto& t : module.QuantTargets()) {
    if (t.slot->ready()) return true;
  }
  return false;
}

void ClearModuleQuantization(Module* module) {
  for (auto& t : module->QuantTargets()) t.slot->Clear();
  Int8EnabledGauge()->Set(0.0);
}

void Module::ZeroGrad() {
  for (const auto& p : Parameters()) p.var->ZeroGrad();
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const auto& p : Parameters()) n += p.var->value.size();
  return n;
}

Var Module::RegisterParam(const std::string& name, Tensor init) {
  Var v = Parameter(std::move(init));
  params_.push_back({name, v});
  return v;
}

void Module::RegisterChild(const std::string& name, Module* child) {
  children_.emplace_back(name, child);
}

Var ApplyActivation(const Var& x, Activation act) {
  switch (act) {
    case Activation::kRelu:
      return Relu(x);
    case Activation::kTanh:
      return Tanh(x);
    case Activation::kSigmoid:
      return Sigmoid(x);
    case Activation::kLeakyRelu:
      return LeakyRelu(x);
    case Activation::kNone:
      return x;
  }
  return x;
}

Linear::Linear(int64_t in, int64_t out, Rng* rng, const std::string& name)
    : in_(in), out_(out) {
  const float limit = std::sqrt(6.0f / static_cast<float>(in + out));
  w_ = RegisterParam(name + ".w", Tensor::RandUniform(in, out, rng, limit));
  b_ = RegisterParam(name + ".b", Tensor::Zeros(1, out));
  RegisterQuantizable(name + ".w", w_, &quant_scheme_, &quant_slot_);
}

Var Linear::Forward(const Var& x) const {
  QPS_CHECK(x->value.cols() == in_) << "Linear input width " << x->value.cols()
                                    << " != " << in_;
  return AddRowBroadcast(MatMul(x, w_), b_);
}

void Linear::ForwardTensor(const Tensor& x, Tensor* out) const {
  QPS_CHECK(x.cols() == in_) << "Linear input width " << x.cols() << " != " << in_;
  if (out->rows() != x.rows() || out->cols() != out_) *out = Tensor(x.rows(), out_);
  if (quant_slot_.ready()) {
    // Int8 inference: per-row dynamic activation quantization (row i of the
    // result depends only on row i of x, so batching stays bit-identical to
    // per-row evaluation), bias folded into the dequantize epilogue.
    thread_local QuantizedActs acts;
    QuantizeActivationsPerRow(x, &acts);
    GemmInt8(acts, quant_slot_.packed, b_->value.data(), out);
    return;
  }
  Gemm(GemmLayout::kNone, x, w_->value, out, /*accumulate=*/false);
  AddRowBroadcastInPlace(out, b_->value);
}

void ApplyActivationInPlace(Tensor* x, Activation act) {
  switch (act) {
    case Activation::kRelu:
      ReluInPlace(x);
      return;
    case Activation::kTanh:
      TanhInPlace(x);
      return;
    case Activation::kSigmoid:
      SigmoidInPlace(x);
      return;
    case Activation::kLeakyRelu: {
      float* d = x->data();
      for (int64_t i = 0; i < x->size(); ++i) {
        if (d[i] < 0.0f) d[i] *= 0.01f;
      }
      return;
    }
    case Activation::kNone:
      return;
  }
}

Mlp::Mlp(int64_t in, int64_t hidden, int64_t out, int hidden_layers, Rng* rng,
         Activation act, Activation out_act, const std::string& name)
    : act_(act), out_act_(out_act) {
  QPS_CHECK(hidden_layers >= 0);
  int64_t cur = in;
  for (int i = 0; i < hidden_layers; ++i) {
    layers_.push_back(std::make_unique<Linear>(cur, hidden, rng,
                                               name + ".h" + std::to_string(i)));
    cur = hidden;
  }
  layers_.push_back(std::make_unique<Linear>(cur, out, rng, name + ".out"));
  // The output layer carries the widest per-channel dynamic range (each
  // head predicts a differently-scaled quantity), so it quantizes per
  // channel; hidden layers share one scale.
  layers_.back()->set_quant_scheme(QuantScheme::kPerChannel);
  for (size_t i = 0; i < layers_.size(); ++i) {
    RegisterChild("l" + std::to_string(i), layers_[i].get());
  }
}

Var Mlp::Forward(const Var& x) const {
  Var cur = x;
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    cur = ApplyActivation(layers_[i]->Forward(cur), act_);
  }
  cur = layers_.back()->Forward(cur);
  return ApplyActivation(cur, out_act_);
}

void Mlp::ForwardTensor(const Tensor& x, Tensor* out) const {
  Tensor cur = x;
  Tensor next;
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    layers_[i]->ForwardTensor(cur, &next);
    ApplyActivationInPlace(&next, act_);
    std::swap(cur, next);
  }
  layers_.back()->ForwardTensor(cur, out);
  ApplyActivationInPlace(out, out_act_);
}

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng,
                   const std::string& name)
    : input_(input_size), hidden_(hidden_size) {
  const float limit = std::sqrt(6.0f / static_cast<float>(input_ + 5 * hidden_));
  w_ = RegisterParam(name + ".w",
                     Tensor::RandUniform(input_ + hidden_, 4 * hidden_, rng, limit));
  Tensor bias = Tensor::Zeros(1, 4 * hidden_);
  // Forget-gate bias 1.0 keeps early gradients flowing through the plan tree.
  for (int64_t j = hidden_; j < 2 * hidden_; ++j) bias(0, j) = 1.0f;
  b_ = RegisterParam(name + ".b", std::move(bias));
  RegisterQuantizable(name + ".w", w_, &quant_scheme_, &quant_slot_);
}

LstmCell::State LstmCell::InitialState() const {
  return State{Constant(Tensor::Zeros(1, hidden_)), Constant(Tensor::Zeros(1, hidden_))};
}

LstmCell::State LstmCell::Forward(const Var& x, const State& prev) const {
  QPS_CHECK(x->value.cols() == input_) << "LstmCell input width";
  Var xh = ConcatCols({x, prev.h});
  Var gates = AddRowBroadcast(MatMul(xh, w_), b_);
  Var i = Sigmoid(SliceCols(gates, 0, hidden_));
  Var f = Sigmoid(SliceCols(gates, hidden_, 2 * hidden_));
  Var g = Tanh(SliceCols(gates, 2 * hidden_, 3 * hidden_));
  Var o = Sigmoid(SliceCols(gates, 3 * hidden_, 4 * hidden_));
  Var c = Add(Mul(f, prev.c), Mul(i, g));
  Var h = Mul(o, Tanh(c));
  return State{h, c};
}

void LstmCell::ForwardTensor(const Tensor& x, Tensor* h, Tensor* c) const {
  const int64_t batch = x.rows();
  QPS_CHECK(x.cols() == input_) << "LstmCell input width " << x.cols() << " != " << input_;
  QPS_CHECK(h->rows() == batch && h->cols() == hidden_ && c->rows() == batch &&
            c->cols() == hidden_)
      << "LstmCell state shape: h " << h->rows() << "x" << h->cols() << ", c "
      << c->rows() << "x" << c->cols() << " for batch " << batch << " hidden " << hidden_;
  Tensor xh(batch, input_ + hidden_);
  for (int64_t i = 0; i < batch; ++i) {
    float* dst = xh.data() + i * (input_ + hidden_);
    std::memcpy(dst, x.data() + i * input_, sizeof(float) * static_cast<size_t>(input_));
    std::memcpy(dst + input_, h->data() + i * hidden_,
                sizeof(float) * static_cast<size_t>(hidden_));
  }
  Tensor gates(batch, 4 * hidden_);
  if (quant_slot_.ready()) {
    thread_local QuantizedActs acts;
    QuantizeActivationsPerRow(xh, &acts);
    GemmInt8(acts, quant_slot_.packed, b_->value.data(), &gates);
  } else {
    Gemm(GemmLayout::kNone, xh, w_->value, &gates, /*accumulate=*/false);
    AddRowBroadcastInPlace(&gates, b_->value);
  }
  for (int64_t r = 0; r < batch; ++r) {
    const float* g = gates.data() + r * 4 * hidden_;
    float* hr = h->data() + r * hidden_;
    float* cr = c->data() + r * hidden_;
    for (int64_t j = 0; j < hidden_; ++j) {
      const float ig = 1.0f / (1.0f + std::exp(-g[j]));
      const float fg = 1.0f / (1.0f + std::exp(-g[hidden_ + j]));
      const float gg = std::tanh(g[2 * hidden_ + j]);
      const float og = 1.0f / (1.0f + std::exp(-g[3 * hidden_ + j]));
      cr[j] = fg * cr[j] + ig * gg;
      hr[j] = og * std::tanh(cr[j]);
    }
  }
}

MultiHeadCrossAttention::MultiHeadCrossAttention(int64_t query_dim,
                                                 int64_t context_dim, int heads,
                                                 int64_t head_dim, int64_t out_dim,
                                                 Rng* rng, const std::string& name)
    : heads_(heads), head_dim_(head_dim) {
  const float ql = std::sqrt(6.0f / static_cast<float>(query_dim + head_dim));
  const float cl = std::sqrt(6.0f / static_cast<float>(context_dim + head_dim));
  for (int h = 0; h < heads; ++h) {
    wq_.push_back(RegisterParam(name + ".wq" + std::to_string(h),
                                Tensor::RandUniform(query_dim, head_dim, rng, ql)));
    wk_.push_back(RegisterParam(name + ".wk" + std::to_string(h),
                                Tensor::RandUniform(context_dim, head_dim, rng, cl)));
    wv_.push_back(RegisterParam(name + ".wv" + std::to_string(h),
                                Tensor::RandUniform(context_dim, head_dim, rng, cl)));
  }
  out_proj_ = std::make_unique<Linear>(heads * head_dim, out_dim, rng, name + ".proj");
  RegisterChild("proj", out_proj_.get());
}

Var MultiHeadCrossAttention::Forward(const Var& query, const Var& context) const {
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Var> head_outs;
  // Scores accumulate in a local and publish at the end: forwards may run
  // concurrently over shared weights, and a shared in-progress buffer would
  // be a cross-thread use-after-free when another forward reallocates it.
  Tensor scores_out(heads_, context->value.rows());
  for (int h = 0; h < heads_; ++h) {
    Var q = MatMul(query, wq_[h]);                       // (1, d)
    Var k = MatMul(context, wk_[h]);                     // (n, d)
    Var v = MatMul(context, wv_[h]);                     // (n, d)
    Var scores = Scale(MatMul(q, Transpose(k)), scale);  // (1, n)
    Var attn = SoftmaxRows(scores);
    for (int64_t j = 0; j < attn->value.cols(); ++j) {
      scores_out(h, j) = attn->value(0, j);
    }
    head_outs.push_back(MatMul(attn, v));  // (1, d)
  }
  {
    std::lock_guard<std::mutex> lock(scores_mu_);
    last_scores_ = std::move(scores_out);
  }
  return out_proj_->Forward(ConcatCols(head_outs));
}

void MultiHeadCrossAttention::ForwardTensor(const Tensor& query, const Tensor& context,
                                            Tensor* out) const {
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  const int64_t n = context.rows();
  // Local scores buffer, published under the lock at the end — see Forward.
  Tensor scores_out(heads_, n);
  Tensor concat(1, heads_ * head_dim_);
  Tensor q(1, head_dim_), k(n, head_dim_), v(n, head_dim_);
  Tensor scores(1, n), head_out(1, head_dim_);
  for (int h = 0; h < heads_; ++h) {
    Gemm(GemmLayout::kNone, query, wq_[h]->value, &q, false);
    Gemm(GemmLayout::kNone, context, wk_[h]->value, &k, false);
    Gemm(GemmLayout::kNone, context, wv_[h]->value, &v, false);
    Gemm(GemmLayout::kTransB, q, k, &scores, false);  // (1, n)
    scores.ScaleInPlace(scale);
    SoftmaxRowsInPlace(&scores);
    for (int64_t j = 0; j < n; ++j) scores_out(h, j) = scores(0, j);
    Gemm(GemmLayout::kNone, scores, v, &head_out, false);
    std::memcpy(concat.data() + h * head_dim_, head_out.data(),
                sizeof(float) * static_cast<size_t>(head_dim_));
  }
  {
    std::lock_guard<std::mutex> lock(scores_mu_);
    last_scores_ = std::move(scores_out);
  }
  out_proj_->ForwardTensor(concat, out);
}

Vae::Vae(int64_t input_dim, int64_t latent_dim, int hidden_layers, Rng* rng,
         const std::string& name)
    : input_(input_dim), latent_(latent_dim) {
  // Encoder widths halve per layer; decoder mirrors them (paper §6.2).
  std::vector<int64_t> widths;
  int64_t w = input_dim;
  for (int i = 0; i < hidden_layers; ++i) {
    w = std::max<int64_t>(2 * latent_dim, w / 2);
    widths.push_back(w);
  }
  int64_t cur = input_dim;
  for (size_t i = 0; i < widths.size(); ++i) {
    enc_.push_back(std::make_unique<Linear>(cur, widths[i], rng,
                                            name + ".enc" + std::to_string(i)));
    cur = widths[i];
  }
  enc_head_ = std::make_unique<Linear>(cur, 2 * latent_dim, rng, name + ".enc_head");
  // mu and logvar channels live on very different scales; per-channel
  // quantization keeps the small-magnitude logvar lanes from being crushed
  // by mu's range.
  enc_head_->set_quant_scheme(QuantScheme::kPerChannel);
  // Start with small posterior variance (logvar ~ -4, std ~ 0.14) so the
  // reparameterization noise does not swamp mu early in training — the
  // classic guard against posterior collapse.
  for (int64_t j = latent_dim; j < 2 * latent_dim; ++j) {
    enc_head_->bias()->value(0, j) = -4.0f;
  }
  cur = latent_dim;
  for (size_t i = 0; i < widths.size(); ++i) {
    const int64_t out = widths[widths.size() - 1 - i];
    dec_.push_back(std::make_unique<Linear>(cur, out, rng,
                                            name + ".dec" + std::to_string(i)));
    cur = out;
  }
  dec_.push_back(std::make_unique<Linear>(cur, input_dim, rng, name + ".dec_out"));
  dec_.back()->set_quant_scheme(QuantScheme::kPerChannel);
  for (size_t i = 0; i < enc_.size(); ++i) RegisterChild("e" + std::to_string(i), enc_[i].get());
  RegisterChild("eh", enc_head_.get());
  for (size_t i = 0; i < dec_.size(); ++i) RegisterChild("d" + std::to_string(i), dec_[i].get());
}

std::pair<Var, Var> Vae::Encode(const Var& x) const {
  QPS_CHECK(x->value.cols() == input_) << "Vae input width";
  Var cur = x;
  for (const auto& l : enc_) cur = Relu(l->Forward(cur));
  Var head = enc_head_->Forward(cur);
  Var mu = SliceCols(head, 0, latent_);
  Var logvar = SliceCols(head, latent_, 2 * latent_);
  return {mu, logvar};
}

Var Vae::Decode(const Var& z) const {
  Var cur = z;
  for (size_t i = 0; i + 1 < dec_.size(); ++i) cur = Relu(dec_[i]->Forward(cur));
  return dec_.back()->Forward(cur);
}

void Vae::ForwardTensor(const Tensor& x, Tensor* mu, Tensor* recon) const {
  QPS_CHECK(x.cols() == input_) << "Vae input width " << x.cols() << " != " << input_;
  const int64_t batch = x.rows();
  Tensor cur = x;
  Tensor next;
  for (const auto& l : enc_) {
    l->ForwardTensor(cur, &next);
    ReluInPlace(&next);
    std::swap(cur, next);
  }
  Tensor head;
  enc_head_->ForwardTensor(cur, &head);
  if (mu->rows() != batch || mu->cols() != latent_) *mu = Tensor(batch, latent_);
  for (int64_t r = 0; r < batch; ++r) {
    std::memcpy(mu->data() + r * latent_, head.data() + r * 2 * latent_,
                sizeof(float) * static_cast<size_t>(latent_));
  }
  cur = *mu;  // inference latent: z = mu
  for (size_t i = 0; i + 1 < dec_.size(); ++i) {
    dec_[i]->ForwardTensor(cur, &next);
    ReluInPlace(&next);
    std::swap(cur, next);
  }
  dec_.back()->ForwardTensor(cur, recon);
}

Vae::Output Vae::Forward(const Var& x, Rng* rng) const {
  auto [mu, logvar] = Encode(x);
  Var z;
  if (rng != nullptr) {
    Tensor eps = Tensor::Randn(1, latent_, rng);
    z = Reparameterize(mu, logvar, eps);
  } else {
    z = mu;
  }
  Var recon = Decode(z);
  return Output{mu, logvar, z, recon};
}

}  // namespace nn
}  // namespace qps
