// Copyright 2026 The QPSeeker Authors
//
// Dense row-major float32 matrix. All neural components in QPSeeker operate
// on rank-2 tensors; vectors are represented as 1 x n rows.

#ifndef QPS_NN_TENSOR_H_
#define QPS_NN_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/aligned.h"
#include "util/rng.h"

namespace qps {
namespace nn {

/// A row-major rows x cols float matrix with value semantics.
class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}
  Tensor(int64_t rows, int64_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), fill) {}

  /// Builds a 1 x n row vector from values.
  static Tensor Row(const std::vector<float>& values);

  /// All-zeros / all-ones / constant factories.
  static Tensor Zeros(int64_t rows, int64_t cols) { return Tensor(rows, cols, 0.0f); }
  static Tensor Ones(int64_t rows, int64_t cols) { return Tensor(rows, cols, 1.0f); }
  static Tensor Full(int64_t rows, int64_t cols, float v) { return Tensor(rows, cols, v); }

  /// i.i.d. N(0, stddev^2) entries.
  static Tensor Randn(int64_t rows, int64_t cols, Rng* rng, float stddev = 1.0f);

  /// Uniform(-limit, limit) entries (for Xavier/He init).
  static Tensor RandUniform(int64_t rows, int64_t cols, Rng* rng, float limit);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  float& operator()(int64_t r, int64_t c) { return data_[static_cast<size_t>(r * cols_ + c)]; }
  float operator()(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float& at(int64_t i) { return data_[static_cast<size_t>(i)]; }
  float at(int64_t i) const { return data_[static_cast<size_t>(i)]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// In-place helpers used by optimizers and gradient accumulation.
  void Fill(float v);
  void AddInPlace(const Tensor& other);               ///< this += other
  void AddScaledInPlace(const Tensor& other, float a);  ///< this += a * other
  void ScaleInPlace(float a);                         ///< this *= a

  /// True when no entry is NaN or infinite — the guarded planner's sentinel
  /// against a diverged forward pass.
  bool AllFinite() const;

  /// Frobenius norm and sums, for diagnostics and gradient clipping.
  float FrobeniusNorm() const;
  float Sum() const;
  float Mean() const { return size() > 0 ? Sum() / static_cast<float>(size()) : 0.0f; }
  float Max() const;

  /// Flattened copy of the data.
  std::vector<float> ToVector() const { return {data_.begin(), data_.end()}; }

  std::string DebugString(int64_t max_entries = 8) const;

 private:
  int64_t rows_;
  int64_t cols_;
  // 32-byte aligned so SIMD kernels can use aligned vector loads on tensor
  // data; the GEMM drivers assert this (util::IsAligned).
  util::AlignedVector<float> data_;
};

/// Operand layout for Gemm: which input is read transposed. (Transposing
/// both is never needed by the autodiff rules.)
enum class GemmLayout { kNone, kTransA, kTransB };

/// General matrix multiply, the one hot-path kernel every variant routes
/// through: out (+)= op(a) @ op(b), register-tiled and cache-blocked.
/// Shape errors fail fast with the offending m/k/n values in the message.
/// Calls above a small work threshold record the `qps.nn.gemm_ms`
/// histogram.
void Gemm(GemmLayout layout, const Tensor& a, const Tensor& b, Tensor* out,
          bool accumulate);

/// out = a @ b. Shapes must agree ((m x k) @ (k x n)).
void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out);

/// out += a @ b^T and out += a^T @ b, used by MatMul backward.
void MatMulTransBInto(const Tensor& a, const Tensor& b, Tensor* out, bool accumulate);
void MatMulTransAInto(const Tensor& a, const Tensor& b, Tensor* out, bool accumulate);

/// In-place elementwise helpers for the autograd-free inference path, where
/// activations do not need to preserve their inputs for a backward pass.
void AddRowBroadcastInPlace(Tensor* x, const Tensor& row);  ///< x[i,:] += row
void ReluInPlace(Tensor* x);
void TanhInPlace(Tensor* x);
void SigmoidInPlace(Tensor* x);
void SoftmaxRowsInPlace(Tensor* x);  ///< stable per-row softmax

}  // namespace nn
}  // namespace qps

#endif  // QPS_NN_TENSOR_H_
