// Copyright 2026 The QPSeeker Authors
//
// First-order optimizers over Module parameters.

#ifndef QPS_NN_OPTIM_H_
#define QPS_NN_OPTIM_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nn/layers.h"
#include "util/status.h"

namespace qps {
namespace nn {

/// Common interface: Step() applies accumulated gradients, then the caller
/// zero-grads before the next batch.
class Optimizer {
 public:
  explicit Optimizer(std::vector<NamedParam> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;

  /// Global-norm gradient clipping; returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  /// Optimizer state as named tensors (slot variables keyed by parameter
  /// name, e.g. "m.vae.enc0.w") and named scalars (e.g. Adam's step count
  /// "t"), in a stable order — the payload of a resumable training
  /// checkpoint (nn/serialize).
  virtual void ExportState(
      std::vector<std::pair<std::string, const Tensor*>>* tensors,
      std::vector<std::pair<std::string, double>>* scalars) const = 0;

  /// Restores state exported by the same optimizer type over the same
  /// parameter list. Fails (without partial mutation) when an entry is
  /// missing or a shape differs, naming the offending slot.
  virtual Status ImportState(
      const std::unordered_map<std::string, const Tensor*>& tensors,
      const std::unordered_map<std::string, double>& scalars) = 0;

 protected:
  std::vector<NamedParam> params_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<NamedParam> params, float lr, float momentum = 0.0f);
  void Step() override;
  void ExportState(std::vector<std::pair<std::string, const Tensor*>>* tensors,
                   std::vector<std::pair<std::string, double>>* scalars)
      const override;
  Status ImportState(
      const std::unordered_map<std::string, const Tensor*>& tensors,
      const std::unordered_map<std::string, double>& scalars) override;

 private:
  float lr_, momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) — the paper trains with lr 1e-3 (§6.2).
class Adam : public Optimizer {
 public:
  Adam(std::vector<NamedParam> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;
  void ExportState(std::vector<std::pair<std::string, const Tensor*>>* tensors,
                   std::vector<std::pair<std::string, double>>* scalars)
      const override;
  Status ImportState(
      const std::unordered_map<std::string, const Tensor*>& tensors,
      const std::unordered_map<std::string, double>& scalars) override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace nn
}  // namespace qps

#endif  // QPS_NN_OPTIM_H_
