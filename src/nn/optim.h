// Copyright 2026 The QPSeeker Authors
//
// First-order optimizers over Module parameters.

#ifndef QPS_NN_OPTIM_H_
#define QPS_NN_OPTIM_H_

#include <vector>

#include "nn/layers.h"

namespace qps {
namespace nn {

/// Common interface: Step() applies accumulated gradients, then the caller
/// zero-grads before the next batch.
class Optimizer {
 public:
  explicit Optimizer(std::vector<NamedParam> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;

  /// Global-norm gradient clipping; returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

 protected:
  std::vector<NamedParam> params_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<NamedParam> params, float lr, float momentum = 0.0f);
  void Step() override;

 private:
  float lr_, momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) — the paper trains with lr 1e-3 (§6.2).
class Adam : public Optimizer {
 public:
  Adam(std::vector<NamedParam> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace nn
}  // namespace qps

#endif  // QPS_NN_OPTIM_H_
