// Copyright 2026 The QPSeeker Authors

#include "nn/quant.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace qps {
namespace nn {

namespace {

// Padding granularity of the packed k dimension: one AVX-512 register of
// int8 lanes, so the VNNI kernel needs no tail handling; a multiple of 64
// is also a multiple of the AVX2 kernel's 16-lane step and unroll-friendly
// for the scalar fallback.
constexpr int64_t kKPad = 64;

// Below this many quantized elements the Timer + histogram overhead would
// rival the conversion itself (mirrors kGemmMetricMinWork in tensor.cc).
constexpr int64_t kQuantMetricMinWork = 4096;

metrics::Histogram* DequantHistogram() {
  static metrics::Histogram* const h =
      metrics::Registry::Global().GetHistogram("qps.nn.int8.dequant_ms");
  return h;
}

int64_t PadK(int64_t k) { return (k + kKPad - 1) / kKPad * kKPad; }

// The hot per-forward loops below take __restrict raw pointers: a uint8_t*
// store legally aliases anything (char aliasing rule), and without the
// annotation the vectorizer must assume each store may clobber the source
// row or the loop bound — which kept these loops scalar (~7 cycles per
// element) on exactly the path quantization is supposed to accelerate.

// Lane-parallel min/max: a plain `lo = min(lo, src[j])` reduction is NOT
// vectorizable without -ffast-math (reassociating float min changes
// NaN/signed-zero semantics, so GCC refuses); 16 independent lane
// accumulators need no reassociation, vectorize to vminps/vmaxps, and are
// exact for finite inputs in any order. Seeded with 0 because the row
// range must include zero (see QuantizeActivationsPerRow).
void MinMaxRow(const float* __restrict src, int64_t cols, float* lo_out,
               float* hi_out) {
  constexpr int kLanes = 16;
  float los[kLanes];
  float his[kLanes];
  for (int l = 0; l < kLanes; ++l) {
    los[l] = 0.0f;
    his[l] = 0.0f;
  }
  int64_t j = 0;
  for (; j + kLanes <= cols; j += kLanes) {
    // Keep the lane loop rolled: -funroll-loops would peel it into 32
    // scalar min/max chains before the vectorizer sees it.
#pragma GCC unroll 1
    for (int l = 0; l < kLanes; ++l) {
      const float v = src[j + l];
      los[l] = v < los[l] ? v : los[l];
      his[l] = v > his[l] ? v : his[l];
    }
  }
  float lo = 0.0f;
  float hi = 0.0f;
  for (int l = 0; l < kLanes; ++l) {
    lo = std::min(lo, los[l]);
    hi = std::max(hi, his[l]);
  }
  for (; j < cols; ++j) {
    lo = std::min(lo, src[j]);
    hi = std::max(hi, src[j]);
  }
  *lo_out = lo;
  *hi_out = hi;
}

// Round-half-up via truncation: src*inv + zp >= -0.5 by construction
// (zp rounds -lo/scale, and lo is the row minimum), so `bias` = zp + 0.5
// makes the operand non-negative and the float->int truncation rounds to
// nearest. Branch- and libm-free, so the compiler vectorizes it
// (cvttps2dq + pack) — the per-call cost sits on every quantized forward.
void QuantizeRow(const float* __restrict src, int64_t cols, float inv,
                 float bias, uint8_t* __restrict dst) {
  for (int64_t j = 0; j < cols; ++j) {
    int32_t q = static_cast<int32_t>(src[j] * inv + bias);
    q = q < 0 ? 0 : (q > 255 ? 255 : q);
    dst[j] = static_cast<uint8_t>(q);
  }
}

// Dequantize epilogue row: orow[j] = sa*sw[j]*(acc[j] - zp*rs[j]) (+ b[j]).
void DequantRow(const int32_t* __restrict arow, const float* __restrict sw,
                const int32_t* __restrict rs, const float* __restrict b,
                float sa, int32_t zp, int64_t n, float* __restrict orow) {
  if (b != nullptr) {
    for (int64_t j = 0; j < n; ++j) {
      orow[j] = sa * sw[j] * static_cast<float>(arow[j] - zp * rs[j]) + b[j];
    }
  } else {
    for (int64_t j = 0; j < n; ++j) {
      orow[j] = sa * sw[j] * static_cast<float>(arow[j] - zp * rs[j]);
    }
  }
}

// Symmetric scale for values in [-amax, amax]: quantized = round(x / scale)
// clamped to [-127, 127]. amax == 0 (all-zero channel) degenerates to
// scale 1 so dequantization is still exact.
float SymmetricScale(float amax) { return amax > 0.0f ? amax / 127.0f : 1.0f; }

int8_t QuantizeValue(float x, float inv_scale) {
  const float scaled = x * inv_scale;
  const long q = std::lround(scaled);
  return static_cast<int8_t>(std::min<long>(127, std::max<long>(-127, q)));
}

}  // namespace

const char* QuantSchemeName(QuantScheme scheme) {
  switch (scheme) {
    case QuantScheme::kPerTensor:
      return "per_tensor";
    case QuantScheme::kPerChannel:
      return "per_channel";
  }
  return "unknown";
}

QuantizedTensor QuantizeWeights(const Tensor& w, QuantScheme scheme) {
  QuantizedTensor q;
  q.rows = w.rows();
  q.cols = w.cols();
  q.scheme = scheme;
  q.data.resize(static_cast<size_t>(w.size()));

  const int64_t rows = w.rows();
  const int64_t cols = w.cols();
  const float* src = w.data();

  if (scheme == QuantScheme::kPerTensor) {
    float amax = 0.0f;
    for (int64_t i = 0; i < w.size(); ++i) amax = std::max(amax, std::fabs(src[i]));
    const float scale = SymmetricScale(amax);
    q.scales.assign(1, scale);
    q.zero_points.assign(1, 0);
    const float inv = 1.0f / scale;
    for (int64_t i = 0; i < w.size(); ++i) {
      q.data[static_cast<size_t>(i)] = QuantizeValue(src[i], inv);
    }
    return q;
  }

  // Per channel: one scale per column (output channel of y = x @ W).
  q.scales.assign(static_cast<size_t>(cols), 1.0f);
  q.zero_points.assign(static_cast<size_t>(cols), 0);
  std::vector<float> amax(static_cast<size_t>(cols), 0.0f);
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = src + i * cols;
    for (int64_t j = 0; j < cols; ++j) {
      amax[static_cast<size_t>(j)] =
          std::max(amax[static_cast<size_t>(j)], std::fabs(row[j]));
    }
  }
  std::vector<float> inv(static_cast<size_t>(cols));
  for (int64_t j = 0; j < cols; ++j) {
    const float scale = SymmetricScale(amax[static_cast<size_t>(j)]);
    q.scales[static_cast<size_t>(j)] = scale;
    inv[static_cast<size_t>(j)] = 1.0f / scale;
  }
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = src + i * cols;
    int8_t* dst = q.data.data() + i * cols;
    for (int64_t j = 0; j < cols; ++j) {
      dst[j] = QuantizeValue(row[j], inv[static_cast<size_t>(j)]);
    }
  }
  return q;
}

Tensor Dequantize(const QuantizedTensor& q) {
  const bool record_metric = q.rows * q.cols >= kQuantMetricMinWork;
  Timer timer;
  Tensor out(q.rows, q.cols);
  float* dst = out.data();
  if (q.scheme == QuantScheme::kPerTensor) {
    const float scale = q.scales.empty() ? 1.0f : q.scales[0];
    for (int64_t i = 0; i < out.size(); ++i) {
      dst[i] = scale * static_cast<float>(q.data[static_cast<size_t>(i)]);
    }
  } else {
    for (int64_t i = 0; i < q.rows; ++i) {
      const int8_t* src = q.data.data() + i * q.cols;
      float* row = dst + i * q.cols;
      for (int64_t j = 0; j < q.cols; ++j) {
        row[j] = q.scales[static_cast<size_t>(j)] * static_cast<float>(src[j]);
      }
    }
  }
  if (record_metric) DequantHistogram()->Record(timer.ElapsedMillis());
  return out;
}

Status ValidateQuantizedTensor(const QuantizedTensor& q,
                               const std::string& context) {
  if (q.rows <= 0 || q.cols <= 0) {
    return Status::InvalidArgument(context + ": non-positive quantized shape " +
                                   std::to_string(q.rows) + "x" +
                                   std::to_string(q.cols));
  }
  if (q.scheme != QuantScheme::kPerTensor &&
      q.scheme != QuantScheme::kPerChannel) {
    return Status::InvalidArgument(
        context + ": unknown quantization scheme tag " +
        std::to_string(static_cast<uint32_t>(q.scheme)));
  }
  const int64_t want_scales = q.num_scales();
  if (static_cast<int64_t>(q.scales.size()) != want_scales) {
    return Status::InvalidArgument(
        context + ": scale count " + std::to_string(q.scales.size()) +
        " does not match scheme " + QuantSchemeName(q.scheme) + " (expected " +
        std::to_string(want_scales) + ")");
  }
  if (q.zero_points.size() != q.scales.size()) {
    return Status::InvalidArgument(
        context + ": zero-point count " + std::to_string(q.zero_points.size()) +
        " does not match scale count " + std::to_string(q.scales.size()));
  }
  for (size_t i = 0; i < q.scales.size(); ++i) {
    const float s = q.scales[i];
    if (!std::isfinite(s) || s <= 0.0f) {
      return Status::InvalidArgument(context + ": malformed quantization scale[" +
                                std::to_string(i) + "] = " +
                                std::to_string(s) +
                                " (must be finite and > 0)");
    }
  }
  for (size_t i = 0; i < q.zero_points.size(); ++i) {
    if (q.zero_points[i] != 0) {
      return Status::InvalidArgument(
          context + ": nonzero weight zero point zp[" + std::to_string(i) +
          "] = " + std::to_string(q.zero_points[i]) +
          " (weight quantization is symmetric)");
    }
  }
  if (static_cast<int64_t>(q.data.size()) != q.rows * q.cols) {
    return Status::InvalidArgument(
        context + ": quantized data has " + std::to_string(q.data.size()) +
        " values for a " + std::to_string(q.rows) + "x" +
        std::to_string(q.cols) + " tensor");
  }
  return Status::OK();
}

PackedQuantWeights PackForGemm(const QuantizedTensor& q) {
  QPS_CHECK(q.rows > 0 && q.cols > 0)
      << "PackForGemm: empty quantized tensor " << q.rows << "x" << q.cols;
  QPS_CHECK(static_cast<int64_t>(q.data.size()) == q.rows * q.cols)
      << "PackForGemm: data size " << q.data.size() << " for " << q.rows << "x"
      << q.cols;

  PackedQuantWeights p;
  p.in = q.rows;
  p.out = q.cols;
  p.k_padded = PadK(q.rows);
  p.out_padded = (q.cols + 15) / 16 * 16;
  // Zero padding: the activation rows are padded with their zero point, and
  // 0-weight * anything contributes nothing after the zp correction.
  p.data.assign(static_cast<size_t>(p.out * p.k_padded), 0);
  p.vnni_data.assign(static_cast<size_t>(p.out_padded * p.k_padded), 0);
  p.scales.assign(static_cast<size_t>(p.out), 1.0f);
  p.row_sums.assign(static_cast<size_t>(p.out), 0);

  for (int64_t j = 0; j < p.out; ++j) {
    p.scales[static_cast<size_t>(j)] =
        q.scheme == QuantScheme::kPerTensor ? q.scales[0]
                                            : q.scales[static_cast<size_t>(j)];
    int8_t* dst = p.data.data() + j * p.k_padded;
    // VNNI blocked layout: channel j lives in 16-channel block jb at lane
    // c, with k grouped 4 to a vpdpbusd step (see quant.h).
    int8_t* vdst = p.vnni_data.data() + (j / 16) * 16 * p.k_padded + (j % 16) * 4;
    int32_t sum = 0;
    for (int64_t i = 0; i < p.in; ++i) {
      const int8_t v = q.data[static_cast<size_t>(i * q.cols + j)];
      dst[i] = v;
      vdst[(i / 4) * 64 + (i % 4)] = v;
      sum += v;
    }
    p.row_sums[static_cast<size_t>(j)] = sum;
  }
  return p;
}

void QuantizeActivationsPerRow(const Tensor& x, QuantizedActs* out) {
  const bool record_metric = x.size() >= kQuantMetricMinWork;
  Timer timer;

  out->rows = x.rows();
  out->cols = x.cols();
  out->k_padded = PadK(x.cols());
  out->data.resize(static_cast<size_t>(out->rows * out->k_padded));
  out->scales.assign(static_cast<size_t>(out->rows), 1.0f);
  out->zero_points.assign(static_cast<size_t>(out->rows), 0);

  const int64_t rows = x.rows();
  const int64_t cols = x.cols();
  const int64_t kp = out->k_padded;
  for (int64_t i = 0; i < rows; ++i) {
    const float* src = x.data() + i * cols;
    // Row range always includes 0, so lo <= 0 <= hi: the zero point lands
    // in [0, 255] and zero activations quantize exactly.
    float lo;
    float hi;
    MinMaxRow(src, cols, &lo, &hi);
    const float range = hi - lo;
    float scale = 1.0f;
    int32_t zp = 0;
    if (range > 0.0f) {
      scale = range / 255.0f;
      zp = static_cast<int32_t>(std::lround(-lo / scale));
      zp = std::min(255, std::max(0, zp));
    }
    out->scales[static_cast<size_t>(i)] = scale;
    out->zero_points[static_cast<size_t>(i)] = zp;

    uint8_t* dst = out->data.data() + i * kp;
    QuantizeRow(src, cols, 1.0f / scale, static_cast<float>(zp) + 0.5f, dst);
    // Pad with the zero point: padded weight lanes are 0, and the zp
    // correction subtracts zp * row_sum, which only covers real lanes — a
    // 0 weight times any pad value contributes 0 to the accumulator.
    for (int64_t j = cols; j < kp; ++j) {
      dst[j] = static_cast<uint8_t>(zp);
    }
  }

  if (record_metric) DequantHistogram()->Record(timer.ElapsedMillis());
}

void DequantizeGemmOutput(const QuantizedActs& a, const PackedQuantWeights& w,
                          const int32_t* acc, const float* bias, Tensor* out) {
  const int64_t m = a.rows;
  const int64_t n = w.out;
  for (int64_t i = 0; i < m; ++i) {
    DequantRow(acc + i * n, w.scales.data(), w.row_sums.data(), bias,
               a.scales[static_cast<size_t>(i)],
               a.zero_points[static_cast<size_t>(i)], n, out->data() + i * n);
  }
}

}  // namespace nn
}  // namespace qps
