// Copyright 2026 The QPSeeker Authors
//
// Int8 GEMM for quantized Linear forwards: u8 activations x s8 packed
// weights -> exact i32 accumulate -> affine dequantize (+ optional bias)
// into an f32 tensor. Runtime-dispatched between a portable scalar
// kernel, an AVX2 micro-kernel, and an AVX512-VNNI micro-kernel
// (simd::ActiveIsa()); all tiers accumulate the same integers, so their
// results are bit-identical by construction — integer addition is
// associative, unlike the f32 path — which quant_test checks across
// ragged shapes.

#ifndef QPS_NN_GEMM_INT8_H_
#define QPS_NN_GEMM_INT8_H_

#include <cstdint>

#include "nn/quant.h"
#include "nn/tensor.h"
#include "util/cpuid.h"

namespace qps {
namespace nn {

/// out(m x n) = dequant(a(m x k) @ w(k x n)) + bias, where
///   dequant(i, j) = scale_a[i] * scale_w[j] * (acc(i, j) - zp_a[i] * row_sum_w[j])
/// `bias` may be null (no bias) or point at n floats. `out` must already be
/// m x n. Records `qps.nn.int8.gemm_ms` above a small work threshold.
void GemmInt8(const QuantizedActs& a, const PackedQuantWeights& w,
              const float* bias, Tensor* out);

/// Raw integer core, exposed for the cross-kernel bit-identity tests:
/// acc(a.rows x w.out) = a @ W with i32 accumulation, routed to the
/// kernel for `isa` (clamped to what this binary/host can run). `acc` is
/// fully overwritten. Every tier must produce identical integers for
/// identical inputs.
void Int8AccumulateRows(simd::Isa isa, const QuantizedActs& a,
                        const PackedQuantWeights& w, int32_t* acc);

/// Name of the kernel ActiveIsa() currently selects ("scalar" / "avx2" /
/// "avx512vnni"); surfaced by the qpsql \quantize meta-command.
const char* ActiveInt8Kernel();

}  // namespace nn
}  // namespace qps

#endif  // QPS_NN_GEMM_INT8_H_
