// Copyright 2026 The QPSeeker Authors

#include "nn/optim.h"

#include <cmath>

namespace qps {
namespace nn {

float Optimizer::ClipGradNorm(float max_norm) {
  double total_sq = 0.0;
  for (const auto& p : params_) {
    if (!p.var->grad.SameShape(p.var->value)) continue;
    const float n = p.var->grad.FrobeniusNorm();
    total_sq += static_cast<double>(n) * n;
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const auto& p : params_) {
      if (p.var->grad.SameShape(p.var->value)) p.var->grad.ScaleInPlace(scale);
    }
  }
  return norm;
}

namespace {

/// Shared Import helper: copies `prefix.<param_name>` entries from `src`
/// into the per-parameter slot tensors, validating presence and shape
/// before any slot is mutated.
Status ImportSlots(const std::string& prefix,
                   const std::vector<NamedParam>& params,
                   const std::unordered_map<std::string, const Tensor*>& src,
                   std::vector<Tensor>* slots) {
  std::vector<const Tensor*> found(params.size(), nullptr);
  for (size_t i = 0; i < params.size(); ++i) {
    const std::string key = prefix + "." + params[i].name;
    auto it = src.find(key);
    if (it == src.end()) {
      return Status::NotFound("optimizer state missing slot: " + key);
    }
    if (!it->second->SameShape((*slots)[i])) {
      return Status::InvalidArgument("optimizer slot shape mismatch: " + key);
    }
    found[i] = it->second;
  }
  for (size_t i = 0; i < params.size(); ++i) (*slots)[i] = *found[i];
  return Status::OK();
}

}  // namespace

Sgd::Sgd(std::vector<NamedParam> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  for (const auto& p : params_) {
    velocity_.emplace_back(Tensor::Zeros(p.var->value.rows(), p.var->value.cols()));
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& var = *params_[i].var;
    if (!var.grad.SameShape(var.value)) continue;
    if (momentum_ > 0.0f) {
      velocity_[i].ScaleInPlace(momentum_);
      velocity_[i].AddInPlace(var.grad);
      var.value.AddScaledInPlace(velocity_[i], -lr_);
    } else {
      var.value.AddScaledInPlace(var.grad, -lr_);
    }
  }
}

void Sgd::ExportState(
    std::vector<std::pair<std::string, const Tensor*>>* tensors,
    std::vector<std::pair<std::string, double>>* scalars) const {
  (void)scalars;
  for (size_t i = 0; i < params_.size(); ++i) {
    tensors->emplace_back("velocity." + params_[i].name, &velocity_[i]);
  }
}

Status Sgd::ImportState(
    const std::unordered_map<std::string, const Tensor*>& tensors,
    const std::unordered_map<std::string, double>& scalars) {
  (void)scalars;
  return ImportSlots("velocity", params_, tensors, &velocity_);
}

Adam::Adam(std::vector<NamedParam> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  for (const auto& p : params_) {
    m_.emplace_back(Tensor::Zeros(p.var->value.rows(), p.var->value.cols()));
    v_.emplace_back(Tensor::Zeros(p.var->value.rows(), p.var->value.cols()));
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& var = *params_[i].var;
    if (!var.grad.SameShape(var.value)) continue;
    float* m = m_[i].data();
    float* v = v_[i].data();
    float* w = var.value.data();
    const float* g = var.grad.data();
    for (int64_t j = 0; j < var.value.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::ExportState(
    std::vector<std::pair<std::string, const Tensor*>>* tensors,
    std::vector<std::pair<std::string, double>>* scalars) const {
  for (size_t i = 0; i < params_.size(); ++i) {
    tensors->emplace_back("m." + params_[i].name, &m_[i]);
    tensors->emplace_back("v." + params_[i].name, &v_[i]);
  }
  scalars->emplace_back("t", static_cast<double>(t_));
}

Status Adam::ImportState(
    const std::unordered_map<std::string, const Tensor*>& tensors,
    const std::unordered_map<std::string, double>& scalars) {
  auto t_it = scalars.find("t");
  if (t_it == scalars.end()) {
    return Status::NotFound("optimizer state missing scalar: t");
  }
  std::vector<Tensor> m_backup = m_;
  QPS_RETURN_IF_ERROR(ImportSlots("m", params_, tensors, &m_));
  if (Status st = ImportSlots("v", params_, tensors, &v_); !st.ok()) {
    m_ = std::move(m_backup);  // keep the no-partial-mutation contract
    return st;
  }
  t_ = static_cast<int64_t>(t_it->second);
  return Status::OK();
}

}  // namespace nn
}  // namespace qps
