// Copyright 2026 The QPSeeker Authors
//
// Bounded LRU cache for learned plan-cost predictions. MCTS revisits the
// same subplans constantly (every rollout through a shared prefix re-scores
// the completed plan), and greedy/guarded planning re-score candidates
// across steps. A prediction depends only on (query, plan shape, model
// weights): the estimated per-node annotations the encoder consumes are a
// deterministic function of the query and the plan's operator/relation/
// predicate structure, so the cache key is the pair
//
//   (QueryFingerprint(q), PlanShapeHash(plan))
//
// and the cache must be cleared whenever weights change (Train / Load —
// QpSeeker does this). Hits return the exact previously computed stats, so
// caching never alters planning results, only their cost.
//
// Metrics: qps.cache.hits / qps.cache.misses / qps.cache.evictions
// (process-wide), plus per-instance counters for the qpsql \cache command.

#ifndef QPS_CORE_PLAN_CACHE_H_
#define QPS_CORE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "query/plan.h"
#include "query/query.h"

namespace qps {
namespace core {

/// Order-sensitive structural hash of a query: relations (table + alias),
/// join predicates, and filter predicates including literal values.
uint64_t QueryFingerprint(const query::Query& q);

/// Recursive structural hash of a plan subtree: operator, scan relation,
/// join predicate indices, and both child subtrees (left/right sensitive).
/// Ignores the estimated/actual stats annotations — those are derived.
uint64_t PlanShapeHash(const query::PlanNode& plan);

/// Thread-safe bounded LRU map from (query fingerprint, plan shape) to a
/// predicted NodeStats triple.
class PlanPredictionCache {
 public:
  struct Stats {
    int64_t entries = 0;
    int64_t capacity_bytes = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };

  /// `capacity_bytes` bounds the approximate in-memory footprint; at least
  /// one entry is always admitted when capacity is positive.
  explicit PlanPredictionCache(int64_t capacity_bytes);

  /// On hit copies the cached stats into `*out`, refreshes recency, and
  /// returns true. Records hit/miss metrics either way.
  bool Lookup(uint64_t query_fp, uint64_t plan_hash, query::NodeStats* out);

  /// Inserts or refreshes an entry, evicting least-recently-used entries
  /// while over capacity.
  void Insert(uint64_t query_fp, uint64_t plan_hash, const query::NodeStats& stats);

  /// Drops every entry (model weights changed). Keeps the counters.
  void Clear();

  Stats GetStats() const;

 private:
  struct Key {
    uint64_t query_fp;
    uint64_t plan_hash;
    bool operator==(const Key& o) const {
      return query_fp == o.query_fp && plan_hash == o.plan_hash;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    Key key;
    query::NodeStats stats;
  };

  // Approximate per-entry footprint: key + stats + list node + hash bucket.
  static constexpr int64_t kBytesPerEntry = 96;

  mutable std::mutex mu_;
  int64_t capacity_entries_;
  int64_t capacity_bytes_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace core
}  // namespace qps

#endif  // QPS_CORE_PLAN_CACHE_H_
