// Copyright 2026 The QPSeeker Authors
//
// Hybrid optimizer — the paper's §7.3 future-work direction, implemented:
// "a possible direction towards hybrid optimizers where a neural planner
// kicks in for complex queries where traditional optimizers have trouble
// handling". Simple queries (few joins) go to the statistics-based DP
// planner, whose estimates are accurate there (Tables 4/5 show PostgreSQL
// winning on Synthetic); complex queries go to QPSeeker+MCTS, which wins
// on JOB/Stack-class queries.

#ifndef QPS_CORE_HYBRID_H_
#define QPS_CORE_HYBRID_H_

#include "core/mcts.h"
#include "optimizer/planner.h"

namespace qps {
namespace core {

struct HybridOptions {
  /// Queries with at least this many relations are planned neurally.
  int neural_min_relations = 4;
  MctsOptions mcts;
};

struct HybridResult {
  query::PlanPtr plan;
  bool used_neural = false;
  double planning_ms = 0.0;
  int plans_evaluated = 0;  ///< 0 on the traditional path
  double predicted_runtime_ms = 0.0;  ///< model score (neural path only)
  bool deadline_hit = false;
};

/// Routes planning between the traditional DP planner and QPSeeker's MCTS
/// by query complexity.
class HybridPlanner : public Planner {
 public:
  HybridPlanner(const QpSeeker* model, const optimizer::Planner* baseline,
                HybridOptions options = {})
      : model_(model), baseline_(baseline), options_(options) {}

  /// Legacy entry point; equivalent to Plan(q, {}).
  StatusOr<HybridResult> Plan(const query::Query& q) const;

  /// Unified entry point (core::Planner). Request deadline, seed, and batch
  /// evaluator apply only when the query routes to the neural path.
  StatusOr<PlanResult> Plan(const query::Query& q,
                            const PlanRequestOptions& ropts) override;

  const char* name() const override { return "hybrid"; }

  const HybridOptions& options() const { return options_; }

 private:
  const QpSeeker* model_;
  const optimizer::Planner* baseline_;
  HybridOptions options_;
};

}  // namespace core
}  // namespace qps

#endif  // QPS_CORE_HYBRID_H_
