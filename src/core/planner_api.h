// Copyright 2026 The QPSeeker Authors
//
// The unified planner surface. Four planning backends grew out of the
// paper's experiments — the Selinger-style DP baseline, raw MCTS over the
// learned cost model, the complexity-routed hybrid, and the guarded
// degradation ladder — each with its own call signature. Everything above
// them (qpsql, the plan service, the conformance suite) dispatches through
// this one interface instead:
//
//   StatusOr<PlanResult> Plan(const query::Query&, const PlanRequestOptions&)
//
// Error-code contract, uniform across backends:
//   kInvalidArgument    malformed query (empty, or a plan failed validation)
//   kNotImplemented     unsupported query shape (cross products)
//   kDeadlineExceeded   the hard planning deadline was blown and the caller
//                       asked to fail instead of taking a best-effort plan
//                       (or a deadline-armed cancel token fired mid-search)
//   kAborted            the request's cancel token was tripped: the caller
//                       abandoned the work and the backend stopped at the
//                       next rollout/step boundary. Never retryable.
//   kResourceExhausted  reserved for the serving layer: the request was shed
//                       by admission control before reaching a backend
//   kUnavailable        reserved for the serving layer: the tenant is
//                       quarantined by its health breaker (fast-fail;
//                       retryable once the breaker half-opens)
//   kInternal           backend defects (diverged model, no plan found)
// No entry point returns a null plan on OK: `PlanResult::plan` is non-null
// and ValidatePlan-clean whenever the status is OK.

#ifndef QPS_CORE_PLANNER_API_H_
#define QPS_CORE_PLANNER_API_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "query/plan.h"
#include "query/query.h"
#include "util/cancel.h"
#include "util/status.h"

namespace qps {
namespace core {

/// Which rung of the planning ladder produced a plan. Backends without a
/// ladder report the single stage they implement.
enum class PlanStage { kNeural, kGreedy, kTraditional };

const char* PlanStageName(PlanStage stage);

/// Per-stage fallback and circuit-breaker counters, exported for serving
/// dashboards (see qpsql's \guards meta-command). Backends without guard
/// rails report all-zero stats through Planner::guard_stats().
struct GuardStats {
  int64_t requests = 0;

  int64_t neural_attempts = 0;
  int64_t neural_success = 0;
  int64_t neural_invalid_plan = 0;  ///< ValidatePlan rejected the MCTS plan
  int64_t neural_nan = 0;           ///< non-finite model score
  int64_t neural_deadline = 0;      ///< planning deadline blown
  int64_t neural_error = 0;         ///< other Status failures (incl. faults)

  int64_t greedy_attempts = 0;
  int64_t greedy_success = 0;
  int64_t greedy_failures = 0;

  int64_t traditional_attempts = 0;
  int64_t traditional_success = 0;
  int64_t traditional_failures = 0;

  int64_t circuit_opens = 0;
  int64_t circuit_closes = 0;
  int64_t circuit_short_circuits = 0;  ///< requests routed while open

  int64_t NeuralFailures() const {
    return neural_invalid_plan + neural_nan + neural_deadline + neural_error;
  }

  /// Field-wise sum, for aggregating per-worker planner instances.
  GuardStats& operator+=(const GuardStats& o);

  std::string ToString() const;
};

/// External evaluator for candidate-plan batches. The serving layer
/// injects one per request to coalesce model evaluations from different
/// in-flight queries into shared batched forwards (serve::BatchRendezvous);
/// null means "call the model directly". Must return one NodeStats triple
/// per input plan, bit-identical to QpSeeker::PredictPlansBatch.
using BatchEvalFn = std::function<std::vector<query::NodeStats>(
    const query::Query&, const std::vector<const query::PlanNode*>&)>;

/// Per-request knobs, identical for every backend.
struct PlanRequestOptions {
  /// Planning deadline in ms, measured from Plan() entry (0 = none).
  /// Neural backends clamp their anytime search budget to it and return
  /// the best plan found so far when it expires — a deadline produces a
  /// valid (if less optimized) plan, not a failure.
  double deadline_ms = 0.0;

  /// When true a blown deadline returns kDeadlineExceeded instead of the
  /// best-effort plan.
  bool fail_on_deadline = false;

  /// Overrides the backend's MCTS seed when non-zero, so callers (and the
  /// serving determinism tests) can pin per-request randomness.
  uint64_t seed = 0;

  /// Tenant context, stamped by the serving layer (serve::PlanRequest) for
  /// attribution in traces/audit. Backends must not let it influence
  /// planning: plans are a function of (query, seed) alone, so sharded
  /// multi-tenant serving stays bit-identical to single-tenant serving.
  std::string tenant_id;

  /// Cross-query batch evaluator; see BatchEvalFn.
  BatchEvalFn evaluate;

  /// Cooperative cancellation (util/cancel.h), polled at rollout/step/DP
  /// boundaries. Null = never cancelled. Non-owning: the caller keeps the
  /// token alive for the whole Plan() call. A tripped token surfaces as
  /// kAborted (explicit Cancel) or kDeadlineExceeded (armed deadline) —
  /// cancellation wins over best-so-far results, because the caller has
  /// already stopped listening.
  const util::CancelToken* cancel = nullptr;
};

/// The unified planning result. `stage` and the guard counters replace the
/// planner-specific accessors the four backends used to expose.
struct PlanResult {
  query::PlanPtr plan;                       ///< never null on OK status
  PlanStage stage = PlanStage::kTraditional;
  /// Root estimate triple: the cost-model annotation of the plan root,
  /// with runtime_ms overridden by the learned model's predicted runtime
  /// on the neural/greedy stages.
  query::NodeStats node_stats;
  double plan_ms = 0.0;      ///< wall planning time inside Plan()
  int plans_evaluated = 0;   ///< model forwards (0 on the traditional path)
  bool used_neural = false;  ///< the learned model was consulted
  bool deadline_hit = false; ///< search truncated by the request deadline
  std::string fallback_reason;  ///< ladder detail; empty when first choice served
};

/// Abstract planning backend. Implementations: BaselinePlanner,
/// MctsPlanner (planner_backends.h), HybridPlanner (hybrid.h), and
/// GuardedPlanner (guarded_planner.h). Plan() is not required to be
/// thread-safe; the serving layer gives each request exclusive use of the
/// planner while it runs (single dispatch mutex or per-worker instances).
class Planner {
 public:
  virtual ~Planner() = default;

  /// Stable backend name ("baseline", "neural", "hybrid", "guarded").
  virtual const char* name() const = 0;

  virtual StatusOr<PlanResult> Plan(const query::Query& q,
                                    const PlanRequestOptions& opts) = 0;

  /// Guard/breaker counters; all-zero for backends without a ladder.
  virtual GuardStats guard_stats() const { return GuardStats{}; }
};

/// Shared precondition check used by every backend: non-empty and free of
/// cross products. Returns kInvalidArgument / kNotImplemented.
Status CheckPlannable(const query::Query& q);

}  // namespace core
}  // namespace qps

#endif  // QPS_CORE_PLANNER_API_H_
