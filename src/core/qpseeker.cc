// Copyright 2026 The QPSeeker Authors

#include "core/qpseeker.h"

#include <cmath>
#include <fstream>

#include "nn/optim.h"
#include "nn/serialize.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace qps {
namespace core {

using nn::Var;
using query::PlanNode;
using query::Query;

QpSeekerConfig QpSeekerConfig::ForScale(Scale scale) {
  QpSeekerConfig cfg;
  switch (scale) {
    case Scale::kSmoke:
      cfg.encoder = encoder::EncoderConfig::Smoke();
      cfg.latent_dim = 8;
      cfg.vae_hidden_layers = 2;
      break;
    case Scale::kCi:
      cfg.encoder = encoder::EncoderConfig::Ci();
      cfg.latent_dim = 16;
      cfg.vae_hidden_layers = 3;
      break;
    case Scale::kPaper:
      cfg.encoder = encoder::EncoderConfig::Paper();
      cfg.latent_dim = 32;  // paper: 32 latent features
      cfg.vae_hidden_layers = 5;
      break;
  }
  return cfg;
}

/// Exposes every trainable submodule as one Module (for Adam / serialize).
class QpSeeker::Bundle : public nn::Module {
 public:
  Bundle(encoder::QueryEncoder* qe, encoder::PlanEncoder* pe,
         encoder::QpAttention* at, nn::Vae* vae, nn::Linear* head) {
    RegisterChild("query_encoder", qe);
    RegisterChild("plan_encoder", pe);
    RegisterChild("qp_attention", at);
    RegisterChild("vae", vae);
    RegisterChild("head", head);
  }
};

QpSeeker::QpSeeker(const storage::Database& db, const stats::DatabaseStats& stats,
                   QpSeekerConfig config, uint64_t seed)
    : db_(db), stats_(stats), config_(config) {
  cards_ = std::make_unique<optimizer::CardinalityEstimator>(db, stats);
  cost_model_ = std::make_unique<optimizer::CostModel>(*cards_);
  Rng rng(seed);
  // TabSketch plays the role of *pretrained* TaBERT weights: fixed seed,
  // identical across model instances (and thus across Save/Load).
  tabert_ = std::make_unique<tabert::TabSketch>(db, stats, config_.tabert,
                                                /*seed=*/0x7ab5);
  query_encoder_ = std::make_unique<encoder::QueryEncoder>(db, config_.encoder, &rng);
  plan_encoder_ =
      std::make_unique<encoder::PlanEncoder>(db, *tabert_, config_.encoder, &rng);
  attention_ = std::make_unique<encoder::QpAttention>(
      query_encoder_->out_dim(), plan_encoder_->node_out_dim(), config_.encoder, &rng);
  const int qep_dim = attention_->out_dim();
  vae_ = std::make_unique<nn::Vae>(qep_dim, config_.latent_dim,
                                   config_.vae_hidden_layers, &rng);
  head_ = std::make_unique<nn::Linear>(qep_dim, 3, &rng, "head");
  bundle_ = std::make_unique<Bundle>(query_encoder_.get(), plan_encoder_.get(),
                                     attention_.get(), vae_.get(), head_.get());
}

QpSeeker::QpSeeker(QpSeeker&&) noexcept = default;
QpSeeker::~QpSeeker() = default;

int64_t QpSeeker::NumParameters() const { return bundle_->NumParameters(); }

std::vector<nn::NamedParam> QpSeeker::AllParameters() const {
  return bundle_->Parameters();
}

void QpSeeker::AnnotateEstimates(const Query& q, PlanNode* plan) const {
  // EXPLAIN-style annotations from the statistics-based cost model — the
  // paper feeds "estimations ... from the DB optimizer" (§4.2) into each
  // node, and the model learns the mapping from these to true values.
  cost_model_->EstimatePlan(q, plan);
}

QpSeeker::ForwardOut QpSeeker::Forward(const Query& q, const PlanNode& plan,
                                       Rng* sample_rng) const {
  static metrics::Counter* const forwards_counter =
      metrics::Registry::Global().GetCounter("qps.model.forwards");
  QPS_TRACE_SPAN("model.forward");
  forwards_counter->Increment();
  ForwardOut out;
  Var query_emb = query_encoder_->Encode(q);
  out.plan_out = plan_encoder_->Encode(q, plan, normalizer_);
  if (config_.use_attention) {
    out.qep_embedding = attention_->Combine(query_emb, out.plan_out);
  } else {
    // Ablation: plain concatenation of query and plan embeddings (§4.3
    // argues attention beats this).
    out.qep_embedding = nn::ConcatCols({query_emb, out.plan_out.root});
  }
  // Linear (unbounded) output head: normalized targets live in [0, 1], but
  // an unseen workload's plans can be costlier than anything in training
  // and the planner must still *rank* them (the Figure 9 transfer setting).
  if (config_.use_vae) {
    QPS_TRACE_SPAN("vae.forward");
    out.vae = vae_->Forward(out.qep_embedding, sample_rng);
    out.preds = head_->Forward(out.vae.recon);
  } else {
    // Ablation: deterministic regressor, no variational bottleneck.
    out.vae.recon = out.qep_embedding;
    out.vae.mu = out.qep_embedding;
    out.vae.logvar = out.qep_embedding;
    out.preds = head_->Forward(out.qep_embedding);
  }
  return out;
}

TrainReport QpSeeker::Train(const sampling::QepDataset& dataset,
                            const TrainOptions& opts) {
  TrainReport report;
  report.num_parameters = NumParameters();
  QPS_CHECK(!dataset.qeps.empty()) << "empty training set";

  normalizer_ = encoder::LabelNormalizer();
  for (const auto& qep : dataset.qeps) normalizer_.Observe(*qep.plan);
  normalizer_.Finalize();

  // Annotate input estimates once (leaf EXPLAIN stats the encoder consumes).
  std::vector<const sampling::Qep*> items;
  for (const auto& qep : dataset.qeps) {
    AnnotateEstimates(dataset.queries[static_cast<size_t>(qep.query_id)],
                      qep.plan.get());
    items.push_back(&qep);
  }

  nn::Adam adam(AllParameters(), opts.learning_rate);
  Rng rng(opts.seed);
  Timer timer;
  const float beta_eff = static_cast<float>(config_.beta * config_.beta_scale);

  auto& reg = metrics::Registry::Global();
  metrics::Counter* const epochs_counter = reg.GetCounter("qps.train.epochs");
  metrics::Gauge* const loss_gauge = reg.GetGauge("qps.train.epoch_loss");
  metrics::Gauge* const grad_gauge = reg.GetGauge("qps.train.grad_norm");
  metrics::Gauge* const lr_gauge = reg.GetGauge("qps.train.lr");
  lr_gauge->Set(opts.learning_rate);

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    QPS_TRACE_SPAN_VAR(epoch_span, "train.epoch");
    epoch_span.AddAttr("epoch", epoch);
    rng.Shuffle(&items);
    double epoch_loss = 0.0;
    size_t index = 0;
    while (index < items.size()) {
      bundle_->ZeroGrad();
      const size_t batch_end =
          std::min(items.size(), index + static_cast<size_t>(opts.batch_size));
      double batch_loss = 0.0;
      for (; index < batch_end; ++index) {
        const sampling::Qep& qep = *items[index];
        const Query& q = dataset.queries[static_cast<size_t>(qep.query_id)];
        ForwardOut fwd = Forward(q, *qep.plan, &rng);

        // (1) Plan-level target MSE.
        const auto target3 = normalizer_.Normalize(qep.plan->actual);
        Var loss = nn::Scale(
            nn::MseLoss(fwd.preds,
                        nn::Tensor::Row({target3[0], target3[1], target3[2]})),
            static_cast<float>(config_.pred_weight));
        // (2) VAE reconstruction + KL (the variational objective).
        if (config_.use_vae) {
          Var recon_loss = nn::MeanAll(
              nn::Square(nn::Sub(fwd.vae.recon, fwd.qep_embedding)));
          loss = nn::Add(loss, nn::Scale(recon_loss,
                                         static_cast<float>(config_.recon_weight)));
          loss = nn::Add(loss, nn::Scale(nn::GaussianKl(fwd.vae.mu, fwd.vae.logvar),
                                         beta_eff));
        }
        // (3) Per-node supervision of the plan encoder's stat dims.
        if (config_.node_loss_weight > 0.0) {
          const int dvec = plan_encoder_->data_vec_dim();
          std::vector<Var> node_preds;
          std::vector<float> node_targets;
          for (size_t ni = 0; ni < fwd.plan_out.nodes.size(); ++ni) {
            node_preds.push_back(nn::SliceCols(fwd.plan_out.node_outputs[ni], dvec,
                                               dvec + 3));
            const auto n3 = normalizer_.Normalize(fwd.plan_out.nodes[ni]->actual);
            node_targets.insert(node_targets.end(), {n3[0], n3[1], n3[2]});
          }
          Var stacked = nn::ConcatCols(node_preds);
          Var node_loss = nn::MseLoss(stacked, nn::Tensor::Row(node_targets));
          loss = nn::Add(loss, nn::Scale(node_loss,
                                         static_cast<float>(config_.node_loss_weight)));
        }
        batch_loss += loss->value(0, 0);
        nn::Backward(loss);
      }
      grad_gauge->Set(adam.ClipGradNorm(opts.grad_clip));
      adam.Step();
      epoch_loss += batch_loss;
    }
    epoch_loss /= static_cast<double>(items.size());
    report.epoch_losses.push_back(epoch_loss);
    epochs_counter->Increment();
    loss_gauge->Set(epoch_loss);
    if (opts.verbose) {
      QPS_LOG(Info) << "epoch " << epoch << " loss " << epoch_loss;
    }
    QPS_VLOG(2) << "train: epoch " << epoch << " loss " << epoch_loss
                << " grad_norm " << grad_gauge->value();
  }
  report.final_loss = report.epoch_losses.empty() ? 0.0 : report.epoch_losses.back();
  report.train_seconds = timer.ElapsedSeconds();
  return report;
}

query::NodeStats QpSeeker::PredictPlan(const Query& q, const PlanNode& plan) const {
  auto annotated = plan.Clone();
  AnnotateEstimates(q, annotated.get());
  ForwardOut fwd = Forward(q, *annotated, /*sample_rng=*/nullptr);
  // Sentinel: a diverged VAE head poisons the whole triple, so callers see
  // one consistent "garbage" signal rather than a partially valid one.
  if (!fwd.preds->value.AllFinite()) {
    const double bad = std::nan("");
    return query::NodeStats{bad, bad, bad};
  }
  query::NodeStats out =
      normalizer_.Denormalize(fwd.preds->value(0, 0), fwd.preds->value(0, 1),
                              fwd.preds->value(0, 2));
  // Fault point: emulate that divergence on demand for pipeline tests.
  out.runtime_ms = fault::CorruptDouble("vae.forward", out.runtime_ms);
  return out;
}

std::vector<query::NodeStats> QpSeeker::PredictNodes(const Query& q,
                                                     const PlanNode& plan) const {
  auto annotated = plan.Clone();
  AnnotateEstimates(q, annotated.get());
  ForwardOut fwd = Forward(q, *annotated, nullptr);
  const int dvec = plan_encoder_->data_vec_dim();
  std::vector<query::NodeStats> out;
  for (const auto& node_out : fwd.plan_out.node_outputs) {
    out.push_back(normalizer_.Denormalize(node_out->value(0, dvec),
                                          node_out->value(0, dvec + 1),
                                          node_out->value(0, dvec + 2)));
  }
  return out;
}

std::vector<float> QpSeeker::LatentVector(const Query& q, const PlanNode& plan) const {
  auto annotated = plan.Clone();
  AnnotateEstimates(q, annotated.get());
  ForwardOut fwd = Forward(q, *annotated, nullptr);
  return fwd.vae.mu->value.ToVector();
}

Status QpSeeker::Save(const std::string& path) const {
  QPS_RETURN_IF_ERROR(nn::SaveModule(*bundle_, path));
  std::ofstream norm(path + ".norm");
  if (!norm) return Status::IOError("cannot write " + path + ".norm");
  norm.precision(17);
  norm << normalizer_.log_max(0) << " " << normalizer_.log_max(1) << " "
       << normalizer_.log_max(2) << "\n";
  return Status::OK();
}

Status QpSeeker::Load(const std::string& path) {
  QPS_RETURN_IF_ERROR(nn::LoadModule(bundle_.get(), path));
  std::ifstream norm(path + ".norm");
  if (!norm) return Status::IOError("cannot read " + path + ".norm");
  double c = 0, k = 0, r = 0;
  norm >> c >> k >> r;
  normalizer_ = encoder::LabelNormalizer();
  query::PlanNode fake;
  fake.actual.cardinality = std::expm1(c);
  fake.actual.cost = std::expm1(k);
  fake.actual.runtime_ms = std::expm1(r);
  normalizer_.Observe(fake);
  normalizer_.Finalize();
  return Status::OK();
}

}  // namespace core
}  // namespace qps
