// Copyright 2026 The QPSeeker Authors

#include "core/qpseeker.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <unordered_map>

#include "nn/optim.h"
#include "nn/serialize.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace qps {
namespace core {

using nn::Var;
using query::PlanNode;
using query::Query;

namespace {

constexpr const char* kNormalizerKeys[3] = {
    "normalizer.log_max.0", "normalizer.log_max.1", "normalizer.log_max.2"};

nn::ScalarEntries NormalizerEntries(const encoder::LabelNormalizer& norm) {
  return {{kNormalizerKeys[0], norm.log_max(0)},
          {kNormalizerKeys[1], norm.log_max(1)},
          {kNormalizerKeys[2], norm.log_max(2)}};
}

/// Rebuilds a finalized normalizer whose log-ranges equal (c, k, r).
void NormalizerFromLogMax(double c, double k, double r,
                          encoder::LabelNormalizer* out) {
  *out = encoder::LabelNormalizer();
  query::PlanNode fake;
  fake.actual.cardinality = std::expm1(c);
  fake.actual.cost = std::expm1(k);
  fake.actual.runtime_ms = std::expm1(r);
  out->Observe(fake);
  out->Finalize();
}

/// Extracts the three normalizer.log_max.* scalars; false when absent.
bool FindNormalizerEntries(const nn::ScalarEntries& entries, double out[3]) {
  bool have[3] = {false, false, false};
  for (const auto& [name, value] : entries) {
    for (int i = 0; i < 3; ++i) {
      if (name == kNormalizerKeys[i]) {
        out[i] = value;
        have[i] = true;
      }
    }
  }
  return have[0] && have[1] && have[2];
}

}  // namespace

QpSeekerConfig QpSeekerConfig::ForScale(Scale scale) {
  QpSeekerConfig cfg;
  switch (scale) {
    case Scale::kSmoke:
      cfg.encoder = encoder::EncoderConfig::Smoke();
      cfg.latent_dim = 8;
      cfg.vae_hidden_layers = 2;
      break;
    case Scale::kCi:
      cfg.encoder = encoder::EncoderConfig::Ci();
      cfg.latent_dim = 16;
      cfg.vae_hidden_layers = 3;
      break;
    case Scale::kPaper:
      cfg.encoder = encoder::EncoderConfig::Paper();
      cfg.latent_dim = 32;  // paper: 32 latent features
      cfg.vae_hidden_layers = 5;
      break;
  }
  return cfg;
}

/// Exposes every trainable submodule as one Module (for Adam / serialize).
class QpSeeker::Bundle : public nn::Module {
 public:
  Bundle(encoder::QueryEncoder* qe, encoder::PlanEncoder* pe,
         encoder::QpAttention* at, nn::Vae* vae, nn::Linear* head) {
    RegisterChild("query_encoder", qe);
    RegisterChild("plan_encoder", pe);
    RegisterChild("qp_attention", at);
    RegisterChild("vae", vae);
    RegisterChild("head", head);
  }
};

QpSeeker::QpSeeker(const storage::Database& db, const stats::DatabaseStats& stats,
                   QpSeekerConfig config, uint64_t seed)
    : db_(db), stats_(stats), config_(config) {
  cards_ = std::make_unique<optimizer::CardinalityEstimator>(db, stats);
  cost_model_ = std::make_unique<optimizer::CostModel>(*cards_);
  Rng rng(seed);
  // TabSketch plays the role of *pretrained* TaBERT weights: fixed seed,
  // identical across model instances (and thus across Save/Load).
  tabert_ = std::make_unique<tabert::TabSketch>(db, stats, config_.tabert,
                                                /*seed=*/0x7ab5);
  query_encoder_ = std::make_unique<encoder::QueryEncoder>(db, config_.encoder, &rng);
  plan_encoder_ =
      std::make_unique<encoder::PlanEncoder>(db, *tabert_, config_.encoder, &rng);
  attention_ = std::make_unique<encoder::QpAttention>(
      query_encoder_->out_dim(), plan_encoder_->node_out_dim(), config_.encoder, &rng);
  const int qep_dim = attention_->out_dim();
  vae_ = std::make_unique<nn::Vae>(qep_dim, config_.latent_dim,
                                   config_.vae_hidden_layers, &rng);
  head_ = std::make_unique<nn::Linear>(qep_dim, 3, &rng, "head");
  bundle_ = std::make_unique<Bundle>(query_encoder_.get(), plan_encoder_.get(),
                                     attention_.get(), vae_.get(), head_.get());
}

QpSeeker::QpSeeker(QpSeeker&&) noexcept = default;
QpSeeker::~QpSeeker() = default;

int64_t QpSeeker::NumParameters() const { return bundle_->NumParameters(); }

std::vector<nn::NamedParam> QpSeeker::AllParameters() const {
  return bundle_->Parameters();
}

void QpSeeker::AnnotateEstimates(const Query& q, PlanNode* plan) const {
  // EXPLAIN-style annotations from the statistics-based cost model — the
  // paper feeds "estimations ... from the DB optimizer" (§4.2) into each
  // node, and the model learns the mapping from these to true values.
  cost_model_->EstimatePlan(q, plan);
}

QpSeeker::ForwardOut QpSeeker::Forward(const Query& q, const PlanNode& plan,
                                       Rng* sample_rng) const {
  static metrics::Counter* const forwards_counter =
      metrics::Registry::Global().GetCounter("qps.model.forwards");
  QPS_TRACE_SPAN("model.forward");
  forwards_counter->Increment();
  ForwardOut out;
  Var query_emb = query_encoder_->Encode(q);
  out.plan_out = plan_encoder_->Encode(q, plan, normalizer_);
  if (config_.use_attention) {
    out.qep_embedding = attention_->Combine(query_emb, out.plan_out);
  } else {
    // Ablation: plain concatenation of query and plan embeddings (§4.3
    // argues attention beats this).
    out.qep_embedding = nn::ConcatCols({query_emb, out.plan_out.root});
  }
  // Linear (unbounded) output head: normalized targets live in [0, 1], but
  // an unseen workload's plans can be costlier than anything in training
  // and the planner must still *rank* them (the Figure 9 transfer setting).
  if (config_.use_vae) {
    QPS_TRACE_SPAN("vae.forward");
    out.vae = vae_->Forward(out.qep_embedding, sample_rng);
    out.preds = head_->Forward(out.vae.recon);
  } else {
    // Ablation: deterministic regressor, no variational bottleneck.
    out.vae.recon = out.qep_embedding;
    out.vae.mu = out.qep_embedding;
    out.vae.logvar = out.qep_embedding;
    out.preds = head_->Forward(out.qep_embedding);
  }
  return out;
}

TrainReport QpSeeker::Train(const sampling::QepDataset& dataset,
                            const TrainOptions& opts) {
  TrainReport report;
  report.num_parameters = NumParameters();
  QPS_CHECK(!dataset.qeps.empty()) << "empty training set";

  // Training updates the f32 weights, so any attached int8 slots would go
  // stale after the first step; drop them up front.
  nn::ClearModuleQuantization(bundle_.get());

  normalizer_ = encoder::LabelNormalizer();
  for (const auto& qep : dataset.qeps) normalizer_.Observe(*qep.plan);
  normalizer_.Finalize();

  // Annotate input estimates once (leaf EXPLAIN stats the encoder consumes).
  std::vector<const sampling::Qep*> items;
  for (const auto& qep : dataset.qeps) {
    AnnotateEstimates(dataset.queries[static_cast<size_t>(qep.query_id)],
                      qep.plan.get());
    items.push_back(&qep);
  }

  nn::Adam adam(AllParameters(), opts.learning_rate);
  Rng rng(opts.seed);
  Timer timer;
  const float beta_eff = static_cast<float>(config_.beta * config_.beta_scale);

  // Resume from an existing training checkpoint: weights, Adam slots, RNG
  // stream, and epoch counter all restored, so the loss curve continues as
  // if the run had never been interrupted.
  int start_epoch = 0;
  if (!opts.checkpoint_path.empty() &&
      nn::LooksLikeCheckpoint(opts.checkpoint_path)) {
    nn::TrainingState st;
    Status resumed = nn::LoadTrainingCheckpoint(bundle_.get(), &adam, &st,
                                                opts.checkpoint_path);
    if (resumed.ok()) {
      start_epoch = static_cast<int>(st.epoch);
      rng.LoadState(st.rng);
      double lm[3] = {0, 0, 0};
      if (FindNormalizerEntries(st.extra, lm)) {
        NormalizerFromLogMax(lm[0], lm[1], lm[2], &normalizer_);
      }
      report.resumed_epochs = start_epoch;
      QPS_LOG(Info) << "train: resumed from " << opts.checkpoint_path
                    << " at epoch " << start_epoch;
    } else {
      QPS_LOG(Warning) << "train: cannot resume from " << opts.checkpoint_path
                       << " (" << resumed.message() << "); starting fresh";
    }
  }

  auto& reg = metrics::Registry::Global();
  metrics::Counter* const epochs_counter = reg.GetCounter("qps.train.epochs");
  metrics::Gauge* const loss_gauge = reg.GetGauge("qps.train.epoch_loss");
  metrics::Gauge* const grad_gauge = reg.GetGauge("qps.train.grad_norm");
  metrics::Gauge* const lr_gauge = reg.GetGauge("qps.train.lr");
  lr_gauge->Set(opts.learning_rate);

  for (int epoch = start_epoch; epoch < opts.epochs; ++epoch) {
    QPS_TRACE_SPAN_VAR(epoch_span, "train.epoch");
    epoch_span.AddAttr("epoch", epoch);
    // Shuffle a fresh canonical copy: the permutation is then a function of
    // the RNG state alone, not of prior epochs' orderings, so a resumed run
    // (restored RNG, canonical items) replays the uninterrupted schedule.
    std::vector<const sampling::Qep*> order = items;
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t index = 0;
    while (index < order.size()) {
      bundle_->ZeroGrad();
      const size_t batch_end =
          std::min(order.size(), index + static_cast<size_t>(opts.batch_size));
      double batch_loss = 0.0;
      for (; index < batch_end; ++index) {
        const sampling::Qep& qep = *order[index];
        const Query& q = dataset.queries[static_cast<size_t>(qep.query_id)];
        ForwardOut fwd = Forward(q, *qep.plan, &rng);

        // (1) Plan-level target MSE.
        const auto target3 = normalizer_.Normalize(qep.plan->actual);
        Var loss = nn::Scale(
            nn::MseLoss(fwd.preds,
                        nn::Tensor::Row({target3[0], target3[1], target3[2]})),
            static_cast<float>(config_.pred_weight));
        // (2) VAE reconstruction + KL (the variational objective).
        if (config_.use_vae) {
          Var recon_loss = nn::MeanAll(
              nn::Square(nn::Sub(fwd.vae.recon, fwd.qep_embedding)));
          loss = nn::Add(loss, nn::Scale(recon_loss,
                                         static_cast<float>(config_.recon_weight)));
          loss = nn::Add(loss, nn::Scale(nn::GaussianKl(fwd.vae.mu, fwd.vae.logvar),
                                         beta_eff));
        }
        // (3) Per-node supervision of the plan encoder's stat dims.
        if (config_.node_loss_weight > 0.0) {
          const int dvec = plan_encoder_->data_vec_dim();
          std::vector<Var> node_preds;
          std::vector<float> node_targets;
          for (size_t ni = 0; ni < fwd.plan_out.nodes.size(); ++ni) {
            node_preds.push_back(nn::SliceCols(fwd.plan_out.node_outputs[ni], dvec,
                                               dvec + 3));
            const auto n3 = normalizer_.Normalize(fwd.plan_out.nodes[ni]->actual);
            node_targets.insert(node_targets.end(), {n3[0], n3[1], n3[2]});
          }
          Var stacked = nn::ConcatCols(node_preds);
          Var node_loss = nn::MseLoss(stacked, nn::Tensor::Row(node_targets));
          loss = nn::Add(loss, nn::Scale(node_loss,
                                         static_cast<float>(config_.node_loss_weight)));
        }
        batch_loss += loss->value(0, 0);
        nn::Backward(loss);
      }
      grad_gauge->Set(adam.ClipGradNorm(opts.grad_clip));
      adam.Step();
      epoch_loss += batch_loss;
    }
    epoch_loss /= static_cast<double>(items.size());
    report.epoch_losses.push_back(epoch_loss);
    epochs_counter->Increment();
    loss_gauge->Set(epoch_loss);
    if (opts.verbose) {
      QPS_LOG(Info) << "epoch " << epoch << " loss " << epoch_loss;
    }
    QPS_VLOG(2) << "train: epoch " << epoch << " loss " << epoch_loss
                << " grad_norm " << grad_gauge->value();

    // Snapshot after the completed epoch. The RNG is saved *post-shuffle*,
    // so a resumed run replays the exact remaining stream. A failed save is
    // a warning, not a training abort: the previous checkpoint (if any)
    // stays intact thanks to the atomic write.
    if (!opts.checkpoint_path.empty() &&
        (opts.checkpoint_every <= 1 ||
         (epoch + 1) % opts.checkpoint_every == 0 || epoch + 1 == opts.epochs)) {
      nn::TrainingState st;
      st.epoch = epoch + 1;
      st.rng = rng.SaveState();
      st.extra = NormalizerEntries(normalizer_);
      Status saved = nn::SaveTrainingCheckpoint(*bundle_, adam, st,
                                                opts.checkpoint_path);
      if (!saved.ok()) {
        QPS_LOG(Warning) << "train: checkpoint save failed: " << saved.message();
      }
    }
  }
  report.final_loss = report.epoch_losses.empty() ? 0.0 : report.epoch_losses.back();
  report.train_seconds = timer.ElapsedSeconds();
  // Cached predictions are functions of the weights just updated.
  if (cache_ != nullptr) cache_->Clear();
  return report;
}

void QpSeeker::EncodeQepTensor(
    const Query& q, const std::vector<const PlanNode*>& annotated,
    std::vector<encoder::PlanEncoder::TensorOutput>* plan_outs,
    nn::Tensor* qep) const {
  const int64_t batch = static_cast<int64_t>(annotated.size());

  nn::Tensor query_emb;
  query_encoder_->EncodeTensor(q, &query_emb);

  std::vector<encoder::PlanEncoder::TensorOutput> local_outs;
  auto& outs = plan_outs != nullptr ? *plan_outs : local_outs;
  plan_encoder_->EncodeBatch(q, annotated, normalizer_, &outs);

  // QEP embeddings, one row per plan. Attention contexts differ per plan
  // (different node counts), so Combine runs per plan; everything after is
  // one batched GEMM chain.
  const int qep_dim = attention_->out_dim();
  *qep = nn::Tensor(batch, qep_dim);
  nn::Tensor one;
  for (int64_t p = 0; p < batch; ++p) {
    if (config_.use_attention) {
      attention_->CombineTensor(query_emb, outs[static_cast<size_t>(p)].node_matrix,
                                &one);
    } else {
      // Ablation: concatenation of query and plan-root embeddings.
      if (one.rows() != 1 || one.cols() != qep_dim) one = nn::Tensor(1, qep_dim);
      const nn::Tensor& nm = outs[static_cast<size_t>(p)].node_matrix;
      std::memcpy(one.data(), query_emb.data(),
                  sizeof(float) * static_cast<size_t>(query_emb.cols()));
      std::memcpy(one.data() + query_emb.cols(),
                  nm.data() + (nm.rows() - 1) * nm.cols(),
                  sizeof(float) * static_cast<size_t>(nm.cols()));
    }
    std::memcpy(qep->data() + p * qep_dim, one.data(),
                sizeof(float) * static_cast<size_t>(qep_dim));
  }
}

nn::Tensor QpSeeker::HeadTensor(const nn::Tensor& qep) const {
  nn::Tensor preds;
  if (config_.use_vae) {
    QPS_TRACE_SPAN("vae.forward");
    nn::Tensor mu, recon;
    vae_->ForwardTensor(qep, &mu, &recon);
    head_->ForwardTensor(recon, &preds);
  } else {
    head_->ForwardTensor(qep, &preds);
  }
  return preds;
}

nn::Tensor QpSeeker::ForwardBatchTensor(
    const Query& q, const std::vector<const PlanNode*>& annotated,
    std::vector<encoder::PlanEncoder::TensorOutput>* plan_outs) const {
  static metrics::Counter* const forwards_counter =
      metrics::Registry::Global().GetCounter("qps.model.forwards");
  QPS_TRACE_SPAN("model.forward");
  forwards_counter->Increment(static_cast<int64_t>(annotated.size()));

  nn::Tensor qep;
  EncodeQepTensor(q, annotated, plan_outs, &qep);
  return HeadTensor(qep);
}

std::vector<query::NodeStats> QpSeeker::PredictPlansBatch(
    const Query& q, const std::vector<const PlanNode*>& plans,
    util::ThreadPool* pool) const {
  const size_t n = plans.size();
  std::vector<query::NodeStats> results(n);
  if (n == 0) return results;

  // Cache consultation plus intra-batch dedup, both keyed on the plan
  // shape hash: MCTS random completions collide regularly, and a repeated
  // shape within one batch is the same prediction, so only the first
  // occurrence is evaluated and the rest copy its result.
  std::vector<uint64_t> shape_hash(n);
  for (size_t i = 0; i < n; ++i) shape_hash[i] = PlanShapeHash(*plans[i]);
  const uint64_t query_fp = cache_ != nullptr ? QueryFingerprint(q) : 0;

  std::vector<size_t> miss_idx;
  std::unordered_map<uint64_t, size_t> batch_first;  ///< shape -> first miss
  std::vector<size_t> dup_src(n, static_cast<size_t>(-1));
  for (size_t i = 0; i < n; ++i) {
    if (cache_ != nullptr && cache_->Lookup(query_fp, shape_hash[i], &results[i])) {
      continue;
    }
    const auto [it, inserted] = batch_first.try_emplace(shape_hash[i], i);
    if (!inserted) {
      dup_src[i] = it->second;
      continue;
    }
    miss_idx.push_back(i);
  }

  if (!miss_idx.empty()) {
    // Clone + annotate each miss. Sharded across the pool when given:
    // CostModel::EstimatePlan only reads shared state, and each task writes
    // its own slot, so results are identical at any thread count.
    std::vector<query::PlanPtr> annotated(miss_idx.size());
    {
      QPS_TRACE_SPAN("plan.annotate");
      const auto annotate = [&](int64_t i) {
        annotated[static_cast<size_t>(i)] = plans[miss_idx[static_cast<size_t>(i)]]->Clone();
        AnnotateEstimates(q, annotated[static_cast<size_t>(i)].get());
      };
      if (pool != nullptr && miss_idx.size() > 1) {
        pool->ParallelFor(static_cast<int64_t>(miss_idx.size()), annotate);
      } else {
        for (size_t i = 0; i < miss_idx.size(); ++i) annotate(static_cast<int64_t>(i));
      }
    }

    std::vector<const PlanNode*> ptrs;
    ptrs.reserve(annotated.size());
    for (const auto& p : annotated) ptrs.push_back(p.get());
    const nn::Tensor preds = ForwardBatchTensor(q, ptrs, nullptr);

    for (size_t m = 0; m < miss_idx.size(); ++m) {
      const size_t i = miss_idx[m];
      const float a = preds(static_cast<int64_t>(m), 0);
      const float b = preds(static_cast<int64_t>(m), 1);
      const float c = preds(static_cast<int64_t>(m), 2);
      if (!(std::isfinite(a) && std::isfinite(b) && std::isfinite(c))) {
        // Sentinel: a diverged VAE head poisons the whole triple, so callers
        // see one consistent "garbage" signal rather than a partially valid
        // one. Never cached.
        const double bad = std::nan("");
        results[i] = query::NodeStats{bad, bad, bad};
        continue;
      }
      results[i] = normalizer_.Denormalize(a, b, c);
      if (cache_ != nullptr) cache_->Insert(query_fp, shape_hash[i], results[i]);
    }
  }

  // Settle intra-batch duplicates from their evaluated first occurrence.
  for (size_t i = 0; i < n; ++i) {
    if (dup_src[i] != static_cast<size_t>(-1)) results[i] = results[dup_src[i]];
  }

  // Fault injection happens after cache insert, so a corrupted value is
  // returned to the caller but never stored — hit and miss paths stay
  // behaviorally identical under fault tests.
  for (size_t i = 0; i < n; ++i) {
    results[i].runtime_ms = fault::CorruptDouble("vae.forward", results[i].runtime_ms);
  }
  return results;
}

std::vector<std::vector<query::NodeStats>> QpSeeker::PredictPlansMulti(
    const std::vector<PlanEvalRequest>& requests, util::ThreadPool* pool) const {
  const size_t nr = requests.size();
  std::vector<std::vector<query::NodeStats>> results(nr);
  if (nr == 0) return results;

  // Per-request bookkeeping, mirroring PredictPlansBatch step for step.
  // Dedup stays *within* each request on purpose: fusing identical shapes
  // across requests would change which row a request's prediction comes
  // from relative to its serial evaluation. Cross-request duplicates still
  // produce bit-identical values (row independence), just redundantly.
  struct Prep {
    std::vector<uint64_t> shape_hash;
    uint64_t query_fp = 0;
    std::vector<size_t> miss_idx;
    std::vector<size_t> dup_src;
    std::vector<query::PlanPtr> annotated;
  };
  std::vector<Prep> preps(nr);
  struct FlatMiss {
    size_t req;
    size_t m;  ///< index into preps[req].miss_idx
  };
  std::vector<FlatMiss> flat;

  for (size_t r = 0; r < nr; ++r) {
    const Query& q = *requests[r].query;
    const auto& plans = requests[r].plans;
    const size_t n = plans.size();
    Prep& prep = preps[r];
    results[r].resize(n);
    prep.shape_hash.resize(n);
    prep.dup_src.assign(n, static_cast<size_t>(-1));
    for (size_t i = 0; i < n; ++i) prep.shape_hash[i] = PlanShapeHash(*plans[i]);
    prep.query_fp = cache_ != nullptr ? QueryFingerprint(q) : 0;

    std::unordered_map<uint64_t, size_t> batch_first;
    for (size_t i = 0; i < n; ++i) {
      if (cache_ != nullptr &&
          cache_->Lookup(prep.query_fp, prep.shape_hash[i], &results[r][i])) {
        continue;
      }
      const auto [it, inserted] = batch_first.try_emplace(prep.shape_hash[i], i);
      if (!inserted) {
        prep.dup_src[i] = it->second;
        continue;
      }
      flat.push_back(FlatMiss{r, prep.miss_idx.size()});
      prep.miss_idx.push_back(i);
    }
    prep.annotated.resize(prep.miss_idx.size());
  }

  if (!flat.empty()) {
    {
      QPS_TRACE_SPAN("plan.annotate");
      const auto annotate = [&](int64_t f) {
        const FlatMiss& fm = flat[static_cast<size_t>(f)];
        Prep& prep = preps[fm.req];
        prep.annotated[fm.m] =
            requests[fm.req].plans[prep.miss_idx[fm.m]]->Clone();
        AnnotateEstimates(*requests[fm.req].query, prep.annotated[fm.m].get());
      };
      if (pool != nullptr && flat.size() > 1) {
        pool->ParallelFor(static_cast<int64_t>(flat.size()), annotate);
      } else {
        for (size_t f = 0; f < flat.size(); ++f) annotate(static_cast<int64_t>(f));
      }
    }

    // Encode per request (encoders are query-specific), then stack every
    // miss row into one matrix so the dense VAE/head pass is shared across
    // requests — the cross-query fusion the serving layer batches for.
    static metrics::Counter* const forwards_counter =
        metrics::Registry::Global().GetCounter("qps.model.forwards");
    QPS_TRACE_SPAN("model.forward");
    forwards_counter->Increment(static_cast<int64_t>(flat.size()));
    const int qep_dim = attention_->out_dim();
    nn::Tensor combined(static_cast<int64_t>(flat.size()), qep_dim);
    std::vector<int64_t> row_offset(nr, 0);
    int64_t row = 0;
    for (size_t r = 0; r < nr; ++r) {
      Prep& prep = preps[r];
      if (prep.annotated.empty()) continue;
      std::vector<const PlanNode*> ptrs;
      ptrs.reserve(prep.annotated.size());
      for (const auto& p : prep.annotated) ptrs.push_back(p.get());
      nn::Tensor qep;
      EncodeQepTensor(*requests[r].query, ptrs, nullptr, &qep);
      std::memcpy(combined.data() + row * qep_dim, qep.data(),
                  sizeof(float) * static_cast<size_t>(qep.rows() * qep_dim));
      row_offset[r] = row;
      row += qep.rows();
    }

    const nn::Tensor preds = HeadTensor(combined);

    for (size_t r = 0; r < nr; ++r) {
      Prep& prep = preps[r];
      for (size_t m = 0; m < prep.miss_idx.size(); ++m) {
        const size_t i = prep.miss_idx[m];
        const int64_t pr = row_offset[r] + static_cast<int64_t>(m);
        const float a = preds(pr, 0);
        const float b = preds(pr, 1);
        const float c = preds(pr, 2);
        if (!(std::isfinite(a) && std::isfinite(b) && std::isfinite(c))) {
          const double bad = std::nan("");
          results[r][i] = query::NodeStats{bad, bad, bad};
          continue;
        }
        results[r][i] = normalizer_.Denormalize(a, b, c);
        if (cache_ != nullptr) {
          cache_->Insert(prep.query_fp, prep.shape_hash[i], results[r][i]);
        }
      }
    }
  }

  for (size_t r = 0; r < nr; ++r) {
    const Prep& prep = preps[r];
    for (size_t i = 0; i < results[r].size(); ++i) {
      if (prep.dup_src[i] != static_cast<size_t>(-1)) {
        results[r][i] = results[r][prep.dup_src[i]];
      }
    }
    for (auto& stats : results[r]) {
      stats.runtime_ms = fault::CorruptDouble("vae.forward", stats.runtime_ms);
    }
  }
  return results;
}

query::NodeStats QpSeeker::PredictPlan(const Query& q, const PlanNode& plan) const {
  return PredictPlansBatch(q, {&plan}, nullptr)[0];
}

query::NodeStats QpSeeker::PredictPlanReference(const Query& q,
                                                const PlanNode& plan) const {
  auto annotated = plan.Clone();
  AnnotateEstimates(q, annotated.get());
  ForwardOut fwd = Forward(q, *annotated, /*sample_rng=*/nullptr);
  // Sentinel: a diverged VAE head poisons the whole triple, so callers see
  // one consistent "garbage" signal rather than a partially valid one.
  if (!fwd.preds->value.AllFinite()) {
    const double bad = std::nan("");
    return query::NodeStats{bad, bad, bad};
  }
  query::NodeStats out =
      normalizer_.Denormalize(fwd.preds->value(0, 0), fwd.preds->value(0, 1),
                              fwd.preds->value(0, 2));
  // Fault point: emulate that divergence on demand for pipeline tests.
  out.runtime_ms = fault::CorruptDouble("vae.forward", out.runtime_ms);
  return out;
}

void QpSeeker::EnableCache(int64_t capacity_bytes) {
  if (capacity_bytes <= 0) {
    cache_.reset();
    return;
  }
  cache_ = std::make_unique<PlanPredictionCache>(capacity_bytes);
}

std::vector<query::NodeStats> QpSeeker::PredictNodes(const Query& q,
                                                     const PlanNode& plan) const {
  auto annotated = plan.Clone();
  AnnotateEstimates(q, annotated.get());
  std::vector<encoder::PlanEncoder::TensorOutput> outs;
  ForwardBatchTensor(q, {annotated.get()}, &outs);
  const int dvec = plan_encoder_->data_vec_dim();
  const nn::Tensor& nm = outs[0].node_matrix;
  std::vector<query::NodeStats> out;
  out.reserve(static_cast<size_t>(nm.rows()));
  for (int64_t i = 0; i < nm.rows(); ++i) {
    out.push_back(
        normalizer_.Denormalize(nm(i, dvec), nm(i, dvec + 1), nm(i, dvec + 2)));
  }
  return out;
}

std::vector<float> QpSeeker::LatentVector(const Query& q, const PlanNode& plan) const {
  auto annotated = plan.Clone();
  AnnotateEstimates(q, annotated.get());
  ForwardOut fwd = Forward(q, *annotated, nullptr);
  return fwd.vae.mu->value.ToVector();
}

Status QpSeeker::Save(const std::string& path) const {
  // One atomic file: weights plus the fitted normalizer as scalar entries
  // (v1 checkpoints carried the normalizer in a ".norm" sidecar, which a
  // torn copy could orphan).
  return nn::SaveModule(*bundle_, path, NormalizerEntries(normalizer_));
}

Status QpSeeker::SaveQuantized(const std::string& path) const {
  return nn::SaveModuleQuantized(*bundle_, path, NormalizerEntries(normalizer_));
}

int64_t QpSeeker::QuantizeForInference() {
  const int64_t count = nn::QuantizeModule(bundle_.get());
  // f32 and int8 forwards differ in the low bits; cached predictions made
  // under the other kernel must not leak through.
  if (cache_ != nullptr) cache_->Clear();
  return count;
}

bool QpSeeker::quantized() const {
  return nn::ModuleHasQuantizedWeights(*bundle_);
}

Status QpSeeker::Load(const std::string& path) {
  nn::ScalarEntries extra;
  QPS_RETURN_IF_ERROR(nn::LoadModule(bundle_.get(), path, &extra));
  double lm[3] = {0, 0, 0};
  if (FindNormalizerEntries(extra, lm)) {
    NormalizerFromLogMax(lm[0], lm[1], lm[2], &normalizer_);
  } else {
    // Legacy v1 layout: normalizer in a plain-text sidecar.
    std::ifstream norm(path + ".norm");
    if (!norm) return Status::IOError("cannot read " + path + ".norm");
    double c = 0, k = 0, r = 0;
    norm >> c >> k >> r;
    NormalizerFromLogMax(c, k, r, &normalizer_);
  }
  // Loaded weights invalidate any predictions cached under the old ones.
  if (cache_ != nullptr) cache_->Clear();
  return Status::OK();
}

}  // namespace core
}  // namespace qps
