// Copyright 2026 The QPSeeker Authors
//
// Inference-time planning (paper §5.2): vanilla Monte Carlo Tree Search
// over left-deep plan prefixes. Each action appends one relation (with a
// scan operator) and, for non-first actions, a join operator. Rollouts
// complete the plan uniformly at random; the completed plan is scored with
// QPSeeker's learned cost model (predicted runtime). UCT guides selection;
// a node's reward counts how often it appears in the best plan found so
// far, exactly as in the paper.

#ifndef QPS_CORE_MCTS_H_
#define QPS_CORE_MCTS_H_

#include <memory>

#include "core/planner_api.h"
#include "core/qpseeker.h"

namespace qps {
namespace core {

struct MctsOptions {
  double time_budget_ms = 200.0;  ///< paper: 200ms planning cut-off
  int max_rollouts = 100000;      ///< secondary cap (deterministic tests)
  double exploration_c = 0.5;     ///< paper: C = 0.5 after sweeping {0.25,0.5,0.75}
  uint64_t seed = 99;
  /// Hard planning deadline (0 = disabled). The time budget is a soft
  /// target the anytime loop aims for; if a stalled model evaluation (or an
  /// injected latency fault) pushes total planning time past this deadline,
  /// MctsPlan returns DeadlineExceeded instead of a late plan, so the
  /// guarded pipeline can fall back. Set it with slack above the budget.
  double hard_deadline_ms = 0.0;

  /// Per-request planning deadline in ms from MctsPlan entry (0 = none).
  /// Unlike hard_deadline_ms (a failure for stall detection), the deadline
  /// truncates the anytime search: the time budget is clamped to it and
  /// the best plan found so far is returned with MctsResult::deadline_hit
  /// set. At least one rollout batch always runs, so a valid plan comes
  /// back even when the deadline is already tight on entry.
  double deadline_ms = 0.0;

  /// External evaluator for candidate batches. The serving layer injects
  /// one to coalesce evaluations from different in-flight queries into
  /// shared batched forwards; null calls QpSeeker::PredictPlansBatch
  /// directly. Results must be bit-identical to the direct call, so
  /// planning stays deterministic under cross-query batching.
  BatchEvalFn evaluate;

  /// Leaf-parallel rollouts. Each iteration selects, expands, and
  /// random-completes up to `eval_batch` candidate plans *serially* with
  /// one seeded rng (visits along each chosen path count immediately, a
  /// virtual loss that steers later candidates of the same batch away),
  /// evaluates them as ONE batched model forward — with per-plan annotation
  /// sharded across `threads` workers — and backpropagates rewards
  /// serially. Because every rng draw and tree update is serial and the
  /// evaluation is a pure function, results are bit-identical for a fixed
  /// (seed, eval_batch) at any thread count.
  ///
  /// threads: worker parallelism for the evaluation stage; <= 1 disables
  /// the pool. eval_batch: candidates per batched forward; 0 = auto (1 when
  /// threads <= 1, else 8 * threads — batching is what amortizes GEMM
  /// weight traffic, so it scales with requested parallelism).
  int threads = 1;
  int eval_batch = 0;
  /// Optional externally owned pool (e.g. qpsql's --threads pool). When
  /// null and threads > 1, MctsPlan spins up a temporary pool.
  util::ThreadPool* pool = nullptr;

  /// Cooperative cancellation, polled once per rollout and before each
  /// batched evaluation (util/cancel.h). A tripped token aborts the search
  /// immediately — no best-so-far plan comes back, because the caller has
  /// abandoned the request. Null = never cancelled; non-owning.
  const util::CancelToken* cancel = nullptr;
};

struct MctsResult {
  query::PlanPtr plan;             ///< best plan found (estimates annotated)
  double predicted_runtime_ms = 0.0;
  int plans_evaluated = 0;         ///< paper §7.2 reports these counts
  double planning_ms = 0.0;
  bool deadline_hit = false;       ///< search truncated by MctsOptions::deadline_ms
};

/// Plans `q` with MCTS guided by a trained QPSeeker model.
StatusOr<MctsResult> MctsPlan(const QpSeeker& model, const query::Query& q,
                              const MctsOptions& opts = {});

/// Greedy baseline for the MCTS ablation: at each step append the relation/
/// operator pair whose completed-by-greedy plan the model scores best.
/// `evaluate` substitutes for the direct model call exactly as in
/// MctsOptions::evaluate (the guarded ladder threads the serving hook
/// through so its greedy rung also joins cross-query batches); `cancel` is
/// polled once per planning step, as in MctsOptions::cancel.
StatusOr<MctsResult> GreedyPlan(const QpSeeker& model, const query::Query& q,
                                const BatchEvalFn& evaluate = nullptr,
                                const util::CancelToken* cancel = nullptr);

}  // namespace core
}  // namespace qps

#endif  // QPS_CORE_MCTS_H_
