// Copyright 2026 The QPSeeker Authors
//
// Inference-time planning (paper §5.2): vanilla Monte Carlo Tree Search
// over left-deep plan prefixes. Each action appends one relation (with a
// scan operator) and, for non-first actions, a join operator. Rollouts
// complete the plan uniformly at random; the completed plan is scored with
// QPSeeker's learned cost model (predicted runtime). UCT guides selection;
// a node's reward counts how often it appears in the best plan found so
// far, exactly as in the paper.

#ifndef QPS_CORE_MCTS_H_
#define QPS_CORE_MCTS_H_

#include <memory>

#include "core/qpseeker.h"

namespace qps {
namespace core {

struct MctsOptions {
  double time_budget_ms = 200.0;  ///< paper: 200ms planning cut-off
  int max_rollouts = 100000;      ///< secondary cap (deterministic tests)
  double exploration_c = 0.5;     ///< paper: C = 0.5 after sweeping {0.25,0.5,0.75}
  uint64_t seed = 99;
  /// Hard planning deadline (0 = disabled). The time budget is a soft
  /// target the anytime loop aims for; if a stalled model evaluation (or an
  /// injected latency fault) pushes total planning time past this deadline,
  /// MctsPlan returns ResourceExhausted instead of a late plan, so the
  /// guarded pipeline can fall back. Set it with slack above the budget.
  double hard_deadline_ms = 0.0;
};

struct MctsResult {
  query::PlanPtr plan;             ///< best plan found (estimates annotated)
  double predicted_runtime_ms = 0.0;
  int plans_evaluated = 0;         ///< paper §7.2 reports these counts
  double planning_ms = 0.0;
};

/// Plans `q` with MCTS guided by a trained QPSeeker model.
StatusOr<MctsResult> MctsPlan(const QpSeeker& model, const query::Query& q,
                              const MctsOptions& opts = {});

/// Greedy baseline for the MCTS ablation: at each step append the relation/
/// operator pair whose completed-by-greedy plan the model scores best.
StatusOr<MctsResult> GreedyPlan(const QpSeeker& model, const query::Query& q);

}  // namespace core
}  // namespace qps

#endif  // QPS_CORE_MCTS_H_
