// Copyright 2026 The QPSeeker Authors
//
// QPSeeker: the end-to-end neural planner (paper §3-§5). Composition:
//
//   QueryEncoder(T_q, J_q) ------------------+
//                                            v
//   PlanEncoder(plan, TabSketch reps) -> QPAttention -> VAE (Cost Modeler)
//                                                        |-> reconstruction
//                                                        '-> dense head ->
//                                                  (cardinality, cost, runtime)
//
// Training minimizes  ||x - x_hat||^2 + beta_eff * KL(N(mu,sigma) || N(0,1))
// + MSE(preds, labels) (+ per-node supervision of the plan encoder's stat
// dims). Inference pairs the learned cost model with MCTS (mcts.h).

#ifndef QPS_CORE_QPSEEKER_H_
#define QPS_CORE_QPSEEKER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/plan_cache.h"
#include "encoder/plan_encoder.h"
#include "encoder/qp_attention.h"
#include "encoder/query_encoder.h"
#include "optimizer/cost_model.h"
#include "sampling/plan_sampler.h"
#include "util/scale.h"
#include "util/threadpool.h"

namespace qps {
namespace core {

struct QpSeekerConfig {
  encoder::EncoderConfig encoder;
  tabert::TabSketchConfig tabert;
  int latent_dim = 16;        ///< paper: 32
  int vae_hidden_layers = 3;  ///< paper: 5
  double beta = 100.0;        ///< KL weight knob from the paper (100/200/300)
  /// beta is multiplied by this to land on our loss scale; the paper's
  /// ratios (1x/2x/3x) are preserved.
  double beta_scale = 1e-5;
  double node_loss_weight = 0.5;
  double recon_weight = 1.0;
  double pred_weight = 3.0;  ///< weight on the target-triple MSE
  /// Ablations (bench_ablation_*): plain concatenation instead of
  /// QPAttention; deterministic MLP head instead of the VAE cost modeler.
  bool use_attention = true;
  bool use_vae = true;

  static QpSeekerConfig ForScale(Scale scale);
};

struct TrainOptions {
  int epochs = 25;
  int batch_size = 16;     ///< paper §6.2
  float learning_rate = 1e-3f;
  float grad_clip = 5.0f;
  uint64_t seed = 17;
  bool verbose = false;
  /// When non-empty, a resumable checkpoint (weights + Adam slots + RNG +
  /// epoch + normalizer) is written here atomically every
  /// `checkpoint_every` epochs, and a valid checkpoint already at this
  /// path is resumed from — a killed run re-launched with the same options
  /// continues its loss curve exactly where it stopped. An unreadable
  /// checkpoint logs a warning and falls back to a fresh start; a failed
  /// save logs a warning and keeps training.
  std::string checkpoint_path;
  int checkpoint_every = 1;
};

struct TrainReport {
  std::vector<double> epoch_losses;
  double final_loss = 0.0;
  double train_seconds = 0.0;
  int64_t num_parameters = 0;
  /// Epochs already completed by a resumed checkpoint (0 for a fresh run).
  int resumed_epochs = 0;
};

/// One query with its candidate plans, the unit of cross-query fused
/// evaluation (PredictPlansMulti / the serving batch rendezvous).
struct PlanEvalRequest {
  const query::Query* query = nullptr;
  std::vector<const query::PlanNode*> plans;
};

/// The trained system: model + normalizer + estimate annotator.
class QpSeeker {
 public:
  QpSeeker(const storage::Database& db, const stats::DatabaseStats& stats,
           QpSeekerConfig config = {}, uint64_t seed = 1234);
  QpSeeker(QpSeeker&&) noexcept;
  ~QpSeeker();

  /// Trains on labeled QEPs (fits the label normalizer first).
  TrainReport Train(const sampling::QepDataset& dataset, const TrainOptions& opts);

  /// Plan-level predictions for an arbitrary plan of `q`. Input estimates
  /// (leaf EXPLAIN stats) are annotated internally. Runs the autograd-free
  /// tensor path and consults the prediction cache when enabled.
  query::NodeStats PredictPlan(const query::Query& q, const query::PlanNode& plan) const;

  /// Batched predictions for N candidate plans of one query: one query
  /// encoding, height-batched plan encoding, and one (N x d) VAE/head pass
  /// instead of N GEMVs. When `pool` is given, per-plan annotation is
  /// sharded across it (results are bit-identical either way). Cached plans
  /// skip evaluation entirely.
  std::vector<query::NodeStats> PredictPlansBatch(
      const query::Query& q, const std::vector<const query::PlanNode*>& plans,
      util::ThreadPool* pool = nullptr) const;

  /// Cross-query fused evaluation: candidate batches from *different*
  /// queries share one VAE/head forward. Per-request cache consultation,
  /// intra-batch dedup, annotation (sharded across `pool`), and encoding
  /// are identical to PredictPlansBatch; only the final dense pass is
  /// stacked. Because every GEMM kernel accumulates each output row in the
  /// same k-order regardless of batch row count, result[r] is bit-identical
  /// to PredictPlansBatch(*requests[r].query, requests[r].plans, pool) —
  /// the property the serving layer's determinism contract rests on.
  std::vector<std::vector<query::NodeStats>> PredictPlansMulti(
      const std::vector<PlanEvalRequest>& requests,
      util::ThreadPool* pool = nullptr) const;

  /// Reference implementation of PredictPlan through the autograd graph —
  /// slow, kept as the ground truth for batched-equivalence tests.
  query::NodeStats PredictPlanReference(const query::Query& q,
                                        const query::PlanNode& plan) const;

  /// Per-node predictions, post-order (the plan encoder's stat dims).
  std::vector<query::NodeStats> PredictNodes(const query::Query& q,
                                             const query::PlanNode& plan) const;

  /// Enables the bounded LRU plan-prediction cache (0 disables). The cache
  /// is invalidated automatically when weights change (Train / Load).
  void EnableCache(int64_t capacity_bytes);

  /// The prediction cache, or nullptr when disabled (qpsql \cache).
  PlanPredictionCache* cache() const { return cache_.get(); }

  /// Latent mean vector (mu) of a QEP — the Figure 5 embedding.
  std::vector<float> LatentVector(const query::Query& q,
                                  const query::PlanNode& plan) const;

  /// Attention scores of the last PredictPlan call (heads x nodes), empty
  /// for single-node plans.
  nn::Tensor LastAttentionScores() const { return attention_->last_scores(); }

  /// Fills plan->estimated with the statistics-based annotations the model
  /// consumes (leaf cardinalities + user-defined costs).
  void AnnotateEstimates(const query::Query& q, query::PlanNode* plan) const;

  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

  /// Writes an int8 quantized checkpoint (weights as quant records, the
  /// rest f32). Persists the attached quantization when one is active,
  /// else quantizes on the fly without changing this model's inference.
  Status SaveQuantized(const std::string& path) const;

  /// Quantizes all eligible weights in place for int8 inference and clears
  /// the prediction cache. Returns the number of weights quantized.
  /// Train() and Load() of a plain f32 checkpoint undo this.
  int64_t QuantizeForInference();

  /// True when inference currently runs through the int8 path.
  bool quantized() const;

  const encoder::LabelNormalizer& normalizer() const { return normalizer_; }
  const QpSeekerConfig& config() const { return config_; }
  const storage::Database& db() const { return db_; }
  const tabert::TabSketch& tabert() const { return *tabert_; }
  int64_t NumParameters() const;

 private:
  struct ForwardOut {
    nn::Var qep_embedding;
    nn::Vae::Output vae;
    nn::Var preds;  ///< 1x3 normalized
    encoder::PlanEncoder::Output plan_out;
  };

  ForwardOut Forward(const query::Query& q, const query::PlanNode& plan,
                     Rng* sample_rng) const;

  /// Tensor-only batched forward on pre-annotated plans: returns the
  /// normalized (N x 3) prediction matrix. No cache, no fault injection.
  /// When `plan_outs` is non-null it receives the per-plan node matrices.
  nn::Tensor ForwardBatchTensor(
      const query::Query& q, const std::vector<const query::PlanNode*>& annotated,
      std::vector<encoder::PlanEncoder::TensorOutput>* plan_outs) const;

  /// Encoder front half of ForwardBatchTensor: query + plan encodings
  /// combined into the (N x qep_dim) embedding matrix.
  void EncodeQepTensor(const query::Query& q,
                       const std::vector<const query::PlanNode*>& annotated,
                       std::vector<encoder::PlanEncoder::TensorOutput>* plan_outs,
                       nn::Tensor* qep) const;

  /// Dense back half: VAE reconstruction (when enabled) + prediction head.
  /// Row r of the result depends only on row r of `qep`.
  nn::Tensor HeadTensor(const nn::Tensor& qep) const;

  std::vector<nn::NamedParam> AllParameters() const;

  const storage::Database& db_;
  const stats::DatabaseStats& stats_;
  QpSeekerConfig config_;
  // Heap-held so QpSeeker stays movable (CostModel references the
  // estimator; member addresses must be stable across moves).
  std::unique_ptr<optimizer::CardinalityEstimator> cards_;
  std::unique_ptr<optimizer::CostModel> cost_model_;  ///< EXPLAIN-style annotations
  std::unique_ptr<tabert::TabSketch> tabert_;
  std::unique_ptr<encoder::QueryEncoder> query_encoder_;
  std::unique_ptr<encoder::PlanEncoder> plan_encoder_;
  std::unique_ptr<encoder::QpAttention> attention_;
  std::unique_ptr<nn::Vae> vae_;
  std::unique_ptr<nn::Linear> head_;
  encoder::LabelNormalizer normalizer_;

  /// Wrapper module exposing all submodules for optimizers/serialization.
  class Bundle;
  std::unique_ptr<Bundle> bundle_;

  /// Optional prediction cache; mutable because hits/inserts happen inside
  /// logically-const PredictPlan calls.
  mutable std::unique_ptr<PlanPredictionCache> cache_;
};

}  // namespace core
}  // namespace qps

#endif  // QPS_CORE_QPSEEKER_H_
