// Copyright 2026 The QPSeeker Authors
//
// Adapters that surface the two "plain" planning backends through the
// unified core::Planner interface (planner_api.h): the Selinger-style DP
// baseline and raw MCTS over the learned cost model. HybridPlanner and
// GuardedPlanner implement the interface natively; MakePlanner constructs
// any of the four by name so callers (qpsql, the plan service, the
// conformance suite) never reference a concrete backend type.

#ifndef QPS_CORE_PLANNER_BACKENDS_H_
#define QPS_CORE_PLANNER_BACKENDS_H_

#include <memory>
#include <string>

#include "core/guarded_planner.h"
#include "core/mcts.h"
#include "core/planner_api.h"
#include "optimizer/planner.h"

namespace qps {
namespace core {

/// The traditional DP planner behind the unified interface. Ignores the
/// request deadline (DP planning is microseconds) and never consults the
/// model, so every result reports PlanStage::kTraditional.
class BaselinePlanner : public Planner {
 public:
  explicit BaselinePlanner(const optimizer::Planner* baseline)
      : baseline_(baseline) {}

  const char* name() const override { return "baseline"; }

  StatusOr<PlanResult> Plan(const query::Query& q,
                            const PlanRequestOptions& ropts) override;

 private:
  const optimizer::Planner* baseline_;
};

/// Raw MCTS planning behind the unified interface: every query goes to the
/// learned planner regardless of complexity (the paper's main experiment).
class MctsPlanner : public Planner {
 public:
  MctsPlanner(const QpSeeker* model, MctsOptions options = {})
      : model_(model), options_(options) {}

  const char* name() const override { return "neural"; }

  StatusOr<PlanResult> Plan(const query::Query& q,
                            const PlanRequestOptions& ropts) override;

  const MctsOptions& options() const { return options_; }

 private:
  const QpSeeker* model_;
  MctsOptions options_;
};

/// Constructs a backend by name: "baseline", "neural", "hybrid", or
/// "guarded". `gopts` carries the routing/MCTS/guard-rail configuration;
/// the baseline backend uses none of it, the neural backend only
/// gopts.hybrid.mcts. Returns kInvalidArgument for unknown names.
/// `model` may be null only for "baseline".
StatusOr<std::unique_ptr<Planner>> MakePlanner(
    const std::string& name, const QpSeeker* model,
    const optimizer::Planner* baseline, const GuardedOptions& gopts = {});

}  // namespace core
}  // namespace qps

#endif  // QPS_CORE_PLANNER_BACKENDS_H_
