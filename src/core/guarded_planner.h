// Copyright 2026 The QPSeeker Authors
//
// Guarded planning pipeline: HybridPlanner's routing, hardened for serving.
// A learned planner is only deployable when it degrades gracefully on model
// misbehavior (paper §7.3's hybrid direction taken to production), so every
// neural plan is validated and score-checked, and failures walk a
// degradation ladder:
//
//   neural MCTS (deadline-enforced) -> GreedyPlan -> traditional DP planner
//
// A sliding-window circuit breaker watches the primary (MCTS) outcomes:
// after `breaker_threshold` failures inside the last `breaker_window`
// attempts the circuit opens and traffic routes straight to the traditional
// planner for `breaker_cooldown_ms`, then closes and neural planning is
// retried. All transitions and fallbacks are counted in GuardStats.
//
// With every fault point disarmed and no failures, the pipeline is
// behavior-identical to HybridPlanner (same options, same MCTS seed, same
// plans) — guarded_planner_test asserts byte-identical rendered plans.

#ifndef QPS_CORE_GUARDED_PLANNER_H_
#define QPS_CORE_GUARDED_PLANNER_H_

#include <deque>
#include <string>

#include "core/hybrid.h"
#include "util/clock.h"

namespace qps {
namespace core {

struct GuardedOptions {
  /// Routing + MCTS options, exactly as HybridPlanner consumes them.
  HybridOptions hybrid;

  /// Planning deadline for the neural path (0 = rely on the MCTS time
  /// budget alone). When set, the MCTS budget is clamped to it and blowing
  /// `deadline_slack` times the deadline counts as a neural failure.
  double neural_deadline_ms = 0.0;
  double deadline_slack = 4.0;

  /// Run query::ValidatePlan on every plan before returning it.
  bool validate_plans = true;

  /// Circuit breaker: open after `breaker_threshold` MCTS failures within
  /// the last `breaker_window` attempts; stay open for
  /// `breaker_cooldown_ms`, then close and try neural planning again.
  int breaker_window = 16;
  int breaker_threshold = 4;
  double breaker_cooldown_ms = 1000.0;

  /// Injectable time source shared by the breaker cool-down and the
  /// planning-time Timer (util/clock.h), so tests substitute one
  /// ManualClock for all of them. nullptr = Clock::Default().
  const Clock* clock = nullptr;
};

// PlanStage and GuardStats used to live here; they moved to
// core/planner_api.h when the unified Planner interface was introduced,
// since every backend now reports them through PlanResult/guard_stats().

struct GuardedResult {
  query::PlanPtr plan;
  PlanStage stage = PlanStage::kTraditional;
  bool used_neural = false;        ///< model consulted (neural or greedy rung)
  double planning_ms = 0.0;        ///< whole-ladder planning time
  int plans_evaluated = 0;
  double predicted_runtime_ms = 0.0;  ///< model score (neural/greedy rungs)
  bool deadline_hit = false;       ///< request deadline truncated the search
  std::string fallback_reason;     ///< empty when the first-choice rung served
};

/// HybridPlanner with guard rails. Routing is identical (simple queries go
/// to the DP baseline directly and are not breaker-relevant); complex
/// queries walk the degradation ladder above.
class GuardedPlanner : public Planner {
 public:
  GuardedPlanner(const QpSeeker* model, const optimizer::Planner* baseline,
                 GuardedOptions options = {});

  /// Legacy entry point; equivalent to Plan(q, {}) with the ladder detail.
  StatusOr<GuardedResult> Plan(const query::Query& q);

  /// Unified entry point (core::Planner). Per-request deadline, seed, and
  /// batch evaluator thread into the neural and greedy rungs.
  StatusOr<PlanResult> Plan(const query::Query& q,
                            const PlanRequestOptions& ropts) override;

  const char* name() const override { return "guarded"; }
  GuardStats guard_stats() const override { return stats_; }

  const GuardStats& stats() const { return stats_; }
  void ResetStats() { stats_ = GuardStats{}; }

  /// True while the breaker routes complex queries to the DP planner.
  bool circuit_open() const { return circuit_open_; }

  const GuardedOptions& options() const { return options_; }

 private:
  const Clock& clock() const {
    return options_.clock != nullptr ? *options_.clock : *Clock::Default();
  }
  double NowMs() const { return clock().NowMillis(); }
  /// Records one MCTS outcome in the sliding window; may open the circuit.
  void RecordNeuralOutcome(bool success);
  /// Closes the circuit when the cool-down has elapsed.
  void MaybeCloseCircuit();

  /// Shared ladder walk behind both Plan() overloads.
  StatusOr<GuardedResult> PlanGuarded(const query::Query& q,
                                      const PlanRequestOptions& ropts);

  /// One rung: plan, validate, score-check. Returns the failure reason or
  /// OK with `*out` filled.
  Status TryNeural(const query::Query& q, const PlanRequestOptions& ropts,
                   GuardedResult* out);
  Status TryGreedy(const query::Query& q, const PlanRequestOptions& ropts,
                   GuardedResult* out);
  Status TryTraditional(const query::Query& q, const PlanRequestOptions& ropts,
                        GuardedResult* out);

  const QpSeeker* model_;
  const optimizer::Planner* baseline_;
  GuardedOptions options_;

  GuardStats stats_;
  std::deque<bool> window_;  ///< recent MCTS outcomes, true = failure
  bool circuit_open_ = false;
  double circuit_opened_at_ms_ = 0.0;
};

}  // namespace core
}  // namespace qps

#endif  // QPS_CORE_GUARDED_PLANNER_H_
