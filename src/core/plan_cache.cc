// Copyright 2026 The QPSeeker Authors

#include "core/plan_cache.h"

#include <algorithm>
#include <cstring>

#include "util/metrics.h"

namespace qps {
namespace core {

namespace {

struct CacheMetrics {
  metrics::Counter* hits;
  metrics::Counter* misses;
  metrics::Counter* evictions;

  static const CacheMetrics& Get() {
    static const CacheMetrics m = [] {
      auto& reg = metrics::Registry::Global();
      return CacheMetrics{reg.GetCounter("qps.cache.hits"),
                          reg.GetCounter("qps.cache.misses"),
                          reg.GetCounter("qps.cache.evictions")};
    }();
    return m;
  }
};

// splitmix64 finalizer: cheap, well-distributed 64-bit mixing.
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline uint64_t Combine(uint64_t seed, uint64_t v) { return Mix(seed ^ Mix(v)); }

uint64_t HashString(uint64_t seed, const std::string& s) {
  seed = Combine(seed, s.size());
  for (char c : s) seed = Combine(seed, static_cast<uint64_t>(static_cast<uint8_t>(c)));
  return seed;
}

uint64_t HashValue(uint64_t seed, const storage::Value& v) {
  seed = Combine(seed, static_cast<uint64_t>(v.type));
  switch (v.type) {
    case storage::DataType::kInt64:
      return Combine(seed, static_cast<uint64_t>(v.i));
    case storage::DataType::kFloat64: {
      uint64_t bits = 0;
      std::memcpy(&bits, &v.d, sizeof(bits));
      return Combine(seed, bits);
    }
    case storage::DataType::kString:
      return HashString(seed, v.s);
  }
  return seed;
}

}  // namespace

uint64_t QueryFingerprint(const query::Query& q) {
  uint64_t h = 0x5150536565ULL;  // arbitrary non-zero seed
  h = Combine(h, q.relations.size());
  for (const auto& rel : q.relations) {
    h = Combine(h, static_cast<uint64_t>(rel.table_id));
    h = HashString(h, rel.alias);
  }
  h = Combine(h, q.joins.size());
  for (const auto& j : q.joins) {
    h = Combine(h, static_cast<uint64_t>(j.left_rel));
    h = Combine(h, static_cast<uint64_t>(j.left_column));
    h = Combine(h, static_cast<uint64_t>(j.right_rel));
    h = Combine(h, static_cast<uint64_t>(j.right_column));
    h = Combine(h, static_cast<uint64_t>(j.schema_edge));
  }
  h = Combine(h, q.filters.size());
  for (const auto& f : q.filters) {
    h = Combine(h, static_cast<uint64_t>(f.rel));
    h = Combine(h, static_cast<uint64_t>(f.column));
    h = Combine(h, static_cast<uint64_t>(f.op));
    h = HashValue(h, f.value);
  }
  return h;
}

uint64_t PlanShapeHash(const query::PlanNode& plan) {
  uint64_t h = Combine(0x706c616eULL, static_cast<uint64_t>(plan.op));
  h = Combine(h, static_cast<uint64_t>(plan.rel));
  h = Combine(h, plan.join_preds.size());
  for (int p : plan.join_preds) h = Combine(h, static_cast<uint64_t>(p));
  // Distinct tags keep (left-only) and (right-only) shapes from colliding.
  h = Combine(h, plan.left ? Combine(1, PlanShapeHash(*plan.left)) : 2);
  h = Combine(h, plan.right ? Combine(3, PlanShapeHash(*plan.right)) : 4);
  return h;
}

size_t PlanPredictionCache::KeyHash::operator()(const Key& k) const {
  return static_cast<size_t>(Combine(k.query_fp, k.plan_hash));
}

PlanPredictionCache::PlanPredictionCache(int64_t capacity_bytes)
    : capacity_entries_(capacity_bytes > 0
                            ? std::max<int64_t>(1, capacity_bytes / kBytesPerEntry)
                            : 0),
      capacity_bytes_(capacity_bytes) {}

bool PlanPredictionCache::Lookup(uint64_t query_fp, uint64_t plan_hash,
                                 query::NodeStats* out) {
  const Key key{query_fp, plan_hash};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    CacheMetrics::Get().misses->Increment();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->stats;
  ++hits_;
  CacheMetrics::Get().hits->Increment();
  return true;
}

void PlanPredictionCache::Insert(uint64_t query_fp, uint64_t plan_hash,
                                 const query::NodeStats& stats) {
  if (capacity_entries_ <= 0) return;
  const Key key{query_fp, plan_hash};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->stats = stats;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, stats});
  index_[key] = lru_.begin();
  while (static_cast<int64_t>(lru_.size()) > capacity_entries_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    CacheMetrics::Get().evictions->Increment();
  }
}

void PlanPredictionCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

PlanPredictionCache::Stats PlanPredictionCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.entries = static_cast<int64_t>(lru_.size());
  s.capacity_bytes = capacity_bytes_;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  return s;
}

}  // namespace core
}  // namespace qps
