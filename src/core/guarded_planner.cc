// Copyright 2026 The QPSeeker Authors

#include "core/guarded_planner.h"

#include <algorithm>
#include <cmath>

#include "obs/window.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "util/trace.h"

namespace qps {
namespace core {

GuardedPlanner::GuardedPlanner(const QpSeeker* model,
                               const optimizer::Planner* baseline,
                               GuardedOptions options)
    : model_(model), baseline_(baseline), options_(std::move(options)) {}

namespace {

/// Pre-resolved hot-path metrics (DESIGN.md §8 naming convention).
struct GuardMetrics {
  metrics::Counter* requests;
  metrics::Counter* served[3];  ///< indexed by PlanStage
  metrics::Counter* fallbacks;
  metrics::Counter* circuit_opens;
  metrics::Counter* circuit_closes;
  metrics::Counter* circuit_short_circuits;
  metrics::Gauge* circuit_open;
  metrics::Histogram* plan_ms;
  /// Windowed ladder mix: which rung served recent traffic. Feeds the
  /// "ladder" panel in qps_top and the Prometheus _window_rate series.
  obs::WindowedCounter* stage_window[3];
  obs::WindowedHistogram* plan_ms_window;

  static const GuardMetrics& Get() {
    static const GuardMetrics m = [] {
      auto& reg = metrics::Registry::Global();
      auto& win = obs::WindowRegistry::Global();
      GuardMetrics out;
      out.requests = reg.GetCounter("qps.guarded.requests");
      out.served[0] = reg.GetCounter("qps.guarded.served_neural");
      out.served[1] = reg.GetCounter("qps.guarded.served_greedy");
      out.served[2] = reg.GetCounter("qps.guarded.served_traditional");
      out.fallbacks = reg.GetCounter("qps.guarded.fallbacks");
      out.circuit_opens = reg.GetCounter("qps.guarded.circuit_opens");
      out.circuit_closes = reg.GetCounter("qps.guarded.circuit_closes");
      out.circuit_short_circuits =
          reg.GetCounter("qps.guarded.circuit_short_circuits");
      out.circuit_open = reg.GetGauge("qps.guarded.circuit_open");
      out.plan_ms = reg.GetHistogram("qps.guarded.plan_ms");
      out.stage_window[0] = win.GetCounter("qps.guarded.stage.neural");
      out.stage_window[1] = win.GetCounter("qps.guarded.stage.greedy");
      out.stage_window[2] = win.GetCounter("qps.guarded.stage.traditional");
      out.plan_ms_window = win.GetHistogram("qps.guarded.plan_ms");
      return out;
    }();
    return m;
  }
};

}  // namespace

void GuardedPlanner::RecordNeuralOutcome(bool success) {
  window_.push_back(!success);
  while (static_cast<int>(window_.size()) > options_.breaker_window) {
    window_.pop_front();
  }
  const int failures =
      static_cast<int>(std::count(window_.begin(), window_.end(), true));
  if (!circuit_open_ && failures >= options_.breaker_threshold) {
    circuit_open_ = true;
    circuit_opened_at_ms_ = NowMs();
    stats_.circuit_opens += 1;
    window_.clear();
    GuardMetrics::Get().circuit_opens->Increment();
    GuardMetrics::Get().circuit_open->Set(1.0);
    QPS_VLOG(1) << "guarded: circuit OPEN after " << failures << " failures in "
                << options_.breaker_window << "-request window";
  }
}

void GuardedPlanner::MaybeCloseCircuit() {
  if (!circuit_open_) return;
  if (NowMs() - circuit_opened_at_ms_ >= options_.breaker_cooldown_ms) {
    circuit_open_ = false;
    stats_.circuit_closes += 1;
    GuardMetrics::Get().circuit_closes->Increment();
    GuardMetrics::Get().circuit_open->Set(0.0);
    QPS_VLOG(1) << "guarded: circuit closed after "
                << options_.breaker_cooldown_ms << "ms cool-down";
  }
}

Status GuardedPlanner::TryNeural(const query::Query& q,
                                 const PlanRequestOptions& ropts,
                                 GuardedResult* out) {
  QPS_TRACE_SPAN("guarded.neural");
  stats_.neural_attempts += 1;
  MctsOptions mopts = options_.hybrid.mcts;
  if (options_.neural_deadline_ms > 0.0) {
    mopts.time_budget_ms = std::min(mopts.time_budget_ms, options_.neural_deadline_ms);
    mopts.hard_deadline_ms = options_.neural_deadline_ms * options_.deadline_slack;
  }
  mopts.deadline_ms = ropts.deadline_ms;
  if (ropts.seed != 0) mopts.seed = ropts.seed;
  if (ropts.evaluate) mopts.evaluate = ropts.evaluate;
  mopts.cancel = ropts.cancel;
  auto mcts = MctsPlan(*model_, q, mopts);
  if (!mcts.ok()) {
    const Status& st = mcts.status();
    if (st.IsDeadlineExceeded()) {
      stats_.neural_deadline += 1;
    } else if (st.message().find("non-finite") != std::string::npos) {
      stats_.neural_nan += 1;
    } else {
      stats_.neural_error += 1;
    }
    return st;
  }
  if (!std::isfinite(mcts->predicted_runtime_ms)) {
    stats_.neural_nan += 1;
    return Status::Internal("non-finite MCTS plan score");
  }
  if (options_.validate_plans) {
    Status valid = query::ValidatePlan(q, *mcts->plan);
    if (!valid.ok()) {
      stats_.neural_invalid_plan += 1;
      return valid;
    }
  }
  stats_.neural_success += 1;
  out->plan = std::move(mcts->plan);
  out->stage = PlanStage::kNeural;
  out->used_neural = true;
  out->plans_evaluated = mcts->plans_evaluated;
  out->predicted_runtime_ms = mcts->predicted_runtime_ms;
  out->deadline_hit = mcts->deadline_hit;
  return Status::OK();
}

Status GuardedPlanner::TryGreedy(const query::Query& q,
                                 const PlanRequestOptions& ropts,
                                 GuardedResult* out) {
  QPS_TRACE_SPAN("guarded.greedy");
  stats_.greedy_attempts += 1;
  auto greedy = GreedyPlan(*model_, q, ropts.evaluate, ropts.cancel);
  Status st = greedy.ok() ? Status::OK() : greedy.status();
  if (st.ok() && !std::isfinite(greedy->predicted_runtime_ms)) {
    st = Status::Internal("non-finite greedy plan score");
  }
  if (st.ok() && options_.validate_plans) st = query::ValidatePlan(q, *greedy->plan);
  if (!st.ok()) {
    stats_.greedy_failures += 1;
    return st;
  }
  stats_.greedy_success += 1;
  out->plan = std::move(greedy->plan);
  out->stage = PlanStage::kGreedy;
  out->used_neural = true;
  out->plans_evaluated = greedy->plans_evaluated;
  out->predicted_runtime_ms = greedy->predicted_runtime_ms;
  return Status::OK();
}

Status GuardedPlanner::TryTraditional(const query::Query& q,
                                      const PlanRequestOptions& ropts,
                                      GuardedResult* out) {
  QPS_TRACE_SPAN("guarded.traditional");
  stats_.traditional_attempts += 1;
  auto plan = baseline_->Plan(q, {}, ropts.cancel);
  Status st = plan.ok() ? Status::OK() : plan.status();
  if (st.ok() && options_.validate_plans) st = query::ValidatePlan(q, **plan);
  if (!st.ok()) {
    stats_.traditional_failures += 1;
    return st;
  }
  stats_.traditional_success += 1;
  out->plan = std::move(*plan);
  out->stage = PlanStage::kTraditional;
  out->used_neural = false;
  out->plans_evaluated = 0;
  return Status::OK();
}

StatusOr<GuardedResult> GuardedPlanner::Plan(const query::Query& q) {
  return PlanGuarded(q, PlanRequestOptions{});
}

StatusOr<PlanResult> GuardedPlanner::Plan(const query::Query& q,
                                          const PlanRequestOptions& ropts) {
  QPS_RETURN_IF_ERROR(CheckPlannable(q));
  QPS_ASSIGN_OR_RETURN(GuardedResult guarded, PlanGuarded(q, ropts));
  if (guarded.deadline_hit && ropts.fail_on_deadline) {
    return Status::DeadlineExceeded("planning deadline expired");
  }
  PlanResult result;
  result.stage = guarded.stage;
  result.node_stats = guarded.plan->estimated;
  if (guarded.stage != PlanStage::kTraditional) {
    result.node_stats.runtime_ms = guarded.predicted_runtime_ms;
  }
  result.plan = std::move(guarded.plan);
  result.plan_ms = guarded.planning_ms;
  result.plans_evaluated = guarded.plans_evaluated;
  result.used_neural = guarded.used_neural;
  result.deadline_hit = guarded.deadline_hit;
  result.fallback_reason = std::move(guarded.fallback_reason);
  return result;
}

StatusOr<GuardedResult> GuardedPlanner::PlanGuarded(
    const query::Query& q, const PlanRequestOptions& ropts) {
  // An already-cancelled request never enters the ladder (and never counts
  // against the breaker — cancellation is caller-driven, not model health).
  QPS_RETURN_IF_ERROR(util::CheckCancel(ropts.cancel));
  const GuardMetrics& gm = GuardMetrics::Get();
  QPS_TRACE_SPAN_VAR(span, "guarded.plan");
  stats_.requests += 1;
  gm.requests->Increment();
  Timer timer(&clock());
  GuardedResult result;

  auto serve = [&](GuardedResult&& r) {
    r.planning_ms = timer.ElapsedMillis();
    gm.served[static_cast<int>(r.stage)]->Increment();
    gm.stage_window[static_cast<int>(r.stage)]->Increment();
    if (!r.fallback_reason.empty()) gm.fallbacks->Increment();
    gm.plan_ms->Record(r.planning_ms);
    gm.plan_ms_window->Record(r.planning_ms);
    span.AddAttr("stage", PlanStageName(r.stage));
    if (!r.fallback_reason.empty()) span.AddAttr("fallback", r.fallback_reason);
    return std::move(r);
  };

  const bool neural_eligible =
      model_ != nullptr &&
      q.num_relations() >= options_.hybrid.neural_min_relations;

  if (neural_eligible) {
    MaybeCloseCircuit();
    if (circuit_open_) {
      stats_.circuit_short_circuits += 1;
      gm.circuit_short_circuits->Increment();
      result.fallback_reason = "circuit open";
    } else {
      Status neural = TryNeural(q, ropts, &result);
      // A rung tripped by the cancel token ends the ladder: degrading a
      // request nobody is waiting for just burns more CPU. The tripped
      // outcome also stays out of the breaker window — it says nothing
      // about model health.
      if (!neural.ok() && util::Cancelled(ropts.cancel)) return neural;
      RecordNeuralOutcome(neural.ok());
      if (neural.ok()) return serve(std::move(result));
      result.fallback_reason = "neural: " + neural.ToString();
      QPS_VLOG(1) << "guarded: neural rung failed (" << neural.ToString()
                  << "), degrading to greedy";
      Status greedy = TryGreedy(q, ropts, &result);
      if (!greedy.ok() && util::Cancelled(ropts.cancel)) return greedy;
      if (greedy.ok()) return serve(std::move(result));
      result.fallback_reason += "; greedy: " + greedy.ToString();
      QPS_VLOG(1) << "guarded: greedy rung failed (" << greedy.ToString()
                  << "), degrading to traditional";
    }
  }

  Status traditional = TryTraditional(q, ropts, &result);
  if (!traditional.ok()) return traditional;
  return serve(std::move(result));
}

}  // namespace core
}  // namespace qps
