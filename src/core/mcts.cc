// Copyright 2026 The QPSeeker Authors

#include "core/mcts.h"

#include <algorithm>
#include <cmath>

#include "util/fault.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace qps {
namespace core {

using query::OpType;
using query::PlanNode;
using query::PlanPtr;
using query::Query;

namespace {

/// One planning step: append `rel` scanned with `scan`; joined in via `join`
/// (ignored for the first step).
struct Action {
  int rel = -1;
  OpType scan = OpType::kSeqScan;
  OpType join = OpType::kHashJoin;
};

struct TreeNode {
  Action action;
  TreeNode* parent = nullptr;
  std::vector<std::unique_ptr<TreeNode>> children;
  bool expanded = false;
  int visits = 0;
  double reward = 0.0;
};

/// Builds the left-deep plan for an action sequence; nullptr on cross join.
PlanPtr PlanFromActions(const Query& q, const std::vector<Action>& actions) {
  std::vector<int> order;
  std::vector<OpType> scans, joins;
  for (size_t i = 0; i < actions.size(); ++i) {
    order.push_back(actions[i].rel);
    scans.push_back(actions[i].scan);
    if (i > 0) joins.push_back(actions[i].join);
  }
  return BuildLeftDeepPlan(q, order, scans, joins);
}

/// Relations joinable to the current prefix (all relations when empty).
std::vector<int> CandidateRelations(const Query& q, uint64_t used_mask) {
  std::vector<int> out;
  const int n = q.num_relations();
  if (used_mask == 0) {
    for (int r = 0; r < n; ++r) out.push_back(r);
    return out;
  }
  for (int r = 0; r < n; ++r) {
    if ((used_mask >> r) & 1) continue;
    for (const auto& jp : q.joins) {
      const bool connects = (jp.left_rel == r && ((used_mask >> jp.right_rel) & 1)) ||
                            (jp.right_rel == r && ((used_mask >> jp.left_rel) & 1));
      if (connects) {
        out.push_back(r);
        break;
      }
    }
  }
  return out;
}

std::vector<Action> EnumerateActions(const Query& q, uint64_t used_mask) {
  std::vector<Action> out;
  const bool first = used_mask == 0;
  for (int r : CandidateRelations(q, used_mask)) {
    for (OpType scan : query::ScanOps()) {
      if (first) {
        out.push_back(Action{r, scan, OpType::kHashJoin});
      } else {
        for (OpType join : query::JoinOps()) {
          out.push_back(Action{r, scan, join});
        }
      }
    }
  }
  return out;
}

uint64_t MaskOfPath(const std::vector<Action>& actions) {
  uint64_t mask = 0;
  for (const auto& a : actions) mask |= uint64_t{1} << a.rel;
  return mask;
}

/// Completes an action prefix uniformly at random (the rollout step).
bool RandomCompletion(const Query& q, std::vector<Action>* actions, Rng* rng) {
  uint64_t mask = MaskOfPath(*actions);
  const int n = q.num_relations();
  while (static_cast<int>(actions->size()) < n) {
    auto candidates = EnumerateActions(q, mask);
    if (candidates.empty()) return false;
    const Action a = candidates[rng->UniformInt(candidates.size())];
    actions->push_back(a);
    mask |= uint64_t{1} << a.rel;
  }
  return true;
}

}  // namespace

StatusOr<MctsResult> MctsPlan(const QpSeeker& model, const Query& q,
                              const MctsOptions& opts) {
  QPS_RETURN_IF_ERROR(CheckPlannable(q));
  QPS_RETURN_IF_ERROR(q.Validate(model.db()));
  static metrics::Counter* const rollouts_counter =
      metrics::Registry::Global().GetCounter("qps.mcts.rollouts");
  static metrics::Histogram* const plan_ms_hist =
      metrics::Registry::Global().GetHistogram("qps.mcts.plan_ms");
  static metrics::Histogram* const batch_size_hist =
      metrics::Registry::Global().GetHistogram("qps.mcts.batch_size");
  QPS_TRACE_SPAN_VAR(span, "mcts.plan");
  Timer timer;
  Rng rng(opts.seed);
  MctsResult result;
  auto root = std::make_unique<TreeNode>();
  std::vector<Action> best_actions;
  double best_runtime = INFINITY;

  const int threads = std::max(1, opts.threads);
  util::ThreadPool* pool = opts.pool;
  std::unique_ptr<util::ThreadPool> owned_pool;
  if (pool == nullptr && threads > 1) {
    // threads counts the calling thread, which ParallelFor drafts in.
    owned_pool = std::make_unique<util::ThreadPool>(threads - 1);
    pool = owned_pool.get();
  }
  const int eval_batch =
      opts.eval_batch > 0 ? opts.eval_batch : (threads > 1 ? 8 * threads : 1);

  /// One random-completed rollout awaiting evaluation. Its path already
  /// carries the visit increments (virtual loss), so later selections in
  /// the same batch spread out instead of re-walking the identical path.
  struct Candidate {
    TreeNode* leaf = nullptr;
    std::vector<Action> actions;
    PlanPtr plan;
  };

  // A request deadline truncates the anytime budget; the first batch is
  // exempt so an already-expired deadline still yields one evaluated plan.
  const double budget_ms = opts.deadline_ms > 0.0
                               ? std::min(opts.time_budget_ms, opts.deadline_ms)
                               : opts.time_budget_ms;

  const int n = q.num_relations();
  while (result.plans_evaluated < opts.max_rollouts &&
         (result.plans_evaluated == 0 || timer.ElapsedMillis() < budget_ms)) {
    // Gather up to eval_batch candidates. All tree walking, expansion, and
    // rng use is serial — parallelism only touches the pure evaluation.
    std::vector<Candidate> batch;
    while (static_cast<int>(batch.size()) < eval_batch &&
           result.plans_evaluated + static_cast<int>(batch.size()) <
               opts.max_rollouts) {
      if (!batch.empty() && timer.ElapsedMillis() >= budget_ms) break;
      // Cancellation boundary: a deadline-expired or abandoned request
      // stops here, before this rollout's tree walk and model evaluation
      // spend CPU the caller will never read.
      QPS_RETURN_IF_ERROR(util::CheckCancel(opts.cancel));
      // Fault point: a rollout may error out or stall (injected latency).
      QPS_RETURN_IF_ERROR(fault::Check("mcts.rollout"));
      QPS_TRACE_SPAN("mcts.rollout");
      rollouts_counter->Increment();

      // 1. Selection: walk down by UCT until an unexpanded or terminal node.
      TreeNode* node = root.get();
      std::vector<Action> path;
      while (node->expanded && !node->children.empty()) {
        // Unvisited children first (uniformly at random), then UCT.
        std::vector<TreeNode*> unvisited;
        for (auto& child : node->children) {
          if (child->visits == 0) unvisited.push_back(child.get());
        }
        TreeNode* chosen = nullptr;
        if (!unvisited.empty()) {
          chosen = unvisited[rng.UniformInt(unvisited.size())];
        } else {
          double best_uct = -INFINITY;
          for (auto& child : node->children) {
            const double uct =
                child->reward / static_cast<double>(child->visits) +
                opts.exploration_c *
                    std::sqrt(std::log(static_cast<double>(std::max(1, node->visits))) /
                              static_cast<double>(child->visits));
            if (uct > best_uct || chosen == nullptr) {
              best_uct = uct;
              chosen = child.get();
            }
          }
        }
        node = chosen;
        path.push_back(node->action);
      }

      // 2. Expansion.
      if (!node->expanded && static_cast<int>(path.size()) < n) {
        QPS_TRACE_SPAN("mcts.expand");
        node->expanded = true;
        for (const Action& a : EnumerateActions(q, MaskOfPath(path))) {
          auto child = std::make_unique<TreeNode>();
          child->action = a;
          child->parent = node;
          node->children.push_back(std::move(child));
        }
        if (!node->children.empty()) {
          const size_t pick = rng.UniformInt(node->children.size());
          node = node->children[pick].get();
          path.push_back(node->action);
        }
      }

      // 3. Rollout: random completion.
      std::vector<Action> actions = path;
      if (!RandomCompletion(q, &actions, &rng)) {
        // Dead end (cannot happen for connected queries, but stay safe).
        node->visits += 1;
        continue;
      }
      PlanPtr plan = PlanFromActions(q, actions);
      if (plan == nullptr) {
        node->visits += 1;
        continue;
      }

      // Virtual loss: count the path's visits now, so the next selection in
      // this batch sees them. Rewards are settled after evaluation.
      for (TreeNode* cur = node; cur != nullptr; cur = cur->parent) {
        cur->visits += 1;
      }
      batch.push_back(Candidate{node, std::move(actions), std::move(plan)});
    }
    if (batch.empty()) continue;  // dead ends only; budget checks re-run above
    batch_size_hist->Record(static_cast<double>(batch.size()));
    // Second boundary before the batched encode+forward — the expensive
    // stage — so a token tripped mid-gather skips it entirely.
    QPS_RETURN_IF_ERROR(util::CheckCancel(opts.cancel));

    // 4. Evaluation with the learned cost model: one batched forward for
    // the whole candidate set (annotation sharded across the pool). A
    // non-finite score means the model has diverged; surface an error
    // instead of garbage costs.
    std::vector<const PlanNode*> plan_ptrs;
    plan_ptrs.reserve(batch.size());
    for (const auto& c : batch) plan_ptrs.push_back(c.plan.get());
    const std::vector<query::NodeStats> preds =
        opts.evaluate ? opts.evaluate(q, plan_ptrs)
                      : model.PredictPlansBatch(q, plan_ptrs, pool);

    // 5. Backpropagation, serially in selection order: a node earns one
    // reward unit each time it is part of the best plan discovered so far.
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!query::StatsAreFinite(preds[i])) {
        return Status::Internal("non-finite model prediction in MCTS rollout");
      }
      result.plans_evaluated += 1;
      const bool improved = preds[i].runtime_ms < best_runtime;
      if (improved) {
        best_runtime = preds[i].runtime_ms;
        best_actions = batch[i].actions;
        for (TreeNode* cur = batch[i].leaf; cur != nullptr; cur = cur->parent) {
          cur->reward += 1.0;
        }
      }
    }
  }

  if (best_actions.empty()) return Status::Internal("MCTS found no plan");
  if (opts.hard_deadline_ms > 0.0 && timer.ElapsedMillis() > opts.hard_deadline_ms) {
    return Status::DeadlineExceeded("MCTS blew the planning deadline");
  }
  result.deadline_hit =
      opts.deadline_ms > 0.0 && timer.ElapsedMillis() >= opts.deadline_ms;
  result.plan = PlanFromActions(q, best_actions);
  model.AnnotateEstimates(q, result.plan.get());
  result.predicted_runtime_ms = best_runtime;
  result.planning_ms = timer.ElapsedMillis();
  plan_ms_hist->Record(result.planning_ms);
  span.AddAttr("plans_evaluated", result.plans_evaluated);
  return result;
}

StatusOr<MctsResult> GreedyPlan(const QpSeeker& model, const Query& q,
                                const BatchEvalFn& evaluate,
                                const util::CancelToken* cancel) {
  QPS_RETURN_IF_ERROR(CheckPlannable(q));
  QPS_RETURN_IF_ERROR(q.Validate(model.db()));
  QPS_RETURN_IF_ERROR(fault::Check("greedy.plan"));
  static metrics::Counter* const plans_counter =
      metrics::Registry::Global().GetCounter("qps.greedy.plans");
  QPS_TRACE_SPAN_VAR(span, "greedy.plan");
  plans_counter->Increment();
  Timer timer;
  MctsResult result;
  std::vector<Action> prefix;
  const int n = q.num_relations();
  for (int step = 0; step < n; ++step) {
    // Cancellation boundary: one check per step, before the step's
    // candidate enumeration and batched forward.
    QPS_RETURN_IF_ERROR(util::CheckCancel(cancel));
    // Build every step candidate first, then score them as one batched
    // forward — the greedy analogue of MCTS leaf-parallel evaluation.
    std::vector<Action> step_actions;
    std::vector<PlanPtr> step_plans;
    for (const Action& a : EnumerateActions(q, MaskOfPath(prefix))) {
      std::vector<Action> candidate = prefix;
      candidate.push_back(a);
      // Deterministic cheap completion: hash joins + seq scans, first-fit.
      std::vector<Action> completed = candidate;
      uint64_t mask = MaskOfPath(completed);
      while (static_cast<int>(completed.size()) < n) {
        auto rels = CandidateRelations(q, mask);
        if (rels.empty()) break;
        completed.push_back(Action{rels[0], OpType::kSeqScan, OpType::kHashJoin});
        mask |= uint64_t{1} << rels[0];
      }
      if (static_cast<int>(completed.size()) != n) continue;
      PlanPtr plan = PlanFromActions(q, completed);
      if (plan == nullptr) continue;
      step_actions.push_back(a);
      step_plans.push_back(std::move(plan));
    }
    std::vector<const PlanNode*> ptrs;
    ptrs.reserve(step_plans.size());
    for (const auto& p : step_plans) ptrs.push_back(p.get());
    const std::vector<query::NodeStats> preds =
        evaluate ? evaluate(q, ptrs) : model.PredictPlansBatch(q, ptrs);

    Action best_action;
    double best_runtime = INFINITY;
    bool found = false;
    for (size_t i = 0; i < preds.size(); ++i) {
      if (!query::StatsAreFinite(preds[i])) {
        return Status::Internal("non-finite model prediction in greedy planning");
      }
      result.plans_evaluated += 1;
      if (preds[i].runtime_ms < best_runtime) {
        best_runtime = preds[i].runtime_ms;
        best_action = step_actions[i];
        found = true;
      }
    }
    if (!found) return Status::Internal("greedy planner stuck");
    prefix.push_back(best_action);
  }
  result.plan = PlanFromActions(q, prefix);
  if (result.plan == nullptr) return Status::Internal("greedy produced no plan");
  model.AnnotateEstimates(q, result.plan.get());
  // The final score must go through the same evaluator as the step batches:
  // PredictPlan touches mutable model state, which the serving layer only
  // serializes behind the injected hook.
  result.predicted_runtime_ms =
      evaluate ? evaluate(q, {result.plan.get()})[0].runtime_ms
               : model.PredictPlan(q, *result.plan).runtime_ms;
  result.planning_ms = timer.ElapsedMillis();
  span.AddAttr("plans_evaluated", result.plans_evaluated);
  return result;
}

}  // namespace core
}  // namespace qps
