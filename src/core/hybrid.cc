// Copyright 2026 The QPSeeker Authors

#include "core/hybrid.h"

#include "util/timer.h"
#include "util/trace.h"

namespace qps {
namespace core {

namespace {

StatusOr<HybridResult> PlanHybrid(const QpSeeker* model,
                                  const optimizer::Planner* baseline,
                                  const HybridOptions& options,
                                  const query::Query& q,
                                  const PlanRequestOptions& ropts) {
  QPS_TRACE_SPAN("hybrid.plan");
  HybridResult result;
  Timer timer;
  if (q.num_relations() >= options.neural_min_relations) {
    MctsOptions mopts = options.mcts;
    mopts.deadline_ms = ropts.deadline_ms;
    if (ropts.seed != 0) mopts.seed = ropts.seed;
    if (ropts.evaluate) mopts.evaluate = ropts.evaluate;
    mopts.cancel = ropts.cancel;
    QPS_ASSIGN_OR_RETURN(MctsResult mcts, MctsPlan(*model, q, mopts));
    result.plan = std::move(mcts.plan);
    result.used_neural = true;
    result.plans_evaluated = mcts.plans_evaluated;
    result.predicted_runtime_ms = mcts.predicted_runtime_ms;
    result.deadline_hit = mcts.deadline_hit;
  } else {
    QPS_ASSIGN_OR_RETURN(result.plan,
                         baseline->Plan(q, {}, ropts.cancel));
    result.used_neural = false;
  }
  result.planning_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace

StatusOr<HybridResult> HybridPlanner::Plan(const query::Query& q) const {
  return PlanHybrid(model_, baseline_, options_, q, PlanRequestOptions{});
}

StatusOr<PlanResult> HybridPlanner::Plan(const query::Query& q,
                                         const PlanRequestOptions& ropts) {
  QPS_RETURN_IF_ERROR(CheckPlannable(q));
  QPS_ASSIGN_OR_RETURN(HybridResult hybrid,
                       PlanHybrid(model_, baseline_, options_, q, ropts));
  if (hybrid.deadline_hit && ropts.fail_on_deadline) {
    return Status::DeadlineExceeded("planning deadline expired");
  }
  PlanResult result;
  result.stage =
      hybrid.used_neural ? PlanStage::kNeural : PlanStage::kTraditional;
  result.node_stats = hybrid.plan->estimated;
  if (hybrid.used_neural) {
    result.node_stats.runtime_ms = hybrid.predicted_runtime_ms;
  }
  result.plan = std::move(hybrid.plan);
  result.plan_ms = hybrid.planning_ms;
  result.plans_evaluated = hybrid.plans_evaluated;
  result.used_neural = hybrid.used_neural;
  result.deadline_hit = hybrid.deadline_hit;
  return result;
}

}  // namespace core
}  // namespace qps
