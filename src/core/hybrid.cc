// Copyright 2026 The QPSeeker Authors

#include "core/hybrid.h"

#include "util/timer.h"
#include "util/trace.h"

namespace qps {
namespace core {

StatusOr<HybridResult> HybridPlanner::Plan(const query::Query& q) const {
  QPS_TRACE_SPAN("hybrid.plan");
  HybridResult result;
  Timer timer;
  if (q.num_relations() >= options_.neural_min_relations) {
    QPS_ASSIGN_OR_RETURN(MctsResult mcts, MctsPlan(*model_, q, options_.mcts));
    result.plan = std::move(mcts.plan);
    result.used_neural = true;
    result.plans_evaluated = mcts.plans_evaluated;
  } else {
    QPS_ASSIGN_OR_RETURN(result.plan, baseline_->Plan(q));
    result.used_neural = false;
  }
  result.planning_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace core
}  // namespace qps
