// Copyright 2026 The QPSeeker Authors

#include "core/planner_api.h"

#include "util/string_util.h"

namespace qps {
namespace core {

const char* PlanStageName(PlanStage stage) {
  switch (stage) {
    case PlanStage::kNeural:
      return "neural";
    case PlanStage::kGreedy:
      return "greedy";
    case PlanStage::kTraditional:
      return "traditional";
  }
  return "?";
}

GuardStats& GuardStats::operator+=(const GuardStats& o) {
  requests += o.requests;
  neural_attempts += o.neural_attempts;
  neural_success += o.neural_success;
  neural_invalid_plan += o.neural_invalid_plan;
  neural_nan += o.neural_nan;
  neural_deadline += o.neural_deadline;
  neural_error += o.neural_error;
  greedy_attempts += o.greedy_attempts;
  greedy_success += o.greedy_success;
  greedy_failures += o.greedy_failures;
  traditional_attempts += o.traditional_attempts;
  traditional_success += o.traditional_success;
  traditional_failures += o.traditional_failures;
  circuit_opens += o.circuit_opens;
  circuit_closes += o.circuit_closes;
  circuit_short_circuits += o.circuit_short_circuits;
  return *this;
}

std::string GuardStats::ToString() const {
  return StrFormat(
      "requests=%lld neural=%lld/%lld (invalid=%lld nan=%lld deadline=%lld "
      "error=%lld) greedy=%lld/%lld traditional=%lld/%lld circuit "
      "opens=%lld closes=%lld short_circuits=%lld",
      static_cast<long long>(requests), static_cast<long long>(neural_success),
      static_cast<long long>(neural_attempts),
      static_cast<long long>(neural_invalid_plan), static_cast<long long>(neural_nan),
      static_cast<long long>(neural_deadline), static_cast<long long>(neural_error),
      static_cast<long long>(greedy_success), static_cast<long long>(greedy_attempts),
      static_cast<long long>(traditional_success),
      static_cast<long long>(traditional_attempts),
      static_cast<long long>(circuit_opens), static_cast<long long>(circuit_closes),
      static_cast<long long>(circuit_short_circuits));
}

Status CheckPlannable(const query::Query& q) {
  if (q.num_relations() == 0) return Status::InvalidArgument("empty query");
  QPS_RETURN_IF_ERROR(q.ValidateStructure());
  if (q.num_relations() > 1 && !q.IsConnected()) {
    return Status::NotImplemented("cross products are not supported");
  }
  return Status::OK();
}

}  // namespace core
}  // namespace qps
