// Copyright 2026 The QPSeeker Authors

#include "core/planner_backends.h"

#include "core/hybrid.h"
#include "util/timer.h"
#include "util/trace.h"

namespace qps {
namespace core {

StatusOr<PlanResult> BaselinePlanner::Plan(const query::Query& q,
                                           const PlanRequestOptions& ropts) {
  QPS_RETURN_IF_ERROR(CheckPlannable(q));
  QPS_TRACE_SPAN("baseline.plan");
  Timer timer;
  PlanResult result;
  QPS_ASSIGN_OR_RETURN(result.plan, baseline_->Plan(q, {}, ropts.cancel));
  result.stage = PlanStage::kTraditional;
  result.node_stats = result.plan->estimated;
  result.plan_ms = timer.ElapsedMillis();
  return result;
}

StatusOr<PlanResult> MctsPlanner::Plan(const query::Query& q,
                                       const PlanRequestOptions& ropts) {
  QPS_RETURN_IF_ERROR(CheckPlannable(q));
  MctsOptions mopts = options_;
  mopts.deadline_ms = ropts.deadline_ms;
  if (ropts.seed != 0) mopts.seed = ropts.seed;
  if (ropts.evaluate) mopts.evaluate = ropts.evaluate;
  mopts.cancel = ropts.cancel;
  QPS_ASSIGN_OR_RETURN(MctsResult mcts, MctsPlan(*model_, q, mopts));
  if (mcts.deadline_hit && ropts.fail_on_deadline) {
    return Status::DeadlineExceeded("planning deadline expired");
  }
  PlanResult result;
  result.stage = PlanStage::kNeural;
  result.node_stats = mcts.plan->estimated;
  result.node_stats.runtime_ms = mcts.predicted_runtime_ms;
  result.plan = std::move(mcts.plan);
  result.plan_ms = mcts.planning_ms;
  result.plans_evaluated = mcts.plans_evaluated;
  result.used_neural = true;
  result.deadline_hit = mcts.deadline_hit;
  return result;
}

StatusOr<std::unique_ptr<Planner>> MakePlanner(const std::string& name,
                                               const QpSeeker* model,
                                               const optimizer::Planner* baseline,
                                               const GuardedOptions& gopts) {
  if (name == "baseline") {
    if (baseline == nullptr) {
      return Status::InvalidArgument("baseline planner requires a DP planner");
    }
    return std::unique_ptr<Planner>(new BaselinePlanner(baseline));
  }
  if (model == nullptr) {
    return Status::InvalidArgument("planner '" + name +
                                   "' requires a trained model");
  }
  if (name == "neural" || name == "mcts") {
    return std::unique_ptr<Planner>(new MctsPlanner(model, gopts.hybrid.mcts));
  }
  if (name == "hybrid") {
    return std::unique_ptr<Planner>(
        new HybridPlanner(model, baseline, gopts.hybrid));
  }
  if (name == "guarded") {
    return std::unique_ptr<Planner>(new GuardedPlanner(model, baseline, gopts));
  }
  return Status::InvalidArgument(
      "unknown planner '" + name +
      "' (expected baseline|neural|hybrid|guarded)");
}

}  // namespace core
}  // namespace qps
