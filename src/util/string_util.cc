// Copyright 2026 The QPSeeker Authors

#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cmath>

namespace qps {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(len > 0 ? static_cast<size_t>(len) : 0, '\0');
  if (len > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrTrim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StrLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string FormatSig(double v, int digits) {
  if (!std::isfinite(v)) return v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
  return StrFormat("%.*g", digits, v);
}

}  // namespace qps
