// Copyright 2026 The QPSeeker Authors

#include "util/cpuid.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace qps {
namespace simd {

namespace {

Isa DetectIsaUncached() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vnni")) {
    return Isa::kAvx512Vnni;
  }
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
  return Isa::kScalar;
}

bool ReadForceScalarEnv() {
  const char* env = std::getenv("QPS_FORCE_SCALAR");
  return env != nullptr && std::strcmp(env, "0") != 0 && env[0] != '\0';
}

/// -1 = no override; otherwise a static_cast<int>(Isa) value.
std::atomic<int> g_override{-1};

}  // namespace

Isa DetectIsa() {
  static const Isa detected = DetectIsaUncached();
  return detected;
}

bool ScalarForcedByEnv() {
  static const bool forced = ReadForceScalarEnv();
  return forced;
}

Isa ActiveIsa() {
  const int ov = g_override.load(std::memory_order_relaxed);
  if (ov >= 0) {
    const Isa requested = static_cast<Isa>(ov);
    return requested <= DetectIsa() ? requested : DetectIsa();
  }
  if (ScalarForcedByEnv()) return Isa::kScalar;
  return DetectIsa();
}

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512Vnni:
      return "avx512vnni";
  }
  return "unknown";
}

void SetIsaOverrideForTest(Isa isa) {
  g_override.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void ClearIsaOverrideForTest() {
  g_override.store(-1, std::memory_order_relaxed);
}

}  // namespace simd
}  // namespace qps
