// Copyright 2026 The QPSeeker Authors
//
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for checkpoint
// integrity checks. The checkpoint format (nn/serialize) stores a CRC per
// tensor record and one over the whole file, so a torn write, bit flip, or
// truncation is detected before any bytes reach a model.

#ifndef QPS_UTIL_CRC32_H_
#define QPS_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace qps {
namespace crc32 {

/// Extends a running CRC with `n` more bytes. Start from 0 for a fresh
/// checksum: Extend(Extend(0, a, na), b, nb) == Compute(a+b).
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// CRC-32 of one contiguous buffer. Compute("123456789") == 0xCBF43926.
inline uint32_t Compute(const void* data, size_t n) {
  return Extend(0, data, n);
}

}  // namespace crc32
}  // namespace qps

#endif  // QPS_UTIL_CRC32_H_
