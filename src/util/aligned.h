// Copyright 2026 The QPSeeker Authors
//
// 32-byte aligned allocation for SIMD-visible buffers. Tensor data and the
// int8 GEMM operands are allocated through AlignedAllocator so vector loads
// in the micro-kernels are always aligned and never split a cache line; the
// GEMM drivers assert this invariant (util::IsAligned) at their entry.

#ifndef QPS_UTIL_ALIGNED_H_
#define QPS_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace qps {
namespace util {

/// Alignment every SIMD-visible buffer honors: one AVX2 vector register.
constexpr size_t kSimdAlignment = 32;

inline bool IsAligned(const void* p, size_t alignment = kSimdAlignment) {
  return (reinterpret_cast<uintptr_t>(p) & (alignment - 1)) == 0;
}

/// Minimal std::allocator drop-in whose blocks start on an Align boundary.
template <typename T, size_t Align = kSimdAlignment>
class AlignedAllocator {
 public:
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");
  static_assert(Align >= alignof(T), "alignment below the type's natural one");

  using value_type = T;
  using size_type = size_t;
  using difference_type = ptrdiff_t;

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace util
}  // namespace qps

#endif  // QPS_UTIL_ALIGNED_H_
