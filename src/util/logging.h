// Copyright 2026 The QPSeeker Authors
//
// Minimal leveled logging plus CHECK macros (Arrow/Google style).

#ifndef QPS_UTIL_LOGGING_H_
#define QPS_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace qps {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level; messages below it are dropped. Default kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace qps

#define QPS_LOG(level)                                           \
  ::qps::internal::LogMessage(::qps::LogLevel::k##level, __FILE__, __LINE__)

#define QPS_CHECK(cond)                                          \
  if (!(cond))                                                   \
  ::qps::internal::LogMessage(::qps::LogLevel::kFatal, __FILE__, __LINE__) \
      << "Check failed: " #cond " "

#define QPS_CHECK_OK(expr)                                       \
  do {                                                           \
    ::qps::Status _st = (expr);                                  \
    QPS_CHECK(_st.ok()) << _st.ToString();                       \
  } while (0)

#define QPS_DCHECK(cond) QPS_CHECK(cond)

#endif  // QPS_UTIL_LOGGING_H_
