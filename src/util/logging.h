// Copyright 2026 The QPSeeker Authors
//
// Minimal leveled logging plus CHECK macros (Arrow/Google style), and
// VLOG-style verbose logging with a runtime-settable verbosity. Log lines
// carry a monotonic timestamp (same clock as util/clock.h, hence the same
// timeline as trace spans) and a dense thread id, so logs correlate with
// Chrome-trace captures.

#ifndef QPS_UTIL_LOGGING_H_
#define QPS_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace qps {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level; messages below it are dropped. Default kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Verbosity for QPS_VLOG(n): messages with n <= verbosity are emitted
/// (at Debug level but independent of the minimum level above). Default 0,
/// so QPS_VLOG(1)+ are dropped until SetVerbosity raises it.
int GetVerbosity();
void SetVerbosity(int verbosity);
inline bool VlogEnabled(int level) { return level <= GetVerbosity(); }

/// Dense per-process thread index (0 for the first thread to log/trace).
int LogThreadId();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  /// VLOG path: enabled regardless of the minimum level.
  LogMessage(LogLevel level, const char* file, int line, bool force_enabled);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  void WritePrefix(LogLevel level, const char* file, int line);

  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace qps

#define QPS_LOG(level)                                           \
  ::qps::internal::LogMessage(::qps::LogLevel::k##level, __FILE__, __LINE__)

/// Verbose log, gated on SetVerbosity at runtime. The stream expression is
/// not evaluated when disabled.
#define QPS_VLOG(verbosity)                                      \
  if (::qps::VlogEnabled(verbosity))                             \
  ::qps::internal::LogMessage(::qps::LogLevel::kDebug, __FILE__, __LINE__, true)

#define QPS_CHECK(cond)                                          \
  if (!(cond))                                                   \
  ::qps::internal::LogMessage(::qps::LogLevel::kFatal, __FILE__, __LINE__) \
      << "Check failed: " #cond " "

#define QPS_CHECK_OK(expr)                                       \
  do {                                                           \
    ::qps::Status _st = (expr);                                  \
    QPS_CHECK(_st.ok()) << _st.ToString();                       \
  } while (0)

#define QPS_DCHECK(cond) QPS_CHECK(cond)

#endif  // QPS_UTIL_LOGGING_H_
