// Copyright 2026 The QPSeeker Authors

#include "util/trace.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>

#include "util/clock.h"
#include "util/metrics.h"

namespace qps {
namespace trace {

namespace internal {

std::atomic<bool> g_enabled{false};

namespace {

constexpr size_t kDefaultMaxSpans = 65536;

struct Collector {
  std::mutex mu;
  std::vector<SpanRecord> spans;
  std::atomic<size_t> max_spans{kDefaultMaxSpans};
  std::atomic<int64_t> dropped{0};
  std::atomic<int64_t> next_id{0};
  std::atomic<int> next_tid{0};
};

Collector& GetCollector() {
  static Collector* collector = new Collector();
  return *collector;
}

/// Per-thread state: dense thread index plus the stack of active span ids
/// (for parent linkage and depth).
struct ThreadState {
  int tid = -1;
  std::vector<int64_t> active;  ///< span ids, innermost last
};

ThreadState& GetThreadState() {
  thread_local ThreadState state;
  if (state.tid < 0) {
    state.tid = GetCollector().next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return state;
}

}  // namespace

int64_t BeginSpanSlow(const char* name, int64_t* start_ns, int* depth) {
  (void)name;
  Collector& collector = GetCollector();
  ThreadState& ts = GetThreadState();
  const int64_t id = collector.next_id.fetch_add(1, std::memory_order_relaxed);
  *depth = static_cast<int>(ts.active.size());
  ts.active.push_back(id);
  *start_ns = Clock::Default()->NowNanos();
  return id;
}

void EndSpanSlow(const char* name, int64_t id, int64_t start_ns, int depth,
                 std::vector<std::pair<std::string, std::string>>&& attrs) {
  const int64_t end_ns = Clock::Default()->NowNanos();
  Collector& collector = GetCollector();
  ThreadState& ts = GetThreadState();
  // Pop this span (and anything stranded above it by early exits).
  int64_t parent = -1;
  while (!ts.active.empty()) {
    const int64_t top = ts.active.back();
    ts.active.pop_back();
    if (top == id) break;
  }
  if (!ts.active.empty()) parent = ts.active.back();

  // Tracing may have been stopped mid-span; the stack bookkeeping above
  // still ran, but the record is only kept while recording is on.
  if (!g_enabled.load(std::memory_order_relaxed)) return;

  SpanRecord record;
  record.name = name;
  record.id = id;
  record.parent = parent;
  record.tid = ts.tid;
  record.depth = depth;
  record.start_us = start_ns / 1000;
  record.dur_us = (end_ns - start_ns) / 1000;
  record.attrs = std::move(attrs);
  static metrics::Counter* const dropped_counter =
      metrics::Registry::Global().GetCounter("qps.trace.dropped");
  const size_t cap = collector.max_spans.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(collector.mu);
  // Bounded buffer: tracing left on indefinitely (a serving process with
  // \trace on) must not grow the global vector without limit.
  if (collector.spans.size() >= cap) {
    collector.dropped.fetch_add(1, std::memory_order_relaxed);
    dropped_counter->Increment();
    return;
  }
  collector.spans.push_back(std::move(record));
}

}  // namespace internal

void ScopedSpan::AddAttr(const char* key, double value) {
  if (id_ < 0) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  attrs_.emplace_back(key, buf);
}

void SetMaxSpans(size_t max_spans) {
  internal::GetCollector().max_spans.store(
      max_spans > 0 ? max_spans : internal::kDefaultMaxSpans,
      std::memory_order_relaxed);
}

size_t MaxSpans() {
  return internal::GetCollector().max_spans.load(std::memory_order_relaxed);
}

int64_t DroppedSpans() {
  return internal::GetCollector().dropped.load(std::memory_order_relaxed);
}

void Start() {
  Clear();
  internal::g_enabled.store(true, std::memory_order_relaxed);
}

void Stop() { internal::g_enabled.store(false, std::memory_order_relaxed); }

void Clear() {
  auto& collector = internal::GetCollector();
  std::lock_guard<std::mutex> lock(collector.mu);
  collector.spans.clear();
  collector.dropped.store(0, std::memory_order_relaxed);
}

std::vector<SpanRecord> Snapshot() {
  auto& collector = internal::GetCollector();
  std::lock_guard<std::mutex> lock(collector.mu);
  return collector.spans;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string RenderChromeJson() {
  const std::vector<SpanRecord> spans = Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[160];
  for (const auto& span : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(span.name) + "\",\"ph\":\"X\",\"pid\":1";
    std::snprintf(buf, sizeof(buf),
                  ",\"tid\":%d,\"ts\":%lld,\"dur\":%lld", span.tid,
                  static_cast<long long>(span.start_us),
                  static_cast<long long>(span.dur_us));
    out += buf;
    if (!span.attrs.empty()) {
      out += ",\"args\":{";
      bool first_attr = true;
      for (const auto& [key, value] : span.attrs) {
        if (!first_attr) out += ",";
        first_attr = false;
        out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool WriteChromeJson(const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << RenderChromeJson();
  return static_cast<bool>(file);
}

}  // namespace trace
}  // namespace qps
