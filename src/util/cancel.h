// Copyright 2026 The QPSeeker Authors
//
// Cooperative cancellation for long-running planning work. A CancelToken
// is a flag (plus an optional absolute deadline on an injectable clock)
// that the owner trips and the worker polls at natural boundaries — MCTS
// rollout gathering, greedy planning steps, DP enumeration levels — so a
// request whose caller has given up (deadline expired, connection gone,
// tenant quarantined) stops consuming CPU at the next check instead of
// running to completion.
//
// Cost contract: Cancelled() on a token with no deadline armed is one
// relaxed atomic load; with a deadline it adds one clock read. Callers
// holding a possibly-null `const CancelToken*` pay a pointer test first.
// bench_micro's CheckResilienceOverheadBound holds the polling cost to
// <= 2x the disarmed fault-point cost, so checks may sit inside rollout
// loops.
//
// Thread-safety: Cancel()/ArmDeadline() and Cancelled()/Check() may race
// freely; the token never transitions back to un-cancelled. Ownership is
// the caller's problem — the serving layer keeps tokens alive via
// shared_ptr for as long as a worker might poll them.

#ifndef QPS_UTIL_CANCEL_H_
#define QPS_UTIL_CANCEL_H_

#include <atomic>
#include <cstdint>

#include "util/clock.h"
#include "util/status.h"

namespace qps {
namespace util {

class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trips the token. Idempotent; visible to every thread polling it.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms an absolute deadline `deadline_ms` from now on `clock`
  /// (nullptr = Clock::Default()). After it passes, Cancelled() is true
  /// and Check() returns kDeadlineExceeded instead of kAborted.
  void ArmDeadline(double deadline_ms, const Clock* clock = nullptr) {
    clock_ = clock != nullptr ? clock : Clock::Default();
    deadline_ns_.store(
        clock_->NowNanos() + static_cast<int64_t>(deadline_ms * 1e6),
        std::memory_order_relaxed);
  }

  bool Cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    return deadline != kNoDeadline && clock_->NowNanos() >= deadline;
  }

  /// OK while live; kAborted once Cancel()ed, kDeadlineExceeded once the
  /// armed deadline passes. Both carry reason "cancelled" so audit/retry
  /// layers treat them uniformly as caller-abandoned work.
  Status Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Aborted("request cancelled").SetReason("cancelled");
    }
    const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != kNoDeadline && clock_->NowNanos() >= deadline) {
      return Status::DeadlineExceeded("planning deadline cancelled the request")
          .SetReason("cancelled");
    }
    return Status::OK();
  }

 private:
  static constexpr int64_t kNoDeadline = INT64_MAX;

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
  const Clock* clock_ = nullptr;
};

/// Null-tolerant polling helpers for the hot loops: a null token is the
/// common (no cancellation requested) case and costs one pointer test.
inline bool Cancelled(const CancelToken* token) {
  return token != nullptr && token->Cancelled();
}

inline Status CheckCancel(const CancelToken* token) {
  if (token == nullptr) return Status::OK();
  return token->Check();
}

}  // namespace util
}  // namespace qps

#endif  // QPS_UTIL_CANCEL_H_
