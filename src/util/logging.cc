// Copyright 2026 The QPSeeker Authors

#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "util/clock.h"

namespace qps {

namespace {
LogLevel g_level = LogLevel::kInfo;
std::atomic<int> g_verbosity{0};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

int GetVerbosity() { return g_verbosity.load(std::memory_order_relaxed); }
void SetVerbosity(int verbosity) {
  g_verbosity.store(verbosity, std::memory_order_relaxed);
}

int LogThreadId() {
  static std::atomic<int> next_tid{0};
  thread_local int tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

namespace internal {

void LogMessage::WritePrefix(LogLevel level, const char* file, int line) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  // Monotonic seconds since process start (the trace-span timeline) plus a
  // dense thread id, so log lines correlate with Chrome-trace captures.
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%.6f", Clock::Default()->NowSeconds());
  stream_ << "[" << LevelName(level) << " " << ts << " t" << LogThreadId() << " "
          << base << ":" << line << "] ";
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(level >= g_level || level == LogLevel::kFatal) {
  if (enabled_) WritePrefix(level, file, line);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line,
                       bool force_enabled)
    : level_(level), enabled_(force_enabled) {
  if (enabled_) WritePrefix(level, file, line);
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace qps
