// Copyright 2026 The QPSeeker Authors
//
// In-process tracing: RAII spans on a thread-local stack, collected into a
// global buffer and exportable as Chrome-trace / Perfetto JSON (open the
// file in chrome://tracing or https://ui.perfetto.dev).
//
//   {
//     QPS_TRACE_SPAN("mcts.plan");
//     ...                       // nested QPS_TRACE_SPANs become children
//   }
//
//   QPS_TRACE_SPAN_VAR(span, "exec.scan");   // named handle for attributes
//   span.AddAttr("rows", row_count);
//
// Tracing is off by default. The disabled path is one relaxed atomic load
// in the span constructor and a branch in the destructor — ≤10 ns, proven
// by BM_TraceSpanDisabled in bench_micro, so spans stay compiled into
// per-rollout and per-operator hot paths. While enabled, each finished
// span takes a short global-mutex push; nesting is tracked per thread, so
// concurrent threads produce independent span trees.

#ifndef QPS_UTIL_TRACE_H_
#define QPS_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace qps {
namespace trace {

/// One finished span. Ids are assigned at span entry in global order;
/// parent is the id of the innermost enclosing span on the same thread
/// (-1 for roots), so the span forest is reconstructible from a flat list.
struct SpanRecord {
  std::string name;
  int64_t id = -1;
  int64_t parent = -1;
  int tid = 0;          ///< dense per-process thread index
  int depth = 0;        ///< 0 for roots
  int64_t start_us = 0; ///< relative to the process clock epoch
  int64_t dur_us = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// True while spans are being recorded (one relaxed load).
inline bool Enabled();

/// Caps the global span buffer. Once `max_spans` finished spans are
/// buffered, further spans are dropped (counted in qps.trace.dropped)
/// instead of growing the vector without bound while tracing stays on.
/// 0 restores the default (65536). Takes effect on the next Start().
void SetMaxSpans(size_t max_spans);
size_t MaxSpans();

/// Spans dropped by the cap since the last Start()/Clear().
int64_t DroppedSpans();

/// Clears the buffer and starts recording.
void Start();

/// Stops recording. Already-collected spans are kept until Clear()/Start().
void Stop();

/// Drops all collected spans.
void Clear();

/// Copies the finished spans collected so far.
std::vector<SpanRecord> Snapshot();

/// Chrome-trace JSON ({"traceEvents":[...]}, "X" complete events).
std::string RenderChromeJson();

/// Writes RenderChromeJson() to `path`. False on I/O failure.
bool WriteChromeJson(const std::string& path);

namespace internal {

extern std::atomic<bool> g_enabled;

/// Slow paths, called only while tracing is enabled.
int64_t BeginSpanSlow(const char* name, int64_t* start_ns, int* depth);
void EndSpanSlow(const char* name, int64_t id, int64_t start_ns, int depth,
                 std::vector<std::pair<std::string, std::string>>&& attrs);

}  // namespace internal

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// RAII span. Construct on the stack; destruction records the span. When
/// tracing is disabled at construction the object is inert (destructor
/// does nothing, AddAttr is a no-op), even if tracing is enabled later.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (!Enabled()) return;
    name_ = name;
    id_ = internal::BeginSpanSlow(name, &start_ns_, &depth_);
  }
  ~ScopedSpan() {
    if (id_ < 0) return;
    internal::EndSpanSlow(name_, id_, start_ns_, depth_, std::move(attrs_));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void AddAttr(const char* key, const std::string& value) {
    if (id_ >= 0) attrs_.emplace_back(key, value);
  }
  void AddAttr(const char* key, const char* value) {
    if (id_ >= 0) attrs_.emplace_back(key, value);
  }
  void AddAttr(const char* key, double value);
  void AddAttr(const char* key, int64_t value) {
    if (id_ >= 0) attrs_.emplace_back(key, std::to_string(value));
  }
  void AddAttr(const char* key, int value) {
    AddAttr(key, static_cast<int64_t>(value));
  }

 private:
  const char* name_ = nullptr;
  int64_t id_ = -1;
  int64_t start_ns_ = 0;
  int depth_ = 0;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

}  // namespace trace
}  // namespace qps

#define QPS_TRACE_CONCAT_INNER(a, b) a##b
#define QPS_TRACE_CONCAT(a, b) QPS_TRACE_CONCAT_INNER(a, b)

/// Anonymous span covering the enclosing scope.
#define QPS_TRACE_SPAN(name) \
  ::qps::trace::ScopedSpan QPS_TRACE_CONCAT(qps_trace_span_, __LINE__)(name)

/// Named span handle, for attaching attributes.
#define QPS_TRACE_SPAN_VAR(var, name) ::qps::trace::ScopedSpan var(name)

#endif  // QPS_UTIL_TRACE_H_
