// Copyright 2026 The QPSeeker Authors

#include "util/clock.h"

#include <chrono>

namespace qps {

namespace {

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

int64_t SteadyClock::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - ProcessEpoch())
      .count();
}

const Clock* Clock::Default() {
  static const SteadyClock* clock = [] {
    ProcessEpoch();  // pin the epoch before anyone reads the clock
    return new SteadyClock();
  }();
  return clock;
}

}  // namespace qps
