// Copyright 2026 The QPSeeker Authors

#include "util/scale.h"

#include <cstdlib>

#include "util/string_util.h"

namespace qps {

Scale GetScaleFromEnv(Scale fallback) {
  const char* env = std::getenv("QPS_SCALE");
  if (env == nullptr) return fallback;
  const std::string v = StrLower(env);
  if (v == "smoke") return Scale::kSmoke;
  if (v == "ci") return Scale::kCi;
  if (v == "paper") return Scale::kPaper;
  return fallback;
}

const char* ScaleName(Scale s) {
  switch (s) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kCi:
      return "ci";
    case Scale::kPaper:
      return "paper";
  }
  return "?";
}

}  // namespace qps
