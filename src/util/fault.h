// Copyright 2026 The QPSeeker Authors
//
// Deterministic, seedable fault injection for testing the guarded planning
// pipeline. Fault *points* are named call sites compiled into the production
// binary (e.g. "mcts.rollout", "vae.forward", "exec.join"); fault *specs*
// are armed at runtime by tests (or chaos tooling) and decide, per hit,
// whether to inject a Status error, corrupt a double to NaN, or add
// artificial latency.
//
// The disarmed hot path is a single relaxed atomic load — the registry is
// only consulted once at least one spec is armed — so fault points may sit
// on performance-critical paths (see BM_FaultPointDisarmed in bench_micro).
//
// Determinism: "fire on the Nth hit" specs depend only on per-point hit
// counters; probabilistic specs draw from one Rng seeded via Seed(). Tests
// that arm faults should Seed() (or use hit-based triggers) and DisarmAll()
// on teardown.

#ifndef QPS_UTIL_FAULT_H_
#define QPS_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "util/rng.h"
#include "util/status.h"

namespace qps {
namespace fault {

/// What an armed fault point does when it fires.
struct FaultSpec {
  /// Status to inject at Status-returning points. kOk means "no error"
  /// (useful for latency-only or NaN-only specs).
  StatusCode code = StatusCode::kInternal;
  std::string message = "injected fault";

  /// Fire on every hit with this probability (used when trigger_on_hit==0).
  double probability = 1.0;
  /// If > 0, fire deterministically on exactly the Nth hit (1-based)
  /// instead of probabilistically...
  int trigger_on_hit = 0;
  /// ...and on every later hit too, when set.
  bool sticky = false;

  /// Corrupt values passing through CorruptDouble() to quiet NaN.
  bool inject_nan = false;
  /// Sleep this long (wall clock) whenever the spec fires.
  double latency_ms = 0.0;

  /// Scopes the spec to one fault context (see ScopedContext): the point
  /// only counts hits — and can only fire — on threads whose current
  /// context matches. Empty = every context. This is how chaos tooling
  /// targets one tenant's traffic while colocated tenants run clean.
  std::string only_context;
};

/// Sets the calling thread's fault context (typically a tenant id) for the
/// enclosing scope; contexts nest, restoring the previous value on exit.
/// The serving layer wraps each request's planning in one of these so
/// context-scoped specs follow the request onto whichever worker runs it.
class ScopedContext {
 public:
  explicit ScopedContext(const std::string& context);
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

  /// The calling thread's current context ("" when none).
  static const std::string& Current();

 private:
  std::string previous_;
};

/// Global registry of named fault points. Thread-safe; the disarmed fast
/// path takes no lock.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms (or re-arms, resetting counters for) a named point.
  void Arm(const std::string& point, FaultSpec spec);
  void Disarm(const std::string& point);
  void DisarmAll();

  /// Reseeds the probabilistic-trigger stream.
  void Seed(uint64_t seed);

  /// True when at least one point is armed (one relaxed atomic load).
  bool AnyArmed() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Times the point was reached while armed / times its spec fired.
  int64_t Hits(const std::string& point) const;
  int64_t Triggers(const std::string& point) const;

  // Slow paths — call through the free functions below, which skip them
  // entirely when nothing is armed.
  Status CheckSlow(const char* point);
  double CorruptSlow(const char* point, double value);

 private:
  FaultInjector() = default;

  struct ArmedPoint {
    FaultSpec spec;
    int64_t hits = 0;
    int64_t triggers = 0;
  };

  /// Decides whether the spec fires on this hit and applies latency.
  bool Fire(ArmedPoint* p);

  mutable std::mutex mu_;
  std::map<std::string, ArmedPoint> points_;
  std::atomic<int> armed_points_{0};
  Rng rng_{0xfa017};
};

/// Status-returning fault point. Returns OK unless an armed spec for
/// `point` fires with a non-OK code.
inline Status Check(const char* point) {
  FaultInjector& fi = FaultInjector::Global();
  if (!fi.AnyArmed()) return Status::OK();
  return fi.CheckSlow(point);
}

/// Value-corrupting fault point. Returns `value` unless an armed NaN spec
/// for `point` fires.
inline double CorruptDouble(const char* point, double value) {
  FaultInjector& fi = FaultInjector::Global();
  if (!fi.AnyArmed()) return value;
  return fi.CorruptSlow(point, value);
}

}  // namespace fault
}  // namespace qps

#endif  // QPS_UTIL_FAULT_H_
