// Copyright 2026 The QPSeeker Authors
//
// Small string helpers shared across modules (formatting, splitting).

#ifndef QPS_UTIL_STRING_UTIL_H_
#define QPS_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace qps {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits on a delimiter; empty tokens are kept.
std::vector<std::string> StrSplit(const std::string& s, char delim);

/// Trims ASCII whitespace from both ends.
std::string StrTrim(const std::string& s);

/// Lower-cases ASCII.
std::string StrLower(const std::string& s);

/// Joins tokens with a separator.
std::string StrJoin(const std::vector<std::string>& parts, const std::string& sep);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Formats a double with `digits` significant digits (for report tables).
std::string FormatSig(double v, int digits = 4);

}  // namespace qps

#endif  // QPS_UTIL_STRING_UTIL_H_
