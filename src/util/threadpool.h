// Copyright 2026 The QPSeeker Authors
//
// Fixed-size worker pool for the inference hot path. Planning-time work
// (leaf-parallel MCTS evaluation, batched encoder feature assembly) is
// CPU-bound and latency-sensitive, so the pool is deliberately simple: N
// long-lived workers, one locked FIFO queue, no work stealing. ParallelFor
// statically describes the loop and dynamically chunks it across the
// workers *plus the calling thread*, so a pool is never slower than the
// serial loop by more than the dispatch cost (~a few µs per call).
//
// Observability: every task runs under a "pool.task" trace span on the
// worker's own span stack, and the pool exports qps.pool.tasks /
// qps.pool.queue_ms through the global metrics registry, so \metrics and
// Chrome traces show scheduling behavior without extra flags.
//
// Determinism contract: ParallelFor(i) calls are unordered across threads,
// but each index runs exactly once; callers that write result[i] from
// body(i) get bit-identical output regardless of thread count or
// scheduling. All planner-side users follow that pattern.

#ifndef QPS_UTIL_THREADPOOL_H_
#define QPS_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qps {
namespace util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 is allowed: every ParallelFor runs
  /// inline on the caller (useful to disable parallelism via one knob).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one fire-and-forget task.
  void Schedule(std::function<void()> fn);

  /// Bounded-queue admission control: enqueues `fn` only when fewer than
  /// `max_queued` tasks are waiting (tasks already running on workers do
  /// not count), otherwise returns false without enqueuing. This is how
  /// the plan service sheds load instead of building an unbounded backlog.
  /// With no workers the task runs inline (never sheds), matching
  /// Schedule's never-drop semantics.
  bool TrySchedule(std::function<void()> fn, size_t max_queued);

  /// Tasks enqueued but not yet claimed by a worker (admission gauge).
  size_t queue_depth() const;

  /// Runs body(i) for every i in [0, n) exactly once, sharded dynamically
  /// across the workers and the calling thread; returns when all indices
  /// have completed. Bodies must not throw and must write disjoint state.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body);

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace util
}  // namespace qps

#endif  // QPS_UTIL_THREADPOOL_H_
