// Copyright 2026 The QPSeeker Authors
//
// Status / StatusOr: exception-free error propagation across module
// boundaries, following the RocksDB / Arrow idiom.

#ifndef QPS_UTIL_STATUS_H_
#define QPS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace qps {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kResourceExhausted,
  kInternal,
  kNotImplemented,
  kAborted,
  kIOError,
  kDeadlineExceeded,
  kUnavailable,
};

/// Returns a human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// A success-or-error result. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// True for transient failures a caller may retry within its deadline
  /// budget: shed load (kResourceExhausted), quarantined-but-recovering
  /// capacity (kUnavailable), and transient I/O (kIOError). Terminal codes
  /// — bad queries, blown deadlines, cancellations, backend defects — stay
  /// non-retryable: repeating them burns budget without changing the
  /// outcome.
  bool IsRetryable() const {
    return code_ == StatusCode::kResourceExhausted ||
           code_ == StatusCode::kUnavailable || code_ == StatusCode::kIOError;
  }

  /// Machine-readable reason token ("" when unset). Layered consumers —
  /// the audit log, the serving retry loop — branch on this instead of
  /// string-matching human messages. Tokens are lowercase_underscore
  /// (e.g. "shed_queue_full", "quarantined", "fault_injected").
  const std::string& reason() const { return reason_; }
  Status&& SetReason(std::string reason) && {
    reason_ = std::move(reason);
    return std::move(*this);
  }
  Status& SetReason(std::string reason) & {
    reason_ = std::move(reason);
    return *this;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
  std::string reason_;
};

/// A value or an error. Use `ok()` before dereferencing; `value()` on an
/// error fatal-logs in all build modes (never UB), `value_or()` substitutes
/// a default instead.
template <typename T>
class StatusOr {
 public:
  /// Implicit conversion from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    QPS_CHECK(!status_.ok()) << "StatusOr constructed from an OK status";
  }
  /// Implicit conversion from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  /// The value, or `fallback` when this holds an error.
  template <typename U>
  T value_or(U&& fallback) const& {
    if (ok()) return *value_;
    return static_cast<T>(std::forward<U>(fallback));
  }
  template <typename U>
  T value_or(U&& fallback) && {
    if (ok()) return *std::move(value_);
    return static_cast<T>(std::forward<U>(fallback));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    QPS_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace qps

/// Propagates a non-OK Status to the caller.
#define QPS_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::qps::Status _st = (expr);               \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Assigns the value of a StatusOr expression or propagates its error.
#define QPS_ASSIGN_OR_RETURN(lhs, expr)       \
  QPS_ASSIGN_OR_RETURN_IMPL(                  \
      QPS_STATUS_MACRO_CONCAT(_status_or, __LINE__), lhs, expr)

#define QPS_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                              \
  if (!var.ok()) return var.status();             \
  lhs = std::move(var).value();

#define QPS_STATUS_MACRO_CONCAT_INNER(x, y) x##y
#define QPS_STATUS_MACRO_CONCAT(x, y) QPS_STATUS_MACRO_CONCAT_INNER(x, y)

#endif  // QPS_UTIL_STATUS_H_
