// Copyright 2026 The QPSeeker Authors

#include "util/status.h"

namespace qps {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  if (!reason_.empty()) {
    out += " [reason: ";
    out += reason_;
    out += "]";
  }
  return out;
}

}  // namespace qps
