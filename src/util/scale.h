// Copyright 2026 The QPSeeker Authors
//
// Experiment scaling. Paper-scale workloads (100K queries, 100 GB databases,
// 10.8M-parameter models) do not fit a single-core CI box; every harness
// reads the QPS_SCALE environment variable to pick a preset. The `ci`
// preset preserves all qualitative results (who wins, where crossovers
// fall) at a fraction of the compute; `paper` uses the published sizes.

#ifndef QPS_UTIL_SCALE_H_
#define QPS_UTIL_SCALE_H_

#include <string>

namespace qps {

enum class Scale {
  kSmoke,  ///< seconds-level, for ctest
  kCi,     ///< minutes-level, default for bench harnesses
  kPaper,  ///< published sizes
};

/// Reads QPS_SCALE ("smoke" | "ci" | "paper"); defaults to `fallback`.
Scale GetScaleFromEnv(Scale fallback = Scale::kCi);

/// Human-readable name.
const char* ScaleName(Scale s);

}  // namespace qps

#endif  // QPS_UTIL_SCALE_H_
